package penguin

import (
	"penguin/internal/serve"
	"penguin/internal/workload"
)

// HTTP serving tier (internal/serve): the view-object API over HTTP
// with JSON documents and admission control.
type (
	// ServeConfig configures the serving tier: the database, the
	// published objects and their updaters, and the in-flight admission
	// limits (shed with 429 beyond them).
	ServeConfig = serve.Config
	// APIServer routes the view-object HTTP API.
	APIServer = serve.Server
)

// Serving-tier entry points.
var (
	// NewAPIServer builds a handler; mount Handler() yourself.
	NewAPIServer = serve.New
	// StartAPIServer listens on addr and serves until Shutdown.
	StartAPIServer = serve.Start
	// EncodeJSONValue renders a relational value in the tagged wire
	// form that survives a JSON round trip byte-identically.
	EncodeJSONValue = serve.EncodeValue
	// DecodeJSONValue parses the tagged wire form back to a value.
	DecodeJSONValue = serve.DecodeValue
	// InstanceDoc renders a view-object instance as a JSON document.
	InstanceDoc = serve.InstanceDoc
	// InstanceFromDoc rebuilds an instance from a JSON document.
	InstanceFromDoc = serve.InstanceFromDoc
)

// Open-loop load harness (internal/workload): drives the HTTP tier at
// a fixed arrival rate regardless of response latency, so the measured
// quantiles include queueing delay (no coordinated omission).
type (
	// OpenLoopSpec is a load run: target URL, object, arrival rate,
	// duration, read/update mix, and optional latency objectives.
	OpenLoopSpec = workload.OpenLoopSpec
	// OpenLoopResult reports achieved rate, outcome counts, latency
	// quantiles, and any violated objectives.
	OpenLoopResult = workload.OpenLoopResult
)

// RunOpenLoop executes one open-loop run against a serving tier.
var RunOpenLoop = workload.RunOpenLoop
