GO ?= go

.PHONY: build test race vet bench bench-smoke bench-baseline verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke runs every benchmark exactly once (no timing fidelity) to
# catch benchmarks that panic or fail to build; cheap enough for CI.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# bench-baseline records a full benchmark run as JSON for diffing
# against future runs.
bench-baseline:
	$(GO) test -bench=. -benchmem -run='^$$' ./... | $(GO) run ./cmd/bench2json > BENCH_baseline.json

# verify is the full gate: compile everything, vet, then run the whole
# suite (including the concurrent stress tests) under the race detector.
verify: build vet race
