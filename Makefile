GO ?= go
BENCH_TOLERANCE ?= 0.30

.PHONY: build test race vet bench bench-smoke bench-baseline bench-diff metrics-lint crash-matrix serve-smoke shard-stress verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke runs every benchmark exactly once (no timing fidelity) to
# catch benchmarks that panic or fail to build; cheap enough for CI.
# The parallel-instantiation benchmark additionally runs at -cpu 1,4:
# the worker budget tracks GOMAXPROCS, so the pair exercises both the
# sequential path and the 4-worker fan-out (scaling itself is asserted
# by TestParallelInstantiationSpeedup on hosts with enough cores).
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
	$(GO) test -bench=BenchmarkParallelInstantiation -benchtime=1x -cpu=1,4 -run='^$$' .
	$(GO) test -bench=BenchmarkMaterializedRead -benchtime=1x -run='^$$' .
	$(GO) test -bench='BenchmarkCommit(WAL|InMemory)' -benchtime=1x -run='^$$' .
	$(GO) test -bench=BenchmarkShardedCommit -benchtime=1x -cpu=1,4 -run='^$$' .

# bench-baseline records a full benchmark run as JSON for diffing
# against future runs.
bench-baseline:
	$(GO) test -bench=. -benchmem -run='^$$' ./... | $(GO) run ./cmd/bench2json > BENCH_baseline.json

# bench-diff reruns the benchmarks and fails when any ns/op regressed
# beyond BENCH_TOLERANCE versus BENCH_baseline.json. Cross-hardware runs
# are skipped with a warning (ns/op is not comparable across machines).
# Time-based benchtime (not -benchtime=Nx): fixed iteration counts put
# warm-up cost inside the measurement and false-flag sub-µs benchmarks.
bench-diff:
	$(GO) test -bench=. -benchtime=0.3s -run='^$$' ./... | $(GO) run ./cmd/bench2json | $(GO) run ./cmd/benchdiff -baseline BENCH_baseline.json -tolerance $(BENCH_TOLERANCE)

# metrics-lint drives real concurrent workloads — including the
# materialized-reader stress mode — and validates that the live registry
# renders as well-formed Prometheus text exposition (grammar, cumulative
# buckets ending in +Inf, per-object, per-relation, and
# viewobject_materialize_* series present).
metrics-lint:
	$(GO) test -run '^TestMetricsLint' -count=1 ./internal/workload

# crash-matrix runs the durability fault-injection suite under the race
# detector: WAL truncation at every byte-group boundary, mid-log
# corruption, checkpoint crash leftovers, and a kill -9 of a child
# process running live stress traffic.
crash-matrix:
	$(GO) test -race -run '^TestCrashMatrix' -count=1 ./internal/workload

# serve-smoke boots a real serving tier and drives an open-loop burst
# at it: achieved arrival rate within 5% of target, zero transport/5xx
# errors, p50/p99 inside the latency objectives, and a lint-clean
# Prometheus exposition carrying the penguin_http_* families. The
# signal test re-execs the binary in -serve -data-dir mode, SIGTERMs it
# mid-traffic, and proves no acknowledged generation is lost.
serve-smoke:
	$(GO) test -run '^TestServeSmoke$$' -count=1 -v ./internal/workload
	$(GO) test -run '^TestServeSignalDurability$$' -count=1 ./cmd/penguin

# shard-stress drives the sharded coordinator under the race detector:
# the concurrent write mix over a live cluster (fast path + forced
# cross-shard traffic, sharded results pinned identical to unsharded),
# the sharded HTTP surface, and the cross-shard half of the crash
# matrix (2PC step kills + kill -9 under sharded stress traffic).
shard-stress:
	$(GO) test -race -run '^TestSharded' -count=1 ./internal/workload ./internal/serve
	$(GO) test -race -run '^TestCrashMatrix(CrossShard2PC|ShardKill9)$$' -count=1 ./internal/workload

# verify is the full gate: compile everything, vet, then run the whole
# suite (including the concurrent stress tests) under the race detector.
verify: build vet race metrics-lint crash-matrix serve-smoke shard-stress
