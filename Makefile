GO ?= go

.PHONY: build test race vet bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# verify is the full gate: compile everything, vet, then run the whole
# suite (including the concurrent stress tests) under the race detector.
verify: build vet race
