// Quickstart: define a view object over the paper's university database,
// query it (Figure 4), and run a translated update through it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"penguin"
	"penguin/internal/university"
)

func main() {
	// 1. The Figure 1 database: eight relations, nine typed connections,
	// seeded with the paper's sample instance.
	db, g, err := university.NewSeeded()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d relations, %d rows\n", len(db.Names()), db.TotalRows())

	// 2. Define ω through the Figure 2 pipeline: extract the relevant
	// subgraph around the pivot, expand it into a tree, prune.
	omega, err := university.Omega(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(omega.Render())

	// 3. Figure 4's query: graduate courses with < 5 enrolled students.
	insts, err := penguin.QueryOQL(db, omega, `Level = 'graduate' and count(STUDENT) < 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngraduate courses with fewer than 5 students: %d\n\n", len(insts))
	for _, inst := range insts {
		fmt.Print(inst.Render())
	}

	// 4. Choose a translator once (the §6 dialog, scripted with the
	// paper's answers), then run updates through the object.
	tr, tape, err := penguin.ChooseTranslator(omega, penguin.PaperDialogAnswers())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntranslator chosen after %d dialog questions\n", len(tape))
	u := penguin.NewUpdater(tr)

	// A complete deletion of CS445 translates into deletions across the
	// dependency island plus foreign-key maintenance on the CURRICULUM
	// peninsula — one call, all consequences handled.
	res, err := u.DeleteByKey(penguin.Tuple{penguin.String("CS445")})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeleting course CS445 translated into %d operations:\n%s\n", len(res.Ops), res)

	// 5. The database stays globally consistent.
	integrity := &penguin.Integrity{G: g}
	violations, err := integrity.Audit(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstructural-model violations after the update: %d\n", len(violations))
}
