// Registrar: the paper's §6 scenario end to end — choosing translators by
// dialog and replaying the EES345 replacement under a permissive and a
// restrictive translator, plus a side-by-side comparison with the flat
// relational-view baseline of §4.
//
//	go run ./examples/registrar
package main

import (
	"fmt"
	"log"

	"penguin"
	"penguin/internal/university"
)

func main() {
	section6()
	baselineComparison()
}

// section6 reproduces the paper's §6: the dialog transcript, then the
// replacement request under both translators.
func section6() {
	fmt.Println("=== Section 6: choosing a translator for view-object updates ===")
	_, g, err := university.NewSeeded()
	if err != nil {
		log.Fatal(err)
	}
	omega, err := university.Omega(g)
	if err != nil {
		log.Fatal(err)
	}
	_, tape, err := penguin.ChooseReplacementTranslator(omega, penguin.PaperDialogAnswers())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(tape.Render())

	run := func(restrictive bool) {
		db, g, err := university.NewSeeded()
		if err != nil {
			log.Fatal(err)
		}
		omega, err := university.Omega(g)
		if err != nil {
			log.Fatal(err)
		}
		answers := penguin.PaperDialogAnswers()
		label := "permissive"
		if restrictive {
			answers.Answers["outside.DEPARTMENT.modifiable"] = false
			label = "restrictive (DEPARTMENT frozen)"
		}
		tr, _, err := penguin.ChooseTranslator(omega, answers)
		if err != nil {
			log.Fatal(err)
		}
		tr.RepairInserts = true
		u := penguin.NewUpdater(tr)

		old, ok, err := penguin.InstantiateByKey(db, omega, penguin.Tuple{penguin.String("CS345")})
		if err != nil || !ok {
			log.Fatal("CS345 instance missing")
		}
		repl := old.Clone()
		must(repl.Root().SetAttr(omega, "CourseID", penguin.String("EES345")))
		must(repl.Root().SetAttr(omega, "DeptName", penguin.String("Engineering Economic Systems")))
		dep := repl.Root().Children(university.Department)[0]
		must(dep.SetTuple(omega, penguin.Tuple{
			penguin.String("Engineering Economic Systems"), penguin.Null(), penguin.Null(),
		}))

		fmt.Printf("\n--- replacing CS345 -> EES345 under the %s translator ---\n", label)
		res, err := u.ReplaceInstance(old, repl)
		if err != nil {
			fmt.Println("rejected:", err)
			return
		}
		fmt.Printf("accepted, %d operations:\n%s\n", len(res.Ops), res)
		ees := db.MustRelation(university.Department).Has(penguin.Tuple{penguin.String("Engineering Economic Systems")})
		fmt.Printf("DEPARTMENT now contains <Engineering Economic Systems>: %v\n", ees)
	}
	run(false)
	run(true)
}

// baselineComparison contrasts VO-CD with Keller's flat-view deletion on
// the same request: deleting course CS345.
func baselineComparison() {
	fmt.Println("\n=== View-object deletion vs flat-view deletion (the §4/§5 contrast) ===")

	// Flat baseline: delete through a COURSES ⋈ GRADES view.
	db1, g1, err := university.NewSeeded()
	if err != nil {
		log.Fatal(err)
	}
	flat, err := penguin.NewFlatView(db1, "course-grades",
		[]penguin.FlatJoin{
			{Relation: university.Courses},
			{Relation: university.Grades,
				LeftAttrs:  []string{"COURSES.CourseID"},
				RightAttrs: []string{"CourseID"}},
		}, nil,
		[]string{"COURSES.CourseID", "COURSES.Title", "COURSES.Level", "GRADES.PID", "GRADES.Grade"})
	if err != nil {
		log.Fatal(err)
	}
	ft := penguin.PermissiveFlatTranslator(flat)
	fres, err := ft.Delete(penguin.Tuple{
		penguin.String("CS345"), penguin.String("Database Systems"), penguin.String("graduate"),
		penguin.Int(1), penguin.String("A"),
	})
	if err != nil {
		log.Fatal(err)
	}
	in1 := &penguin.Integrity{G: g1}
	v1, err := in1.Audit(db1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flat view:   %d operation(s), %d integrity violations left behind\n",
		fres.Total(), len(v1))
	for _, v := range v1 {
		fmt.Println("   ", v)
	}

	// View object: the same request through ω.
	db2, g2, err := university.NewSeeded()
	if err != nil {
		log.Fatal(err)
	}
	omega, err := university.Omega(g2)
	if err != nil {
		log.Fatal(err)
	}
	u := penguin.NewUpdater(penguin.PermissiveTranslator(omega))
	vres, err := u.DeleteByKey(penguin.Tuple{penguin.String("CS345")})
	if err != nil {
		log.Fatal(err)
	}
	in2 := &penguin.Integrity{G: g2}
	v2, err := in2.Audit(db2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("view object: %d operation(s), %d integrity violations left behind\n",
		len(vres.Ops), len(v2))
	fmt.Println("\nthe view-object translation performs more base operations but preserves")
	fmt.Println("global consistency; the flat translation orphans the course's grades and")
	fmt.Println("leaves curriculum rows dangling.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
