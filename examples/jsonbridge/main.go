// JSONBridge: view objects as an object/relational mapping layer. An
// application exchanges nested JSON documents; the view-object machinery
// turns documents into instances, translates updates into relational
// operations, and serializes query results back to JSON — while the data
// stays in the fully normalized Figure 1 database.
//
//	go run ./examples/jsonbridge
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"penguin"
	"penguin/internal/university"
	"penguin/internal/viewobject"
)

func main() {
	db, g, err := university.NewSeeded()
	if err != nil {
		log.Fatal(err)
	}
	omega, err := university.Omega(g)
	if err != nil {
		log.Fatal(err)
	}
	u := penguin.NewUpdater(penguin.PermissiveTranslator(omega))

	// 1. A document arrives from the application (say, a web form): a new
	// graduate course with one enrollment.
	incoming := []byte(`{
		"CourseID": "CS520", "Title": "Knowledge Systems",
		"DeptName": "Computer Science", "Units": 3, "Level": "graduate",
		"GRADES": [
			{"CourseID": "CS520", "PID": 5, "Quarter": "Spr91", "Grade": "A",
			 "STUDENT": [{"PID": 5, "Degree": "PhD", "Year": 5}]}
		]
	}`)
	inst, err := viewobject.UnmarshalInstance(omega, incoming)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Preview what the document would do to the database, then commit.
	plan, err := u.PreviewInsertInstance(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the document translates into %d relational operations:\n%s\n\n", len(plan.Ops), plan)
	if _, err := u.InsertInstance(inst); err != nil {
		log.Fatal(err)
	}

	// 3. Query through the object and ship the results back as JSON.
	insts, err := penguin.QueryOQL(db, omega, `Level = 'graduate' and count(STUDENT) < 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graduate courses with fewer than 5 students: %d\n\n", len(insts))
	for _, i := range insts {
		data, err := json.MarshalIndent(i, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if i.Key()[0].MustString() == "CS520" {
			fmt.Println(string(data))
		}
	}

	// 4. Round-trip edit: parse a result, modify it, replace.
	current, ok, err := penguin.InstantiateByKey(db, omega, penguin.Tuple{penguin.String("CS520")})
	if err != nil || !ok {
		log.Fatal("CS520 missing")
	}
	doc := current.ToMap()
	doc["Title"] = "Knowledge-Based Systems"
	edited, err := viewobject.InstanceFromMap(omega, doc)
	if err != nil {
		log.Fatal(err)
	}
	res, err := u.ReplaceInstance(current, edited)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndocument edit translated into %d operation(s):\n%s\n", len(res.Ops), res)

	// 5. The relational ground truth reflects every document operation.
	got, _ := db.MustRelation(university.Courses).Get(penguin.Tuple{penguin.String("CS520")})
	fmt.Printf("\nbase tuple now: %s\n", got)
	integrity := &penguin.Integrity{G: g}
	vs, err := integrity.Audit(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("structural-model violations: %d\n", len(vs))
}
