// CADStore: a computer-aided-design domain — the application area of the
// PENGUIN companion paper ("Complex objects for relational databases",
// CAD special issue). Assemblies own components; components reference
// catalog parts; mechanical and electronic parts specialize the part
// catalog through subset connections. An assembly view object gives the
// design tool a complex object to edit while the data stays relational.
//
//	go run ./examples/cadstore
package main

import (
	"errors"
	"fmt"
	"log"

	"penguin"
)

func buildSchema() (*penguin.Database, *penguin.Graph) {
	db := penguin.NewDatabase()
	mustSchema := func(name string, attrs []penguin.Attribute, key []string) {
		s, err := penguin.NewSchema(name, attrs, key)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := db.CreateRelation(s); err != nil {
			log.Fatal(err)
		}
	}
	mustSchema("ASSEMBLY", []penguin.Attribute{
		{Name: "AsmID", Type: penguin.KindString},
		{Name: "Rev", Type: penguin.KindInt, Nullable: true},
		{Name: "Author", Type: penguin.KindString, Nullable: true},
	}, []string{"AsmID"})
	mustSchema("COMPONENT", []penguin.Attribute{
		{Name: "AsmID", Type: penguin.KindString},
		{Name: "Slot", Type: penguin.KindInt},
		{Name: "PartNo", Type: penguin.KindString, Nullable: true},
		{Name: "Qty", Type: penguin.KindInt, Nullable: true},
	}, []string{"AsmID", "Slot"})
	mustSchema("PART", []penguin.Attribute{
		{Name: "PartNo", Type: penguin.KindString},
		{Name: "Desc", Type: penguin.KindString, Nullable: true},
		{Name: "Mass", Type: penguin.KindFloat, Nullable: true},
	}, []string{"PartNo"})
	mustSchema("MECHPART", []penguin.Attribute{
		{Name: "PartNo", Type: penguin.KindString},
		{Name: "Material", Type: penguin.KindString, Nullable: true},
	}, []string{"PartNo"})
	mustSchema("EPART", []penguin.Attribute{
		{Name: "PartNo", Type: penguin.KindString},
		{Name: "Voltage", Type: penguin.KindFloat, Nullable: true},
	}, []string{"PartNo"})

	g := penguin.NewGraph(db)
	for _, c := range []*penguin.Connection{
		{Name: "asm-components", Type: penguin.Ownership,
			From: "ASSEMBLY", To: "COMPONENT", FromAttrs: []string{"AsmID"}, ToAttrs: []string{"AsmID"}},
		{Name: "component-part", Type: penguin.Reference,
			From: "COMPONENT", To: "PART", FromAttrs: []string{"PartNo"}, ToAttrs: []string{"PartNo"}},
		{Name: "part-mech", Type: penguin.Subset,
			From: "PART", To: "MECHPART", FromAttrs: []string{"PartNo"}, ToAttrs: []string{"PartNo"}},
		{Name: "part-elec", Type: penguin.Subset,
			From: "PART", To: "EPART", FromAttrs: []string{"PartNo"}, ToAttrs: []string{"PartNo"}},
	} {
		if err := g.AddConnection(c); err != nil {
			log.Fatal(err)
		}
	}
	return db, g
}

func seed(db *penguin.Database) {
	err := db.RunInTx(func(tx *penguin.Tx) error {
		s, i, f := penguin.String, penguin.Int, penguin.Float
		rows := []struct {
			rel string
			t   penguin.Tuple
		}{
			{"PART", penguin.Tuple{s("P-100"), s("bracket"), f(0.25)}},
			{"PART", penguin.Tuple{s("P-200"), s("controller"), f(0.05)}},
			{"PART", penguin.Tuple{s("P-300"), s("shaft"), f(1.0)}},
			{"MECHPART", penguin.Tuple{s("P-100"), s("aluminum")}},
			{"MECHPART", penguin.Tuple{s("P-300"), s("steel")}},
			{"EPART", penguin.Tuple{s("P-200"), f(5.0)}},
			{"ASSEMBLY", penguin.Tuple{s("GRIPPER"), i(3), s("mel")}},
			{"ASSEMBLY", penguin.Tuple{s("ARM"), i(1), s("sam")}},
			{"COMPONENT", penguin.Tuple{s("GRIPPER"), i(1), s("P-100"), i(2)}},
			{"COMPONENT", penguin.Tuple{s("GRIPPER"), i(2), s("P-200"), i(1)}},
			{"COMPONENT", penguin.Tuple{s("ARM"), i(1), s("P-300"), i(1)}},
			{"COMPONENT", penguin.Tuple{s("ARM"), i(2), s("P-100"), i(4)}},
		}
		for _, r := range rows {
			if err := tx.Insert(r.rel, r.t); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	db, g := buildSchema()
	seed(db)

	// The assembly object: ASSEMBLY owns COMPONENTs which reference
	// catalog PARTs; the island is {ASSEMBLY, COMPONENT}, PART is a
	// referenced relation.
	asm, err := penguin.Define(g, "assembly", "ASSEMBLY", penguin.DefaultMetric(),
		map[string][]string{"COMPONENT": nil, "PART": nil})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(asm.Render())
	topo := penguin.Analyze(asm)
	fmt.Printf("\nisland: %v   referenced: PART (%s)\n\n", topo.Island(), topo.Class["PART"])

	// Assemblies using more than one distinct catalog part.
	insts, err := penguin.QueryOQL(db, asm, `count(PART) >= 2`)
	if err != nil {
		log.Fatal(err)
	}
	for _, inst := range insts {
		fmt.Print(inst.Render())
	}

	u := penguin.NewUpdater(penguin.PermissiveTranslator(asm))

	// A design revision: rename the GRIPPER assembly to GRIPPER-MK2 (an
	// island key replacement) and swap slot 2's controller for a new
	// catalog part — §5.3 rule 2 turns the referenced PART's key change
	// into an insertion, so the catalog gains P-201.
	old, ok, err := penguin.InstantiateByKey(db, asm, penguin.Tuple{penguin.String("GRIPPER")})
	if err != nil || !ok {
		log.Fatal("GRIPPER missing")
	}
	repl := old.Clone()
	must(repl.Root().SetAttr(asm, "AsmID", penguin.String("GRIPPER-MK2")))
	must(repl.Root().SetAttr(asm, "Rev", penguin.Int(4)))
	for _, comp := range repl.Root().Children("COMPONENT") {
		if comp.Tuple()[1].MustInt() == 2 {
			must(comp.SetAttr(asm, "PartNo", penguin.String("P-201")))
			part := comp.Children("PART")[0]
			must(part.SetTuple(asm, penguin.Tuple{
				penguin.String("P-201"), penguin.String("controller mk2"), penguin.Float(0.04),
			}))
		}
	}
	res, err := u.ReplaceInstance(old, repl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndesign revision translated into %d operations:\n%s\n", len(res.Ops), res)
	if db.MustRelation("PART").Has(penguin.Tuple{penguin.String("P-201")}) {
		fmt.Println("\nthe catalog gained P-201 (rule 2: referenced key changes insert)")
	}

	// A restrictive translator for released designs: no new catalog parts.
	frozen := penguin.PermissiveTranslator(asm)
	frozen.Outside["PART"] = penguin.OutsidePolicy{Modifiable: true, AllowModifyExisting: true}
	frozen.RepairInserts = false
	uf := penguin.NewUpdater(frozen)
	old2, _, err := penguin.InstantiateByKey(db, asm, penguin.Tuple{penguin.String("ARM")})
	if err != nil {
		log.Fatal(err)
	}
	repl2 := old2.Clone()
	for _, comp := range repl2.Root().Children("COMPONENT") {
		if comp.Tuple()[1].MustInt() == 1 {
			must(comp.SetAttr(asm, "PartNo", penguin.String("P-999")))
			part := comp.Children("PART")[0]
			must(part.SetTuple(asm, penguin.Tuple{
				penguin.String("P-999"), penguin.String("prototype shaft"), penguin.Null(),
			}))
		}
	}
	_, err = uf.ReplaceInstance(old2, repl2)
	if errors.Is(err, penguin.ErrRejected) {
		fmt.Printf("\nreleased-design translator rejected the unknown part:\n  %v\n", err)
	} else {
		log.Fatal("expected a rejection, got", err)
	}

	integrity := &penguin.Integrity{G: g}
	vs, err := integrity.Audit(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstructural-model violations: %d\n", len(vs))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
