// Clinic: a medical-records domain (the application area that motivated
// PENGUIN — the original work was funded by the National Library of
// Medicine). A patient-chart view object aggregates visits, diagnoses,
// prescriptions, and providers over a normalized clinical database, and
// updates on charts translate into consistent relational updates.
//
//	go run ./examples/clinic
package main

import (
	"fmt"
	"log"

	"penguin"
)

// buildSchema creates the clinical database and its structural model:
//
//	PATIENT(MRN*, Name, BirthYear)
//	PROVIDER(NPI*, Name, Specialty)
//	VISIT(MRN*, VisitNo*, Date, NPI→PROVIDER)     PATIENT —* VISIT
//	DIAGNOSIS(MRN*, VisitNo*, Code*, Severity)    VISIT —* DIAGNOSIS
//	RX(MRN*, VisitNo*, Drug*, Dose)               VISIT —* RX
//	ALLERGY(MRN*, Substance*)                     PATIENT —* ALLERGY
func buildSchema() (*penguin.Database, *penguin.Graph) {
	db := penguin.NewDatabase()
	mustSchema := func(name string, attrs []penguin.Attribute, key []string) {
		s, err := penguin.NewSchema(name, attrs, key)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := db.CreateRelation(s); err != nil {
			log.Fatal(err)
		}
	}
	mustSchema("PATIENT", []penguin.Attribute{
		{Name: "MRN", Type: penguin.KindInt},
		{Name: "Name", Type: penguin.KindString, Nullable: true},
		{Name: "BirthYear", Type: penguin.KindInt, Nullable: true},
	}, []string{"MRN"})
	mustSchema("PROVIDER", []penguin.Attribute{
		{Name: "NPI", Type: penguin.KindInt},
		{Name: "Name", Type: penguin.KindString, Nullable: true},
		{Name: "Specialty", Type: penguin.KindString, Nullable: true},
	}, []string{"NPI"})
	mustSchema("VISIT", []penguin.Attribute{
		{Name: "MRN", Type: penguin.KindInt},
		{Name: "VisitNo", Type: penguin.KindInt},
		{Name: "Date", Type: penguin.KindString, Nullable: true},
		{Name: "NPI", Type: penguin.KindInt, Nullable: true},
	}, []string{"MRN", "VisitNo"})
	mustSchema("DIAGNOSIS", []penguin.Attribute{
		{Name: "MRN", Type: penguin.KindInt},
		{Name: "VisitNo", Type: penguin.KindInt},
		{Name: "Code", Type: penguin.KindString},
		{Name: "Severity", Type: penguin.KindString, Nullable: true},
	}, []string{"MRN", "VisitNo", "Code"})
	mustSchema("RX", []penguin.Attribute{
		{Name: "MRN", Type: penguin.KindInt},
		{Name: "VisitNo", Type: penguin.KindInt},
		{Name: "Drug", Type: penguin.KindString},
		{Name: "Dose", Type: penguin.KindString, Nullable: true},
	}, []string{"MRN", "VisitNo", "Drug"})
	mustSchema("ALLERGY", []penguin.Attribute{
		{Name: "MRN", Type: penguin.KindInt},
		{Name: "Substance", Type: penguin.KindString},
	}, []string{"MRN", "Substance"})

	g := penguin.NewGraph(db)
	addConn := func(c *penguin.Connection) {
		if err := g.AddConnection(c); err != nil {
			log.Fatal(err)
		}
	}
	addConn(&penguin.Connection{Name: "patient-visits", Type: penguin.Ownership,
		From: "PATIENT", To: "VISIT", FromAttrs: []string{"MRN"}, ToAttrs: []string{"MRN"}})
	addConn(&penguin.Connection{Name: "visit-dx", Type: penguin.Ownership,
		From: "VISIT", To: "DIAGNOSIS",
		FromAttrs: []string{"MRN", "VisitNo"}, ToAttrs: []string{"MRN", "VisitNo"}})
	addConn(&penguin.Connection{Name: "visit-rx", Type: penguin.Ownership,
		From: "VISIT", To: "RX",
		FromAttrs: []string{"MRN", "VisitNo"}, ToAttrs: []string{"MRN", "VisitNo"}})
	addConn(&penguin.Connection{Name: "patient-allergies", Type: penguin.Ownership,
		From: "PATIENT", To: "ALLERGY", FromAttrs: []string{"MRN"}, ToAttrs: []string{"MRN"}})
	addConn(&penguin.Connection{Name: "visit-provider", Type: penguin.Reference,
		From: "VISIT", To: "PROVIDER", FromAttrs: []string{"NPI"}, ToAttrs: []string{"NPI"}})
	return db, g
}

func seed(db *penguin.Database) {
	err := db.RunInTx(func(tx *penguin.Tx) error {
		ins := func(rel string, rows ...penguin.Tuple) error {
			for _, r := range rows {
				if err := tx.Insert(rel, r); err != nil {
					return err
				}
			}
			return nil
		}
		s, i := penguin.String, penguin.Int
		if err := ins("PROVIDER",
			penguin.Tuple{i(1001), s("Dr. Osler"), s("Internal Medicine")},
			penguin.Tuple{i(1002), s("Dr. Cushing"), s("Neurosurgery")},
		); err != nil {
			return err
		}
		if err := ins("PATIENT",
			penguin.Tuple{i(1), s("Pat Doe"), i(1950)},
			penguin.Tuple{i(2), s("Jo Roe"), i(1972)},
		); err != nil {
			return err
		}
		if err := ins("VISIT",
			penguin.Tuple{i(1), i(1), s("1991-02-03"), i(1001)},
			penguin.Tuple{i(1), i(2), s("1991-04-17"), i(1002)},
			penguin.Tuple{i(2), i(1), s("1991-03-08"), i(1001)},
		); err != nil {
			return err
		}
		if err := ins("DIAGNOSIS",
			penguin.Tuple{i(1), i(1), s("I10"), s("moderate")},
			penguin.Tuple{i(1), i(2), s("G40"), s("severe")},
			penguin.Tuple{i(2), i(1), s("J45"), s("mild")},
		); err != nil {
			return err
		}
		if err := ins("RX",
			penguin.Tuple{i(1), i(1), s("lisinopril"), s("10mg")},
			penguin.Tuple{i(1), i(2), s("carbamazepine"), s("200mg")},
		); err != nil {
			return err
		}
		return ins("ALLERGY", penguin.Tuple{i(1), s("penicillin")})
	})
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	db, g := buildSchema()
	seed(db)

	// The patient chart: a view object anchored on PATIENT. The whole
	// chart below the pivot is reachable by ownership, so the dependency
	// island covers PATIENT, VISIT, DIAGNOSIS, RX, and ALLERGY; PROVIDER
	// is a referenced relation.
	chart, err := penguin.Define(g, "patient-chart", "PATIENT", penguin.DefaultMetric(),
		map[string][]string{
			"VISIT": nil, "DIAGNOSIS": nil, "RX": nil, "ALLERGY": nil, "PROVIDER": nil,
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(chart.Render())
	topo := penguin.Analyze(chart)
	fmt.Printf("\ndependency island: %v\n", topo.Island())

	// Charts with a severe diagnosis.
	insts, err := penguin.QueryOQL(db, chart, `exists(DIAGNOSIS: Severity = 'severe')`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npatients with a severe diagnosis: %d\n\n", len(insts))
	for _, inst := range insts {
		fmt.Print(inst.Render())
	}

	// Updates through the chart.
	u := penguin.NewUpdater(penguin.PermissiveTranslator(chart))

	// Add a prescription to visit 2 of patient 1 (partial insertion).
	res, err := u.PartialInsert(penguin.Tuple{penguin.Int(1)}, "RX",
		penguin.Tuple{penguin.Int(1), penguin.Int(2), penguin.String("levetiracetam"), penguin.String("500mg")})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadded a prescription (%d op): %s\n", len(res.Ops), res)

	// Deleting a patient's chart cascades through visits, diagnoses,
	// prescriptions, and allergies — providers survive.
	res, err = u.DeleteByKey(penguin.Tuple{penguin.Int(1)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeleting patient 1's chart: %d operations\n%s\n", len(res.Ops), res)
	fmt.Printf("\nproviders remaining: %d (referenced entities are never cascaded)\n",
		db.MustRelation("PROVIDER").Count())

	integrity := &penguin.Integrity{G: g}
	vs, err := integrity.Audit(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("structural-model violations: %d\n", len(vs))
}
