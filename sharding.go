package penguin

import (
	"penguin/internal/reldb/shard"
)

// Sharded execution (internal/reldb/shard): the database partitioned by
// pivot-key hash into N independent shards, with view-object updates
// routed through a coordinator. Island-local updates commit on the home
// shard's fast path; updates touching replicated relations run the
// cross-shard two-phase protocol, with in-doubt transactions resolved
// at open.
type (
	// ShardCluster is a set of shard databases plus the view objects
	// registered over them; reads fan out and merge, updates route by
	// pivot key.
	ShardCluster = shard.Cluster
)

// Sharding entry points.
var (
	// NewShardCluster assembles a cluster over pre-opened in-memory
	// shard databases (the caller partitions island relations and
	// replicates the rest when loading).
	NewShardCluster = shard.New
	// OpenShardCluster opens (or creates) an N-shard durable cluster
	// under a data directory — one WAL directory per shard, staggered
	// checkpoints, and cluster-wide in-doubt resolution after replay.
	OpenShardCluster = shard.Open
)

// ErrCrossShardMove reports a replacement that changes an instance's
// pivot key onto a different shard; the coordinator refuses to migrate
// islands, so callers delete and re-insert instead.
var ErrCrossShardMove = shard.ErrCrossShardMove
