// Package penguin is a Go implementation of the PENGUIN view-object
// system: object-based views over relational databases with principled
// update translation, reproducing Barsalou, Keller, Siambela, and
// Wiederhold, "Updating Relational Databases through Object-Based Views"
// (SIGMOD 1991).
//
// The package re-exports the public API of the implementation packages:
//
//   - the relational engine (schemas, relations, transactions, queries);
//   - the structural model (typed connections with integrity rules, §2);
//   - the view-object model (definition pipeline and instantiation, §3);
//   - update translation (dependency islands, translators, VO-CD/CI/R,
//     the definition-time dialog, §5-§6);
//   - the flat-view baseline (Keller's algorithms, §4);
//   - the RQL and OQL query languages.
//
// Quickstart:
//
//	db, g, _ := university.NewSeeded()          // Figure 1 schema + data
//	omega, _ := university.Omega(g)             // Figure 2(c) object
//	insts, _ := penguin.Instantiate(db, omega, penguin.Query{...})
//	tr, _, _ := penguin.ChooseTranslator(omega, penguin.PaperDialogAnswers())
//	res, _ := penguin.NewUpdater(tr).DeleteByKey(penguin.Tuple{penguin.String("CS345")})
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package penguin

import (
	"penguin/internal/keller"
	"penguin/internal/oql"
	"penguin/internal/reldb"
	"penguin/internal/rql"
	"penguin/internal/structural"
	"penguin/internal/viewobject"
	"penguin/internal/vupdate"
)

// Relational engine (internal/reldb).
type (
	// Database is a catalog of named relations with transactions.
	Database = reldb.Database
	// Relation is an in-memory keyed table.
	Relation = reldb.Relation
	// Schema describes a relation's attributes and primary key.
	Schema = reldb.Schema
	// Attribute is one column of a schema.
	Attribute = reldb.Attribute
	// Tuple is an ordered list of values.
	Tuple = reldb.Tuple
	// Value is a typed database value.
	Value = reldb.Value
	// Kind identifies a value's runtime type.
	Kind = reldb.Kind
	// Tx is a copy-on-write write transaction.
	Tx = reldb.Tx
	// ReadTx is a snapshot-isolated read transaction.
	ReadTx = reldb.ReadTx
	// Delta is one relation's net change in a committed transaction.
	Delta = reldb.Delta
	// DeltaBatch is every delta of one commit, in publish order.
	DeltaBatch = reldb.DeltaBatch
	// TupleChange is a same-key replacement's before and after images.
	TupleChange = reldb.TupleChange
	// Subscription is a registered consumer of the commit delta stream.
	Subscription = reldb.Subscription
	// Expr is a scalar expression over rows.
	Expr = reldb.Expr
	// ResultSet is a materialized query result.
	ResultSet = reldb.ResultSet
)

// Value kinds.
const (
	KindNull   = reldb.KindNull
	KindInt    = reldb.KindInt
	KindFloat  = reldb.KindFloat
	KindString = reldb.KindString
	KindBool   = reldb.KindBool
)

// DefaultDeltaBuffer is the delta-subscription queue capacity used when
// Database.Subscribe is called with buffer <= 0.
const DefaultDeltaBuffer = reldb.DefaultDeltaBuffer

// Durability (write-ahead log + checkpoints, DESIGN.md §13).
type (
	// OpenOptions tunes a durable database's sync and checkpoint policy.
	OpenOptions = reldb.OpenOptions
	// SyncMode is the WAL fsync policy for committed transactions.
	SyncMode = reldb.SyncMode
)

// WAL sync modes.
const (
	// SyncCommit fsyncs (group-batched) before Commit returns.
	SyncCommit = reldb.SyncCommit
	// SyncInterval fsyncs on a background ticker.
	SyncInterval = reldb.SyncInterval
	// SyncNone never fsyncs explicitly; durability is best-effort.
	SyncNone = reldb.SyncNone
)

// Durability errors.
var (
	// ErrSnapshotCorrupt reports a checkpoint snapshot that fails its
	// integrity checks.
	ErrSnapshotCorrupt = reldb.ErrSnapshotCorrupt
	// ErrWALCorrupt reports log damage recovery refuses to replay past.
	ErrWALCorrupt = reldb.ErrWALCorrupt
	// ErrDatabaseClosed reports use of a closed durable database.
	ErrDatabaseClosed = reldb.ErrDatabaseClosed
	// ErrNotDurable reports a durability operation on an in-memory
	// database.
	ErrNotDurable = reldb.ErrNotDurable
)

// Value constructors and helpers.
var (
	NewDatabase = reldb.NewDatabase
	// OpenDatabase opens (or creates) a durable database in a data
	// directory, replaying the newest snapshot plus the WAL tail.
	OpenDatabase = reldb.OpenDatabase
	// OpenDatabaseWith is OpenDatabase with explicit OpenOptions.
	OpenDatabaseWith = reldb.OpenDatabaseWith
	NewSchema        = reldb.NewSchema
	Null             = reldb.Null
	Int              = reldb.Int
	Float            = reldb.Float
	String           = reldb.String
	Bool             = reldb.Bool
	Eq               = reldb.Eq
)

// Structural model (internal/structural, §2).
type (
	// Connection is a typed edge of the structural schema.
	Connection = structural.Connection
	// ConnType is the connection type: ownership, reference, or subset.
	ConnType = structural.ConnType
	// Graph is the structural schema of a database.
	Graph = structural.Graph
	// Integrity enforces the structural model's rules.
	Integrity = structural.Integrity
	// Violation is one integrity failure found by an audit.
	Violation = structural.Violation
)

// Connection types (Definitions 2.2-2.4).
const (
	Ownership = structural.Ownership
	Reference = structural.Reference
	Subset    = structural.Subset
)

// NewGraph creates an empty structural schema over a database.
var NewGraph = structural.NewGraph

// View-object model (internal/viewobject, §3).
type (
	// Definition is a validated view object ω.
	Definition = viewobject.Definition
	// Node is one projection in a view object's tree.
	Node = viewobject.Node
	// Metric is the information metric of the definition pipeline.
	Metric = viewobject.Metric
	// Subgraph is the relevant subgraph for a pivot (Figure 2a).
	Subgraph = viewobject.Subgraph
	// Tree is the expanded tree of projections (Figure 2b).
	Tree = viewobject.Tree
	// Instance is a hierarchical view-object instance.
	Instance = viewobject.Instance
	// InstNode is one component of an instance.
	InstNode = viewobject.InstNode
	// Query is a declarative object query.
	Query = viewobject.Query
	// NodePred is an existential component predicate.
	NodePred = viewobject.NodePred
	// CountCond is a component cardinality condition.
	CountCond = viewobject.CountCond
	// Materializer keeps a view object's instances materialized and
	// patched from the commit delta stream.
	Materializer = viewobject.Materializer
)

// View-object pipeline entry points.
var (
	DefaultMetric    = viewobject.DefaultMetric
	ExtractSubgraph  = viewobject.ExtractSubgraph
	BuildTree        = viewobject.BuildTree
	Define           = viewobject.Define
	NewDefinition    = viewobject.NewDefinition
	NewInstance      = viewobject.NewInstance
	Instantiate      = viewobject.Instantiate
	InstantiateByKey = viewobject.InstantiateByKey
	// Parallel instantiation worker budget (also settable with the
	// PENGUIN_PARALLELISM environment variable and the shell's .parallel).
	Parallelism    = viewobject.Parallelism
	SetParallelism = viewobject.SetParallelism
	// JSON document bridge: instances ↔ nested documents.
	InstanceFromMap   = viewobject.InstanceFromMap
	UnmarshalInstance = viewobject.UnmarshalInstance
	// Materialized view objects: cached instances kept fresh from the
	// commit delta stream, falling back to full instantiation when a
	// change cannot be localized.
	NewMaterializer         = viewobject.NewMaterializer
	MaterializerFor         = viewobject.MaterializerFor
	MaterializedInstantiate = viewobject.MaterializedInstantiate
)

// Update translation (internal/vupdate, §5-§6).
type (
	// Topology classifies a view object's nodes for update translation.
	Topology = vupdate.Topology
	// NodeClass is a node's update class (pivot, island, peninsula, ...).
	NodeClass = vupdate.NodeClass
	// Translator is the update-translation policy chosen at definition
	// time.
	Translator = vupdate.Translator
	// IslandPolicy configures key replacements inside the island.
	IslandPolicy = vupdate.IslandPolicy
	// OutsidePolicy configures insertions/replacements outside it.
	OutsidePolicy = vupdate.OutsidePolicy
	// PeninsulaPolicy configures deletion-time peninsula handling.
	PeninsulaPolicy = vupdate.PeninsulaPolicy
	// Updater executes view-object updates under a translator.
	Updater = vupdate.Updater
	// UpdateResult reports the operations a translation performed.
	UpdateResult = vupdate.Result
	// DBOp is one primitive database operation.
	DBOp = vupdate.DBOp
	// DialogQuestion is one yes/no question of the §6 dialog.
	DialogQuestion = vupdate.Question
	// DialogTranscript records an asked/answered dialog run.
	DialogTranscript = vupdate.Transcript
	// Answerer supplies dialog answers.
	Answerer = vupdate.Answerer
	// ScriptedAnswerer answers from a map (recorded dialogs, tests).
	ScriptedAnswerer = vupdate.ScriptedAnswerer
	// InteractiveAnswerer conducts the dialog on a terminal.
	InteractiveAnswerer = vupdate.InteractiveAnswerer
)

// Update-translation entry points.
var (
	Analyze                     = vupdate.Analyze
	NewTranslator               = vupdate.NewTranslator
	PermissiveTranslator        = vupdate.PermissiveTranslator
	NewUpdater                  = vupdate.NewUpdater
	ChooseTranslator            = vupdate.ChooseTranslator
	ChooseReplacementTranslator = vupdate.ChooseReplacementTranslator
	PaperDialogAnswers          = vupdate.PaperDialogAnswers
	// LoadTranslator re-binds policies saved with Translator.SavePolicies.
	LoadTranslator = vupdate.LoadTranslator
)

// ErrRejected wraps every translator rejection.
var ErrRejected = vupdate.ErrRejected

// OpKind is the kind of a primitive database operation.
type OpKind = vupdate.OpKind

// Primitive database operations emitted by the translation algorithms.
const (
	OpInsert  = vupdate.OpInsert
	OpDelete  = vupdate.OpDelete
	OpReplace = vupdate.OpReplace
)

// Flat-view baseline (internal/keller, §4).
type (
	// FlatView is a select-project-join relational view.
	FlatView = keller.View
	// FlatJoin adds one relation to a flat view's query graph.
	FlatJoin = keller.Join
	// FlatTranslator is Keller's flat-view update translator.
	FlatTranslator = keller.Translator
)

// Flat-view entry points.
var (
	NewFlatView              = keller.NewView
	PermissiveFlatTranslator = keller.PermissiveTranslator
)

// Query languages.
var (
	// ExecRQL parses and executes one RQL statement.
	ExecRQL = rql.Exec
	// ParseRQLExpr parses a scalar/boolean RQL expression.
	ParseRQLExpr = rql.ParseExpr
	// ParseOQL parses an object query for a definition.
	ParseOQL = oql.Parse
	// QueryOQL parses and runs an object query.
	QueryOQL = oql.Query
)
