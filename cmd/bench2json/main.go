// Command bench2json converts `go test -bench` text output on stdin to
// a JSON document on stdout, so benchmark baselines can be stored and
// diffed (see BENCH_baseline.json and the bench-baseline make target).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | bench2json > BENCH_baseline.json
//
// Only benchmark result lines and the goos/goarch/pkg/cpu headers are
// consumed; everything else (PASS, ok, test logs) is ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the -P GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Package is the import path from the preceding "pkg:" header.
	Package string `json:"package,omitempty"`
	// Procs is the GOMAXPROCS suffix (1 when the line carries none).
	Procs int `json:"procs"`
	// Iterations is b.N for the measured run.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp, AllocsPerOp mirror the ns/op, B/op and
	// allocs/op columns; the latter two are -1 without -benchmem.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the whole document: environment headers plus every result.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output and collects headers and results.
func parse(r io.Reader) (*Report, error) {
	report := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseResult(line)
			if ok {
				b.Package = pkg
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	return report, sc.Err()
}

// parseResult parses one result line, e.g.
//
//	BenchmarkVOCD-8  2150  523148 ns/op  187352 B/op  2145 allocs/op
func parseResult(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 { // minimum shape: name, iterations, value, "ns/op"
		return Benchmark{}, false
	}
	b := Benchmark{Procs: 1, BytesPerOp: -1, AllocsPerOp: -1}
	b.Name = f[0]
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// Remaining fields come in value/unit pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	if b.NsPerOp == 0 && !strings.Contains(line, "ns/op") {
		return Benchmark{}, false
	}
	return b, true
}
