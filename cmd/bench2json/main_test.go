package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: penguin
cpu: AMD EPYC 7B13
BenchmarkVOCD-8   	    2150	    523148 ns/op	  187352 B/op	    2145 allocs/op
BenchmarkVOR-8    	     100	  11022334 ns/op
BenchmarkKeyCodec 	 1000000	      1042 ns/op	      48 B/op	       2 allocs/op
PASS
ok  	penguin	12.345s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Errorf("headers: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkVOCD" || b.Procs != 8 || b.Package != "penguin" {
		t.Errorf("first benchmark: %+v", b)
	}
	if b.Iterations != 2150 || b.NsPerOp != 523148 || b.BytesPerOp != 187352 || b.AllocsPerOp != 2145 {
		t.Errorf("first benchmark values: %+v", b)
	}
	// Without -benchmem columns the memory fields stay -1.
	if b := rep.Benchmarks[1]; b.BytesPerOp != -1 || b.AllocsPerOp != -1 {
		t.Errorf("no-benchmem benchmark: %+v", b)
	}
	// No GOMAXPROCS suffix means procs defaults to 1.
	if b := rep.Benchmarks[2]; b.Procs != 1 || b.Name != "BenchmarkKeyCodec" {
		t.Errorf("suffix-free benchmark: %+v", b)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	rep, err := parse(strings.NewReader("PASS\nok \tpenguin\t1s\nBenchmarkBroken notanumber ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("noise parsed as benchmarks: %+v", rep.Benchmarks)
	}
}
