// Command penguin-figures regenerates every evaluation artifact of the
// paper — Figures 1-4, the §6 translator-selection dialog, and the §6
// replacement example — as deterministic text, either to stdout or to a
// file.
//
// Usage:
//
//	penguin-figures [-out report.txt]
package main

import (
	"flag"
	"fmt"
	"os"

	"penguin/internal/figures"
)

func main() {
	out := flag.String("out", "", "write the report to this file instead of stdout")
	flag.Parse()

	report, err := figures.All()
	if err != nil {
		fmt.Fprintln(os.Stderr, "penguin-figures:", err)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Print(report)
		return
	}
	if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "penguin-figures:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d bytes to %s\n", len(report), *out)
}
