// Command penguin-figures regenerates every evaluation artifact of the
// paper — Figures 1-4, the §6 translator-selection dialog, and the §6
// replacement example — as deterministic text, either to stdout or to a
// file.
//
// Usage:
//
//	penguin-figures [-out report.txt] [-stats]
//
// With -stats, an "Engine statistics" section is appended to the report
// showing the metrics the run accumulated (transactions committed,
// tuples scanned, §5 step timings, ...).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"penguin/internal/figures"
	"penguin/internal/obs"
)

func main() {
	out := flag.String("out", "", "write the report to this file instead of stdout")
	stats := flag.Bool("stats", false, "append engine metrics accumulated while generating the figures")
	flag.Parse()

	before := obs.Capture()
	report, err := figures.All()
	if err != nil {
		fmt.Fprintln(os.Stderr, "penguin-figures:", err)
		os.Exit(1)
	}
	if *stats {
		delta := obs.Capture().Sub(before)
		var b strings.Builder
		b.WriteString(report)
		b.WriteString("\n== Engine statistics ==\n\n")
		if err := obs.WriteText(&b, delta); err != nil {
			fmt.Fprintln(os.Stderr, "penguin-figures:", err)
			os.Exit(1)
		}
		report = b.String()
	}
	if *out == "" {
		fmt.Print(report)
		return
	}
	if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "penguin-figures:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d bytes to %s\n", len(report), *out)
}
