package main

import (
	"strings"
	"testing"
)

func report(ns map[string]float64) *Report {
	r := &Report{Goos: "linux", Goarch: "amd64", CPU: "test"}
	for name, v := range ns {
		r.Benchmarks = append(r.Benchmarks, Benchmark{Name: name, Package: "p", NsPerOp: v})
	}
	return r
}

func TestDiffFlagsOnlyRegressions(t *testing.T) {
	base := report(map[string]float64{"A": 100, "B": 100, "C": 100, "Gone": 50})
	cur := report(map[string]float64{"A": 129, "B": 131, "C": 50, "New": 10})
	var out strings.Builder
	n, err := diff(&out, base, cur, 0.30, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("regressions = %d, want 1 (only B is beyond 30%%)\n%s", n, out.String())
	}
	text := out.String()
	for _, want := range []string{"REGRESSED p.B", "improved  p.C", "new       p.New", "missing   p.Gone"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "p.A ") && strings.Contains(text, "REGRESSED p.A") {
		t.Fatalf("A within tolerance was flagged:\n%s", text)
	}
}

func TestDiffSkipsCrossEnvironment(t *testing.T) {
	base := report(map[string]float64{"A": 100})
	cur := report(map[string]float64{"A": 1000})
	cur.CPU = "other"
	var out strings.Builder
	n, err := diff(&out, base, cur, 0.30, false)
	if err != nil || n != 0 {
		t.Fatalf("cross-environment diff = %d, %v (want skip)", n, err)
	}
	if !strings.Contains(out.String(), "skipping comparison") {
		t.Fatalf("no skip warning:\n%s", out.String())
	}
	// -strict forces the comparison.
	out.Reset()
	n, err = diff(&out, base, cur, 0.30, true)
	if err != nil || n != 1 {
		t.Fatalf("strict cross-environment diff = %d, %v (want 1 regression)", n, err)
	}
}

func TestDiffRejectsNegativeTolerance(t *testing.T) {
	if _, err := diff(&strings.Builder{}, report(nil), report(nil), -0.1, false); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}
