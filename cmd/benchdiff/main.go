// Command benchdiff compares a fresh bench2json report against a stored
// baseline and fails when a benchmark regressed beyond the tolerance.
// It is the trace-driven regression gate: bench-smoke catches benchmarks
// that break, benchdiff catches benchmarks that slow down.
//
// Usage:
//
//	go test -bench=. ./... | bench2json | benchdiff -baseline BENCH_baseline.json
//
// Only slowdowns fail (exit 1). Improvements, benchmarks new in the
// current run, and benchmarks missing from it are reported but pass:
// the gate exists to catch regressions, not churn. When the current
// report's goos/goarch/cpu differ from the baseline's, the comparison is
// skipped with a warning (cross-hardware ns/op is noise), unless -strict
// forces it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// Benchmark and Report mirror cmd/bench2json's output schema.
type Benchmark struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline report to compare against")
	currentPath := flag.String("current", "-", "current report ('-' reads stdin)")
	tolerance := flag.Float64("tolerance", 0.30, "allowed fractional ns/op slowdown before failing")
	strict := flag.Bool("strict", false, "compare even when goos/goarch/cpu differ from the baseline")
	flag.Parse()

	base, err := loadReport(*baselinePath)
	if err != nil {
		fatal(err)
	}
	cur, err := loadCurrent(*currentPath)
	if err != nil {
		fatal(err)
	}
	regressions, err := diff(os.Stdout, base, cur, *tolerance, *strict)
	if err != nil {
		fatal(err)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond %.0f%% tolerance\n",
			regressions, *tolerance*100)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

func loadCurrent(path string) (*Report, error) {
	if path == "-" {
		return decodeReport(os.Stdin, "stdin")
	}
	return loadReport(path)
}

func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return decodeReport(f, path)
}

func decodeReport(r io.Reader, name string) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return &rep, nil
}

// key identifies a benchmark across reports.
func key(b Benchmark) string { return b.Package + "." + b.Name }

// diff compares cur against base and returns the number of regressions.
// All findings are written to w, one line per benchmark that changed
// state (regressed, improved, appeared, disappeared).
func diff(w io.Writer, base, cur *Report, tolerance float64, strict bool) (int, error) {
	if tolerance < 0 {
		return 0, fmt.Errorf("negative tolerance %v", tolerance)
	}
	if !strict && !sameEnvironment(base, cur) {
		fmt.Fprintf(w, "benchdiff: environment differs from baseline (%s/%s/%s vs %s/%s/%s); skipping comparison (use -strict to force)\n",
			cur.Goos, cur.Goarch, cur.CPU, base.Goos, base.Goarch, base.CPU)
		return 0, nil
	}
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[key(b)] = b
	}
	curBy := make(map[string]Benchmark, len(cur.Benchmarks))
	regressions := 0
	for _, c := range cur.Benchmarks {
		curBy[key(c)] = c
		b, ok := baseBy[key(c)]
		if !ok {
			fmt.Fprintf(w, "new       %-60s %12.0f ns/op\n", key(c), c.NsPerOp)
			continue
		}
		if b.NsPerOp <= 0 {
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		switch {
		case ratio > 1+tolerance:
			regressions++
			fmt.Fprintf(w, "REGRESSED %-60s %12.0f -> %.0f ns/op (%+.1f%%)\n",
				key(c), b.NsPerOp, c.NsPerOp, (ratio-1)*100)
		case ratio < 1-tolerance:
			fmt.Fprintf(w, "improved  %-60s %12.0f -> %.0f ns/op (%+.1f%%)\n",
				key(c), b.NsPerOp, c.NsPerOp, (ratio-1)*100)
		}
	}
	var missing []string
	for k := range baseBy {
		if _, ok := curBy[k]; !ok {
			missing = append(missing, k)
		}
	}
	sort.Strings(missing)
	for _, k := range missing {
		fmt.Fprintf(w, "missing   %s (in baseline, not in current run)\n", k)
	}
	fmt.Fprintf(w, "benchdiff: %d compared, %d regressed (tolerance %.0f%%)\n",
		len(cur.Benchmarks), regressions, tolerance*100)
	return regressions, nil
}

func sameEnvironment(a, b *Report) bool {
	return a.Goos == b.Goos && a.Goarch == b.Goarch && a.CPU == b.CPU
}
