package main

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"penguin/internal/obs"
	"penguin/internal/university"
	"penguin/internal/viewobject"
	"penguin/internal/vupdate"
)

// TestShellRunLoop drives the whole interactive loop through a scripted
// stdin: RQL, object commands, a full translator dialog (answering the
// dialog's questions), a translated deletion, and .quit.
func TestShellRunLoop(t *testing.T) {
	db, g, err := university.NewSeeded()
	if err != nil {
		t.Fatal(err)
	}
	om := university.MustOmega(g)

	script := strings.Join([]string{
		"", // blank line is skipped
		"SELECT CourseID FROM COURSES WHERE Level = 'graduate' ORDER BY CourseID",
		".object omega",
		".dialog omega",
		// Dialog answers: insertion? deletion? peninsula? replacement?
		// then 5 relations' questions — answer everything yes except one
		// garbage line to exercise the re-prompt.
		"y", "y", "y", "maybe", "y",
		"y", "y", "n", // COURSES: keymod yes, dbkey yes, merge no
		"y", "y", "y", // CURRICULUM
		"y", "y", "y", // DEPARTMENT
		"y", "y", "n", // GRADES
		"y", "y", "y", // STUDENT
		".delete omega CS445",
		".stats",
		".trace 10",
		".quit",
	}, "\n") + "\n"

	var out bytes.Buffer
	sh := &shell{
		db: db, g: g,
		objects:  map[string]*viewobject.Definition{"omega": om},
		updaters: map[string]*vupdate.Updater{},
		out:      bufio.NewWriter(&out),
		errw:     &bytes.Buffer{},
		in:       bufio.NewReader(strings.NewReader(script)),
		ring:     obs.NewRing(64),
	}
	obs.Default.SetSink(sh.ring)
	defer obs.Default.SetSink(nil)
	sh.run()
	sh.out.Flush()
	text := out.String()
	for _, want := range []string{
		"CS345",
		"view object omega",
		"translator chosen after 19 question(s)",
		"translated into",
		// .stats renders the update-pipeline metrics the delete produced.
		"vupdate.updates.committed",
		"vupdate.step.translate_ns.count",
		// .trace shows the per-step spans and the commit.
		"vupdate.step.translate",
		"reldb.commit",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("run loop output missing %q:\n%s", want, text)
		}
	}
	if db.MustRelation(university.Courses).Has(keyOf("CS445")) {
		t.Fatal("dialog-driven delete did not run")
	}
}

// EOF on stdin exits the loop cleanly.
func TestShellRunLoopEOF(t *testing.T) {
	db, g, err := university.NewSeeded()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	sh := &shell{
		db: db, g: g,
		objects:  map[string]*viewobject.Definition{},
		updaters: map[string]*vupdate.Updater{},
		out:      bufio.NewWriter(&out),
		errw:     &bytes.Buffer{},
		in:       bufio.NewReader(strings.NewReader("SELECT * FROM STAFF")),
	}
	sh.run() // no trailing newline: statement runs? bufio returns EOF with partial line
}
