package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"penguin/internal/reldb"
)

// serveChildEnv carries the durable data directory to the re-executed
// child, which runs the real `penguin -serve -data-dir` entrypoint.
const serveChildEnv = "PENGUIN_SERVE_CHILD_DIR"

// postJSON posts a JSON body and returns the decoded response map.
func postJSON(t *testing.T, client *http.Client, url string, body any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
	return resp.StatusCode, doc
}

// TestServeSignalDurability is the server-lifecycle fix's end-to-end
// proof. A child process (this binary re-executed) runs the real main()
// in `-serve -data-dir` mode; the parent drives sequential acknowledged
// VO-R updates over HTTP, records each response's committed generation,
// SIGTERMs the child with one more update in flight, and reopens the
// directory. Every acknowledged generation must survive — the old
// deferred-Close teardown never ran on a signal, so the final state
// depended on luck rather than the WAL's ack contract.
func TestServeSignalDurability(t *testing.T) {
	if dir := os.Getenv(serveChildEnv); dir != "" {
		os.Args = []string{"penguin", "-serve", "127.0.0.1:0", "-data-dir", dir}
		main()
		return // unreachable: serve mode blocks until the signal exits
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestServeSignalDurability$", "-test.v")
	cmd.Env = append(os.Environ(), serveChildEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var childErr bytes.Buffer
	cmd.Stderr = &childErr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The child prints its resolved listening address once the tier is
	// up; parse it off the pipe.
	addrRe := regexp.MustCompile(`http://([^/\s]+)/objects`)
	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
			base = "http://" + m[1]
			break
		}
	}
	if base == "" {
		t.Fatalf("child never announced its address; stderr:\n%s", childErr.String())
	}
	go func() { // keep draining so the child never blocks on a full pipe
		for sc.Scan() {
		}
	}()

	// Fetch the current omega instance once, then drive sequential
	// replacements that stamp Title with the attempt index. Each 200
	// carries the committed generation — that response IS the ack.
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(base + "/objects/omega/CS101")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET omega/CS101: %d %v", resp.StatusCode, doc)
	}

	const acks = 8
	var lastGen uint64
	for i := 1; i <= acks; i++ {
		doc["Title"] = fmt.Sprintf("acked-%d", i)
		status, res := postJSON(t, client, base+"/objects/omega:replace", map[string]any{
			"key":      []any{"CS101"},
			"instance": doc,
		})
		if status != http.StatusOK {
			t.Fatalf("replace %d: %d %v", i, status, res)
		}
		gen, ok := res["generation"].(float64)
		if !ok || uint64(gen) <= lastGen {
			t.Fatalf("replace %d: generation %v did not advance past %d", i, res["generation"], lastGen)
		}
		lastGen = uint64(gen)
	}

	// One more update races the signal: fired but not awaited, so the
	// drain either completes and commits it or sheds it — both legal.
	go func() {
		doc["Title"] = fmt.Sprintf("acked-%d", acks+1)
		raw, _ := json.Marshal(map[string]any{"key": []any{"CS101"}, "instance": doc})
		r, err := client.Post(base+"/objects/omega:replace", "application/json", bytes.NewReader(raw))
		if err == nil {
			r.Body.Close()
		}
	}()

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("signaled child exited abnormally: %v; stderr:\n%s", err, childErr.String())
	}

	// Recovery: every acknowledged generation (and the Title stamp of at
	// least the last awaited ack) must be in the reopened database.
	db, err := reldb.OpenDatabase(dir)
	if err != nil {
		t.Fatalf("reopen after SIGTERM: %v", err)
	}
	defer db.Close()
	if g := db.Generation(); g < lastGen {
		t.Fatalf("recovered generation %d lost acknowledged generation %d", g, lastGen)
	}
	rtx := db.BeginRead()
	defer rtx.Close()
	rel, err := rtx.Relation("COURSES")
	if err != nil {
		t.Fatal(err)
	}
	row, ok := rel.Get(reldb.Tuple{reldb.String("CS101")})
	if !ok {
		t.Fatal("CS101 vanished across the restart")
	}
	idx, ok := rel.Schema().AttrIndex("Title")
	if !ok {
		t.Fatal("COURSES has no Title attribute")
	}
	title := row[idx].MustString()
	k, err := strconv.Atoi(strings.TrimPrefix(title, "acked-"))
	if err != nil || k < acks {
		t.Fatalf("recovered Title %q, want acked-k with k >= %d (the last acknowledged update)", title, acks)
	}
}
