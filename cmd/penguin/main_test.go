package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"strconv"
	"strings"
	"testing"

	"penguin/internal/obs"
	"penguin/internal/reldb"
	"penguin/internal/university"
	"penguin/internal/viewobject"
	"penguin/internal/vupdate"
)

func keyOf(id string) reldb.Tuple { return reldb.Tuple{reldb.String(id)} }

// testShell builds a shell over the seeded university with ω and ω′
// registered. Stdout and stderr are captured in separate buffers (the
// shell routes errors to stderr); out holds stdout, sh.errw the errors.
func testShell(t *testing.T) (*shell, *bytes.Buffer) {
	t.Helper()
	db, g, err := university.NewSeeded()
	if err != nil {
		t.Fatal(err)
	}
	om := university.MustOmega(g)
	op := university.MustOmegaPrime(g)
	var out bytes.Buffer
	sh := &shell{
		db: db, g: g,
		objects:      map[string]*viewobject.Definition{"omega": om, "omega-prime": op},
		updaters:     make(map[string]*vupdate.Updater),
		materialized: make(map[string]*viewobject.Materializer),
		out:          bufio.NewWriter(&out),
		errw:         &bytes.Buffer{},
		in:           bufio.NewReader(strings.NewReader("")),
		ring:         obs.NewRing(64),
	}
	obs.Default.SetSink(sh.ring)
	t.Cleanup(func() { obs.Default.SetSink(nil) })
	sh.updaters["omega"] = vupdate.NewUpdater(vupdate.PermissiveTranslator(om))
	return sh, &out
}

// run executes one shell command (or RQL line) and returns stdout and
// stderr concatenated (stdout first), so assertions cover both streams.
func run(t *testing.T, sh *shell, out *bytes.Buffer, line string) string {
	t.Helper()
	out.Reset()
	sh.errw.(*bytes.Buffer).Reset()
	if strings.HasPrefix(line, ".") {
		sh.command(line)
	} else {
		sh.execRQL(line)
	}
	sh.out.Flush()
	return out.String() + sh.errw.(*bytes.Buffer).String()
}

func TestShellTablesAndSchema(t *testing.T) {
	sh, out := testShell(t)
	text := run(t, sh, out, ".tables")
	for _, want := range []string{"COURSES", "GRADES", "DEPARTMENT"} {
		if !strings.Contains(text, want) {
			t.Errorf(".tables missing %q:\n%s", want, text)
		}
	}
	text = run(t, sh, out, ".schema COURSES")
	if !strings.Contains(text, "key(CourseID)") {
		t.Errorf(".schema output:\n%s", text)
	}
	text = run(t, sh, out, ".schema NOPE")
	if !strings.Contains(text, "error") {
		t.Errorf("missing error:\n%s", text)
	}
	text = run(t, sh, out, ".schema")
	if !strings.Contains(text, "usage") {
		t.Errorf("missing usage:\n%s", text)
	}
}

func TestShellRQL(t *testing.T) {
	sh, out := testShell(t)
	text := run(t, sh, out, "SELECT CourseID FROM COURSES WHERE Level = 'graduate' ORDER BY CourseID")
	for _, want := range []string{"CS345", "CS445", "EE380", "(3 rows)"} {
		if !strings.Contains(text, want) {
			t.Errorf("query output missing %q:\n%s", want, text)
		}
	}
	text = run(t, sh, out, "DELETE FROM STAFF")
	if !strings.Contains(text, "1 row(s) affected") {
		t.Errorf("mutation output:\n%s", text)
	}
	text = run(t, sh, out, "SELEKT nonsense")
	if !strings.Contains(text, "error") {
		t.Errorf("bad RQL should error:\n%s", text)
	}
	text = run(t, sh, out, "CREATE TABLE T (a int) KEY (a)")
	if !strings.Contains(text, "created T") {
		t.Errorf("DDL output:\n%s", text)
	}
}

func TestShellObjects(t *testing.T) {
	sh, out := testShell(t)
	text := run(t, sh, out, ".objects")
	if !strings.Contains(text, "omega") || !strings.Contains(text, "complexity 5") {
		t.Errorf(".objects output:\n%s", text)
	}
	text = run(t, sh, out, ".object omega")
	if !strings.Contains(text, "--* GRADES") {
		t.Errorf(".object output:\n%s", text)
	}
	text = run(t, sh, out, ".object nope")
	if !strings.Contains(text, "no object named") {
		t.Errorf("unknown object output:\n%s", text)
	}
	text = run(t, sh, out, ".graph")
	if !strings.Contains(text, "Structural schema") {
		t.Errorf(".graph output:\n%s", text)
	}
}

func TestShellQueryAndInstance(t *testing.T) {
	sh, out := testShell(t)
	text := run(t, sh, out, ".query omega Level = 'graduate' and count(STUDENT) < 5")
	if !strings.Contains(text, "2 instance(s)") || !strings.Contains(text, "CS345") {
		t.Errorf(".query output:\n%s", text)
	}
	text = run(t, sh, out, ".instance omega CS345")
	if !strings.Contains(text, "COURSES: (CS345") {
		t.Errorf(".instance output:\n%s", text)
	}
	text = run(t, sh, out, ".instance omega NOPE")
	if !strings.Contains(text, "no instance") {
		t.Errorf("missing-instance output:\n%s", text)
	}
	text = run(t, sh, out, ".instance omega")
	if !strings.Contains(text, "usage") {
		t.Errorf("usage output:\n%s", text)
	}
	// ω′ has an int... no, pivot is COURSES everywhere; test key arity.
	text = run(t, sh, out, ".instance omega CS345 extra")
	if !strings.Contains(text, "has 1 attribute(s)") {
		t.Errorf("arity output:\n%s", text)
	}
}

func TestShellDelete(t *testing.T) {
	sh, out := testShell(t)
	text := run(t, sh, out, ".delete omega CS445")
	if !strings.Contains(text, "translated into") {
		t.Errorf(".delete output:\n%s", text)
	}
	if sh.db.MustRelation(university.Courses).Has(keyOf("CS445")) {
		t.Fatal("CS445 survived")
	}
	// ω′ has no updater registered in the test shell.
	text = run(t, sh, out, ".delete omega-prime CS101")
	if !strings.Contains(text, "no translator chosen") {
		t.Errorf("missing-translator output:\n%s", text)
	}
}

func TestShellMaterialize(t *testing.T) {
	sh, out := testShell(t)
	text := run(t, sh, out, ".materialize")
	if !strings.Contains(text, "off for every object") {
		t.Errorf("initial .materialize output:\n%s", text)
	}
	text = run(t, sh, out, ".materialize omega")
	if !strings.Contains(text, "omega: materialized, 6 instance(s)") {
		t.Errorf(".materialize omega output:\n%s", text)
	}
	// Queries and instance lookups now serve from the patched cache.
	text = run(t, sh, out, ".query omega Level = 'graduate' and count(STUDENT) < 5")
	if !strings.Contains(text, "2 instance(s)") || !strings.Contains(text, "CS345") {
		t.Errorf("materialized .query output:\n%s", text)
	}
	// A committed deletion must surface through the cache on the next read.
	if _, err := sh.updaters["omega"].DeleteByKey(keyOf("CS445")); err != nil {
		t.Fatal(err)
	}
	text = run(t, sh, out, ".instance omega CS445")
	if !strings.Contains(text, "no instance") {
		t.Errorf("materialized .instance after delete:\n%s", text)
	}
	text = run(t, sh, out, ".query omega Level = 'graduate' and count(STUDENT) < 5")
	if !strings.Contains(text, "1 instance(s)") {
		t.Errorf("materialized .query after delete:\n%s", text)
	}
	text = run(t, sh, out, ".materialize")
	if !strings.Contains(text, "omega: materialized, 5 instance(s)") {
		t.Errorf(".materialize status output:\n%s", text)
	}
	text = run(t, sh, out, ".materialize omega off")
	if !strings.Contains(text, "materialization off") {
		t.Errorf(".materialize off output:\n%s", text)
	}
	if len(sh.materialized) != 0 {
		t.Fatal("materializer not removed")
	}
	text = run(t, sh, out, ".materialize omega bogus")
	if !strings.Contains(text, "usage") {
		t.Errorf("bad-arg output:\n%s", text)
	}
}

func TestShellFiguresAndHelp(t *testing.T) {
	sh, out := testShell(t)
	text := run(t, sh, out, ".figures")
	if !strings.Contains(text, "Figure 4") {
		t.Errorf(".figures output too short")
	}
	text = run(t, sh, out, ".help")
	if !strings.Contains(text, ".dialog NAME") {
		t.Errorf(".help output:\n%s", text)
	}
	text = run(t, sh, out, ".bogus")
	if !strings.Contains(text, "unknown command") {
		t.Errorf("unknown command output:\n%s", text)
	}
}

func TestShellParallel(t *testing.T) {
	sh, out := testShell(t)
	prev := viewobject.SetParallelism(0)
	t.Cleanup(func() { viewobject.SetParallelism(prev) })

	text := run(t, sh, out, ".parallel 3")
	if !strings.Contains(text, "parallelism: 3 workers") {
		t.Errorf(".parallel 3 output:\n%s", text)
	}
	if got := viewobject.Parallelism(); got != 3 {
		t.Errorf("Parallelism = %d after .parallel 3", got)
	}
	text = run(t, sh, out, ".parallel")
	if !strings.Contains(text, "parallelism: 3 workers") {
		t.Errorf(".parallel output:\n%s", text)
	}
	// 0 restores GOMAXPROCS tracking; the reported value is the effective
	// budget, not the raw setting.
	text = run(t, sh, out, ".parallel 0")
	if !strings.Contains(text, "parallelism: ") {
		t.Errorf(".parallel 0 output:\n%s", text)
	}
	text = run(t, sh, out, ".parallel nope")
	if !strings.Contains(text, "usage: .parallel") {
		t.Errorf(".parallel nope output:\n%s", text)
	}
}

func TestShellSaveLoad(t *testing.T) {
	sh, out := testShell(t)
	dir := t.TempDir()
	path := dir + "/snap.db"
	text := run(t, sh, out, ".save "+path)
	if !strings.Contains(text, "saved") {
		t.Fatalf(".save output:\n%s", text)
	}
	run(t, sh, out, "DELETE FROM GRADES")
	text = run(t, sh, out, ".load "+path)
	if !strings.Contains(text, "loaded") {
		t.Fatalf(".load output:\n%s", text)
	}
	if sh.db.MustRelation(university.Grades).Count() == 0 {
		t.Fatal("load did not restore data")
	}
	text = run(t, sh, out, ".load /nonexistent/file")
	if !strings.Contains(text, "error") {
		t.Errorf("missing load error:\n%s", text)
	}
}

// Errors must land on stderr only; stdout stays clean for piping.
func TestShellErrorsGoToStderr(t *testing.T) {
	sh, out := testShell(t)
	out.Reset()
	errBuf := sh.errw.(*bytes.Buffer)
	errBuf.Reset()
	sh.execRQL("SELEKT nonsense")
	sh.out.Flush()
	if out.Len() != 0 {
		t.Errorf("RQL error leaked to stdout: %q", out.String())
	}
	if !strings.Contains(errBuf.String(), "error") {
		t.Errorf("stderr missing error: %q", errBuf.String())
	}
	errBuf.Reset()
	sh.command(".bogus")
	sh.out.Flush()
	if out.Len() != 0 {
		t.Errorf("unknown-command error leaked to stdout: %q", out.String())
	}
	if !strings.Contains(errBuf.String(), "unknown command") {
		t.Errorf("stderr missing unknown-command: %q", errBuf.String())
	}
}

func TestShellStatsAndTrace(t *testing.T) {
	sh, out := testShell(t)
	run(t, sh, out, ".delete omega CS445")

	text := run(t, sh, out, ".stats")
	for _, want := range []string{
		"reldb.tx.commits ",
		"vupdate.updates.committed ",
		"vupdate.step.translate_ns.count ",
		"vupdate.ops.delete ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf(".stats missing %q:\n%s", want, text)
		}
	}

	text = run(t, sh, out, ".trace")
	for _, want := range []string{"vupdate.step.translate", "vupdate.update", "reldb.commit"} {
		if !strings.Contains(text, want) {
			t.Errorf(".trace missing %q:\n%s", want, text)
		}
	}

	text = run(t, sh, out, ".trace 2")
	if got := len(strings.Split(strings.TrimSpace(text), "\n")); got != 2 {
		t.Errorf(".trace 2 printed %d lines:\n%s", got, text)
	}
	text = run(t, sh, out, ".trace bogus")
	if !strings.Contains(text, "usage") {
		t.Errorf(".trace bogus output:\n%s", text)
	}
}

func TestShellTraceSlowAndExport(t *testing.T) {
	sh, out := testShell(t)
	sh.rec = obs.NewRecorder(0, 8) // threshold 0: retain every operation
	obs.Default.SetRecorder(sh.rec)
	t.Cleanup(func() { obs.Default.SetRecorder(nil) })

	text := run(t, sh, out, ".trace slow")
	if !strings.Contains(text, "no slow traces retained") {
		t.Errorf(".trace slow before any op:\n%s", text)
	}

	run(t, sh, out, ".delete omega CS445")

	text = run(t, sh, out, ".trace slow")
	if !strings.Contains(text, "vupdate.update") {
		t.Errorf(".trace slow listing missing the update trace:\n%s", text)
	}

	// Render the last retained trace (the vupdate.update op) as a tree.
	traces := sh.rec.Traces()
	if len(traces) == 0 {
		t.Fatal("recorder retained no traces")
	}
	n := len(traces)
	text = run(t, sh, out, ".trace slow "+strconv.Itoa(n))
	for _, want := range []string{"vupdate.update", "vupdate.step.translate", "reldb.commit"} {
		if !strings.Contains(text, want) {
			t.Errorf(".trace slow %d missing %q:\n%s", n, want, text)
		}
	}

	file := t.TempDir() + "/trace.json"
	text = run(t, sh, out, ".trace export "+strconv.Itoa(n)+" "+file)
	if !strings.Contains(text, "wrote trace") {
		t.Errorf(".trace export output:\n%s", text)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &chrome); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, data)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("exported trace has no events")
	}

	text = run(t, sh, out, ".trace slow 999")
	if !strings.Contains(text, "retained") {
		t.Errorf(".trace slow 999 output:\n%s", text)
	}
	text = run(t, sh, out, ".trace export 1")
	if !strings.Contains(text, "usage") {
		t.Errorf(".trace export 1 output:\n%s", text)
	}
}

func TestShellQuit(t *testing.T) {
	sh, _ := testShell(t)
	if !sh.command(".quit") || !sh.command(".exit") {
		t.Fatal("quit should return true")
	}
}

func TestShellPreview(t *testing.T) {
	sh, out := testShell(t)
	text := run(t, sh, out, ".preview omega CS445")
	if !strings.Contains(text, "would translate into") || !strings.Contains(text, "nothing executed") {
		t.Fatalf(".preview output:\n%s", text)
	}
	if !sh.db.MustRelation(university.Courses).Has(keyOf("CS445")) {
		t.Fatal("preview mutated the database")
	}
	text = run(t, sh, out, ".preview omega-prime CS101")
	if !strings.Contains(text, "no translator chosen") {
		t.Fatalf("missing-translator output:\n%s", text)
	}
}

// .prom renders the live registry as Prometheus text exposition: lint-
// clean, with the per-object update-pipeline series split by view-object
// name.
func TestShellProm(t *testing.T) {
	sh, out := testShell(t)
	run(t, sh, out, ".delete omega CS445")

	text := run(t, sh, out, ".prom")
	if err := obs.CheckExposition(text); err != nil {
		t.Fatalf(".prom output fails exposition lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# TYPE reldb_tx_commits counter",
		"# TYPE vupdate_step_translate_ns histogram",
		`vupdate_updates_committed{object="omega"}`,
		`le="+Inf"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf(".prom missing %q:\n%s", want, text)
		}
	}
}

// .checkpoint is a no-op with a pointer to -data-dir on an in-memory
// session, and writes a real snapshot (pruning the WAL) on a durable one
// whose state then survives a reopen.
func TestShellCheckpoint(t *testing.T) {
	sh, out := testShell(t)
	text := run(t, sh, out, ".checkpoint")
	if !strings.Contains(text, "-data-dir") {
		t.Fatalf("in-memory .checkpoint should point at -data-dir:\n%s", text)
	}

	dir := t.TempDir()
	db, err := reldb.OpenDatabaseWith(dir, reldb.OpenOptions{CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	sh.db = db
	if _, err := db.CreateRelation(reldb.MustSchema("T", []reldb.Attribute{
		{Name: "K", Type: reldb.KindInt},
	}, []string{"K"})); err != nil {
		t.Fatal(err)
	}
	if err := db.RunInTx(func(tx *reldb.Tx) error {
		return tx.Insert("T", reldb.Tuple{reldb.Int(7)})
	}); err != nil {
		t.Fatal(err)
	}
	text = run(t, sh, out, ".checkpoint")
	if !strings.Contains(text, "checkpoint written at generation 2") {
		t.Fatalf(".checkpoint output:\n%s", text)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := reldb.OpenDatabaseWith(dir, reldb.OpenOptions{CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if g := re.Generation(); g != 2 {
		t.Fatalf("reopened generation = %d, want 2", g)
	}
	rel, err := re.Relation("T")
	if err != nil || rel.Count() != 1 {
		t.Fatalf("reopened T: %v, count %d", err, rel.Count())
	}
}
