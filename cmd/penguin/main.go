// Command penguin is an interactive shell over the PENGUIN system: RQL
// statements run directly against the database; dot-commands expose the
// view-object layer (definitions, instantiation, object queries, update
// translation, and translator-selection dialogs).
//
// Usage:
//
//	penguin                   # start with the seeded university database
//	penguin -empty            # start with an empty database (RQL only)
//	penguin -load snapshot.db # load a snapshot written by .save
//	penguin -data-dir DIR     # open a durable database (WAL + checkpoints);
//	                          # recovers committed state after a crash
//	penguin -metrics-addr :9090 # additionally serve Prometheus metrics at /metrics
//	                            # (plus /debug/traces and /debug/pprof/)
//	penguin -slow-threshold 5ms # retain traces of operations slower than 5ms
//	penguin -serve :8080      # serve the view-object HTTP API (DESIGN.md §14)
//	                          # instead of the shell; combine with -data-dir
//	                          # for durability; SIGINT/SIGTERM drains and
//	                          # closes cleanly
//	penguin -shards 4         # partition the university database over 4
//	                          # shards (pivot-key hash; DESIGN.md §15);
//	                          # works with the shell and with -serve, and
//	                          # with -data-dir keeps one WAL per shard
//	penguin -loadgen http://host:8080 # run the open-loop load generator
//	                          # against a serving tier, report latency
//	                          # quantiles against -slo-p50/-slo-p99, exit
//
// Commands:
//
//	<RQL statement>           e.g. SELECT * FROM COURSES WHERE Units > 3
//	.tables                   list relations
//	.schema REL               show one relation's schema
//	.graph                    render the structural schema (Figure 1)
//	.objects                  list defined view objects
//	.object NAME              render a view object's tree
//	.query NAME [OQL]         run an object query, e.g.
//	                          .query omega Level = 'graduate' and count(STUDENT) < 5
//	.instance NAME KEY        assemble one instance by pivot key
//	.delete NAME KEY          complete deletion (VO-CD) by pivot key
//	.dialog NAME              run the translator-selection dialog
//	.figures                  regenerate the paper's figures
//	.materialize [NAME [on|off]]  serve NAME's queries from the delta-patched cache
//	.parallel [N]             show or set the instantiation worker budget
//	.shards                   show per-shard generations, rows, and WAL activity
//	.stats                    dump engine metrics (counters and histograms)
//	.prom                     dump engine metrics in Prometheus exposition format
//	.trace [N]                show the last N trace events (default 20)
//	.trace slow [N]           list retained slow traces, or render the Nth
//	.trace export N FILE      write the Nth slow trace as Chrome trace JSON
//	.save FILE / .load FILE   snapshot the database
//	.checkpoint               write a durable checkpoint and prune the WAL
//	.help / .quit
//
// Errors go to stderr; results go to stdout, so output can be piped.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"penguin/internal/figures"
	"penguin/internal/obs"
	"penguin/internal/oql"
	"penguin/internal/reldb"
	"penguin/internal/reldb/shard"
	"penguin/internal/rql"
	"penguin/internal/serve"
	"penguin/internal/structural"
	"penguin/internal/university"
	"penguin/internal/viewobject"
	"penguin/internal/vupdate"
	"penguin/internal/workload"
)

// shell holds the interactive session state.
type shell struct {
	db *reldb.Database
	// cluster is set in -shards sessions: object reads and updates route
	// through the coordinator, and db aliases shard 0 so plain RQL still
	// works (against that shard's replica of the non-island relations).
	cluster  *shard.Cluster
	g        *structural.Graph
	objects  map[string]*viewobject.Definition
	updaters map[string]*vupdate.Updater
	// materialized holds the delta-stream cache per object name for
	// objects with .materialize enabled; .query and .instance route
	// through it instead of instantiating from a fresh snapshot.
	materialized map[string]*viewobject.Materializer
	out          *bufio.Writer
	errw         io.Writer
	in           *bufio.Reader
	// ring buffers trace events for .trace; installed as the engine's
	// trace sink when the shell starts.
	ring *obs.Ring
	// rec is the flight recorder behind .trace slow; installed on the
	// default registry when the shell starts.
	rec *obs.Recorder
}

// errorf reports a failure on the error stream. Results stay on out so
// piped output is clean.
func (sh *shell) errorf(format string, args ...any) {
	sh.out.Flush() // keep ordering sensible when both streams share a terminal
	fmt.Fprintf(sh.errw, format+"\n", args...)
}

// lifecycle owns the process's teardown: drain the HTTP listener (if
// any), then close the database (if durable). It runs exactly once
// whether triggered by a signal, a .quit, or end of input — the fix for
// the old deferred Close calls, which never ran when SIGINT/SIGTERM
// killed the process and so skipped the database's final fsync.
type lifecycle struct {
	mu   sync.Mutex    // guards srv/db against the signal goroutine
	done chan struct{} // non-nil once a shutdown started; closed when it finished
	srv  *obs.HTTPServer
	db   io.Closer // the database — or the shard cluster — to close
}

// setServer registers the listener the shutdown must drain.
func (lc *lifecycle) setServer(srv *obs.HTTPServer) {
	lc.mu.Lock()
	lc.srv = srv
	lc.mu.Unlock()
}

// setDB registers the database (or shard cluster) the shutdown must
// close.
func (lc *lifecycle) setDB(db io.Closer) {
	lc.mu.Lock()
	lc.db = db
	lc.mu.Unlock()
}

// shutdown drains and closes. Safe to call from any goroutine, any
// number of times; only the first call acts, and every call returns
// only after the teardown has finished.
func (lc *lifecycle) shutdown() {
	lc.mu.Lock()
	if lc.done != nil {
		ch := lc.done
		lc.mu.Unlock()
		<-ch
		return
	}
	ch := make(chan struct{})
	lc.done = ch
	srv, db := lc.srv, lc.db
	lc.mu.Unlock()
	defer close(ch)
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "penguin: drain:", err)
		}
		cancel()
	}
	if db != nil {
		if err := db.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "penguin: close:", err)
		}
	}
}

// trapSignals makes SIGINT/SIGTERM run the lifecycle before exiting, so
// a signaled process loses nothing it acknowledged.
func trapSignals(lc *lifecycle) {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "\npenguin: %v — draining connections and closing the database\n", sig)
		lc.shutdown()
		os.Exit(0)
	}()
}

func main() {
	empty := flag.Bool("empty", false, "start with an empty database instead of the seeded university")
	load := flag.String("load", "", "load a database snapshot")
	dataDir := flag.String("data-dir", "", "open a durable database in this directory (write-ahead logged; recovers after a crash)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus metrics at http://ADDR/metrics (e.g. :9090)")
	slowThreshold := flag.Duration("slow-threshold", 25*time.Millisecond,
		"retain traces of operations whose root span lasts at least this long (0 retains every operation)")
	serveAddr := flag.String("serve", "", "serve the view-object HTTP API at ADDR (e.g. :8080) instead of the shell")
	shards := flag.Int("shards", 1, "partition the university database over N shards (pivot-key hash); combine with -data-dir for per-shard WALs")
	maxReads := flag.Int("max-reads", 0, "serving tier: max in-flight read requests before shedding (0 = default 64, negative = unbounded)")
	maxWrites := flag.Int("max-writes", 0, "serving tier: max in-flight update requests before shedding (0 = default 16, negative = unbounded)")
	loadgenURL := flag.String("loadgen", "", "drive an open-loop load run against the serving tier at URL, report, and exit")
	lgObject := flag.String("object", "omega", "loadgen: view object to target")
	lgRPS := flag.Float64("rps", 100, "loadgen: target arrival rate, operations per second")
	lgDuration := flag.Duration("duration", 10*time.Second, "loadgen: run length")
	lgReadFraction := flag.Float64("read-fraction", 0.9, "loadgen: fraction of operations that are reads")
	lgMutateAttr := flag.String("mutate-attr", "Title", "loadgen: pivot attribute update operations rewrite")
	lgSLOp50 := flag.Duration("slo-p50", 0, "loadgen: p50 latency objective (0 = unchecked)")
	lgSLOp99 := flag.Duration("slo-p99", 0, "loadgen: p99 latency objective (0 = unchecked)")
	flag.Parse()

	if *loadgenURL != "" {
		runLoadgen(workload.OpenLoopSpec{
			BaseURL:      *loadgenURL,
			Object:       *lgObject,
			TargetRPS:    *lgRPS,
			Duration:     *lgDuration,
			ReadFraction: *lgReadFraction,
			MutateAttr:   *lgMutateAttr,
			SLOp50:       *lgSLOp50,
			SLOp99:       *lgSLOp99,
		})
		return
	}
	if *shards < 1 {
		fatal(fmt.Errorf("invalid -shards %d", *shards))
	}
	if *serveAddr != "" {
		runServe(*serveAddr, *dataDir, *shards, *maxReads, *maxWrites, *slowThreshold)
		return
	}

	lc := &lifecycle{}
	trapSignals(lc)
	sh := &shell{
		objects:      make(map[string]*viewobject.Definition),
		updaters:     make(map[string]*vupdate.Updater),
		materialized: make(map[string]*viewobject.Materializer),
		out:          bufio.NewWriter(os.Stdout),
		errw:         os.Stderr,
		in:           bufio.NewReader(os.Stdin),
		ring:         obs.NewRing(256),
		rec:          obs.NewRecorder(*slowThreshold, 64),
	}
	obs.Default.SetSink(sh.ring)
	obs.Default.SetRecorder(sh.rec)
	if *metricsAddr != "" {
		ln, err := obs.Serve(*metricsAddr)
		if err != nil {
			fatal(err)
		}
		lc.setServer(ln)
		fmt.Printf("metrics: http://%s/metrics\n", ln.Addr())
	}
	switch {
	case *shards > 1:
		if *empty || *load != "" {
			fatal(errors.New("-shards cannot be combined with -empty or -load"))
		}
		var c *shard.Cluster
		if *dataDir != "" {
			var seeded bool
			var err error
			c, seeded, err = university.OpenSharded(*dataDir, *shards, reldb.OpenOptions{})
			if err != nil {
				fatal(err)
			}
			if seeded {
				fmt.Printf("seeded %s with the university instance over %d shards\n", *dataDir, *shards)
			} else {
				fmt.Printf("recovered %s (%d shards, %d rows, cluster generation %d)\n",
					*dataDir, c.N(), c.TotalRows(), c.Generation())
			}
		} else {
			var err error
			c, err = university.NewSharded(*shards)
			if err != nil {
				fatal(err)
			}
		}
		lc.setDB(c)
		sh.cluster = c
		sh.db = c.DB(0)
		for _, name := range c.Objects() {
			def, err := c.Object(name, 0)
			if err != nil {
				fatal(err)
			}
			sh.objects[name] = def
		}
		sh.g = sh.objects[university.ObjOmega].Graph()
		fmt.Printf("PENGUIN shell — university database over %d shards; objects: %s\n",
			c.N(), strings.Join(c.Objects(), ", "))
		fmt.Println("type .help for commands (.shards shows per-shard state)")
	case *dataDir != "":
		db, err := reldb.OpenDatabase(*dataDir)
		if err != nil {
			fatal(err)
		}
		lc.setDB(db)
		sh.db = db
		sh.g = structural.NewGraph(db)
		fmt.Printf("opened %s (%d relations, %d rows, generation %d)\n",
			*dataDir, len(db.Names()), db.TotalRows(), db.Generation())
	case *load != "":
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		db, err := reldb.ReadSnapshot(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		sh.db = db
		sh.g = structural.NewGraph(db)
		fmt.Printf("loaded %s (%d relations, %d rows)\n", *load, len(db.Names()), db.TotalRows())
	case *empty:
		sh.db = reldb.NewDatabase()
		sh.g = structural.NewGraph(sh.db)
	default:
		db, g, err := university.NewSeeded()
		if err != nil {
			fatal(err)
		}
		sh.db, sh.g = db, g
		om, err := university.Omega(g)
		if err != nil {
			fatal(err)
		}
		op, err := university.OmegaPrime(g)
		if err != nil {
			fatal(err)
		}
		sh.objects["omega"] = om
		sh.objects["omega-prime"] = op
		for name, def := range sh.objects {
			sh.updaters[name] = vupdate.NewUpdater(vupdate.PermissiveTranslator(def))
		}
		fmt.Println("PENGUIN shell — university database loaded; objects: omega, omega-prime")
		fmt.Println("type .help for commands")
	}
	sh.run()
	lc.shutdown()
}

// runServe runs the HTTP serving tier until a signal drains it: the
// university objects over either a fresh seeded in-memory database or a
// durable -data-dir one (recovered, schema ensured, seeded only when
// empty). With -shards N the same objects serve from an N-shard cluster
// — reads fan out, updates route through the coordinator. The
// acknowledged-write contract is the point of the careful teardown: a
// durable session commits through a synchronous WAL, so every 200 the
// tier returned stays committed across SIGTERM and the next start
// recovers it.
func runServe(addr, dataDir string, shards, maxReads, maxWrites int, slowThreshold time.Duration) {
	obs.Default.SetRecorder(obs.NewRecorder(slowThreshold, 64))
	lc := &lifecycle{}
	trapSignals(lc)

	if shards > 1 {
		var c *shard.Cluster
		if dataDir != "" {
			var seeded bool
			var err error
			c, seeded, err = university.OpenSharded(dataDir, shards, reldb.OpenOptions{})
			if err != nil {
				fatal(err)
			}
			if seeded {
				fmt.Printf("seeded %s with the university instance over %d shards\n", dataDir, shards)
			} else {
				fmt.Printf("recovered %s (%d shards, %d rows, cluster generation %d)\n",
					dataDir, c.N(), c.TotalRows(), c.Generation())
			}
		} else {
			var err error
			c, err = university.NewSharded(shards)
			if err != nil {
				fatal(err)
			}
		}
		lc.setDB(c)
		_, hs, err := serve.Start(addr, serve.Config{
			Cluster:          c,
			MaxReadInFlight:  maxReads,
			MaxWriteInFlight: maxWrites,
		})
		if err != nil {
			fatal(err)
		}
		lc.setServer(hs)
		fmt.Printf("serving view objects over %d shards at http://%s/objects (metrics at /metrics)\n",
			shards, hs.Addr())
		select {} // the signal handler exits the process after draining
	}

	var db *reldb.Database
	var g *structural.Graph
	if dataDir != "" {
		var err error
		db, err = reldb.OpenDatabase(dataDir)
		if err != nil {
			fatal(err)
		}
		lc.setDB(db)
		g, err = university.Install(db)
		if err != nil {
			fatal(err)
		}
		seeded, err := university.EnsureSeeded(db)
		if err != nil {
			fatal(err)
		}
		if seeded {
			fmt.Printf("seeded %s with the university instance\n", dataDir)
		} else {
			fmt.Printf("recovered %s (%d rows, generation %d)\n", dataDir, db.TotalRows(), db.Generation())
		}
	} else {
		var err error
		db, g, err = university.NewSeeded()
		if err != nil {
			fatal(err)
		}
	}
	om, err := university.Omega(g)
	if err != nil {
		fatal(err)
	}
	op, err := university.OmegaPrime(g)
	if err != nil {
		fatal(err)
	}
	objects := map[string]*viewobject.Definition{"omega": om, "omega-prime": op}
	updaters := make(map[string]*vupdate.Updater, len(objects))
	for name, def := range objects {
		updaters[name] = vupdate.NewUpdater(vupdate.PermissiveTranslator(def))
	}
	_, hs, err := serve.Start(addr, serve.Config{
		DB:               db,
		Objects:          objects,
		Updaters:         updaters,
		MaxReadInFlight:  maxReads,
		MaxWriteInFlight: maxWrites,
	})
	if err != nil {
		fatal(err)
	}
	lc.setServer(hs)
	fmt.Printf("serving view objects at http://%s/objects (metrics at /metrics)\n", hs.Addr())
	select {} // the signal handler exits the process after draining
}

// runLoadgen drives one open-loop run and exits 0 only if the run met
// its objectives: no transport/5xx errors and no SLO violations.
func runLoadgen(spec workload.OpenLoopSpec) {
	res, err := workload.RunOpenLoop(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res)
	if res.Errors > 0 || len(res.SLOViolations) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "penguin:", err)
	os.Exit(1)
}

// flushWriter flushes the shell's buffered output after every write so
// dialog prompts appear before the answer is read.
type flushWriter struct{ w *bufio.Writer }

// Write implements io.Writer.
func (f flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if err != nil {
		return n, err
	}
	return n, f.w.Flush()
}

func (sh *shell) run() {
	for {
		sh.out.Flush()
		fmt.Print("penguin> ")
		line, err := sh.in.ReadString('\n')
		if err != nil {
			fmt.Println()
			return
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			if sh.command(line) {
				return
			}
			continue
		}
		sh.execRQL(line)
	}
}

// execRQL runs one RQL statement and prints its outcome.
func (sh *shell) execRQL(line string) {
	out, err := rql.Exec(sh.db, line)
	switch {
	case err != nil:
		sh.errorf("error: %v", err)
	case out.Rows != nil:
		fmt.Fprint(sh.out, rql.FormatResult(out.Rows))
	case out.Message != "":
		fmt.Fprintln(sh.out, out.Message)
	default:
		fmt.Fprintf(sh.out, "%d row(s) affected\n", out.Affected)
	}
}

// command dispatches a dot-command; it returns true to exit the shell.
func (sh *shell) command(line string) bool {
	fields := strings.Fields(line)
	cmd := fields[0]
	args := fields[1:]
	switch cmd {
	case ".quit", ".exit":
		return true
	case ".help":
		sh.help()
	case ".tables":
		rtx := sh.db.BeginRead()
		for _, n := range rtx.Names() {
			rel, _ := rtx.Relation(n)
			fmt.Fprintf(sh.out, "%-12s %6d rows\n", n, rel.Count())
		}
		rtx.Close()
	case ".schema":
		if len(args) != 1 {
			sh.errorf("usage: .schema REL")
			break
		}
		rel, err := sh.db.Relation(args[0])
		if err != nil {
			sh.errorf("error: %v", err)
			break
		}
		fmt.Fprintln(sh.out, rel.Schema())
	case ".graph":
		fmt.Fprint(sh.out, sh.g.Render())
	case ".objects":
		names := make([]string, 0, len(sh.objects))
		for n := range sh.objects {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			def := sh.objects[n]
			fmt.Fprintf(sh.out, "%-12s pivot %s, complexity %d\n", n, def.Pivot(), def.Complexity())
		}
	case ".object":
		if def := sh.lookupObject(args); def != nil {
			fmt.Fprint(sh.out, def.Render())
		}
	case ".query":
		if len(args) < 1 {
			sh.errorf("usage: .query NAME [OQL]")
			break
		}
		def := sh.lookupObject(args[:1])
		if def == nil {
			break
		}
		var insts []*viewobject.Instance
		var err error
		if m := sh.materialized[args[0]]; m != nil {
			var q viewobject.Query
			if q, err = oql.Parse(def, strings.Join(args[1:], " ")); err == nil {
				insts, err = m.Instantiate(q)
			}
		} else if sh.cluster != nil {
			var q viewobject.Query
			if q, err = oql.Parse(def, strings.Join(args[1:], " ")); err == nil {
				insts, err = sh.cluster.Instantiate(args[0], q)
			}
		} else {
			rtx := sh.db.BeginRead()
			insts, err = oql.Query(rtx, def, strings.Join(args[1:], " "))
			rtx.Close()
		}
		if err != nil {
			sh.errorf("error: %v", err)
			break
		}
		fmt.Fprintf(sh.out, "%d instance(s)\n", len(insts))
		for _, inst := range insts {
			fmt.Fprint(sh.out, inst.Render())
		}
	case ".instance":
		def, key := sh.objectAndKey(args, ".instance")
		if def == nil {
			break
		}
		var inst *viewobject.Instance
		var ok bool
		var err error
		if m := sh.materialized[args[0]]; m != nil {
			inst, ok, err = m.InstantiateByKey(key)
		} else if sh.cluster != nil {
			inst, ok, err = sh.cluster.InstantiateByKey(args[0], key)
		} else {
			rtx := sh.db.BeginRead()
			inst, ok, err = viewobject.InstantiateByKey(rtx, def, key)
			rtx.Close()
		}
		if err != nil {
			sh.errorf("error: %v", err)
			break
		}
		if !ok {
			fmt.Fprintln(sh.out, "no instance with that key")
			break
		}
		fmt.Fprint(sh.out, inst.Render())
	case ".delete":
		def, key := sh.objectAndKey(args, ".delete")
		if def == nil {
			break
		}
		var res *vupdate.Result
		var err error
		if sh.cluster != nil {
			res, err = sh.cluster.DeleteByKey(args[0], key)
		} else {
			u := sh.updaters[args[0]]
			if u == nil {
				sh.errorf("no translator chosen for %s - run .dialog first", args[0])
				break
			}
			res, err = u.DeleteByKey(key)
		}
		if err != nil {
			sh.errorf("rejected: %v", err)
			break
		}
		fmt.Fprintf(sh.out, "translated into %d operation(s):\n%s\n", len(res.Ops), res)
	case ".preview":
		def, key := sh.objectAndKey(args, ".preview")
		if def == nil {
			break
		}
		if sh.cluster != nil {
			sh.errorf("preview is not supported in sharded sessions")
			break
		}
		u := sh.updaters[args[0]]
		if u == nil {
			sh.errorf("no translator chosen for %s - run .dialog first", args[0])
			break
		}
		res, err := u.PreviewDeleteByKey(key)
		if err != nil {
			sh.errorf("would be rejected: %v", err)
			break
		}
		fmt.Fprintf(sh.out, "would translate into %d operation(s) (nothing executed):\n%s\n", len(res.Ops), res)
	case ".dialog":
		def := sh.lookupObject(args)
		if def == nil {
			break
		}
		if sh.cluster != nil {
			sh.errorf("translator dialogs are not supported in sharded sessions (the cluster registers translators at startup)")
			break
		}
		sh.out.Flush()
		tr, tape, err := vupdate.ChooseTranslator(def,
			&vupdate.InteractiveAnswerer{R: sh.in, W: flushWriter{sh.out}})
		if err != nil {
			sh.errorf("error: %v", err)
			break
		}
		tr.RepairInserts = true
		sh.updaters[args[0]] = vupdate.NewUpdater(tr)
		fmt.Fprintf(sh.out, "translator chosen after %d question(s)\n", len(tape))
	case ".figures":
		report, err := figures.All()
		if err != nil {
			sh.errorf("error: %v", err)
			break
		}
		fmt.Fprint(sh.out, report)
	case ".materialize":
		if sh.cluster != nil {
			sh.errorf("materialized caches follow one database's delta stream - not supported in sharded sessions")
			break
		}
		if len(args) == 0 {
			if len(sh.materialized) == 0 {
				fmt.Fprintln(sh.out, "materialization: off for every object")
				break
			}
			names := make([]string, 0, len(sh.materialized))
			for n := range sh.materialized {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				m := sh.materialized[n]
				fmt.Fprintf(sh.out, "%s: materialized, %d instance(s) at gen %d\n", n, m.Len(), m.Generation())
			}
			break
		}
		def := sh.lookupObject(args[:1])
		if def == nil {
			break
		}
		if len(args) > 1 && args[1] == "off" {
			m := sh.materialized[args[0]]
			if m == nil {
				fmt.Fprintf(sh.out, "%s was not materialized\n", args[0])
				break
			}
			m.Close()
			delete(sh.materialized, args[0])
			fmt.Fprintf(sh.out, "%s: materialization off\n", args[0])
			break
		}
		if len(args) > 1 && args[1] != "on" {
			sh.errorf("usage: .materialize [NAME [on|off]]")
			break
		}
		m := sh.materialized[args[0]]
		if m == nil {
			m = viewobject.NewMaterializer(sh.db, def)
			sh.materialized[args[0]] = m
		}
		// Serve once to build (or refresh) the cache eagerly so the
		// first .query pays nothing.
		insts, err := m.Instantiate(viewobject.Query{})
		if err != nil {
			m.Close()
			delete(sh.materialized, args[0])
			sh.errorf("error: %v", err)
			break
		}
		fmt.Fprintf(sh.out, "%s: materialized, %d instance(s) at gen %d\n", args[0], len(insts), m.Generation())
	case ".parallel":
		if len(args) == 0 {
			fmt.Fprintf(sh.out, "parallelism: %d workers\n", viewobject.Parallelism())
			break
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 0 {
			sh.errorf("usage: .parallel [N]   (N >= 1 fixes the worker budget, 0 tracks GOMAXPROCS)")
			break
		}
		viewobject.SetParallelism(n)
		fmt.Fprintf(sh.out, "parallelism: %d workers\n", viewobject.Parallelism())
	case ".stats":
		if err := obs.WriteText(sh.out, obs.Capture()); err != nil {
			sh.errorf("error: %v", err)
		}
	case ".prom":
		if err := obs.WriteProm(sh.out, obs.Capture()); err != nil {
			sh.errorf("error: %v", err)
		}
	case ".trace":
		if len(args) >= 1 && args[0] == "slow" {
			sh.traceSlow(args[1:])
			break
		}
		if len(args) >= 1 && args[0] == "export" {
			sh.traceExport(args[1:])
			break
		}
		n := 20
		if len(args) >= 1 {
			parsed, err := strconv.Atoi(args[0])
			if err != nil || parsed < 1 {
				sh.errorf("usage: .trace [N] | .trace slow [N] | .trace export N FILE")
				break
			}
			n = parsed
		}
		if sh.ring == nil {
			sh.errorf("tracing is not enabled in this session")
			break
		}
		events := sh.ring.Last(n)
		if len(events) == 0 {
			fmt.Fprintln(sh.out, "no trace events recorded yet")
			break
		}
		for _, ev := range events {
			fmt.Fprintln(sh.out, ev)
		}
	case ".save":
		if sh.cluster != nil {
			sh.errorf("snapshots cover one database - not supported in sharded sessions (use -data-dir for durability)")
			break
		}
		if len(args) != 1 {
			sh.errorf("usage: .save FILE")
			break
		}
		f, err := os.Create(args[0])
		if err != nil {
			sh.errorf("error: %v", err)
			break
		}
		err = sh.db.WriteSnapshot(f)
		f.Close()
		if err != nil {
			sh.errorf("error: %v", err)
			break
		}
		fmt.Fprintln(sh.out, "saved", args[0])
	case ".checkpoint":
		if sh.cluster != nil {
			for i := 0; i < sh.cluster.N(); i++ {
				gen, err := sh.cluster.DB(i).Checkpoint()
				switch {
				case errors.Is(err, reldb.ErrNotDurable):
					sh.errorf("this session is in-memory - start with -data-dir DIR for durability")
				case err != nil:
					sh.errorf("shard %d: %v", i, err)
				default:
					fmt.Fprintf(sh.out, "shard %d: checkpoint written at generation %d\n", i, gen)
					continue
				}
				break
			}
			break
		}
		gen, err := sh.db.Checkpoint()
		switch {
		case errors.Is(err, reldb.ErrNotDurable):
			sh.errorf("this session is in-memory - start with -data-dir DIR for durability")
		case err != nil:
			sh.errorf("error: %v", err)
		default:
			fmt.Fprintf(sh.out, "checkpoint written at generation %d\n", gen)
		}
	case ".shards":
		sh.shards()
	case ".load":
		if sh.cluster != nil {
			sh.errorf("snapshots cover one database - not supported in sharded sessions")
			break
		}
		if len(args) != 1 {
			sh.errorf("usage: .load FILE")
			break
		}
		f, err := os.Open(args[0])
		if err != nil {
			sh.errorf("error: %v", err)
			break
		}
		db, err := reldb.ReadSnapshot(f)
		f.Close()
		if err != nil {
			sh.errorf("error: %v", err)
			break
		}
		sh.db = db
		sh.g = structural.NewGraph(db)
		sh.objects = map[string]*viewobject.Definition{}
		sh.updaters = map[string]*vupdate.Updater{}
		fmt.Fprintln(sh.out, "loaded", args[0], "(objects cleared: snapshots hold data, not schemas' connections)")
	default:
		sh.errorf("unknown command %s - try .help", cmd)
	}
	return false
}

// shards prints the cluster's per-shard state (".shards"): generations,
// row counts, and — in durable sessions — the by-shard WAL counters.
func (sh *shell) shards() {
	c := sh.cluster
	if c == nil {
		fmt.Fprintln(sh.out, "sharding: off (single database) - start with -shards N")
		return
	}
	fmt.Fprintf(sh.out, "%d shard(s), cluster generation %d, %d stored row(s)\n",
		c.N(), c.Generation(), c.TotalRows())
	gens := c.Generations()
	for i := 0; i < c.N(); i++ {
		fmt.Fprintf(sh.out, "  shard %d: generation %d, %d rows\n", i, gens[i], c.DB(i).TotalRows())
	}
	snap := obs.Capture()
	for _, fam := range []string{
		"reldb.wal.appends.by_shard",
		"reldb.wal.fsyncs.by_shard",
		"reldb.wal.checkpoints.by_shard",
	} {
		lc, ok := snap.LabeledCounters[fam]
		if !ok {
			continue
		}
		labels := make([]string, 0, len(lc.Values))
		for l := range lc.Values {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		fmt.Fprintf(sh.out, "%s:", fam)
		for _, l := range labels {
			fmt.Fprintf(sh.out, " %s=%d", l, lc.Values[l])
		}
		fmt.Fprintln(sh.out)
	}
}

// traceSlow lists the flight recorder's retained traces (".trace slow")
// or renders one span tree (".trace slow N", 1-based, oldest first).
func (sh *shell) traceSlow(args []string) {
	if sh.rec == nil {
		sh.errorf("the flight recorder is not enabled in this session")
		return
	}
	traces := sh.rec.Traces()
	if len(traces) == 0 {
		fmt.Fprintf(sh.out, "no slow traces retained (threshold %s)\n", sh.rec.Threshold())
		return
	}
	if len(args) == 0 {
		fmt.Fprintf(sh.out, "%d slow trace(s), threshold %s:\n", len(traces), sh.rec.Threshold())
		for i, tr := range traces {
			fmt.Fprintf(sh.out, "%3d  trace %-6d %-32s %10s  %s\n",
				i+1, tr.TraceID, tr.Name, tr.Dur, tr.Detail)
		}
		return
	}
	tr, ok := sh.nthSlowTrace(traces, args[0], ".trace slow [N]")
	if !ok {
		return
	}
	fmt.Fprint(sh.out, tr.Render())
}

// traceExport writes one retained trace as Chrome trace-event JSON
// (".trace export N FILE") for chrome://tracing or Perfetto.
func (sh *shell) traceExport(args []string) {
	if sh.rec == nil {
		sh.errorf("the flight recorder is not enabled in this session")
		return
	}
	if len(args) != 2 {
		sh.errorf("usage: .trace export N FILE")
		return
	}
	tr, ok := sh.nthSlowTrace(sh.rec.Traces(), args[0], ".trace export N FILE")
	if !ok {
		return
	}
	f, err := os.Create(args[1])
	if err != nil {
		sh.errorf("error: %v", err)
		return
	}
	err = obs.WriteChromeTrace(f, []obs.SlowTrace{tr})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		sh.errorf("error: %v", err)
		return
	}
	fmt.Fprintf(sh.out, "wrote trace %d (%d spans) to %s\n", tr.TraceID, len(tr.Spans), args[1])
}

// nthSlowTrace resolves a 1-based index from .trace slow listings.
func (sh *shell) nthSlowTrace(traces []obs.SlowTrace, raw, usage string) (obs.SlowTrace, bool) {
	n, err := strconv.Atoi(raw)
	if err != nil || n < 1 {
		sh.errorf("usage: %s", usage)
		return obs.SlowTrace{}, false
	}
	if n > len(traces) {
		sh.errorf("only %d slow trace(s) retained - see .trace slow", len(traces))
		return obs.SlowTrace{}, false
	}
	return traces[n-1], true
}

func (sh *shell) lookupObject(args []string) *viewobject.Definition {
	if len(args) < 1 {
		sh.errorf("usage: ... NAME")
		return nil
	}
	def, ok := sh.objects[args[0]]
	if !ok {
		sh.errorf("no object named %s - see .objects", args[0])
		return nil
	}
	return def
}

// objectAndKey resolves "NAME KEYVALUE..." into a definition and a typed
// pivot key.
func (sh *shell) objectAndKey(args []string, usage string) (*viewobject.Definition, reldb.Tuple) {
	if len(args) < 2 {
		sh.errorf("usage: %s NAME KEY...", usage)
		return nil, nil
	}
	def := sh.lookupObject(args[:1])
	if def == nil {
		return nil, nil
	}
	pivotRel, err := sh.db.Relation(def.Pivot())
	if err != nil {
		sh.errorf("error: %v", err)
		return nil, nil
	}
	schema := pivotRel.Schema()
	keyIdx := schema.Key()
	if len(args)-1 != len(keyIdx) {
		sh.errorf("key of %s has %d attribute(s)", def.Pivot(), len(keyIdx))
		return nil, nil
	}
	key := make(reldb.Tuple, len(keyIdx))
	for i, raw := range args[1:] {
		v, err := reldb.ParseValue(schema.Attr(keyIdx[i]).Type, raw)
		if err != nil {
			sh.errorf("error: %v", err)
			return nil, nil
		}
		key[i] = v
	}
	return def, key
}

func (sh *shell) help() {
	fmt.Fprint(sh.out, `RQL statements run directly, e.g.
  SELECT * FROM COURSES WHERE Units > 3
  SELECT CourseID, COUNT(*) AS n FROM GRADES GROUP BY CourseID
Dot-commands:
  .tables .schema REL .graph
  .objects .object NAME
  .query NAME [OQL]     e.g. .query omega Level = 'graduate' and count(STUDENT) < 5
  .instance NAME KEY    .delete NAME KEY
  .preview NAME KEY     show a deletion's translation without executing it
  .dialog NAME          choose a translator interactively
  .figures              regenerate the paper's figures
  .materialize [NAME [on|off]]  keep NAME's instances materialized (patched from commit deltas)
  .parallel [N]         show or set the instantiation worker budget (0 tracks GOMAXPROCS)
  .shards               show per-shard generations, rows, and WAL activity (-shards sessions)
  .stats                dump engine metrics (counters and histograms)
  .prom                 dump engine metrics in Prometheus exposition format
  .trace [N]            show the last N trace events (default 20)
  .trace slow [N]       list retained slow traces, or render the Nth as a tree
  .trace export N FILE  write the Nth slow trace as Chrome trace JSON
  .checkpoint           write a durable checkpoint and prune the WAL (-data-dir sessions)
  .save FILE .load FILE .quit
`)
}
