package penguin

import (
	"io"
	"net"

	"penguin/internal/obs"
	"penguin/internal/vupdate"
)

// Observability (internal/obs): engine-wide metrics and tracing.
type (
	// StatsSnapshot is a point-in-time copy of the engine metrics —
	// counters and histograms keyed by expvar-style dotted names.
	StatsSnapshot = obs.Snapshot
	// HistogramStat is one histogram's snapshot (count, sum, buckets).
	HistogramStat = obs.HistogramStat
	// TraceEvent is one trace span emitted by an instrumented path.
	TraceEvent = obs.Event
	// TraceSink receives trace events; install one with SetTraceSink.
	TraceSink = obs.Sink
	// TraceRing is a fixed-size lock-free buffer of recent trace events.
	TraceRing = obs.Ring
	// RejectReason classifies why an update translation was rejected.
	RejectReason = vupdate.Reason
)

// Rejection reasons (vupdate.reject.* counters).
const (
	ReasonUnknown          = vupdate.ReasonUnknown
	ReasonNoInstance       = vupdate.ReasonNoInstance
	ReasonTranslatorPolicy = vupdate.ReasonTranslatorPolicy
	ReasonIntegrity        = vupdate.ReasonIntegrity
	ReasonAmbiguousKey     = vupdate.ReasonAmbiguousKey
	ReasonConflict         = vupdate.ReasonConflict
)

// Stats captures the engine metrics accumulated so far by every layer
// (reldb transactions, view-object instantiation, the §5 update
// pipeline, the Keller baseline). Subtract two snapshots with Sub to
// measure one workload's activity.
func Stats() StatsSnapshot { return obs.Capture() }

// WriteStats renders a snapshot as sorted "name value" text lines.
func WriteStats(w io.Writer, s StatsSnapshot) error { return obs.WriteText(w, s) }

// WriteProm renders a snapshot in the Prometheus text exposition format
// (version 0.0.4): `# TYPE` headers, sanitized metric names, histograms
// as cumulative `_bucket{le="..."}` series ending in `+Inf` plus `_sum`
// and `_count`, and the per-view-object / per-relation families as
// labeled series. Serve it from an HTTP handler (or use ServeMetrics)
// to scrape the engine.
func WriteProm(w io.Writer, s StatsSnapshot) error { return obs.WriteProm(w, s) }

// ServeMetrics starts an HTTP listener on addr exposing the engine
// metrics at /metrics in the Prometheus exposition format. It returns
// the live listener (Addr carries the resolved port for ":0"); close it
// to stop serving.
func ServeMetrics(addr string) (net.Listener, error) { return obs.Serve(addr) }

// NewTraceRing creates a ring buffer holding the last size trace events;
// install it with SetTraceSink to start recording.
func NewTraceRing(size int) *TraceRing { return obs.NewRing(size) }

// SetTraceSink installs (or, with nil, removes) the engine trace sink.
// With no sink installed — the default — the instrumented hot paths skip
// event construction entirely and stay allocation-free.
func SetTraceSink(s TraceSink) { obs.Default.SetSink(s) }

// RejectReasonOf extracts the rejection reason from an update error
// (ReasonUnknown when the error carries none).
var RejectReasonOf = vupdate.ReasonOf
