package penguin

import (
	"io"
	"time"

	"penguin/internal/obs"
	"penguin/internal/vupdate"
)

// Observability (internal/obs): engine-wide metrics and tracing.
type (
	// StatsSnapshot is a point-in-time copy of the engine metrics —
	// counters and histograms keyed by expvar-style dotted names.
	StatsSnapshot = obs.Snapshot
	// HistogramStat is one histogram's snapshot (count, sum, buckets).
	HistogramStat = obs.HistogramStat
	// TraceEvent is one trace span emitted by an instrumented path. It
	// carries causal identity (TraceID/SpanID/ParentID) when emitted
	// under a TraceOp.
	TraceEvent = obs.Event
	// TraceSink receives trace events; install one with SetTraceSink.
	TraceSink = obs.Sink
	// TraceRing is a fixed-size lock-free buffer of recent trace events.
	TraceRing = obs.Ring
	// TraceOp is a handle on one operation's span tree; the engine
	// threads one through every update, instantiation, and serve.
	TraceOp = obs.Op
	// SlowTrace is one operation's span tree retained by the flight
	// recorder (Validate checks well-formedness, Render formats an
	// indented outline).
	SlowTrace = obs.SlowTrace
	// FlightRecorder retains the span trees of operations whose root
	// span exceeds a latency threshold, in a bounded ring.
	FlightRecorder = obs.Recorder
	// RejectReason classifies why an update translation was rejected.
	RejectReason = vupdate.Reason
)

// Rejection reasons (vupdate.reject.* counters).
const (
	ReasonUnknown          = vupdate.ReasonUnknown
	ReasonNoInstance       = vupdate.ReasonNoInstance
	ReasonTranslatorPolicy = vupdate.ReasonTranslatorPolicy
	ReasonIntegrity        = vupdate.ReasonIntegrity
	ReasonAmbiguousKey     = vupdate.ReasonAmbiguousKey
	ReasonConflict         = vupdate.ReasonConflict
)

// Stats captures the engine metrics accumulated so far by every layer
// (reldb transactions, view-object instantiation, the §5 update
// pipeline, the Keller baseline). Subtract two snapshots with Sub to
// measure one workload's activity.
func Stats() StatsSnapshot { return obs.Capture() }

// WriteStats renders a snapshot as sorted "name value" text lines.
func WriteStats(w io.Writer, s StatsSnapshot) error { return obs.WriteText(w, s) }

// WriteProm renders a snapshot in the Prometheus text exposition format
// (version 0.0.4): `# TYPE` headers, sanitized metric names, histograms
// as cumulative `_bucket{le="..."}` series ending in `+Inf` plus `_sum`
// and `_count`, and the per-view-object / per-relation families as
// labeled series. Serve it from an HTTP handler (or use ServeMetrics)
// to scrape the engine.
func WriteProm(w io.Writer, s StatsSnapshot) error { return obs.WriteProm(w, s) }

// MetricsServer is a running metrics/debug HTTP listener (hardened
// timeouts; Shutdown drains in-flight scrapes, Close stops hard).
type MetricsServer = obs.HTTPServer

// ServeMetrics starts an HTTP listener on addr exposing the engine
// metrics at /metrics in the Prometheus exposition format (plus
// /debug/traces and /debug/pprof/). The returned handle's Addr carries
// the resolved port for ":0"; Shutdown it to drain, or Close to stop.
func ServeMetrics(addr string) (*MetricsServer, error) { return obs.Serve(addr) }

// NewTraceRing creates a ring buffer holding the last size trace events;
// install it with SetTraceSink to start recording.
func NewTraceRing(size int) *TraceRing { return obs.NewRing(size) }

// SetTraceSink installs (or, with nil, removes) the engine trace sink.
// With no sink installed — the default — the instrumented hot paths skip
// event construction entirely and stay allocation-free.
func SetTraceSink(s TraceSink) { obs.Default.SetSink(s) }

// RejectReasonOf extracts the rejection reason from an update error
// (ReasonUnknown when the error carries none).
var RejectReasonOf = vupdate.ReasonOf

// NewFlightRecorder creates a flight recorder retaining operations
// whose root span lasts at least threshold (0 retains every completed
// operation) into a ring of at most capacity slow traces.
func NewFlightRecorder(threshold time.Duration, capacity int) *FlightRecorder {
	return obs.NewRecorder(threshold, capacity)
}

// SetFlightRecorder installs (or, with nil, removes) the engine flight
// recorder. While installed, every top-level operation (view-object
// update, instantiation, materialized serve, Keller translation)
// buffers its span tree; trees whose root exceeds the recorder's
// threshold are retained and readable via SlowTraces. With neither a
// recorder nor a trace sink installed the instrumented hot paths stay
// allocation-free.
func SetFlightRecorder(rec *FlightRecorder) { obs.Default.SetRecorder(rec) }

// SlowTraces returns the slow traces the installed flight recorder has
// retained, oldest first (nil without a recorder).
func SlowTraces() []SlowTrace {
	if rec := obs.Default.Recorder(); rec != nil {
		return rec.Traces()
	}
	return nil
}

// WriteChromeTrace writes traces as Chrome trace-event JSON — load the
// output into chrome://tracing or Perfetto to see the span tree on a
// timeline.
func WriteChromeTrace(w io.Writer, traces []SlowTrace) error {
	return obs.WriteChromeTrace(w, traces)
}

// StartTraceOp opens a root span for an application-level operation so
// engine spans triggered underneath it join its trace; finish it with
// Finish. It returns an inactive no-op handle unless a trace sink or
// flight recorder is installed.
func StartTraceOp(name string) TraceOp { return obs.Default.StartOp(name) }
