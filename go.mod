module penguin

go 1.22
