package penguin_test

import (
	"errors"
	"fmt"
	"testing"

	"penguin"
)

// TestFacadeSharding drives the sharded execution path through the
// public facade only: assemble a cluster over in-memory shards, register
// an object per shard (the DDL broadcast), and run the routed update
// verbs plus the fan-out read.
func TestFacadeSharding(t *testing.T) {
	const n = 3
	dbs := make([]*penguin.Database, n)
	for i := range dbs {
		dbs[i] = penguin.NewDatabase()
	}
	c, err := penguin.NewShardCluster(dbs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// One pivot-only object: the island is just SENSOR, so every update
	// translation stays island-local and commits on the home shard's
	// fast path.
	err = c.AddObject("sensor", func(_ int, db *penguin.Database) (*penguin.Translator, error) {
		schema, err := penguin.NewSchema("SENSOR", []penguin.Attribute{
			{Name: "SensorID", Type: penguin.KindString},
			{Name: "Reading", Type: penguin.KindInt, Nullable: true},
		}, []string{"SensorID"})
		if err != nil {
			return nil, err
		}
		if _, err := db.CreateRelation(schema); err != nil {
			return nil, err
		}
		g := penguin.NewGraph(db)
		def, err := penguin.Define(g, "sensor", "SENSOR", penguin.DefaultMetric(), nil)
		if err != nil {
			return nil, err
		}
		return penguin.PermissiveTranslator(def), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Updatable("sensor") {
		t.Fatal("sensor should be updatable")
	}

	// Inserts route by hashed pivot key; the rows must spread over more
	// than one shard.
	def, err := c.Object("sensor", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		inst, err := penguin.NewInstance(def,
			penguin.Tuple{penguin.String(fmt.Sprintf("s%02d", i)), penguin.Int(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.InsertInstance("sensor", inst); err != nil {
			t.Fatal(err)
		}
	}
	if c.TotalRows() != 16 {
		t.Fatalf("total rows = %d, want 16", c.TotalRows())
	}
	spread := 0
	for i := 0; i < c.N(); i++ {
		if c.DB(i).TotalRows() > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("rows landed on %d shard(s), want a spread", spread)
	}

	// Fan-out read merges every shard in pivot-key order.
	insts, err := c.Instantiate("sensor", penguin.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 16 {
		t.Fatalf("instantiated %d, want 16", len(insts))
	}

	// Routed point read and delete.
	inst, ok, err := c.InstantiateByKey("sensor", penguin.Tuple{penguin.String("s03")})
	if err != nil || !ok {
		t.Fatalf("point read: ok=%v err=%v", ok, err)
	}
	if _, err := c.DeleteByKey("sensor", inst.Key()); err != nil {
		t.Fatal(err)
	}
	if c.TotalRows() != 15 {
		t.Fatalf("total rows after delete = %d, want 15", c.TotalRows())
	}

	// A replacement that would re-home the pivot key is refused with the
	// facade sentinel rather than silently migrating the island.
	oldInst, ok, err := c.InstantiateByKey("sensor", penguin.Tuple{penguin.String("s04")})
	if err != nil || !ok {
		t.Fatalf("point read: ok=%v err=%v", ok, err)
	}
	home, err := c.HomeOf("sensor", oldInst.Key())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		key := penguin.Tuple{penguin.String(fmt.Sprintf("m%02d", i))}
		h, err := c.HomeOf("sensor", key)
		if err != nil {
			t.Fatal(err)
		}
		if h == home {
			continue
		}
		newInst, err := penguin.NewInstance(def, penguin.Tuple{key[0], penguin.Int(99)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.ReplaceInstance("sensor", oldInst, newInst); !errors.Is(err, penguin.ErrCrossShardMove) {
			t.Fatalf("cross-shard replace err = %v, want ErrCrossShardMove", err)
		}
		return
	}
	t.Fatal("no candidate key hashes to another shard")
}
