// Acceptance tests for the observability surface: a VO-R / VO-CD / VO-CI
// run against the university fixture must light up all four §5 pipeline
// step histograms, and the emitted-operation counters must match the
// operations the translations actually returned.
package penguin_test

import (
	"errors"
	"strings"
	"testing"

	"penguin"
	"penguin/internal/reldb"
	"penguin/internal/university"
	"penguin/internal/vupdate"
)

// TestStatsAcrossUpdatePipeline drives one update of each kind and
// checks the metric deltas.
func TestStatsAcrossUpdatePipeline(t *testing.T) {
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	u := vupdate.NewUpdater(vupdate.PermissiveTranslator(om))
	key := reldb.Tuple{reldb.String("CS345")}

	before := penguin.Stats()

	// VO-R: replace the instance with a retitled clone.
	rtx := db.BeginRead()
	cur, ok, err := penguin.InstantiateByKey(rtx, om, key)
	rtx.Close()
	if err != nil || !ok {
		t.Fatalf("instantiate CS345: ok=%v err=%v", ok, err)
	}
	repl := cur.Clone()
	if err := repl.Root().SetAttr(om, "Title", reldb.String("Databases, Observed")); err != nil {
		t.Fatal(err)
	}
	resR, err := u.ReplaceInstance(cur, repl)
	if err != nil {
		t.Fatalf("VO-R: %v", err)
	}
	// VO-CD: delete the whole instance.
	resD, err := u.DeleteByKey(key)
	if err != nil {
		t.Fatalf("VO-CD: %v", err)
	}
	// VO-CI: put it back.
	resI, err := u.InsertInstance(repl)
	if err != nil {
		t.Fatalf("VO-CI: %v", err)
	}

	delta := penguin.Stats().Sub(before)

	// All four §5 steps ran and took measurable time.
	for _, step := range []string{"local_validate", "propagate", "translate", "global_validate"} {
		st := delta.Histogram("vupdate.step." + step + "_ns")
		if st.Count == 0 {
			t.Errorf("step %s: no observations", step)
		}
		if st.Sum <= 0 {
			t.Errorf("step %s: sum = %d, want > 0", step, st.Sum)
		}
	}

	// The op counters match the returned results exactly.
	wantOps := map[string]int{"insert": 0, "delete": 0, "replace": 0}
	for _, res := range []*vupdate.Result{resR, resD, resI} {
		wantOps["insert"] += res.Count(penguin.OpInsert)
		wantOps["delete"] += res.Count(penguin.OpDelete)
		wantOps["replace"] += res.Count(penguin.OpReplace)
	}
	for kind, want := range wantOps {
		if got := delta.Counter("vupdate.ops." + kind); got != int64(want) {
			t.Errorf("vupdate.ops.%s = %d, want %d (the results' own op count)", kind, got, want)
		}
	}
	if got := delta.Counter("vupdate.updates.committed"); got != 3 {
		t.Errorf("updates.committed = %d, want 3", got)
	}
	if got := delta.Counter("vupdate.updates.rejected"); got != 0 {
		t.Errorf("updates.rejected = %d, want 0", got)
	}
	// The three updates committed three write transactions, and the
	// instantiations behind them scanned tuples and assembled nodes.
	if got := delta.Counter("reldb.tx.commits"); got != 3 {
		t.Errorf("reldb.tx.commits = %d, want 3", got)
	}
	if delta.Counter("viewobject.instantiate.tuples_scanned") == 0 {
		t.Error("no tuples scanned recorded")
	}
	if delta.Counter("viewobject.instantiate.nodes") == 0 {
		t.Error("no instance nodes recorded")
	}
}

// TestStatsRejectionReasons checks the rejection-taxonomy counters: a
// policy refusal and a missing instance land in their own buckets.
func TestStatsRejectionReasons(t *testing.T) {
	_, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	tr := vupdate.PermissiveTranslator(om)
	tr.AllowDeletion = false
	u := vupdate.NewUpdater(tr)

	before := penguin.Stats()
	if _, err := u.DeleteByKey(reldb.Tuple{reldb.String("CS345")}); !errors.Is(err, penguin.ErrRejected) {
		t.Fatalf("deletion with AllowDeletion=false: %v", err)
	}
	if _, err := u.DeleteByKey(reldb.Tuple{reldb.String("NO-SUCH")}); err == nil {
		t.Fatal("deleting a missing instance succeeded")
	}
	delta := penguin.Stats().Sub(before)

	if got := delta.Counter("vupdate.updates.rejected"); got != 2 {
		t.Errorf("updates.rejected = %d, want 2", got)
	}
	if got := delta.Counter("vupdate.reject.translator-policy"); got != 1 {
		t.Errorf("reject.translator-policy = %d, want 1", got)
	}
	if got := delta.Counter("vupdate.reject.no-instance"); got != 1 {
		t.Errorf("reject.no-instance = %d, want 1", got)
	}
	if got := delta.Counter("vupdate.updates.committed"); got != 0 {
		t.Errorf("updates.committed = %d, want 0", got)
	}
}

// TestTraceRingCapturesPipeline installs a ring sink, runs one update,
// and checks the per-step spans were recorded in order.
func TestTraceRingCapturesPipeline(t *testing.T) {
	_, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	u := vupdate.NewUpdater(vupdate.PermissiveTranslator(om))

	ring := penguin.NewTraceRing(128)
	penguin.SetTraceSink(ring)
	defer penguin.SetTraceSink(nil)

	if _, err := u.DeleteByKey(reldb.Tuple{reldb.String("CS345")}); err != nil {
		t.Fatalf("VO-CD: %v", err)
	}
	events := ring.Last(128)
	if len(events) == 0 {
		t.Fatal("ring recorded no events")
	}
	var names []string
	for _, ev := range events {
		names = append(names, ev.Name)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{
		"viewobject.instantiate_by_key",
		"vupdate.step.local_validate",
		"vupdate.step.translate",
		"vupdate.update",
		"reldb.commit",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q (got: %s)", want, joined)
		}
	}
}

// TestWriteStatsRenders smoke-tests the text exporter on a live
// snapshot: flat sorted lines, histograms expanded.
func TestWriteStatsRenders(t *testing.T) {
	var b strings.Builder
	if err := penguin.WriteStats(&b, penguin.Stats()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"reldb.tx.commits ",
		"reldb.tx.commit_ns.count ",
		"vupdate.step.translate_ns.count ",
		"viewobject.instantiate.calls ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteStats output missing %q", want)
		}
	}
}
