package reldb

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"penguin/internal/obs"
)

// Checkpointing: bound recovery time by folding the log's prefix into a
// snapshot and discarding the segments below it.
//
// Protocol (crash-safe at every step):
//
//  1. Pin a generation boundary G with a copy-on-write ReadTx and
//     serialize it — commits keep running, the pinned versions are
//     immutable, and the snapshot is exactly the state the log reaches
//     at G.
//  2. Write to snap-G.pngw.tmp, fsync, rename to snap-G.pngw, fsync
//     the directory. A crash before the rename leaves only a .tmp
//     stray (deleted on open); after it, the snapshot is complete —
//     rename is the commit point.
//  3. Roll the WAL so the active segment starts at the current append
//     watermark (>= G) and new records land above the snapshot.
//  4. Prune: delete snapshots older than G, and delete every segment
//     whose successor segment starts at or below G — all its records
//     are then <= G, folded into the snapshot. The tail segment is
//     never deleted. A crash mid-prune just leaves extra files; replay
//     skips records at or below the snapshot's generation.

// Checkpoint writes a snapshot at the current generation boundary and
// truncates the log below it, returning the checkpointed generation.
// Manual checkpoints and the background checkpointer serialize on the
// same mutex. Returns ErrNotDurable for an in-memory database.
func (db *Database) Checkpoint() (uint64, error) {
	if db.wal == nil {
		return 0, ErrNotDurable
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()

	// An unresolved cross-shard prepare (replayed from the log, awaiting
	// the sharded open's resolution) must stay reachable: a snapshot
	// would not carry it and the prune would drop its record. Live
	// prepares can't get here — PreparedTx holds ckptMu.
	db.mu.RLock()
	pending := len(db.pendingX)
	db.mu.RUnlock()
	if pending > 0 {
		return 0, fmt.Errorf("reldb: checkpoint deferred: %d in-doubt cross-shard transactions", pending)
	}

	rtx := db.BeginRead()
	gen := rtx.Generation()
	tmp := filepath.Join(db.dataDir, snapshotName(gen)+tmpSuffix)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		rtx.Close()
		return 0, err
	}
	err = rtx.WriteSnapshot(f)
	rtx.Close()
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, filepath.Join(db.dataDir, snapshotName(gen))); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := syncDir(db.dataDir); err != nil {
		return 0, err
	}
	if _, err := db.wal.roll(); err != nil {
		return 0, err
	}
	if err := db.pruneBelow(gen); err != nil {
		return 0, err
	}
	obs.Default.WALCheckpoints.Inc()
	if db.obsShard >= 0 {
		obs.Default.WALCheckpointsByShard.At(db.obsShard).Inc()
	}
	return gen, nil
}

// pruneBelow removes snapshots older than gen and segments wholly
// covered by the snapshot at gen.
func (db *Database) pruneBelow(gen uint64) error {
	snapGens, segStarts, err := scanDataDir(db.dataDir)
	if err != nil {
		return err
	}
	removed := false
	for _, g := range snapGens {
		if g < gen {
			if err := os.Remove(filepath.Join(db.dataDir, snapshotName(g))); err != nil {
				return err
			}
			removed = true
		}
	}
	// Segment i holds records in (segStarts[i], segStarts[i+1]]; it is
	// dead once its successor starts at or below the snapshot.
	for i := 0; i+1 < len(segStarts); i++ {
		if segStarts[i+1] <= gen {
			if err := os.Remove(filepath.Join(db.dataDir, walSegmentName(segStarts[i]))); err != nil {
				return err
			}
			removed = true
		}
	}
	if removed {
		return syncDir(db.dataDir)
	}
	return nil
}

// checkpointLoop is the background checkpointer: every interval, if the
// generation moved since the last checkpoint, take one. Errors are
// counted and retried next tick — a full disk during a checkpoint must
// not kill the writer path. phase delays the first tick so databases
// sharing an interval (the shards of a cluster) snapshot in rotation
// instead of fsyncing simultaneously.
func (db *Database) checkpointLoop(interval, phase time.Duration) {
	defer close(db.ckptDone)
	if phase > 0 {
		pt := time.NewTimer(phase)
		select {
		case <-db.ckptStop:
			pt.Stop()
			return
		case <-pt.C:
		}
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	last := db.Generation()
	for {
		select {
		case <-db.ckptStop:
			return
		case <-t.C:
			if g := db.Generation(); g != last {
				if gen, err := db.Checkpoint(); err == nil {
					last = gen
				}
			}
		}
	}
}

// Close stops the background checkpointer and the WAL syncer, fsyncs
// and closes the active segment, and marks the database closed. Commits
// after Close fail; Close on an in-memory database is a no-op. Close is
// idempotent.
func (db *Database) Close() error {
	db.closeOnce.Do(func() {
		if db.ckptStop != nil {
			close(db.ckptStop)
			<-db.ckptDone
		}
		if db.wal != nil {
			db.closeErr = db.wal.close()
		}
	})
	return db.closeErr
}
