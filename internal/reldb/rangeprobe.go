package reldb

import (
	"fmt"
	"sort"

	"penguin/internal/obs"
)

// RangeBound is one side of a decomposed range predicate: the constant
// the attribute is compared with and whether the comparison excludes
// equality (< or > rather than <= or >=).
type RangeBound struct {
	V      Value
	Strict bool
}

// RangeConjunction decomposes pred into a single attribute name and its
// lower/upper bounds, when pred is a pure conjunction of ordering
// comparisons (<, <=, >, >=) between one unqualified attribute and
// constants (a single Cmp, or an And whose terms are all such Cmps,
// either operand order — a constant on the left flips the bound's
// side). Such predicates are exactly the ones a MatchRange probe over a
// cached ordered view can answer. At most one bound per side is
// accepted; anything else — other operators, several attributes,
// qualified references, duplicate bounds, nested boolean structure —
// returns ok=false, leaving the caller on the scan path with its full
// predicate semantics.
func RangeConjunction(pred Expr) (attr string, lo, hi *RangeBound, ok bool) {
	var terms []Expr
	switch p := pred.(type) {
	case Cmp:
		terms = []Expr{p}
	case And:
		terms = p.Terms
	default:
		return "", nil, nil, false
	}
	if len(terms) == 0 {
		return "", nil, nil, false
	}
	for _, t := range terms {
		cmp, isCmp := t.(Cmp)
		if !isCmp {
			return "", nil, nil, false
		}
		op := cmp.Op
		a, aOK := cmp.L.(Attr)
		c, cOK := cmp.R.(Const)
		if !aOK || !cOK {
			a, aOK = cmp.R.(Attr)
			c, cOK = cmp.L.(Const)
			if !aOK || !cOK {
				return "", nil, nil, false
			}
			// const op attr reads right-to-left: 3 < x means x > 3.
			switch op {
			case OpLt:
				op = OpGt
			case OpLe:
				op = OpGe
			case OpGt:
				op = OpLt
			case OpGe:
				op = OpLe
			}
		}
		if a.Rel != "" {
			return "", nil, nil, false
		}
		if attr == "" {
			attr = a.Name
		} else if attr != a.Name {
			return "", nil, nil, false
		}
		b := &RangeBound{V: c.V}
		switch op {
		case OpGt:
			b.Strict = true
			fallthrough
		case OpGe:
			if lo != nil {
				return "", nil, nil, false
			}
			lo = b
		case OpLt:
			b.Strict = true
			fallthrough
		case OpLe:
			if hi != nil {
				return "", nil, nil, false
			}
			hi = b
		default:
			return "", nil, nil, false
		}
	}
	return attr, lo, hi, true
}

// rangeComparable reports whether a bound of kind have orders against
// every value an attribute of kind want can store. Stored values have
// the declared kind (or Int in a Float attribute), and Compare handles
// any numeric pair, so numeric kinds are mutually fine; otherwise the
// kinds must match exactly.
func rangeComparable(want, have Kind) bool {
	numeric := func(k Kind) bool { return k == KindInt || k == KindFloat }
	return want == have || (numeric(want) && numeric(have))
}

// ProbeableRange reports whether a MatchRange over attr with these
// bounds is guaranteed to return exactly the tuples a predicate scan for
// the same range conjunction would — so a caller holding a
// RangeConjunction decomposition may substitute the probe for the scan.
// The guarantee requires that the attribute resolves, that at least one
// bound exists, and that no bound is null (three-valued: a null bound
// matches nothing) or of a kind Compare cannot order against the
// attribute's values. Unlike ProbeableEqual no index is required: the
// probe's access path is an ordered view built once per relation
// version and amortized across every range over the same attribute,
// which a hash-bucket index cannot provide.
func (r *Relation) ProbeableRange(attr string, lo, hi *RangeBound) bool {
	if lo == nil && hi == nil {
		return false
	}
	idx, err := r.lookupIndices("ProbeableRange", []string{attr})
	if err != nil {
		return false
	}
	a := r.schema.Attr(idx[0])
	for _, b := range []*RangeBound{lo, hi} {
		if b == nil {
			continue
		}
		if b.V.IsNull() || !rangeComparable(a.Type, b.V.Kind()) {
			return false
		}
	}
	return true
}

// rangeEntry pairs a stored tuple with its encoded primary key, so a
// selected window can be put back into primary-key order.
type rangeEntry struct {
	ek string
	t  Tuple
}

// rangePlan is the cached ordered view over one attribute of one
// relation version: every tuple with a non-null value there (null never
// satisfies a range), sorted by Compare on that value with ties broken
// by primary key. Published plans are immutable; in-place mutation
// (a write transaction's private clone) drops them — see dropRanges.
type rangePlan struct {
	ai      int
	entries []rangeEntry
}

// buildRangePlan materializes the ordered view, costing one full scan
// plus the sort.
func (r *Relation) buildRangePlan(ai int) (*rangePlan, error) {
	p := &rangePlan{ai: ai, entries: make([]rangeEntry, 0, len(r.rows))}
	for ek, t := range r.rows {
		if t[ai].IsNull() {
			continue
		}
		p.entries = append(p.entries, rangeEntry{ek: ek, t: t})
	}
	var sortErr error
	sort.Slice(p.entries, func(i, j int) bool {
		c, err := Compare(p.entries[i].t[ai], p.entries[j].t[ai])
		if err != nil && sortErr == nil {
			sortErr = err
		}
		if c != 0 {
			return c < 0
		}
		return p.entries[i].ek < p.entries[j].ek
	})
	if sortErr != nil {
		return nil, fmt.Errorf("reldb: %s: MatchRange: %w", r.Name(), sortErr)
	}
	return p, nil
}

// MatchRange returns the tuples whose attribute attr lies within the
// given bounds (either may be nil for a half-open range), in
// primary-key order — the same result a Select over the equivalent
// range conjunction produces. The ordered view it binary-searches is
// resolved once per relation version through the lookup-plan cache
// (key "range"+sep+attr) and reused by every subsequent range over the
// same attribute.
func (r *Relation) MatchRange(attr string, lo, hi *RangeBound) ([]Tuple, error) {
	return r.MatchRangeStats(attr, lo, hi, nil)
}

// MatchRangeStats is MatchRange that additionally accumulates lookup
// cost into st (which may be nil): a view build charges a full scan,
// a cache hit charges only the tuples in the selected window.
func (r *Relation) MatchRangeStats(attr string, lo, hi *RangeBound, st *MatchStats) ([]Tuple, error) {
	idx, err := r.lookupIndices("MatchRange", []string{attr})
	if err != nil {
		return nil, err
	}
	a := r.schema.Attr(idx[0])
	for _, b := range []*RangeBound{lo, hi} {
		if b == nil {
			continue
		}
		if b.V.IsNull() {
			// x < null is null — satisfied by nothing, same as a scan.
			r.obsProbe(st, 0)
			return nil, nil
		}
		if !rangeComparable(a.Type, b.V.Kind()) {
			return nil, fmt.Errorf("reldb: %s: MatchRange: attribute %s has kind %s, cannot order against %s",
				r.Name(), a.Name, a.Type, b.V.Kind())
		}
	}

	key := "range" + planKeySep + attr
	p := r.plans.getRange(key)
	built := false
	if p == nil {
		if p, err = r.buildRangePlan(idx[0]); err != nil {
			return nil, err
		}
		p, built = r.plans.putRange(key, p)
	}
	obs.Default.PlanCacheLookups.Inc()
	if built {
		obs.Default.PlanCacheMisses.Inc()
	} else {
		obs.Default.PlanCacheHits.Inc()
	}

	// Binary-search the window. Bounds were vetted against the attribute
	// kind above and nulls are excluded from the view, so Compare cannot
	// fail here.
	cmp := func(v Value, b *RangeBound) int {
		c, _ := Compare(v, b.V)
		return c
	}
	n := len(p.entries)
	start, end := 0, n
	if lo != nil {
		start = sort.Search(n, func(i int) bool {
			c := cmp(p.entries[i].t[p.ai], lo)
			return c > 0 || (!lo.Strict && c == 0)
		})
	}
	if hi != nil {
		end = sort.Search(n, func(i int) bool {
			c := cmp(p.entries[i].t[p.ai], hi)
			return c > 0 || (hi.Strict && c == 0)
		})
	}
	if end < start {
		end = start
	}

	window := make([]rangeEntry, end-start)
	copy(window, p.entries[start:end])
	sort.Slice(window, func(i, j int) bool { return window[i].ek < window[j].ek })
	out := make([]Tuple, len(window))
	for i, e := range window {
		out[i] = e.t.Clone()
	}
	if built {
		r.obsScan(st, r.Count())
	} else {
		r.obsProbe(st, len(out))
	}
	return out, nil
}
