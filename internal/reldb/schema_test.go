package reldb

import (
	"strings"
	"testing"
)

func deptSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("DEPARTMENT",
		[]Attribute{
			{Name: "DeptName", Type: KindString},
			{Name: "Building", Type: KindString, Nullable: true},
			{Name: "Budget", Type: KindFloat, Nullable: true},
		},
		[]string{"DeptName"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func gradesSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("GRADES",
		[]Attribute{
			{Name: "CourseID", Type: KindString},
			{Name: "PID", Type: KindInt},
			{Name: "Grade", Type: KindString, Nullable: true},
		},
		[]string{"CourseID", "PID"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	attr := []Attribute{{Name: "A", Type: KindInt}}
	cases := []struct {
		name    string
		n       string
		attrs   []Attribute
		key     []string
		wantErr string
	}{
		{"empty name", "", attr, []string{"A"}, "needs a name"},
		{"no attrs", "R", nil, []string{"A"}, "at least one attribute"},
		{"empty attr name", "R", []Attribute{{Name: "", Type: KindInt}}, []string{"A"}, "empty name"},
		{"null type", "R", []Attribute{{Name: "A", Type: KindNull}}, []string{"A"}, "null type"},
		{"dup attr", "R", []Attribute{{Name: "A", Type: KindInt}, {Name: "A", Type: KindInt}}, []string{"A"}, "duplicate attribute"},
		{"no key", "R", attr, nil, "nonempty key"},
		{"unknown key", "R", attr, []string{"B"}, "not in schema"},
		{"dup key", "R", []Attribute{{Name: "A", Type: KindInt}, {Name: "B", Type: KindInt}}, []string{"A", "A"}, "duplicate key"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewSchema(c.n, c.attrs, c.key)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, c.wantErr)
			}
		})
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := gradesSchema(t)
	if s.Name() != "GRADES" || s.Arity() != 3 {
		t.Fatalf("name/arity: %s/%d", s.Name(), s.Arity())
	}
	if got := s.AttrNames(); strings.Join(got, ",") != "CourseID,PID,Grade" {
		t.Fatalf("AttrNames = %v", got)
	}
	if got := s.KeyNames(); strings.Join(got, ",") != "CourseID,PID" {
		t.Fatalf("KeyNames = %v", got)
	}
	if got := s.NonKeyNames(); strings.Join(got, ",") != "Grade" {
		t.Fatalf("NonKeyNames = %v", got)
	}
	if i, ok := s.AttrIndex("PID"); !ok || i != 1 {
		t.Fatalf("AttrIndex(PID) = %d,%v", i, ok)
	}
	if _, ok := s.AttrIndex("Nope"); ok {
		t.Fatal("AttrIndex(Nope) should fail")
	}
	if !s.IsKeyAttr(0) || !s.IsKeyAttr(1) || s.IsKeyAttr(2) {
		t.Fatal("IsKeyAttr wrong")
	}
	if s.IsKeyAttr(-1) || s.IsKeyAttr(10) {
		t.Fatal("IsKeyAttr out of range should be false")
	}
	if !s.IsKeyName("CourseID") || s.IsKeyName("Grade") || s.IsKeyName("Nope") {
		t.Fatal("IsKeyName wrong")
	}
	if !s.HasAttrs([]string{"CourseID", "Grade"}) || s.HasAttrs([]string{"CourseID", "X"}) {
		t.Fatal("HasAttrs wrong")
	}
}

func TestKeyOrderIsCanonical(t *testing.T) {
	// Keys are stored in declaration order regardless of the order given
	// to NewSchema, so encodings are canonical.
	s1 := MustSchema("R",
		[]Attribute{{Name: "A", Type: KindInt}, {Name: "B", Type: KindInt}},
		[]string{"B", "A"})
	if got := strings.Join(s1.KeyNames(), ","); got != "A,B" {
		t.Fatalf("KeyNames = %v, want declaration order", got)
	}
}

func TestCheckTuple(t *testing.T) {
	s := gradesSchema(t)
	ok := Tuple{String("CS101"), Int(7), String("A")}
	if err := s.CheckTuple(ok); err != nil {
		t.Fatalf("valid tuple rejected: %v", err)
	}
	if err := s.CheckTuple(Tuple{String("CS101"), Int(7), Null()}); err != nil {
		t.Fatalf("nullable null rejected: %v", err)
	}
	cases := []struct {
		name string
		tup  Tuple
		want string
	}{
		{"arity", Tuple{String("CS101")}, "arity"},
		{"null key", Tuple{Null(), Int(7), Null()}, "key attribute"},
		{"kind", Tuple{String("CS101"), String("x"), Null()}, "kind"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := s.CheckTuple(c.tup)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want containing %q", err, c.want)
			}
		})
	}
	// Non-nullable non-key null.
	s2 := MustSchema("R", []Attribute{
		{Name: "A", Type: KindInt},
		{Name: "B", Type: KindInt}, // not nullable
	}, []string{"A"})
	if err := s2.CheckTuple(Tuple{Int(1), Null()}); err == nil {
		t.Fatal("non-nullable null accepted")
	}
}

func TestIntAssignableToFloat(t *testing.T) {
	s := deptSchema(t)
	tup := Tuple{String("CS"), Null(), Int(100)} // int into float attr
	if err := s.CheckTuple(tup); err != nil {
		t.Fatalf("int should be assignable to float attr: %v", err)
	}
}

func TestKeyOfAndEncode(t *testing.T) {
	s := gradesSchema(t)
	tup := Tuple{String("CS101"), Int(7), String("A")}
	key := s.KeyOf(tup)
	if !key.Equal(Tuple{String("CS101"), Int(7)}) {
		t.Fatalf("KeyOf = %v", key)
	}
	enc1 := s.EncodeKeyOf(tup)
	enc2, err := s.EncodeKey(key)
	if err != nil || enc1 != enc2 {
		t.Fatalf("EncodeKey mismatch: %v", err)
	}
	if _, err := s.EncodeKey(Tuple{String("CS101")}); err == nil {
		t.Fatal("EncodeKey with wrong arity should fail")
	}
}

func TestIndices(t *testing.T) {
	s := gradesSchema(t)
	idx, err := s.Indices([]string{"Grade", "CourseID"})
	if err != nil || idx[0] != 2 || idx[1] != 0 {
		t.Fatalf("Indices = %v, %v", idx, err)
	}
	if _, err := s.Indices([]string{"Nope"}); err == nil {
		t.Fatal("Indices unknown attr should fail")
	}
}

func TestSchemaString(t *testing.T) {
	s := gradesSchema(t)
	str := s.String()
	for _, want := range []string{"GRADES(", "CourseID string", "Grade string null", "key(CourseID, PID)"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}

func TestSchemaRename(t *testing.T) {
	s := gradesSchema(t)
	r := s.Rename("G2")
	if r.Name() != "G2" || s.Name() != "GRADES" {
		t.Fatal("Rename should copy")
	}
	if r.Arity() != s.Arity() {
		t.Fatal("Rename changed arity")
	}
}

func TestProjectSchema(t *testing.T) {
	s := gradesSchema(t)
	// Key survives: projection contains whole key.
	p, err := s.ProjectSchema("P", []string{"CourseID", "PID"})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(p.KeyNames(), ","); got != "CourseID,PID" {
		t.Fatalf("projected key = %v", got)
	}
	// Key lost: all projected attrs become the key.
	p2, err := s.ProjectSchema("P2", []string{"CourseID", "Grade"})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(p2.KeyNames(), ","); got != "CourseID,Grade" {
		t.Fatalf("fallback key = %v", got)
	}
	if _, err := s.ProjectSchema("P3", []string{"Nope"}); err == nil {
		t.Fatal("projecting unknown attr should fail")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema should panic on invalid schema")
		}
	}()
	MustSchema("", nil, nil)
}
