package reldb

import (
	"errors"
	"fmt"
	"testing"
)

func txDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	db.MustCreateRelation(MustSchema("R", []Attribute{
		{Name: "ID", Type: KindInt},
		{Name: "V", Type: KindString, Nullable: true},
	}, []string{"ID"}))
	return db
}

func TestTxCommit(t *testing.T) {
	db := txDB(t)
	tx := db.Begin()
	if err := tx.Insert("R", Tuple{Int(1), String("a")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("R", Tuple{Int(2), String("b")}); err != nil {
		t.Fatal(err)
	}
	if tx.OpCount() != 2 {
		t.Fatalf("OpCount = %d", tx.OpCount())
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.MustRelation("R").Count() != 2 {
		t.Fatal("commit lost rows")
	}
}

func TestTxRollbackInsert(t *testing.T) {
	db := txDB(t)
	tx := db.Begin()
	_ = tx.Insert("R", Tuple{Int(1), String("a")})
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if db.MustRelation("R").Count() != 0 {
		t.Fatal("rollback left inserted row")
	}
}

func TestTxRollbackDelete(t *testing.T) {
	db := txDB(t)
	_ = db.RunInTx(func(tx *Tx) error {
		return tx.Insert("R", Tuple{Int(1), String("a")})
	})
	tx := db.Begin()
	old, err := tx.Delete("R", Tuple{Int(1)})
	if err != nil || !old.Equal(Tuple{Int(1), String("a")}) {
		t.Fatalf("delete = %v, %v", old, err)
	}
	_ = tx.Rollback()
	got, ok := db.MustRelation("R").Get(Tuple{Int(1)})
	if !ok || got[1].MustString() != "a" {
		t.Fatal("rollback did not restore deleted row")
	}
}

func TestTxRollbackReplace(t *testing.T) {
	db := txDB(t)
	_ = db.RunInTx(func(tx *Tx) error {
		return tx.Insert("R", Tuple{Int(1), String("a")})
	})
	tx := db.Begin()
	old, err := tx.Replace("R", Tuple{Int(1)}, Tuple{Int(9), String("z")})
	if err != nil || old[1].MustString() != "a" {
		t.Fatalf("replace = %v, %v", old, err)
	}
	_ = tx.Rollback()
	r := db.MustRelation("R")
	if r.Has(Tuple{Int(9)}) || !r.Has(Tuple{Int(1)}) {
		t.Fatal("rollback did not undo key replacement")
	}
}

func TestTxRollbackMixedSequence(t *testing.T) {
	db := txDB(t)
	_ = db.RunInTx(func(tx *Tx) error {
		for i := 1; i <= 5; i++ {
			if err := tx.Insert("R", Tuple{Int(int64(i)), String(fmt.Sprintf("v%d", i))}); err != nil {
				return err
			}
		}
		return nil
	})
	before := db.MustRelation("R").All()

	tx := db.Begin()
	_, _ = tx.Delete("R", Tuple{Int(2)})
	_ = tx.Insert("R", Tuple{Int(10), String("new")})
	_, _ = tx.Replace("R", Tuple{Int(3)}, Tuple{Int(30), String("moved")})
	_, _ = tx.Delete("R", Tuple{Int(30)}) // delete the row we just moved
	_ = tx.Insert("R", Tuple{Int(3), String("back")})
	_ = tx.Rollback()

	after := db.MustRelation("R").All()
	if len(before) != len(after) {
		t.Fatalf("row count changed: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if !before[i].Equal(after[i]) {
			t.Fatalf("row %d changed: %v -> %v", i, before[i], after[i])
		}
	}
}

func TestTxDoneErrors(t *testing.T) {
	db := txDB(t)
	tx := db.Begin()
	_ = tx.Commit()
	if err := tx.Insert("R", Tuple{Int(1), Null()}); !errors.Is(err, ErrTxDone) {
		t.Fatalf("insert after commit: %v", err)
	}
	if _, err := tx.Delete("R", Tuple{Int(1)}); !errors.Is(err, ErrTxDone) {
		t.Fatalf("delete after commit: %v", err)
	}
	if _, err := tx.Replace("R", Tuple{Int(1)}, Tuple{Int(1), Null()}); !errors.Is(err, ErrTxDone) {
		t.Fatalf("replace after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("double commit: %v", err)
	}
	if err := tx.Rollback(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("rollback after commit: %v", err)
	}
}

func TestTxUnknownRelation(t *testing.T) {
	db := txDB(t)
	tx := db.Begin()
	defer func() { _ = tx.Rollback() }()
	if err := tx.Insert("NOPE", Tuple{Int(1)}); !errors.Is(err, ErrNoSuchRelation) {
		t.Fatalf("err = %v", err)
	}
	if _, err := tx.Delete("NOPE", Tuple{Int(1)}); !errors.Is(err, ErrNoSuchRelation) {
		t.Fatalf("err = %v", err)
	}
	if _, err := tx.Replace("NOPE", Tuple{Int(1)}, Tuple{Int(1)}); !errors.Is(err, ErrNoSuchRelation) {
		t.Fatalf("err = %v", err)
	}
}

func TestTxFailedOpsNotLogged(t *testing.T) {
	db := txDB(t)
	tx := db.Begin()
	_ = tx.Insert("R", Tuple{Int(1), String("a")})
	// Failing operations must not corrupt the undo log.
	if err := tx.Insert("R", Tuple{Int(1), String("dup")}); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v", err)
	}
	if _, err := tx.Delete("R", Tuple{Int(99)}); !errors.Is(err, ErrNoSuchTuple) {
		t.Fatalf("err = %v", err)
	}
	if _, err := tx.Replace("R", Tuple{Int(99)}, Tuple{Int(99), Null()}); !errors.Is(err, ErrNoSuchTuple) {
		t.Fatalf("err = %v", err)
	}
	if tx.OpCount() != 1 {
		t.Fatalf("OpCount = %d, want 1", tx.OpCount())
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if db.MustRelation("R").Count() != 0 {
		t.Fatal("rollback after failed ops broke state")
	}
}

func TestRunInTx(t *testing.T) {
	db := txDB(t)
	err := db.RunInTx(func(tx *Tx) error {
		return tx.Insert("R", Tuple{Int(1), String("a")})
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.MustRelation("R").Count() != 1 {
		t.Fatal("RunInTx commit lost row")
	}
	wantErr := errors.New("boom")
	err = db.RunInTx(func(tx *Tx) error {
		if err := tx.Insert("R", Tuple{Int(2), String("b")}); err != nil {
			return err
		}
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if db.MustRelation("R").Count() != 1 {
		t.Fatal("RunInTx failure did not roll back")
	}
}

func TestTxSerializesWriters(t *testing.T) {
	db := txDB(t)
	done := make(chan struct{})
	tx := db.Begin()
	go func() {
		// Second transaction must block until the first commits.
		err := db.RunInTx(func(tx2 *Tx) error {
			return tx2.Insert("R", Tuple{Int(2), String("second")})
		})
		if err != nil {
			t.Errorf("second tx: %v", err)
		}
		close(done)
	}()
	if err := tx.Insert("R", Tuple{Int(1), String("first")}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
		t.Fatal("second tx ran while first held the lock")
	default:
	}
	_ = tx.Commit()
	<-done
	if db.MustRelation("R").Count() != 2 {
		t.Fatal("both transactions should have committed")
	}
}

func TestRunInTxPanicReleasesLock(t *testing.T) {
	db := txDB(t)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("RunInTx swallowed the panic")
			}
		}()
		_ = db.RunInTx(func(tx *Tx) error {
			if err := tx.Insert("R", Tuple{Int(1), String("a")}); err != nil {
				return err
			}
			panic("boom")
		})
	}()
	// The writer lock must have been released: a new transaction can run.
	err := db.RunInTx(func(tx *Tx) error {
		return tx.Insert("R", Tuple{Int(2), String("b")})
	})
	if err != nil {
		t.Fatal(err)
	}
	// And the panicked transaction's partial work was rolled back.
	r := db.MustRelation("R")
	if r.Has(Tuple{Int(1)}) {
		t.Fatal("panicked transaction's insert survived")
	}
	if !r.Has(Tuple{Int(2)}) {
		t.Fatal("follow-up transaction lost")
	}
}

func TestTxRelationAfterDone(t *testing.T) {
	db := txDB(t)
	tx := db.Begin()
	_ = tx.Commit()
	if _, err := tx.Relation("R"); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Relation after commit: %v", err)
	}
	tx2 := db.Begin()
	_ = tx2.Rollback()
	if _, err := tx2.Relation("R"); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Relation after rollback: %v", err)
	}
}

// TestTxIsolationUntilCommit: a transaction's writes are invisible to the
// committed state (and to concurrent snapshot readers) until Commit.
func TestTxIsolationUntilCommit(t *testing.T) {
	db := txDB(t)
	tx := db.Begin()
	if err := tx.Insert("R", Tuple{Int(1), String("a")}); err != nil {
		t.Fatal(err)
	}
	// Through the transaction the row is visible (read-your-writes)...
	rel, err := tx.Relation("R")
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Has(Tuple{Int(1)}) {
		t.Fatal("transaction does not see its own write")
	}
	// ...but the committed version is untouched.
	if db.MustRelation("R").Has(Tuple{Int(1)}) {
		t.Fatal("uncommitted write visible in committed state")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !db.MustRelation("R").Has(Tuple{Int(1)}) {
		t.Fatal("commit lost the write")
	}
}

func TestDatabaseCatalog(t *testing.T) {
	db := NewDatabase()
	s := MustSchema("A", []Attribute{{Name: "X", Type: KindInt}}, []string{"X"})
	if _, err := db.CreateRelation(s); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation(s); !errors.Is(err, ErrRelationExists) {
		t.Fatalf("dup create: %v", err)
	}
	if !db.HasRelation("A") || db.HasRelation("B") {
		t.Fatal("HasRelation wrong")
	}
	if _, err := db.Relation("B"); !errors.Is(err, ErrNoSuchRelation) {
		t.Fatalf("missing relation: %v", err)
	}
	db.MustCreateRelation(MustSchema("B", []Attribute{{Name: "X", Type: KindInt}}, []string{"X"}))
	names := db.Names()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("Names = %v", names)
	}
	if err := db.DropRelation("A"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropRelation("A"); !errors.Is(err, ErrNoSuchRelation) {
		t.Fatalf("double drop: %v", err)
	}
}

func TestDatabaseCloneAndTotalRows(t *testing.T) {
	db := txDB(t)
	_ = db.RunInTx(func(tx *Tx) error {
		_ = tx.Insert("R", Tuple{Int(1), String("a")})
		return tx.Insert("R", Tuple{Int(2), String("b")})
	})
	c := db.Clone()
	_ = c.RunInTx(func(tx *Tx) error {
		return tx.Insert("R", Tuple{Int(3), String("c")})
	})
	if db.TotalRows() != 2 || c.TotalRows() != 3 {
		t.Fatalf("clone not independent: %d/%d", db.TotalRows(), c.TotalRows())
	}
}

func TestMustRelationPanics(t *testing.T) {
	db := NewDatabase()
	defer func() {
		if recover() == nil {
			t.Fatal("MustRelation should panic on missing relation")
		}
	}()
	db.MustRelation("NOPE")
}

func TestMustCreateRelationPanics(t *testing.T) {
	db := txDB(t)
	defer func() {
		if recover() == nil {
			t.Fatal("MustCreateRelation should panic on duplicate")
		}
	}()
	db.MustCreateRelation(MustSchema("R", []Attribute{{Name: "X", Type: KindInt}}, []string{"X"}))
}
