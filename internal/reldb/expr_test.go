package reldb

import (
	"strings"
	"testing"
)

func exprRow(t *testing.T) Row {
	t.Helper()
	s := MustSchema("R", []Attribute{
		{Name: "A", Type: KindInt},
		{Name: "B", Type: KindString, Nullable: true},
		{Name: "C", Type: KindFloat, Nullable: true},
		{Name: "D", Type: KindBool, Nullable: true},
	}, []string{"A"})
	return Row{Schema: s, Tuple: Tuple{Int(10), String("hi"), Float(2.5), Bool(true)}}
}

func mustEval(t *testing.T, e Expr, r Row) Value {
	t.Helper()
	v, err := e.Eval(r)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestConstAndAttr(t *testing.T) {
	r := exprRow(t)
	if v := mustEval(t, Const{V: Int(5)}, r); !v.Equal(Int(5)) {
		t.Fatalf("const = %v", v)
	}
	if v := mustEval(t, Attr{Name: "B"}, r); !v.Equal(String("hi")) {
		t.Fatalf("attr = %v", v)
	}
	if v := mustEval(t, Attr{Rel: "R", Name: "A"}, r); !v.Equal(Int(10)) {
		t.Fatalf("qualified attr = %v", v)
	}
	if _, err := (Attr{Name: "Z"}).Eval(r); err == nil {
		t.Fatal("unknown attr should fail")
	}
	if _, err := (Attr{Rel: "S", Name: "A"}).Eval(r); err == nil {
		t.Fatal("wrong qualifier should fail")
	}
}

func TestAttrQualifiedAgainstJoinedSchema(t *testing.T) {
	s := MustSchema("J", []Attribute{
		{Name: "R.A", Type: KindInt, Nullable: true},
		{Name: "S.A", Type: KindInt, Nullable: true},
	}, []string{"R.A"})
	r := Row{Schema: s, Tuple: Tuple{Int(1), Int(2)}}
	if v := mustEval(t, Attr{Rel: "S", Name: "A"}, r); !v.Equal(Int(2)) {
		t.Fatalf("joined qualified attr = %v", v)
	}
}

func TestComparisons(t *testing.T) {
	r := exprRow(t)
	cases := []struct {
		e    Expr
		want bool
	}{
		{Cmp{OpEq, Attr{Name: "A"}, Const{Int(10)}}, true},
		{Cmp{OpNe, Attr{Name: "A"}, Const{Int(10)}}, false},
		{Cmp{OpLt, Attr{Name: "A"}, Const{Int(11)}}, true},
		{Cmp{OpLe, Attr{Name: "A"}, Const{Int(10)}}, true},
		{Cmp{OpGt, Attr{Name: "A"}, Const{Int(10)}}, false},
		{Cmp{OpGe, Attr{Name: "A"}, Const{Int(10)}}, true},
		{Cmp{OpEq, Attr{Name: "C"}, Const{Float(2.5)}}, true},
		{Cmp{OpLt, Attr{Name: "B"}, Const{String("zz")}}, true},
	}
	for _, c := range cases {
		v := mustEval(t, c.e, r)
		if b, _ := v.AsBool(); b != c.want {
			t.Errorf("%s = %v, want %v", c.e, v, c.want)
		}
	}
}

func TestCmpNullPropagates(t *testing.T) {
	r := exprRow(t)
	e := Cmp{OpEq, Attr{Name: "A"}, Const{Null()}}
	if v := mustEval(t, e, r); !v.IsNull() {
		t.Fatalf("cmp with null = %v, want null", v)
	}
	// EvalBool treats null as false.
	b, err := EvalBool(e, r)
	if err != nil || b {
		t.Fatalf("EvalBool(null) = %v, %v", b, err)
	}
}

func TestCmpTypeMismatchErrors(t *testing.T) {
	r := exprRow(t)
	e := Cmp{OpEq, Attr{Name: "A"}, Const{String("x")}}
	if _, err := e.Eval(r); err == nil {
		t.Fatal("int vs string compare should error")
	}
}

func TestLogicalOps(t *testing.T) {
	r := exprRow(t)
	tr := Const{Bool(true)}
	fa := Const{Bool(false)}
	nu := Const{Null()}
	cases := []struct {
		e    Expr
		want Value
	}{
		{And{[]Expr{tr, tr}}, Bool(true)},
		{And{[]Expr{tr, fa}}, Bool(false)},
		{And{[]Expr{fa, nu}}, Bool(false)}, // false dominates null
		{And{[]Expr{tr, nu}}, Null()},
		{And{nil}, Bool(true)}, // empty conjunction
		{Or{[]Expr{fa, tr}}, Bool(true)},
		{Or{[]Expr{fa, fa}}, Bool(false)},
		{Or{[]Expr{tr, nu}}, Bool(true)}, // true dominates null
		{Or{[]Expr{fa, nu}}, Null()},
		{Or{nil}, Bool(false)}, // empty disjunction
		{Not{tr}, Bool(false)},
		{Not{fa}, Bool(true)},
		{Not{nu}, Null()},
	}
	for _, c := range cases {
		v := mustEval(t, c.e, r)
		if !v.Equal(c.want) && !(v.IsNull() && c.want.IsNull()) {
			t.Errorf("%s = %v, want %v", c.e, v, c.want)
		}
	}
	// Non-boolean operands error.
	if _, err := (And{[]Expr{Const{Int(1)}}}).Eval(r); err == nil {
		t.Error("And over int should fail")
	}
	if _, err := (Or{[]Expr{Const{Int(1)}}}).Eval(r); err == nil {
		t.Error("Or over int should fail")
	}
	if _, err := (Not{Const{Int(1)}}).Eval(r); err == nil {
		t.Error("Not over int should fail")
	}
}

func TestIsNull(t *testing.T) {
	r := exprRow(t)
	if v := mustEval(t, IsNull{E: Const{Null()}}, r); !v.Equal(Bool(true)) {
		t.Fatalf("is null = %v", v)
	}
	if v := mustEval(t, IsNull{E: Attr{Name: "A"}}, r); !v.Equal(Bool(false)) {
		t.Fatalf("is null on int = %v", v)
	}
	if v := mustEval(t, IsNull{E: Const{Null()}, Negate: true}, r); !v.Equal(Bool(false)) {
		t.Fatalf("is not null = %v", v)
	}
}

func TestIn(t *testing.T) {
	r := exprRow(t)
	in := In{E: Attr{Name: "A"}, List: []Expr{Const{Int(1)}, Const{Int(10)}}}
	if v := mustEval(t, in, r); !v.Equal(Bool(true)) {
		t.Fatalf("in = %v", v)
	}
	notIn := In{E: Attr{Name: "A"}, List: []Expr{Const{Int(1)}}}
	if v := mustEval(t, notIn, r); !v.Equal(Bool(false)) {
		t.Fatalf("not in = %v", v)
	}
	// Null element: unknown unless a match is found.
	withNull := In{E: Attr{Name: "A"}, List: []Expr{Const{Null()}}}
	if v := mustEval(t, withNull, r); !v.IsNull() {
		t.Fatalf("in with null list = %v", v)
	}
	matchDespiteNull := In{E: Attr{Name: "A"}, List: []Expr{Const{Null()}, Const{Int(10)}}}
	if v := mustEval(t, matchDespiteNull, r); !v.Equal(Bool(true)) {
		t.Fatalf("in match with null = %v", v)
	}
	nullNeedle := In{E: Const{Null()}, List: []Expr{Const{Int(1)}}}
	if v := mustEval(t, nullNeedle, r); !v.IsNull() {
		t.Fatalf("null in list = %v", v)
	}
}

func TestArith(t *testing.T) {
	r := exprRow(t)
	cases := []struct {
		e    Expr
		want Value
	}{
		{Arith{OpAdd, Const{Int(2)}, Const{Int(3)}}, Int(5)},
		{Arith{OpSub, Const{Int(2)}, Const{Int(3)}}, Int(-1)},
		{Arith{OpMul, Const{Int(4)}, Const{Int(3)}}, Int(12)},
		{Arith{OpDiv, Const{Int(7)}, Const{Int(2)}}, Int(3)},
		{Arith{OpAdd, Const{Float(1.5)}, Const{Int(1)}}, Float(2.5)},
		{Arith{OpDiv, Const{Float(5)}, Const{Float(2)}}, Float(2.5)},
		{Arith{OpMul, Attr{Name: "C"}, Const{Int(2)}}, Float(5)},
	}
	for _, c := range cases {
		v := mustEval(t, c.e, r)
		if !v.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.e, v, c.want)
		}
	}
	if _, err := (Arith{OpDiv, Const{Int(1)}, Const{Int(0)}}).Eval(r); err == nil {
		t.Error("int division by zero should fail")
	}
	if _, err := (Arith{OpDiv, Const{Float(1)}, Const{Float(0)}}).Eval(r); err == nil {
		t.Error("float division by zero should fail")
	}
	if _, err := (Arith{OpAdd, Const{String("a")}, Const{Int(1)}}).Eval(r); err == nil {
		t.Error("arith on string should fail")
	}
	if v := mustEval(t, Arith{OpAdd, Const{Null()}, Const{Int(1)}}, r); !v.IsNull() {
		t.Errorf("arith with null = %v", v)
	}
}

func TestLike(t *testing.T) {
	r := exprRow(t)
	cases := []struct {
		pattern string
		s       string
		want    bool
	}{
		{"hi", "hi", true},
		{"h_", "hi", true},
		{"h%", "hello", true},
		{"%llo", "hello", true},
		{"%e%", "hello", true},
		{"h%o", "hello", true},
		{"", "", true},
		{"%", "", true},
		{"_", "", false},
		{"h", "hi", false},
		{"%x%", "hello", false},
		{"a%b%c", "aXXbYYc", true},
	}
	for _, c := range cases {
		e := Like{E: Const{String(c.s)}, Pattern: c.pattern}
		v := mustEval(t, e, r)
		if b, _ := v.AsBool(); b != c.want {
			t.Errorf("LIKE %q on %q = %v, want %v", c.pattern, c.s, v, c.want)
		}
	}
	if v := mustEval(t, Like{E: Const{Null()}, Pattern: "%"}, r); !v.IsNull() {
		t.Error("LIKE on null should be null")
	}
	if _, err := (Like{E: Const{Int(1)}, Pattern: "%"}).Eval(r); err == nil {
		t.Error("LIKE on int should fail")
	}
}

func TestExprStrings(t *testing.T) {
	e := AndAll(
		Eq("A", Int(1)),
		Or{[]Expr{Cmp{OpGt, Attr{Name: "C"}, Const{Float(2)}}, IsNull{E: Attr{Name: "B"}}}},
		Not{In{E: Attr{Name: "A"}, List: []Expr{Const{Int(1)}, Const{Int(2)}}}},
		Like{E: Attr{Name: "B"}, Pattern: "h%"},
	)
	s := e.String()
	for _, want := range []string{"A = 1", "C > 2", "B is null", "not (A in (1, 2))", `B like "h%"`, " and ", " or "} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if got := (IsNull{E: Attr{Name: "B"}, Negate: true}).String(); got != "B is not null" {
		t.Errorf("is-not-null String = %q", got)
	}
	if got := (Attr{Rel: "R", Name: "A"}).String(); got != "R.A" {
		t.Errorf("qualified attr String = %q", got)
	}
	if got := (Arith{OpAdd, Attr{Name: "A"}, Const{Int(1)}}).String(); got != "(A + 1)" {
		t.Errorf("arith String = %q", got)
	}
}

func TestAndAllSimplification(t *testing.T) {
	r := exprRow(t)
	if v := mustEval(t, AndAll(), r); !v.Equal(Bool(true)) {
		t.Fatal("empty AndAll should be true")
	}
	one := Eq("A", Int(10))
	if got := AndAll(one); got.String() != one.String() {
		t.Fatal("single-term AndAll should not wrap")
	}
}

func TestEvalBoolErrors(t *testing.T) {
	r := exprRow(t)
	if _, err := EvalBool(Const{Int(3)}, r); err == nil {
		t.Fatal("non-boolean predicate should error")
	}
	if _, err := EvalBool(Attr{Name: "Z"}, r); err == nil {
		t.Fatal("eval error should propagate")
	}
}

func TestOpStringsExhaustive(t *testing.T) {
	wantCmp := map[CmpOp]string{OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="}
	for op, s := range wantCmp {
		if op.String() != s {
			t.Errorf("%v.String() = %q", op, op.String())
		}
	}
	wantArith := map[ArithOp]string{OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/"}
	for op, s := range wantArith {
		if op.String() != s {
			t.Errorf("%v.String() = %q", op, op.String())
		}
	}
}
