package reldb

import (
	"fmt"
	"testing"
)

func TestRangeConjunction(t *testing.T) {
	lt := func(a string, v Value) Expr { return Cmp{Op: OpLt, L: Attr{Name: a}, R: Const{V: v}} }
	ge := func(a string, v Value) Expr { return Cmp{Op: OpGe, L: Attr{Name: a}, R: Const{V: v}} }

	// Single upper bound.
	attr, lo, hi, ok := RangeConjunction(lt("PID", Int(5)))
	if !ok || attr != "PID" || lo != nil || hi == nil || !hi.Strict || !hi.V.Equal(Int(5)) {
		t.Fatalf("PID < 5: attr=%q lo=%v hi=%v ok=%v", attr, lo, hi, ok)
	}

	// Constant on the left flips the side: 5 < PID is PID > 5.
	attr, lo, hi, ok = RangeConjunction(Cmp{Op: OpLt, L: Const{V: Int(5)}, R: Attr{Name: "PID"}})
	if !ok || attr != "PID" || hi != nil || lo == nil || !lo.Strict || !lo.V.Equal(Int(5)) {
		t.Fatalf("5 < PID: attr=%q lo=%v hi=%v ok=%v", attr, lo, hi, ok)
	}

	// Bounded range over one attribute.
	attr, lo, hi, ok = RangeConjunction(And{Terms: []Expr{ge("PID", Int(2)), lt("PID", Int(7))}})
	if !ok || attr != "PID" || lo == nil || lo.Strict || hi == nil || !hi.Strict {
		t.Fatalf("2 <= PID < 7: attr=%q lo=%v hi=%v ok=%v", attr, lo, hi, ok)
	}

	// Rejections: other operators, two attributes, qualified references,
	// duplicate same-side bounds, nested structure, equality mixes.
	for _, pred := range []Expr{
		Cmp{Op: OpEq, L: Attr{Name: "PID"}, R: Const{V: Int(5)}},
		Cmp{Op: OpNe, L: Attr{Name: "PID"}, R: Const{V: Int(5)}},
		And{Terms: []Expr{lt("PID", Int(5)), ge("Grade", String("B"))}},
		Cmp{Op: OpLt, L: Attr{Rel: "G", Name: "PID"}, R: Const{V: Int(5)}},
		And{Terms: []Expr{lt("PID", Int(5)), lt("PID", Int(7))}},
		And{Terms: []Expr{ge("PID", Int(2)), ge("PID", Int(3))}},
		And{Terms: []Expr{lt("PID", Int(5)), Eq("Grade", String("A"))}},
		Or{Terms: []Expr{lt("PID", Int(5))}},
		Not{E: lt("PID", Int(5))},
		And{},
		Cmp{Op: OpLt, L: Attr{Name: "PID"}, R: Attr{Name: "Other"}},
	} {
		if _, _, _, ok := RangeConjunction(pred); ok {
			t.Fatalf("decomposed non-range predicate %s", pred)
		}
	}
}

func TestProbeableRange(t *testing.T) {
	r := newGradesRel(t)
	lo := &RangeBound{V: Int(1)}
	if !r.ProbeableRange("PID", lo, nil) {
		t.Fatal("half-open int range on int attribute should probe")
	}
	if !r.ProbeableRange("PID", &RangeBound{V: Float(1.5)}, nil) {
		t.Fatal("float bound on int attribute orders numerically, should probe")
	}
	if r.ProbeableRange("PID", nil, nil) {
		t.Fatal("unbounded range has nothing to probe")
	}
	if r.ProbeableRange("PID", &RangeBound{V: Null()}, nil) {
		t.Fatal("null bound needs scan semantics")
	}
	if r.ProbeableRange("PID", &RangeBound{V: String("x")}, nil) {
		t.Fatal("string bound on int attribute cannot order")
	}
	if r.ProbeableRange("Nope", lo, nil) {
		t.Fatal("unknown attribute should not probe")
	}
}

// TestMatchRangeMatchesSelect pins the substitution guarantee: for every
// probeable range, MatchRange returns exactly what a predicate scan
// does — same tuples, same primary-key order — including rows holding
// null in the ranged attribute (which no range matches).
func TestMatchRangeMatchesSelect(t *testing.T) {
	s := MustSchema("T", []Attribute{
		{Name: "K", Type: KindInt},
		{Name: "N", Type: KindInt, Nullable: true},
		{Name: "S", Type: KindString, Nullable: true},
	}, []string{"K"})
	r := NewRelation(s)
	for k := 0; k < 40; k++ {
		n := Value(Int(int64((k * 7) % 13)))
		if k%5 == 0 {
			n = Null()
		}
		if err := r.Insert(Tuple{Int(int64(k)), n, String(fmt.Sprintf("s%02d", k%9))}); err != nil {
			t.Fatal(err)
		}
	}
	b := func(v Value, strict bool) *RangeBound { return &RangeBound{V: v, Strict: strict} }
	cases := []struct {
		attr   string
		lo, hi *RangeBound
		pred   Expr
	}{
		{"N", b(Int(4), true), nil, Cmp{Op: OpGt, L: Attr{Name: "N"}, R: Const{V: Int(4)}}},
		{"N", b(Int(4), false), nil, Cmp{Op: OpGe, L: Attr{Name: "N"}, R: Const{V: Int(4)}}},
		{"N", nil, b(Int(6), true), Cmp{Op: OpLt, L: Attr{Name: "N"}, R: Const{V: Int(6)}}},
		{"N", b(Int(3), false), b(Int(9), true), And{Terms: []Expr{
			Cmp{Op: OpGe, L: Attr{Name: "N"}, R: Const{V: Int(3)}},
			Cmp{Op: OpLt, L: Attr{Name: "N"}, R: Const{V: Int(9)}},
		}}},
		{"N", b(Int(100), false), nil, Cmp{Op: OpGe, L: Attr{Name: "N"}, R: Const{V: Int(100)}}},
		{"N", b(Int(9), false), b(Int(3), false), And{Terms: []Expr{
			Cmp{Op: OpGe, L: Attr{Name: "N"}, R: Const{V: Int(9)}},
			Cmp{Op: OpLe, L: Attr{Name: "N"}, R: Const{V: Int(3)}},
		}}},
		{"N", b(Float(4.5), true), nil, Cmp{Op: OpGt, L: Attr{Name: "N"}, R: Const{V: Float(4.5)}}},
		{"S", b(String("s03"), false), b(String("s07"), true), And{Terms: []Expr{
			Cmp{Op: OpGe, L: Attr{Name: "S"}, R: Const{V: String("s03")}},
			Cmp{Op: OpLt, L: Attr{Name: "S"}, R: Const{V: String("s07")}},
		}}},
		{"K", b(Int(10), true), b(Int(20), false), And{Terms: []Expr{
			Cmp{Op: OpGt, L: Attr{Name: "K"}, R: Const{V: Int(10)}},
			Cmp{Op: OpLe, L: Attr{Name: "K"}, R: Const{V: Int(20)}},
		}}},
	}
	for i, c := range cases {
		if !r.ProbeableRange(c.attr, c.lo, c.hi) {
			t.Fatalf("case %d: not probeable", i)
		}
		want, err := r.Select(c.pred)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.MatchRange(c.attr, c.lo, c.hi)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("case %d (%s): %d tuples, scan found %d", i, c.pred, len(got), len(want))
		}
		for j := range got {
			if !got[j].Equal(want[j]) {
				t.Fatalf("case %d (%s): tuple %d = %v, scan has %v", i, c.pred, j, got[j], want[j])
			}
		}
	}

	// A null bound matches nothing, exactly like the scan's three-valued
	// comparison, and does not error.
	got, err := r.MatchRange("N", b(Null(), false), nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("null bound: %v, %v", got, err)
	}
	// A kind mismatch errors rather than silently returning nothing.
	if _, err := r.MatchRange("N", b(String("x"), false), nil); err == nil {
		t.Fatal("string bound against int attribute should error")
	}
}

// TestRangePlanCacheAccounting pins the cache lifecycle: first range
// over an attribute builds the ordered view (miss, charged a scan),
// repeats hit it (charged the window), row mutation drops it
// (invalidation, next call is a miss again), and hits+misses always
// reconcile with lookups.
func TestRangePlanCacheAccounting(t *testing.T) {
	r := newGradesRel(t)
	for i := 0; i < 10; i++ {
		if err := r.Insert(grade(fmt.Sprintf("CS%03d", i), int64(i), "A")); err != nil {
			t.Fatal(err)
		}
	}
	lo := &RangeBound{V: Int(3)}
	l0, h0, m0, i0 := planCounts()

	var st MatchStats
	if _, err := r.MatchRangeStats("PID", lo, nil, &st); err != nil {
		t.Fatal(err)
	}
	l, h, m, _ := planCounts()
	if l-l0 != 1 || h-h0 != 0 || m-m0 != 1 {
		t.Fatalf("first range: lookups+%d hits+%d misses+%d, want +1/+0/+1", l-l0, h-h0, m-m0)
	}
	if st.Scans != 1 || st.Scanned != r.Count() {
		t.Fatalf("view build charged %+v, want one full scan", st)
	}

	st = MatchStats{}
	out, err := r.MatchRangeStats("PID", lo, nil, &st)
	if err != nil {
		t.Fatal(err)
	}
	l, h, m, _ = planCounts()
	if l-l0 != 2 || h-h0 != 1 || m-m0 != 1 {
		t.Fatalf("second range: lookups+%d hits+%d misses+%d, want +2/+1/+1", l-l0, h-h0, m-m0)
	}
	if st.Probes != 1 || st.Scanned != len(out) {
		t.Fatalf("cached range charged %+v for %d tuples, want one window probe", st, len(out))
	}

	// Another attribute's view caches independently.
	if _, err := r.MatchRange("CourseID", &RangeBound{V: String("CS005")}, nil); err != nil {
		t.Fatal(err)
	}
	if r.plans.size() < 2 {
		t.Fatalf("plan cache holds %d entries, want the two ordered views", r.plans.size())
	}

	// Mutation drops the views; the next range rebuilds.
	if err := r.Insert(grade("CS999", 999, "B")); err != nil {
		t.Fatal(err)
	}
	_, _, _, inv := planCounts()
	if inv-i0 != 2 {
		t.Fatalf("invalidations +%d after mutation, want +2 (both views dropped)", inv-i0)
	}
	got, err := r.MatchRange("PID", &RangeBound{V: Int(500)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Equal(grade("CS999", 999, "B")) {
		t.Fatalf("rebuilt view missed the new row: %v", got)
	}
	l, h, m, _ = planCounts()
	if (h-h0)+(m-m0) != l-l0 {
		t.Fatalf("counters do not reconcile: lookups+%d hits+%d misses+%d", l-l0, h-h0, m-m0)
	}
}
