package reldb

import (
	"strings"
	"sync"
	"sync/atomic"

	"penguin/internal/obs"
)

// planKind classifies how a MatchEqual-family lookup over an attribute
// set is served on a given relation version.
type planKind uint8

const (
	// planScan: no covering index — fall back to a full-relation scan.
	planScan planKind = iota
	// planPoint: the attribute set is exactly the primary key — serve
	// with a point Get.
	planPoint
	// planIndex: a secondary index covers the attribute set — serve with
	// a bucket probe.
	planIndex
)

// lookupPlan is the resolved index selection for one (relation version,
// attribute list) pair: which access path to use and how to permute the
// caller's values into that path's attribute order. Plans are immutable
// once published and shared by every lookup (and every parallel worker)
// against the same relation version.
type lookupPlan struct {
	// idx are the attribute indices, in the caller's attrNames order
	// (duplicate-free — lookupIndices rejected duplicates).
	idx  []int
	kind planKind
	// ix is the serving secondary index (planIndex only).
	ix *secondaryIndex
	// perm maps target positions to caller positions: target[i] =
	// vals[perm[i]], where target is the primary key (planPoint) or the
	// index's attribute order (planIndex). Nil for planScan.
	perm []int
}

// permute arranges the caller's lookup values into the plan's target
// attribute order.
func (p *lookupPlan) permute(vals Tuple) Tuple {
	out := make(Tuple, len(p.perm))
	for i, j := range p.perm {
		out[i] = vals[j]
	}
	return out
}

// planCache memoizes index selection per relation version. Committed
// relation versions are immutable in every respect except this cache, so
// it carries its own lock: concurrent readers of a shared snapshot race
// only on the map, never on the plans themselves (published plans are
// immutable). A write transaction's private clone starts cold — the
// parent's plans are version-local (they pin *secondaryIndex pointers) —
// which is what makes generation advance an automatic invalidation.
type planCache struct {
	mu    sync.RWMutex
	plans map[string]*lookupPlan
	// ranges caches ordered views (rangePlan) under "range"+sep+attr
	// keys. Unlike lookupPlans — which read the live row map and index
	// objects and so survive in-place mutation — a rangePlan materializes
	// the row set, so mutators drop these (dropRanges). hasRanges lets
	// that drop cost one atomic load on the mutation hot path when no
	// range plan exists.
	ranges    map[string]*rangePlan
	hasRanges atomic.Bool
}

// get returns the cached plan for key, or nil.
func (pc *planCache) get(key string) *lookupPlan {
	pc.mu.RLock()
	p := pc.plans[key]
	pc.mu.RUnlock()
	return p
}

// put publishes a plan, unless a racing resolver won; it returns the
// plan that ended up cached and whether this call stored it.
func (pc *planCache) put(key string, p *lookupPlan) (*lookupPlan, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if prev, ok := pc.plans[key]; ok {
		return prev, false
	}
	if pc.plans == nil {
		pc.plans = make(map[string]*lookupPlan, 8)
	}
	pc.plans[key] = p
	return p, true
}

// getRange returns the cached ordered view for key, or nil.
func (pc *planCache) getRange(key string) *rangePlan {
	if !pc.hasRanges.Load() {
		return nil
	}
	pc.mu.RLock()
	p := pc.ranges[key]
	pc.mu.RUnlock()
	return p
}

// putRange publishes an ordered view, unless a racing builder won; it
// returns the view that ended up cached and whether this call stored it.
func (pc *planCache) putRange(key string, p *rangePlan) (*rangePlan, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if prev, ok := pc.ranges[key]; ok {
		return prev, false
	}
	if pc.ranges == nil {
		pc.ranges = make(map[string]*rangePlan, 2)
	}
	pc.ranges[key] = p
	pc.hasRanges.Store(true)
	return p, true
}

// dropRanges discards the cached ordered views and returns how many
// were dropped. Called on every row mutation: a rangePlan pins this
// version's row set, which Insert/Delete/Replace change in place (only
// a write transaction's private clone is ever mutated, so on committed
// versions this is never reached past the atomic load).
func (pc *planCache) dropRanges() int {
	if !pc.hasRanges.Load() {
		return 0
	}
	pc.mu.Lock()
	n := len(pc.ranges)
	pc.ranges = nil
	pc.hasRanges.Store(false)
	pc.mu.Unlock()
	return n
}

// purge discards every cached plan and returns how many were dropped.
// Called on index DDL: a cached plan pins the index selection (and a
// *secondaryIndex), both of which CreateIndex/DropIndex change.
func (pc *planCache) purge() int {
	pc.mu.Lock()
	n := len(pc.plans) + len(pc.ranges)
	pc.plans = nil
	pc.ranges = nil
	pc.hasRanges.Store(false)
	pc.mu.Unlock()
	return n
}

// size returns the number of cached plans (lookup and range).
func (pc *planCache) size() int {
	pc.mu.RLock()
	n := len(pc.plans) + len(pc.ranges)
	pc.mu.RUnlock()
	return n
}

// planKeySep joins multi-attribute cache keys. Attribute names come from
// schemas, which never contain control characters, so the separator
// cannot collide.
const planKeySep = "\x1f"

// planKey builds the cache key for an attribute list. The single-
// attribute case — every structural-model connection edge — is the
// attribute name itself: no allocation on the hot path.
func planKey(attrNames []string) string {
	if len(attrNames) == 1 {
		return attrNames[0]
	}
	return strings.Join(attrNames, planKeySep)
}

// planFor resolves the lookup plan for attrNames on this relation
// version, consulting the cache first. Exactly one of
// reldb.plancache.{hits,misses} is counted per successful call (errors
// count nothing), so lookups == hits + misses holds at every quiescent
// point. The keys are order-sensitive ("a","b" and "b","a" cache
// separately) — the permutations differ, and connection edges always
// present their attributes in a fixed order, so the duplication is
// bounded and harmless.
func (r *Relation) planFor(what string, attrNames []string) (*lookupPlan, error) {
	key := planKey(attrNames)
	if p := r.plans.get(key); p != nil {
		obs.Default.PlanCacheLookups.Inc()
		obs.Default.PlanCacheHits.Inc()
		return p, nil
	}
	idx, err := r.lookupIndices(what, attrNames)
	if err != nil {
		return nil, err
	}
	p := &lookupPlan{idx: idx, kind: planScan}
	if sameIntSet(idx, r.schema.key) {
		p.kind = planPoint
		p.perm = make([]int, len(r.schema.key))
		for i, k := range r.schema.key {
			for j, a := range idx {
				if a == k {
					p.perm[i] = j
					break
				}
			}
		}
	} else if ix, perm := r.findIndex(idx); ix != nil {
		p.kind = planIndex
		p.ix = ix
		p.perm = perm
	}
	p, stored := r.plans.put(key, p)
	obs.Default.PlanCacheLookups.Inc()
	if stored {
		obs.Default.PlanCacheMisses.Inc()
	} else {
		obs.Default.PlanCacheHits.Inc()
	}
	return p, nil
}

// invalidatePlans purges the plan cache after index DDL and records the
// dropped plans in reldb.plancache.invalidations.
func (r *Relation) invalidatePlans() {
	if n := r.plans.purge(); n > 0 {
		obs.Default.PlanCacheInvalidations.Add(int64(n))
	}
}

// invalidateRangePlans drops the cached ordered views after a row
// mutation (they materialize the row set; see planCache.dropRanges) and
// records them in reldb.plancache.invalidations.
func (r *Relation) invalidateRangePlans() {
	if n := r.plans.dropRanges(); n > 0 {
		obs.Default.PlanCacheInvalidations.Add(int64(n))
	}
}
