package reldb

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"penguin/internal/obs"
)

func snapDB(t *testing.T, rows int) *Database {
	t.Helper()
	db := NewDatabase()
	db.MustCreateRelation(MustSchema("R", []Attribute{
		{Name: "ID", Type: KindInt},
		{Name: "V", Type: KindString, Nullable: true},
	}, []string{"ID"}))
	db.MustCreateRelation(MustSchema("S", []Attribute{
		{Name: "ID", Type: KindInt},
		{Name: "RID", Type: KindInt},
	}, []string{"ID"}))
	err := db.RunInTx(func(tx *Tx) error {
		for i := 0; i < rows; i++ {
			if err := tx.Insert("R", Tuple{Int(int64(i)), String("v")}); err != nil {
				return err
			}
			if err := tx.Insert("S", Tuple{Int(int64(i)), Int(int64(i))}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestReadTxSeesPinnedState(t *testing.T) {
	db := snapDB(t, 3)
	rtx := db.BeginRead()
	defer rtx.Close()

	_ = db.RunInTx(func(tx *Tx) error {
		if _, err := tx.Delete("R", Tuple{Int(0)}); err != nil {
			return err
		}
		return tx.Insert("R", Tuple{Int(99), String("new")})
	})

	rel := rtx.MustRelation("R")
	if rel.Count() != 3 {
		t.Fatalf("snapshot count = %d, want 3", rel.Count())
	}
	if !rel.Has(Tuple{Int(0)}) {
		t.Fatal("snapshot lost a row deleted after BeginRead")
	}
	if rel.Has(Tuple{Int(99)}) {
		t.Fatal("snapshot sees a row inserted after BeginRead")
	}
	// A fresh snapshot sees the committed state.
	rtx2 := db.BeginRead()
	defer rtx2.Close()
	rel2 := rtx2.MustRelation("R")
	if rel2.Has(Tuple{Int(0)}) || !rel2.Has(Tuple{Int(99)}) {
		t.Fatal("fresh snapshot does not see the committed transaction")
	}
	if !rtx.Stale() || rtx2.Stale() {
		t.Fatalf("staleness wrong: old=%v new=%v", rtx.Stale(), rtx2.Stale())
	}
}

func TestReadTxConsistentAcrossRelations(t *testing.T) {
	db := snapDB(t, 2)
	// A transaction touching R and S commits both or neither; a snapshot
	// must never observe one without the other.
	rtx := db.BeginRead()
	_ = db.RunInTx(func(tx *Tx) error {
		if err := tx.Insert("R", Tuple{Int(50), String("x")}); err != nil {
			return err
		}
		return tx.Insert("S", Tuple{Int(50), Int(50)})
	})
	inR := rtx.MustRelation("R").Has(Tuple{Int(50)})
	inS := rtx.MustRelation("S").Has(Tuple{Int(50)})
	if inR != inS {
		t.Fatalf("torn snapshot: R=%v S=%v", inR, inS)
	}
	rtx.Close()
}

func TestReadTxDoesNotBlockWriter(t *testing.T) {
	db := snapDB(t, 2)
	rtx := db.BeginRead()
	// With the snapshot held open, a full write transaction must be able
	// to begin and commit.
	done := make(chan error, 1)
	go func() {
		done <- db.RunInTx(func(tx *Tx) error {
			return tx.Insert("R", Tuple{Int(77), String("w")})
		})
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if rtx.MustRelation("R").Has(Tuple{Int(77)}) {
		t.Fatal("snapshot observed the concurrent commit")
	}
	rtx.Close()
}

func TestReadTxCloseRefusesAccess(t *testing.T) {
	db := snapDB(t, 1)
	rtx := db.BeginRead()
	rtx.Close()
	rtx.Close() // idempotent
	if _, err := rtx.Relation("R"); !errors.Is(err, ErrTxDone) {
		t.Fatalf("after Close: %v", err)
	}
}

func TestReadTxGenerations(t *testing.T) {
	db := snapDB(t, 1)
	g0 := db.Generation()
	rtx := db.BeginRead()
	if rtx.Generation() != g0 {
		t.Fatalf("snapshot gen %d, db gen %d", rtx.Generation(), g0)
	}
	_ = db.RunInTx(func(tx *Tx) error {
		return tx.Insert("R", Tuple{Int(5), String("x")})
	})
	if db.Generation() != g0+1 {
		t.Fatalf("commit did not bump generation: %d", db.Generation())
	}
	if db.MustRelation("R").Generation() != g0+1 {
		t.Fatalf("published relation carries gen %d, want %d",
			db.MustRelation("R").Generation(), g0+1)
	}
	// A read-only transaction does not bump the generation.
	_ = db.RunInTx(func(tx *Tx) error {
		_, err := tx.Relation("R")
		return err
	})
	if db.Generation() != g0+1 {
		t.Fatalf("read-only tx bumped generation to %d", db.Generation())
	}
	rtx.Close()
}

func TestReadTxFork(t *testing.T) {
	db := snapDB(t, 2)
	rtx := db.BeginRead()
	fork := rtx.Fork()
	rtx.Close()
	// Mutating the fork leaves the origin untouched and vice versa.
	if err := fork.RunInTx(func(tx *Tx) error {
		_, err := tx.Delete("R", Tuple{Int(0)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if fork.MustRelation("R").Count() != 1 || db.MustRelation("R").Count() != 2 {
		t.Fatalf("fork not independent: fork=%d db=%d",
			fork.MustRelation("R").Count(), db.MustRelation("R").Count())
	}
	_ = db.RunInTx(func(tx *Tx) error {
		return tx.Insert("R", Tuple{Int(9), String("z")})
	})
	if fork.MustRelation("R").Has(Tuple{Int(9)}) {
		t.Fatal("commit on origin leaked into fork")
	}
}

// TestConcurrentReadersAndWriters drives many snapshot readers against
// writer transactions; under -race this proves the read path is free of
// data races, and the invariant check proves snapshot isolation: every
// snapshot observes R and S at a single commit boundary (the writer keeps
// them in lockstep).
func TestConcurrentReadersAndWriters(t *testing.T) {
	db := snapDB(t, 8)
	const (
		readers = 4
		writers = 2
		rounds  = 150
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rtx := db.BeginRead()
				nR := rtx.MustRelation("R").Count()
				nS := rtx.MustRelation("S").Count()
				rtx.MustRelation("R").Scan(func(Tuple) bool { return true })
				rtx.Close()
				if nR != nS {
					select {
					case errs <- fmt.Errorf("torn snapshot: |R|=%d |S|=%d", nR, nS):
					default:
					}
					return
				}
			}
		}()
	}
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for i := 0; i < rounds; i++ {
				id := int64(1000 + w*rounds + i)
				_ = db.RunInTx(func(tx *Tx) error {
					if err := tx.Insert("R", Tuple{Int(id), String("w")}); err != nil {
						return err
					}
					return tx.Insert("S", Tuple{Int(id), Int(id)})
				})
				_ = db.RunInTx(func(tx *Tx) error {
					if _, err := tx.Delete("R", Tuple{Int(id)}); err != nil {
						return err
					}
					_, err := tx.Delete("S", Tuple{Int(id)})
					return err
				})
			}
		}(w)
	}
	wwg.Wait()
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestWriteSnapshotDuringCommits serializes the database repeatedly while
// writer transactions keep R and S in lockstep; every serialized snapshot
// must be internally consistent (|R| == |S|), proving WriteSnapshot sees
// either all of a commit or none of it.
func TestWriteSnapshotDuringCommits(t *testing.T) {
	db := snapDB(t, 4)
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		for i := 0; i < 120; i++ {
			id := int64(2000 + i)
			_ = db.RunInTx(func(tx *Tx) error {
				if err := tx.Insert("R", Tuple{Int(id), String("w")}); err != nil {
					return err
				}
				return tx.Insert("S", Tuple{Int(id), Int(id)})
			})
		}
	}()
	for i := 0; i < 40; i++ {
		var buf bytes.Buffer
		if err := db.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatal(err)
		}
		nR := loaded.MustRelation("R").Count()
		nS := loaded.MustRelation("S").Count()
		if nR != nS {
			t.Fatalf("snapshot %d torn: |R|=%d |S|=%d", i, nR, nS)
		}
	}
	wwg.Wait()
}

// A ReadTx (or fork) whose snapshot fell at least the alert threshold
// behind fires the stale-close alert exactly once: one stale_closes
// increment and — with a sink installed — one trace event, however many
// times Close is called. Below-threshold closes never fire.
func TestReadTxStaleCloseAlert(t *testing.T) {
	db := snapDB(t, 1)
	advance := func(id int64) {
		t.Helper()
		if err := db.RunInTx(func(tx *Tx) error {
			return tx.Insert("R", Tuple{Int(id), String("w")})
		}); err != nil {
			t.Fatal(err)
		}
	}
	prev := obs.Default.SetReadTxLagAlert(2)
	defer obs.Default.SetReadTxLagAlert(prev)
	ring := obs.NewRing(8)
	obs.Default.SetSink(ring)
	defer obs.Default.SetSink(nil)

	// One commit of lag: below the threshold, no alert.
	fresh := db.BeginRead()
	advance(100)
	base := obs.Default.StaleCloses.Load()
	fresh.Close()
	if got := obs.Default.StaleCloses.Load(); got != base {
		t.Fatalf("below-threshold close fired the alert: %d -> %d", base, got)
	}

	// Two commits of lag: at the threshold, exactly one alert.
	stale := db.BeginRead()
	advance(101)
	advance(102)
	base = obs.Default.StaleCloses.Load()
	ringBase := ring.Len()
	stale.Close()
	if got := obs.Default.StaleCloses.Load(); got != base+1 {
		t.Fatalf("stale close counted %d alerts, want 1", got-base)
	}
	if ring.Len() != ringBase+1 {
		t.Fatalf("stale close emitted %d events, want 1", ring.Len()-ringBase)
	}
	evs := ring.Last(1)
	if evs[0].Name != "reldb.readtx.stale_close" {
		t.Fatalf("event name = %q", evs[0].Name)
	}
	if !strings.Contains(evs[0].Detail, "lag=2") || !strings.Contains(evs[0].Detail, "threshold=2") {
		t.Fatalf("event detail = %q", evs[0].Detail)
	}
	// Close is idempotent: no second alert.
	stale.Close()
	if got := obs.Default.StaleCloses.Load(); got != base+1 {
		t.Fatal("repeated Close fired the alert again")
	}

	// Threshold 0 disables alerting entirely.
	obs.Default.SetReadTxLagAlert(0)
	off := db.BeginRead()
	advance(103)
	advance(104)
	advance(105)
	base = obs.Default.StaleCloses.Load()
	off.Close()
	if got := obs.Default.StaleCloses.Load(); got != base {
		t.Fatal("disabled threshold still fired the alert")
	}
}
