package reldb

import (
	"fmt"
	"strings"
)

// Attribute describes one column of a relation schema.
type Attribute struct {
	// Name is the attribute name, unique within the schema.
	Name string
	// Type is the kind every non-null value of this attribute must have.
	Type Kind
	// Nullable permits null values. Key attributes are never nullable
	// regardless of this flag.
	Nullable bool
}

// Schema describes a relation: an ordered list of typed attributes and a
// primary key (a subset of the attributes). Schemas are immutable once
// constructed.
type Schema struct {
	name   string
	attrs  []Attribute
	key    []int // indices into attrs, in declaration order
	byName map[string]int
	isKey  []bool
}

// NewSchema builds a schema. keyNames must name a nonempty subset of the
// attributes; attribute names must be unique and nonempty.
func NewSchema(name string, attrs []Attribute, keyNames []string) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("reldb: schema needs a name")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("reldb: schema %s needs at least one attribute", name)
	}
	s := &Schema{
		name:   name,
		attrs:  append([]Attribute(nil), attrs...),
		byName: make(map[string]int, len(attrs)),
		isKey:  make([]bool, len(attrs)),
	}
	for i, a := range s.attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("reldb: schema %s: attribute %d has empty name", name, i)
		}
		if a.Type == KindNull {
			return nil, fmt.Errorf("reldb: schema %s: attribute %s has null type", name, a.Name)
		}
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("reldb: schema %s: duplicate attribute %s", name, a.Name)
		}
		s.byName[a.Name] = i
	}
	if len(keyNames) == 0 {
		return nil, fmt.Errorf("reldb: schema %s needs a nonempty key", name)
	}
	seen := make(map[string]bool, len(keyNames))
	for _, kn := range keyNames {
		i, ok := s.byName[kn]
		if !ok {
			return nil, fmt.Errorf("reldb: schema %s: key attribute %s not in schema", name, kn)
		}
		if seen[kn] {
			return nil, fmt.Errorf("reldb: schema %s: duplicate key attribute %s", name, kn)
		}
		seen[kn] = true
		s.isKey[i] = true
	}
	// Key indices in declaration order for a canonical encoding.
	for i := range s.attrs {
		if s.isKey[i] {
			s.key = append(s.key, i)
		}
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for fixtures and tests.
func MustSchema(name string, attrs []Attribute, keyNames []string) *Schema {
	s, err := NewSchema(name, attrs, keyNames)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the relation name.
func (s *Schema) Name() string { return s.name }

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute { return append([]Attribute(nil), s.attrs...) }

// AttrIndex returns the index of the named attribute.
func (s *Schema) AttrIndex(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// AttrNames returns the attribute names in declaration order.
func (s *Schema) AttrNames() []string {
	names := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		names[i] = a.Name
	}
	return names
}

// Key returns the indices of the key attributes in declaration order.
func (s *Schema) Key() []int { return append([]int(nil), s.key...) }

// KeyNames returns the names of the key attributes in declaration order.
func (s *Schema) KeyNames() []string {
	names := make([]string, len(s.key))
	for i, k := range s.key {
		names[i] = s.attrs[k].Name
	}
	return names
}

// IsKeyAttr reports whether attribute i is part of the primary key.
func (s *Schema) IsKeyAttr(i int) bool { return i >= 0 && i < len(s.isKey) && s.isKey[i] }

// IsKeyName reports whether the named attribute is part of the primary key.
func (s *Schema) IsKeyName(name string) bool {
	i, ok := s.byName[name]
	return ok && s.isKey[i]
}

// NonKeyNames returns the names of the non-key attributes in order.
func (s *Schema) NonKeyNames() []string {
	var names []string
	for i, a := range s.attrs {
		if !s.isKey[i] {
			names = append(names, a.Name)
		}
	}
	return names
}

// HasAttrs reports whether every name in names is an attribute of s.
func (s *Schema) HasAttrs(names []string) bool {
	for _, n := range names {
		if _, ok := s.byName[n]; !ok {
			return false
		}
	}
	return true
}

// CheckTuple validates t against the schema: arity, per-attribute kinds,
// nullability, and non-null key attributes.
func (s *Schema) CheckTuple(t Tuple) error {
	if len(t) != len(s.attrs) {
		return fmt.Errorf("reldb: %s: tuple arity %d, want %d", s.name, len(t), len(s.attrs))
	}
	for i, v := range t {
		a := s.attrs[i]
		if v.IsNull() {
			if s.isKey[i] {
				return fmt.Errorf("reldb: %s: key attribute %s is null", s.name, a.Name)
			}
			if !a.Nullable {
				return fmt.Errorf("reldb: %s: attribute %s is not nullable", s.name, a.Name)
			}
			continue
		}
		if !kindAssignable(a.Type, v.Kind()) {
			return fmt.Errorf("reldb: %s: attribute %s has kind %s, want %s",
				s.name, a.Name, v.Kind(), a.Type)
		}
	}
	return nil
}

// kindAssignable reports whether a value of kind have may be stored in an
// attribute of kind want. Ints are assignable to float attributes.
func kindAssignable(want, have Kind) bool {
	if want == have {
		return true
	}
	return want == KindFloat && have == KindInt
}

// KeyOf extracts the key values of t in canonical (declaration) order.
func (s *Schema) KeyOf(t Tuple) Tuple {
	key := make(Tuple, len(s.key))
	for i, k := range s.key {
		key[i] = t[k]
	}
	return key
}

// EncodeKeyOf returns the canonical encoded primary key of t.
func (s *Schema) EncodeKeyOf(t Tuple) string {
	var dst []byte
	for _, k := range s.key {
		dst = AppendKey(dst, t[k])
	}
	return string(dst)
}

// EncodeKey encodes key values given in canonical key order.
func (s *Schema) EncodeKey(key Tuple) (string, error) {
	if len(key) != len(s.key) {
		return "", fmt.Errorf("reldb: %s: key arity %d, want %d", s.name, len(key), len(s.key))
	}
	return EncodeValues(key...), nil
}

// Indices maps attribute names to their indices, failing on unknown names.
func (s *Schema) Indices(names []string) ([]int, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		j, ok := s.byName[n]
		if !ok {
			return nil, fmt.Errorf("reldb: %s has no attribute %s", s.name, n)
		}
		idx[i] = j
	}
	return idx, nil
}

// String renders the schema as an RQL CREATE TABLE statement body.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('(')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		b.WriteByte(' ')
		b.WriteString(a.Type.String())
		if a.Nullable {
			b.WriteString(" null")
		}
	}
	b.WriteString(") key(")
	b.WriteString(strings.Join(s.KeyNames(), ", "))
	b.WriteByte(')')
	return b.String()
}

// Rename returns a copy of the schema under a new relation name.
// Used by query plans that derive intermediate schemas.
func (s *Schema) Rename(name string) *Schema {
	c := *s
	c.name = name
	return &c
}

// ProjectSchema derives a new schema containing only the named attributes,
// in the given order. The derived schema keeps the original key if all key
// attributes survive the projection; otherwise the full attribute list of
// the projection becomes the key (the standard set-semantics fallback).
func (s *Schema) ProjectSchema(name string, names []string) (*Schema, error) {
	idx, err := s.Indices(names)
	if err != nil {
		return nil, err
	}
	attrs := make([]Attribute, len(idx))
	for i, j := range idx {
		attrs[i] = s.attrs[j]
	}
	keyKept := true
	for _, k := range s.key {
		found := false
		for _, j := range idx {
			if j == k {
				found = true
				break
			}
		}
		if !found {
			keyKept = false
			break
		}
	}
	var keyNames []string
	if keyKept {
		keyNames = s.KeyNames()
	} else {
		keyNames = names
	}
	return NewSchema(name, attrs, keyNames)
}
