package reldb

import (
	"fmt"
	"sort"
)

// ResultSet is a materialized intermediate or final query result: a derived
// schema plus rows. Query plans are composed functionally; each operator
// consumes and produces ResultSets. The engine materializes eagerly —
// relations here are small enough that a volcano iterator would buy nothing,
// and eager materialization keeps the view-object assembly code simple.
type ResultSet struct {
	Schema *Schema
	Rows   []Tuple
}

// Len returns the number of rows.
func (rs *ResultSet) Len() int { return len(rs.Rows) }

// Row returns row i paired with the result schema.
func (rs *ResultSet) Row(i int) Row { return Row{Schema: rs.Schema, Tuple: rs.Rows[i]} }

// Plan is a composable query operator tree. Run executes the plan.
type Plan interface {
	Run() (*ResultSet, error)
}

// ScanPlan reads an entire relation in primary-key order.
type ScanPlan struct{ Rel *Relation }

// Run implements Plan.
func (p ScanPlan) Run() (*ResultSet, error) {
	return &ResultSet{Schema: p.Rel.Schema(), Rows: p.Rel.All()}, nil
}

// SelectPlan filters its input by a predicate.
type SelectPlan struct {
	Input Plan
	Pred  Expr
}

// Run implements Plan.
func (p SelectPlan) Run() (*ResultSet, error) {
	in, err := p.Input.Run()
	if err != nil {
		return nil, err
	}
	if p.Pred == nil {
		return in, nil
	}
	out := &ResultSet{Schema: in.Schema}
	for _, t := range in.Rows {
		ok, err := EvalBool(p.Pred, Row{Schema: in.Schema, Tuple: t})
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, t)
		}
	}
	return out, nil
}

// ProjectPlan keeps only the named attributes, in order. Duplicate rows are
// preserved (bag semantics); wrap in DistinctPlan for set semantics.
type ProjectPlan struct {
	Input Plan
	Names []string
}

// Run implements Plan.
func (p ProjectPlan) Run() (*ResultSet, error) {
	in, err := p.Input.Run()
	if err != nil {
		return nil, err
	}
	schema, err := in.Schema.ProjectSchema(in.Schema.Name(), p.Names)
	if err != nil {
		return nil, err
	}
	idx, err := in.Schema.Indices(p.Names)
	if err != nil {
		return nil, err
	}
	out := &ResultSet{Schema: schema, Rows: make([]Tuple, len(in.Rows))}
	for i, t := range in.Rows {
		out.Rows[i] = t.Project(idx)
	}
	return out, nil
}

// JoinPlan is an equi-join on attribute lists of equal length. The output
// schema qualifies every attribute as Rel.Attr using each input schema's
// name, so downstream predicates can disambiguate.
type JoinPlan struct {
	Left, Right           Plan
	LeftAttrs, RightAttrs []string
	// Outer, when true, makes this a left outer join: unmatched left rows
	// survive with nulls for the right side.
	Outer bool
}

// Run implements Plan. The build side is the right input (hash join).
func (p JoinPlan) Run() (*ResultSet, error) {
	if len(p.LeftAttrs) != len(p.RightAttrs) {
		return nil, fmt.Errorf("reldb: join attribute lists differ in length: %d vs %d",
			len(p.LeftAttrs), len(p.RightAttrs))
	}
	left, err := p.Left.Run()
	if err != nil {
		return nil, err
	}
	right, err := p.Right.Run()
	if err != nil {
		return nil, err
	}
	schema, err := joinedSchema(left.Schema, right.Schema)
	if err != nil {
		return nil, err
	}
	lidx, err := left.Schema.Indices(p.LeftAttrs)
	if err != nil {
		return nil, err
	}
	ridx, err := right.Schema.Indices(p.RightAttrs)
	if err != nil {
		return nil, err
	}
	build := make(map[string][]Tuple, len(right.Rows))
	for _, rt := range right.Rows {
		k := rt.Project(ridx).Encode()
		build[k] = append(build[k], rt)
	}
	out := &ResultSet{Schema: schema}
	nulls := make(Tuple, right.Schema.Arity())
	for _, lt := range left.Rows {
		probe := lt.Project(lidx)
		if hasNull(probe) {
			if p.Outer {
				out.Rows = append(out.Rows, lt.Concat(nulls))
			}
			continue
		}
		matches := build[probe.Encode()]
		if len(matches) == 0 && p.Outer {
			out.Rows = append(out.Rows, lt.Concat(nulls))
			continue
		}
		for _, rt := range matches {
			out.Rows = append(out.Rows, lt.Concat(rt))
		}
	}
	return out, nil
}

func hasNull(t Tuple) bool {
	for _, v := range t {
		if v.IsNull() {
			return true
		}
	}
	return false
}

// joinedSchema concatenates two schemas, qualifying each attribute with
// its source schema name. If a source attribute is already qualified
// (contains a dot), it is kept as is. The joined key is the union of the
// two keys; all joined attributes are nullable (outer joins pad with null).
func joinedSchema(l, r *Schema) (*Schema, error) {
	attrs := make([]Attribute, 0, l.Arity()+r.Arity())
	var keyNames []string
	add := func(s *Schema) {
		for i := 0; i < s.Arity(); i++ {
			a := s.Attr(i)
			name := a.Name
			if !hasDot(name) {
				name = s.Name() + "." + a.Name
			}
			attrs = append(attrs, Attribute{Name: name, Type: a.Type, Nullable: true})
			if s.IsKeyAttr(i) {
				keyNames = append(keyNames, name)
			}
		}
	}
	add(l)
	add(r)
	return NewSchema(l.Name()+"*"+r.Name(), attrs, keyNames)
}

func hasDot(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return true
		}
	}
	return false
}

// QualifyPlan renames every attribute of its input to "Prefix.Name"
// (attributes already containing a dot are kept). It lets join chains
// address attributes uniformly by qualified name.
type QualifyPlan struct {
	Input  Plan
	Prefix string
}

// Run implements Plan.
func (p QualifyPlan) Run() (*ResultSet, error) {
	in, err := p.Input.Run()
	if err != nil {
		return nil, err
	}
	s := in.Schema
	attrs := make([]Attribute, s.Arity())
	var keyNames []string
	for i := 0; i < s.Arity(); i++ {
		a := s.Attr(i)
		if !hasDot(a.Name) {
			a.Name = p.Prefix + "." + a.Name
		}
		attrs[i] = a
		if s.IsKeyAttr(i) {
			keyNames = append(keyNames, a.Name)
		}
	}
	schema, err := NewSchema(p.Prefix, attrs, keyNames)
	if err != nil {
		return nil, err
	}
	return &ResultSet{Schema: schema, Rows: in.Rows}, nil
}

// SortPlan orders rows by the named attributes ascending (Desc flips all).
type SortPlan struct {
	Input Plan
	By    []string
	Desc  bool
}

// Run implements Plan.
func (p SortPlan) Run() (*ResultSet, error) {
	in, err := p.Input.Run()
	if err != nil {
		return nil, err
	}
	idx, err := in.Schema.Indices(p.By)
	if err != nil {
		return nil, err
	}
	rows := make([]Tuple, len(in.Rows))
	copy(rows, in.Rows)
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range idx {
			c, err := Compare(rows[i][k], rows[j][k])
			if err != nil || c == 0 {
				continue
			}
			if p.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return &ResultSet{Schema: in.Schema, Rows: rows}, nil
}

// DistinctPlan removes duplicate rows (full-tuple equality).
type DistinctPlan struct{ Input Plan }

// Run implements Plan.
func (p DistinctPlan) Run() (*ResultSet, error) {
	in, err := p.Input.Run()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]struct{}, len(in.Rows))
	out := &ResultSet{Schema: in.Schema}
	for _, t := range in.Rows {
		k := t.Encode()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.Rows = append(out.Rows, t)
	}
	return out, nil
}

// LimitPlan keeps at most N rows.
type LimitPlan struct {
	Input Plan
	N     int
}

// Run implements Plan.
func (p LimitPlan) Run() (*ResultSet, error) {
	in, err := p.Input.Run()
	if err != nil {
		return nil, err
	}
	if len(in.Rows) > p.N {
		in = &ResultSet{Schema: in.Schema, Rows: in.Rows[:p.N]}
	}
	return in, nil
}

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String implements fmt.Stringer.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	default:
		return fmt.Sprintf("agg(%d)", uint8(f))
	}
}

// AggSpec names one aggregate column: Func over Attr (Attr empty for
// count(*)), output column As.
type AggSpec struct {
	Func AggFunc
	Attr string // empty means count(*)
	As   string
}

// AggregatePlan groups by the named attributes and computes aggregates.
// With no group-by attributes, it produces exactly one row.
type AggregatePlan struct {
	Input   Plan
	GroupBy []string
	Aggs    []AggSpec
}

// Run implements Plan.
func (p AggregatePlan) Run() (*ResultSet, error) {
	in, err := p.Input.Run()
	if err != nil {
		return nil, err
	}
	gidx, err := in.Schema.Indices(p.GroupBy)
	if err != nil {
		return nil, err
	}
	type group struct {
		key    Tuple
		counts []int64
		sums   []float64
		mins   []Value
		maxs   []Value
		allInt []bool
	}
	newGroup := func(key Tuple) *group {
		g := &group{
			key:    key,
			counts: make([]int64, len(p.Aggs)),
			sums:   make([]float64, len(p.Aggs)),
			mins:   make([]Value, len(p.Aggs)),
			maxs:   make([]Value, len(p.Aggs)),
			allInt: make([]bool, len(p.Aggs)),
		}
		for i := range g.allInt {
			g.allInt[i] = true
		}
		return g
	}
	groups := make(map[string]*group)
	var order []string
	for _, t := range in.Rows {
		key := t.Project(gidx)
		ek := key.Encode()
		g, ok := groups[ek]
		if !ok {
			g = newGroup(key)
			groups[ek] = g
			order = append(order, ek)
		}
		for i, spec := range p.Aggs {
			if spec.Attr == "" { // count(*)
				g.counts[i]++
				continue
			}
			ai, ok := in.Schema.AttrIndex(spec.Attr)
			if !ok {
				return nil, fmt.Errorf("reldb: aggregate over unknown attribute %s", spec.Attr)
			}
			v := t[ai]
			if v.IsNull() {
				continue
			}
			g.counts[i]++
			if f, ok := v.AsFloat(); ok {
				g.sums[i] += f
				if v.Kind() != KindInt {
					g.allInt[i] = false
				}
			}
			if g.mins[i].IsNull() {
				g.mins[i] = v
				g.maxs[i] = v
			} else {
				if c, err := Compare(v, g.mins[i]); err == nil && c < 0 {
					g.mins[i] = v
				}
				if c, err := Compare(v, g.maxs[i]); err == nil && c > 0 {
					g.maxs[i] = v
				}
			}
		}
	}
	// With no groups and no group-by, emit the single empty group so that
	// count(*) over an empty input is 0, matching SQL.
	if len(groups) == 0 && len(p.GroupBy) == 0 {
		ek := Tuple{}.Encode()
		groups[ek] = newGroup(Tuple{})
		order = append(order, ek)
	}
	// Output schema: group-by attributes followed by aggregate columns.
	attrs := make([]Attribute, 0, len(gidx)+len(p.Aggs))
	for _, gi := range gidx {
		attrs = append(attrs, in.Schema.Attr(gi))
	}
	for i, spec := range p.Aggs {
		name := spec.As
		if name == "" {
			name = spec.Func.String()
			if spec.Attr != "" {
				name += "_" + spec.Attr
			}
		}
		kind := KindFloat
		if spec.Func == AggCount {
			kind = KindInt
		}
		attrs = append(attrs, Attribute{Name: name, Type: kind, Nullable: true})
		p.Aggs[i].As = name
	}
	keyNames := append([]string(nil), p.GroupBy...)
	if len(keyNames) == 0 {
		keyNames = []string{attrs[0].Name}
	}
	schema, err := NewSchema(in.Schema.Name()+"!agg", attrs, keyNames)
	if err != nil {
		return nil, err
	}
	sort.Strings(order)
	out := &ResultSet{Schema: schema}
	for _, ek := range order {
		g := groups[ek]
		row := make(Tuple, 0, len(attrs))
		row = append(row, g.key...)
		for i, spec := range p.Aggs {
			switch spec.Func {
			case AggCount:
				row = append(row, Int(g.counts[i]))
			case AggSum:
				row = append(row, numValue(g.sums[i], g.allInt[i], g.counts[i]))
			case AggAvg:
				if g.counts[i] == 0 {
					row = append(row, Null())
				} else {
					row = append(row, Float(g.sums[i]/float64(g.counts[i])))
				}
			case AggMin:
				row = append(row, g.mins[i])
			case AggMax:
				row = append(row, g.maxs[i])
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func numValue(sum float64, allInt bool, count int64) Value {
	if count == 0 {
		return Null()
	}
	if allInt {
		return Int(int64(sum))
	}
	return Float(sum)
}
