package reldb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"penguin/internal/obs"
)

// Recovery: OpenDatabase loads the newest snapshot, replays the WAL tail
// on top of it, and resumes the generation counter exactly where the
// crashed process left it, so every generation-keyed consumer — delta
// subscribers, plan caches, materializer build generations — stays
// monotone across the restart.
//
// Invariants recovery enforces:
//
//   - Generation continuity: every record applied on top of the loaded
//     state must carry generation db.gen+1 (records at or below the
//     snapshot's generation are skipped — they are already folded in).
//     A gap means a segment is missing: ErrWALCorrupt.
//   - Torn tail, not torn state: a record at the very end of the last
//     segment that is incomplete or fails its CRC is the unfinished
//     append of the crashed process. It is discarded and the file is
//     truncated back to the last record boundary — the acknowledged
//     prefix is untouched. The same damage anywhere else (mid-file, or
//     in a non-final segment) cannot be a torn append and fails with
//     ErrWALCorrupt rather than silently dropping committed data.
//   - Snapshots are atomic or absent: checkpoints write to a .tmp name,
//     fsync, then rename. A *.tmp stray is a crashed checkpoint and is
//     deleted; a named snapshot that fails its CRC was damaged after
//     the fact and fails with ErrSnapshotCorrupt (no silent fallback to
//     an older snapshot, which would be a state the log may no longer
//     reach).

// OpenOptions tunes a durable database opened with OpenDatabaseWith.
// The zero value is the production default: fsync-per-commit (group
// batched) and a 30-second background checkpointer.
type OpenOptions struct {
	// Sync selects the WAL durability mode (default SyncCommit).
	Sync SyncMode
	// SyncInterval is the fsync period in SyncInterval mode (default
	// 2ms; ignored in the other modes).
	SyncInterval time.Duration
	// CheckpointInterval is the background checkpoint period. Zero means
	// the 30-second default; negative disables the background
	// checkpointer (Checkpoint can still be called manually).
	CheckpointInterval time.Duration
	// CheckpointPhase delays the background checkpointer's first tick,
	// staggering checkpoints across databases that share an interval: N
	// shards opened with phase i*interval/N snapshot in rotation instead
	// of fsyncing simultaneously. Zero means no extra delay.
	CheckpointPhase time.Duration
	// ShardLabel, when non-empty, is the shard label value the database's
	// WAL metrics are additionally recorded under (the reldb.wal.*
	// families split by obs.Default.Shards). Empty for unsharded
	// databases.
	ShardLabel string
}

const (
	defaultSyncInterval       = 2 * time.Millisecond
	defaultCheckpointInterval = 30 * time.Second
)

// OpenDatabase opens (or creates) a durable database in dir with default
// options: every acknowledged commit survives kill -9, and a background
// checkpointer bounds replay time. The caller must Close it.
func OpenDatabase(dir string) (*Database, error) {
	return OpenDatabaseWith(dir, OpenOptions{})
}

// OpenDatabaseWith is OpenDatabase with explicit durability options.
func OpenDatabaseWith(dir string, opts OpenOptions) (*Database, error) {
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = defaultSyncInterval
	}
	ckptEvery := opts.CheckpointInterval
	if ckptEvery == 0 {
		ckptEvery = defaultCheckpointInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	snapGens, segStarts, err := scanDataDir(dir)
	if err != nil {
		return nil, err
	}

	// Load the newest snapshot, if any.
	db := NewDatabase()
	if len(snapGens) > 0 {
		g := snapGens[len(snapGens)-1]
		path := filepath.Join(dir, snapshotName(g))
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		db, err = ReadSnapshot(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}

	// Replay the log on top of it.
	for i, start := range segStarts {
		path := filepath.Join(dir, walSegmentName(start))
		last := i == len(segStarts)-1
		keep, err := replaySegment(db, path, last)
		if err != nil {
			return nil, err
		}
		if keep >= 0 {
			// Torn tail: cut the unfinished append off the file so the
			// attach below appends from a clean record boundary.
			if err := os.Truncate(path, keep); err != nil {
				return nil, err
			}
		}
	}

	// Attach the tail segment for appending (creating one if the log is
	// empty or the tail was torn down to nothing).
	var tail *os.File
	var tailStart uint64
	if len(segStarts) > 0 {
		tailStart = segStarts[len(segStarts)-1]
		path := filepath.Join(dir, walSegmentName(tailStart))
		info, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		if info.Size() < int64(len(walSegmentMagic)) {
			// The crash tore even the segment header off; rebuild it.
			if err := os.Remove(path); err != nil {
				return nil, err
			}
			if tail, err = createSegment(path); err != nil {
				return nil, err
			}
		} else if tail, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
			return nil, err
		}
	} else {
		tailStart = db.gen
		if tail, err = createSegment(filepath.Join(dir, walSegmentName(tailStart))); err != nil {
			return nil, err
		}
	}

	db.dataDir = dir
	db.wal = newWAL(dir, opts.Sync, opts.SyncInterval, tail, tailStart, db.gen)
	if opts.ShardLabel != "" {
		db.obsShard = obs.Default.Shards.Intern(opts.ShardLabel)
		db.wal.slot = db.obsShard
	}
	if ckptEvery > 0 {
		db.ckptStop = make(chan struct{})
		db.ckptDone = make(chan struct{})
		go db.checkpointLoop(ckptEvery, opts.CheckpointPhase)
	}
	return db, nil
}

// scanDataDir inventories the data directory: sorted snapshot
// generations, sorted segment start generations. Crashed checkpoints
// (*.tmp strays) are deleted.
func scanDataDir(dir string) (snapGens, segStarts []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, nil, err
			}
		case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix):
			g, err := parseHexGen(name, snapPrefix, snapSuffix)
			if err != nil {
				return nil, nil, fmt.Errorf("reldb: %s: %w", name, err)
			}
			snapGens = append(snapGens, g)
		case strings.HasPrefix(name, walSegPrefix) && strings.HasSuffix(name, walSegSuffix):
			g, err := parseHexGen(name, walSegPrefix, walSegSuffix)
			if err != nil {
				return nil, nil, fmt.Errorf("reldb: %s: %w", name, err)
			}
			segStarts = append(segStarts, g)
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] < snapGens[j] })
	sort.Slice(segStarts, func(i, j int) bool { return segStarts[i] < segStarts[j] })
	return snapGens, segStarts, nil
}

func parseHexGen(name, prefix, suffix string) (uint64, error) {
	return strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 16, 64)
}

// replaySegment applies one segment's records to db. last marks the
// final segment, the only place a torn tail is legitimate. The return
// value keep is -1 when the whole file was consumed cleanly, or the
// offset the file must be truncated to when a torn tail was discarded.
func replaySegment(db *Database, path string, last bool) (keep int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return -1, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return -1, err
	}
	size := info.Size()

	torn := func(off int64, what string) (int64, error) {
		if last {
			return off, nil
		}
		return -1, fmt.Errorf("reldb: %s: %w: %s at offset %d in non-final segment", path, ErrWALCorrupt, what, off)
	}

	hdr := make([]byte, len(walSegmentMagic))
	if _, err := io.ReadFull(f, hdr); err != nil {
		return torn(0, "short segment header")
	}
	if string(hdr) != walSegmentMagic {
		return -1, fmt.Errorf("reldb: %s: %w: bad segment magic %q", path, ErrWALCorrupt, hdr)
	}
	off := int64(len(walSegmentMagic))
	br := bufio.NewReader(f)
	var frame [8]byte
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			if err == io.EOF {
				return -1, nil // clean end at a record boundary
			}
			return torn(off, "torn record frame")
		}
		length := int64(binary.BigEndian.Uint32(frame[0:4]))
		crc := binary.BigEndian.Uint32(frame[4:8])
		if off+8+length > size {
			return torn(off, "record extends past end of segment")
		}
		if length > maxWALRecord {
			return -1, fmt.Errorf("reldb: %s: %w: record length %d at offset %d", path, ErrWALCorrupt, length, off)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return torn(off, "torn record payload")
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			if off+8+length == size {
				// The damaged record is the file's final bytes: the
				// append the crash interrupted.
				return torn(off, "checksum mismatch in final record")
			}
			return -1, fmt.Errorf("reldb: %s: %w: checksum mismatch at offset %d", path, ErrWALCorrupt, off)
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			return -1, fmt.Errorf("reldb: %s: %w: record at offset %d: %v", path, ErrWALCorrupt, off, err)
		}
		switch rec.typ {
		case recCrossPrepare:
			// No generation yet: stash the pending batch until a decide
			// resolves it. A leftover at the end of replay is in-doubt.
			if db.pendingX == nil {
				db.pendingX = make(map[string]*pendingCross)
			}
			db.pendingX[rec.xid] = &pendingCross{batch: rec.batch, parts: rec.parts}
			obs.Default.WALReplayed.Inc()
		case recCrossDecide:
			if err := replayCrossDecide(db, rec); err != nil {
				return -1, fmt.Errorf("reldb: %s: %w: cross-decide %s: %v", path, ErrWALCorrupt, rec.xid, err)
			}
			obs.Default.WALReplayed.Inc()
		default:
			if rec.gen > db.gen {
				if rec.gen != db.gen+1 {
					return -1, fmt.Errorf("reldb: %s: %w: generation gap — record %d on state %d (missing segment?)",
						path, ErrWALCorrupt, rec.gen, db.gen)
				}
				if err := applyWALRecord(db, rec); err != nil {
					return -1, fmt.Errorf("reldb: %s: %w: applying record gen %d: %v", path, ErrWALCorrupt, rec.gen, err)
				}
				obs.Default.WALReplayed.Inc()
			}
		}
		off += 8 + length
	}
}

// replayCrossDecide resolves a stashed cross-shard prepare during
// replay. Abort decides drop the pending batch; commit decides apply it
// at the generation the decide carries (subject to the same continuity
// check as ordinary commits — the snapshot may already cover it). Either
// way the decision is remembered so the sharded open can resolve a
// sibling shard's in-doubt prepare against it.
func replayCrossDecide(db *Database, rec *walRecord) error {
	if db.decidedX == nil {
		db.decidedX = make(map[string]bool)
	}
	db.decidedX[rec.xid] = rec.commit
	p := db.pendingX[rec.xid]
	delete(db.pendingX, rec.xid)
	if !rec.commit {
		return nil
	}
	if rec.gen <= db.gen {
		// Already folded into the snapshot the replay started from.
		return nil
	}
	if rec.gen != db.gen+1 {
		return fmt.Errorf("generation gap — decide %d on state %d", rec.gen, db.gen)
	}
	if p == nil {
		return fmt.Errorf("commit decision without a prepare")
	}
	for _, d := range p.batch.Deltas {
		rel, ok := db.relations[d.Relation]
		if !ok {
			return fmt.Errorf("delta for unknown relation %s", d.Relation)
		}
		if err := applyDelta(rel, d); err != nil {
			return err
		}
		rel.gen = rec.gen
	}
	db.gen = rec.gen
	return nil
}

// applyWALRecord folds one record into the recovering database. Recovery
// is single-threaded and nothing else holds references into db, so it
// uses the setup-phase exception: direct relation mutation, no
// transactions, no locks.
func applyWALRecord(db *Database, rec *walRecord) error {
	switch rec.typ {
	case recCreate:
		name := rec.schema.Name()
		if _, dup := db.relations[name]; dup {
			return fmt.Errorf("create %s: relation already exists", name)
		}
		r := NewRelation(rec.schema)
		r.gen = rec.gen
		db.relations[name] = r
	case recDrop:
		if _, ok := db.relations[rec.rel]; !ok {
			return fmt.Errorf("drop %s: no such relation", rec.rel)
		}
		delete(db.relations, rec.rel)
	case recCommit:
		for _, d := range rec.batch.Deltas {
			rel, ok := db.relations[d.Relation]
			if !ok {
				return fmt.Errorf("delta for unknown relation %s", d.Relation)
			}
			if err := applyDelta(rel, d); err != nil {
				return err
			}
			rel.gen = rec.gen
		}
	}
	db.gen = rec.gen
	return nil
}

// syncDir fsyncs a directory, making renames and removals in it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
