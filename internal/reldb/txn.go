package reldb

import (
	"fmt"
	"time"

	"penguin/internal/obs"
)

// Tx is a write transaction over a Database, implemented with copy-on-
// write: the first access to a relation clones it into the transaction's
// private working set, all reads and writes inside the transaction go to
// the clone (read-your-writes), and Commit publishes the modified clones
// back into the catalog by pointer swap. Committed relation versions are
// never mutated, so concurrent readers holding a snapshot are undisturbed
// for as long as they like.
//
// Write transactions are serialized by the database's writer lock from
// Begin until Commit or Rollback — the single-writer discipline of the
// paper's §5 update pipeline. Rollback simply discards the working set;
// the committed state was never touched, so no undo log is needed. If any
// step of a view-object translation is rejected, the whole update rolls
// back, as §5.1 requires ("the transaction cannot be completed and has to
// be rolled back").
type Tx struct {
	db      *Database
	dirty   map[string]*Relation // private clones, by relation name
	written map[string]bool      // clones with at least one successful op
	// changes is the per-key changelog feeding the delta stream: relation
	// name → encoded primary key → before/after stored images. Allocated
	// lazily on the first successful write so a read-only transaction
	// stays on the allocation-free commit path.
	changes map[string]map[string]*txChange
	ops     int
	start   time.Time
	done    bool
	// op is the causal trace context of the operation driving this
	// transaction (zero when untraced). Commit and Rollback report
	// themselves as child spans of it, so a view-object update's span
	// tree reaches into the engine.
	op obs.Op
}

// Begin starts a write transaction, acquiring the database writer lock.
func (db *Database) Begin() *Tx {
	db.writer.Lock()
	// Mark the writer in flight before any op can run: a Subscribe that
	// does not observe the mark is ordered before this point, so every op
	// of this transaction sees its subscription and captures for it.
	db.mu.Lock()
	db.writing = true
	db.mu.Unlock()
	return &Tx{
		db:      db,
		dirty:   make(map[string]*Relation),
		written: make(map[string]bool),
		start:   time.Now(),
	}
}

// Relation returns the transaction's private copy of the named relation.
// Reads through it observe the transaction's own uncommitted writes. It
// fails with ErrTxDone after Commit or Rollback, so a finished transaction
// cannot leak mutable state.
func (tx *Tx) Relation(name string) (*Relation, error) {
	if tx.done {
		obs.Default.TxDoneHits.Inc()
		return nil, ErrTxDone
	}
	if r, ok := tx.dirty[name]; ok {
		return r, nil
	}
	tx.db.mu.RLock()
	r, ok := tx.db.relations[name]
	tx.db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("reldb: relation %s: %w", name, ErrNoSuchRelation)
	}
	c := r.clone()
	tx.dirty[name] = c
	return c, nil
}

// Insert adds a tuple to the named relation.
func (tx *Tx) Insert(relName string, t Tuple) error {
	if tx.done {
		obs.Default.TxDoneHits.Inc()
		return ErrTxDone
	}
	r, err := tx.Relation(relName)
	if err != nil {
		return err
	}
	if err := r.Insert(t); err != nil {
		return err
	}
	// A successful insert proves the key was absent, so the before image
	// is nil; the after image is the clone Insert just stored.
	if tx.capturing() {
		ek := r.schema.EncodeKeyOf(t)
		tx.note(relName, ek, nil, r.rows[ek])
	}
	tx.written[relName] = true
	tx.ops++
	return nil
}

// Delete removes the tuple with the given key from the named relation and
// returns the deleted tuple.
func (tx *Tx) Delete(relName string, key Tuple) (Tuple, error) {
	if tx.done {
		obs.Default.TxDoneHits.Inc()
		return nil, ErrTxDone
	}
	r, err := tx.Relation(relName)
	if err != nil {
		return nil, err
	}
	old, err := r.Delete(key)
	if err != nil {
		return nil, err
	}
	// Delete hands its return value to the caller, so the changelog keeps
	// its own copy of the before image (note clones it).
	if tx.capturing() {
		tx.note(relName, r.schema.EncodeKeyOf(old), old, nil)
	}
	tx.written[relName] = true
	tx.ops++
	return old, nil
}

// Replace substitutes the tuple at oldKey with newTuple (possibly changing
// the key) and returns the replaced tuple.
func (tx *Tx) Replace(relName string, oldKey Tuple, newTuple Tuple) (Tuple, error) {
	if tx.done {
		obs.Default.TxDoneHits.Inc()
		return nil, ErrTxDone
	}
	r, err := tx.Relation(relName)
	if err != nil {
		return nil, err
	}
	old, ok := r.Get(oldKey)
	if !ok {
		return nil, fmt.Errorf("reldb: %s: replace %s: %w", relName, oldKey, ErrNoSuchTuple)
	}
	// Capture the raw stored before image ahead of the mutation: Replace
	// removes the old key's stored tuple from the row map, after which the
	// changelog's copy (note clones it) is the only surviving image.
	capture := tx.capturing()
	var oldEK string
	var rawOld Tuple
	if capture {
		oldEK = r.schema.EncodeKeyOf(old)
		rawOld = r.rows[oldEK]
	}
	if err := r.Replace(oldKey, newTuple); err != nil {
		return nil, err
	}
	if capture {
		newEK := r.schema.EncodeKeyOf(newTuple)
		if newEK == oldEK {
			tx.note(relName, oldEK, rawOld, r.rows[newEK])
		} else {
			// A key-changing replace is a delete of the old key plus an
			// insert of the new one (Replace rejects clashes, so the new
			// key was absent before).
			tx.note(relName, oldEK, rawOld, nil)
			tx.note(relName, newEK, nil, r.rows[newEK])
		}
	}
	tx.written[relName] = true
	tx.ops++
	return old, nil
}

// OpCount returns the number of successful operations so far.
func (tx *Tx) OpCount() int { return tx.ops }

// SetTraceOp attaches the causal trace context whose child spans Commit
// and Rollback will become. Attaching the zero Op (the untraced case)
// is free; Begin cannot take the op itself because the driving
// operation typically starts its root span before acquiring the writer
// lock.
func (tx *Tx) SetTraceOp(op obs.Op) { tx.op = op }

// Commit publishes the transaction's modified relations into the catalog
// and releases the writer lock. Relations the transaction only read are
// not republished.
func (tx *Tx) Commit() error {
	if tx.done {
		obs.Default.TxDoneHits.Inc()
		return ErrTxDone
	}
	tx.done = true
	published := len(tx.written)
	// The commit span covers Begin→Commit, so it opens retroactively at
	// tx.start; delta publication nests inside it as its own child.
	traced := tx.op.Active()
	var commitOp obs.Op
	if traced {
		commitOp = tx.op.ChildAt("reldb.commit", tx.start)
	}
	// Build the delta batch outside the catalog lock (proportional to the
	// transaction's own write set); skipped entirely on the read-only
	// path, which must stay allocation-free.
	var batch DeltaBatch
	if published > 0 {
		batch = tx.buildBatch()
	}
	// Write-ahead: on a durable database the batch is appended to the
	// log before the commit becomes visible. The generation it will get
	// is stable under the writer lock. An append failure aborts the
	// commit cleanly — nothing was published, the committed state is
	// untouched.
	var walSeq uint64
	durable := published > 0 && tx.db.wal != nil
	if durable {
		tx.db.mu.RLock()
		walGen := tx.db.gen + 1
		tx.db.mu.RUnlock()
		batch.Gen = walGen
		for i := range batch.Deltas {
			batch.Deltas[i].Gen = walGen
		}
		payload, err := encodeCommitRecord(batch)
		if err == nil {
			walSeq, err = tx.db.wal.append(walGen, payload)
		}
		if err != nil {
			tx.db.mu.Lock()
			tx.db.writing = false
			tx.db.mu.Unlock()
			tx.dirty, tx.written, tx.changes = nil, nil, nil
			tx.db.writer.Unlock()
			obs.Default.Rollbacks.Inc()
			return fmt.Errorf("reldb: commit aborted: %w", err)
		}
	}
	var pubStart time.Time
	var pubDur time.Duration
	tx.db.mu.Lock()
	if published > 0 {
		tx.db.gen++
		for name := range tx.written {
			r := tx.dirty[name]
			r.gen = tx.db.gen
			tx.db.relations[name] = r
		}
		// Publish inside the same critical section that made the new
		// generation visible: subscribers see whole commits in generation
		// order, and a ReadTx pinning gen G is guaranteed every batch
		// with Gen <= G has already been pushed.
		batch.Gen = tx.db.gen
		for i := range batch.Deltas {
			batch.Deltas[i].Gen = batch.Gen
		}
		if traced {
			pubStart = time.Now()
		}
		tx.db.publishLocked(batch)
		if traced {
			pubDur = time.Since(pubStart)
		}
	}
	tx.db.writing = false
	gen := tx.db.gen
	tx.db.mu.Unlock()
	deltas := len(batch.Deltas)
	tx.dirty, tx.written, tx.changes = nil, nil, nil
	tx.db.writer.Unlock()
	obs.Default.Commits.Inc()
	if published == 0 {
		obs.Default.EmptyCommits.Inc()
	}
	obs.Default.CommitNs.Observe(time.Since(tx.start).Nanoseconds())
	if traced {
		// Spans are emitted outside the catalog lock; the publish window
		// itself was measured inside it.
		if published > 0 {
			commitOp.Span("reldb.delta.publish",
				fmt.Sprintf("gen=%d deltas=%d", gen, deltas), pubStart, pubDur)
		}
		commitOp.Finish(fmt.Sprintf("gen=%d relations=%d ops=%d", gen, published, tx.ops))
	} else if obs.Default.Tracing() {
		obs.Default.EmitSpan("reldb.commit",
			fmt.Sprintf("gen=%d relations=%d ops=%d", gen, published, tx.ops), tx.start)
	}
	// Group commit: wait for the background syncer to make the log
	// durable through this commit's generation (SyncCommit mode). The
	// writer lock is already released, so the next transaction appends
	// while this one's fsync is in flight — one fsync acknowledges the
	// whole batch of commits appended before it started. On a sync
	// failure the commit is visible in memory but not provably durable;
	// the error says so.
	if durable {
		if err := tx.db.wal.waitDurable(walSeq); err != nil {
			return fmt.Errorf("reldb: commit gen %d published but not durable: %w", gen, err)
		}
	}
	return nil
}

// Rollback discards the transaction's working set and releases the writer
// lock; the committed state was never touched. Rolling back a finished
// transaction is a no-op returning ErrTxDone.
func (tx *Tx) Rollback() error {
	if tx.done {
		obs.Default.TxDoneHits.Inc()
		return ErrTxDone
	}
	tx.done = true
	tx.dirty, tx.written, tx.changes = nil, nil, nil
	tx.db.mu.Lock()
	tx.db.writing = false
	tx.db.mu.Unlock()
	tx.db.writer.Unlock()
	obs.Default.Rollbacks.Inc()
	if tx.op.Active() {
		tx.op.Span("reldb.rollback", "", tx.start, time.Since(tx.start))
	} else if obs.Default.Tracing() {
		obs.Default.EmitSpan("reldb.rollback", "", tx.start)
	}
	return nil
}

// RunInTx executes fn inside a transaction, committing if fn returns nil
// and rolling back otherwise. It returns fn's error. A panic inside fn
// rolls the transaction back (releasing the writer lock) and re-panics.
func (db *Database) RunInTx(fn func(*Tx) error) error {
	tx := db.Begin()
	defer func() {
		if !tx.done {
			_ = tx.Rollback()
		}
	}()
	if err := fn(tx); err != nil {
		_ = tx.Rollback()
		return err
	}
	return tx.Commit()
}
