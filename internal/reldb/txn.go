package reldb

import (
	"fmt"
)

// Tx is a write transaction over a Database. It holds the database's write
// lock from Begin until Commit or Rollback and records an undo log so that
// Rollback restores the exact pre-transaction state. The update-translation
// algorithms execute each view-object update inside one transaction: if any
// step of a translation is rejected, the whole view-object update rolls
// back, as §5.1 of the paper requires ("the transaction cannot be completed
// and has to be rolled back").
type Tx struct {
	db   *Database
	undo []undoEntry
	done bool
}

type undoOp uint8

const (
	undoInsert  undoOp = iota // compensates an insert: delete newKey
	undoDelete                // compensates a delete: re-insert before
	undoReplace               // compensates a replace: replace back
)

type undoEntry struct {
	op     undoOp
	rel    *Relation
	before Tuple // deleted or replaced tuple (pre-image)
	after  Tuple // inserted or replacing tuple (post-image)
}

// Begin starts a transaction, acquiring the database write lock.
func (db *Database) Begin() *Tx {
	db.mu.Lock()
	return &Tx{db: db}
}

// Relation returns the named relation for use inside the transaction.
func (tx *Tx) Relation(name string) (*Relation, error) {
	r, ok := tx.db.relations[name]
	if !ok {
		return nil, fmt.Errorf("reldb: relation %s: %w", name, ErrNoSuchRelation)
	}
	return r, nil
}

// Insert adds a tuple to the named relation, logging the undo action.
func (tx *Tx) Insert(relName string, t Tuple) error {
	if tx.done {
		return ErrTxDone
	}
	r, err := tx.Relation(relName)
	if err != nil {
		return err
	}
	if err := r.Insert(t); err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoEntry{op: undoInsert, rel: r, after: t.Clone()})
	return nil
}

// Delete removes the tuple with the given key from the named relation,
// logging the undo action, and returns the deleted tuple.
func (tx *Tx) Delete(relName string, key Tuple) (Tuple, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	r, err := tx.Relation(relName)
	if err != nil {
		return nil, err
	}
	old, err := r.Delete(key)
	if err != nil {
		return nil, err
	}
	tx.undo = append(tx.undo, undoEntry{op: undoDelete, rel: r, before: old})
	return old, nil
}

// Replace substitutes the tuple at oldKey with newTuple (possibly changing
// the key), logging the undo action, and returns the replaced tuple.
func (tx *Tx) Replace(relName string, oldKey Tuple, newTuple Tuple) (Tuple, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	r, err := tx.Relation(relName)
	if err != nil {
		return nil, err
	}
	old, ok := r.Get(oldKey)
	if !ok {
		return nil, fmt.Errorf("reldb: %s: replace %s: %w", relName, oldKey, ErrNoSuchTuple)
	}
	if err := r.Replace(oldKey, newTuple); err != nil {
		return nil, err
	}
	tx.undo = append(tx.undo, undoEntry{
		op: undoReplace, rel: r, before: old, after: newTuple.Clone(),
	})
	return old, nil
}

// OpCount returns the number of logged operations so far.
func (tx *Tx) OpCount() int { return len(tx.undo) }

// Commit makes the transaction's effects permanent and releases the lock.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	tx.undo = nil
	tx.db.mu.Unlock()
	return nil
}

// Rollback undoes every logged operation in reverse order and releases the
// lock. Rolling back a finished transaction is a no-op returning ErrTxDone.
func (tx *Tx) Rollback() error {
	if tx.done {
		return ErrTxDone
	}
	for i := len(tx.undo) - 1; i >= 0; i-- {
		e := tx.undo[i]
		switch e.op {
		case undoInsert:
			if _, err := e.rel.Delete(e.rel.schema.KeyOf(e.after)); err != nil {
				panic(fmt.Sprintf("reldb: rollback failed undoing insert: %v", err))
			}
		case undoDelete:
			if err := e.rel.Insert(e.before); err != nil {
				panic(fmt.Sprintf("reldb: rollback failed undoing delete: %v", err))
			}
		case undoReplace:
			if err := e.rel.Replace(e.rel.schema.KeyOf(e.after), e.before); err != nil {
				panic(fmt.Sprintf("reldb: rollback failed undoing replace: %v", err))
			}
		}
	}
	tx.done = true
	tx.undo = nil
	tx.db.mu.Unlock()
	return nil
}

// RunInTx executes fn inside a transaction, committing if fn returns nil
// and rolling back otherwise. It returns fn's error.
func (db *Database) RunInTx(fn func(*Tx) error) error {
	tx := db.Begin()
	if err := fn(tx); err != nil {
		_ = tx.Rollback()
		return err
	}
	return tx.Commit()
}
