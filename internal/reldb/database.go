package reldb

import (
	"fmt"
	"sort"
	"sync"
)

// Database is a catalog of named relations. All access is serialized by a
// readers-writer lock; transactions hold the write lock for their entire
// lifetime, which matches the single-writer discipline the update
// translation algorithms assume.
type Database struct {
	mu        sync.RWMutex
	relations map[string]*Relation
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{relations: make(map[string]*Relation)}
}

// CreateRelation defines a new relation from the schema.
func (db *Database) CreateRelation(schema *Schema) (*Relation, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.relations[schema.Name()]; dup {
		return nil, fmt.Errorf("reldb: create %s: %w", schema.Name(), ErrRelationExists)
	}
	r := NewRelation(schema)
	db.relations[schema.Name()] = r
	return r, nil
}

// MustCreateRelation is CreateRelation that panics on error (fixtures).
func (db *Database) MustCreateRelation(schema *Schema) *Relation {
	r, err := db.CreateRelation(schema)
	if err != nil {
		panic(err)
	}
	return r
}

// DropRelation removes a relation and its data.
func (db *Database) DropRelation(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.relations[name]; !ok {
		return fmt.Errorf("reldb: drop %s: %w", name, ErrNoSuchRelation)
	}
	delete(db.relations, name)
	return nil
}

// Relation returns the named relation.
func (db *Database) Relation(name string) (*Relation, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.relations[name]
	if !ok {
		return nil, fmt.Errorf("reldb: relation %s: %w", name, ErrNoSuchRelation)
	}
	return r, nil
}

// MustRelation returns the named relation, panicking if absent (fixtures).
func (db *Database) MustRelation(name string) *Relation {
	r, err := db.Relation(name)
	if err != nil {
		panic(err)
	}
	return r
}

// HasRelation reports whether the named relation exists.
func (db *Database) HasRelation(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.relations[name]
	return ok
}

// Names returns the defined relation names, sorted.
func (db *Database) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.relations))
	for n := range db.relations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Clone deep-copies the database: schemas are shared (immutable), rows and
// indexes are copied. Used for what-if planning and failure-injection tests.
func (db *Database) Clone() *Database {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c := NewDatabase()
	for n, r := range db.relations {
		c.relations[n] = r.clone()
	}
	return c
}

// TotalRows returns the number of tuples across all relations.
func (db *Database) TotalRows() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	total := 0
	for _, r := range db.relations {
		total += r.Count()
	}
	return total
}
