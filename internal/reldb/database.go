package reldb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Database is a catalog of named relations with copy-on-write concurrency:
//
//   - Committed *Relation values are immutable. A write transaction (Tx)
//     mutates private clones of the relations it touches and publishes
//     them by pointer swap at commit, under the catalog lock.
//   - mu guards only the relations map and the generation counter; every
//     critical section is short (pointer copies), so neither readers nor
//     writers are ever blocked for the duration of a transaction.
//   - writer serializes write transactions (the single-writer discipline
//     the update-translation algorithms assume). Readers never take it.
//   - gen increments on every commit; a ReadTx records the generation it
//     pinned, and each published Relation records the generation that
//     produced it.
//
// Read paths acquire a ReadTx (BeginRead) for a consistent snapshot across
// relations. Resolving a single relation with Relation() and reading it is
// also race-free — the returned value is an immutable committed version —
// but two such resolutions may observe different commits.
//
// Setup-phase exception: fixtures may mutate relations in place (direct
// Insert / CreateIndex on a resolved *Relation) before any concurrent
// access starts. Once readers or writers run concurrently, all writes must
// go through transactions.
type Database struct {
	mu        sync.RWMutex
	writer    sync.Mutex
	relations map[string]*Relation
	gen       uint64
	// subs are the registered delta-stream consumers (see delta.go).
	// Guarded by mu: registration and publish share the critical section
	// that advances gen, which pins both to generation boundaries.
	subs []*Subscription
	// nsubs mirrors len(subs) atomically so the write-op hot path can
	// skip changelog capture without taking mu when nobody subscribes.
	nsubs atomic.Int32
	// writing, guarded by mu, is true while a write transaction is open.
	// Subscribe uses it to pin late registrations past the in-flight
	// commit, whose changelog may predate the subscription (delta.go).
	writing bool

	// wal, set once by OpenDatabase before the database is shared, makes
	// every generation advance durable before it becomes visible. nil
	// for in-memory databases; read without locks (immutable after open).
	wal     *wal
	dataDir string
	// pendingX holds two-shard commit prepares whose decision has not
	// been seen: populated by WAL replay, consumed by the sharded open's
	// in-doubt resolution (ResolveInDoubt) or by a live PreparedTx.
	// decidedX remembers commit decisions replayed from the log so a
	// sibling shard's in-doubt prepare can be resolved against them.
	// Both guarded by mu.
	pendingX map[string]*pendingCross
	decidedX map[string]bool
	// obsShard is the shard label slot this database's WAL metrics are
	// additionally recorded under (-1: unsharded, unlabeled totals only).
	// Set once at open via OpenOptions.ShardLabel.
	obsShard int
	// ckptMu serializes checkpoints (manual and background); ckptStop /
	// ckptDone manage the background checkpointer goroutine.
	ckptMu    sync.Mutex
	ckptStop  chan struct{}
	ckptDone  chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{relations: make(map[string]*Relation), obsShard: -1}
}

// CreateRelation defines a new relation from the schema. DDL takes the
// writer lock: it cannot run while a write transaction is open. On a
// durable database the definition is logged (write-ahead) before it is
// published, like any other generation advance.
func (db *Database) CreateRelation(schema *Schema) (*Relation, error) {
	db.writer.Lock()
	defer db.writer.Unlock()
	var walSeq uint64
	if db.wal != nil {
		db.mu.RLock()
		_, dup := db.relations[schema.Name()]
		walGen := db.gen + 1
		db.mu.RUnlock()
		if dup {
			return nil, fmt.Errorf("reldb: create %s: %w", schema.Name(), ErrRelationExists)
		}
		payload, err := encodeCreateRecord(walGen, schema)
		if err != nil {
			return nil, err
		}
		if walSeq, err = db.wal.append(walGen, payload); err != nil {
			return nil, err
		}
	}
	db.mu.Lock()
	if _, dup := db.relations[schema.Name()]; dup {
		db.mu.Unlock()
		return nil, fmt.Errorf("reldb: create %s: %w", schema.Name(), ErrRelationExists)
	}
	db.gen++
	r := NewRelation(schema)
	r.gen = db.gen
	db.relations[schema.Name()] = r
	db.structuralBatchLocked(schema.Name())
	db.mu.Unlock()
	if db.wal != nil {
		if err := db.wal.waitDurable(walSeq); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// MustCreateRelation is CreateRelation that panics on error (fixtures).
func (db *Database) MustCreateRelation(schema *Schema) *Relation {
	r, err := db.CreateRelation(schema)
	if err != nil {
		panic(err)
	}
	return r
}

// DropRelation removes a relation and its data. Like all DDL it takes the
// writer lock, and on a durable database it is logged before it is
// published.
func (db *Database) DropRelation(name string) error {
	db.writer.Lock()
	defer db.writer.Unlock()
	var walSeq uint64
	if db.wal != nil {
		db.mu.RLock()
		_, ok := db.relations[name]
		walGen := db.gen + 1
		db.mu.RUnlock()
		if !ok {
			return fmt.Errorf("reldb: drop %s: %w", name, ErrNoSuchRelation)
		}
		payload, err := encodeDropRecord(walGen, name)
		if err != nil {
			return err
		}
		if walSeq, err = db.wal.append(walGen, payload); err != nil {
			return err
		}
	}
	db.mu.Lock()
	if _, ok := db.relations[name]; !ok {
		db.mu.Unlock()
		return fmt.Errorf("reldb: drop %s: %w", name, ErrNoSuchRelation)
	}
	delete(db.relations, name)
	db.gen++
	db.structuralBatchLocked(name)
	db.mu.Unlock()
	if db.wal != nil {
		return db.wal.waitDurable(walSeq)
	}
	return nil
}

// Relation returns the current committed version of the named relation.
// The returned value is immutable under the copy-on-write discipline; for
// reads that must be consistent across relations, use BeginRead.
func (db *Database) Relation(name string) (*Relation, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.relations[name]
	if !ok {
		return nil, fmt.Errorf("reldb: relation %s: %w", name, ErrNoSuchRelation)
	}
	return r, nil
}

// MustRelation returns the named relation, panicking if absent (fixtures).
func (db *Database) MustRelation(name string) *Relation {
	r, err := db.Relation(name)
	if err != nil {
		panic(err)
	}
	return r
}

// HasRelation reports whether the named relation exists.
func (db *Database) HasRelation(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.relations[name]
	return ok
}

// Names returns the defined relation names, sorted.
func (db *Database) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.relations))
	for n := range db.relations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Generation returns the commit generation: it increments every time a
// write transaction commits (or a relation is dropped).
func (db *Database) Generation() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.gen
}

// Clone copies the database into an independent catalog: schemas and
// stored tuples are shared (both immutable), row maps and indexes are
// copied. Used for what-if planning and failure-injection tests.
func (db *Database) Clone() *Database {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c := NewDatabase()
	for n, r := range db.relations {
		c.relations[n] = r.clone()
	}
	return c
}

// TotalRows returns the number of tuples across all relations.
func (db *Database) TotalRows() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	total := 0
	for _, r := range db.relations {
		total += r.Count()
	}
	return total
}
