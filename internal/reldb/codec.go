package reldb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Snapshot persistence: a compact binary format holding every schema and
// every tuple. The format is versioned and self-describing enough to detect
// truncation and corruption. Secondary indexes are re-declared in the
// snapshot (names and attribute lists) and rebuilt on load.
//
// Version 2 layout (version 1 files — no head generation, no CRC — are
// still readable):
//
//	magic "PNGW" | u16 version | u64 headGen | u32 nRelations
//	per relation:
//	  string name | u32 nAttrs | per attr: string name, u8 kind, u8 nullable
//	  u32 nKey | per key: u32 attrIndex
//	  u32 nIndexes | per index: string name, u32 nAttrs, per attr: u32 idx
//	  u32 nRows | per row: per attr: value
//	u32 crc32c over every preceding byte (magic included)
//	value: u8 kind | payload (varint int, 8-byte float, string, u8 bool)
//
// headGen is the database's commit generation at serialization time.
// Restoring it on load is what keeps every generation-keyed subsystem
// (plan caches, delta subscriptions, materializer build generations)
// monotone across a restart: version 1 snapshots silently reset the
// counter, so a post-restore commit would publish generation 1 and every
// consumer's clock would run backwards.
const (
	snapshotMagic     = "PNGW"
	snapshotVersion1  = 1
	snapshotVersion2  = 2
	snapshotVersion   = snapshotVersion2
	maxSnapshotString = 1 << 24
	maxSnapshotCount  = 1 << 24
)

// castagnoli is the CRC-32C table shared by the snapshot trailer and the
// WAL record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// byteWriter is the sink the encoders write into: bufio.Writer,
// bytes.Buffer, and the CRC-tracking crcWriter all satisfy it.
type byteWriter interface {
	io.Writer
	io.ByteWriter
	io.StringWriter
}

// byteReader is the source the decoders read from: bufio.Reader,
// bytes.Reader, and the CRC-tracking crcReader all satisfy it.
type byteReader interface {
	io.Reader
	io.ByteReader
}

// crcWriter forwards to an underlying byteWriter while accumulating a
// CRC-32C of every byte written, so the snapshot trailer can guard the
// whole stream without buffering it.
type crcWriter struct {
	w   byteWriter
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, castagnoli, p)
	return cw.w.Write(p)
}

func (cw *crcWriter) WriteByte(b byte) error {
	cw.crc = crc32.Update(cw.crc, castagnoli, []byte{b})
	return cw.w.WriteByte(b)
}

func (cw *crcWriter) WriteString(s string) (int, error) {
	cw.crc = crc32.Update(cw.crc, castagnoli, []byte(s))
	return cw.w.WriteString(s)
}

// crcReader forwards to an underlying byteReader while accumulating a
// CRC-32C of every byte read. The snapshot trailer itself is read from
// the underlying reader directly, so it never hashes itself.
type crcReader struct {
	r   byteReader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, castagnoli, p[:n])
	return n, err
}

func (cr *crcReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err == nil {
		cr.crc = crc32.Update(cr.crc, castagnoli, []byte{b})
	}
	return b, err
}

// WriteSnapshot serializes the whole database to w in snapshot format v2.
//
// Serialization runs from a copy-on-write ReadTx snapshot, not under
// db.mu: the catalog lock is held only for the pointer copies of
// BeginRead, so commits proceed concurrently however large the database
// is. (An earlier revision held db.mu.RLock for the entire serialization,
// stalling every commit for the duration of a checkpoint.)
func (db *Database) WriteSnapshot(w io.Writer) error {
	rtx := db.BeginRead()
	defer rtx.Close()
	return rtx.WriteSnapshot(w)
}

// WriteSnapshot serializes the read transaction's pinned state — every
// relation version and the pinned commit generation — in snapshot format
// v2. The pinned versions are immutable, so no lock is held while the
// bytes are produced.
func (rtx *ReadTx) WriteSnapshot(w io.Writer) error {
	if rtx.done {
		return ErrTxDone
	}
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if _, err := cw.WriteString(snapshotMagic); err != nil {
		return err
	}
	writeU16(cw, snapshotVersion)
	writeU64(cw, rtx.gen)
	names := rtx.Names()
	writeU32(cw, uint32(len(names)))
	for _, n := range names {
		if err := writeRelation(cw, rtx.rels[n]); err != nil {
			return err
		}
	}
	writeU32(bw, cw.crc) // trailer: unhashed, guards everything above
	return bw.Flush()
}

// ReadSnapshot deserializes a database previously written by
// WriteSnapshot. Version 2 snapshots restore the head commit generation
// and are CRC-verified end to end: a torn or bit-flipped file fails with
// an error wrapping ErrSnapshotCorrupt instead of loading as garbage or
// a confusing mid-row error. Version 1 snapshots (no generation, no CRC)
// load with their legacy semantics.
func ReadSnapshot(r io.Reader) (*Database, error) {
	br := bufio.NewReader(r)
	cr := &crcReader{r: br}
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("reldb: reading snapshot magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("reldb: bad snapshot magic %q", magic)
	}
	version, err := readU16(cr)
	if err != nil {
		return nil, err
	}
	switch version {
	case snapshotVersion1:
		db := NewDatabase()
		if err := readSnapshotBody(cr, db); err != nil {
			return nil, err
		}
		return db, nil
	case snapshotVersion2:
		headGen, err := readU64(cr)
		if err != nil {
			return nil, corruptSnapshot(err)
		}
		db := NewDatabase()
		if err := readSnapshotBody(cr, db); err != nil {
			return nil, corruptSnapshot(err)
		}
		want := cr.crc
		got, err := readU32(br) // trailer was never hashed
		if err != nil {
			return nil, corruptSnapshot(fmt.Errorf("reading CRC trailer: %w", err))
		}
		if got != want {
			return nil, corruptSnapshot(fmt.Errorf("CRC mismatch: stored %08x, computed %08x", got, want))
		}
		// Restore the head generation. Loading created each relation
		// through CreateRelation, which advanced the counter from zero;
		// the stored head is always at least that (every relation's
		// creation advanced the original counter too), so restoring it
		// keeps generation-keyed consumers monotone across the restart.
		if headGen > db.gen {
			db.gen = headGen
		}
		return db, nil
	default:
		return nil, fmt.Errorf("reldb: unsupported snapshot version %d", version)
	}
}

// corruptSnapshot tags a version-2 decode failure as corruption: with a
// CRC-guarded format, any structural failure means the file does not
// carry what was written.
func corruptSnapshot(err error) error {
	return fmt.Errorf("reldb: snapshot: %w: %w", ErrSnapshotCorrupt, err)
}

// readSnapshotBody decodes the relation-count-prefixed relation list
// into db.
func readSnapshotBody(r byteReader, db *Database) error {
	n, err := readU32(r)
	if err != nil {
		return err
	}
	if n > maxSnapshotCount {
		return fmt.Errorf("reldb: snapshot relation count %d too large", n)
	}
	for i := uint32(0); i < n; i++ {
		if err := readRelation(r, db); err != nil {
			return err
		}
	}
	return nil
}

func writeRelation(w byteWriter, rel *Relation) error {
	s := rel.Schema()
	if err := writeSchema(w, s); err != nil {
		return err
	}
	ixNames := rel.IndexNames()
	writeU32(w, uint32(len(ixNames)))
	for _, name := range ixNames {
		ix := rel.indexes[name]
		writeString(w, name)
		writeU32(w, uint32(len(ix.attrs)))
		for _, a := range ix.attrs {
			writeU32(w, uint32(a))
		}
	}
	writeU32(w, uint32(rel.Count()))
	var scanErr error
	rel.Scan(func(t Tuple) bool {
		for _, v := range t {
			if err := writeValue(w, v); err != nil {
				scanErr = err
				return false
			}
		}
		return true
	})
	return scanErr
}

// writeSchema serializes a schema's name, attributes, and primary key —
// shared by the snapshot relation records and the WAL's create-relation
// records.
func writeSchema(w byteWriter, s *Schema) error {
	writeString(w, s.Name())
	writeU32(w, uint32(s.Arity()))
	for i := 0; i < s.Arity(); i++ {
		a := s.Attr(i)
		writeString(w, a.Name)
		if err := w.WriteByte(byte(a.Type)); err != nil {
			return err
		}
		if a.Nullable {
			w.WriteByte(1)
		} else {
			w.WriteByte(0)
		}
	}
	key := s.Key()
	writeU32(w, uint32(len(key)))
	for _, k := range key {
		writeU32(w, uint32(k))
	}
	return nil
}

// readSchema decodes what writeSchema produced.
func readSchema(r byteReader) (*Schema, error) {
	name, err := readString(r)
	if err != nil {
		return nil, err
	}
	nAttrs, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if nAttrs > maxSnapshotCount {
		return nil, fmt.Errorf("reldb: snapshot %s: attribute count %d too large", name, nAttrs)
	}
	attrs := make([]Attribute, nAttrs)
	for i := range attrs {
		an, err := readString(r)
		if err != nil {
			return nil, err
		}
		kb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		nb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		attrs[i] = Attribute{Name: an, Type: Kind(kb), Nullable: nb == 1}
	}
	nKey, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if nKey > nAttrs {
		return nil, fmt.Errorf("reldb: snapshot %s: key width %d exceeds arity %d", name, nKey, nAttrs)
	}
	keyNames := make([]string, nKey)
	for i := range keyNames {
		ki, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if int(ki) >= len(attrs) {
			return nil, fmt.Errorf("reldb: snapshot %s: key index %d out of range", name, ki)
		}
		keyNames[i] = attrs[ki].Name
	}
	schema, err := NewSchema(name, attrs, keyNames)
	if err != nil {
		return nil, fmt.Errorf("reldb: snapshot: %w", err)
	}
	return schema, nil
}

func readRelation(r byteReader, db *Database) error {
	schema, err := readSchema(r)
	if err != nil {
		return err
	}
	name := schema.Name()
	rel, err := db.CreateRelation(schema)
	if err != nil {
		return err
	}
	nIx, err := readU32(r)
	if err != nil {
		return err
	}
	if nIx > maxSnapshotCount {
		return fmt.Errorf("reldb: snapshot %s: index count %d too large", name, nIx)
	}
	attrs := schema.Attrs()
	for i := uint32(0); i < nIx; i++ {
		ixName, err := readString(r)
		if err != nil {
			return err
		}
		nIA, err := readU32(r)
		if err != nil {
			return err
		}
		if nIA > uint32(len(attrs)) {
			return fmt.Errorf("reldb: snapshot %s: index width %d exceeds arity %d", name, nIA, len(attrs))
		}
		ixAttrNames := make([]string, nIA)
		for j := range ixAttrNames {
			ai, err := readU32(r)
			if err != nil {
				return err
			}
			if int(ai) >= len(attrs) {
				return fmt.Errorf("reldb: snapshot %s: index attr %d out of range", name, ai)
			}
			ixAttrNames[j] = attrs[ai].Name
		}
		if err := rel.CreateIndex(ixName, ixAttrNames); err != nil {
			return err
		}
	}
	nRows, err := readU32(r)
	if err != nil {
		return err
	}
	if nRows > maxSnapshotCount {
		return fmt.Errorf("reldb: snapshot %s: row count %d too large", name, nRows)
	}
	nAttrs := schema.Arity()
	for i := uint32(0); i < nRows; i++ {
		t := make(Tuple, nAttrs)
		for j := range t {
			v, err := readValue(r)
			if err != nil {
				return fmt.Errorf("reldb: snapshot %s row %d: %w", name, i, err)
			}
			t[j] = v
		}
		if err := rel.Insert(t); err != nil {
			return fmt.Errorf("reldb: snapshot %s row %d: %w", name, i, err)
		}
	}
	return nil
}

// AppendBinaryValue appends the snapshot codec's encoding of v to dst.
// This is the engine's canonical byte-level value encoding: it preserves
// the kind tag (Int(3) and Float(3) encode differently, unlike the
// order-preserving AppendKey), every int64, every float bit pattern
// including NaN payloads, and arbitrary (non-UTF-8) string bytes.
// External codecs (the serving tier's JSON value codec) test their
// round-trips against it: two Values are interchangeable exactly when
// their AppendBinaryValue encodings are equal.
func AppendBinaryValue(dst []byte, v Value) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(len(v.s) + 10)
	if err := writeValue(&buf, v); err != nil {
		return dst, err
	}
	return append(dst, buf.Bytes()...), nil
}

func writeValue(w byteWriter, v Value) error {
	w.WriteByte(byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindInt:
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], v.i)
		w.Write(buf[:n])
	case KindFloat:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v.f))
		w.Write(buf[:])
	case KindString:
		writeString(w, v.s)
	case KindBool:
		if v.b {
			w.WriteByte(1)
		} else {
			w.WriteByte(0)
		}
	default:
		return fmt.Errorf("reldb: cannot serialize kind %s", v.kind)
	}
	return nil
}

func readValue(r byteReader) (Value, error) {
	kb, err := r.ReadByte()
	if err != nil {
		return Null(), err
	}
	switch Kind(kb) {
	case KindNull:
		return Null(), nil
	case KindInt:
		n, err := binary.ReadVarint(r)
		if err != nil {
			return Null(), err
		}
		return Int(n), nil
	case KindFloat:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Null(), err
		}
		return Float(math.Float64frombits(binary.BigEndian.Uint64(buf[:]))), nil
	case KindString:
		s, err := readString(r)
		if err != nil {
			return Null(), err
		}
		return String(s), nil
	case KindBool:
		b, err := r.ReadByte()
		if err != nil {
			return Null(), err
		}
		return Bool(b == 1), nil
	default:
		return Null(), fmt.Errorf("reldb: snapshot has unknown value kind %d", kb)
	}
}

// writeTuple serializes a tuple with an arity prefix (WAL records carry
// tuples for relations whose schema is only known at replay time, so the
// count makes each record self-delimiting).
func writeTuple(w byteWriter, t Tuple) error {
	writeU32(w, uint32(len(t)))
	for _, v := range t {
		if err := writeValue(w, v); err != nil {
			return err
		}
	}
	return nil
}

// readTuple decodes what writeTuple produced.
func readTuple(r byteReader) (Tuple, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if n > maxSnapshotCount {
		return nil, fmt.Errorf("reldb: tuple arity %d too large", n)
	}
	t := make(Tuple, n)
	for i := range t {
		v, err := readValue(r)
		if err != nil {
			return nil, err
		}
		t[i] = v
	}
	return t, nil
}

func writeString(w byteWriter, s string) {
	writeU32(w, uint32(len(s)))
	w.WriteString(s)
}

func readString(r byteReader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > maxSnapshotString {
		return "", fmt.Errorf("reldb: snapshot string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeU16(w byteWriter, v uint16) {
	var buf [2]byte
	binary.BigEndian.PutUint16(buf[:], v)
	w.Write(buf[:])
}

func readU16(r byteReader) (uint16, error) {
	var buf [2]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(buf[:]), nil
}

func writeU32(w byteWriter, v uint32) {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], v)
	w.Write(buf[:])
}

func readU32(r byteReader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(buf[:]), nil
}

func writeU64(w byteWriter, v uint64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	w.Write(buf[:])
}

func readU64(r byteReader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(buf[:]), nil
}
