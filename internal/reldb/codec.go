package reldb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Snapshot persistence: a compact binary format holding every schema and
// every tuple. The format is versioned and self-describing enough to detect
// truncation and corruption. Secondary indexes are re-declared in the
// snapshot (names and attribute lists) and rebuilt on load.
//
// Layout:
//
//	magic "PNGW" | u16 version | u32 nRelations
//	per relation:
//	  string name | u32 nAttrs | per attr: string name, u8 kind, u8 nullable
//	  u32 nKey | per key: u32 attrIndex
//	  u32 nIndexes | per index: string name, u32 nAttrs, per attr: u32 idx
//	  u32 nRows | per row: per attr: value
//	value: u8 kind | payload (varint int, 8-byte float, string, u8 bool)

const (
	snapshotMagic   = "PNGW"
	snapshotVersion = 1
)

// WriteSnapshot serializes the whole database to w.
func (db *Database) WriteSnapshot(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	writeU16(bw, snapshotVersion)
	names := make([]string, 0, len(db.relations))
	for n := range db.relations {
		names = append(names, n)
	}
	sort.Strings(names)
	writeU32(bw, uint32(len(names)))
	for _, n := range names {
		if err := writeRelation(bw, db.relations[n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot deserializes a database previously written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Database, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("reldb: reading snapshot magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("reldb: bad snapshot magic %q", magic)
	}
	version, err := readU16(br)
	if err != nil {
		return nil, err
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("reldb: unsupported snapshot version %d", version)
	}
	n, err := readU32(br)
	if err != nil {
		return nil, err
	}
	db := NewDatabase()
	for i := uint32(0); i < n; i++ {
		if err := readRelation(br, db); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func writeRelation(w *bufio.Writer, rel *Relation) error {
	s := rel.Schema()
	writeString(w, s.Name())
	writeU32(w, uint32(s.Arity()))
	for i := 0; i < s.Arity(); i++ {
		a := s.Attr(i)
		writeString(w, a.Name)
		w.WriteByte(byte(a.Type))
		if a.Nullable {
			w.WriteByte(1)
		} else {
			w.WriteByte(0)
		}
	}
	key := s.Key()
	writeU32(w, uint32(len(key)))
	for _, k := range key {
		writeU32(w, uint32(k))
	}
	ixNames := rel.IndexNames()
	writeU32(w, uint32(len(ixNames)))
	for _, name := range ixNames {
		ix := rel.indexes[name]
		writeString(w, name)
		writeU32(w, uint32(len(ix.attrs)))
		for _, a := range ix.attrs {
			writeU32(w, uint32(a))
		}
	}
	writeU32(w, uint32(rel.Count()))
	var scanErr error
	rel.Scan(func(t Tuple) bool {
		for _, v := range t {
			if err := writeValue(w, v); err != nil {
				scanErr = err
				return false
			}
		}
		return true
	})
	return scanErr
}

func readRelation(r *bufio.Reader, db *Database) error {
	name, err := readString(r)
	if err != nil {
		return err
	}
	nAttrs, err := readU32(r)
	if err != nil {
		return err
	}
	attrs := make([]Attribute, nAttrs)
	for i := range attrs {
		an, err := readString(r)
		if err != nil {
			return err
		}
		kb, err := r.ReadByte()
		if err != nil {
			return err
		}
		nb, err := r.ReadByte()
		if err != nil {
			return err
		}
		attrs[i] = Attribute{Name: an, Type: Kind(kb), Nullable: nb == 1}
	}
	nKey, err := readU32(r)
	if err != nil {
		return err
	}
	keyNames := make([]string, nKey)
	for i := range keyNames {
		ki, err := readU32(r)
		if err != nil {
			return err
		}
		if int(ki) >= len(attrs) {
			return fmt.Errorf("reldb: snapshot %s: key index %d out of range", name, ki)
		}
		keyNames[i] = attrs[ki].Name
	}
	schema, err := NewSchema(name, attrs, keyNames)
	if err != nil {
		return fmt.Errorf("reldb: snapshot: %w", err)
	}
	rel, err := db.CreateRelation(schema)
	if err != nil {
		return err
	}
	nIx, err := readU32(r)
	if err != nil {
		return err
	}
	for i := uint32(0); i < nIx; i++ {
		ixName, err := readString(r)
		if err != nil {
			return err
		}
		nIA, err := readU32(r)
		if err != nil {
			return err
		}
		ixAttrNames := make([]string, nIA)
		for j := range ixAttrNames {
			ai, err := readU32(r)
			if err != nil {
				return err
			}
			if int(ai) >= len(attrs) {
				return fmt.Errorf("reldb: snapshot %s: index attr %d out of range", name, ai)
			}
			ixAttrNames[j] = attrs[ai].Name
		}
		if err := rel.CreateIndex(ixName, ixAttrNames); err != nil {
			return err
		}
	}
	nRows, err := readU32(r)
	if err != nil {
		return err
	}
	for i := uint32(0); i < nRows; i++ {
		t := make(Tuple, nAttrs)
		for j := range t {
			v, err := readValue(r)
			if err != nil {
				return fmt.Errorf("reldb: snapshot %s row %d: %w", name, i, err)
			}
			t[j] = v
		}
		if err := rel.Insert(t); err != nil {
			return fmt.Errorf("reldb: snapshot %s row %d: %w", name, i, err)
		}
	}
	return nil
}

func writeValue(w *bufio.Writer, v Value) error {
	w.WriteByte(byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindInt:
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], v.i)
		w.Write(buf[:n])
	case KindFloat:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v.f))
		w.Write(buf[:])
	case KindString:
		writeString(w, v.s)
	case KindBool:
		if v.b {
			w.WriteByte(1)
		} else {
			w.WriteByte(0)
		}
	default:
		return fmt.Errorf("reldb: cannot serialize kind %s", v.kind)
	}
	return nil
}

func readValue(r *bufio.Reader) (Value, error) {
	kb, err := r.ReadByte()
	if err != nil {
		return Null(), err
	}
	switch Kind(kb) {
	case KindNull:
		return Null(), nil
	case KindInt:
		n, err := binary.ReadVarint(r)
		if err != nil {
			return Null(), err
		}
		return Int(n), nil
	case KindFloat:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Null(), err
		}
		return Float(math.Float64frombits(binary.BigEndian.Uint64(buf[:]))), nil
	case KindString:
		s, err := readString(r)
		if err != nil {
			return Null(), err
		}
		return String(s), nil
	case KindBool:
		b, err := r.ReadByte()
		if err != nil {
			return Null(), err
		}
		return Bool(b == 1), nil
	default:
		return Null(), fmt.Errorf("reldb: snapshot has unknown value kind %d", kb)
	}
}

func writeString(w *bufio.Writer, s string) {
	writeU32(w, uint32(len(s)))
	w.WriteString(s)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("reldb: snapshot string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeU16(w *bufio.Writer, v uint16) {
	var buf [2]byte
	binary.BigEndian.PutUint16(buf[:], v)
	w.Write(buf[:])
}

func readU16(r *bufio.Reader) (uint16, error) {
	var buf [2]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(buf[:]), nil
}

func writeU32(w *bufio.Writer, v uint32) {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], v)
	w.Write(buf[:])
}

func readU32(r *bufio.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(buf[:]), nil
}
