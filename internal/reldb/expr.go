package reldb

import (
	"fmt"
	"strings"
)

// Expr is a scalar expression evaluated against a Row. Expressions use
// SQL-style three-valued logic: comparisons involving null evaluate to
// null, which predicates treat as false.
type Expr interface {
	// Eval computes the expression's value for the row.
	Eval(Row) (Value, error)
	// String renders the expression in RQL syntax.
	String() string
}

// Const is a literal value.
type Const struct{ V Value }

// Eval implements Expr.
func (c Const) Eval(Row) (Value, error) { return c.V, nil }

// String implements Expr.
func (c Const) String() string { return c.V.Literal() }

// Attr references an attribute by name, optionally qualified by relation
// name (Rel.Attr). Unqualified references resolve against the row schema;
// qualified references additionally require the schema name to match or
// the row to carry a joined schema exposing the qualified name.
type Attr struct {
	Rel  string // optional qualifier
	Name string
}

// Eval implements Expr.
func (a Attr) Eval(r Row) (Value, error) {
	if a.Rel != "" {
		if v, ok := r.Get(a.Rel + "." + a.Name); ok {
			return v, nil
		}
		if r.Schema.Name() != a.Rel {
			return Null(), fmt.Errorf("reldb: attribute %s.%s not found in %s",
				a.Rel, a.Name, r.Schema.Name())
		}
	}
	v, ok := r.Get(a.Name)
	if !ok {
		return Null(), fmt.Errorf("reldb: attribute %s not found in %s", a.Name, r.Schema.Name())
	}
	return v, nil
}

// String implements Expr.
func (a Attr) String() string {
	if a.Rel != "" {
		return a.Rel + "." + a.Name
	}
	return a.Name
}

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String implements fmt.Stringer.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("cmp(%d)", uint8(op))
	}
}

// Cmp is a binary comparison. A comparison with a null operand evaluates
// to null.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval implements Expr.
func (c Cmp) Eval(r Row) (Value, error) {
	lv, err := c.L.Eval(r)
	if err != nil {
		return Null(), err
	}
	rv, err := c.R.Eval(r)
	if err != nil {
		return Null(), err
	}
	if lv.IsNull() || rv.IsNull() {
		return Null(), nil
	}
	cmp, err := Compare(lv, rv)
	if err != nil {
		return Null(), fmt.Errorf("reldb: %s: %w", c, err)
	}
	switch c.Op {
	case OpEq:
		return Bool(cmp == 0), nil
	case OpNe:
		return Bool(cmp != 0), nil
	case OpLt:
		return Bool(cmp < 0), nil
	case OpLe:
		return Bool(cmp <= 0), nil
	case OpGt:
		return Bool(cmp > 0), nil
	case OpGe:
		return Bool(cmp >= 0), nil
	default:
		return Null(), fmt.Errorf("reldb: unknown comparison %v", c.Op)
	}
}

// String implements Expr.
func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// And is n-ary conjunction with three-valued logic.
type And struct{ Terms []Expr }

// Eval implements Expr.
func (a And) Eval(r Row) (Value, error) {
	sawNull := false
	for _, t := range a.Terms {
		v, err := t.Eval(r)
		if err != nil {
			return Null(), err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		b, ok := v.AsBool()
		if !ok {
			return Null(), fmt.Errorf("reldb: AND operand %s is not boolean", t)
		}
		if !b {
			return Bool(false), nil
		}
	}
	if sawNull {
		return Null(), nil
	}
	return Bool(true), nil
}

// String implements Expr.
func (a And) String() string { return joinExprs(a.Terms, " and ") }

// Or is n-ary disjunction with three-valued logic.
type Or struct{ Terms []Expr }

// Eval implements Expr.
func (o Or) Eval(r Row) (Value, error) {
	sawNull := false
	for _, t := range o.Terms {
		v, err := t.Eval(r)
		if err != nil {
			return Null(), err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		b, ok := v.AsBool()
		if !ok {
			return Null(), fmt.Errorf("reldb: OR operand %s is not boolean", t)
		}
		if b {
			return Bool(true), nil
		}
	}
	if sawNull {
		return Null(), nil
	}
	return Bool(false), nil
}

// String implements Expr.
func (o Or) String() string { return "(" + joinExprs(o.Terms, " or ") + ")" }

// Not negates a boolean expression; not(null) is null.
type Not struct{ E Expr }

// Eval implements Expr.
func (n Not) Eval(r Row) (Value, error) {
	v, err := n.E.Eval(r)
	if err != nil {
		return Null(), err
	}
	if v.IsNull() {
		return Null(), nil
	}
	b, ok := v.AsBool()
	if !ok {
		return Null(), fmt.Errorf("reldb: NOT operand %s is not boolean", n.E)
	}
	return Bool(!b), nil
}

// String implements Expr.
func (n Not) String() string { return "not (" + n.E.String() + ")" }

// IsNull tests an expression for null; never itself evaluates to null.
type IsNull struct {
	E      Expr
	Negate bool // IS NOT NULL
}

// Eval implements Expr.
func (i IsNull) Eval(r Row) (Value, error) {
	v, err := i.E.Eval(r)
	if err != nil {
		return Null(), err
	}
	res := v.IsNull()
	if i.Negate {
		res = !res
	}
	return Bool(res), nil
}

// String implements Expr.
func (i IsNull) String() string {
	if i.Negate {
		return i.E.String() + " is not null"
	}
	return i.E.String() + " is null"
}

// In tests membership of an expression in a literal list.
type In struct {
	E    Expr
	List []Expr
}

// Eval implements Expr.
func (in In) Eval(r Row) (Value, error) {
	v, err := in.E.Eval(r)
	if err != nil {
		return Null(), err
	}
	if v.IsNull() {
		return Null(), nil
	}
	sawNull := false
	for _, le := range in.List {
		lv, err := le.Eval(r)
		if err != nil {
			return Null(), err
		}
		if lv.IsNull() {
			sawNull = true
			continue
		}
		if c, err := Compare(v, lv); err == nil && c == 0 {
			return Bool(true), nil
		}
	}
	if sawNull {
		return Null(), nil
	}
	return Bool(false), nil
}

// String implements Expr.
func (in In) String() string {
	return in.E.String() + " in (" + joinExprs(in.List, ", ") + ")"
}

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

// String implements fmt.Stringer.
func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	default:
		return fmt.Sprintf("arith(%d)", uint8(op))
	}
}

// Arith is binary arithmetic over int and float values. Mixed int/float
// promotes to float; integer division by zero is an error; any null
// operand yields null.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval implements Expr.
func (a Arith) Eval(r Row) (Value, error) {
	lv, err := a.L.Eval(r)
	if err != nil {
		return Null(), err
	}
	rv, err := a.R.Eval(r)
	if err != nil {
		return Null(), err
	}
	if lv.IsNull() || rv.IsNull() {
		return Null(), nil
	}
	if lv.Kind() == KindInt && rv.Kind() == KindInt {
		li, _ := lv.AsInt()
		ri, _ := rv.AsInt()
		switch a.Op {
		case OpAdd:
			return Int(li + ri), nil
		case OpSub:
			return Int(li - ri), nil
		case OpMul:
			return Int(li * ri), nil
		case OpDiv:
			if ri == 0 {
				return Null(), fmt.Errorf("reldb: division by zero in %s", a)
			}
			return Int(li / ri), nil
		}
	}
	lf, lok := lv.AsFloat()
	rf, rok := rv.AsFloat()
	if !lok || !rok {
		return Null(), fmt.Errorf("reldb: arithmetic on non-numeric operands in %s", a)
	}
	switch a.Op {
	case OpAdd:
		return Float(lf + rf), nil
	case OpSub:
		return Float(lf - rf), nil
	case OpMul:
		return Float(lf * rf), nil
	case OpDiv:
		if rf == 0 {
			return Null(), fmt.Errorf("reldb: division by zero in %s", a)
		}
		return Float(lf / rf), nil
	}
	return Null(), fmt.Errorf("reldb: unknown arithmetic op %v", a.Op)
}

// String implements Expr.
func (a Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// Like is a simple pattern match: % matches any run, _ matches one rune.
type Like struct {
	E       Expr
	Pattern string
}

// Eval implements Expr.
func (l Like) Eval(r Row) (Value, error) {
	v, err := l.E.Eval(r)
	if err != nil {
		return Null(), err
	}
	if v.IsNull() {
		return Null(), nil
	}
	s, ok := v.AsString()
	if !ok {
		return Null(), fmt.Errorf("reldb: LIKE on non-string operand %s", l.E)
	}
	return Bool(likeMatch(l.Pattern, s)), nil
}

// String implements Expr.
func (l Like) String() string {
	return l.E.String() + " like " + String(l.Pattern).Literal()
}

func likeMatch(pattern, s string) bool {
	p := []rune(pattern)
	t := []rune(s)
	var match func(pi, ti int) bool
	match = func(pi, ti int) bool {
		for pi < len(p) {
			switch p[pi] {
			case '%':
				for skip := ti; skip <= len(t); skip++ {
					if match(pi+1, skip) {
						return true
					}
				}
				return false
			case '_':
				if ti >= len(t) {
					return false
				}
				pi++
				ti++
			default:
				if ti >= len(t) || t[ti] != p[pi] {
					return false
				}
				pi++
				ti++
			}
		}
		return ti == len(t)
	}
	return match(0, 0)
}

// EvalBool evaluates e as a predicate: null counts as false.
func EvalBool(e Expr, r Row) (bool, error) {
	v, err := e.Eval(r)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	b, ok := v.AsBool()
	if !ok {
		return false, fmt.Errorf("reldb: predicate %s evaluated to non-boolean %s", e, v)
	}
	return b, nil
}

// Eq is shorthand for an attribute = constant comparison.
func Eq(attr string, v Value) Expr {
	return Cmp{Op: OpEq, L: Attr{Name: attr}, R: Const{V: v}}
}

// AndAll conjoins expressions, simplifying the 0- and 1-term cases.
func AndAll(terms ...Expr) Expr {
	switch len(terms) {
	case 0:
		return Const{V: Bool(true)}
	case 1:
		return terms[0]
	default:
		return And{Terms: terms}
	}
}

func joinExprs(es []Expr, sep string) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, sep)
}
