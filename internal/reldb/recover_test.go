package reldb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func durableDB(t *testing.T, dir string) *Database {
	t.Helper()
	db, err := OpenDatabase(dir)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func kvSchema(name string) *Schema {
	return MustSchema(name, []Attribute{
		{Name: "K", Type: KindInt},
		{Name: "V", Type: KindString, Nullable: true},
	}, []string{"K"})
}

func mustCommit(t *testing.T, db *Database, fn func(*Tx) error) {
	t.Helper()
	if err := db.RunInTx(fn); err != nil {
		t.Fatal(err)
	}
}

// rowsOf returns the relation's tuples as "k=v" strings in key order.
func rowsOf(t *testing.T, db *Database, rel string) []string {
	t.Helper()
	r, err := db.Relation(rel)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, tp := range r.All() {
		out = append(out, tp.String())
	}
	return out
}

func TestOpenDatabaseRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	if _, err := db.CreateRelation(kvSchema("R")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		i := i
		mustCommit(t, db, func(tx *Tx) error {
			return tx.Insert("R", Tuple{Int(int64(i)), String(fmt.Sprintf("v%d", i))})
		})
	}
	mustCommit(t, db, func(tx *Tx) error {
		_, err := tx.Replace("R", Tuple{Int(2)}, Tuple{Int(2), String("v2'")})
		return err
	})
	mustCommit(t, db, func(tx *Tx) error {
		_, err := tx.Delete("R", Tuple{Int(4)})
		return err
	})
	gen := db.Generation()
	want := rowsOf(t, db, "R")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re := durableDB(t, dir)
	defer re.Close()
	if g := re.Generation(); g != gen {
		t.Fatalf("recovered generation = %d, want %d", g, gen)
	}
	got := rowsOf(t, re, "R")
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered rows %v, want %v", got, want)
	}
	// The delta stream continues gap-free: the next commit publishes
	// gen+1 to a fresh subscriber.
	sub := re.Subscribe(8)
	mustCommit(t, re, func(tx *Tx) error {
		return tx.Insert("R", Tuple{Int(100), String("post")})
	})
	batches, lost := sub.Poll()
	if lost || len(batches) != 1 || batches[0].Gen != gen+1 {
		t.Fatalf("post-recovery commit: batches=%v lost=%v, want single gen %d", batches, lost, gen+1)
	}
}

// TestRecoveryEmptyNetCommit: a commit whose net effect cancels out
// still advances the generation, so it must be logged — otherwise the
// generation sequence has a hole and recovery refuses the log.
func TestRecoveryEmptyNetCommit(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	if _, err := db.CreateRelation(kvSchema("R")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, db, func(tx *Tx) error {
		if err := tx.Insert("R", Tuple{Int(1), String("ephemeral")}); err != nil {
			return err
		}
		_, err := tx.Delete("R", Tuple{Int(1)})
		return err
	})
	mustCommit(t, db, func(tx *Tx) error {
		return tx.Insert("R", Tuple{Int(2), String("kept")})
	})
	gen := db.Generation()
	db.Close()

	re := durableDB(t, dir)
	defer re.Close()
	if g := re.Generation(); g != gen {
		t.Fatalf("recovered generation = %d, want %d", g, gen)
	}
	if n := re.MustRelation("R").Count(); n != 1 {
		t.Fatalf("recovered %d rows, want 1", n)
	}
}

func TestRecoveryDDL(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	db.MustCreateRelation(kvSchema("KEEP"))
	db.MustCreateRelation(kvSchema("DOOMED"))
	mustCommit(t, db, func(tx *Tx) error {
		return tx.Insert("KEEP", Tuple{Int(1), String("x")})
	})
	if err := db.DropRelation("DOOMED"); err != nil {
		t.Fatal(err)
	}
	gen := db.Generation()
	db.Close()

	re := durableDB(t, dir)
	defer re.Close()
	if re.HasRelation("DOOMED") {
		t.Fatal("dropped relation came back")
	}
	if !re.HasRelation("KEEP") || re.MustRelation("KEEP").Count() != 1 {
		t.Fatal("created relation or its rows lost")
	}
	if g := re.Generation(); g != gen {
		t.Fatalf("recovered generation = %d, want %d", g, gen)
	}
}

// TestRecoveryTornTail: bytes of an unfinished append at the end of the
// last segment are discarded and the file is truncated back to the
// acknowledged prefix.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	db.MustCreateRelation(kvSchema("R"))
	mustCommit(t, db, func(tx *Tx) error {
		return tx.Insert("R", Tuple{Int(1), String("durable")})
	})
	gen := db.Generation()
	db.Close()

	segs, err := filepath.Glob(filepath.Join(dir, walSegPrefix+"*"+walSegSuffix))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v, %v", segs, err)
	}
	// Simulate a crash mid-append: garbage that parses as a frame header
	// whose record extends past EOF.
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x40, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := durableDB(t, dir)
	defer re.Close()
	if g := re.Generation(); g != gen {
		t.Fatalf("recovered generation = %d, want %d", g, gen)
	}
	if n := re.MustRelation("R").Count(); n != 1 {
		t.Fatalf("recovered %d rows, want 1", n)
	}
	// And the torn bytes are gone: appending continues cleanly.
	mustCommit(t, re, func(tx *Tx) error {
		return tx.Insert("R", Tuple{Int(2), String("after")})
	})
	re.Close()
	re2 := durableDB(t, dir)
	defer re2.Close()
	if n := re2.MustRelation("R").Count(); n != 2 {
		t.Fatalf("after truncate-and-append: %d rows, want 2", n)
	}
}

// TestRecoveryMidLogCorruption: a damaged record that is not the tail
// cannot be a torn append — recovery must refuse with ErrWALCorrupt,
// never silently drop committed data after it.
func TestRecoveryMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	db.MustCreateRelation(kvSchema("R"))
	for i := 0; i < 4; i++ {
		i := i
		mustCommit(t, db, func(tx *Tx) error {
			return tx.Insert("R", Tuple{Int(int64(i)), String("v")})
		})
	}
	db.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, walSegPrefix+"*"+walSegSuffix))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the file, away from the final record.
	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0x20
	if err := os.WriteFile(segs[0], mut, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenDatabase(dir)
	if err == nil {
		t.Fatal("mid-log corruption accepted")
	}
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("error does not wrap ErrWALCorrupt: %v", err)
	}
}

func TestCheckpointAndPrune(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	db.MustCreateRelation(kvSchema("R"))
	for i := 0; i < 10; i++ {
		i := i
		mustCommit(t, db, func(tx *Tx) error {
			return tx.Insert("R", Tuple{Int(int64(i)), String("v")})
		})
	}
	ckGen, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ckGen != db.Generation() {
		t.Fatalf("checkpoint gen %d, head %d", ckGen, db.Generation())
	}
	// Post-checkpoint traffic lands in the new tail segment.
	mustCommit(t, db, func(tx *Tx) error {
		return tx.Insert("R", Tuple{Int(100), String("tail")})
	})
	gen := db.Generation()
	db.Close()

	snaps, _ := filepath.Glob(filepath.Join(dir, snapPrefix+"*"+snapSuffix))
	if len(snaps) != 1 {
		t.Fatalf("snapshots after checkpoint: %v", snaps)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, walSegPrefix+"*"+walSegSuffix))
	if len(segs) != 1 {
		t.Fatalf("segments after prune: %v", segs)
	}

	re := durableDB(t, dir)
	defer re.Close()
	if g := re.Generation(); g != gen {
		t.Fatalf("recovered generation = %d, want %d", g, gen)
	}
	if n := re.MustRelation("R").Count(); n != 11 {
		t.Fatalf("recovered %d rows, want 11", n)
	}
}

// TestCheckpointTmpStrayIgnored: a crash before the snapshot rename
// leaves only a .tmp file, which open deletes and ignores.
func TestCheckpointTmpStrayIgnored(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	db.MustCreateRelation(kvSchema("R"))
	mustCommit(t, db, func(tx *Tx) error {
		return tx.Insert("R", Tuple{Int(1), String("v")})
	})
	gen := db.Generation()
	db.Close()

	stray := filepath.Join(dir, snapshotName(gen)+tmpSuffix)
	if err := os.WriteFile(stray, []byte("half a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	re := durableDB(t, dir)
	defer re.Close()
	if g := re.Generation(); g != gen {
		t.Fatalf("recovered generation = %d, want %d", g, gen)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray .tmp not cleaned up: %v", err)
	}
}

// TestRecoveryCorruptSnapshot: a named snapshot that fails its CRC is
// genuine damage (the rename protocol means it was complete once);
// recovery reports it rather than silently falling back.
func TestRecoveryCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	db.MustCreateRelation(kvSchema("R"))
	mustCommit(t, db, func(tx *Tx) error {
		return tx.Insert("R", Tuple{Int(1), String("v")})
	})
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	snaps, _ := filepath.Glob(filepath.Join(dir, snapPrefix+"*"+snapSuffix))
	if len(snaps) != 1 {
		t.Fatalf("snapshots: %v", snaps)
	}
	data, _ := os.ReadFile(snaps[0])
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(snaps[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenDatabase(dir)
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("corrupt snapshot: error = %v, want ErrSnapshotCorrupt", err)
	}
}

// TestRecoveryMissingSegment: deleting a segment recovery still needs
// leaves a generation gap, which must be refused, not bridged.
func TestRecoveryMissingSegment(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	db.MustCreateRelation(kvSchema("R"))
	for i := 0; i < 3; i++ {
		i := i
		mustCommit(t, db, func(tx *Tx) error {
			return tx.Insert("R", Tuple{Int(int64(i)), String("v")})
		})
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, db, func(tx *Tx) error {
		return tx.Insert("R", Tuple{Int(50), String("tail")})
	})
	db.Close()

	// Delete the snapshot: the remaining tail segment starts above
	// generation 0, so the log no longer reaches the empty state.
	snaps, _ := filepath.Glob(filepath.Join(dir, snapPrefix+"*"+snapSuffix))
	for _, s := range snaps {
		os.Remove(s)
	}
	_, err := OpenDatabase(dir)
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("generation gap: error = %v, want ErrWALCorrupt", err)
	}
}

func TestCloseIdempotentAndCommitAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	db.MustCreateRelation(kvSchema("R"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	err := db.RunInTx(func(tx *Tx) error {
		return tx.Insert("R", Tuple{Int(1), String("v")})
	})
	if !errors.Is(err, ErrDatabaseClosed) {
		t.Fatalf("commit after close: %v, want ErrDatabaseClosed", err)
	}
	// In-memory databases: Close is a no-op, Checkpoint refuses.
	mem := NewDatabase()
	if err := mem.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("in-memory checkpoint: %v, want ErrNotDurable", err)
	}
}

// TestSyncModes: the relaxed modes still recover what reached the OS.
func TestSyncModes(t *testing.T) {
	for _, mode := range []SyncMode{SyncInterval, SyncNone} {
		dir := t.TempDir()
		db, err := OpenDatabaseWith(dir, OpenOptions{Sync: mode})
		if err != nil {
			t.Fatal(err)
		}
		db.MustCreateRelation(kvSchema("R"))
		mustCommit(t, db, func(tx *Tx) error {
			return tx.Insert("R", Tuple{Int(1), String("v")})
		})
		gen := db.Generation()
		db.Close()
		re := durableDB(t, dir)
		if g := re.Generation(); g != gen {
			t.Fatalf("mode %d: recovered generation = %d, want %d", mode, g, gen)
		}
		re.Close()
	}
}
