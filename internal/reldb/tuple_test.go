package reldb

import "testing"

func TestTupleClone(t *testing.T) {
	tup := Tuple{Int(1), String("a")}
	c := tup.Clone()
	c[0] = Int(2)
	if tup[0].MustInt() != 1 {
		t.Fatal("Clone aliases the original")
	}
	if Tuple(nil).Clone() != nil {
		t.Fatal("Clone of nil should be nil")
	}
}

func TestTupleEqual(t *testing.T) {
	a := Tuple{Int(1), String("x"), Null()}
	b := Tuple{Int(1), String("x"), Null()}
	if !a.Equal(b) {
		t.Fatal("equal tuples reported unequal")
	}
	if a.Equal(Tuple{Int(1), String("x")}) {
		t.Fatal("different arity reported equal")
	}
	if a.Equal(Tuple{Int(1), String("y"), Null()}) {
		t.Fatal("different values reported equal")
	}
}

func TestTupleProjectWithConcat(t *testing.T) {
	tup := Tuple{Int(1), String("a"), Bool(true)}
	p := tup.Project([]int{2, 0})
	if !p.Equal(Tuple{Bool(true), Int(1)}) {
		t.Fatalf("Project = %v", p)
	}
	w := tup.With(1, String("b"))
	if tup[1].MustString() != "a" || w[1].MustString() != "b" {
		t.Fatal("With should copy")
	}
	c := Tuple{Int(1)}.Concat(Tuple{Int(2), Int(3)})
	if !c.Equal(Tuple{Int(1), Int(2), Int(3)}) {
		t.Fatalf("Concat = %v", c)
	}
}

func TestTupleString(t *testing.T) {
	got := Tuple{Int(1), String("a"), Null()}.String()
	if got != "(1, a, NULL)" {
		t.Fatalf("String = %q", got)
	}
}

func TestTupleOf(t *testing.T) {
	s := MustSchema("R", []Attribute{
		{Name: "A", Type: KindInt},
		{Name: "B", Type: KindString, Nullable: true},
	}, []string{"A"})
	tup := TupleOf(s, map[string]Value{"A": Int(1), "Unknown": Int(9)})
	if !tup[0].Equal(Int(1)) || !tup[1].IsNull() {
		t.Fatalf("TupleOf = %v", tup)
	}
}
