package reldb

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func newGradesRel(t *testing.T) *Relation {
	t.Helper()
	return NewRelation(gradesSchema(t))
}

func grade(course string, pid int64, g string) Tuple {
	return Tuple{String(course), Int(pid), String(g)}
}

func TestInsertGetDelete(t *testing.T) {
	r := newGradesRel(t)
	if err := r.Insert(grade("CS101", 1, "A")); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(grade("CS101", 2, "B")); err != nil {
		t.Fatal(err)
	}
	if r.Count() != 2 {
		t.Fatalf("Count = %d", r.Count())
	}
	got, ok := r.Get(Tuple{String("CS101"), Int(1)})
	if !ok || !got.Equal(grade("CS101", 1, "A")) {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if !r.Has(Tuple{String("CS101"), Int(2)}) {
		t.Fatal("Has should be true")
	}
	if r.Has(Tuple{String("CS101"), Int(99)}) {
		t.Fatal("Has should be false")
	}
	old, err := r.Delete(Tuple{String("CS101"), Int(1)})
	if err != nil || !old.Equal(grade("CS101", 1, "A")) {
		t.Fatalf("Delete = %v, %v", old, err)
	}
	if r.Count() != 1 {
		t.Fatalf("Count after delete = %d", r.Count())
	}
	if _, err := r.Delete(Tuple{String("CS101"), Int(1)}); !errors.Is(err, ErrNoSuchTuple) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestInsertDuplicateKey(t *testing.T) {
	r := newGradesRel(t)
	if err := r.Insert(grade("CS101", 1, "A")); err != nil {
		t.Fatal(err)
	}
	err := r.Insert(grade("CS101", 1, "F"))
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v, want ErrDuplicateKey", err)
	}
}

func TestInsertInvalidTuple(t *testing.T) {
	r := newGradesRel(t)
	if err := r.Insert(Tuple{String("CS101")}); err == nil {
		t.Fatal("short tuple accepted")
	}
	if err := r.Insert(Tuple{Null(), Int(1), Null()}); err == nil {
		t.Fatal("null key accepted")
	}
}

func TestInsertClonesInput(t *testing.T) {
	r := newGradesRel(t)
	tup := grade("CS101", 1, "A")
	if err := r.Insert(tup); err != nil {
		t.Fatal(err)
	}
	tup[2] = String("F") // mutate caller's slice
	got, _ := r.Get(Tuple{String("CS101"), Int(1)})
	if g := got[2].MustString(); g != "A" {
		t.Fatalf("stored tuple was aliased: grade = %q", g)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	r := newGradesRel(t)
	_ = r.Insert(grade("CS101", 1, "A"))
	got, _ := r.Get(Tuple{String("CS101"), Int(1)})
	got[2] = String("F")
	again, _ := r.Get(Tuple{String("CS101"), Int(1)})
	if again[2].MustString() != "A" {
		t.Fatal("Get leaked internal storage")
	}
}

func TestReplaceSameKey(t *testing.T) {
	r := newGradesRel(t)
	_ = r.Insert(grade("CS101", 1, "A"))
	if err := r.Replace(Tuple{String("CS101"), Int(1)}, grade("CS101", 1, "B")); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Get(Tuple{String("CS101"), Int(1)})
	if got[2].MustString() != "B" {
		t.Fatalf("replace did not stick: %v", got)
	}
	if r.Count() != 1 {
		t.Fatalf("Count = %d", r.Count())
	}
}

func TestReplaceKeyChange(t *testing.T) {
	r := newGradesRel(t)
	_ = r.Insert(grade("CS101", 1, "A"))
	if err := r.Replace(Tuple{String("CS101"), Int(1)}, grade("EE201", 1, "A")); err != nil {
		t.Fatal(err)
	}
	if r.Has(Tuple{String("CS101"), Int(1)}) {
		t.Fatal("old key still present")
	}
	if !r.Has(Tuple{String("EE201"), Int(1)}) {
		t.Fatal("new key missing")
	}
}

func TestReplaceErrors(t *testing.T) {
	r := newGradesRel(t)
	_ = r.Insert(grade("CS101", 1, "A"))
	_ = r.Insert(grade("EE201", 1, "B"))
	// Missing old key.
	err := r.Replace(Tuple{String("XX"), Int(9)}, grade("XX", 9, "C"))
	if !errors.Is(err, ErrNoSuchTuple) {
		t.Fatalf("err = %v, want ErrNoSuchTuple", err)
	}
	// New key collides with another tuple.
	err = r.Replace(Tuple{String("CS101"), Int(1)}, grade("EE201", 1, "A"))
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v, want ErrDuplicateKey", err)
	}
	// Invalid new tuple.
	if err := r.Replace(Tuple{String("CS101"), Int(1)}, Tuple{Null(), Int(1), Null()}); err == nil {
		t.Fatal("invalid replacement accepted")
	}
	// Failed replace must not change anything.
	if r.Count() != 2 || !r.Has(Tuple{String("CS101"), Int(1)}) {
		t.Fatal("failed replace mutated the relation")
	}
}

func TestScanKeyOrderDeterministic(t *testing.T) {
	r := newGradesRel(t)
	// Insert out of order.
	for _, pid := range []int64{5, 3, 9, 1, 7} {
		if err := r.Insert(grade("CS101", pid, "A")); err != nil {
			t.Fatal(err)
		}
	}
	var pids []int64
	r.Scan(func(t Tuple) bool {
		pids = append(pids, t[1].MustInt())
		return true
	})
	want := []int64{1, 3, 5, 7, 9}
	for i := range want {
		if pids[i] != want[i] {
			t.Fatalf("scan order = %v, want %v", pids, want)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	r := newGradesRel(t)
	for pid := int64(1); pid <= 10; pid++ {
		_ = r.Insert(grade("CS101", pid, "A"))
	}
	n := 0
	r.Scan(func(Tuple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestSelect(t *testing.T) {
	r := newGradesRel(t)
	_ = r.Insert(grade("CS101", 1, "A"))
	_ = r.Insert(grade("CS101", 2, "B"))
	_ = r.Insert(grade("EE201", 3, "A"))
	got, err := r.Select(Eq("Grade", String("A")))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("Select returned %d rows", len(got))
	}
	all, err := r.Select(nil)
	if err != nil || len(all) != 3 {
		t.Fatalf("Select(nil) = %d rows, %v", len(all), err)
	}
	if _, err := r.Select(Eq("Nope", Int(1))); err == nil {
		t.Fatal("Select with unknown attribute should fail")
	}
}

func TestSecondaryIndex(t *testing.T) {
	r := newGradesRel(t)
	for pid := int64(1); pid <= 100; pid++ {
		course := fmt.Sprintf("C%d", pid%10)
		if err := r.Insert(grade(course, pid, "A")); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.CreateIndex("byCourse", []string{"CourseID"}); err != nil {
		t.Fatal(err)
	}
	if err := r.CreateIndex("byCourse", []string{"CourseID"}); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if err := r.CreateIndex("bad", []string{"Nope"}); err == nil {
		t.Fatal("index on unknown attr accepted")
	}
	got, err := r.LookupIndex("byCourse", Tuple{String("C3")})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("index lookup returned %d rows, want 10", len(got))
	}
	for _, tu := range got {
		if tu[0].MustString() != "C3" {
			t.Fatalf("wrong row from index: %v", tu)
		}
	}
	if _, err := r.LookupIndex("nope", Tuple{String("x")}); !errors.Is(err, ErrNoSuchIndex) {
		t.Fatalf("err = %v, want ErrNoSuchIndex", err)
	}
	if _, err := r.LookupIndex("byCourse", Tuple{String("x"), Int(1)}); err == nil {
		t.Fatal("wrong arity lookup accepted")
	}
}

func TestIndexMaintainedByMutations(t *testing.T) {
	r := newGradesRel(t)
	if err := r.CreateIndex("byCourse", []string{"CourseID"}); err != nil {
		t.Fatal(err)
	}
	_ = r.Insert(grade("CS101", 1, "A"))
	_ = r.Insert(grade("CS101", 2, "B"))
	_ = r.Insert(grade("EE201", 3, "C"))

	check := func(course string, want int) {
		t.Helper()
		got, err := r.LookupIndex("byCourse", Tuple{String(course)})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != want {
			t.Fatalf("index[%s] = %d rows, want %d", course, len(got), want)
		}
	}
	check("CS101", 2)
	check("EE201", 1)

	// Delete updates the index.
	if _, err := r.Delete(Tuple{String("CS101"), Int(1)}); err != nil {
		t.Fatal(err)
	}
	check("CS101", 1)

	// Replace that moves a row between buckets updates the index.
	if err := r.Replace(Tuple{String("CS101"), Int(2)}, grade("EE201", 2, "B")); err != nil {
		t.Fatal(err)
	}
	check("CS101", 0)
	check("EE201", 2)
}

func TestDropIndex(t *testing.T) {
	r := newGradesRel(t)
	_ = r.CreateIndex("ix", []string{"Grade"})
	if got := r.IndexNames(); len(got) != 1 || got[0] != "ix" {
		t.Fatalf("IndexNames = %v", got)
	}
	if err := r.DropIndex("ix"); err != nil {
		t.Fatal(err)
	}
	if err := r.DropIndex("ix"); !errors.Is(err, ErrNoSuchIndex) {
		t.Fatalf("err = %v", err)
	}
}

func TestIndexBackfill(t *testing.T) {
	r := newGradesRel(t)
	_ = r.Insert(grade("CS101", 1, "A"))
	_ = r.Insert(grade("CS101", 2, "A"))
	if err := r.CreateIndex("byGrade", []string{"Grade"}); err != nil {
		t.Fatal(err)
	}
	got, err := r.LookupIndex("byGrade", Tuple{String("A")})
	if err != nil || len(got) != 2 {
		t.Fatalf("backfilled lookup = %d rows, %v", len(got), err)
	}
}

// A failing predicate must not hand back a truncated result set: callers
// check err != nil, but defensive coding (and retrofitted error handling)
// can still touch the slice.
func TestSelectErrorReturnsNilResults(t *testing.T) {
	r := newGradesRel(t)
	for i := 1; i <= 5; i++ {
		if err := r.Insert(grade("CS101", int64(i), "A")); err != nil {
			t.Fatal(err)
		}
	}
	got, err := r.Select(Eq("NoSuchAttr", Int(1)))
	if err == nil {
		t.Fatal("predicate over a missing attribute should fail")
	}
	if got != nil {
		t.Fatalf("error path returned %d tuples, want nil", len(got))
	}
}

// Duplicate attribute names must not trigger the primary-key point-lookup
// fast path: ["CourseID","CourseID"] has the same length and element set
// as the key ["CourseID","PID"] under a set comparison, and would build a
// lookup key with a hole.
func TestMatchEqualRejectsDuplicateAttrs(t *testing.T) {
	r := newGradesRel(t)
	if err := r.Insert(grade("CS101", 1, "A")); err != nil {
		t.Fatal(err)
	}
	got, err := r.MatchEqual([]string{"CourseID", "CourseID"}, Tuple{String("CS101"), String("CS101")})
	if err == nil {
		t.Fatalf("duplicate attributes accepted, got %v", got)
	}
	// Non-key duplicates are rejected too.
	if _, err := r.MatchEqual([]string{"Grade", "Grade"}, Tuple{String("A"), String("A")}); err == nil {
		t.Fatal("duplicate non-key attributes accepted")
	}
	// The legitimate full-key lookup still works.
	got, err = r.MatchEqual([]string{"CourseID", "PID"}, Tuple{String("CS101"), Int(1)})
	if err != nil || len(got) != 1 {
		t.Fatalf("full-key MatchEqual = %v, %v", got, err)
	}
}

func TestMatchEqualWithAndWithoutIndex(t *testing.T) {
	r := newGradesRel(t)
	for pid := int64(1); pid <= 30; pid++ {
		_ = r.Insert(grade(fmt.Sprintf("C%d", pid%3), pid, "A"))
	}
	// Without index: scan path.
	got, err := r.MatchEqual([]string{"CourseID"}, Tuple{String("C1")})
	if err != nil || len(got) != 10 {
		t.Fatalf("scan MatchEqual = %d, %v", len(got), err)
	}
	// With index: index path must agree.
	if err := r.CreateIndex("byCourse", []string{"CourseID"}); err != nil {
		t.Fatal(err)
	}
	got2, err := r.MatchEqual([]string{"CourseID"}, Tuple{String("C1")})
	if err != nil || len(got2) != len(got) {
		t.Fatalf("indexed MatchEqual = %d, %v", len(got2), err)
	}
	for i := range got {
		if !got[i].Equal(got2[i]) {
			t.Fatal("index and scan paths disagree")
		}
	}
	if _, err := r.MatchEqual([]string{"Nope"}, Tuple{String("x")}); err == nil {
		t.Fatal("MatchEqual unknown attr accepted")
	}
	if _, err := r.MatchEqual([]string{"CourseID"}, Tuple{String("x"), Int(1)}); err == nil {
		t.Fatal("MatchEqual arity mismatch accepted")
	}
}

func TestRelationCloneIsDeep(t *testing.T) {
	r := newGradesRel(t)
	_ = r.CreateIndex("byCourse", []string{"CourseID"})
	_ = r.Insert(grade("CS101", 1, "A"))
	c := r.clone()
	_ = c.Insert(grade("CS101", 2, "B"))
	if r.Count() != 1 || c.Count() != 2 {
		t.Fatalf("clone not independent: %d/%d", r.Count(), c.Count())
	}
	got, err := c.LookupIndex("byCourse", Tuple{String("CS101")})
	if err != nil || len(got) != 2 {
		t.Fatalf("cloned index = %d rows, %v", len(got), err)
	}
	got, err = r.LookupIndex("byCourse", Tuple{String("CS101")})
	if err != nil || len(got) != 1 {
		t.Fatalf("original index = %d rows, %v", len(got), err)
	}
}

// Property-style: a random sequence of inserts/deletes/replaces keeps the
// index consistent with a full scan.
func TestIndexConsistencyUnderRandomOps(t *testing.T) {
	r := newGradesRel(t)
	if err := r.CreateIndex("byCourse", []string{"CourseID"}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	courses := []string{"A", "B", "C", "D"}
	type pair struct {
		course string
		pid    int64
	}
	live := make(map[pair]bool) // ground truth of present keys
	for step := 0; step < 2000; step++ {
		p := pair{courses[rng.Intn(len(courses))], int64(rng.Intn(50))}
		switch rng.Intn(3) {
		case 0: // insert
			err := r.Insert(grade(p.course, p.pid, "A"))
			if live[p] {
				if !errors.Is(err, ErrDuplicateKey) {
					t.Fatalf("step %d: want duplicate error, got %v", step, err)
				}
			} else if err != nil {
				t.Fatalf("step %d: insert: %v", step, err)
			} else {
				live[p] = true
			}
		case 1: // delete
			if live[p] {
				if _, err := r.Delete(Tuple{String(p.course), Int(p.pid)}); err != nil {
					t.Fatalf("step %d: delete: %v", step, err)
				}
				delete(live, p)
			}
		case 2: // replace: move p to a fresh course (key change)
			if live[p] {
				np := pair{courses[rng.Intn(len(courses))], p.pid}
				err := r.Replace(Tuple{String(p.course), Int(p.pid)}, grade(np.course, np.pid, "B"))
				if np != p && live[np] {
					if !errors.Is(err, ErrDuplicateKey) {
						t.Fatalf("step %d: want duplicate on replace, got %v", step, err)
					}
				} else if err != nil {
					t.Fatalf("step %d: replace: %v", step, err)
				} else {
					delete(live, p)
					live[np] = true
				}
			}
		}
	}
	// Index must agree with ground truth per course.
	for _, c := range courses {
		want := 0
		for p := range live {
			if p.course == c {
				want++
			}
		}
		got, err := r.LookupIndex("byCourse", Tuple{String(c)})
		if err != nil || len(got) != want {
			t.Fatalf("course %s: index %d, want %d (%v)", c, len(got), want, err)
		}
	}
	if r.Count() != len(live) {
		t.Fatalf("Count = %d, want %d", r.Count(), len(live))
	}
}

func TestAllReturnsCopies(t *testing.T) {
	r := newGradesRel(t)
	_ = r.Insert(grade("CS101", 1, "A"))
	all := r.All()
	all[0][2] = String("F")
	got, _ := r.Get(Tuple{String("CS101"), Int(1)})
	if got[2].MustString() != "A" {
		t.Fatal("All leaked internal storage")
	}
}
