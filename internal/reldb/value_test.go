package reldb

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("Null() should be null")
	}
	if v := Int(42); v.Kind() != KindInt || v.MustInt() != 42 {
		t.Fatalf("Int(42) = %v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat {
		t.Fatalf("Float kind = %v", v.Kind())
	} else if f, ok := v.AsFloat(); !ok || f != 2.5 {
		t.Fatalf("AsFloat = %v %v", f, ok)
	}
	if v := String("x"); v.MustString() != "x" {
		t.Fatalf("String payload = %q", v.MustString())
	}
	if v := Bool(true); v.Kind() != KindBool {
		t.Fatalf("Bool kind = %v", v.Kind())
	} else if b, ok := v.AsBool(); !ok || !b {
		t.Fatalf("AsBool = %v %v", b, ok)
	}
	// Int promotes to float via AsFloat.
	if f, ok := Int(3).AsFloat(); !ok || f != 3.0 {
		t.Fatalf("Int.AsFloat = %v %v", f, ok)
	}
	// Wrong-kind accessors report !ok.
	if _, ok := String("x").AsInt(); ok {
		t.Fatal("AsInt on string should fail")
	}
	if _, ok := Int(1).AsString(); ok {
		t.Fatal("AsString on int should fail")
	}
	if _, ok := Int(1).AsBool(); ok {
		t.Fatal("AsBool on int should fail")
	}
	if _, ok := String("x").AsFloat(); ok {
		t.Fatal("AsFloat on string should fail")
	}
}

func TestMustAccessorsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustInt on string should panic")
		}
	}()
	String("x").MustInt()
}

func TestMustStringPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustString on int should panic")
		}
	}()
	Int(1).MustString()
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Float(2.5), -1},
		{Float(2.5), Int(2), 1},
		{Int(2), Float(2.0), 0},
		{String("a"), String("b"), -1},
		{String("b"), String("b"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
		{Null(), Null(), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), String(""), -1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Fatalf("Compare(%v,%v): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareCrossKindErrors(t *testing.T) {
	bad := [][2]Value{
		{String("a"), Int(1)},
		{Bool(true), Int(1)},
		{String("a"), Bool(false)},
		{Float(1), String("1")},
	}
	for _, p := range bad {
		if _, err := Compare(p[0], p[1]); err == nil {
			t.Errorf("Compare(%v,%v) should fail", p[0], p[1])
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(2).Equal(Float(2.0)) {
		t.Error("Int(2) should equal Float(2.0)")
	}
	if Int(2).Equal(String("2")) {
		t.Error("Int(2) should not equal String(\"2\")")
	}
	if !Null().Equal(Null()) {
		t.Error("null should equal null at the storage layer")
	}
	if Null().Equal(Int(0)) {
		t.Error("null should not equal 0")
	}
}

func TestValueStringAndLiteral(t *testing.T) {
	cases := []struct {
		v        Value
		str, lit string
	}{
		{Null(), "NULL", "NULL"},
		{Int(-7), "-7", "-7"},
		{Float(1.5), "1.5", "1.5"},
		{String(`a"b`), `a"b`, `"a\"b"`},
		{Bool(true), "true", "true"},
		{Bool(false), "false", "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
		if got := c.v.Literal(); got != c.lit {
			t.Errorf("Literal() = %q, want %q", got, c.lit)
		}
	}
}

func TestParseKind(t *testing.T) {
	good := map[string]Kind{
		"int": KindInt, "INTEGER": KindInt,
		"float": KindFloat, "real": KindFloat, "Double": KindFloat,
		"string": KindString, "TEXT": KindString, "varchar": KindString,
		"bool": KindBool, "Boolean": KindBool,
	}
	for name, want := range good {
		got, err := ParseKind(name)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(blob) should fail")
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue(KindInt, "42")
	if err != nil || v.MustInt() != 42 {
		t.Fatalf("ParseValue int: %v %v", v, err)
	}
	v, err = ParseValue(KindFloat, "2.25")
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := v.AsFloat(); f != 2.25 {
		t.Fatalf("ParseValue float = %v", f)
	}
	v, err = ParseValue(KindBool, "true")
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := v.AsBool(); !b {
		t.Fatal("ParseValue bool")
	}
	v, err = ParseValue(KindString, "hello")
	if err != nil || v.MustString() != "hello" {
		t.Fatalf("ParseValue string: %v %v", v, err)
	}
	for _, kind := range []Kind{KindInt, KindFloat, KindString, KindBool} {
		v, err := ParseValue(kind, "NULL")
		if err != nil || !v.IsNull() {
			t.Errorf("ParseValue(%v, NULL) = %v, %v", kind, v, err)
		}
	}
	if _, err := ParseValue(KindInt, "xyz"); err == nil {
		t.Error("ParseValue int from garbage should fail")
	}
	if _, err := ParseValue(KindBool, "maybe"); err == nil {
		t.Error("ParseValue bool from garbage should fail")
	}
}

// TestKeyEncodingOrderPreserving verifies the central codec invariant:
// bytes(a) < bytes(b) iff a < b, for same-kind values.
func TestKeyEncodingOrderPreserving(t *testing.T) {
	ints := []int64{math.MinInt64, -1000, -1, 0, 1, 42, 1000, math.MaxInt64}
	for i := 0; i < len(ints); i++ {
		for j := 0; j < len(ints); j++ {
			a := EncodeValues(Int(ints[i]))
			b := EncodeValues(Int(ints[j]))
			if (a < b) != (ints[i] < ints[j]) {
				t.Errorf("int ordering broken for %d vs %d", ints[i], ints[j])
			}
		}
	}
	floats := []float64{math.Inf(-1), -1e300, -2.5, -0.0, 0.0, 1e-300, 2.5, 1e300, math.Inf(1)}
	for i := 0; i < len(floats); i++ {
		for j := 0; j < len(floats); j++ {
			a := EncodeValues(Float(floats[i]))
			b := EncodeValues(Float(floats[j]))
			if (a < b) != (floats[i] < floats[j]) {
				t.Errorf("float ordering broken for %v vs %v", floats[i], floats[j])
			}
		}
	}
	strs := []string{"", "a", "aa", "ab", "b", "ba", "z\x00", "z\x00\x00", "z\x01"}
	for i := 0; i < len(strs); i++ {
		for j := 0; j < len(strs); j++ {
			a := EncodeValues(String(strs[i]))
			b := EncodeValues(String(strs[j]))
			if (a < b) != (strs[i] < strs[j]) {
				t.Errorf("string ordering broken for %q vs %q", strs[i], strs[j])
			}
		}
	}
}

// Property: encoded composite keys are injective — distinct value sequences
// never collide. Exercised with random value vectors.
func TestKeyEncodingInjectiveProperty(t *testing.T) {
	gen := func(r *rand.Rand) Value {
		switch r.Intn(4) {
		case 0:
			return Int(r.Int63() - r.Int63())
		case 1:
			return Float(r.NormFloat64())
		case 2:
			n := r.Intn(8)
			b := make([]byte, n)
			for i := range b {
				b[i] = byte(r.Intn(4)) // skew toward 0x00-0x03 to stress escaping
			}
			return String(string(b))
		default:
			return Bool(r.Intn(2) == 0)
		}
	}
	r := rand.New(rand.NewSource(1))
	seen := make(map[string]Tuple)
	for trial := 0; trial < 5000; trial++ {
		n := 1 + r.Intn(3)
		tup := make(Tuple, n)
		for i := range tup {
			tup[i] = gen(r)
		}
		enc := tup.Encode()
		if prev, ok := seen[enc]; ok && !prev.Equal(tup) {
			t.Fatalf("collision: %v and %v encode to the same key", prev, tup)
		}
		seen[enc] = tup
	}
}

// Property via testing/quick: int ordering is preserved by the codec.
func TestQuickIntOrdering(t *testing.T) {
	f := func(a, b int64) bool {
		ea, eb := EncodeValues(Int(a)), EncodeValues(Int(b))
		switch {
		case a < b:
			return ea < eb
		case a > b:
			return ea > eb
		default:
			return ea == eb
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property via testing/quick: string ordering is preserved by the codec,
// including strings containing NUL bytes.
func TestQuickStringOrdering(t *testing.T) {
	f := func(a, b string) bool {
		ea, eb := EncodeValues(String(a)), EncodeValues(String(b))
		switch {
		case a < b:
			return ea < eb
		case a > b:
			return ea > eb
		default:
			return ea == eb
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: prefix-freedom of composite encodings — the encoding of a tuple
// is never a strict prefix of the encoding of a different-arity tuple that
// extends it, unless the values differ. (Guards the self-delimiting design.)
func TestEncodingSelfDelimiting(t *testing.T) {
	a := EncodeValues(String("ab"))
	b := EncodeValues(String("a"), String("b"))
	if a == b {
		t.Fatal(`("ab") and ("a","b") must encode differently`)
	}
	c := EncodeValues(String("a\x00b"))
	d := EncodeValues(String("a"), String("b"))
	if c == d {
		t.Fatal(`("a\x00b") and ("a","b") must encode differently`)
	}
}

func TestNullSortsFirstInEncoding(t *testing.T) {
	null := EncodeValues(Null())
	for _, v := range []Value{Int(math.MinInt64), Float(math.Inf(-1)), String(""), Bool(false)} {
		if enc := EncodeValues(v); !(null < enc) {
			t.Errorf("null must sort before %v", v)
		}
	}
}

func TestAppendKeyAccumulates(t *testing.T) {
	var buf []byte
	buf = AppendKey(buf, Int(1))
	n := len(buf)
	buf = AppendKey(buf, String("x"))
	if len(buf) <= n {
		t.Fatal("AppendKey did not grow the buffer")
	}
	if !bytes.HasPrefix(buf, []byte(EncodeValues(Int(1)))) {
		t.Fatal("AppendKey prefix mismatch")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindNull: "null", KindInt: "int", KindFloat: "float",
		KindString: "string", KindBool: "bool",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind String() = %q", got)
	}
}

func TestValueRoundTripViaQuick(t *testing.T) {
	// ParseValue(kind, v.String()) round-trips for non-null scalar kinds.
	fInt := func(n int64) bool {
		v, err := ParseValue(KindInt, Int(n).String())
		return err == nil && v.Equal(Int(n))
	}
	if err := quick.Check(fInt, nil); err != nil {
		t.Error(err)
	}
	fBool := func(b bool) bool {
		v, err := ParseValue(KindBool, Bool(b).String())
		return err == nil && v.Equal(Bool(b))
	}
	if err := quick.Check(fBool, nil); err != nil {
		t.Error(err)
	}
}

// Guard against accidental reflection-visible state sharing in Value.
func TestValueIsComparableByReflection(t *testing.T) {
	a, b := Int(5), Int(5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical ints should be deep-equal")
	}
}

// Property via testing/quick: composite-key encoding is lexicographic —
// ordering of (int, string) pairs matches ordering of their encodings.
func TestQuickCompositeLexicographic(t *testing.T) {
	f := func(a1, b1 int64, a2, b2 string) bool {
		ea := EncodeValues(Int(a1), String(a2))
		eb := EncodeValues(Int(b1), String(b2))
		var want int
		switch {
		case a1 < b1:
			want = -1
		case a1 > b1:
			want = 1
		case a2 < b2:
			want = -1
		case a2 > b2:
			want = 1
		}
		switch {
		case want < 0:
			return ea < eb
		case want > 0:
			return ea > eb
		default:
			return ea == eb
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property via testing/quick: float ordering is preserved by the codec
// for all finite inputs.
func TestQuickFloatOrdering(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true // NaN has no ordering; keys never hold NaN
		}
		ea, eb := EncodeValues(Float(a)), EncodeValues(Float(b))
		switch {
		case a < b:
			return ea < eb
		case a > b:
			return ea > eb
		default:
			return ea == eb
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
