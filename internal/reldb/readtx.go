package reldb

import (
	"fmt"
	"sort"

	"penguin/internal/obs"
)

// ReadTx is a snapshot-isolated read transaction: BeginRead pins the
// current committed version of every relation (a map of pointers — cheap,
// no data is copied) and all reads through the ReadTx observe exactly that
// database state, however long the transaction lives and however many
// write transactions commit in the meantime.
//
// Under the copy-on-write discipline the pinned versions are immutable,
// so a ReadTx holds no lock after BeginRead returns: long-running
// instantiations never block writers, and writers never block readers.
//
// ReadTx satisfies structural.Resolver, so it can be handed directly to
// viewobject.Instantiate, oql.Query, structural.ConnectedVia, and every
// other read path that resolves relations by name.
type ReadTx struct {
	db   *Database
	rels map[string]*Relation
	gen  uint64
	done bool
}

// BeginRead starts a read transaction pinning the current committed
// state. It blocks only for the duration of a commit's pointer swap.
func (db *Database) BeginRead() *ReadTx {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rels := make(map[string]*Relation, len(db.relations))
	for n, r := range db.relations {
		rels[n] = r
	}
	obs.Default.ReadTxBegins.Inc()
	return &ReadTx{db: db, rels: rels, gen: db.gen}
}

// Relation returns the pinned version of the named relation.
func (rtx *ReadTx) Relation(name string) (*Relation, error) {
	if rtx.done {
		obs.Default.TxDoneHits.Inc()
		return nil, ErrTxDone
	}
	r, ok := rtx.rels[name]
	if !ok {
		return nil, fmt.Errorf("reldb: relation %s: %w", name, ErrNoSuchRelation)
	}
	return r, nil
}

// MustRelation is Relation that panics on error.
func (rtx *ReadTx) MustRelation(name string) *Relation {
	r, err := rtx.Relation(name)
	if err != nil {
		panic(err)
	}
	return r
}

// HasRelation reports whether the snapshot contains the named relation.
func (rtx *ReadTx) HasRelation(name string) bool {
	_, ok := rtx.rels[name]
	return ok
}

// Names returns the snapshot's relation names, sorted.
func (rtx *ReadTx) Names() []string {
	names := make([]string, 0, len(rtx.rels))
	for n := range rtx.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Generation returns the commit generation the snapshot pinned.
func (rtx *ReadTx) Generation() uint64 { return rtx.gen }

// TotalRows returns the number of tuples across the snapshot.
func (rtx *ReadTx) TotalRows() int {
	total := 0
	for _, r := range rtx.rels {
		total += r.Count()
	}
	return total
}

// Stale reports whether the database has committed past the snapshot.
func (rtx *ReadTx) Stale() bool { return rtx.db.Generation() != rtx.gen }

// Lag returns how many commits the database has advanced past the
// snapshot — the ReadTx's age in generations. Workloads can poll it to
// catch long-lived readers before they pin excessive history.
func (rtx *ReadTx) Lag() uint64 { return rtx.db.Generation() - rtx.gen }

// Fork materializes the snapshot as a private Database sharing the pinned
// relation versions. Write transactions on the fork copy-on-write before
// mutating, so the fork can be updated freely — what-if translation
// planning runs against it without ever taking the live database's writer
// lock. Mutate the fork only through transactions.
//
// Forking observes the snapshot's generation lag like Close does: a
// leaked or long-lived reader that keeps forking — the exact pathology
// the stale-ReadTx alert exists for — is reported per Fork into
// reldb.readtx.stale_forks instead of only once at Close.
func (rtx *ReadTx) Fork() *Database {
	lag := int64(rtx.Lag())
	obs.Default.ReadTxLag.Observe(lag)
	if th := obs.Default.ReadTxLagAlert(); th > 0 && lag >= th {
		rtx.staleAlert("reldb.readtx.stale_fork", &obs.Default.StaleForks, lag, th)
	}
	c := NewDatabase()
	c.gen = rtx.gen
	for n, r := range rtx.rels {
		c.relations[n] = r
	}
	return c
}

// Close ends the read transaction; further access fails with ErrTxDone.
// Closing is idempotent and never blocks (no lock is held beyond the
// momentary generation read). The first Close records how many commits
// the snapshot fell behind (its staleness) into the ReadTxLag histogram;
// when that lag reaches the registry's alert threshold
// (obs.SetReadTxLagAlert, default obs.DefaultReadTxLagAlert) the close
// additionally counts into reldb.readtx.stale_closes and — with a trace
// sink installed — emits a reldb.readtx.stale_close event, surfacing
// long-lived forks that pin memory. Exactly one alert fires per stale
// ReadTx, however many times Close is called.
func (rtx *ReadTx) Close() {
	if !rtx.done {
		lag := int64(rtx.db.Generation() - rtx.gen)
		obs.Default.ReadTxLag.Observe(lag)
		if th := obs.Default.ReadTxLagAlert(); th > 0 && lag >= th {
			rtx.staleAlert("reldb.readtx.stale_close", &obs.Default.StaleCloses, lag, th)
		}
	}
	rtx.done = true
	rtx.rels = nil
}

// staleAlert records one stale-ReadTx observation: it bumps the given
// counter unconditionally and builds the trace event only behind the
// Tracing() gate, so the alert path — which fires on every stale Close
// and Fork, threshold permitting — stays allocation-free when no sink
// is installed. Both alert sites funnel through here so the gate cannot
// drift between them; TestStaleAlertAllocationFreeWhenUntraced pins the
// guarantee.
func (rtx *ReadTx) staleAlert(name string, ctr *obs.Counter, lag, th int64) {
	ctr.Inc()
	if obs.Default.Tracing() {
		obs.Default.Emit(obs.Event{
			Name:   name,
			Detail: fmt.Sprintf("lag=%d threshold=%d gen=%d", lag, th, rtx.gen),
		})
	}
}
