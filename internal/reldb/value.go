// Package reldb implements an in-memory relational database engine:
// typed values, schemas, keyed relations with secondary indexes,
// predicate expressions, query plans (select, project, join, aggregate),
// and transactions with an undo log.
//
// The engine is the storage substrate for the PENGUIN view-object model.
// It deliberately keeps the relational semantics of the paper's setting:
// relations are sets of tuples in first normal form, each relation has a
// primary key, and every mutation is expressible as one of the three
// primitive operations the update-translation algorithms emit — insert,
// delete, and replace.
package reldb

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the runtime type of a Value. The zero Kind is KindNull so
// that the zero Value is the null value.
type Kind uint8

// The value kinds supported by the engine.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the lowercase name of the kind as used by RQL type syntax.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind maps a type name (case-insensitive) to a Kind.
// Recognized names: int/integer, float/real/double, string/text/varchar,
// bool/boolean.
func ParseKind(name string) (Kind, error) {
	switch strings.ToLower(name) {
	case "int", "integer":
		return KindInt, nil
	case "float", "real", "double":
		return KindFloat, nil
	case "string", "text", "varchar", "char":
		return KindString, nil
	case "bool", "boolean":
		return KindBool, nil
	default:
		return KindNull, fmt.Errorf("reldb: unknown type name %q", name)
	}
}

// Value is an immutable typed database value. Values are compared and key
// encoded by the relation machinery; the zero Value is null.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null returns the null value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload; ok is false if the kind differs.
func (v Value) AsInt() (int64, bool) { return v.i, v.kind == KindInt }

// AsFloat returns the float payload; ok is false if the kind differs.
// An integer value is promoted to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindFloat:
		return v.f, true
	case KindInt:
		return float64(v.i), true
	default:
		return 0, false
	}
}

// AsString returns the string payload; ok is false if the kind differs.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// AsBool returns the boolean payload; ok is false if the kind differs.
func (v Value) AsBool() (bool, bool) { return v.b, v.kind == KindBool }

// MustInt returns the integer payload and panics on kind mismatch.
// Intended for tests and fixtures where the schema is statically known.
func (v Value) MustInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("reldb: MustInt on %s value", v.kind))
	}
	return v.i
}

// MustString returns the string payload and panics on kind mismatch.
func (v Value) MustString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("reldb: MustString on %s value", v.kind))
	}
	return v.s
}

// Equal reports deep equality of two values. Null equals only null
// (three-valued logic is handled at the expression layer, not here).
// Int and float values compare numerically across kinds.
func (v Value) Equal(w Value) bool {
	c, err := Compare(v, w)
	return err == nil && c == 0
}

// Compare orders two values. Null sorts before every non-null value and
// equals null. Numeric kinds (int, float) are mutually comparable; any
// other cross-kind comparison is an error.
func Compare(a, b Value) (int, error) {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0, nil
		case a.kind == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if a.kind != b.kind {
		af, aok := a.AsFloat()
		bf, bok := b.AsFloat()
		if aok && bok {
			return cmpFloat(af, bf), nil
		}
		return 0, fmt.Errorf("reldb: cannot compare %s with %s", a.kind, b.kind)
	}
	switch a.kind {
	case KindInt:
		switch {
		case a.i < b.i:
			return -1, nil
		case a.i > b.i:
			return 1, nil
		default:
			return 0, nil
		}
	case KindFloat:
		return cmpFloat(a.f, b.f), nil
	case KindString:
		return strings.Compare(a.s, b.s), nil
	case KindBool:
		switch {
		case !a.b && b.b:
			return -1, nil
		case a.b && !b.b:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("reldb: cannot compare kind %s", a.kind)
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// String renders the value for display. Strings are returned verbatim;
// use Literal for an RQL-parseable rendering.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("<%s>", v.kind)
	}
}

// Literal renders the value as an RQL literal (strings quoted and escaped).
func (v Value) Literal() string {
	if v.kind == KindString {
		return strconv.Quote(v.s)
	}
	return v.String()
}

// ParseValue parses text into a value of the given kind. Parsing the empty
// string for any kind, or the literal "NULL" (any case), yields null.
func ParseValue(kind Kind, text string) (Value, error) {
	if text == "" || strings.EqualFold(text, "null") {
		return Null(), nil
	}
	switch kind {
	case KindInt:
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("reldb: parsing %q as int: %w", text, err)
		}
		return Int(n), nil
	case KindFloat:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Null(), fmt.Errorf("reldb: parsing %q as float: %w", text, err)
		}
		return Float(f), nil
	case KindString:
		return String(text), nil
	case KindBool:
		b, err := strconv.ParseBool(text)
		if err != nil {
			return Null(), fmt.Errorf("reldb: parsing %q as bool: %w", text, err)
		}
		return Bool(b), nil
	default:
		return Null(), fmt.Errorf("reldb: cannot parse into kind %s", kind)
	}
}

// Key encoding
//
// appendKey produces an order-preserving, self-delimiting byte encoding:
// for values a, b of the same kind, bytes(a) < bytes(b) iff a < b. This
// lets relations keep a single map keyed by the encoded primary key while
// still being able to produce deterministic, key-ordered scans by sorting
// the encoded forms. Each value starts with a kind tag byte that also
// orders null before everything else.

const (
	tagNull   byte = 0x01
	tagFalse  byte = 0x02
	tagTrue   byte = 0x03
	tagNumber byte = 0x04
	tagString byte = 0x05
)

// AppendKey appends the order-preserving encoding of v to dst.
func AppendKey(dst []byte, v Value) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, tagNull)
	case KindBool:
		if v.b {
			return append(dst, tagTrue)
		}
		return append(dst, tagFalse)
	case KindInt:
		return appendOrderedFloat(append(dst, tagNumber), float64(v.i))
	case KindFloat:
		return appendOrderedFloat(append(dst, tagNumber), v.f)
	case KindString:
		dst = append(dst, tagString)
		// Escape 0x00 as 0x00 0xFF so the 0x00 0x00 terminator is
		// unambiguous and ordering of prefixes is preserved.
		for i := 0; i < len(v.s); i++ {
			c := v.s[i]
			dst = append(dst, c)
			if c == 0x00 {
				dst = append(dst, 0xFF)
			}
		}
		return append(dst, 0x00, 0x00)
	default:
		panic(fmt.Sprintf("reldb: AppendKey on kind %s", v.kind))
	}
}

// appendOrderedFloat encodes f such that byte-wise comparison matches
// numeric comparison: flip the sign bit for positives, flip all bits for
// negatives.
func appendOrderedFloat(dst []byte, f float64) []byte {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	return append(dst,
		byte(bits>>56), byte(bits>>48), byte(bits>>40), byte(bits>>32),
		byte(bits>>24), byte(bits>>16), byte(bits>>8), byte(bits))
}

// EncodeValues encodes a sequence of values into one order-preserving key
// string. It is the canonical form used by relation row maps and indexes.
func EncodeValues(vs ...Value) string {
	var dst []byte
	for _, v := range vs {
		dst = AppendKey(dst, v)
	}
	return string(dst)
}
