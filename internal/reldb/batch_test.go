package reldb

import (
	"fmt"
	"testing"
)

// Regression for the order-sensitive index selection bug: an index built
// over the same attributes in a different order must still serve the
// lookup (no full-scan fallback), with vals permuted into the index's
// attribute order.
func TestMatchEqualUsesOrderPermutedIndex(t *testing.T) {
	s := MustSchema("R", []Attribute{
		{Name: "ID", Type: KindInt},
		{Name: "A", Type: KindString},
		{Name: "B", Type: KindInt},
	}, []string{"ID"})
	r := NewRelation(s)
	for i := int64(0); i < 40; i++ {
		tup := Tuple{Int(i), String(fmt.Sprintf("a%d", i%4)), Int(i % 2)}
		if err := r.Insert(tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.CreateIndex("ab", []string{"A", "B"}); err != nil {
		t.Fatal(err)
	}

	// Query in the reversed attribute order.
	var st MatchStats
	got, err := r.MatchEqualStats([]string{"B", "A"}, Tuple{Int(1), String("a1")}, &st)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scans != 0 {
		t.Fatalf("permuted lookup fell back to a scan (stats %+v)", st)
	}
	if st.Probes != 1 {
		t.Fatalf("permuted lookup made %d probes, want 1", st.Probes)
	}
	// Same query via a scan on an index-less twin must agree.
	r2 := NewRelation(s)
	r.Scan(func(tup Tuple) bool {
		if err := r2.Insert(tup); err != nil {
			t.Fatal(err)
		}
		return true
	})
	var st2 MatchStats
	want, err := r2.MatchEqualStats([]string{"B", "A"}, Tuple{Int(1), String("a1")}, &st2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Scans != 1 {
		t.Fatalf("index-less twin should scan (stats %+v)", st2)
	}
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("index path: %d rows, scan path: %d rows", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("row %d differs: index %v, scan %v", i, got[i], want[i])
		}
	}

	if !r.HasIndexOn([]string{"B", "A"}) || !r.HasIndexOn([]string{"A", "B"}) {
		t.Fatal("HasIndexOn must match attribute sets order-insensitively")
	}
	if r.HasIndexOn([]string{"A"}) || r.HasIndexOn([]string{"Nope"}) {
		t.Fatal("HasIndexOn matched a non-covered attribute set")
	}
}

// LookupIndex must reject values that cannot match the indexed
// attributes instead of silently encoding to a miss.
func TestLookupIndexValidatesValues(t *testing.T) {
	r := newGradesRel(t)
	if err := r.Insert(grade("CS101", 1, "A")); err != nil {
		t.Fatal(err)
	}
	if err := r.CreateIndex("byCourse", []string{"CourseID"}); err != nil {
		t.Fatal(err)
	}
	if err := r.CreateIndex("byGrade", []string{"Grade"}); err != nil {
		t.Fatal(err)
	}
	// Wrong kind: CourseID is a string.
	if _, err := r.LookupIndex("byCourse", Tuple{Int(7)}); err == nil {
		t.Fatal("wrong-typed lookup value accepted")
	}
	// Null probing a key attribute.
	if _, err := r.LookupIndex("byCourse", Tuple{Null()}); err == nil {
		t.Fatal("null lookup on key attribute accepted")
	}
	// Null probing a nullable non-key attribute is a legitimate probe.
	if _, err := r.LookupIndex("byGrade", Tuple{Null()}); err != nil {
		t.Fatalf("null lookup on nullable attribute rejected: %v", err)
	}
	// Valid lookups still work.
	got, err := r.LookupIndex("byCourse", Tuple{String("CS101")})
	if err != nil || len(got) != 1 {
		t.Fatalf("valid lookup = %d rows, %v", len(got), err)
	}
	// MatchEqual applies the same discipline.
	if _, err := r.MatchEqual([]string{"Grade"}, Tuple{Int(3)}); err == nil {
		t.Fatal("MatchEqual wrong-typed value accepted")
	}
	if _, err := r.MatchEqualBatch([]string{"Grade"}, []Tuple{{String("A")}, {Int(3)}}); err == nil {
		t.Fatal("MatchEqualBatch wrong-typed value accepted")
	}
}

func batchRel(t *testing.T, rows int) *Relation {
	t.Helper()
	r := newGradesRel(t)
	for pid := int64(1); pid <= int64(rows); pid++ {
		course := fmt.Sprintf("C%d", pid%5)
		if err := r.Insert(grade(course, pid, "A")); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func checkBatch(t *testing.T, r *Relation, st MatchStats) {
	t.Helper()
	valSets := []Tuple{
		{String("C1")},
		{String("C3")},
		{String("C1")},   // duplicate: must collapse into one probe
		{String("nope")}, // no matches: absent from the result
	}
	got, err := r.MatchEqualBatchStats([]string{"CourseID"}, valSets, &st)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("batch returned %d buckets, want 2", len(got))
	}
	for _, course := range []string{"C1", "C3"} {
		key := EncodeValues(String(course))
		bucket := got[key]
		want, err := r.MatchEqual([]string{"CourseID"}, Tuple{String(course)})
		if err != nil {
			t.Fatal(err)
		}
		if len(bucket) != len(want) || len(bucket) == 0 {
			t.Fatalf("%s: batch %d rows, single %d rows", course, len(bucket), len(want))
		}
		for i := range bucket {
			if !bucket[i].Equal(want[i]) {
				t.Fatalf("%s row %d: batch %v, single %v (key-order mismatch)", course, i, bucket[i], want[i])
			}
		}
	}
	if _, ok := got[EncodeValues(String("nope"))]; ok {
		t.Fatal("empty bucket present in batch result")
	}
}

func TestMatchEqualBatchScanPath(t *testing.T) {
	r := batchRel(t, 50)
	var st MatchStats
	valSets := []Tuple{{String("C1")}, {String("C3")}, {String("C1")}, {String("nope")}}
	if _, err := r.MatchEqualBatchStats([]string{"CourseID"}, valSets, &st); err != nil {
		t.Fatal(err)
	}
	// One shared scan for the whole batch, not one per value set.
	if st.Scans != 1 || st.Probes != 0 {
		t.Fatalf("scan-path stats = %+v, want exactly one shared scan", st)
	}
	if st.Scanned != r.Count() {
		t.Fatalf("scan path visited %d tuples, want %d", st.Scanned, r.Count())
	}
	checkBatch(t, r, MatchStats{})
}

func TestMatchEqualBatchIndexPath(t *testing.T) {
	r := batchRel(t, 50)
	if err := r.CreateIndex("byCourse", []string{"CourseID"}); err != nil {
		t.Fatal(err)
	}
	var st MatchStats
	valSets := []Tuple{{String("C1")}, {String("C3")}, {String("C1")}, {String("nope")}}
	if _, err := r.MatchEqualBatchStats([]string{"CourseID"}, valSets, &st); err != nil {
		t.Fatal(err)
	}
	// One probe per distinct value set (3 distinct), no scans.
	if st.Scans != 0 || st.Probes != 3 {
		t.Fatalf("index-path stats = %+v, want 3 probes and no scans", st)
	}
	checkBatch(t, r, MatchStats{})
}

func TestMatchEqualBatchPointLookupPath(t *testing.T) {
	r := batchRel(t, 10)
	var st MatchStats
	// Whole primary key, in permuted order: point lookups.
	valSets := []Tuple{
		{Int(3), String("C3")},
		{Int(4), String("C4")},
		{Int(999), String("C1")}, // miss
	}
	got, err := r.MatchEqualBatchStats([]string{"PID", "CourseID"}, valSets, &st)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scans != 0 || st.Probes != 3 {
		t.Fatalf("point-path stats = %+v, want 3 probes and no scans", st)
	}
	if len(got) != 2 {
		t.Fatalf("point path returned %d buckets, want 2", len(got))
	}
	hit := got[EncodeValues(Int(3), String("C3"))]
	if len(hit) != 1 || !hit[0].Equal(grade("C3", 3, "A")) {
		t.Fatalf("point lookup bucket = %v", hit)
	}
}

func TestMatchEqualBatchEmptyAndErrors(t *testing.T) {
	r := batchRel(t, 10)
	got, err := r.MatchEqualBatch([]string{"CourseID"}, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch = %v, %v", got, err)
	}
	if _, err := r.MatchEqualBatch([]string{"Nope"}, []Tuple{{String("x")}}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	if _, err := r.MatchEqualBatch([]string{"CourseID"}, []Tuple{{String("x"), Int(1)}}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := r.MatchEqualBatch([]string{"CourseID", "CourseID"}, []Tuple{{String("x"), String("x")}}); err == nil {
		t.Fatal("duplicate attributes accepted")
	}
}

// A Replace that changes the primary key must move the row between the
// non-key index's buckets exactly once (no stale entry under the old
// encoded key, none duplicated under the new one).
func TestReplaceKeyChangeMaintainsNonKeyIndex(t *testing.T) {
	r := newGradesRel(t)
	if err := r.CreateIndex("byGrade", []string{"Grade"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(grade("CS101", 1, "A")); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(grade("CS101", 2, "A")); err != nil {
		t.Fatal(err)
	}
	// Key change, indexed attribute unchanged: same bucket, new row key.
	if err := r.Replace(Tuple{String("CS101"), Int(1)}, grade("EE201", 7, "A")); err != nil {
		t.Fatal(err)
	}
	got, err := r.LookupIndex("byGrade", Tuple{String("A")})
	if err != nil || len(got) != 2 {
		t.Fatalf("bucket A = %d rows, %v", len(got), err)
	}
	if !got[0].Equal(grade("CS101", 2, "A")) || !got[1].Equal(grade("EE201", 7, "A")) {
		t.Fatalf("bucket A rows = %v", got)
	}
	// Key change and bucket change together.
	if err := r.Replace(Tuple{String("EE201"), Int(7)}, grade("ME301", 9, "B")); err != nil {
		t.Fatal(err)
	}
	a, _ := r.LookupIndex("byGrade", Tuple{String("A")})
	b, _ := r.LookupIndex("byGrade", Tuple{String("B")})
	if len(a) != 1 || len(b) != 1 || !b[0].Equal(grade("ME301", 9, "B")) {
		t.Fatalf("buckets after move: A=%v B=%v", a, b)
	}
}

// Mutating a COW clone's index must leave the original's buckets
// untouched — the index analogue of TestRelationCloneIsDeep, via the
// transaction layer a reader actually races with.
func TestTxCloneIndexIndependence(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation(gradesSchema(t))
	rel := db.MustRelation("GRADES")
	if err := rel.CreateIndex("byGrade", []string{"Grade"}); err != nil {
		t.Fatal(err)
	}
	if err := rel.Insert(grade("CS101", 1, "A")); err != nil {
		t.Fatal(err)
	}

	snapshot := db.MustRelation("GRADES")
	tx := db.Begin()
	if err := tx.Insert("GRADES", grade("CS101", 2, "A")); err != nil {
		t.Fatal(err)
	}
	// The committed snapshot's bucket is untouched while the Tx clone has
	// the extra row.
	got, err := snapshot.LookupIndex("byGrade", Tuple{String("A")})
	if err != nil || len(got) != 1 {
		t.Fatalf("committed bucket = %d rows, %v (clone mutation leaked)", len(got), err)
	}
	txRel, err := tx.Relation("GRADES")
	if err != nil {
		t.Fatal(err)
	}
	inTx, err := txRel.LookupIndex("byGrade", Tuple{String("A")})
	if err != nil || len(inTx) != 2 {
		t.Fatalf("tx bucket = %d rows, %v", len(inTx), err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// The pre-commit snapshot still answers from its own buckets.
	got, err = snapshot.LookupIndex("byGrade", Tuple{String("A")})
	if err != nil || len(got) != 1 {
		t.Fatalf("snapshot bucket after commit = %d rows, %v", len(got), err)
	}
	// The new head sees both.
	head, _ := db.MustRelation("GRADES").LookupIndex("byGrade", Tuple{String("A")})
	if len(head) != 2 {
		t.Fatalf("head bucket = %d rows", len(head))
	}
}
