package reldb

import (
	"strings"
	"testing"
)

func TestQualifyPlan(t *testing.T) {
	db := testDB(t)
	rs := run(t, QualifyPlan{Input: ScanPlan{db.MustRelation("COURSES")}, Prefix: "C"})
	if _, ok := rs.Schema.AttrIndex("C.CourseID"); !ok {
		t.Fatalf("qualified attr missing: %v", rs.Schema.AttrNames())
	}
	if !rs.Schema.IsKeyName("C.CourseID") {
		t.Fatal("key should stay the key after qualification")
	}
	if rs.Len() != 4 {
		t.Fatalf("rows = %d", rs.Len())
	}
	// Already-qualified attributes are kept.
	rs2 := run(t, QualifyPlan{Input: QualifyPlan{Input: ScanPlan{db.MustRelation("COURSES")}, Prefix: "C"}, Prefix: "D"})
	if _, ok := rs2.Schema.AttrIndex("C.CourseID"); !ok {
		t.Fatalf("double qualification rewrote names: %v", rs2.Schema.AttrNames())
	}
}

// The primary-key fast path of MatchEqual must agree with the scan path,
// including when key attributes are given in non-canonical order.
func TestMatchEqualPrimaryKeyFastPath(t *testing.T) {
	r := NewRelation(MustSchema("G", []Attribute{
		{Name: "A", Type: KindString},
		{Name: "B", Type: KindInt},
		{Name: "V", Type: KindString, Nullable: true},
	}, []string{"A", "B"}))
	_ = r.Insert(Tuple{String("x"), Int(1), String("v1")})
	_ = r.Insert(Tuple{String("x"), Int(2), String("v2")})
	_ = r.Insert(Tuple{String("y"), Int(1), String("v3")})

	// Canonical order.
	got, err := r.MatchEqual([]string{"A", "B"}, Tuple{String("x"), Int(2)})
	if err != nil || len(got) != 1 || got[0][2].MustString() != "v2" {
		t.Fatalf("fast path = %v, %v", got, err)
	}
	// Reversed order: values follow the attribute list.
	got, err = r.MatchEqual([]string{"B", "A"}, Tuple{Int(1), String("y")})
	if err != nil || len(got) != 1 || got[0][2].MustString() != "v3" {
		t.Fatalf("reversed fast path = %v, %v", got, err)
	}
	// Miss.
	got, err = r.MatchEqual([]string{"A", "B"}, Tuple{String("z"), Int(9)})
	if err != nil || len(got) != 0 {
		t.Fatalf("miss = %v, %v", got, err)
	}
	// Proper key subset still scans (A alone is not the key).
	got, err = r.MatchEqual([]string{"A"}, Tuple{String("x")})
	if err != nil || len(got) != 2 {
		t.Fatalf("subset scan = %v, %v", got, err)
	}
}

func TestSelectPlanPropagatesChildError(t *testing.T) {
	db := testDB(t)
	bad := SelectPlan{
		Input: ProjectPlan{ScanPlan{db.MustRelation("COURSES")}, []string{"Nope"}},
		Pred:  Eq("X", Int(1)),
	}
	if _, err := bad.Run(); err == nil {
		t.Fatal("child error swallowed")
	}
	for _, p := range []Plan{
		ProjectPlan{bad, []string{"X"}},
		JoinPlan{Left: bad, Right: ScanPlan{db.MustRelation("GRADES")}},
		JoinPlan{Left: ScanPlan{db.MustRelation("GRADES")}, Right: bad},
		SortPlan{Input: bad, By: []string{"X"}},
		DistinctPlan{bad},
		LimitPlan{bad, 1},
		AggregatePlan{Input: bad},
		QualifyPlan{Input: bad, Prefix: "Q"},
	} {
		if _, err := p.Run(); err == nil {
			t.Errorf("%T swallowed child error", p)
		}
	}
}

func TestJoinSchemaNameAndKeys(t *testing.T) {
	db := testDB(t)
	rs := run(t, JoinPlan{
		Left:       ScanPlan{db.MustRelation("COURSES")},
		Right:      ScanPlan{db.MustRelation("GRADES")},
		LeftAttrs:  []string{"CourseID"},
		RightAttrs: []string{"CourseID"},
	})
	if !strings.Contains(rs.Schema.Name(), "*") {
		t.Fatalf("joined schema name = %q", rs.Schema.Name())
	}
	// Joined key is the union of both keys.
	keys := rs.Schema.KeyNames()
	want := map[string]bool{"COURSES.CourseID": true, "GRADES.CourseID": true, "GRADES.PID": true}
	if len(keys) != len(want) {
		t.Fatalf("joined keys = %v", keys)
	}
	for _, k := range keys {
		if !want[k] {
			t.Fatalf("unexpected joined key %s", k)
		}
	}
}
