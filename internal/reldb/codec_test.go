package reldb

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func snapshotDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	r := db.MustCreateRelation(MustSchema("MIXED", []Attribute{
		{Name: "ID", Type: KindInt},
		{Name: "Name", Type: KindString, Nullable: true},
		{Name: "Score", Type: KindFloat, Nullable: true},
		{Name: "Active", Type: KindBool, Nullable: true},
	}, []string{"ID"}))
	if err := r.CreateIndex("byName", []string{"Name"}); err != nil {
		t.Fatal(err)
	}
	rows := []Tuple{
		{Int(1), String("alice"), Float(3.75), Bool(true)},
		{Int(2), String("bob"), Null(), Bool(false)},
		{Int(3), Null(), Float(math.Inf(1)), Null()},
		{Int(-4), String("weird \x00 bytes"), Float(-0.0), Bool(true)},
		{Int(math.MaxInt64), String(""), Float(math.SmallestNonzeroFloat64), Bool(false)},
	}
	for _, row := range rows {
		if err := r.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	db.MustCreateRelation(MustSchema("EMPTY", []Attribute{
		{Name: "K", Type: KindString},
	}, []string{"K"}))
	return db
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := snapshotDB(t)
	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got.Names(), ",") != strings.Join(db.Names(), ",") {
		t.Fatalf("relation names differ: %v vs %v", got.Names(), db.Names())
	}
	for _, name := range db.Names() {
		orig := db.MustRelation(name)
		load := got.MustRelation(name)
		if orig.Schema().String() != load.Schema().String() {
			t.Fatalf("%s: schema differs:\n%s\n%s", name, orig.Schema(), load.Schema())
		}
		o, l := orig.All(), load.All()
		if len(o) != len(l) {
			t.Fatalf("%s: %d vs %d rows", name, len(o), len(l))
		}
		for i := range o {
			if !o[i].Equal(l[i]) {
				t.Fatalf("%s row %d: %v vs %v", name, i, o[i], l[i])
			}
		}
		if strings.Join(orig.IndexNames(), ",") != strings.Join(load.IndexNames(), ",") {
			t.Fatalf("%s: indexes differ", name)
		}
	}
	// The rebuilt index works.
	rows, err := got.MustRelation("MIXED").LookupIndex("byName", Tuple{String("alice")})
	if err != nil || len(rows) != 1 {
		t.Fatalf("rebuilt index lookup = %d rows, %v", len(rows), err)
	}
}

func TestSnapshotEmptyDatabase(t *testing.T) {
	var buf bytes.Buffer
	if err := NewDatabase().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Names()) != 0 {
		t.Fatalf("names = %v", got.Names())
	}
}

func TestSnapshotBadMagic(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("XXXX\x00\x01")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestSnapshotBadVersion(t *testing.T) {
	var buf bytes.Buffer
	_ = NewDatabase().WriteSnapshot(&buf)
	b := buf.Bytes()
	b[4] = 0xFF // clobber version
	if _, err := ReadSnapshot(bytes.NewReader(b)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestSnapshotTruncated(t *testing.T) {
	db := snapshotDB(t)
	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail, never panic or succeed.
	for _, cut := range []int{0, 1, 4, 6, 10, len(full) / 2, len(full) - 1} {
		if cut >= len(full) {
			continue
		}
		if _, err := ReadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncated snapshot at %d accepted", cut)
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	db := snapshotDB(t)
	var a, b bytes.Buffer
	if err := db.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := db.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshots of the same database differ")
	}
}
