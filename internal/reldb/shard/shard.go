// Package shard partitions a database by pivot-key hash into N shards —
// independent reldb.Databases, each with its own writer lock, WAL
// directory, plan cache, delta stream, and labeled metrics slot — and
// coordinates view-object updates across them.
//
// Placement follows the paper's §5 topology: the relations of a view
// object's dependency island (pivot plus forward ownership/subset
// closure) are hash-partitioned by the pivot key, so every row of an
// island instance lives on its pivot's home shard; every other relation
// (peninsulas, referenced relations, anything outside the island) is
// fully replicated on all shards. An update whose translation stays
// inside the island therefore commits on one shard's fast path with no
// coordination at all; a translation that touches a replicated relation
// goes through the cross-shard commit protocol (reldb.PreparedTx) so
// every replica moves in the same atomic step.
//
// The coordinator is optimistic: it first translates on the home shard
// alone and inspects the emitted operations. All-island translations
// commit immediately. Otherwise the local attempt rolls back and the
// update retries globally — every shard's writer is acquired in
// ascending index order (a total order, so concurrent global updates
// cannot deadlock), the translation re-runs on the home shard against
// current data, the non-island operations replay verbatim on every
// other shard, and the whole set commits in two phases: prepare all
// (ascending), wait until every prepare is durable, decide commit on
// all, wait, release (ascending). Crash recovery resolves in-doubt
// prepares at Open: a commit decision replayed on any shard commits the
// xid everywhere, otherwise presumed abort — both-or-neither on every
// shard.
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"penguin/internal/reldb"
	"penguin/internal/viewobject"
	"penguin/internal/vupdate"
)

// Cluster is a set of shard databases and the view objects registered
// over them. Register objects with AddObject before serving traffic;
// the update and read entry points route by the object's pivot key.
type Cluster struct {
	dbs     []*reldb.Database
	objects map[string]*object
	// partitioned records the cluster-wide placement decided by object
	// registration: true = island relation, hash-partitioned; relations
	// absent from the map are replicated. Placement must be consistent
	// across objects (AddObject rejects conflicts).
	partitioned map[string]bool
	// xidNonce + xidSeq generate cluster-unique transaction ids for the
	// cross-shard commit protocol. The nonce keeps ids from colliding
	// with those of earlier incarnations still present in the logs.
	xidNonce uint64
	xidSeq   atomic.Uint64
}

// object is one registered view object: a translator per shard (each
// built over that shard's database) plus routing state.
type object struct {
	name string
	trs  []*vupdate.Translator
	// islandRels are the base relations of the object's dependency
	// island — the partitioned set; operations on any other relation
	// force the cross-shard path.
	islandRels map[string]bool
	// pivotSchema (shard 0's copy) encodes routing keys.
	pivotSchema *reldb.Schema
}

// New assembles a cluster over pre-opened shard databases (ascending
// shard order). The databases must host identical schemas; island
// relations must be partitioned and all others replicated, which is the
// caller's responsibility when loading data (updates preserve it).
func New(dbs []*reldb.Database) (*Cluster, error) {
	if len(dbs) < 1 {
		return nil, errors.New("shard: need at least one database")
	}
	return &Cluster{
		dbs:         dbs,
		objects:     make(map[string]*object),
		partitioned: make(map[string]bool),
		xidNonce:    uint64(time.Now().UnixNano()),
	}, nil
}

// Open opens (or creates) an N-shard durable cluster under dir, one
// subdirectory per shard ("shard-0" ...). Each shard gets opts with a
// shard metrics label and a staggered background-checkpoint phase
// (shard i waits i/N of the interval before its first snapshot, so the
// shards checkpoint in rotation instead of fsyncing simultaneously).
// After every shard replays its log, in-doubt cross-shard prepares are
// resolved cluster-wide: commit if any shard logged the commit
// decision, abort otherwise.
func Open(dir string, n int, opts reldb.OpenOptions) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: invalid shard count %d", n)
	}
	dbs := make([]*reldb.Database, n)
	for i := range dbs {
		o := opts
		o.ShardLabel = fmt.Sprintf("%d", i)
		if o.CheckpointInterval >= 0 && n > 1 {
			every := o.CheckpointInterval
			if every == 0 {
				every = 30 * time.Second
			}
			o.CheckpointPhase = time.Duration(i) * every / time.Duration(n)
		}
		db, err := reldb.OpenDatabaseWith(filepath.Join(dir, fmt.Sprintf("shard-%d", i)), o)
		if err != nil {
			for j := 0; j < i; j++ {
				_ = dbs[j].Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		dbs[i] = db
	}
	c, err := New(dbs)
	if err != nil {
		return nil, err
	}
	if err := c.resolveInDoubt(); err != nil {
		_ = c.Close()
		return nil, err
	}
	return c, nil
}

// resolveInDoubt settles every cross-shard prepare replayed without a
// decision. The commit point of the protocol is the first durable
// decide record, so a commit decision found on any shard means the
// update was (or could have been) acknowledged — it commits everywhere;
// with no decision anywhere, no acknowledgment can exist and the
// prepare aborts (presumed abort).
func (c *Cluster) resolveInDoubt() error {
	for i, db := range c.dbs {
		for _, xid := range db.InDoubt() {
			commit := false
			for _, peer := range c.dbs {
				if dec, known := peer.CrossDecision(xid); known && dec {
					commit = true
					break
				}
			}
			if err := db.ResolveInDoubt(xid, commit); err != nil {
				return fmt.Errorf("shard %d: resolve %s: %w", i, xid, err)
			}
		}
	}
	return nil
}

// N returns the shard count.
func (c *Cluster) N() int { return len(c.dbs) }

// DB returns shard i's database.
func (c *Cluster) DB(i int) *reldb.Database { return c.dbs[i] }

// Databases returns the shard databases in shard order.
func (c *Cluster) Databases() []*reldb.Database { return c.dbs }

// AddObject registers a view object: build is invoked once per shard,
// in shard order, and must create (or re-attach) an identically shaped
// definition plus translator over that shard's database — DDL broadcast
// is simply build running everywhere. The object's dependency island
// becomes (or must match) the cluster's partitioned relation set.
func (c *Cluster) AddObject(name string, build func(shard int, db *reldb.Database) (*vupdate.Translator, error)) error {
	if _, dup := c.objects[name]; dup {
		return fmt.Errorf("shard: object %s already registered", name)
	}
	o := &object{name: name, trs: make([]*vupdate.Translator, len(c.dbs))}
	for i, db := range c.dbs {
		tr, err := build(i, db)
		if err != nil {
			return fmt.Errorf("shard %d: build %s: %w", i, name, err)
		}
		if got := tr.Definition().Graph().Database(); got != db {
			return fmt.Errorf("shard %d: build %s: translator not built over the shard's database", i, name)
		}
		o.trs[i] = tr
	}
	topo := o.trs[0].Topology()
	def := o.trs[0].Definition()
	o.islandRels = make(map[string]bool)
	for _, id := range topo.Island() {
		n, _ := def.Node(id)
		o.islandRels[n.Relation] = true
	}
	// A relation reachable both inside and outside the island would need
	// to be partitioned and replicated at once — no consistent placement.
	for _, id := range topo.NonIsland() {
		n, _ := def.Node(id)
		if o.islandRels[n.Relation] {
			return fmt.Errorf("shard: object %s: relation %s is both island and non-island", name, n.Relation)
		}
	}
	// Placement is cluster-wide: an island relation here must not be a
	// replicated relation of an earlier object, and vice versa.
	for _, n := range def.Nodes() {
		want := o.islandRels[n.Relation]
		if have, seen := c.partitioned[n.Relation]; seen && have != want {
			return fmt.Errorf("shard: object %s: relation %s placement conflicts with an earlier object", name, n.Relation)
		}
	}
	for _, n := range def.Nodes() {
		c.partitioned[n.Relation] = o.islandRels[n.Relation]
	}
	o.pivotSchema = def.NodeSchema(def.Root())
	c.objects[name] = o
	return nil
}

// Object returns the shard-local definition of a registered object on
// shard i (reads against shard i must use its own definition).
func (c *Cluster) Object(name string, i int) (*viewobject.Definition, error) {
	o, err := c.object(name)
	if err != nil {
		return nil, err
	}
	return o.trs[i].Definition(), nil
}

// Updatable reports whether updates may route through the object.
// Every registration carries a translator, but a fully restrictive one
// (no verb allowed) serves reads only — the sharded university uses
// that for ω′, whose paths cross partitioned relations outside its own
// island.
func (c *Cluster) Updatable(name string) bool {
	o, ok := c.objects[name]
	if !ok {
		return false
	}
	t := o.trs[0]
	return t.AllowInsertion || t.AllowDeletion || t.AllowReplacement
}

// Objects returns the registered object names, sorted.
func (c *Cluster) Objects() []string {
	names := make([]string, 0, len(c.objects))
	for n := range c.objects {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (c *Cluster) object(name string) (*object, error) {
	o, ok := c.objects[name]
	if !ok {
		return nil, fmt.Errorf("shard: no such object %s", name)
	}
	return o, nil
}

// HomeOf returns the shard that owns the island of the instance whose
// object key is key (canonical key order).
func (c *Cluster) HomeOf(objName string, key reldb.Tuple) (int, error) {
	o, err := c.object(objName)
	if err != nil {
		return 0, err
	}
	return o.home(key, len(c.dbs))
}

// home hashes the encoded pivot key onto a shard index.
func (o *object) home(key reldb.Tuple, n int) (int, error) {
	enc, err := o.pivotSchema.EncodeKey(key)
	if err != nil {
		return 0, fmt.Errorf("shard: route %s: %w", o.name, err)
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(enc))
	return int(h.Sum64() % uint64(n)), nil
}

// Generations returns each shard's commit generation, in shard order.
func (c *Cluster) Generations() []uint64 {
	gens := make([]uint64, len(c.dbs))
	for i, db := range c.dbs {
		gens[i] = db.Generation()
	}
	return gens
}

// Generation returns the sum of the shard generations — a single
// monotonic commit counter for the cluster (every commit advances at
// least one shard).
func (c *Cluster) Generation() uint64 {
	var sum uint64
	for _, db := range c.dbs {
		sum += db.Generation()
	}
	return sum
}

// TotalRows returns the number of stored tuples across all shards.
// Replicated relations count once per replica.
func (c *Cluster) TotalRows() int {
	total := 0
	for _, db := range c.dbs {
		total += db.TotalRows()
	}
	return total
}

// Close closes every shard database, returning the first error.
func (c *Cluster) Close() error {
	var first error
	for _, db := range c.dbs {
		if err := db.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// nextXid mints a cluster-unique cross-shard transaction id.
func (c *Cluster) nextXid() string {
	return fmt.Sprintf("x%016x-%x", c.xidNonce, c.xidSeq.Add(1))
}
