package shard

import (
	"sort"

	"penguin/internal/reldb"
	"penguin/internal/viewobject"
)

// InstantiateByKey assembles the instance with the given object key by
// reading only its home shard (island rows live there; replicated rows
// are everywhere, so the home snapshot has the whole instance).
func (c *Cluster) InstantiateByKey(objName string, key reldb.Tuple) (*viewobject.Instance, bool, error) {
	o, err := c.object(objName)
	if err != nil {
		return nil, false, err
	}
	home, err := o.home(key, len(c.dbs))
	if err != nil {
		return nil, false, err
	}
	rtx := c.dbs[home].BeginRead()
	defer rtx.Close()
	return viewobject.InstantiateByKey(rtx, o.trs[home].Definition(), key)
}

// Instantiate runs the query on every shard — each against its own
// consistent snapshot — and merges the per-shard results into a single
// pivot-key-ordered list. Island partitioning makes the shard result
// sets disjoint: every instance appears exactly once, on its pivot's
// home shard.
func (c *Cluster) Instantiate(objName string, q viewobject.Query) ([]*viewobject.Instance, error) {
	o, err := c.object(objName)
	if err != nil {
		return nil, err
	}
	type chunk struct {
		insts []*viewobject.Instance
		err   error
	}
	chunks := make([]chunk, len(c.dbs))
	done := make(chan int, len(c.dbs))
	for i := range c.dbs {
		go func(i int) {
			rtx := c.dbs[i].BeginRead()
			defer rtx.Close()
			insts, err := viewobject.Instantiate(rtx, o.trs[i].Definition(), q)
			chunks[i] = chunk{insts: insts, err: err}
			done <- i
		}(i)
	}
	for range c.dbs {
		<-done
	}
	var out []*viewobject.Instance
	for i := range chunks {
		if chunks[i].err != nil {
			return nil, chunks[i].err
		}
		out = append(out, chunks[i].insts...)
	}
	// Per-shard results are already pivot-key ordered; a stable sort on
	// the encoded key merges them deterministically.
	sort.SliceStable(out, func(a, b int) bool {
		return o.pivotSchema.EncodeKeyOf(out[a].Root().Tuple()) <
			o.pivotSchema.EncodeKeyOf(out[b].Root().Tuple())
	})
	return out, nil
}

// rehome rebuilds an instance against another shard's copy of the
// definition (identical shape, distinct pointers — vupdate's instance
// check compares definitions by identity).
func rehome(def *viewobject.Definition, inst *viewobject.Instance) (*viewobject.Instance, error) {
	if inst.Definition() == def {
		return inst, nil
	}
	out, err := viewobject.NewInstance(def, inst.Root().Tuple())
	if err != nil {
		return nil, err
	}
	var walk func(node *viewobject.Node, src, dst *viewobject.InstNode) error
	walk = func(node *viewobject.Node, src, dst *viewobject.InstNode) error {
		for _, child := range node.Children {
			for _, sc := range src.Children(child.ID) {
				dc, err := dst.AddChild(def, child.ID, sc.Tuple())
				if err != nil {
					return err
				}
				if err := walk(child, sc, dc); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(def.Root(), inst.Root(), out.Root()); err != nil {
		return nil, err
	}
	return out, nil
}
