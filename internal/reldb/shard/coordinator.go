package shard

import (
	"errors"
	"fmt"

	"penguin/internal/reldb"
	"penguin/internal/viewobject"
	"penguin/internal/vupdate"
)

// errNeedsGlobal is the internal signal from the optimistic fast path's
// Finish hook: the translation touched a replicated relation, so the
// update must retry under the cross-shard protocol.
var errNeedsGlobal = errors.New("shard: translation left the island")

// DeleteByKey routes a complete deletion (VO-CD) to the pivot key's
// home shard.
func (c *Cluster) DeleteByKey(objName string, key reldb.Tuple) (*vupdate.Result, error) {
	o, err := c.object(objName)
	if err != nil {
		return nil, err
	}
	home, err := o.home(key, len(c.dbs))
	if err != nil {
		return nil, err
	}
	return c.update(o, home, func(u *vupdate.Updater) (*vupdate.Result, error) {
		return u.DeleteByKey(key)
	})
}

// InsertInstance routes a complete insertion (VO-CI) to the instance's
// home shard. The instance may have been built against any shard's copy
// of the definition; it is re-homed before translation.
func (c *Cluster) InsertInstance(objName string, inst *viewobject.Instance) (*vupdate.Result, error) {
	o, err := c.object(objName)
	if err != nil {
		return nil, err
	}
	home, err := o.home(inst.Key(), len(c.dbs))
	if err != nil {
		return nil, err
	}
	homed, err := rehome(o.trs[home].Definition(), inst)
	if err != nil {
		return nil, err
	}
	return c.update(o, home, func(u *vupdate.Updater) (*vupdate.Result, error) {
		return u.InsertInstance(homed)
	})
}

// ReplaceInstance routes a replacement (VO-R) to the old instance's
// home shard. A replacement that would change the pivot key's shard
// (route(new) != route(old)) is rejected: the island would have to
// migrate between shards, which the translation algorithms do not
// express — delete and re-insert instead.
func (c *Cluster) ReplaceInstance(objName string, oldInst, newInst *viewobject.Instance) (*vupdate.Result, error) {
	o, err := c.object(objName)
	if err != nil {
		return nil, err
	}
	home, err := o.home(oldInst.Key(), len(c.dbs))
	if err != nil {
		return nil, err
	}
	newHome, err := o.home(newInst.Key(), len(c.dbs))
	if err != nil {
		return nil, err
	}
	if newHome != home {
		return nil, fmt.Errorf("shard: %s: replacement moves pivot key %s from shard %d to %d: %w",
			objName, newInst.Key(), home, newHome, ErrCrossShardMove)
	}
	oldHomed, err := rehome(o.trs[home].Definition(), oldInst)
	if err != nil {
		return nil, err
	}
	newHomed, err := rehome(o.trs[home].Definition(), newInst)
	if err != nil {
		return nil, err
	}
	return c.update(o, home, func(u *vupdate.Updater) (*vupdate.Result, error) {
		return u.ReplaceInstance(oldHomed, newHomed)
	})
}

// ErrCrossShardMove rejects replacements that re-route the pivot key.
var ErrCrossShardMove = errors.New("pivot key would change home shard")

// update runs one view-object update through the coordinator: an
// optimistic home-shard-only attempt first, then — if the translation
// emitted operations on replicated relations — a global retry under
// every shard's writer lock with a two-phase commit.
func (c *Cluster) update(o *object, home int, call func(*vupdate.Updater) (*vupdate.Result, error)) (*vupdate.Result, error) {
	// Fast path: translate with only the home writer held. If every
	// emitted operation stays inside the (hash-partitioned) island the
	// commit is purely local; otherwise roll back and signal the retry.
	u := &vupdate.Updater{T: o.trs[home], Hooks: &vupdate.TxHooks{
		Begin: func() (*reldb.Tx, error) { return c.dbs[home].Begin(), nil },
		Finish: func(tx *reldb.Tx, ops []vupdate.DBOp) error {
			if allIsland(o, ops) {
				return tx.Commit()
			}
			_ = tx.Rollback()
			return errNeedsGlobal
		},
	}}
	res, err := call(u)
	if err == nil || !errors.Is(err, errNeedsGlobal) {
		return res, err
	}
	return c.updateGlobal(o, home, call)
}

// updateGlobal is the cross-shard path: acquire every shard's writer in
// ascending order (a total order — concurrent global updates cannot
// deadlock), re-translate on the home shard, replay the non-island
// operations on every replica, and commit the participating shards with
// the two-phase protocol.
func (c *Cluster) updateGlobal(o *object, home int, call func(*vupdate.Updater) (*vupdate.Result, error)) (*vupdate.Result, error) {
	txs := make([]*reldb.Tx, len(c.dbs))
	for i := range txs {
		txs[i] = c.dbs[i].Begin()
	}
	inFinish := false
	u := &vupdate.Updater{T: o.trs[home], Hooks: &vupdate.TxHooks{
		Begin: func() (*reldb.Tx, error) { return txs[home], nil },
		Finish: func(tx *reldb.Tx, ops []vupdate.DBOp) error {
			inFinish = true
			return c.commitGlobal(o, home, txs, ops)
		},
	}}
	res, err := call(u)
	if err != nil && !inFinish {
		// Translation failed before the commit protocol started: run
		// already rolled back the home transaction; release the others.
		for i, tx := range txs {
			if i != home {
				_ = tx.Rollback()
			}
		}
	}
	return res, err
}

// commitGlobal finishes a global update: replays the non-island
// operations on every non-home shard, then runs the two-phase commit
// over the shards that have work. It owns every transaction in txs —
// on any error each one has been committed, aborted, or rolled back.
func (c *Cluster) commitGlobal(o *object, home int, txs []*reldb.Tx, ops []vupdate.DBOp) error {
	rollbackAll := func() {
		for _, tx := range txs {
			if tx != nil {
				_ = tx.Rollback()
			}
		}
	}
	replicated := 0
	for i, tx := range txs {
		if i == home {
			continue
		}
		for _, op := range ops {
			if o.islandRels[op.Relation] {
				continue
			}
			if err := replay(tx, op); err != nil {
				rollbackAll()
				return fmt.Errorf("shard %d: replay %s: %w", i, op, err)
			}
			replicated++
		}
	}
	if replicated == 0 {
		// Degenerate global retry (the second translation stayed inside
		// the island): a plain local commit suffices.
		for i, tx := range txs {
			if i != home {
				_ = tx.Rollback()
			}
		}
		return txs[home].Commit()
	}

	// Participants: every shard whose transaction changed anything. The
	// home shard always participates; a replica with zero replayed
	// operations (possible only when ops was entirely island-local,
	// handled above) would be released without preparing.
	parts := make([]int, 0, len(txs))
	for i, tx := range txs {
		if i == home || tx.OpCount() > 0 {
			parts = append(parts, i)
		}
	}
	for i, tx := range txs {
		if tx.OpCount() == 0 && i != home {
			_ = tx.Rollback()
			txs[i] = nil
		}
	}

	// Two-phase commit: prepare ascending, all prepares durable before
	// the first decision, decide, all decisions durable, release
	// ascending. The decision point of the whole update is the first
	// durable decide record; recovery commits an in-doubt prepare iff
	// some shard holds a commit decision (shard.go, resolveInDoubt).
	xid := c.nextXid()
	preps := make([]*reldb.PreparedTx, 0, len(parts))
	for _, i := range parts {
		p, err := txs[i].Prepare(xid, parts)
		if err != nil {
			// Prepare's failure path already unwound its own transaction;
			// abort the prepared prefix and roll back the unprepared rest
			// (Rollback on the failed one is a no-op, it is done).
			for _, q := range preps {
				_ = q.Abort()
			}
			for _, j := range parts {
				if txs[j] != nil {
					_ = txs[j].Rollback()
				}
			}
			return fmt.Errorf("shard %d: prepare: %w", i, err)
		}
		txs[i] = nil // owned by the PreparedTx now
		preps = append(preps, p)
	}
	for _, p := range preps {
		if err := p.WaitPrepared(); err != nil {
			for _, q := range preps {
				_ = q.Abort()
			}
			return fmt.Errorf("shard: prepare not durable: %w", err)
		}
	}
	var warn error
	for _, p := range preps {
		if err := p.CommitDecided(); err != nil && warn == nil {
			warn = err
		}
	}
	for _, p := range preps {
		if err := p.WaitDecided(); err != nil && warn == nil {
			warn = err
		}
	}
	for _, p := range preps {
		p.Release()
	}
	return warn
}

// replay applies one translated operation verbatim to a replica shard's
// transaction.
func replay(tx *reldb.Tx, op vupdate.DBOp) error {
	switch op.Kind {
	case vupdate.OpInsert:
		return tx.Insert(op.Relation, op.Tuple)
	case vupdate.OpDelete:
		_, err := tx.Delete(op.Relation, op.Key)
		return err
	case vupdate.OpReplace:
		_, err := tx.Replace(op.Relation, op.Key, op.Tuple)
		return err
	default:
		return fmt.Errorf("shard: unknown op kind %v", op.Kind)
	}
}

// allIsland reports whether every operation targets a partitioned
// (island) relation.
func allIsland(o *object, ops []vupdate.DBOp) bool {
	for _, op := range ops {
		if !o.islandRels[op.Relation] {
			return false
		}
	}
	return true
}
