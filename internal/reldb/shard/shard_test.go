package shard_test

// The shard package is tested through the workload generator (which
// lives above it in the dependency order): internal/workload's sharded
// stress, crash, and benchmark suites drive Cluster end to end. The
// tests here pin the cluster-level invariants that need no workload:
// routing determinism and placement-conflict rejection.

import (
	"fmt"
	"testing"

	"penguin/internal/reldb"
	"penguin/internal/reldb/shard"
	"penguin/internal/structural"
	"penguin/internal/viewobject"
	"penguin/internal/vupdate"
)

// miniObject builds a two-relation object (pivot R owning C) over db.
func miniObject(db *reldb.Database) (*vupdate.Translator, error) {
	if !db.HasRelation("R") {
		db.MustCreateRelation(reldb.MustSchema("R", []reldb.Attribute{
			{Name: "K", Type: reldb.KindInt},
			{Name: "V", Type: reldb.KindString, Nullable: true},
		}, []string{"K"}))
		db.MustCreateRelation(reldb.MustSchema("C", []reldb.Attribute{
			{Name: "K", Type: reldb.KindInt},
			{Name: "N", Type: reldb.KindInt},
		}, []string{"K", "N"}))
	}
	g := structural.NewGraph(db)
	conn := &structural.Connection{
		Name: "R>C", Type: structural.Ownership,
		From: "R", To: "C", FromAttrs: []string{"K"}, ToAttrs: []string{"K"},
	}
	if err := g.AddConnection(conn); err != nil {
		return nil, err
	}
	def, err := viewobject.NewDefinition("mini", g, &viewobject.Node{
		Relation: "R",
		Children: []*viewobject.Node{{
			Relation: "C",
			Path:     []structural.Edge{{Conn: conn, Forward: true}},
		}},
	})
	if err != nil {
		return nil, err
	}
	return vupdate.PermissiveTranslator(def), nil
}

func newMiniCluster(t *testing.T, n int) *shard.Cluster {
	t.Helper()
	dbs := make([]*reldb.Database, n)
	for i := range dbs {
		dbs[i] = reldb.NewDatabase()
	}
	c, err := shard.New(dbs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddObject("mini", func(_ int, db *reldb.Database) (*vupdate.Translator, error) {
		return miniObject(db)
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRoutingDeterministic pins that a key always routes to the same
// shard and that the population spreads over all shards.
func TestRoutingDeterministic(t *testing.T) {
	c := newMiniCluster(t, 4)
	seen := make(map[int]int)
	for k := 0; k < 256; k++ {
		key := reldb.Tuple{reldb.Int(int64(k))}
		h1, err := c.HomeOf("mini", key)
		if err != nil {
			t.Fatal(err)
		}
		h2, _ := c.HomeOf("mini", key)
		if h1 != h2 {
			t.Fatalf("key %d routed to %d then %d", k, h1, h2)
		}
		if h1 < 0 || h1 >= 4 {
			t.Fatalf("key %d routed off-cluster: %d", k, h1)
		}
		seen[h1]++
	}
	for s := 0; s < 4; s++ {
		if seen[s] == 0 {
			t.Fatalf("no key of 256 routed to shard %d: %v", s, seen)
		}
	}
}

// TestFastPathLocalCommit: an all-island update advances only the home
// shard's generation.
func TestFastPathLocalCommit(t *testing.T) {
	c := newMiniCluster(t, 2)
	def, err := c.Object("mini", 0)
	if err != nil {
		t.Fatal(err)
	}
	key := reldb.Tuple{reldb.Int(7)}
	home, _ := c.HomeOf("mini", key)
	inst := viewobject.MustNewInstance(def, reldb.Tuple{reldb.Int(7), reldb.String("v")})
	inst.Root().MustAddChild(def, "C", reldb.Tuple{reldb.Int(7), reldb.Int(1)})

	gensBefore := c.Generations()
	if _, err := c.InsertInstance("mini", inst); err != nil {
		t.Fatal(err)
	}
	gensAfter := c.Generations()
	for i := range gensAfter {
		want := gensBefore[i]
		if i == home {
			want++
		}
		if gensAfter[i] != want {
			t.Fatalf("shard %d generation %d -> %d (home=%d)", i, gensBefore[i], gensAfter[i], home)
		}
	}

	// The instance reads back from its home shard only.
	got, ok, err := c.InstantiateByKey("mini", key)
	if err != nil || !ok {
		t.Fatalf("read back: ok=%v err=%v", ok, err)
	}
	if got.Count("C") != 1 {
		t.Fatalf("child count %d, want 1", got.Count("C"))
	}
	other := c.DB(1 - home)
	if n, _ := other.Relation("R"); n.Count() != 0 {
		t.Fatalf("island row leaked to shard %d", 1-home)
	}
}

// TestCrossShardMoveRejected: a replacement that re-routes the pivot
// key is refused with ErrCrossShardMove.
func TestCrossShardMoveRejected(t *testing.T) {
	c := newMiniCluster(t, 4)
	def, _ := c.Object("mini", 0)
	// Find two keys with different homes.
	var kOld, kNew int64 = -1, -1
	h0, _ := c.HomeOf("mini", reldb.Tuple{reldb.Int(0)})
	kOld = 0
	for k := int64(1); k < 64; k++ {
		if h, _ := c.HomeOf("mini", reldb.Tuple{reldb.Int(k)}); h != h0 {
			kNew = k
			break
		}
	}
	if kNew < 0 {
		t.Fatal("could not find keys with distinct homes")
	}
	oldInst := viewobject.MustNewInstance(def, reldb.Tuple{reldb.Int(kOld), reldb.String("v")})
	newInst := viewobject.MustNewInstance(def, reldb.Tuple{reldb.Int(kNew), reldb.String("v")})
	if _, err := c.ReplaceInstance("mini", oldInst, newInst); err == nil {
		t.Fatal("cross-shard pivot move accepted")
	} else if got := fmt.Sprintf("%v", err); got == "" {
		t.Fatal("empty error")
	}
}

// TestPlacementConflictRejected: registering an object whose island
// claims a relation an earlier object replicated (or vice versa) fails.
func TestPlacementConflictRejected(t *testing.T) {
	c := newMiniCluster(t, 2)
	// A second object whose pivot is C and which references R would make
	// R a peninsula (replicated) — but R is already partitioned.
	err := c.AddObject("conflict", func(_ int, db *reldb.Database) (*vupdate.Translator, error) {
		g := structural.NewGraph(db)
		conn := &structural.Connection{
			Name: "R->C.ref", Type: structural.Reference,
			From: "R", To: "C", FromAttrs: []string{"K"}, ToAttrs: []string{"K"},
		}
		if err := g.AddConnection(conn); err != nil {
			return nil, err
		}
		def, err := viewobject.NewDefinition("conflict", g, &viewobject.Node{
			Relation: "C",
			Children: []*viewobject.Node{{
				Relation: "R",
				Path:     []structural.Edge{{Conn: conn, Forward: false}},
			}},
		})
		if err != nil {
			return nil, err
		}
		return vupdate.PermissiveTranslator(def), nil
	})
	if err == nil {
		t.Fatal("conflicting placement accepted")
	}
}
