package reldb

import (
	"strings"
)

// Tuple is an ordered list of values matching a schema's attributes.
// Tuples are treated as immutable by the engine: mutating operations
// always work on copies.
type Tuple []Value

// Clone returns a deep copy of the tuple (values are immutable, so a
// shallow copy of the slice suffices).
func (t Tuple) Clone() Tuple {
	if t == nil {
		return nil
	}
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports whether two tuples have the same arity and pairwise equal
// values (null equals null).
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Project extracts the values at the given indices, in order.
func (t Tuple) Project(idx []int) Tuple {
	p := make(Tuple, len(idx))
	for i, j := range idx {
		p[i] = t[j]
	}
	return p
}

// With returns a copy of t with position i replaced by v.
func (t Tuple) With(i int, v Value) Tuple {
	c := t.Clone()
	c[i] = v
	return c
}

// Concat returns the concatenation of t and u as a new tuple.
func (t Tuple) Concat(u Tuple) Tuple {
	c := make(Tuple, 0, len(t)+len(u))
	c = append(c, t...)
	c = append(c, u...)
	return c
}

// Encode returns the order-preserving encoding of the whole tuple.
func (t Tuple) Encode() string { return EncodeValues(t...) }

// String renders the tuple as ⟨v1, v2, ...⟩ for diagnostics and figures.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Row pairs a tuple with its schema, giving name-based access. It is the
// unit query plans pass between operators.
type Row struct {
	Schema *Schema
	Tuple  Tuple
}

// Get returns the value of the named attribute.
func (r Row) Get(name string) (Value, bool) {
	i, ok := r.Schema.AttrIndex(name)
	if !ok {
		return Null(), false
	}
	return r.Tuple[i], true
}

// MustGet returns the value of the named attribute, panicking if absent.
func (r Row) MustGet(name string) Value {
	v, ok := r.Get(name)
	if !ok {
		panic("reldb: row has no attribute " + name)
	}
	return v
}

// TupleOf builds a tuple for schema s from a name→value map. Attributes
// absent from the map are null. Unknown names are an error surfaced via
// CheckTuple by the caller; here they are ignored to keep construction
// composable.
func TupleOf(s *Schema, vals map[string]Value) Tuple {
	t := make(Tuple, s.Arity())
	for name, v := range vals {
		if i, ok := s.AttrIndex(name); ok {
			t[i] = v
		}
	}
	return t
}
