// The per-commit delta stream: every generation advance publishes an
// ordered record of the net tuple changes to registered subscribers.
// Subscribers are queue-buffered with drop-to-resync semantics — a slow
// consumer loses history and is told so, it never blocks the writer.
//
// Ordering and atomicity guarantees:
//
//   - One DeltaBatch per generation advance, published inside the same
//     critical section (db.mu) that makes the generation visible. A
//     ReadTx that pins generation G is therefore guaranteed that every
//     batch with Gen <= G has already been pushed to every subscription
//     that existed when G committed.
//   - Subscribe registers under the same lock, pinning StartGen to a
//     generation boundary: a subscriber sees a commit entirely or not at
//     all, never a torn prefix, and the batches it receives are exactly
//     the consecutive generations StartGen+1, StartGen+2, ... (until an
//     overflow drops history). Registration during an in-flight write
//     transaction pins StartGen past its commit — ops capture no
//     changelog while nobody subscribes, so that commit's batch may be
//     partial and is withheld rather than delivered torn.
//   - Within a batch, deltas are ordered by relation name and tuples by
//     encoded primary key, so equal states produce equal streams.
//
// The changelog is net-effect per primary key: an insert followed by a
// delete of the same key inside one transaction cancels out, an insert
// followed by replaces collapses into one insert of the final image, and
// a key-changing replace appears as a delete of the old key plus an
// insert of the new one.
package reldb

import (
	"sort"
	"sync"

	"penguin/internal/obs"
)

// TupleChange is one same-key replacement: the stored image before and
// after the commit.
type TupleChange struct {
	Old, New Tuple
}

// Delta is the net change one commit applied to one relation.
type Delta struct {
	// Gen is the generation the commit produced.
	Gen uint64
	// Relation names the changed relation.
	Relation string
	// Structural marks relation-level DDL (CreateRelation/DropRelation):
	// the tuple slices are empty and consumers that cached plans or
	// instances over the relation must re-derive them.
	Structural bool
	// Inserts, Deletes, Replaces carry the net tuple changes in encoded
	// primary-key order. Stored images are shared with the committed
	// relation versions and must not be mutated.
	Inserts  []Tuple
	Deletes  []Tuple
	Replaces []TupleChange
}

// DeltaBatch is everything one generation advance changed: one Delta per
// touched relation, ordered by relation name. Deltas may be empty (a
// commit whose net effect cancelled out still advances the generation).
type DeltaBatch struct {
	Gen    uint64
	Deltas []Delta
}

// DefaultDeltaBuffer is the subscription queue capacity used when
// Subscribe is called with a non-positive buffer size.
const DefaultDeltaBuffer = 256

// Subscription is one registered consumer of the delta stream. Poll
// drains the queued batches; when the writer outran the consumer the
// queue is dropped wholesale and the next Poll reports lost=true, telling
// the consumer to resynchronize from a fresh snapshot.
type Subscription struct {
	db       *Database
	startGen uint64

	mu     sync.Mutex
	queue  []DeltaBatch
	cap    int
	lost   bool
	closed bool
}

// Subscribe registers a delta consumer with the given queue capacity
// (DefaultDeltaBuffer when buffer <= 0). Registration is pinned to a
// generation boundary: it cannot interleave with a commit's publish, so
// the subscription's StartGen is a state the consumer can load with a
// ReadTx, after which the stream delivers exactly the generations
// StartGen+1, StartGen+2, ... in order. Registering while a write
// transaction is in flight pins StartGen past that transaction's commit:
// its changelog may predate the subscription (ops skip capture while
// nobody subscribes), so its batch is withheld and the stream starts at
// the next commit. A consumer whose loaded snapshot is older than
// StartGen must resynchronize once the generation moves.
func (db *Database) Subscribe(buffer int) *Subscription {
	if buffer <= 0 {
		buffer = DefaultDeltaBuffer
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	startGen := db.gen
	if db.writing {
		startGen++
	}
	s := &Subscription{db: db, cap: buffer, startGen: startGen}
	db.subs = append(db.subs, s)
	db.nsubs.Add(1)
	obs.Default.DeltaSubscribes.Inc()
	return s
}

// StartGen returns the committed generation the subscription was pinned
// at: the first batch delivered (absent overflow) has Gen StartGen+1.
func (s *Subscription) StartGen() uint64 { return s.startGen }

// Poll drains and returns the queued batches, in publish order. lost
// reports that the queue overflowed since the previous Poll: batches were
// dropped and the consumer must resync from a fresh snapshot (the batches
// returned alongside lost=true are the post-overflow suffix). Polling
// clears the lost flag.
func (s *Subscription) Poll() (batches []DeltaBatch, lost bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	batches, s.queue = s.queue, nil
	lost, s.lost = s.lost, false
	return batches, lost
}

// Close unregisters the subscription; further publishes are not queued.
// Closing is idempotent.
func (s *Subscription) Close() {
	s.db.mu.Lock()
	for i, x := range s.db.subs {
		if x == s {
			s.db.subs = append(s.db.subs[:i], s.db.subs[i+1:]...)
			s.db.nsubs.Add(-1)
			break
		}
	}
	s.db.mu.Unlock()
	s.mu.Lock()
	s.closed = true
	s.queue = nil
	s.mu.Unlock()
}

// push enqueues a batch, dropping the whole queue to resync when full.
// Called with db.mu held, so pushes are ordered by generation.
func (s *Subscription) push(b DeltaBatch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if len(s.queue) >= s.cap {
		s.queue = s.queue[:0]
		s.lost = true
		obs.Default.DeltaOverflows.Inc()
		return
	}
	s.queue = append(s.queue, b)
}

// publishLocked pushes a batch to every subscription registered before
// the batch's generation. The caller holds db.mu exclusively, in the same
// critical section that advanced db.gen — that pairing is what makes the
// stream gap-free and untearable. Subscriptions whose StartGen is at or
// past the batch (registered mid-transaction, so the changelog may be
// missing ops that ran before anyone subscribed) are skipped: they are
// promised exactly the generations after StartGen, never a torn batch.
func (db *Database) publishLocked(b DeltaBatch) {
	if len(db.subs) == 0 {
		return
	}
	obs.Default.DeltaPublishes.Inc()
	for _, s := range db.subs {
		if b.Gen <= s.startGen {
			continue
		}
		s.push(b)
	}
}

// structuralBatchLocked publishes a relation-level DDL event for the
// generation just advanced. Called with db.mu held.
func (db *Database) structuralBatchLocked(relName string) {
	if len(db.subs) == 0 {
		return
	}
	db.publishLocked(DeltaBatch{
		Gen:    db.gen,
		Deltas: []Delta{{Gen: db.gen, Relation: relName, Structural: true}},
	})
}

// txChange is the per-key changelog entry a transaction accumulates:
// the stored image before the transaction first touched the key and the
// image it left behind (nil on either side for absent).
type txChange struct {
	before, after Tuple
}

// capturing reports whether write ops must feed the changelog: some
// delta subscriber is registered, or the database is durable and every
// commit's net effect must reach the write-ahead log. With neither, the
// hot path skips capture entirely — key encoding, cloning, and the
// changelog maps all cost nothing. A subscriber that registers after an
// op skipped capture cannot be torn by the gap: Subscribe pins its
// StartGen past the in-flight commit, whose batch is then withheld from
// it (publishLocked).
func (tx *Tx) capturing() bool { return tx.db.nsubs.Load() > 0 || tx.db.wal != nil }

// note records that a transaction op left the stored image of (relName,
// ek) as after. The before image is captured only on the first touch of
// the key — later ops only move the after side, so the entry always spans
// from the committed state to the transaction's final state. The before
// image is cloned: Delete hands the stored tuple to its caller and
// Replace leaves the changelog as its only holder, so the entry must own
// a private copy.
func (tx *Tx) note(relName, ek string, before, after Tuple) {
	if tx.changes == nil {
		tx.changes = make(map[string]map[string]*txChange)
	}
	m := tx.changes[relName]
	if m == nil {
		m = make(map[string]*txChange)
		tx.changes[relName] = m
	}
	if e, ok := m[ek]; ok {
		e.after = after
		return
	}
	if before != nil {
		before = before.Clone()
	}
	m[ek] = &txChange{before: before, after: after}
}

// buildBatch classifies the transaction's changelog into the net-effect
// DeltaBatch to publish. Gen fields are stamped at publish time, when the
// new generation number is known.
func (tx *Tx) buildBatch() DeltaBatch {
	names := make([]string, 0, len(tx.written))
	for n := range tx.written {
		names = append(names, n)
	}
	sort.Strings(names)
	var b DeltaBatch
	for _, name := range names {
		m := tx.changes[name]
		eks := make([]string, 0, len(m))
		for ek := range m {
			eks = append(eks, ek)
		}
		sort.Strings(eks)
		d := Delta{Relation: name}
		for _, ek := range eks {
			e := m[ek]
			switch {
			case e.before == nil && e.after != nil:
				d.Inserts = append(d.Inserts, e.after)
			case e.before != nil && e.after == nil:
				d.Deletes = append(d.Deletes, e.before)
			case e.before != nil && e.after != nil && !e.before.Equal(e.after):
				d.Replaces = append(d.Replaces, TupleChange{Old: e.before, New: e.after})
			}
		}
		if len(d.Inserts)+len(d.Deletes)+len(d.Replaces) > 0 {
			b.Deltas = append(b.Deltas, d)
		}
	}
	return b
}
