package reldb

import (
	"fmt"
	"strings"
	"testing"
)

// testDB builds a two-relation database:
//
//	COURSES(CourseID, Title, Dept, Units)
//	GRADES(CourseID, PID, Grade)
func testDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	courses := db.MustCreateRelation(MustSchema("COURSES", []Attribute{
		{Name: "CourseID", Type: KindString},
		{Name: "Title", Type: KindString, Nullable: true},
		{Name: "Dept", Type: KindString, Nullable: true},
		{Name: "Units", Type: KindInt, Nullable: true},
	}, []string{"CourseID"}))
	grades := db.MustCreateRelation(MustSchema("GRADES", []Attribute{
		{Name: "CourseID", Type: KindString},
		{Name: "PID", Type: KindInt},
		{Name: "Grade", Type: KindString, Nullable: true},
	}, []string{"CourseID", "PID"}))
	for _, c := range []struct {
		id, title, dept string
		units           int64
	}{
		{"CS101", "Intro CS", "CS", 3},
		{"CS345", "Databases", "CS", 4},
		{"EE201", "Circuits", "EE", 3},
		{"ME301", "Dynamics", "ME", 4},
	} {
		if err := courses.Insert(Tuple{String(c.id), String(c.title), String(c.dept), Int(c.units)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, g := range []struct {
		id    string
		pid   int64
		grade string
	}{
		{"CS101", 1, "A"}, {"CS101", 2, "B"}, {"CS101", 3, "A"},
		{"CS345", 1, "B"}, {"CS345", 4, "C"},
		{"EE201", 2, "A"},
	} {
		if err := grades.Insert(Tuple{String(g.id), Int(g.pid), String(g.grade)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func run(t *testing.T, p Plan) *ResultSet {
	t.Helper()
	rs, err := p.Run()
	if err != nil {
		t.Fatalf("plan failed: %v", err)
	}
	return rs
}

func TestScanAndSelect(t *testing.T) {
	db := testDB(t)
	courses := db.MustRelation("COURSES")
	rs := run(t, ScanPlan{courses})
	if rs.Len() != 4 {
		t.Fatalf("scan = %d rows", rs.Len())
	}
	rs = run(t, SelectPlan{ScanPlan{courses}, Eq("Dept", String("CS"))})
	if rs.Len() != 2 {
		t.Fatalf("select = %d rows", rs.Len())
	}
	rs = run(t, SelectPlan{ScanPlan{courses}, nil})
	if rs.Len() != 4 {
		t.Fatalf("select nil pred = %d rows", rs.Len())
	}
	if _, err := (SelectPlan{ScanPlan{courses}, Eq("Nope", Int(1))}).Run(); err == nil {
		t.Fatal("select with bad predicate should fail")
	}
}

func TestProject(t *testing.T) {
	db := testDB(t)
	courses := db.MustRelation("COURSES")
	rs := run(t, ProjectPlan{ScanPlan{courses}, []string{"Dept", "CourseID"}})
	if rs.Schema.Arity() != 2 {
		t.Fatalf("projected arity = %d", rs.Schema.Arity())
	}
	if rs.Row(0).MustGet("Dept").IsNull() {
		t.Fatal("projection lost values")
	}
	if _, err := (ProjectPlan{ScanPlan{courses}, []string{"Nope"}}).Run(); err == nil {
		t.Fatal("projecting unknown attr should fail")
	}
}

func TestJoin(t *testing.T) {
	db := testDB(t)
	p := JoinPlan{
		Left:       ScanPlan{db.MustRelation("COURSES")},
		Right:      ScanPlan{db.MustRelation("GRADES")},
		LeftAttrs:  []string{"CourseID"},
		RightAttrs: []string{"CourseID"},
	}
	rs := run(t, p)
	if rs.Len() != 6 {
		t.Fatalf("join = %d rows, want 6", rs.Len())
	}
	// Qualified attribute names.
	if _, ok := rs.Schema.AttrIndex("COURSES.CourseID"); !ok {
		t.Fatalf("joined schema missing COURSES.CourseID: %v", rs.Schema.AttrNames())
	}
	if _, ok := rs.Schema.AttrIndex("GRADES.Grade"); !ok {
		t.Fatal("joined schema missing GRADES.Grade")
	}
	// Every row has matching course ids on both sides.
	for i := 0; i < rs.Len(); i++ {
		row := rs.Row(i)
		if !row.MustGet("COURSES.CourseID").Equal(row.MustGet("GRADES.CourseID")) {
			t.Fatal("join produced non-matching row")
		}
	}
}

func TestOuterJoin(t *testing.T) {
	db := testDB(t)
	p := JoinPlan{
		Left:       ScanPlan{db.MustRelation("COURSES")},
		Right:      ScanPlan{db.MustRelation("GRADES")},
		LeftAttrs:  []string{"CourseID"},
		RightAttrs: []string{"CourseID"},
		Outer:      true,
	}
	rs := run(t, p)
	// ME301 has no grades: 6 matched + 1 null-padded.
	if rs.Len() != 7 {
		t.Fatalf("outer join = %d rows, want 7", rs.Len())
	}
	nullPadded := 0
	for i := 0; i < rs.Len(); i++ {
		if rs.Row(i).MustGet("GRADES.CourseID").IsNull() {
			nullPadded++
			if got := rs.Row(i).MustGet("COURSES.CourseID").MustString(); got != "ME301" {
				t.Fatalf("null-padded row for %s", got)
			}
		}
	}
	if nullPadded != 1 {
		t.Fatalf("null-padded rows = %d", nullPadded)
	}
}

func TestJoinNullKeysDoNotMatch(t *testing.T) {
	db := NewDatabase()
	l := db.MustCreateRelation(MustSchema("L", []Attribute{
		{Name: "ID", Type: KindInt},
		{Name: "FK", Type: KindInt, Nullable: true},
	}, []string{"ID"}))
	r := db.MustCreateRelation(MustSchema("R", []Attribute{
		{Name: "K", Type: KindInt},
	}, []string{"K"}))
	_ = l.Insert(Tuple{Int(1), Int(7)})
	_ = l.Insert(Tuple{Int(2), Null()})
	_ = r.Insert(Tuple{Int(7)})
	inner := run(t, JoinPlan{Left: ScanPlan{l}, Right: ScanPlan{r},
		LeftAttrs: []string{"FK"}, RightAttrs: []string{"K"}})
	if inner.Len() != 1 {
		t.Fatalf("inner join with null key = %d rows, want 1", inner.Len())
	}
	outer := run(t, JoinPlan{Left: ScanPlan{l}, Right: ScanPlan{r},
		LeftAttrs: []string{"FK"}, RightAttrs: []string{"K"}, Outer: true})
	if outer.Len() != 2 {
		t.Fatalf("outer join with null key = %d rows, want 2", outer.Len())
	}
}

func TestJoinArityMismatch(t *testing.T) {
	db := testDB(t)
	p := JoinPlan{
		Left:       ScanPlan{db.MustRelation("COURSES")},
		Right:      ScanPlan{db.MustRelation("GRADES")},
		LeftAttrs:  []string{"CourseID"},
		RightAttrs: []string{"CourseID", "PID"},
	}
	if _, err := p.Run(); err == nil {
		t.Fatal("mismatched join attrs should fail")
	}
}

func TestSort(t *testing.T) {
	db := testDB(t)
	courses := db.MustRelation("COURSES")
	rs := run(t, SortPlan{Input: ScanPlan{courses}, By: []string{"Units", "CourseID"}})
	var got []string
	for i := 0; i < rs.Len(); i++ {
		got = append(got, rs.Row(i).MustGet("CourseID").MustString())
	}
	want := "CS101,EE201,CS345,ME301"
	if strings.Join(got, ",") != want {
		t.Fatalf("sort order = %v, want %s", got, want)
	}
	rs = run(t, SortPlan{Input: ScanPlan{courses}, By: []string{"Units", "CourseID"}, Desc: true})
	if first := rs.Row(0).MustGet("CourseID").MustString(); first != "ME301" {
		t.Fatalf("desc first = %s", first)
	}
	if _, err := (SortPlan{Input: ScanPlan{courses}, By: []string{"Nope"}}).Run(); err == nil {
		t.Fatal("sort by unknown attr should fail")
	}
}

func TestDistinct(t *testing.T) {
	db := testDB(t)
	p := DistinctPlan{ProjectPlan{ScanPlan{db.MustRelation("COURSES")}, []string{"Dept"}}}
	rs := run(t, p)
	if rs.Len() != 3 {
		t.Fatalf("distinct depts = %d, want 3", rs.Len())
	}
}

func TestLimit(t *testing.T) {
	db := testDB(t)
	rs := run(t, LimitPlan{ScanPlan{db.MustRelation("COURSES")}, 2})
	if rs.Len() != 2 {
		t.Fatalf("limit = %d", rs.Len())
	}
	rs = run(t, LimitPlan{ScanPlan{db.MustRelation("COURSES")}, 100})
	if rs.Len() != 4 {
		t.Fatalf("limit beyond size = %d", rs.Len())
	}
}

func TestAggregateGrouped(t *testing.T) {
	db := testDB(t)
	p := AggregatePlan{
		Input:   ScanPlan{db.MustRelation("GRADES")},
		GroupBy: []string{"CourseID"},
		Aggs:    []AggSpec{{Func: AggCount, As: "n"}},
	}
	rs := run(t, p)
	counts := map[string]int64{}
	for i := 0; i < rs.Len(); i++ {
		row := rs.Row(i)
		counts[row.MustGet("CourseID").MustString()] = row.MustGet("n").MustInt()
	}
	want := map[string]int64{"CS101": 3, "CS345": 2, "EE201": 1}
	for k, v := range want {
		if counts[k] != v {
			t.Fatalf("count[%s] = %d, want %d (all: %v)", k, counts[k], v, counts)
		}
	}
}

func TestAggregateGlobal(t *testing.T) {
	db := testDB(t)
	p := AggregatePlan{
		Input: ScanPlan{db.MustRelation("COURSES")},
		Aggs: []AggSpec{
			{Func: AggCount, As: "n"},
			{Func: AggSum, Attr: "Units", As: "total"},
			{Func: AggMin, Attr: "Units", As: "lo"},
			{Func: AggMax, Attr: "Units", As: "hi"},
			{Func: AggAvg, Attr: "Units", As: "mean"},
		},
	}
	rs := run(t, p)
	if rs.Len() != 1 {
		t.Fatalf("global aggregate rows = %d", rs.Len())
	}
	row := rs.Row(0)
	if n := row.MustGet("n").MustInt(); n != 4 {
		t.Fatalf("count = %d", n)
	}
	if tot, _ := row.MustGet("total").AsInt(); tot != 14 {
		t.Fatalf("sum = %v", row.MustGet("total"))
	}
	if lo, _ := row.MustGet("lo").AsInt(); lo != 3 {
		t.Fatalf("min = %v", row.MustGet("lo"))
	}
	if hi, _ := row.MustGet("hi").AsInt(); hi != 4 {
		t.Fatalf("max = %v", row.MustGet("hi"))
	}
	if mean, _ := row.MustGet("mean").AsFloat(); mean != 3.5 {
		t.Fatalf("avg = %v", row.MustGet("mean"))
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	db := NewDatabase()
	r := db.MustCreateRelation(MustSchema("E", []Attribute{
		{Name: "A", Type: KindInt},
	}, []string{"A"}))
	p := AggregatePlan{
		Input: ScanPlan{r},
		Aggs: []AggSpec{
			{Func: AggCount, As: "n"},
			{Func: AggSum, Attr: "A", As: "s"},
			{Func: AggAvg, Attr: "A", As: "m"},
		},
	}
	rs := run(t, p)
	if rs.Len() != 1 {
		t.Fatalf("empty aggregate rows = %d, want 1", rs.Len())
	}
	row := rs.Row(0)
	if n := row.MustGet("n").MustInt(); n != 0 {
		t.Fatalf("count over empty = %d", n)
	}
	if !row.MustGet("s").IsNull() {
		t.Fatal("sum over empty should be null")
	}
	if !row.MustGet("m").IsNull() {
		t.Fatal("avg over empty should be null")
	}
	// Grouped aggregate over empty input yields zero rows.
	p2 := AggregatePlan{Input: ScanPlan{r}, GroupBy: []string{"A"},
		Aggs: []AggSpec{{Func: AggCount, As: "n"}}}
	if rs := run(t, p2); rs.Len() != 0 {
		t.Fatalf("grouped empty = %d rows", rs.Len())
	}
}

func TestAggregateNullsIgnored(t *testing.T) {
	db := NewDatabase()
	r := db.MustCreateRelation(MustSchema("N", []Attribute{
		{Name: "ID", Type: KindInt},
		{Name: "V", Type: KindInt, Nullable: true},
	}, []string{"ID"}))
	_ = r.Insert(Tuple{Int(1), Int(10)})
	_ = r.Insert(Tuple{Int(2), Null()})
	_ = r.Insert(Tuple{Int(3), Int(20)})
	p := AggregatePlan{Input: ScanPlan{r}, Aggs: []AggSpec{
		{Func: AggCount, Attr: "V", As: "nv"},
		{Func: AggCount, As: "n"},
		{Func: AggAvg, Attr: "V", As: "m"},
	}}
	rs := run(t, p)
	row := rs.Row(0)
	if nv := row.MustGet("nv").MustInt(); nv != 2 {
		t.Fatalf("count(V) = %d, want 2", nv)
	}
	if n := row.MustGet("n").MustInt(); n != 3 {
		t.Fatalf("count(*) = %d, want 3", n)
	}
	if m, _ := row.MustGet("m").AsFloat(); m != 15 {
		t.Fatalf("avg(V) = %v, want 15", m)
	}
}

func TestAggregateDefaultNamesAndErrors(t *testing.T) {
	db := testDB(t)
	p := AggregatePlan{
		Input: ScanPlan{db.MustRelation("COURSES")},
		Aggs:  []AggSpec{{Func: AggCount}, {Func: AggMax, Attr: "Units"}},
	}
	rs := run(t, p)
	if _, ok := rs.Schema.AttrIndex("count"); !ok {
		t.Fatalf("default count name missing: %v", rs.Schema.AttrNames())
	}
	if _, ok := rs.Schema.AttrIndex("max_Units"); !ok {
		t.Fatalf("default max name missing: %v", rs.Schema.AttrNames())
	}
	bad := AggregatePlan{
		Input: ScanPlan{db.MustRelation("COURSES")},
		Aggs:  []AggSpec{{Func: AggSum, Attr: "Nope"}},
	}
	if _, err := bad.Run(); err == nil {
		t.Fatal("aggregate over unknown attr should fail")
	}
}

func TestComposedPipeline(t *testing.T) {
	// Figure-4-shaped query: courses with fewer than 3 grades.
	db := testDB(t)
	agg := AggregatePlan{
		Input:   ScanPlan{db.MustRelation("GRADES")},
		GroupBy: []string{"CourseID"},
		Aggs:    []AggSpec{{Func: AggCount, As: "n"}},
	}
	few := SelectPlan{agg, Cmp{OpLt, Attr{Name: "n"}, Const{Int(3)}}}
	rs := run(t, few)
	ids := map[string]bool{}
	for i := 0; i < rs.Len(); i++ {
		ids[rs.Row(i).MustGet("CourseID").MustString()] = true
	}
	if !ids["CS345"] || !ids["EE201"] || ids["CS101"] {
		t.Fatalf("pipeline result = %v", ids)
	}
}

func TestLargeJoinStress(t *testing.T) {
	db := NewDatabase()
	l := db.MustCreateRelation(MustSchema("BIGL", []Attribute{
		{Name: "ID", Type: KindInt},
	}, []string{"ID"}))
	r := db.MustCreateRelation(MustSchema("BIGR", []Attribute{
		{Name: "ID", Type: KindInt},
		{Name: "FK", Type: KindInt},
	}, []string{"ID"}))
	const n = 500
	for i := 0; i < n; i++ {
		if err := l.Insert(Tuple{Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4*n; i++ {
		if err := r.Insert(Tuple{Int(int64(i)), Int(int64(i % n))}); err != nil {
			t.Fatal(err)
		}
	}
	rs := run(t, JoinPlan{Left: ScanPlan{l}, Right: ScanPlan{r},
		LeftAttrs: []string{"ID"}, RightAttrs: []string{"FK"}})
	if rs.Len() != 4*n {
		t.Fatalf("join = %d rows, want %d", rs.Len(), 4*n)
	}
}

func TestAggFuncString(t *testing.T) {
	want := map[AggFunc]string{AggCount: "count", AggSum: "sum", AggMin: "min", AggMax: "max", AggAvg: "avg"}
	for f, s := range want {
		if f.String() != s {
			t.Errorf("%v.String() = %q", f, f.String())
		}
	}
}

func TestResultSetRowAccess(t *testing.T) {
	db := testDB(t)
	rs := run(t, ScanPlan{db.MustRelation("COURSES")})
	row := rs.Row(0)
	if _, ok := row.Get("Nope"); ok {
		t.Fatal("Get unknown attr should be !ok")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet unknown attr should panic")
		}
	}()
	row.MustGet("Nope")
}

func ExampleAggregatePlan() {
	db := NewDatabase()
	r := db.MustCreateRelation(MustSchema("T", []Attribute{
		{Name: "G", Type: KindString},
		{Name: "V", Type: KindInt},
	}, []string{"G", "V"}))
	_ = r.Insert(Tuple{String("a"), Int(1)})
	_ = r.Insert(Tuple{String("a"), Int(2)})
	_ = r.Insert(Tuple{String("b"), Int(5)})
	rs, _ := (AggregatePlan{
		Input:   ScanPlan{r},
		GroupBy: []string{"G"},
		Aggs:    []AggSpec{{Func: AggSum, Attr: "V", As: "s"}},
	}).Run()
	for i := 0; i < rs.Len(); i++ {
		row := rs.Row(i)
		fmt.Printf("%s=%s\n", row.MustGet("G"), row.MustGet("s"))
	}
	// Output:
	// a=3
	// b=5
}
