package reldb

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

func deltaDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	if _, err := db.CreateRelation(gradesSchema(t)); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestDeltaStreamNetEffect(t *testing.T) {
	db := deltaDB(t)
	sub := db.Subscribe(0)
	defer sub.Close()
	if sub.StartGen() != db.Generation() {
		t.Fatalf("StartGen %d != current gen %d", sub.StartGen(), db.Generation())
	}

	// One commit: insert two, delete one of them in the same tx (cancels
	// out), replace the survivor in place (collapses into its insert).
	err := db.RunInTx(func(tx *Tx) error {
		if err := tx.Insert("GRADES", grade("CS101", 1, "A")); err != nil {
			return err
		}
		if err := tx.Insert("GRADES", grade("CS101", 2, "B")); err != nil {
			return err
		}
		if _, err := tx.Delete("GRADES", Tuple{String("CS101"), Int(2)}); err != nil {
			return err
		}
		_, err := tx.Replace("GRADES", Tuple{String("CS101"), Int(1)}, grade("CS101", 1, "C"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	batches, lost := sub.Poll()
	if lost {
		t.Fatal("unexpected overflow")
	}
	if len(batches) != 1 {
		t.Fatalf("%d batches, want 1", len(batches))
	}
	b := batches[0]
	if b.Gen != sub.StartGen()+1 {
		t.Fatalf("batch gen %d, want %d", b.Gen, sub.StartGen()+1)
	}
	if len(b.Deltas) != 1 || b.Deltas[0].Relation != "GRADES" {
		t.Fatalf("deltas = %+v, want one GRADES delta", b.Deltas)
	}
	d := b.Deltas[0]
	if len(d.Inserts) != 1 || len(d.Deletes) != 0 || len(d.Replaces) != 0 {
		t.Fatalf("net effect I=%d D=%d R=%d, want 1/0/0", len(d.Inserts), len(d.Deletes), len(d.Replaces))
	}
	if !d.Inserts[0].Equal(grade("CS101", 1, "C")) {
		t.Fatalf("insert image %v, want the final in-tx state", d.Inserts[0])
	}

	// A later commit: same-key replace surfaces as a Replace with both
	// images; a key-changing replace as delete+insert.
	err = db.RunInTx(func(tx *Tx) error {
		if _, err := tx.Replace("GRADES", Tuple{String("CS101"), Int(1)}, grade("CS101", 1, "B")); err != nil {
			return err
		}
		return tx.Insert("GRADES", grade("CS245", 7, "A"))
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.RunInTx(func(tx *Tx) error {
		_, err := tx.Replace("GRADES", Tuple{String("CS245"), Int(7)}, grade("CS245", 8, "A"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	batches, lost = sub.Poll()
	if lost || len(batches) != 2 {
		t.Fatalf("poll = %d batches lost=%v, want 2 batches", len(batches), lost)
	}
	rep := batches[0].Deltas[0]
	if len(rep.Replaces) != 1 || !rep.Replaces[0].Old.Equal(grade("CS101", 1, "C")) || !rep.Replaces[0].New.Equal(grade("CS101", 1, "B")) {
		t.Fatalf("same-key replace delta = %+v", rep)
	}
	keyed := batches[1].Deltas[0]
	if len(keyed.Deletes) != 1 || len(keyed.Inserts) != 1 {
		t.Fatalf("key-changing replace delta = %+v, want delete+insert", keyed)
	}
	if !keyed.Deletes[0].Equal(grade("CS245", 7, "A")) || !keyed.Inserts[0].Equal(grade("CS245", 8, "A")) {
		t.Fatalf("key-changing replace images = %+v", keyed)
	}
}

func TestDeltaStreamEmptyCommitAndRollback(t *testing.T) {
	db := deltaDB(t)
	sub := db.Subscribe(0)
	defer sub.Close()

	// Read-only commit: no generation advance, no batch.
	if err := db.RunInTx(func(tx *Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// Rollback: nothing published.
	tx := db.Begin()
	if err := tx.Insert("GRADES", grade("CS101", 1, "A")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if batches, lost := sub.Poll(); len(batches) != 0 || lost {
		t.Fatalf("poll after no-op commit + rollback = %d batches lost=%v", len(batches), lost)
	}

	// A commit whose net effect cancels still advances the generation, so
	// its (empty) batch must arrive to keep the stream gap-free.
	err := db.RunInTx(func(tx *Tx) error {
		if err := tx.Insert("GRADES", grade("CS101", 1, "A")); err != nil {
			return err
		}
		_, err := tx.Delete("GRADES", Tuple{String("CS101"), Int(1)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	batches, _ := sub.Poll()
	if len(batches) != 1 || len(batches[0].Deltas) != 0 {
		t.Fatalf("cancelled commit: %+v, want one empty batch", batches)
	}
	if batches[0].Gen != db.Generation() {
		t.Fatalf("empty batch gen %d, want %d", batches[0].Gen, db.Generation())
	}
}

func TestDeltaStreamStructuralDDL(t *testing.T) {
	db := deltaDB(t)
	sub := db.Subscribe(0)
	defer sub.Close()

	s, err := NewSchema("AUX", []Attribute{{Name: "ID", Type: KindInt}}, []string{"ID"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation(s); err != nil {
		t.Fatal(err)
	}
	if err := db.DropRelation("AUX"); err != nil {
		t.Fatal(err)
	}
	batches, lost := sub.Poll()
	if lost || len(batches) != 2 {
		t.Fatalf("poll = %d batches lost=%v, want 2 structural batches", len(batches), lost)
	}
	for i, b := range batches {
		if len(b.Deltas) != 1 || !b.Deltas[0].Structural || b.Deltas[0].Relation != "AUX" {
			t.Fatalf("batch %d = %+v, want structural AUX delta", i, b)
		}
		if b.Gen != sub.StartGen()+uint64(i)+1 {
			t.Fatalf("batch %d gen %d, want %d", i, b.Gen, sub.StartGen()+uint64(i)+1)
		}
	}
}

func TestDeltaStreamOverflowDropsToResync(t *testing.T) {
	db := deltaDB(t)
	sub := db.Subscribe(2)
	defer sub.Close()
	for i := 0; i < 5; i++ {
		err := db.RunInTx(func(tx *Tx) error {
			return tx.Insert("GRADES", grade("CS101", int64(i), "A"))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	batches, lost := sub.Poll()
	if !lost {
		t.Fatal("overflow not reported")
	}
	// The queue dropped wholesale at the overflow; whatever survived is
	// the post-overflow suffix, still contiguous and ending at the head.
	for i := 1; i < len(batches); i++ {
		if batches[i].Gen != batches[i-1].Gen+1 {
			t.Fatalf("post-overflow suffix not contiguous: %d after %d", batches[i].Gen, batches[i-1].Gen)
		}
	}
	if n := len(batches); n > 0 && batches[n-1].Gen != db.Generation() {
		t.Fatalf("suffix ends at gen %d, head is %d", batches[n-1].Gen, db.Generation())
	}
	// The lost flag clears once reported.
	if _, lost := sub.Poll(); lost {
		t.Fatal("lost flag did not clear")
	}
}

// TestDeltaSubscribeCommitRace is the satellite-3 regression: subscribers
// registering while commits are in flight must never see a torn commit —
// every subscription observes, starting exactly at StartGen+1, the full
// consecutive sequence of generations with each commit's whole write set
// in its batch. Run under -race this also proves registration/publish
// share a coherent lock discipline.
func TestDeltaSubscribeCommitRace(t *testing.T) {
	db := deltaDB(t)
	const commits = 60
	const subscribers = 8
	final := db.Generation() + commits

	var wg sync.WaitGroup
	errs := make(chan error, subscribers+1)

	// Writer: each commit inserts two tuples (the "whole commit" a torn
	// subscription would split).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < commits; i++ {
			err := db.RunInTx(func(tx *Tx) error {
				if err := tx.Insert("GRADES", grade(fmt.Sprintf("CS%03d", i), 1, "A")); err != nil {
					return err
				}
				return tx.Insert("GRADES", grade(fmt.Sprintf("CS%03d", i), 2, "B"))
			})
			if err != nil {
				errs <- err
				return
			}
		}
	}()

	for s := 0; s < subscribers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := db.Subscribe(4 * commits)
			defer sub.Close()
			want := sub.StartGen() + 1
			for {
				batches, lost := sub.Poll()
				if lost {
					errs <- fmt.Errorf("subscriber overflowed despite ample buffer")
					return
				}
				for _, b := range batches {
					if b.Gen != want {
						errs <- fmt.Errorf("gap: got gen %d, want %d", b.Gen, want)
						return
					}
					want++
					// Untorn: the commit's two inserts arrive together.
					if len(b.Deltas) != 1 || len(b.Deltas[0].Inserts) != 2 {
						errs <- fmt.Errorf("torn batch at gen %d: %+v", b.Gen, b)
						return
					}
				}
				if want > final {
					return
				}
				runtime.Gosched()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
