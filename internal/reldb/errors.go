package reldb

import "errors"

// Sentinel errors returned by the storage layer. Callers use errors.Is to
// branch on them; messages wrap them with relation and key context.
var (
	// ErrDuplicateKey reports an insert whose primary key already exists.
	ErrDuplicateKey = errors.New("duplicate primary key")
	// ErrNoSuchTuple reports a delete/replace of a missing tuple.
	ErrNoSuchTuple = errors.New("no tuple with this key")
	// ErrNoSuchRelation reports access to an undefined relation.
	ErrNoSuchRelation = errors.New("no such relation")
	// ErrRelationExists reports creation of an already-defined relation.
	ErrRelationExists = errors.New("relation already exists")
	// ErrNoSuchIndex reports access to an undefined secondary index.
	ErrNoSuchIndex = errors.New("no such index")
	// ErrTxDone reports use of a committed or rolled-back transaction.
	ErrTxDone = errors.New("transaction already finished")
	// ErrSnapshotCorrupt reports a snapshot file whose CRC trailer does
	// not match its contents, or whose structure cannot be decoded: the
	// bytes on disk are not what WriteSnapshot produced.
	ErrSnapshotCorrupt = errors.New("snapshot corrupt")
	// ErrWALCorrupt reports a write-ahead log whose records fail their
	// checksum away from the tail, or whose generations are not
	// contiguous: recovery refuses to load a state it cannot prove is a
	// committed prefix.
	ErrWALCorrupt = errors.New("write-ahead log corrupt")
	// ErrDatabaseClosed reports an operation on a closed durable database.
	ErrDatabaseClosed = errors.New("database closed")
	// ErrNotDurable reports a durability operation (checkpoint, sync) on
	// a database that was not opened from a data directory.
	ErrNotDurable = errors.New("database has no write-ahead log")
)
