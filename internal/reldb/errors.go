package reldb

import "errors"

// Sentinel errors returned by the storage layer. Callers use errors.Is to
// branch on them; messages wrap them with relation and key context.
var (
	// ErrDuplicateKey reports an insert whose primary key already exists.
	ErrDuplicateKey = errors.New("duplicate primary key")
	// ErrNoSuchTuple reports a delete/replace of a missing tuple.
	ErrNoSuchTuple = errors.New("no tuple with this key")
	// ErrNoSuchRelation reports access to an undefined relation.
	ErrNoSuchRelation = errors.New("no such relation")
	// ErrRelationExists reports creation of an already-defined relation.
	ErrRelationExists = errors.New("relation already exists")
	// ErrNoSuchIndex reports access to an undefined secondary index.
	ErrNoSuchIndex = errors.New("no such index")
	// ErrTxDone reports use of a committed or rolled-back transaction.
	ErrTxDone = errors.New("transaction already finished")
)
