package reldb

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestSnapshotRestoresGeneration is the regression test for the restart
// bug: ReadSnapshot used to return a database with the generation
// counter reset to 0, so the first post-restore commit published
// generation 1 and every generation-keyed consumer (plan cache,
// Subscription.StartGen, materializer build gens) silently restarted
// its clock.
func TestSnapshotRestoresGeneration(t *testing.T) {
	db := snapshotDB(t)
	// Push the generation well past the relation count.
	for i := 0; i < 10; i++ {
		if err := db.RunInTx(func(tx *Tx) error {
			return tx.Insert("EMPTY", Tuple{String(fmt.Sprintf("k%d", i))})
		}); err != nil {
			t.Fatal(err)
		}
	}
	oldGen := db.Generation()
	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g := got.Generation(); g != oldGen {
		t.Fatalf("restored generation = %d, want %d", g, oldGen)
	}
	// A post-restore commit must publish gen = old+1, not 1.
	sub := got.Subscribe(8)
	if err := got.RunInTx(func(tx *Tx) error {
		return tx.Insert("EMPTY", Tuple{String("post-restore")})
	}); err != nil {
		t.Fatal(err)
	}
	batches, lost := sub.Poll()
	if lost || len(batches) != 1 {
		t.Fatalf("poll = %d batches, lost=%v", len(batches), lost)
	}
	if batches[0].Gen != oldGen+1 {
		t.Fatalf("post-restore commit published gen %d, want %d", batches[0].Gen, oldGen+1)
	}
}

// TestSnapshotCorruptionDetected flips one byte at several offsets of a
// v2 snapshot; every flip must fail with an error wrapping
// ErrSnapshotCorrupt — never load as garbage, never report a confusing
// mid-row decode error without the corruption tag.
func TestSnapshotCorruptionDetected(t *testing.T) {
	db := snapshotDB(t)
	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Offsets past the version field (flipping magic/version hits the
	// other, non-corruption errors): the generation, relation count,
	// schema bytes, row values, and the CRC trailer itself.
	offsets := []int{6, 10, 14, 20, len(full) / 3, len(full) / 2, len(full) - 10, len(full) - 3, len(full) - 1}
	for _, off := range offsets {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x40
		got, err := ReadSnapshot(bytes.NewReader(mut))
		if err == nil {
			// The flip may produce a structurally valid stream only if it
			// still hashed to the same CRC — impossible for a single bit.
			t.Fatalf("byte flip at offset %d accepted (loaded %d relations)", off, len(got.Names()))
		}
		if !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("byte flip at offset %d: error does not wrap ErrSnapshotCorrupt: %v", off, err)
		}
	}
}

// TestSnapshotTruncatedIsCorrupt: a torn v2 file reports corruption,
// not a bare io error.
func TestSnapshotTruncatedIsCorrupt(t *testing.T) {
	db := snapshotDB(t)
	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{7, 15, len(full) / 2, len(full) - 2} {
		_, err := ReadSnapshot(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncated snapshot at %d accepted", cut)
		}
		if !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("truncation at %d: error does not wrap ErrSnapshotCorrupt: %v", cut, err)
		}
	}
}

// TestSnapshotReadsV1 keeps the legacy format loadable: a version-1
// stream (no head generation, no CRC trailer) still round-trips.
func TestSnapshotReadsV1(t *testing.T) {
	db := snapshotDB(t)
	rtx := db.BeginRead()
	defer rtx.Close()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	bw.WriteString(snapshotMagic)
	writeU16(bw, snapshotVersion1)
	names := rtx.Names()
	writeU32(bw, uint32(len(names)))
	for _, n := range names {
		if err := writeRelation(bw, rtx.rels[n]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if len(got.Names()) != len(db.Names()) {
		t.Fatalf("v1 load: %v, want %v", got.Names(), db.Names())
	}
	if got.MustRelation("MIXED").Count() != db.MustRelation("MIXED").Count() {
		t.Fatal("v1 load lost rows")
	}
}

// gatedWriter blocks its first Write until release is closed, and
// signals started so the test knows serialization is in flight.
type gatedWriter struct {
	started chan struct{}
	release chan struct{}
	once    bool
	buf     bytes.Buffer
}

func (g *gatedWriter) Write(p []byte) (int, error) {
	if !g.once {
		g.once = true
		close(g.started)
		<-g.release
	}
	return g.buf.Write(p)
}

// TestWriteSnapshotDoesNotBlockCommits is the regression test for the
// checkpoint-stall bug: WriteSnapshot used to hold db.mu.RLock for the
// entire serialization, so a commit could not publish until the last
// byte was written. Serialization now runs from a COW ReadTx, and a
// commit must complete while the snapshot writer is stalled mid-write.
func TestWriteSnapshotDoesNotBlockCommits(t *testing.T) {
	db := snapshotDB(t)
	g := &gatedWriter{started: make(chan struct{}), release: make(chan struct{})}
	done := make(chan error, 1)
	go func() { done <- db.WriteSnapshot(g) }()
	<-g.started // serialization is in flight, first Write is stalled

	committed := make(chan error, 1)
	go func() {
		committed <- db.RunInTx(func(tx *Tx) error {
			return tx.Insert("EMPTY", Tuple{String("mid-snapshot")})
		})
	}()
	select {
	case err := <-committed:
		if err != nil {
			t.Fatalf("concurrent commit failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("commit blocked while a snapshot was being written")
	}

	close(g.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The snapshot is the state pinned at BeginRead: it must load
	// cleanly and must not contain the concurrent commit.
	got, err := ReadSnapshot(bytes.NewReader(g.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.MustRelation("EMPTY").Get(Tuple{String("mid-snapshot")}); ok {
		t.Fatal("snapshot contains a commit from after its pinned generation")
	}
}
