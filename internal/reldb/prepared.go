package reldb

import (
	"fmt"

	"penguin/internal/obs"
)

// Two-shard commit: the participant half of the sharded coordinator's
// commit protocol (internal/reldb/shard). A cross-shard view-object
// update translates into write transactions on every participant shard;
// instead of committing each independently (a crash between them would
// leave half an island updated), the coordinator:
//
//  1. Prepares every participant (ascending shard order): the
//     transaction's delta batch is frozen and logged as a cross-prepare
//     record — no generation assigned, nothing published, the writer
//     lock and the checkpoint mutex stay held.
//  2. Waits for every prepare to be durable.
//  3. Decides commit on every participant: a cross-decide record
//     carrying the generation is appended and the batch publishes in
//     memory exactly like a normal commit.
//  4. Waits for every decide to be durable, then releases the writers
//     in ascending shard order.
//
// Crash recovery (presumed abort): replay stashes prepares it finds no
// decision for (Database.InDoubt); the sharded open resolves each
// in-doubt xid by asking every sibling shard whether it replayed a
// commit decision for it (CrossDecision) — if any did, the decision was
// the cluster's commit point and the batch commits here too
// (ResolveInDoubt); if none did, no acknowledgment can have been issued
// and the prepare is aborted. Either way both shards end up on the same
// side: no half-committed island is observable after recovery.
//
// Holding the checkpoint mutex from Prepare to Release keeps the
// prepare record (and any decide that follows it) out of reach of
// segment pruning while the outcome is unresolved, so a crash anywhere
// inside the protocol leaves enough log on every participant to decide.

// pendingCross is an undecided cross-shard prepare: the frozen delta
// batch and the participant shard set, keyed by xid in Database.pendingX.
type pendingCross struct {
	batch DeltaBatch
	parts []int
}

// PreparedTx is a write transaction frozen between the two phases of a
// cross-shard commit: its delta batch is logged, its writer lock and
// checkpoint mutex are held, and nothing is published. Exactly one of
// CommitDecided (followed by Release) or Abort must be called.
type PreparedTx struct {
	tx        *Tx
	xid       string
	batch     DeltaBatch
	prepSeq   uint64
	decideSeq uint64
	decided   bool
	released  bool
}

// Prepare freezes the transaction as a participant in the two-shard
// commit protocol: the delta batch is built and appended to the WAL as a
// cross-prepare record (durable database), and the writer lock plus the
// checkpoint mutex remain held until CommitDecided/Release or Abort.
// parts names the participant shard indices (diagnostics; recovery does
// not depend on it). On an append failure the transaction is rolled
// back cleanly and the error returned.
func (tx *Tx) Prepare(xid string, parts []int) (*PreparedTx, error) {
	if tx.done {
		obs.Default.TxDoneHits.Inc()
		return nil, ErrTxDone
	}
	tx.done = true
	batch := tx.buildBatch()
	// Block checkpoints for the duration of the protocol: a checkpoint's
	// segment prune must never drop a prepare record whose decision is
	// still unresolved. Safe against deadlock — Checkpoint holds ckptMu
	// while taking only db.mu.RLock, never the writer lock we hold.
	tx.db.ckptMu.Lock()
	p := &PreparedTx{tx: tx, xid: xid, batch: batch}
	if tx.db.wal != nil {
		payload, err := encodeCrossPrepareRecord(xid, parts, batch)
		if err == nil {
			p.prepSeq, err = tx.db.wal.append(0, payload)
		}
		if err != nil {
			tx.db.ckptMu.Unlock()
			tx.db.mu.Lock()
			tx.db.writing = false
			tx.db.mu.Unlock()
			tx.dirty, tx.written, tx.changes = nil, nil, nil
			tx.db.writer.Unlock()
			obs.Default.Rollbacks.Inc()
			return nil, fmt.Errorf("reldb: prepare %s aborted: %w", xid, err)
		}
	}
	obs.Default.CrossPrepares.Inc()
	return p, nil
}

// WaitPrepared blocks until the prepare record is durable (SyncCommit
// mode; immediate otherwise).
func (p *PreparedTx) WaitPrepared() error {
	if p.tx.db.wal == nil {
		return nil
	}
	return p.tx.db.wal.waitDurable(p.prepSeq)
}

// CommitDecided appends the commit decision and publishes the prepared
// batch as the shard's next generation. The writer lock stays held —
// call Release (after WaitDecided, for durability) to let the next
// writer in. The decision is final: once any participant's decide
// record is durable the cluster-level outcome is commit, so an append
// failure here does not un-publish — the error reports that durability
// can no longer be promised, like a failed group-commit fsync.
func (p *PreparedTx) CommitDecided() error {
	if p.decided || p.released {
		return ErrTxDone
	}
	p.decided = true
	tx := p.tx
	var appendErr error
	tx.db.mu.RLock()
	gen := tx.db.gen + 1
	tx.db.mu.RUnlock()
	p.batch.Gen = gen
	for i := range p.batch.Deltas {
		p.batch.Deltas[i].Gen = gen
	}
	if tx.db.wal != nil {
		payload, err := encodeCrossDecideRecord(p.xid, true, gen)
		if err == nil {
			p.decideSeq, appendErr = tx.db.wal.append(gen, payload)
		} else {
			appendErr = err
		}
	}
	tx.db.mu.Lock()
	tx.db.gen++
	for name := range tx.written {
		r := tx.dirty[name]
		r.gen = tx.db.gen
		tx.db.relations[name] = r
	}
	tx.db.publishLocked(p.batch)
	tx.db.writing = false
	tx.db.mu.Unlock()
	tx.dirty, tx.written, tx.changes = nil, nil, nil
	obs.Default.Commits.Inc()
	obs.Default.CrossCommits.Inc()
	if appendErr != nil {
		return fmt.Errorf("reldb: cross-commit %s gen %d published but not logged: %w", p.xid, gen, appendErr)
	}
	return nil
}

// WaitDecided blocks until the commit decision is durable.
func (p *PreparedTx) WaitDecided() error {
	if !p.decided || p.tx.db.wal == nil {
		return nil
	}
	return p.tx.db.wal.waitDurable(p.decideSeq)
}

// Release ends the protocol on this participant: the checkpoint mutex
// and the writer lock are released. Idempotent.
func (p *PreparedTx) Release() {
	if p.released {
		return
	}
	p.released = true
	p.tx.db.ckptMu.Unlock()
	p.tx.db.writer.Unlock()
}

// Abort resolves the prepare as aborted: an abort decision is logged
// (best effort — presumed abort makes it advisory), the working set is
// discarded, and the locks are released. Nothing was published.
func (p *PreparedTx) Abort() error {
	if p.decided || p.released {
		return ErrTxDone
	}
	p.released = true
	tx := p.tx
	if tx.db.wal != nil {
		if payload, err := encodeCrossDecideRecord(p.xid, false, 0); err == nil {
			_, _ = tx.db.wal.append(0, payload)
		}
	}
	tx.db.mu.Lock()
	tx.db.writing = false
	tx.db.mu.Unlock()
	tx.dirty, tx.written, tx.changes = nil, nil, nil
	tx.db.ckptMu.Unlock()
	tx.db.writer.Unlock()
	obs.Default.Rollbacks.Inc()
	obs.Default.CrossAborts.Inc()
	return nil
}

// Gen returns the generation the decision published (0 before
// CommitDecided).
func (p *PreparedTx) Gen() uint64 { return p.batch.Gen }

// InDoubt returns the xids of cross-shard prepares replayed from the
// log that have no decision — the set the sharded open must resolve.
func (db *Database) InDoubt() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	xids := make([]string, 0, len(db.pendingX))
	for xid := range db.pendingX {
		xids = append(xids, xid)
	}
	return xids
}

// CrossDecision reports whether this shard's log carried a decision for
// xid: known=false means neither outcome was seen here.
func (db *Database) CrossDecision(xid string) (commit, known bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	commit, known = db.decidedX[xid]
	return commit, known
}

// ResolveInDoubt resolves a replayed in-doubt prepare: commit publishes
// the pending batch as the next generation (logging the decide record so
// later recoveries see it resolved), abort discards it (logging an
// advisory abort decide). Called by the sharded open, before concurrent
// traffic starts.
func (db *Database) ResolveInDoubt(xid string, commit bool) error {
	db.writer.Lock()
	defer db.writer.Unlock()
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.mu.RLock()
	p := db.pendingX[xid]
	db.mu.RUnlock()
	if p == nil {
		return fmt.Errorf("reldb: resolve %s: no such in-doubt transaction", xid)
	}
	if !commit {
		if db.wal != nil {
			if payload, err := encodeCrossDecideRecord(xid, false, 0); err == nil {
				_, _ = db.wal.append(0, payload)
			}
		}
		db.mu.Lock()
		delete(db.pendingX, xid)
		if db.decidedX == nil {
			db.decidedX = make(map[string]bool)
		}
		db.decidedX[xid] = false
		db.mu.Unlock()
		obs.Default.CrossAborts.Inc()
		return nil
	}
	var walSeq uint64
	db.mu.RLock()
	gen := db.gen + 1
	db.mu.RUnlock()
	p.batch.Gen = gen
	for i := range p.batch.Deltas {
		p.batch.Deltas[i].Gen = gen
	}
	if db.wal != nil {
		payload, err := encodeCrossDecideRecord(xid, true, gen)
		if err != nil {
			return err
		}
		if walSeq, err = db.wal.append(gen, payload); err != nil {
			return err
		}
	}
	db.mu.Lock()
	db.gen++
	for _, d := range p.batch.Deltas {
		rel, ok := db.relations[d.Relation]
		if !ok {
			db.mu.Unlock()
			return fmt.Errorf("reldb: resolve %s: delta for unknown relation %s", xid, d.Relation)
		}
		c := rel.clone()
		if err := applyDelta(c, d); err != nil {
			db.mu.Unlock()
			return fmt.Errorf("reldb: resolve %s: %w", xid, err)
		}
		c.gen = db.gen
		db.relations[d.Relation] = c
	}
	db.publishLocked(p.batch)
	delete(db.pendingX, xid)
	if db.decidedX == nil {
		db.decidedX = make(map[string]bool)
	}
	db.decidedX[xid] = true
	db.mu.Unlock()
	obs.Default.Commits.Inc()
	obs.Default.CrossCommits.Inc()
	if db.wal != nil {
		return db.wal.waitDurable(walSeq)
	}
	return nil
}

// applyDelta folds one net-effect delta into a relation (a private clone
// or a recovering database's live relation).
func applyDelta(rel *Relation, d Delta) error {
	s := rel.Schema()
	for _, t := range d.Inserts {
		if err := rel.Insert(t); err != nil {
			return err
		}
	}
	for _, t := range d.Deletes {
		if _, err := rel.Delete(s.KeyOf(t)); err != nil {
			return err
		}
	}
	for _, rc := range d.Replaces {
		if err := rel.Replace(s.KeyOf(rc.Old), rc.New); err != nil {
			return err
		}
	}
	return nil
}
