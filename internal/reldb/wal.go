package reldb

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"penguin/internal/obs"
)

// The write-ahead log: the durable, on-disk form of the per-commit delta
// stream. Every generation advance — a publishing commit, a
// CreateRelation, a DropRelation — appends exactly one record before the
// new state becomes visible in memory, so the log is a gap-free sequence
// of generations and recovery can prove it replayed a committed prefix.
//
// Segment files are named wal-%016x.log, where the hex value is the
// generation the segment starts after: every record in the segment has a
// strictly greater generation. Each segment begins with an 8-byte magic
// header; records follow back to back:
//
//	u32 payloadLen | u32 crc32c(payload) | payload
//	payload: u8 recordType | u64 gen | body
//	  recordType 1 (commit): u32 nDeltas | per delta:
//	    string relation | u32 nIns | tuple* | u32 nDel | tuple* |
//	    u32 nRep | (oldTuple, newTuple)*
//	  recordType 2 (create): schema (name, attrs, key — codec.go layout)
//	  recordType 3 (drop):   string relation
//	  recordType 4 (cross-prepare): string xid | u32 nParts | u32* parts |
//	    commit body (gen field is 0 — assigned by the decide)
//	  recordType 5 (cross-decide): string xid | u8 commit (gen field is
//	    the published generation for commits, 0 for aborts)
//
// Tuples and values reuse the snapshot codec's encoding (codec.go), so
// the log is the serialized DeltaBatch stream.
//
// Group commit: records are appended (buffered in the OS page cache)
// under the writer lock, in generation order, before the commit
// publishes in memory; the commit then releases the writer lock and —
// in SyncCommit mode — waits for the background syncer to push the
// durable high-water mark past its generation. While one fsync is in
// flight further commits keep appending, so one fsync acknowledges a
// whole batch of commits and throughput under concurrency is bounded by
// fsync bandwidth, not fsync latency times commits.
//
// Derived-state caveat: secondary indexes built outside a generation
// advance (Relation.CreateIndex during setup, the auto-registered edge
// indexes) are not logged — they are derived state, re-declared by
// snapshots and rebuilt on load. Losing post-snapshot index declarations
// affects lookup speed after recovery, never correctness.

// SyncMode selects when WAL appends are made durable.
type SyncMode int

const (
	// SyncCommit fsyncs before Commit returns (group-batched): an
	// acknowledged commit survives kill -9. The default.
	SyncCommit SyncMode = iota
	// SyncInterval fsyncs on a timer: a crash may lose the last interval
	// of acknowledged commits, but the log is still a committed prefix.
	SyncInterval
	// SyncNone never fsyncs (tests and bulk loads): durability is
	// whatever the OS page cache survives.
	SyncNone
)

const (
	walSegmentMagic = "PNGWAL01"
	walSegPrefix    = "wal-"
	walSegSuffix    = ".log"
	snapPrefix      = "snap-"
	snapSuffix      = ".pngw"
	tmpSuffix       = ".tmp"

	recCommit byte = 1
	recCreate byte = 2
	recDrop   byte = 3
	// recCrossPrepare and recCrossDecide are the two-shard commit
	// protocol's markers (see prepared.go): a prepare carries a pending
	// delta batch with no generation assigned yet (gen field 0), a decide
	// resolves it — commit decides carry the generation the batch
	// publishes as, abort decides carry gen 0.
	recCrossPrepare byte = 4
	recCrossDecide  byte = 5

	// maxWALRecord caps a record's payload length: a frame claiming more
	// is treated as damage, not as an allocation request.
	maxWALRecord = 1 << 30
)

func walSegmentName(startGen uint64) string {
	return fmt.Sprintf("%s%016x%s", walSegPrefix, startGen, walSegSuffix)
}

func snapshotName(gen uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, gen, snapSuffix)
}

// wal is the append side of the log. Appends are serialized by the
// database writer lock (they happen inside Commit/DDL while it is held),
// so wal.mu only coordinates appends with the background syncer and with
// checkpoint rolls.
type wal struct {
	dir      string
	mode     SyncMode
	interval time.Duration
	// slot is the shard label slot the log's obs counters are additionally
	// recorded under (obs.Default.Shards); -1 for unsharded databases,
	// which report only into the unlabeled totals. Set once at open.
	slot int

	// mu guards the active file handle and the append-side watermarks.
	mu       sync.Mutex
	f        *os.File
	segStart uint64 // generation the active segment starts after
	appended uint64 // highest generation appended
	seq      uint64 // appends so far; each append's sequence number

	// fsyncMu serializes fsync-and-close against the active file: the
	// syncer fsyncs under it, and a checkpoint roll swaps files and
	// closes the old handle under it, so a handle is never closed while
	// a sync on it is in flight.
	fsyncMu sync.Mutex

	// smu guards the durability watermark and wakes the syncer. The
	// watermark counts append sequence numbers, not generations: prepare
	// records of the two-shard commit protocol are appended before their
	// generation is assigned, and an aborted prepare's provisional
	// generation may be reused by a later commit, so generations are not
	// unique per record — sequence numbers are.
	smu    sync.Mutex
	scond  *sync.Cond
	want   uint64 // highest append sequence some committer wants durable
	synced uint64 // highest append sequence known durable
	serr   error  // sticky fsync failure: fail all later commits loudly
	closed bool
	done   chan struct{} // syncer exit
}

func newWAL(dir string, mode SyncMode, interval time.Duration, f *os.File, segStart, head uint64) *wal {
	w := &wal{
		dir:      dir,
		mode:     mode,
		interval: interval,
		f:        f,
		segStart: segStart,
		appended: head,
		slot:     -1,
		done:     make(chan struct{}),
	}
	w.scond = sync.NewCond(&w.smu)
	switch mode {
	case SyncCommit:
		go w.syncLoop()
	case SyncInterval:
		go w.intervalLoop()
	default:
		close(w.done)
	}
	return w
}

// append writes one framed record for gen and returns the record's
// append sequence number (the handle to waitDurable on). The caller
// holds the database writer lock, so calls arrive in order; generations
// are non-decreasing, with gen 0 marking records that carry no
// generation (cross-shard prepares and abort decides). The bytes reach
// the OS (buffered); durability is the syncer's job.
func (w *wal) append(gen uint64, payload []byte) (uint64, error) {
	var frame [8]byte
	putU32(frame[0:4], uint32(len(payload)))
	putU32(frame[4:8], crc32.Checksum(payload, castagnoli))
	w.mu.Lock()
	if w.f == nil {
		w.mu.Unlock()
		return 0, ErrDatabaseClosed
	}
	if _, err := w.f.Write(frame[:]); err != nil {
		w.mu.Unlock()
		return 0, fmt.Errorf("reldb: wal append gen %d: %w", gen, err)
	}
	if _, err := w.f.Write(payload); err != nil {
		w.mu.Unlock()
		return 0, fmt.Errorf("reldb: wal append gen %d: %w", gen, err)
	}
	if gen > w.appended {
		w.appended = gen
	}
	w.seq++
	seq := w.seq
	w.mu.Unlock()
	obs.Default.WALAppends.Inc()
	obs.Default.WALBytes.Add(int64(len(frame) + len(payload)))
	if w.slot >= 0 {
		obs.Default.WALAppendsByShard.At(w.slot).Inc()
		obs.Default.WALBytesByShard.At(w.slot).Add(int64(len(frame) + len(payload)))
	}
	if w.mode == SyncCommit {
		w.smu.Lock()
		if seq > w.want {
			w.want = seq
		}
		w.smu.Unlock()
		w.scond.Broadcast()
	}
	return seq, nil
}

// waitDurable blocks until the log is durable through the given append
// sequence (SyncCommit mode; the other modes acknowledge immediately).
// A sticky fsync error fails every waiter: durability can no longer be
// promised.
func (w *wal) waitDurable(seq uint64) error {
	if w.mode != SyncCommit {
		return nil
	}
	w.smu.Lock()
	defer w.smu.Unlock()
	for w.synced < seq && w.serr == nil && !w.closed {
		w.scond.Wait()
	}
	if w.serr != nil {
		return w.serr
	}
	if w.synced < seq {
		return ErrDatabaseClosed
	}
	return nil
}

// syncLoop is the group-commit engine: each pass fsyncs once and
// advances the durability watermark to everything appended before the
// fsync started, acknowledging every commit in that window together.
func (w *wal) syncLoop() {
	defer close(w.done)
	for {
		w.smu.Lock()
		for w.want <= w.synced && !w.closed {
			w.scond.Wait()
		}
		if w.closed && w.want <= w.synced {
			w.smu.Unlock()
			return
		}
		w.smu.Unlock()
		w.syncPass()
	}
}

// intervalLoop fsyncs on a timer until closed, then does a final pass.
func (w *wal) intervalLoop() {
	defer close(w.done)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		w.smu.Lock()
		closed := w.closed
		w.smu.Unlock()
		if closed {
			w.syncPass()
			return
		}
		<-t.C
		w.syncPass()
	}
}

// syncPass fsyncs the active segment and advances the durability
// watermark to the append watermark read before the fsync. If a
// checkpoint rolled segments in between, the roll fsynced the old file
// under fsyncMu before this pass could acquire it, so the watermark
// advance is still sound.
func (w *wal) syncPass() {
	w.mu.Lock()
	target := w.seq
	f := w.f
	w.mu.Unlock()
	var err error
	if f != nil {
		w.fsyncMu.Lock()
		start := time.Now()
		err = f.Sync()
		obs.Default.WALFsyncNs.Observe(time.Since(start).Nanoseconds())
		obs.Default.WALFsyncs.Inc()
		if w.slot >= 0 {
			obs.Default.WALFsyncsByShard.At(w.slot).Inc()
		}
		w.fsyncMu.Unlock()
	}
	w.smu.Lock()
	if err != nil && w.serr == nil {
		w.serr = fmt.Errorf("reldb: wal fsync: %w", err)
	}
	if err == nil && target > w.synced {
		w.synced = target
	}
	w.smu.Unlock()
	w.scond.Broadcast()
}

// roll closes the active segment (fsynced) and starts a fresh one that
// begins after the current append watermark. Called by checkpoints;
// roll takes only wal-internal locks, so it runs concurrently with
// commits. Returns the generation the new segment starts after. An
// already-empty active segment is reused as is.
func (w *wal) roll() (uint64, error) {
	w.fsyncMu.Lock()
	defer w.fsyncMu.Unlock()
	w.mu.Lock()
	if w.f == nil {
		w.mu.Unlock()
		return 0, ErrDatabaseClosed
	}
	if w.appended == w.segStart {
		start := w.segStart
		w.mu.Unlock()
		return start, nil
	}
	start := w.appended
	old := w.f
	nf, err := createSegment(filepath.Join(w.dir, walSegmentName(start)))
	if err != nil {
		w.mu.Unlock()
		return 0, err
	}
	w.f = nf
	w.segStart = start
	w.mu.Unlock()
	// Everything in the old segment becomes durable at the roll: later
	// syncPasses fsync only the new file, so this fsync is what lets
	// them advance the watermark past the old segment's records.
	syncErr := old.Sync()
	obs.Default.WALFsyncs.Inc()
	if w.slot >= 0 {
		obs.Default.WALFsyncsByShard.At(w.slot).Inc()
	}
	closeErr := old.Close()
	if syncErr != nil {
		return 0, fmt.Errorf("reldb: wal roll: %w", syncErr)
	}
	if closeErr != nil {
		return 0, fmt.Errorf("reldb: wal roll: %w", closeErr)
	}
	return start, nil
}

// close stops the syncer (final fsync included for SyncCommit/Interval)
// and closes the active segment.
func (w *wal) close() error {
	w.smu.Lock()
	if w.closed {
		w.smu.Unlock()
		<-w.done
		return nil
	}
	w.closed = true
	w.smu.Unlock()
	w.scond.Broadcast()
	<-w.done
	w.mu.Lock()
	f := w.f
	w.f = nil
	w.mu.Unlock()
	if f == nil {
		return nil
	}
	syncErr := f.Sync()
	closeErr := f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// createSegment creates a fresh segment file carrying just the magic
// header. The file is not fsynced here: its records gain durability from
// the first syncPass (or roll) that covers them.
func createSegment(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteString(walSegmentMagic); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

// encodeCommitRecord serializes a commit's DeltaBatch as a WAL payload.
// The batch's Gen must already be stamped. Structural deltas never occur
// here — DDL writes its own record types.
func encodeCommitRecord(batch DeltaBatch) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(recCommit)
	writeU64(&buf, batch.Gen)
	if err := writeBatchBody(&buf, batch); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeBatchBody serializes a DeltaBatch's deltas (the commit-record body
// layout, shared with cross-shard prepare records).
func writeBatchBody(buf *bytes.Buffer, batch DeltaBatch) error {
	writeU32(buf, uint32(len(batch.Deltas)))
	for _, d := range batch.Deltas {
		writeString(buf, d.Relation)
		writeU32(buf, uint32(len(d.Inserts)))
		for _, t := range d.Inserts {
			if err := writeTuple(buf, t); err != nil {
				return err
			}
		}
		writeU32(buf, uint32(len(d.Deletes)))
		for _, t := range d.Deletes {
			if err := writeTuple(buf, t); err != nil {
				return err
			}
		}
		writeU32(buf, uint32(len(d.Replaces)))
		for _, rc := range d.Replaces {
			if err := writeTuple(buf, rc.Old); err != nil {
				return err
			}
			if err := writeTuple(buf, rc.New); err != nil {
				return err
			}
		}
	}
	return nil
}

// encodeCrossPrepareRecord serializes a two-shard commit prepare: the
// transaction id, the participant shard indices, and the pending delta
// batch. The record carries gen 0 — the generation is assigned by the
// decide record that resolves it.
func encodeCrossPrepareRecord(xid string, parts []int, batch DeltaBatch) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(recCrossPrepare)
	writeU64(&buf, 0)
	writeString(&buf, xid)
	writeU32(&buf, uint32(len(parts)))
	for _, p := range parts {
		writeU32(&buf, uint32(p))
	}
	if err := writeBatchBody(&buf, batch); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// encodeCrossDecideRecord serializes a two-shard commit decision. Commit
// decisions carry the generation the pending batch publishes as; abort
// decisions carry gen 0 (no generation is consumed).
func encodeCrossDecideRecord(xid string, commit bool, gen uint64) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(recCrossDecide)
	writeU64(&buf, gen)
	writeString(&buf, xid)
	if commit {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	return buf.Bytes(), nil
}

// encodeCreateRecord serializes a CreateRelation as a WAL payload.
func encodeCreateRecord(gen uint64, schema *Schema) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(recCreate)
	writeU64(&buf, gen)
	if err := writeSchema(&buf, schema); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// encodeDropRecord serializes a DropRelation as a WAL payload.
func encodeDropRecord(gen uint64, name string) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(recDrop)
	writeU64(&buf, gen)
	writeString(&buf, name)
	return buf.Bytes(), nil
}

// walRecord is one decoded log record.
type walRecord struct {
	typ    byte
	gen    uint64
	batch  DeltaBatch // recCommit, recCrossPrepare
	schema *Schema    // recCreate
	rel    string     // recDrop
	xid    string     // recCrossPrepare, recCrossDecide
	parts  []int      // recCrossPrepare
	commit bool       // recCrossDecide
}

// decodeWALRecord parses a CRC-verified payload.
func decodeWALRecord(payload []byte) (*walRecord, error) {
	r := bytes.NewReader(payload)
	typ, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	gen, err := readU64(r)
	if err != nil {
		return nil, err
	}
	rec := &walRecord{typ: typ, gen: gen}
	switch typ {
	case recCommit:
		if rec.batch, err = readBatchBody(r, gen); err != nil {
			return nil, err
		}
	case recCrossPrepare:
		if rec.xid, err = readString(r); err != nil {
			return nil, err
		}
		nParts, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if nParts > maxSnapshotCount {
			return nil, fmt.Errorf("participant count %d too large", nParts)
		}
		rec.parts = make([]int, nParts)
		for i := range rec.parts {
			p, err := readU32(r)
			if err != nil {
				return nil, err
			}
			rec.parts[i] = int(p)
		}
		if rec.batch, err = readBatchBody(r, 0); err != nil {
			return nil, err
		}
	case recCrossDecide:
		if rec.xid, err = readString(r); err != nil {
			return nil, err
		}
		cb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		rec.commit = cb == 1
	case recCreate:
		if rec.schema, err = readSchema(r); err != nil {
			return nil, err
		}
	case recDrop:
		if rec.rel, err = readString(r); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown record type %d", typ)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("record gen %d: %d trailing bytes", gen, r.Len())
	}
	return rec, nil
}

// readBatchBody decodes what writeBatchBody produced, stamping every
// delta with gen.
func readBatchBody(r *bytes.Reader, gen uint64) (DeltaBatch, error) {
	var batch DeltaBatch
	nDeltas, err := readU32(r)
	if err != nil {
		return batch, err
	}
	if nDeltas > maxSnapshotCount {
		return batch, fmt.Errorf("delta count %d too large", nDeltas)
	}
	batch.Gen = gen
	for i := uint32(0); i < nDeltas; i++ {
		d := Delta{Gen: gen}
		if d.Relation, err = readString(r); err != nil {
			return batch, err
		}
		nIns, err := readU32(r)
		if err != nil {
			return batch, err
		}
		for j := uint32(0); j < nIns; j++ {
			t, err := readTuple(r)
			if err != nil {
				return batch, err
			}
			d.Inserts = append(d.Inserts, t)
		}
		nDel, err := readU32(r)
		if err != nil {
			return batch, err
		}
		for j := uint32(0); j < nDel; j++ {
			t, err := readTuple(r)
			if err != nil {
				return batch, err
			}
			d.Deletes = append(d.Deletes, t)
		}
		nRep, err := readU32(r)
		if err != nil {
			return batch, err
		}
		for j := uint32(0); j < nRep; j++ {
			old, err := readTuple(r)
			if err != nil {
				return batch, err
			}
			nw, err := readTuple(r)
			if err != nil {
				return batch, err
			}
			d.Replaces = append(d.Replaces, TupleChange{Old: old, New: nw})
		}
		batch.Deltas = append(batch.Deltas, d)
	}
	return batch, nil
}
