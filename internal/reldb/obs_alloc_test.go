package reldb

import (
	"testing"

	"penguin/internal/obs"
)

// The acceptance guarantee of the observability layer: with no trace
// sink installed, the instrumented transaction paths allocate nothing
// beyond what the uninstrumented engine allocates. Begin allocates
// exactly the Tx struct and its two maps; Commit, Rollback, BeginRead,
// and Close must add zero observability allocations (atomic counter and
// histogram updates only — no Event construction, no formatting).
func TestCommitPathAllocationFreeWhenUntraced(t *testing.T) {
	if obs.Default.Tracing() {
		t.Fatal("test requires no sink installed on obs.Default")
	}
	db := NewDatabase()
	db.MustCreateRelation(MustSchema("R", []Attribute{
		{Name: "K", Type: KindInt},
		{Name: "V", Type: KindString, Nullable: true},
	}, []string{"K"}))

	// Begin + Commit of a read-only transaction: 3 allocations (the Tx
	// struct and the dirty/written maps), none from instrumentation.
	allocs := testing.AllocsPerRun(200, func() {
		tx := db.Begin()
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 3 {
		t.Fatalf("Begin+Commit allocated %.1f/op, want <= 3 (instrumentation must add none)", allocs)
	}

	// Begin + Rollback likewise.
	allocs = testing.AllocsPerRun(200, func() {
		tx := db.Begin()
		if err := tx.Rollback(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 3 {
		t.Fatalf("Begin+Rollback allocated %.1f/op, want <= 3", allocs)
	}

	// BeginRead + Close: the ReadTx struct and the pinned catalog map
	// (header + bucket); the lag observation at Close must not allocate.
	allocs = testing.AllocsPerRun(200, func() {
		rtx := db.BeginRead()
		rtx.Close()
	})
	if allocs > 3 {
		t.Fatalf("BeginRead+Close allocated %.1f/op, want <= 3", allocs)
	}
}

// The stale-ReadTx alert itself must stay allocation-free when no sink
// is installed: the counter bumps, but the Event (and its formatted
// detail) is never constructed. Both alert sites — Close and Fork —
// funnel through staleAlert, so exercising Close pins the shared gate.
func TestStaleAlertAllocationFreeWhenUntraced(t *testing.T) {
	if obs.Default.Tracing() {
		t.Fatal("test requires no sink installed on obs.Default")
	}
	prev := obs.Default.SetReadTxLagAlert(1)
	defer obs.Default.SetReadTxLagAlert(prev)

	db := NewDatabase()
	db.MustCreateRelation(MustSchema("R", []Attribute{
		{Name: "K", Type: KindInt},
	}, []string{"K"}))

	// Pre-open the readers outside the measured region, then advance one
	// generation so every Close sees lag 1 >= threshold 1 and alerts.
	const runs = 200
	readers := make([]*ReadTx, 0, runs+10)
	for i := 0; i < cap(readers); i++ {
		readers = append(readers, db.BeginRead())
	}
	if err := db.RunInTx(func(tx *Tx) error {
		return tx.Insert("R", Tuple{Int(1)})
	}); err != nil {
		t.Fatal(err)
	}

	before := obs.Default.Snapshot()
	next := 0
	allocs := testing.AllocsPerRun(runs, func() {
		readers[next].Close()
		next++
	})
	if allocs != 0 {
		t.Fatalf("stale Close allocated %.1f/op, want 0 (alert must not build events untraced)", allocs)
	}
	delta := obs.Default.Snapshot().Sub(before)
	if got := delta.Counter("reldb.readtx.stale_closes"); got < runs {
		t.Fatalf("stale_closes delta = %d, want >= %d (the alert path must have fired)", got, runs)
	}
}

// Commits, rollbacks, clones, and ErrTxDone hits are counted, and the
// commit-latency histogram records one observation per commit.
func TestTxObservability(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation(MustSchema("R", []Attribute{
		{Name: "K", Type: KindInt},
	}, []string{"K"}))

	before := obs.Default.Snapshot()
	tx := db.Begin()
	if err := tx.Insert("R", Tuple{Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != ErrTxDone { // counted as a txdone hit
		t.Fatalf("second commit: %v", err)
	}
	tx2 := db.Begin()
	_ = tx2.Rollback()
	delta := obs.Default.Snapshot().Sub(before)

	if got := delta.Counter("reldb.tx.commits"); got != 1 {
		t.Errorf("commits delta = %d, want 1", got)
	}
	if got := delta.Counter("reldb.tx.rollbacks"); got != 1 {
		t.Errorf("rollbacks delta = %d, want 1", got)
	}
	if got := delta.Counter("reldb.tx.txdone_hits"); got != 1 {
		t.Errorf("txdone delta = %d, want 1", got)
	}
	if got := delta.Counter("reldb.relation.clones"); got != 1 {
		t.Errorf("clones delta = %d, want 1 (one relation touched)", got)
	}
	if st := delta.Histogram("reldb.tx.commit_ns"); st.Count != 1 {
		t.Errorf("commit_ns count = %d, want 1 (only the successful commit observes)", st.Count)
	}
}

// ReadTx.Close records the snapshot's generation lag; a snapshot that
// watched two commits go by reports lag 2.
func TestReadTxLagObserved(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation(MustSchema("R", []Attribute{
		{Name: "K", Type: KindInt},
	}, []string{"K"}))

	before := obs.Default.Snapshot()
	rtx := db.BeginRead()
	for i := 0; i < 2; i++ {
		if err := db.RunInTx(func(tx *Tx) error {
			return tx.Insert("R", Tuple{Int(int64(i))})
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !rtx.Stale() {
		t.Fatal("snapshot should be stale")
	}
	rtx.Close()
	rtx.Close() // idempotent: observed once only
	delta := obs.Default.Snapshot().Sub(before)
	lag := delta.Histogram("reldb.readtx.lag_generations")
	if lag.Count != 1 {
		t.Fatalf("lag observations = %d, want 1", lag.Count)
	}
	if lag.Sum != 2 {
		t.Fatalf("lag sum = %d, want 2", lag.Sum)
	}
	if got := delta.Counter("reldb.readtx.begins"); got != 1 {
		t.Fatalf("readtx begins delta = %d, want 1", got)
	}
}

// Every MatchEqual lookup attributes its cost to the relation it ran
// against: the labeled reldb.relation.* families carry the same numbers
// MatchStats accumulates, keyed by relation name.
func TestPerRelationAttribution(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation(MustSchema("ATTRIB", []Attribute{
		{Name: "K", Type: KindInt},
		{Name: "G", Type: KindInt},
	}, []string{"K"}))
	if err := db.RunInTx(func(tx *Tx) error {
		for i := 0; i < 8; i++ {
			if err := tx.Insert("ATTRIB", Tuple{Int(int64(i)), Int(int64(i % 2))}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	rel := db.MustRelation("ATTRIB")

	before := obs.Default.Snapshot()
	var st MatchStats
	if _, err := rel.MatchEqualStats([]string{"G"}, Tuple{Int(0)}, &st); err != nil {
		t.Fatal(err)
	}
	delta := obs.Default.Snapshot().Sub(before)
	if got := delta.LabeledCounterValue("reldb.relation.scanned", "ATTRIB"); got != int64(st.Scanned) {
		t.Errorf("labeled scanned = %d, MatchStats says %d", got, st.Scanned)
	}
	probes := delta.LabeledCounterValue("reldb.relation.probes", "ATTRIB")
	scans := delta.LabeledCounterValue("reldb.relation.scans", "ATTRIB")
	if probes != int64(st.Probes) || scans != int64(st.Scans) {
		t.Errorf("labeled probes/scans = %d/%d, MatchStats says %d/%d",
			probes, scans, st.Probes, st.Scans)
	}
	if st.Scanned == 0 || probes+scans == 0 {
		t.Errorf("lookup cost not attributed: stats=%+v probes=%d scans=%d", st, probes, scans)
	}
}
