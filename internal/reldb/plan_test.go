package reldb

import (
	"fmt"
	"strings"
	"testing"

	"penguin/internal/obs"
)

// planCounts reads the plan-cache counters from the Default registry.
func planCounts() (lookups, hits, misses, invalidations int64) {
	s := obs.Capture()
	return s.Counter("reldb.plancache.lookups"),
		s.Counter("reldb.plancache.hits"),
		s.Counter("reldb.plancache.misses"),
		s.Counter("reldb.plancache.invalidations")
}

// cloneDrops reads the clone-side churn counter: warm plans left behind
// when a write transaction cloned the relation for the next generation.
func cloneDrops() int64 {
	return obs.Capture().Counter("reldb.plancache.clone_drops")
}

func TestPlanCacheHitMissAccounting(t *testing.T) {
	r := newGradesRel(t)
	if err := r.Insert(grade("CS101", 1, "A")); err != nil {
		t.Fatal(err)
	}
	if err := r.CreateIndex("byGrade", []string{"Grade"}); err != nil {
		t.Fatal(err)
	}
	l0, h0, m0, _ := planCounts()

	// First lookup on a fresh attr set: one lookup, one miss.
	if _, err := r.MatchEqual([]string{"Grade"}, Tuple{String("A")}); err != nil {
		t.Fatal(err)
	}
	l, h, m, _ := planCounts()
	if l-l0 != 1 || h-h0 != 0 || m-m0 != 1 {
		t.Fatalf("after first lookup: lookups+%d hits+%d misses+%d, want +1/+0/+1", l-l0, h-h0, m-m0)
	}

	// Repeats hit: every access path kind caches (index, point, scan).
	for i := 0; i < 3; i++ {
		if _, err := r.MatchEqual([]string{"Grade"}, Tuple{String("A")}); err != nil {
			t.Fatal(err)
		}
	}
	l, h, m, _ = planCounts()
	if l-l0 != 4 || h-h0 != 3 || m-m0 != 1 {
		t.Fatalf("after repeats: lookups+%d hits+%d misses+%d, want +4/+3/+1", l-l0, h-h0, m-m0)
	}

	// A different attr set is its own entry; the batch family shares the
	// cache but keys by its own call site attr list.
	if _, err := r.MatchEqual([]string{"CourseID", "PID"}, Tuple{String("CS101"), Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.MatchEqualBatch([]string{"Grade"}, []Tuple{{String("A")}}); err != nil {
		t.Fatal(err)
	}
	l, h, m, _ = planCounts()
	if l-l0 != 6 || h-h0 != 4 || m-m0 != 2 {
		t.Fatalf("after point+batch: lookups+%d hits+%d misses+%d, want +6/+4/+2", l-l0, h-h0, m-m0)
	}
	if l-l0 != (h-h0)+(m-m0) {
		t.Fatalf("lookups %d != hits %d + misses %d", l-l0, h-h0, m-m0)
	}

	// Errors count nothing.
	if _, err := r.MatchEqual([]string{"NoSuchAttr"}, Tuple{Int(1)}); err == nil {
		t.Fatal("expected error for unknown attribute")
	}
	if l2, h2, m2, _ := planCounts(); l2 != l || h2 != h || m2 != m {
		t.Fatalf("error changed counters: lookups %d->%d hits %d->%d misses %d->%d", l, l2, h, h2, m, m2)
	}
}

func TestPlanCacheInvalidatedByIndexDDL(t *testing.T) {
	r := newGradesRel(t)
	if err := r.Insert(grade("CS101", 1, "A")); err != nil {
		t.Fatal(err)
	}
	// Cache a scan plan for Grade, then create a covering index: the old
	// plan must not survive, or the lookup would keep scanning forever.
	var st MatchStats
	if _, err := r.MatchEqualStats([]string{"Grade"}, Tuple{String("A")}, &st); err != nil {
		t.Fatal(err)
	}
	if st.Scans != 1 {
		t.Fatalf("pre-index lookup should scan, stats = %+v", st)
	}
	_, _, _, i0 := planCounts()
	if err := r.CreateIndex("byGrade", []string{"Grade"}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, i := planCounts(); i-i0 != 1 {
		t.Fatalf("CreateIndex invalidations +%d, want +1", i-i0)
	}
	st = MatchStats{}
	if _, err := r.MatchEqualStats([]string{"Grade"}, Tuple{String("A")}, &st); err != nil {
		t.Fatal(err)
	}
	if st.Probes != 1 || st.Scans != 0 {
		t.Fatalf("post-index lookup should probe, stats = %+v", st)
	}

	// DropIndex likewise purges; the next lookup replans to a scan.
	_, _, _, i0 = planCounts()
	if err := r.DropIndex("byGrade"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, i := planCounts(); i-i0 != 1 {
		t.Fatalf("DropIndex invalidations +%d, want +1", i-i0)
	}
	st = MatchStats{}
	if _, err := r.MatchEqualStats([]string{"Grade"}, Tuple{String("A")}, &st); err != nil {
		t.Fatal(err)
	}
	if st.Scans != 1 {
		t.Fatalf("post-drop lookup should scan, stats = %+v", st)
	}
}

func TestPlanCacheColdAfterClone(t *testing.T) {
	db := NewDatabase()
	if _, err := db.CreateRelation(gradesSchema(t)); err != nil {
		t.Fatal(err)
	}
	err := db.RunInTx(func(tx *Tx) error {
		return tx.Insert("GRADES", grade("CS101", 1, "A"))
	})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := db.Relation("GRADES")
	if err != nil {
		t.Fatal(err)
	}
	// Warm the committed version's cache, then write: the clone must
	// resolve afresh (miss), and the warm plans count as clone drops —
	// not as DDL invalidations, so hit-rate dashboards can tell
	// generational churn from explicit purges.
	if _, err := rel.MatchEqual([]string{"Grade"}, Tuple{String("A")}); err != nil {
		t.Fatal(err)
	}
	_, _, m0, i0 := planCounts()
	d0 := cloneDrops()
	err = db.RunInTx(func(tx *Tx) error {
		return tx.Insert("GRADES", grade("CS101", 2, "B"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := cloneDrops(); d-d0 < 1 {
		t.Fatalf("clone drops +%d, want >= 1", d-d0)
	}
	if _, _, _, i := planCounts(); i != i0 {
		t.Fatalf("clone counted as DDL invalidation (+%d), want clone_drops only", i-i0)
	}
	rel2, err := db.Relation("GRADES")
	if err != nil {
		t.Fatal(err)
	}
	if rel2 == rel {
		t.Fatal("commit should have published a new relation version")
	}
	if _, err := rel2.MatchEqual([]string{"Grade"}, Tuple{String("A")}); err != nil {
		t.Fatal(err)
	}
	if _, _, m, _ := planCounts(); m-m0 < 1 {
		t.Fatalf("new version misses +%d, want >= 1 (cache should start cold)", m-m0)
	}
	// The old pinned version still answers from its own (warm) cache.
	if out, err := rel.MatchEqual([]string{"Grade"}, Tuple{String("A")}); err != nil || len(out) != 1 {
		t.Fatalf("old version lookup = %v, %v", out, err)
	}
}

func TestSelectParallelMatchesSelect(t *testing.T) {
	r := newGradesRel(t)
	// Enough rows to clear selectParallelMinRows.
	for i := 0; i < selectParallelMinRows+100; i++ {
		g := "A"
		if i%3 == 0 {
			g = "B"
		}
		if err := r.Insert(grade(fmt.Sprintf("CS%03d", i%7), int64(i), g)); err != nil {
			t.Fatal(err)
		}
	}
	for _, pred := range []Expr{
		nil,
		Eq("Grade", String("B")),
		Cmp{Op: OpGt, L: Attr{Name: "PID"}, R: Const{V: Int(400)}},
	} {
		want, err := r.Select(pred)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 7} {
			got, err := r.SelectParallel(pred, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("pred=%v workers=%d: %d tuples, want %d", pred, workers, len(got), len(want))
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("pred=%v workers=%d: tuple %d = %v, want %v (order must match Select)",
						pred, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSelectParallelError(t *testing.T) {
	r := newGradesRel(t)
	for i := 0; i < selectParallelMinRows; i++ {
		if err := r.Insert(grade("CS101", int64(i), "A")); err != nil {
			t.Fatal(err)
		}
	}
	bad := Eq("NoSuchAttr", Int(1))
	out, err := r.SelectParallel(bad, 4)
	if err == nil {
		t.Fatal("expected predicate error")
	}
	if out != nil {
		t.Fatalf("errored SelectParallel returned %d tuples, want nil", len(out))
	}
	want, wantErr := r.Select(bad)
	if want != nil || wantErr == nil {
		t.Fatal("Select baseline should also error with nil result")
	}
	if err.Error() != wantErr.Error() {
		t.Fatalf("error %q, want Select's %q", err, wantErr)
	}
}

func TestEqConjunction(t *testing.T) {
	attrs, vals, ok := EqConjunction(Eq("Grade", String("A")))
	if !ok || len(attrs) != 1 || attrs[0] != "Grade" || !vals[0].Equal(String("A")) {
		t.Fatalf("single eq: %v %v %v", attrs, vals, ok)
	}
	// Reversed operand order and conjunction.
	attrs, vals, ok = EqConjunction(And{Terms: []Expr{
		Cmp{Op: OpEq, L: Const{V: String("CS101")}, R: Attr{Name: "CourseID"}},
		Eq("PID", Int(1)),
	}})
	if !ok || strings.Join(attrs, ",") != "CourseID,PID" || !vals[1].Equal(Int(1)) {
		t.Fatalf("conjunction: %v %v %v", attrs, vals, ok)
	}
	for _, pred := range []Expr{
		Cmp{Op: OpLt, L: Attr{Name: "PID"}, R: Const{V: Int(1)}},         // not equality
		Cmp{Op: OpEq, L: Attr{Name: "A"}, R: Attr{Name: "B"}},            // attr = attr
		Cmp{Op: OpEq, L: Attr{Rel: "R", Name: "A"}, R: Const{V: Int(1)}}, // qualified
		And{Terms: []Expr{Eq("A", Int(1)), Not{E: Eq("B", Int(2))}}},     // nested structure
		Or{Terms: []Expr{Eq("A", Int(1))}},                               // not a conjunction
		And{},                                                            // empty
	} {
		if _, _, ok := EqConjunction(pred); ok {
			t.Fatalf("EqConjunction(%v) should be false", pred)
		}
	}
}

func TestProbeableEqual(t *testing.T) {
	s, err := NewSchema("MIX",
		[]Attribute{
			{Name: "ID", Type: KindInt},
			{Name: "Score", Type: KindFloat},
			{Name: "Tag", Type: KindString, Nullable: true},
		},
		[]string{"ID"})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRelation(s)
	if err := r.CreateIndex("byTag", []string{"Tag"}); err != nil {
		t.Fatal(err)
	}
	if err := r.CreateIndex("byScore", []string{"Score"}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		attrs []string
		vals  Tuple
		want  bool
	}{
		{"key point", []string{"ID"}, Tuple{Int(7)}, true},
		{"indexed string", []string{"Tag"}, Tuple{String("x")}, true},
		{"float attr never probes", []string{"Score"}, Tuple{Float(1.5)}, false},
		{"kind mismatch", []string{"ID"}, Tuple{Float(7)}, false},
		{"null constant", []string{"Tag"}, Tuple{Null()}, false},
		{"no access path", []string{"ID", "Tag"}, Tuple{Int(7), String("x")}, false},
		{"unknown attr", []string{"Nope"}, Tuple{Int(1)}, false},
		{"duplicate attr", []string{"Tag", "Tag"}, Tuple{String("x"), String("x")}, false},
	}
	for _, c := range cases {
		if got := r.ProbeableEqual(c.attrs, c.vals); got != c.want {
			t.Errorf("%s: ProbeableEqual = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestFloatProbeSemantics documents why ProbeableEqual refuses Float
// attributes: a Float column may store Int values (kindAssignable),
// which compare equal to a Float constant under scan semantics but
// encode differently, so an index probe would miss them.
func TestFloatProbeSemantics(t *testing.T) {
	s, err := NewSchema("F",
		[]Attribute{{Name: "ID", Type: KindInt}, {Name: "V", Type: KindFloat}},
		[]string{"ID"})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRelation(s)
	if err := r.Insert(Tuple{Int(1), Int(5)}); err != nil { // Int into Float column
		t.Fatal(err)
	}
	got, err := r.Select(Eq("V", Float(5)))
	if err != nil || len(got) != 1 {
		t.Fatalf("scan Select = %v, %v; want the Int-valued row (Compare is numeric)", got, err)
	}
	if r.ProbeableEqual([]string{"V"}, Tuple{Float(5)}) {
		t.Fatal("ProbeableEqual must refuse the Float column")
	}
}

func TestMatchEqualErrorsUnchangedByPlanCache(t *testing.T) {
	r := newGradesRel(t)
	if _, err := r.MatchEqual([]string{"CourseID", "CourseID"}, Tuple{String("a"), String("a")}); err == nil {
		t.Fatal("duplicate attribute should error")
	}
	if _, err := r.MatchEqual([]string{"Grade"}, Tuple{Int(5)}); err == nil {
		t.Fatal("kind mismatch should error")
	}
	// The error paths must not poison the cache: a valid lookup after an
	// invalid one still works.
	if err := r.Insert(grade("CS101", 1, "A")); err != nil {
		t.Fatal(err)
	}
	out, err := r.MatchEqual([]string{"Grade"}, Tuple{String("A")})
	if err != nil || len(out) != 1 {
		t.Fatalf("valid lookup after errors = %v, %v", out, err)
	}
	if _, err := r.MatchEqual([]string{"Grade"}, Tuple{Int(5)}); err == nil {
		t.Fatal("kind mismatch should still error on a cached plan")
	}
}
