package reldb

// EqConjunction decomposes pred into an attribute-name list and the
// constant values they are compared with, when pred is a pure
// conjunction of unqualified attribute = constant equalities (a single
// Cmp, or an And whose terms are all such Cmps, either operand order).
// Such predicates are exactly the ones a MatchEqual probe can answer.
// Anything else — other operators, qualified attribute references,
// nested boolean structure, attribute-to-attribute comparisons — returns
// ok=false, leaving the caller on the scan path with its full predicate
// semantics (including error reporting).
func EqConjunction(pred Expr) (attrNames []string, vals Tuple, ok bool) {
	var terms []Expr
	switch p := pred.(type) {
	case Cmp:
		terms = []Expr{p}
	case And:
		terms = p.Terms
	default:
		return nil, nil, false
	}
	if len(terms) == 0 {
		return nil, nil, false
	}
	attrNames = make([]string, 0, len(terms))
	vals = make(Tuple, 0, len(terms))
	for _, t := range terms {
		cmp, isCmp := t.(Cmp)
		if !isCmp || cmp.Op != OpEq {
			return nil, nil, false
		}
		a, aOK := cmp.L.(Attr)
		c, cOK := cmp.R.(Const)
		if !aOK || !cOK {
			a, aOK = cmp.R.(Attr)
			c, cOK = cmp.L.(Const)
		}
		if !aOK || !cOK || a.Rel != "" {
			return nil, nil, false
		}
		attrNames = append(attrNames, a.Name)
		vals = append(vals, c.V)
	}
	return attrNames, vals, true
}

// ProbeableEqual reports whether a MatchEqual over attrNames/vals on
// this relation version is guaranteed to return exactly the tuples a
// predicate scan for the same equality conjunction would — so a caller
// holding an EqConjunction decomposition may substitute the probe for
// the scan. The guarantee requires:
//
//   - every attribute resolves, with no duplicates (MatchEqual rejects
//     duplicates; a contradictory duplicate also needs scan semantics);
//   - no constant is null (x = null is three-valued null, which a scan
//     treats as no-match but checkLookupVals may reject as an error);
//   - every constant's kind exactly equals its attribute's declared
//     type, and that type is not Float: index buckets and point lookups
//     match on byte-exact key encodings, while scan equality is
//     numeric — a Float attribute may store Int values (kindAssignable)
//     that compare equal to a Float constant but encode differently;
//   - an access path better than a scan exists (primary-key set or a
//     covering secondary index) — otherwise probing buys nothing.
func (r *Relation) ProbeableEqual(attrNames []string, vals Tuple) bool {
	if len(attrNames) == 0 || len(attrNames) != len(vals) {
		return false
	}
	idx, err := r.lookupIndices("ProbeableEqual", attrNames)
	if err != nil {
		return false
	}
	for i, j := range idx {
		a := r.schema.Attr(j)
		v := vals[i]
		if v.IsNull() || a.Type == KindFloat || v.Kind() != a.Type {
			return false
		}
	}
	if sameIntSet(idx, r.schema.key) {
		return true
	}
	ix, _ := r.findIndex(idx)
	return ix != nil
}
