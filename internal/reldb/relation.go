package reldb

import (
	"fmt"
	"sort"
	"sync"

	"penguin/internal/obs"
)

// Relation is an in-memory keyed table. Rows live in a map keyed by the
// order-preserving encoding of the primary key; scans sort the encoded
// keys to yield a deterministic, key-ordered iteration. Optional secondary
// hash indexes accelerate equality lookups on non-key attribute sets
// (the connection attributes of the structural model).
//
// Relation is not internally synchronized. Under the database's copy-on-
// write discipline, committed versions are immutable: write transactions
// mutate a private clone and publish it at commit, so any *Relation
// obtained from the catalog (directly or through a ReadTx snapshot) is
// safe to read concurrently. Stored tuples are never mutated in place
// (Insert and Replace store defensive copies), which lets clones share
// them.
type Relation struct {
	schema  *Schema
	rows    map[string]Tuple
	indexes map[string]*secondaryIndex
	// gen is the commit generation that published this version (0 for a
	// version never published by a transaction).
	gen uint64
	// obsSlot is the relation name's slot in obs.Default.Relations,
	// interned at construction so the per-relation lookup-cost counters
	// (reldb.relation.scanned and friends) stay allocation-free.
	obsSlot int
	// plans memoizes index selection per attribute list for this version
	// of the relation. It is the one mutable piece of a committed
	// (otherwise immutable) version, and carries its own lock; clones
	// start with a cold cache, so advancing the generation invalidates
	// plans automatically. See plan.go.
	plans planCache
}

type secondaryIndex struct {
	name  string
	attrs []int // attribute indices, in the order given at creation
	// buckets maps encoded attr values to the set of encoded primary keys.
	buckets map[string]map[string]struct{}
}

// NewRelation creates an empty relation with the given schema. The
// schema's name is interned into the obs relation-label dimension here —
// registration time — so every later labeled increment is slot-indexed.
func NewRelation(schema *Schema) *Relation {
	return &Relation{
		schema:  schema,
		rows:    make(map[string]Tuple),
		indexes: make(map[string]*secondaryIndex),
		obsSlot: obs.Default.Relations.Intern(schema.Name()),
	}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Name returns the relation's name.
func (r *Relation) Name() string { return r.schema.Name() }

// Count returns the number of tuples in the relation.
func (r *Relation) Count() int { return len(r.rows) }

// Generation returns the commit generation that published this version of
// the relation.
func (r *Relation) Generation() uint64 { return r.gen }

// Insert adds a tuple. It fails with ErrDuplicateKey if a tuple with the
// same primary key exists, and with a validation error if the tuple does
// not satisfy the schema.
func (r *Relation) Insert(t Tuple) error {
	if err := r.schema.CheckTuple(t); err != nil {
		return err
	}
	ek := r.schema.EncodeKeyOf(t)
	if _, exists := r.rows[ek]; exists {
		return fmt.Errorf("reldb: %s: insert %s: %w", r.Name(), r.schema.KeyOf(t), ErrDuplicateKey)
	}
	t = t.Clone()
	r.rows[ek] = t
	for _, ix := range r.indexes {
		ix.add(t, ek)
	}
	r.invalidateRangePlans()
	return nil
}

// Get fetches the tuple with the given key values (canonical key order).
func (r *Relation) Get(key Tuple) (Tuple, bool) {
	ek, err := r.schema.EncodeKey(key)
	if err != nil {
		return nil, false
	}
	t, ok := r.rows[ek]
	if !ok {
		return nil, false
	}
	return t.Clone(), true
}

// GetEncoded fetches the tuple with the given encoded primary key.
func (r *Relation) GetEncoded(ek string) (Tuple, bool) {
	t, ok := r.rows[ek]
	if !ok {
		return nil, false
	}
	return t.Clone(), true
}

// Has reports whether a tuple with the given key values exists.
func (r *Relation) Has(key Tuple) bool {
	_, ok := r.Get(key)
	return ok
}

// Delete removes the tuple with the given key values and returns it.
// It fails with ErrNoSuchTuple if absent.
func (r *Relation) Delete(key Tuple) (Tuple, error) {
	ek, err := r.schema.EncodeKey(key)
	if err != nil {
		return nil, err
	}
	t, ok := r.rows[ek]
	if !ok {
		return nil, fmt.Errorf("reldb: %s: delete %s: %w", r.Name(), key, ErrNoSuchTuple)
	}
	delete(r.rows, ek)
	for _, ix := range r.indexes {
		ix.remove(t, ek)
	}
	r.invalidateRangePlans()
	return t, nil
}

// Replace substitutes the tuple identified by oldKey with newTuple, which
// may carry a different primary key (a key replacement). It fails with
// ErrNoSuchTuple if oldKey is absent and with ErrDuplicateKey if the new
// key collides with a different existing tuple.
func (r *Relation) Replace(oldKey Tuple, newTuple Tuple) error {
	if err := r.schema.CheckTuple(newTuple); err != nil {
		return err
	}
	oldEK, err := r.schema.EncodeKey(oldKey)
	if err != nil {
		return err
	}
	old, ok := r.rows[oldEK]
	if !ok {
		return fmt.Errorf("reldb: %s: replace %s: %w", r.Name(), oldKey, ErrNoSuchTuple)
	}
	newEK := r.schema.EncodeKeyOf(newTuple)
	if newEK != oldEK {
		if _, clash := r.rows[newEK]; clash {
			return fmt.Errorf("reldb: %s: replace %s -> %s: %w",
				r.Name(), oldKey, r.schema.KeyOf(newTuple), ErrDuplicateKey)
		}
	}
	delete(r.rows, oldEK)
	nt := newTuple.Clone()
	r.rows[newEK] = nt
	for _, ix := range r.indexes {
		ix.remove(old, oldEK)
		ix.add(nt, newEK)
	}
	r.invalidateRangePlans()
	return nil
}

// Scan calls fn for every tuple in primary-key order. If fn returns false
// the scan stops early. The tuple passed to fn must not be mutated.
func (r *Relation) Scan(fn func(Tuple) bool) {
	eks := make([]string, 0, len(r.rows))
	for ek := range r.rows {
		eks = append(eks, ek)
	}
	sort.Strings(eks)
	for _, ek := range eks {
		if !fn(r.rows[ek]) {
			return
		}
	}
}

// All returns every tuple in primary-key order, as copies.
func (r *Relation) All() []Tuple {
	out := make([]Tuple, 0, len(r.rows))
	r.Scan(func(t Tuple) bool {
		out = append(out, t.Clone())
		return true
	})
	return out
}

// Select returns all tuples satisfying the predicate, in key order.
// A nil predicate selects everything. On a predicate evaluation error the
// result slice is nil — never a truncated prefix a caller could silently
// use.
func (r *Relation) Select(pred Expr) ([]Tuple, error) {
	var out []Tuple
	var evalErr error
	r.Scan(func(t Tuple) bool {
		if pred != nil {
			ok, err := EvalBool(pred, Row{Schema: r.schema, Tuple: t})
			if err != nil {
				evalErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		out = append(out, t.Clone())
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// selectParallelMinRows is the relation size below which SelectParallel
// runs sequentially: chunking and goroutine startup cost more than the
// scan they would split.
const selectParallelMinRows = 512

// SelectParallel is Select evaluated on up to `workers` goroutines over
// contiguous chunks of the key-sorted row set. The result is identical
// to Select — tuples in primary-key order, nil slice on any predicate
// evaluation error (the error of the lowest-keyed chunk wins, so the
// reported error is deterministic). Callers must honor the same
// immutability contract as Scan: committed relation versions only.
func (r *Relation) SelectParallel(pred Expr, workers int) ([]Tuple, error) {
	if workers <= 1 || len(r.rows) < selectParallelMinRows {
		return r.Select(pred)
	}
	eks := make([]string, 0, len(r.rows))
	for ek := range r.rows {
		eks = append(eks, ek)
	}
	sort.Strings(eks)
	if workers > len(eks) {
		workers = len(eks)
	}
	chunkResults := make([][]Tuple, workers)
	chunkErrs := make([]error, workers)
	var wg sync.WaitGroup
	per := (len(eks) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(eks) {
			hi = len(eks)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var out []Tuple
			for _, ek := range eks[lo:hi] {
				t := r.rows[ek]
				if pred != nil {
					ok, err := EvalBool(pred, Row{Schema: r.schema, Tuple: t})
					if err != nil {
						chunkErrs[w] = err
						return
					}
					if !ok {
						continue
					}
				}
				out = append(out, t.Clone())
			}
			chunkResults[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for w := 0; w < workers; w++ {
		if chunkErrs[w] != nil {
			return nil, chunkErrs[w]
		}
		total += len(chunkResults[w])
	}
	out := make([]Tuple, 0, total)
	for _, chunk := range chunkResults {
		out = append(out, chunk...)
	}
	return out, nil
}

// CreateIndex registers a secondary hash index over the named attributes
// and backfills it. Index names are unique per relation.
func (r *Relation) CreateIndex(name string, attrNames []string) error {
	if _, dup := r.indexes[name]; dup {
		return fmt.Errorf("reldb: %s: index %s already exists", r.Name(), name)
	}
	idx, err := r.schema.Indices(attrNames)
	if err != nil {
		return err
	}
	ix := &secondaryIndex{
		name:    name,
		attrs:   idx,
		buckets: make(map[string]map[string]struct{}),
	}
	for ek, t := range r.rows {
		ix.add(t, ek)
	}
	r.indexes[name] = ix
	r.invalidatePlans()
	return nil
}

// DropIndex removes a secondary index.
func (r *Relation) DropIndex(name string) error {
	if _, ok := r.indexes[name]; !ok {
		return fmt.Errorf("reldb: %s: index %s: %w", r.Name(), name, ErrNoSuchIndex)
	}
	delete(r.indexes, name)
	r.invalidatePlans()
	return nil
}

// IndexNames returns the names of the relation's secondary indexes, sorted.
func (r *Relation) IndexNames() []string {
	names := make([]string, 0, len(r.indexes))
	for n := range r.indexes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// checkLookupVals validates lookup values against the attributes they
// probe: arity, value kinds (per the same assignability rule as
// CheckTuple), and nulls (allowed only where the attribute is nullable).
// A wrong-typed value can never match a stored tuple, so accepting it
// would silently return an empty result where Select and CheckTuple
// report an error.
func (r *Relation) checkLookupVals(what string, idx []int, vals Tuple) error {
	if len(vals) != len(idx) {
		return fmt.Errorf("reldb: %s: %s wants %d values, got %d",
			r.Name(), what, len(idx), len(vals))
	}
	for i, j := range idx {
		a := r.schema.attrs[j]
		v := vals[i]
		if v.IsNull() {
			if r.schema.isKey[j] || !a.Nullable {
				return fmt.Errorf("reldb: %s: %s: attribute %s cannot be null",
					r.Name(), what, a.Name)
			}
			continue
		}
		if !kindAssignable(a.Type, v.Kind()) {
			return fmt.Errorf("reldb: %s: %s: attribute %s has kind %s, want %s",
				r.Name(), what, a.Name, v.Kind(), a.Type)
		}
	}
	return nil
}

// LookupIndex returns the tuples whose indexed attributes equal vals, in
// primary-key order. It fails with ErrNoSuchIndex for unknown indexes and
// with a validation error when vals do not fit the indexed attributes.
func (r *Relation) LookupIndex(name string, vals Tuple) ([]Tuple, error) {
	ix, ok := r.indexes[name]
	if !ok {
		return nil, fmt.Errorf("reldb: %s: index %s: %w", r.Name(), name, ErrNoSuchIndex)
	}
	if err := r.checkLookupVals("index "+name, ix.attrs, vals); err != nil {
		return nil, err
	}
	return r.probeBucket(ix, EncodeValues(vals...)), nil
}

// probeBucket materializes one index bucket in primary-key order.
func (r *Relation) probeBucket(ix *secondaryIndex, key string) []Tuple {
	bucket := ix.buckets[key]
	if len(bucket) == 0 {
		return nil
	}
	eks := make([]string, 0, len(bucket))
	for ek := range bucket {
		eks = append(eks, ek)
	}
	sort.Strings(eks)
	out := make([]Tuple, len(eks))
	for i, ek := range eks {
		out[i] = r.rows[ek].Clone()
	}
	return out
}

// MatchStats accumulates the cost of MatchEqual-family lookups, so
// callers (the view-object assembly in particular) can attribute how
// many stored tuples a lookup had to visit.
type MatchStats struct {
	// Scanned counts tuples visited: probed bucket entries for indexed
	// lookups, the whole relation for scan fallbacks.
	Scanned int
	// Probes counts point lookups and index-bucket probes.
	Probes int
	// Scans counts full-relation scan fallbacks.
	Scans int
}

func (st *MatchStats) addProbe(visited int) {
	if st != nil {
		st.Probes++
		st.Scanned += visited
	}
}

func (st *MatchStats) addScan(visited int) {
	if st != nil {
		st.Scans++
		st.Scanned += visited
	}
}

// obsProbe records one point lookup or index-bucket probe: into the
// caller's MatchStats (may be nil) and into the per-relation labeled
// counters, charging the relation that served the lookup. Slot-indexed
// atomic adds — allocation-free.
func (r *Relation) obsProbe(st *MatchStats, visited int) {
	st.addProbe(visited)
	obs.Default.RelProbes.At(r.obsSlot).Inc()
	obs.Default.RelScanned.At(r.obsSlot).Add(int64(visited))
}

// obsScan records one full-relation scan fallback, likewise attributed
// to the relation — a missing index shows up against the relation that
// pays for it.
func (r *Relation) obsScan(st *MatchStats, visited int) {
	st.addScan(visited)
	obs.Default.RelScans.At(r.obsSlot).Inc()
	obs.Default.RelScanned.At(r.obsSlot).Add(int64(visited))
}

// lookupIndices resolves attrNames and rejects duplicates: the lookup
// paths compare attribute sets, and a duplicated name (e.g. ["id","id"]
// against a two-column key) would falsely pass sameIntSet and build a
// key with a hole.
func (r *Relation) lookupIndices(what string, attrNames []string) ([]int, error) {
	idx, err := r.schema.Indices(attrNames)
	if err != nil {
		return nil, err
	}
	seen := make(map[int]struct{}, len(idx))
	for _, j := range idx {
		if _, dup := seen[j]; dup {
			return nil, fmt.Errorf("reldb: %s: %s: duplicate attribute %s",
				r.Name(), what, r.schema.Attr(j).Name)
		}
		seen[j] = struct{}{}
	}
	return idx, nil
}

// findIndex returns a secondary index covering exactly the attribute set
// idx — in any order — together with the permutation perm such that the
// index's i-th attribute corresponds to the caller's perm[i]-th value.
// When several indexes cover the set, the lexicographically first name
// wins (deterministic selection).
func (r *Relation) findIndex(idx []int) (*secondaryIndex, []int) {
	var best *secondaryIndex
	var bestName string
	for name, ix := range r.indexes {
		if !sameIntSet(ix.attrs, idx) {
			continue
		}
		if best == nil || name < bestName {
			best, bestName = ix, name
		}
	}
	if best == nil {
		return nil, nil
	}
	perm := make([]int, len(best.attrs))
	for i, a := range best.attrs {
		for j, b := range idx {
			if a == b {
				perm[i] = j
				break
			}
		}
	}
	return best, perm
}

// HasIndexOn reports whether a secondary index exists over exactly the
// named attribute set, in any order.
func (r *Relation) HasIndexOn(attrNames []string) bool {
	idx, err := r.lookupIndices("HasIndexOn", attrNames)
	if err != nil {
		return false
	}
	ix, _ := r.findIndex(idx)
	return ix != nil
}

// MatchEqual returns the tuples whose attributes attrNames equal vals,
// using a secondary index over those attributes (in any order) if one
// exists and falling back to a scan otherwise. Results are in
// primary-key order.
func (r *Relation) MatchEqual(attrNames []string, vals Tuple) ([]Tuple, error) {
	return r.MatchEqualStats(attrNames, vals, nil)
}

// MatchEqualStats is MatchEqual that additionally accumulates lookup
// cost into st (which may be nil). Index selection — point lookup vs.
// secondary index vs. scan, plus the value permutation — is resolved
// once per relation version through the lookup-plan cache and reused by
// every subsequent call (and every parallel worker) on that version.
func (r *Relation) MatchEqualStats(attrNames []string, vals Tuple, st *MatchStats) ([]Tuple, error) {
	pl, err := r.planFor("MatchEqual", attrNames)
	if err != nil {
		return nil, err
	}
	if err := r.checkLookupVals("MatchEqual", pl.idx, vals); err != nil {
		return nil, err
	}
	switch pl.kind {
	case planPoint:
		// Equality on exactly the primary-key attributes is a point lookup.
		if t, ok := r.Get(pl.permute(vals)); ok {
			r.obsProbe(st, 1)
			return []Tuple{t}, nil
		}
		r.obsProbe(st, 0)
		return nil, nil
	case planIndex:
		// Permute vals into the index's attribute order, so an index built
		// over the same attributes in a different order still serves the
		// lookup.
		out := r.probeBucket(pl.ix, EncodeValues(pl.permute(vals)...))
		r.obsProbe(st, len(out))
		return out, nil
	}
	var out []Tuple
	r.Scan(func(t Tuple) bool {
		for i, j := range pl.idx {
			if !t[j].Equal(vals[i]) {
				return true
			}
		}
		out = append(out, t.Clone())
		return true
	})
	r.obsScan(st, r.Count())
	return out, nil
}

// MatchEqualBatch answers many MatchEqual probes over the same attribute
// list in one pass. The result maps the encoded form of each value set
// (EncodeValues in the given attribute order) to the matching tuples in
// primary-key order; value sets with no matches are absent. Duplicate
// value sets collapse into one probe. With an index (or a primary-key
// match) the batch costs one probe per distinct value set; without one
// it costs a single shared scan that buckets every value set at once —
// never one scan per value set.
func (r *Relation) MatchEqualBatch(attrNames []string, valSets []Tuple) (map[string][]Tuple, error) {
	return r.MatchEqualBatchStats(attrNames, valSets, nil)
}

// MatchEqualBatchStats is MatchEqualBatch that additionally accumulates
// lookup cost into st (which may be nil).
func (r *Relation) MatchEqualBatchStats(attrNames []string, valSets []Tuple, st *MatchStats) (map[string][]Tuple, error) {
	pl, err := r.planFor("MatchEqualBatch", attrNames)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]Tuple, len(valSets))
	if len(valSets) == 0 {
		return out, nil
	}
	// Validate and deduplicate the probe set.
	type probe struct {
		key  string
		vals Tuple
	}
	probes := make([]probe, 0, len(valSets))
	distinct := make(map[string]bool, len(valSets))
	for _, vs := range valSets {
		if err := r.checkLookupVals("MatchEqualBatch", pl.idx, vs); err != nil {
			return nil, err
		}
		k := EncodeValues(vs...)
		if distinct[k] {
			continue
		}
		distinct[k] = true
		probes = append(probes, probe{key: k, vals: vs})
	}
	switch pl.kind {
	case planPoint:
		// Point lookups on the primary key: one Get per distinct value set.
		key := make(Tuple, len(pl.perm))
		for _, p := range probes {
			for i, j := range pl.perm {
				key[i] = p.vals[j]
			}
			if t, ok := r.Get(key); ok {
				r.obsProbe(st, 1)
				out[p.key] = []Tuple{t}
			} else {
				r.obsProbe(st, 0)
			}
		}
		return out, nil
	case planIndex:
		// Indexed: one bucket probe per distinct value set.
		pv := make(Tuple, len(pl.perm))
		for _, p := range probes {
			for i, j := range pl.perm {
				pv[i] = p.vals[j]
			}
			matches := r.probeBucket(pl.ix, EncodeValues(pv...))
			r.obsProbe(st, len(matches))
			if len(matches) > 0 {
				out[p.key] = matches
			}
		}
		return out, nil
	}
	// No index: one shared scan buckets every value set at once. The scan
	// is in primary-key order, so each bucket comes out key-ordered. The
	// probe keys are encodings of the lookup values in attrNames order, so
	// encoding each row's attrNames projection the same way makes the
	// bucket assignment a map hit.
	var enc []byte
	r.Scan(func(t Tuple) bool {
		enc = enc[:0]
		for _, j := range pl.idx {
			enc = AppendKey(enc, t[j])
		}
		if distinct[string(enc)] {
			k := string(enc)
			out[k] = append(out[k], t.Clone())
		}
		return true
	})
	r.obsScan(st, r.Count())
	return out, nil
}

// sameIntSet reports whether a and b hold the same elements (both are
// duplicate-free attribute index lists).
func sameIntSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (ix *secondaryIndex) keyFor(t Tuple) string {
	vals := make(Tuple, len(ix.attrs))
	for i, j := range ix.attrs {
		vals[i] = t[j]
	}
	return EncodeValues(vals...)
}

func (ix *secondaryIndex) add(t Tuple, ek string) {
	k := ix.keyFor(t)
	b, ok := ix.buckets[k]
	if !ok {
		b = make(map[string]struct{})
		ix.buckets[k] = b
	}
	b[ek] = struct{}{}
}

func (ix *secondaryIndex) remove(t Tuple, ek string) {
	k := ix.keyFor(t)
	if b, ok := ix.buckets[k]; ok {
		delete(b, ek)
		if len(b) == 0 {
			delete(ix.buckets, k)
		}
	}
}

// clone copies the relation's structure — row map and index buckets — into
// an independent version. Stored tuples are shared: they are never mutated
// in place (Insert/Replace store copies), so sharing them is safe and
// keeps the copy-on-write hot path (one clone per relation a transaction
// touches) free of per-tuple allocation.
func (r *Relation) clone() *Relation {
	obs.Default.RelationClones.Inc()
	// The clone starts with a cold plan cache: cached plans pin this
	// version's *secondaryIndex objects, which the clone rebuilds below.
	// The parent's plans stay valid for readers still pinning it, but
	// they are dead weight for the next generation — count them as
	// clone drops, the generational-churn side of plan-cache turnover
	// (explicit index DDL purges count as invalidations instead).
	if n := r.plans.size(); n > 0 {
		obs.Default.PlanCacheCloneDrops.Add(int64(n))
	}
	c := NewRelation(r.schema)
	c.gen = r.gen
	for ek, t := range r.rows {
		c.rows[ek] = t
	}
	for name, ix := range r.indexes {
		c.indexes[name] = &secondaryIndex{
			name:    ix.name,
			attrs:   append([]int(nil), ix.attrs...),
			buckets: make(map[string]map[string]struct{}, len(ix.buckets)),
		}
		for k, b := range ix.buckets {
			nb := make(map[string]struct{}, len(b))
			for ek := range b {
				nb[ek] = struct{}{}
			}
			c.indexes[name].buckets[k] = nb
		}
	}
	return c
}
