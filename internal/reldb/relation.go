package reldb

import (
	"fmt"
	"sort"

	"penguin/internal/obs"
)

// Relation is an in-memory keyed table. Rows live in a map keyed by the
// order-preserving encoding of the primary key; scans sort the encoded
// keys to yield a deterministic, key-ordered iteration. Optional secondary
// hash indexes accelerate equality lookups on non-key attribute sets
// (the connection attributes of the structural model).
//
// Relation is not internally synchronized. Under the database's copy-on-
// write discipline, committed versions are immutable: write transactions
// mutate a private clone and publish it at commit, so any *Relation
// obtained from the catalog (directly or through a ReadTx snapshot) is
// safe to read concurrently. Stored tuples are never mutated in place
// (Insert and Replace store defensive copies), which lets clones share
// them.
type Relation struct {
	schema  *Schema
	rows    map[string]Tuple
	indexes map[string]*secondaryIndex
	// gen is the commit generation that published this version (0 for a
	// version never published by a transaction).
	gen uint64
}

type secondaryIndex struct {
	name  string
	attrs []int // attribute indices, in the order given at creation
	// buckets maps encoded attr values to the set of encoded primary keys.
	buckets map[string]map[string]struct{}
}

// NewRelation creates an empty relation with the given schema.
func NewRelation(schema *Schema) *Relation {
	return &Relation{
		schema:  schema,
		rows:    make(map[string]Tuple),
		indexes: make(map[string]*secondaryIndex),
	}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Name returns the relation's name.
func (r *Relation) Name() string { return r.schema.Name() }

// Count returns the number of tuples in the relation.
func (r *Relation) Count() int { return len(r.rows) }

// Generation returns the commit generation that published this version of
// the relation.
func (r *Relation) Generation() uint64 { return r.gen }

// Insert adds a tuple. It fails with ErrDuplicateKey if a tuple with the
// same primary key exists, and with a validation error if the tuple does
// not satisfy the schema.
func (r *Relation) Insert(t Tuple) error {
	if err := r.schema.CheckTuple(t); err != nil {
		return err
	}
	ek := r.schema.EncodeKeyOf(t)
	if _, exists := r.rows[ek]; exists {
		return fmt.Errorf("reldb: %s: insert %s: %w", r.Name(), r.schema.KeyOf(t), ErrDuplicateKey)
	}
	t = t.Clone()
	r.rows[ek] = t
	for _, ix := range r.indexes {
		ix.add(t, ek)
	}
	return nil
}

// Get fetches the tuple with the given key values (canonical key order).
func (r *Relation) Get(key Tuple) (Tuple, bool) {
	ek, err := r.schema.EncodeKey(key)
	if err != nil {
		return nil, false
	}
	t, ok := r.rows[ek]
	if !ok {
		return nil, false
	}
	return t.Clone(), true
}

// GetEncoded fetches the tuple with the given encoded primary key.
func (r *Relation) GetEncoded(ek string) (Tuple, bool) {
	t, ok := r.rows[ek]
	if !ok {
		return nil, false
	}
	return t.Clone(), true
}

// Has reports whether a tuple with the given key values exists.
func (r *Relation) Has(key Tuple) bool {
	_, ok := r.Get(key)
	return ok
}

// Delete removes the tuple with the given key values and returns it.
// It fails with ErrNoSuchTuple if absent.
func (r *Relation) Delete(key Tuple) (Tuple, error) {
	ek, err := r.schema.EncodeKey(key)
	if err != nil {
		return nil, err
	}
	t, ok := r.rows[ek]
	if !ok {
		return nil, fmt.Errorf("reldb: %s: delete %s: %w", r.Name(), key, ErrNoSuchTuple)
	}
	delete(r.rows, ek)
	for _, ix := range r.indexes {
		ix.remove(t, ek)
	}
	return t, nil
}

// Replace substitutes the tuple identified by oldKey with newTuple, which
// may carry a different primary key (a key replacement). It fails with
// ErrNoSuchTuple if oldKey is absent and with ErrDuplicateKey if the new
// key collides with a different existing tuple.
func (r *Relation) Replace(oldKey Tuple, newTuple Tuple) error {
	if err := r.schema.CheckTuple(newTuple); err != nil {
		return err
	}
	oldEK, err := r.schema.EncodeKey(oldKey)
	if err != nil {
		return err
	}
	old, ok := r.rows[oldEK]
	if !ok {
		return fmt.Errorf("reldb: %s: replace %s: %w", r.Name(), oldKey, ErrNoSuchTuple)
	}
	newEK := r.schema.EncodeKeyOf(newTuple)
	if newEK != oldEK {
		if _, clash := r.rows[newEK]; clash {
			return fmt.Errorf("reldb: %s: replace %s -> %s: %w",
				r.Name(), oldKey, r.schema.KeyOf(newTuple), ErrDuplicateKey)
		}
	}
	delete(r.rows, oldEK)
	nt := newTuple.Clone()
	r.rows[newEK] = nt
	for _, ix := range r.indexes {
		ix.remove(old, oldEK)
		ix.add(nt, newEK)
	}
	return nil
}

// Scan calls fn for every tuple in primary-key order. If fn returns false
// the scan stops early. The tuple passed to fn must not be mutated.
func (r *Relation) Scan(fn func(Tuple) bool) {
	eks := make([]string, 0, len(r.rows))
	for ek := range r.rows {
		eks = append(eks, ek)
	}
	sort.Strings(eks)
	for _, ek := range eks {
		if !fn(r.rows[ek]) {
			return
		}
	}
}

// All returns every tuple in primary-key order, as copies.
func (r *Relation) All() []Tuple {
	out := make([]Tuple, 0, len(r.rows))
	r.Scan(func(t Tuple) bool {
		out = append(out, t.Clone())
		return true
	})
	return out
}

// Select returns all tuples satisfying the predicate, in key order.
// A nil predicate selects everything. On a predicate evaluation error the
// result slice is nil — never a truncated prefix a caller could silently
// use.
func (r *Relation) Select(pred Expr) ([]Tuple, error) {
	var out []Tuple
	var evalErr error
	r.Scan(func(t Tuple) bool {
		if pred != nil {
			ok, err := EvalBool(pred, Row{Schema: r.schema, Tuple: t})
			if err != nil {
				evalErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		out = append(out, t.Clone())
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// CreateIndex registers a secondary hash index over the named attributes
// and backfills it. Index names are unique per relation.
func (r *Relation) CreateIndex(name string, attrNames []string) error {
	if _, dup := r.indexes[name]; dup {
		return fmt.Errorf("reldb: %s: index %s already exists", r.Name(), name)
	}
	idx, err := r.schema.Indices(attrNames)
	if err != nil {
		return err
	}
	ix := &secondaryIndex{
		name:    name,
		attrs:   idx,
		buckets: make(map[string]map[string]struct{}),
	}
	for ek, t := range r.rows {
		ix.add(t, ek)
	}
	r.indexes[name] = ix
	return nil
}

// DropIndex removes a secondary index.
func (r *Relation) DropIndex(name string) error {
	if _, ok := r.indexes[name]; !ok {
		return fmt.Errorf("reldb: %s: index %s: %w", r.Name(), name, ErrNoSuchIndex)
	}
	delete(r.indexes, name)
	return nil
}

// IndexNames returns the names of the relation's secondary indexes, sorted.
func (r *Relation) IndexNames() []string {
	names := make([]string, 0, len(r.indexes))
	for n := range r.indexes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LookupIndex returns the tuples whose indexed attributes equal vals, in
// primary-key order. It fails with ErrNoSuchIndex for unknown indexes.
func (r *Relation) LookupIndex(name string, vals Tuple) ([]Tuple, error) {
	ix, ok := r.indexes[name]
	if !ok {
		return nil, fmt.Errorf("reldb: %s: index %s: %w", r.Name(), name, ErrNoSuchIndex)
	}
	if len(vals) != len(ix.attrs) {
		return nil, fmt.Errorf("reldb: %s: index %s wants %d values, got %d",
			r.Name(), name, len(ix.attrs), len(vals))
	}
	bucket := ix.buckets[EncodeValues(vals...)]
	eks := make([]string, 0, len(bucket))
	for ek := range bucket {
		eks = append(eks, ek)
	}
	sort.Strings(eks)
	out := make([]Tuple, len(eks))
	for i, ek := range eks {
		out[i] = r.rows[ek].Clone()
	}
	return out, nil
}

// MatchEqual returns the tuples whose attributes attrNames equal vals,
// using a secondary index over exactly those attributes if one exists and
// falling back to a scan otherwise. Results are in primary-key order.
func (r *Relation) MatchEqual(attrNames []string, vals Tuple) ([]Tuple, error) {
	idx, err := r.schema.Indices(attrNames)
	if err != nil {
		return nil, err
	}
	if len(vals) != len(idx) {
		return nil, fmt.Errorf("reldb: %s: MatchEqual wants %d values, got %d",
			r.Name(), len(idx), len(vals))
	}
	// Duplicate attributes are rejected: the point-lookup fast path below
	// compares attribute sets, and a duplicated name (e.g. ["id","id"]
	// against a two-column key) would falsely pass sameIntSet and build a
	// key with a hole.
	seen := make(map[int]struct{}, len(idx))
	for _, j := range idx {
		if _, dup := seen[j]; dup {
			return nil, fmt.Errorf("reldb: %s: MatchEqual: duplicate attribute %s",
				r.Name(), r.schema.Attr(j).Name)
		}
		seen[j] = struct{}{}
	}
	// Equality on exactly the primary-key attributes is a point lookup.
	if sameIntSet(idx, r.schema.key) {
		key := make(Tuple, len(r.schema.key))
		for i, k := range r.schema.key {
			for j, a := range idx {
				if a == k {
					key[i] = vals[j]
					break
				}
			}
		}
		if t, ok := r.Get(key); ok {
			return []Tuple{t}, nil
		}
		return nil, nil
	}
	for name, ix := range r.indexes {
		if equalIntSlices(ix.attrs, idx) {
			return r.LookupIndex(name, vals)
		}
	}
	var out []Tuple
	r.Scan(func(t Tuple) bool {
		for i, j := range idx {
			if !t[j].Equal(vals[i]) {
				return true
			}
		}
		out = append(out, t.Clone())
		return true
	})
	return out, nil
}

// sameIntSet reports whether a and b hold the same elements (both are
// duplicate-free attribute index lists).
func sameIntSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (ix *secondaryIndex) keyFor(t Tuple) string {
	vals := make(Tuple, len(ix.attrs))
	for i, j := range ix.attrs {
		vals[i] = t[j]
	}
	return EncodeValues(vals...)
}

func (ix *secondaryIndex) add(t Tuple, ek string) {
	k := ix.keyFor(t)
	b, ok := ix.buckets[k]
	if !ok {
		b = make(map[string]struct{})
		ix.buckets[k] = b
	}
	b[ek] = struct{}{}
}

func (ix *secondaryIndex) remove(t Tuple, ek string) {
	k := ix.keyFor(t)
	if b, ok := ix.buckets[k]; ok {
		delete(b, ek)
		if len(b) == 0 {
			delete(ix.buckets, k)
		}
	}
}

// clone copies the relation's structure — row map and index buckets — into
// an independent version. Stored tuples are shared: they are never mutated
// in place (Insert/Replace store copies), so sharing them is safe and
// keeps the copy-on-write hot path (one clone per relation a transaction
// touches) free of per-tuple allocation.
func (r *Relation) clone() *Relation {
	obs.Default.RelationClones.Inc()
	c := NewRelation(r.schema)
	c.gen = r.gen
	for ek, t := range r.rows {
		c.rows[ek] = t
	}
	for name, ix := range r.indexes {
		c.indexes[name] = &secondaryIndex{
			name:    ix.name,
			attrs:   append([]int(nil), ix.attrs...),
			buckets: make(map[string]map[string]struct{}, len(ix.buckets)),
		}
		for k, b := range ix.buckets {
			nb := make(map[string]struct{}, len(b))
			for ek := range b {
				nb[ek] = struct{}{}
			}
			c.indexes[name].buckets[k] = nb
		}
	}
	return c
}
