package rql

import (
	"fmt"
	"strings"

	"penguin/internal/reldb"
)

// Outcome is the result of executing one statement: a result set for
// queries, an affected-row count for mutations and DDL.
type Outcome struct {
	// Rows is non-nil for SELECT statements.
	Rows *reldb.ResultSet
	// Affected counts tuples inserted, updated, or deleted.
	Affected int
	// Message describes DDL effects.
	Message string
}

// Exec parses and executes one RQL statement against db.
func Exec(db *reldb.Database, src string) (*Outcome, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Run(db, stmt)
}

// Run executes a parsed statement against db.
func Run(db *reldb.Database, stmt Stmt) (*Outcome, error) {
	switch st := stmt.(type) {
	case *CreateTableStmt:
		return runCreate(db, st)
	case *DropTableStmt:
		if err := db.DropRelation(st.Name); err != nil {
			return nil, err
		}
		return &Outcome{Message: "dropped " + st.Name}, nil
	case *InsertStmt:
		return runInsert(db, st)
	case *SelectStmt:
		return runSelect(db, st)
	case *UpdateStmt:
		return runUpdate(db, st)
	case *DeleteStmt:
		return runDelete(db, st)
	default:
		return nil, fmt.Errorf("rql: unknown statement type %T", stmt)
	}
}

func runCreate(db *reldb.Database, st *CreateTableStmt) (*Outcome, error) {
	attrs := make([]reldb.Attribute, len(st.Cols))
	for i, c := range st.Cols {
		attrs[i] = reldb.Attribute{Name: c.Name, Type: c.Type, Nullable: c.Nullable}
	}
	schema, err := reldb.NewSchema(st.Name, attrs, st.Key)
	if err != nil {
		return nil, err
	}
	if _, err := db.CreateRelation(schema); err != nil {
		return nil, err
	}
	return &Outcome{Message: "created " + st.Name}, nil
}

func runInsert(db *reldb.Database, st *InsertStmt) (*Outcome, error) {
	n := 0
	err := db.RunInTx(func(tx *reldb.Tx) error {
		rel, err := tx.Relation(st.Table)
		if err != nil {
			return err
		}
		schema := rel.Schema()
		var colIdx []int
		if len(st.Cols) > 0 {
			colIdx, err = schema.Indices(st.Cols)
			if err != nil {
				return err
			}
		}
		for _, row := range st.Rows {
			var tuple reldb.Tuple
			if colIdx == nil {
				if len(row) != schema.Arity() {
					return fmt.Errorf("rql: insert into %s: %d values, want %d",
						st.Table, len(row), schema.Arity())
				}
				tuple = make(reldb.Tuple, len(row))
				for i, e := range row {
					v, err := constEval(e)
					if err != nil {
						return err
					}
					tuple[i] = v
				}
			} else {
				if len(row) != len(colIdx) {
					return fmt.Errorf("rql: insert into %s: %d values, want %d",
						st.Table, len(row), len(colIdx))
				}
				tuple = make(reldb.Tuple, schema.Arity())
				for i, e := range row {
					v, err := constEval(e)
					if err != nil {
						return err
					}
					tuple[colIdx[i]] = v
				}
			}
			if err := tx.Insert(st.Table, tuple); err != nil {
				return err
			}
			n++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Outcome{Affected: n}, nil
}

// constEval evaluates an expression with no row context (literals and
// arithmetic over them).
func constEval(e reldb.Expr) (reldb.Value, error) {
	return e.Eval(reldb.Row{Schema: emptySchema, Tuple: nil})
}

var emptySchema = reldb.MustSchema("~empty", []reldb.Attribute{
	{Name: "~", Type: reldb.KindBool, Nullable: true},
}, []string{"~"})

// runSelect evaluates the query inside a snapshot-isolated read
// transaction: every scanned relation comes from one committed state, and
// concurrent writers are never blocked by a long-running query.
func runSelect(db *reldb.Database, st *SelectStmt) (*Outcome, error) {
	rtx := db.BeginRead()
	defer rtx.Close()
	from, err := rtx.Relation(st.From)
	if err != nil {
		return nil, err
	}
	var p reldb.Plan = reldb.ScanPlan{Rel: from}
	if len(st.Joins) > 0 {
		p = reldb.QualifyPlan{Input: p, Prefix: st.From}
		for _, j := range st.Joins {
			rel, err := rtx.Relation(j.Table)
			if err != nil {
				return nil, err
			}
			right := make([]string, len(j.OnRight))
			for i, a := range j.OnRight {
				if strings.Contains(a, ".") {
					right[i] = a
				} else {
					right[i] = j.Table + "." + a
				}
			}
			left := make([]string, len(j.OnLeft))
			for i, a := range j.OnLeft {
				if strings.Contains(a, ".") {
					left[i] = a
				} else {
					left[i] = st.From + "." + a
				}
			}
			p = reldb.JoinPlan{
				Left:       p,
				Right:      reldb.QualifyPlan{Input: reldb.ScanPlan{Rel: rel}, Prefix: j.Table},
				LeftAttrs:  left,
				RightAttrs: right,
				Outer:      j.Outer,
			}
		}
	}
	if st.Where != nil {
		p = reldb.SelectPlan{Input: p, Pred: st.Where}
	}

	// Aggregates and grouping.
	hasAgg := false
	for _, item := range st.Items {
		if item.Agg != "" {
			hasAgg = true
			break
		}
	}
	if hasAgg || len(st.GroupBy) > 0 {
		var aggs []reldb.AggSpec
		var outNames []string
		for _, item := range st.Items {
			if item.Star {
				return nil, fmt.Errorf("rql: * cannot be combined with aggregates")
			}
			if item.Agg == "" {
				// Must be a group-by column.
				name := item.Expr.String()
				found := false
				for _, g := range st.GroupBy {
					if g == name {
						found = true
						break
					}
				}
				if !found {
					return nil, fmt.Errorf("rql: column %s must appear in GROUP BY", name)
				}
				outNames = append(outNames, name)
				continue
			}
			spec := reldb.AggSpec{As: item.As}
			switch item.Agg {
			case "COUNT":
				spec.Func = reldb.AggCount
			case "SUM":
				spec.Func = reldb.AggSum
			case "MIN":
				spec.Func = reldb.AggMin
			case "MAX":
				spec.Func = reldb.AggMax
			case "AVG":
				spec.Func = reldb.AggAvg
			}
			if item.Expr != nil {
				spec.Attr = item.Expr.String()
			}
			aggs = append(aggs, spec)
		}
		_ = outNames
		p = reldb.AggregatePlan{Input: p, GroupBy: st.GroupBy, Aggs: aggs}
	} else if !st.Items[0].Star {
		names := make([]string, len(st.Items))
		for i, item := range st.Items {
			names[i] = item.Expr.String()
		}
		p = reldb.ProjectPlan{Input: p, Names: names}
	}
	if st.Distinct {
		p = reldb.DistinctPlan{Input: p}
	}
	if len(st.OrderBy) > 0 {
		p = reldb.SortPlan{Input: p, By: st.OrderBy, Desc: st.Desc}
	}
	if st.Limit >= 0 {
		p = reldb.LimitPlan{Input: p, N: st.Limit}
	}
	rs, err := p.Run()
	if err != nil {
		return nil, err
	}
	// Column aliases for plain projections.
	if !hasAgg && len(st.GroupBy) == 0 {
		rs = applyAliases(rs, st.Items)
	}
	return &Outcome{Rows: rs}, nil
}

// applyAliases renames projected columns per AS clauses.
func applyAliases(rs *reldb.ResultSet, items []SelectItem) *reldb.ResultSet {
	renames := make(map[string]string)
	for _, item := range items {
		if item.As != "" && item.Expr != nil {
			renames[item.Expr.String()] = item.As
		}
	}
	if len(renames) == 0 {
		return rs
	}
	attrs := rs.Schema.Attrs()
	changed := false
	for i := range attrs {
		if as, ok := renames[attrs[i].Name]; ok {
			attrs[i].Name = as
			changed = true
		}
	}
	if !changed {
		return rs
	}
	keyNames := make([]string, 0)
	for _, k := range rs.Schema.Key() {
		keyNames = append(keyNames, attrs[k].Name)
	}
	schema, err := reldb.NewSchema(rs.Schema.Name(), attrs, keyNames)
	if err != nil {
		return rs
	}
	return &reldb.ResultSet{Schema: schema, Rows: rs.Rows}
}

func runUpdate(db *reldb.Database, st *UpdateStmt) (*Outcome, error) {
	n := 0
	// Match selection runs inside the transaction, so the rows updated are
	// exactly the rows that matched — no window for a concurrent writer
	// between read and write.
	err := db.RunInTx(func(tx *reldb.Tx) error {
		rel, err := tx.Relation(st.Table)
		if err != nil {
			return err
		}
		schema := rel.Schema()
		setIdx := make(map[int]reldb.Expr, len(st.Set))
		for col, e := range st.Set {
			i, ok := schema.AttrIndex(col)
			if !ok {
				return fmt.Errorf("rql: %s has no column %s", st.Table, col)
			}
			setIdx[i] = e
		}
		matches, err := rel.Select(st.Where)
		if err != nil {
			return err
		}
		for _, t := range matches {
			nt := t.Clone()
			row := reldb.Row{Schema: schema, Tuple: t}
			for i, e := range setIdx {
				v, err := e.Eval(row)
				if err != nil {
					return err
				}
				nt[i] = v
			}
			if _, err := tx.Replace(st.Table, schema.KeyOf(t), nt); err != nil {
				return err
			}
			n++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Outcome{Affected: n}, nil
}

func runDelete(db *reldb.Database, st *DeleteStmt) (*Outcome, error) {
	n := 0
	err := db.RunInTx(func(tx *reldb.Tx) error {
		rel, err := tx.Relation(st.Table)
		if err != nil {
			return err
		}
		schema := rel.Schema()
		matches, err := rel.Select(st.Where)
		if err != nil {
			return err
		}
		for _, t := range matches {
			if _, err := tx.Delete(st.Table, schema.KeyOf(t)); err != nil {
				return err
			}
			n++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Outcome{Affected: n}, nil
}

// FormatResult renders a result set as an aligned text table for the REPL.
func FormatResult(rs *reldb.ResultSet) string {
	names := rs.Schema.AttrNames()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, rs.Len())
	for r := 0; r < rs.Len(); r++ {
		row := make([]string, len(names))
		for c := range names {
			row[c] = rs.Rows[r][c].String()
			if len(row[c]) > widths[c] {
				widths[c] = len(row[c])
			}
		}
		cells[r] = row
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for c, v := range vals {
			if c > 0 {
				b.WriteString("  ")
			}
			b.WriteString(v)
			b.WriteString(strings.Repeat(" ", widths[c]-len(v)))
		}
		b.WriteString("\n")
	}
	writeRow(names)
	sep := make([]string, len(names))
	for c := range sep {
		sep[c] = strings.Repeat("-", widths[c])
	}
	writeRow(sep)
	for _, row := range cells {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows)\n", rs.Len())
	return b.String()
}
