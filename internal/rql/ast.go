package rql

import (
	"penguin/internal/reldb"
)

// Stmt is a parsed RQL statement.
type Stmt interface{ stmt() }

// CreateTableStmt defines a new relation.
type CreateTableStmt struct {
	Name string
	Cols []ColumnDef
	Key  []string
}

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name     string
	Type     reldb.Kind
	Nullable bool
}

// DropTableStmt removes a relation.
type DropTableStmt struct{ Name string }

// InsertStmt adds tuples to a relation.
type InsertStmt struct {
	Table string
	// Cols optionally names the attributes the rows supply (missing
	// attributes become null); empty means all attributes in order.
	Cols []string
	Rows [][]reldb.Expr
}

// SelectItem is one output column of a SELECT.
type SelectItem struct {
	// Star selects every column ("*").
	Star bool
	// Agg is non-empty for aggregate items: COUNT, SUM, MIN, MAX, AVG.
	Agg string
	// Expr is the column reference (nil for COUNT(*) and for Star).
	Expr *reldb.Attr
	// As renames the output column.
	As string
}

// JoinClause joins another relation into the FROM chain.
type JoinClause struct {
	Table string
	// On pairs qualified attributes: left = right.
	OnLeft, OnRight []string
	Outer           bool
}

// SelectStmt is a query.
type SelectStmt struct {
	Items    []SelectItem
	Distinct bool
	From     string
	Joins    []JoinClause
	Where    reldb.Expr
	GroupBy  []string
	OrderBy  []string
	Desc     bool
	Limit    int // -1 when absent
}

// UpdateStmt modifies tuples in place.
type UpdateStmt struct {
	Table string
	Set   map[string]reldb.Expr
	Where reldb.Expr
}

// DeleteStmt removes tuples.
type DeleteStmt struct {
	Table string
	Where reldb.Expr
}

func (*CreateTableStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*InsertStmt) stmt()      {}
func (*SelectStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
