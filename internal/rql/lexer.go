// Package rql implements RQL, a small SQL-like relational query language
// over the reldb engine: CREATE TABLE / DROP TABLE / INSERT / SELECT
// (with joins, grouping, and aggregates) / UPDATE / DELETE. The PENGUIN
// REPL uses it for direct relational access alongside the object-level
// operations, and the object query language reuses its expression
// grammar.
package rql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased, symbols verbatim
	pos  int    // byte offset in the input
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// keywords recognized by the grammar (case-insensitive in input).
var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "DROP": true, "KEY": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"SELECT": true, "FROM": true, "WHERE": true, "JOIN": true, "ON": true,
	"LEFT": true, "OUTER": true, "ORDER": true, "BY": true, "DESC": true,
	"ASC": true, "LIMIT": true, "DISTINCT": true, "GROUP": true,
	"UPDATE": true, "SET": true, "DELETE": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "IS": true,
	"NULL": true, "LIKE": true, "TRUE": true, "FALSE": true, "AS": true,
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
}

// lexer scans an RQL statement into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src, returning a parse error with position on bad input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexWord(start)
		case c >= '0' && c <= '9':
			l.lexNumber(start)
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			l.pos++
			l.lexNumber(start)
		case c == '\'' || c == '"':
			if err := l.lexString(start, c); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(start); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// Line comments: -- to end of line.
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexWord(start int) {
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: upper, pos: start})
		return
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: word, pos: start})
}

func (l *lexer) lexNumber(start int) {
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString(start int, quote byte) error {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			next := l.src[l.pos+1]
			switch next {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '\'', '"':
				b.WriteByte(next)
			default:
				b.WriteByte(next)
			}
			l.pos += 2
			continue
		}
		if c == quote {
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("rql: unterminated string at offset %d", start)
}

func (l *lexer) lexSymbol(start int) error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "!=", "<>", "<=", ">=":
		text := two
		if text == "<>" {
			text = "!="
		}
		l.toks = append(l.toks, token{kind: tokSymbol, text: text, pos: start})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', ';', '*', '=', '<', '>', '+', '-', '/':
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
		l.pos++
		return nil
	default:
		return fmt.Errorf("rql: unexpected character %q at offset %d", c, start)
	}
}
