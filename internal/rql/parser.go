package rql

import (
	"fmt"
	"strconv"
	"strings"

	"penguin/internal/reldb"
)

// parser consumes a token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses one RQL statement (an optional trailing semicolon is
// consumed).
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("rql: unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

// ParseExpr parses a standalone boolean/scalar expression. The object
// query language reuses this entry point for its predicates.
func ParseExpr(src string) (reldb.Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("rql: unexpected %s after expression", p.peek())
	}
	return e, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

// accept consumes the token if it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

// expect consumes a required token.
func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[tokenKind]string{tokIdent: "identifier", tokNumber: "number", tokString: "string"}[kind]
	}
	return token{}, fmt.Errorf("rql: expected %s, found %s", want, p.peek())
}

func (p *parser) keyword(kw string) bool { return p.accept(tokKeyword, kw) }

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.keyword("CREATE"):
		return p.parseCreate()
	case p.keyword("DROP"):
		return p.parseDrop()
	case p.keyword("INSERT"):
		return p.parseInsert()
	case p.keyword("SELECT"):
		return p.parseSelect()
	case p.keyword("UPDATE"):
		return p.parseUpdate()
	case p.keyword("DELETE"):
		return p.parseDelete()
	default:
		return nil, fmt.Errorf("rql: expected a statement, found %s", p.peek())
	}
}

func (p *parser) parseCreate() (Stmt, error) {
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Name: name.text}
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		typTok := p.next()
		if typTok.kind != tokIdent && typTok.kind != tokKeyword {
			return nil, fmt.Errorf("rql: expected a type name, found %s", typTok)
		}
		kind, err := reldb.ParseKind(typTok.text)
		if err != nil {
			return nil, err
		}
		def := ColumnDef{Name: col.text, Type: kind}
		if p.keyword("NULL") {
			def.Nullable = true
		} else if p.keyword("NOT") {
			if _, err := p.expect(tokKeyword, "NULL"); err != nil {
				return nil, err
			}
		}
		st.Cols = append(st.Cols, def)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "KEY"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		k, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		st.Key = append(st.Key, k.text)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseDrop() (Stmt, error) {
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Name: name.text}, nil
}

func (p *parser) parseInsert() (Stmt, error) {
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name.text}
	if p.accept(tokSymbol, "(") {
		for {
			c, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c.text)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []reldb.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	return st, nil
}

func (p *parser) parseSelect() (Stmt, error) {
	st := &SelectStmt{Limit: -1}
	st.Distinct = p.keyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	st.From = from.text
	for {
		outer := false
		if p.keyword("LEFT") {
			p.keyword("OUTER")
			outer = true
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		} else if !p.keyword("JOIN") {
			break
		}
		tbl, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		jc := JoinClause{Table: tbl.text, Outer: outer}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		for {
			l, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, "="); err != nil {
				return nil, err
			}
			r, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			jc.OnLeft = append(jc.OnLeft, l.text)
			jc.OnRight = append(jc.OnRight, r.text)
			if p.keyword("AND") {
				continue
			}
			break
		}
		st.Joins = append(st.Joins, jc)
	}
	if p.keyword("WHERE") {
		st.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.keyword("GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, g.text)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.keyword("ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			o, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			st.OrderBy = append(st.OrderBy, o.text)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if p.keyword("DESC") {
			st.Desc = true
		} else {
			p.keyword("ASC")
		}
	}
	if p.keyword("LIMIT") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		limit, err := strconv.Atoi(n.text)
		if err != nil || limit < 0 {
			return nil, fmt.Errorf("rql: bad LIMIT %q", n.text)
		}
		st.Limit = limit
	}
	return st, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	for _, agg := range []string{"COUNT", "SUM", "MIN", "MAX", "AVG"} {
		if p.keyword(agg) {
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return SelectItem{}, err
			}
			item := SelectItem{Agg: agg}
			if !p.accept(tokSymbol, "*") {
				id, err := p.expect(tokIdent, "")
				if err != nil {
					return SelectItem{}, err
				}
				attr := identToAttr(id.text)
				item.Expr = &attr
			} else if agg != "COUNT" {
				return SelectItem{}, fmt.Errorf("rql: %s(*) is not defined", agg)
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return SelectItem{}, err
			}
			if p.keyword("AS") {
				as, err := p.expect(tokIdent, "")
				if err != nil {
					return SelectItem{}, err
				}
				item.As = as.text
			}
			return item, nil
		}
	}
	id, err := p.expect(tokIdent, "")
	if err != nil {
		return SelectItem{}, err
	}
	attr := identToAttr(id.text)
	item := SelectItem{Expr: &attr}
	if p.keyword("AS") {
		as, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.As = as.text
	}
	return item, nil
}

func (p *parser) parseUpdate() (Stmt, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name.text, Set: make(map[string]reldb.Expr)}
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set[col.text] = e
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if p.keyword("WHERE") {
		st.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) parseDelete() (Stmt, error) {
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name.text}
	if p.keyword("WHERE") {
		st.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// Expression grammar, by descending precedence:
//
//	or   := and (OR and)*
//	and  := not (AND not)*
//	not  := NOT not | cmp
//	cmp  := add ((= != < <= > >=) add | IS [NOT] NULL | IN (list) | LIKE str)?
//	add  := mul ((+ -) mul)*
//	mul  := unary ((* /) unary)*
//	unary:= - unary | primary
//	prim := literal | ident | ( or )
func (p *parser) parseExpr() (reldb.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (reldb.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	terms := []reldb.Expr{left}
	for p.keyword("OR") {
		t, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return reldb.Or{Terms: terms}, nil
}

func (p *parser) parseAnd() (reldb.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	terms := []reldb.Expr{left}
	for p.keyword("AND") {
		t, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return reldb.And{Terms: terms}, nil
}

func (p *parser) parseNot() (reldb.Expr, error) {
	if p.keyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return reldb.Not{E: e}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]reldb.CmpOp{
	"=": reldb.OpEq, "!=": reldb.OpNe,
	"<": reldb.OpLt, "<=": reldb.OpLe,
	">": reldb.OpGt, ">=": reldb.OpGe,
}

func (p *parser) parseCmp() (reldb.Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokSymbol {
		if op, ok := cmpOps[p.peek().text]; ok {
			p.next()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return reldb.Cmp{Op: op, L: left, R: right}, nil
		}
	}
	if p.keyword("IS") {
		negate := p.keyword("NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return reldb.IsNull{E: left, Negate: negate}, nil
	}
	if p.keyword("IN") {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var list []reldb.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return reldb.In{E: left, List: list}, nil
	}
	if p.keyword("LIKE") {
		s, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		return reldb.Like{E: left, Pattern: s.text}, nil
	}
	return left, nil
}

var arithOps = map[string]reldb.ArithOp{
	"+": reldb.OpAdd, "-": reldb.OpSub, "*": reldb.OpMul, "/": reldb.OpDiv,
}

func (p *parser) parseAdd() (reldb.Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokSymbol && (p.peek().text == "+" || p.peek().text == "-") {
		op := arithOps[p.next().text]
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = reldb.Arith{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseMul() (reldb.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokSymbol && (p.peek().text == "*" || p.peek().text == "/") {
		op := arithOps[p.next().text]
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = reldb.Arith{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (reldb.Expr, error) {
	if p.accept(tokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return reldb.Arith{Op: reldb.OpSub, L: reldb.Const{V: reldb.Int(0)}, R: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (reldb.Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("rql: bad number %q", t.text)
			}
			return reldb.Const{V: reldb.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("rql: bad number %q", t.text)
		}
		return reldb.Const{V: reldb.Int(n)}, nil
	case t.kind == tokString:
		p.next()
		return reldb.Const{V: reldb.String(t.text)}, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.next()
		return reldb.Const{V: reldb.Null()}, nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.next()
		return reldb.Const{V: reldb.Bool(true)}, nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.next()
		return reldb.Const{V: reldb.Bool(false)}, nil
	case t.kind == tokIdent:
		p.next()
		return identToAttr(t.text), nil
	case t.kind == tokSymbol && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, fmt.Errorf("rql: expected an expression, found %s", t)
	}
}

// identToAttr splits a possibly qualified identifier into an Attr.
func identToAttr(text string) reldb.Attr {
	if i := strings.IndexByte(text, '.'); i >= 0 {
		return reldb.Attr{Rel: text[:i], Name: text[i+1:]}
	}
	return reldb.Attr{Name: text}
}
