package rql

import (
	"strings"
	"testing"

	"penguin/internal/reldb"
)

// mustExec runs a statement, failing the test on error.
func mustExec(t *testing.T, db *reldb.Database, src string) *Outcome {
	t.Helper()
	out, err := Exec(db, src)
	if err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
	return out
}

func rqlDB(t *testing.T) *reldb.Database {
	t.Helper()
	db := reldb.NewDatabase()
	mustExec(t, db, `CREATE TABLE emp (id int, name string null, dept string null, salary float null) KEY (id)`)
	mustExec(t, db, `CREATE TABLE dept (name string, budget float null) KEY (name)`)
	mustExec(t, db, `INSERT INTO dept VALUES ('cs', 100.5), ('ee', 200.0)`)
	mustExec(t, db, `INSERT INTO emp VALUES (1, 'alice', 'cs', 50),
		(2, 'bob', 'ee', 60), (3, 'carol', 'cs', 70), (4, 'dan', NULL, NULL)`)
	return db
}

func TestCreateTable(t *testing.T) {
	db := rqlDB(t)
	if !db.HasRelation("emp") || !db.HasRelation("dept") {
		t.Fatal("tables missing")
	}
	schema := db.MustRelation("emp").Schema()
	if schema.Arity() != 4 || !schema.IsKeyName("id") {
		t.Fatalf("schema = %s", schema)
	}
	if i, _ := schema.AttrIndex("name"); !schema.Attr(i).Nullable {
		t.Fatal("name should be nullable")
	}
	// NOT NULL syntax.
	mustExec(t, db, `CREATE TABLE x (a int NOT NULL, b int) KEY (a)`)
	// Errors.
	for _, bad := range []string{
		`CREATE TABLE emp (a int) KEY (a)`, // duplicate
		`CREATE TABLE y (a blob) KEY (a)`,  // bad type
		`CREATE TABLE y (a int) KEY (b)`,   // bad key
		`CREATE TABLE y (a int)`,           // missing key
		`CREATE y (a int) KEY (a)`,         // syntax
	} {
		if _, err := Exec(db, bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestDropTable(t *testing.T) {
	db := rqlDB(t)
	out := mustExec(t, db, `DROP TABLE emp`)
	if !strings.Contains(out.Message, "dropped") || db.HasRelation("emp") {
		t.Fatal("drop failed")
	}
	if _, err := Exec(db, `DROP TABLE emp`); err == nil {
		t.Fatal("double drop accepted")
	}
}

func TestInsert(t *testing.T) {
	db := rqlDB(t)
	out := mustExec(t, db, `INSERT INTO emp VALUES (5, 'eve', 'cs', 80)`)
	if out.Affected != 1 {
		t.Fatalf("affected = %d", out.Affected)
	}
	// Column list with omitted nullable columns.
	mustExec(t, db, `INSERT INTO emp (id, name) VALUES (6, 'frank')`)
	got, _ := db.MustRelation("emp").Get(reldb.Tuple{reldb.Int(6)})
	if !got[2].IsNull() {
		t.Fatalf("dept should be null: %v", got)
	}
	// Errors: arity, duplicate key, unknown table, unknown column; a
	// failed multi-row insert must be atomic.
	for _, bad := range []string{
		`INSERT INTO emp VALUES (7)`,
		`INSERT INTO emp VALUES (1, 'dup', NULL, NULL)`,
		`INSERT INTO nope VALUES (1)`,
		`INSERT INTO emp (id, nope) VALUES (8, 'x')`,
		`INSERT INTO emp (id) VALUES (9, 'x')`,
	} {
		if _, err := Exec(db, bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	before := db.MustRelation("emp").Count()
	if _, err := Exec(db, `INSERT INTO emp VALUES (10, 'ok', NULL, NULL), (10, 'dup', NULL, NULL)`); err == nil {
		t.Fatal("duplicate in batch accepted")
	}
	if db.MustRelation("emp").Count() != before {
		t.Fatal("failed batch insert leaked rows")
	}
}

func TestSelectBasics(t *testing.T) {
	db := rqlDB(t)
	out := mustExec(t, db, `SELECT * FROM emp`)
	if out.Rows.Len() != 4 {
		t.Fatalf("rows = %d", out.Rows.Len())
	}
	out = mustExec(t, db, `SELECT name FROM emp WHERE dept = 'cs' ORDER BY name`)
	if out.Rows.Len() != 2 {
		t.Fatalf("rows = %d", out.Rows.Len())
	}
	if out.Rows.Row(0).MustGet("name").MustString() != "alice" {
		t.Fatal("order wrong")
	}
	out = mustExec(t, db, `SELECT id FROM emp ORDER BY id DESC LIMIT 2`)
	if out.Rows.Len() != 2 || out.Rows.Row(0).MustGet("id").MustInt() != 4 {
		t.Fatal("desc/limit wrong")
	}
	out = mustExec(t, db, `SELECT DISTINCT dept FROM emp WHERE dept IS NOT NULL`)
	if out.Rows.Len() != 2 {
		t.Fatalf("distinct rows = %d", out.Rows.Len())
	}
	out = mustExec(t, db, `SELECT name AS who FROM emp WHERE id = 1`)
	if out.Rows.Row(0).MustGet("who").MustString() != "alice" {
		t.Fatal("alias wrong")
	}
}

func TestSelectExpressions(t *testing.T) {
	db := rqlDB(t)
	cases := []struct {
		where string
		want  int
	}{
		{`salary > 55`, 2},
		{`salary >= 60 AND dept = 'ee'`, 1},
		{`dept = 'cs' OR dept = 'ee'`, 3},
		{`NOT (dept = 'cs')`, 1},
		{`dept IS NULL`, 1},
		{`dept IS NOT NULL`, 3},
		{`name LIKE 'a%'`, 1},
		{`name LIKE '%o%'`, 2},
		{`id IN (1, 3, 99)`, 2},
		{`salary + 10 > 75`, 1},
		{`salary * 2 >= 120`, 2},
		{`-id < -3`, 1},
		{`salary / 2 < 30`, 1},
		{`id != 1`, 3},
		{`(id = 1 OR id = 2) AND salary < 55`, 1},
		{`TRUE`, 4},
		{`FALSE`, 0},
	}
	for _, c := range cases {
		out := mustExec(t, db, `SELECT id FROM emp WHERE `+c.where)
		if out.Rows.Len() != c.want {
			t.Errorf("WHERE %s: rows = %d, want %d", c.where, out.Rows.Len(), c.want)
		}
	}
}

func TestSelectJoin(t *testing.T) {
	db := rqlDB(t)
	out := mustExec(t, db, `SELECT emp.name, dept.budget FROM emp JOIN dept ON dept = name`)
	if out.Rows.Len() != 3 {
		t.Fatalf("join rows = %d", out.Rows.Len())
	}
	// Qualified ON attributes.
	out = mustExec(t, db, `SELECT emp.name FROM emp JOIN dept ON emp.dept = dept.name WHERE dept.budget > 150`)
	if out.Rows.Len() != 1 || out.Rows.Row(0).MustGet("emp.name").MustString() != "bob" {
		t.Fatalf("join+where wrong: %d", out.Rows.Len())
	}
	// Left outer join keeps dan.
	out = mustExec(t, db, `SELECT emp.name, dept.name FROM emp LEFT JOIN dept ON emp.dept = dept.name`)
	if out.Rows.Len() != 4 {
		t.Fatalf("outer rows = %d", out.Rows.Len())
	}
}

func TestSelectAggregates(t *testing.T) {
	db := rqlDB(t)
	out := mustExec(t, db, `SELECT COUNT(*) AS n, SUM(salary) AS total, AVG(salary) AS m FROM emp`)
	row := out.Rows.Row(0)
	if row.MustGet("n").MustInt() != 4 {
		t.Fatalf("count = %v", row.MustGet("n"))
	}
	if tot, _ := row.MustGet("total").AsFloat(); tot != 180 {
		t.Fatalf("sum = %v", row.MustGet("total"))
	}
	if m, _ := row.MustGet("m").AsFloat(); m != 60 {
		t.Fatalf("avg = %v", row.MustGet("m"))
	}
	out = mustExec(t, db, `SELECT dept, COUNT(*) AS n, MAX(salary) AS hi FROM emp WHERE dept IS NOT NULL GROUP BY dept ORDER BY dept`)
	if out.Rows.Len() != 2 {
		t.Fatalf("groups = %d", out.Rows.Len())
	}
	first := out.Rows.Row(0)
	if first.MustGet("dept").MustString() != "cs" || first.MustGet("n").MustInt() != 2 {
		t.Fatalf("group cs wrong: %v", first.Tuple)
	}
	if hi, _ := first.MustGet("hi").AsFloat(); hi != 70 {
		t.Fatalf("max = %v", first.MustGet("hi"))
	}
	// Non-grouped column rejected.
	if _, err := Exec(db, `SELECT name, COUNT(*) FROM emp GROUP BY dept`); err == nil {
		t.Fatal("non-grouped column accepted")
	}
	// * with aggregates rejected.
	if _, err := Exec(db, `SELECT *, COUNT(*) FROM emp`); err == nil {
		t.Fatal("star with aggregate accepted")
	}
	// MIN(*) is not defined.
	if _, err := Exec(db, `SELECT MIN(*) FROM emp`); err == nil {
		t.Fatal("MIN(*) accepted")
	}
}

func TestUpdate(t *testing.T) {
	db := rqlDB(t)
	out := mustExec(t, db, `UPDATE emp SET salary = salary + 5 WHERE dept = 'cs'`)
	if out.Affected != 2 {
		t.Fatalf("affected = %d", out.Affected)
	}
	got, _ := db.MustRelation("emp").Get(reldb.Tuple{reldb.Int(1)})
	if v, _ := got[3].AsFloat(); v != 55 {
		t.Fatalf("salary = %v", got[3])
	}
	// Key update.
	mustExec(t, db, `UPDATE emp SET id = 100 WHERE id = 4`)
	if !db.MustRelation("emp").Has(reldb.Tuple{reldb.Int(100)}) {
		t.Fatal("key update failed")
	}
	// Unknown column.
	if _, err := Exec(db, `UPDATE emp SET nope = 1`); err == nil {
		t.Fatal("unknown column accepted")
	}
	// Conflicting key update rolls back.
	if _, err := Exec(db, `UPDATE emp SET id = 1 WHERE id = 2`); err == nil {
		t.Fatal("key conflict accepted")
	}
	if !db.MustRelation("emp").Has(reldb.Tuple{reldb.Int(2)}) {
		t.Fatal("failed update lost the row")
	}
}

func TestDelete(t *testing.T) {
	db := rqlDB(t)
	out := mustExec(t, db, `DELETE FROM emp WHERE dept = 'cs'`)
	if out.Affected != 2 {
		t.Fatalf("affected = %d", out.Affected)
	}
	if db.MustRelation("emp").Count() != 2 {
		t.Fatal("delete wrong")
	}
	out = mustExec(t, db, `DELETE FROM emp`)
	if out.Affected != 2 || db.MustRelation("emp").Count() != 0 {
		t.Fatal("unconditional delete wrong")
	}
}

func TestParseErrors(t *testing.T) {
	db := rqlDB(t)
	bad := []string{
		``,
		`SELEC * FROM emp`,
		`SELECT FROM emp`,
		`SELECT * FROM`,
		`SELECT * FROM emp WHERE`,
		`SELECT * FROM emp LIMIT -1`,
		`SELECT * FROM emp EXTRA`,
		`INSERT INTO emp`,
		`UPDATE emp`,
		`DELETE emp`,
		`SELECT * FROM emp WHERE name = 'unterminated`,
		`SELECT * FROM emp WHERE a ? b`,
		`SELECT * FROM emp JOIN dept`,
		`SELECT * FROM emp ORDER id`,
	}
	for _, src := range bad {
		if _, err := Exec(db, src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseExprStandalone(t *testing.T) {
	e, err := ParseExpr(`Level = 'graduate' AND Units >= 3`)
	if err != nil {
		t.Fatal(err)
	}
	s := reldb.MustSchema("C", []reldb.Attribute{
		{Name: "Level", Type: reldb.KindString},
		{Name: "Units", Type: reldb.KindInt},
	}, []string{"Level"})
	ok, err := reldb.EvalBool(e, reldb.Row{Schema: s, Tuple: reldb.Tuple{reldb.String("graduate"), reldb.Int(4)}})
	if err != nil || !ok {
		t.Fatalf("eval = %v, %v", ok, err)
	}
	if _, err := ParseExpr(`a = 1 extra`); err == nil {
		t.Fatal("trailing tokens accepted")
	}
	// Qualified attribute.
	e, err = ParseExpr(`COURSES.Level = 'graduate'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.String(), "COURSES.Level") {
		t.Fatalf("expr = %s", e)
	}
}

func TestComments(t *testing.T) {
	db := rqlDB(t)
	out := mustExec(t, db, "SELECT id FROM emp -- trailing comment\nWHERE id = 1")
	if out.Rows.Len() != 1 {
		t.Fatal("comment handling wrong")
	}
}

func TestStringEscapes(t *testing.T) {
	db := rqlDB(t)
	mustExec(t, db, `INSERT INTO emp VALUES (50, 'o\'brien', "d\"q", 1)`)
	got, _ := db.MustRelation("emp").Get(reldb.Tuple{reldb.Int(50)})
	if got[1].MustString() != "o'brien" || got[2].MustString() != `d"q` {
		t.Fatalf("escapes wrong: %v", got)
	}
}

func TestFloatLiterals(t *testing.T) {
	db := rqlDB(t)
	out := mustExec(t, db, `SELECT id FROM emp WHERE salary = 50.0`)
	if out.Rows.Len() != 1 {
		t.Fatalf("rows = %d", out.Rows.Len())
	}
	out = mustExec(t, db, `SELECT id FROM emp WHERE salary > 59.5 AND salary < 60.5`)
	if out.Rows.Len() != 1 {
		t.Fatalf("rows = %d", out.Rows.Len())
	}
}

func TestFormatResult(t *testing.T) {
	db := rqlDB(t)
	out := mustExec(t, db, `SELECT id, name FROM emp WHERE id IN (1, 2) ORDER BY id`)
	text := FormatResult(out.Rows)
	for _, want := range []string{"id", "name", "alice", "bob", "(2 rows)"} {
		if !strings.Contains(text, want) {
			t.Errorf("FormatResult missing %q:\n%s", want, text)
		}
	}
}

func TestMultiRowInsertAndBatchSemicolon(t *testing.T) {
	db := rqlDB(t)
	out := mustExec(t, db, `INSERT INTO dept VALUES ('me', 1.0), ('ce', 2.0);`)
	if out.Affected != 2 {
		t.Fatalf("affected = %d", out.Affected)
	}
}
