package serve

import (
	"fmt"

	"penguin/internal/reldb"
	"penguin/internal/viewobject"
)

// Instance documents: the nested-object shape of viewobject.ToMap —
// projected attribute name → value, child node ID → array of child
// documents — but with every value in the codec's wire form, so a
// document fetched from GET /objects/{name}/{key} can be edited and sent
// back through POST /objects/{name}:replace without any value changing
// identity along the way.

// InstanceDoc converts an instance to its JSON-ready document.
func InstanceDoc(inst *viewobject.Instance) map[string]any {
	return nodeDoc(inst.Definition(), inst.Root())
}

func nodeDoc(def *viewobject.Definition, in *viewobject.InstNode) map[string]any {
	n := in.Node()
	schema := def.NodeSchema(n)
	tuple := in.Tuple()
	out := make(map[string]any, len(n.Attrs)+len(n.Children))
	for _, attr := range n.Attrs {
		idx, ok := schema.AttrIndex(attr)
		if !ok {
			continue
		}
		out[attr] = EncodeValue(tuple[idx])
	}
	for _, child := range n.Children {
		kids := in.Children(child.ID)
		docs := make([]any, len(kids))
		for i, k := range kids {
			docs[i] = nodeDoc(def, k)
		}
		out[child.ID] = docs
	}
	return out
}

// InstanceFromDoc builds an instance of def from a decoded document of
// the shape InstanceDoc produces. Attributes absent from a document
// become null; field names that are neither projected attributes nor
// child node IDs are rejected, so a typo'd attribute fails loudly
// instead of silently nulling the real one.
func InstanceFromDoc(def *viewobject.Definition, doc map[string]any) (*viewobject.Instance, error) {
	tuple, err := docTuple(def, def.Root(), doc)
	if err != nil {
		return nil, err
	}
	inst, err := viewobject.NewInstance(def, tuple)
	if err != nil {
		return nil, err
	}
	if err := fillChildren(def, inst.Root(), doc); err != nil {
		return nil, err
	}
	return inst, nil
}

func docTuple(def *viewobject.Definition, n *viewobject.Node, doc map[string]any) (reldb.Tuple, error) {
	schema := def.NodeSchema(n)
	childIDs := make(map[string]bool, len(n.Children))
	for _, c := range n.Children {
		childIDs[c.ID] = true
	}
	tuple := make(reldb.Tuple, schema.Arity())
	for field, raw := range doc {
		if childIDs[field] {
			continue
		}
		idx, ok := schema.AttrIndex(field)
		if !ok {
			return nil, fmt.Errorf("node %s: field %q is neither an attribute of %s nor a child node",
				n.ID, field, n.Relation)
		}
		v, err := DecodeValue(raw)
		if err != nil {
			return nil, fmt.Errorf("node %s: field %q: %w", n.ID, field, err)
		}
		tuple[idx] = v
	}
	return tuple, nil
}

func fillChildren(def *viewobject.Definition, in *viewobject.InstNode, doc map[string]any) error {
	for _, child := range in.Node().Children {
		raw, ok := doc[child.ID]
		if !ok || raw == nil {
			continue
		}
		list, ok := raw.([]any)
		if !ok {
			return fmt.Errorf("node %s: child %s must be an array", in.Node().ID, child.ID)
		}
		for _, item := range list {
			childDoc, ok := item.(map[string]any)
			if !ok {
				return fmt.Errorf("node %s: child %s holds a non-object element", in.Node().ID, child.ID)
			}
			tuple, err := docTuple(def, child, childDoc)
			if err != nil {
				return err
			}
			cn, err := in.AddChild(def, child.ID, tuple)
			if err != nil {
				return err
			}
			if err := fillChildren(def, cn, childDoc); err != nil {
				return err
			}
		}
	}
	return nil
}
