package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"penguin/internal/obs"
	"penguin/internal/university"
	"penguin/internal/viewobject"
	"penguin/internal/vupdate"
)

// newTestServer builds a serving tier over a freshly seeded university
// database with a private registry, so counter assertions are isolated
// from other tests.
func newTestServer(t *testing.T, cfg Config) (*Server, *obs.Registry) {
	t.Helper()
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	op := university.MustOmegaPrime(g)
	reg := obs.NewRegistry()
	cfg.DB = db
	cfg.Objects = map[string]*viewobject.Definition{"omega": om, "omega-prime": op}
	cfg.Updaters = map[string]*vupdate.Updater{
		"omega": vupdate.NewUpdater(vupdate.PermissiveTranslator(om)),
	}
	cfg.Reg = reg
	return New(cfg), reg
}

// do runs one request through the handler tree and decodes the JSON
// response body (UseNumber, like a careful client).
func do(t *testing.T, s *Server, method, path string, body any) (int, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	var doc map[string]any
	dec := json.NewDecoder(w.Body)
	dec.UseNumber()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("%s %s: bad response body: %v", method, path, err)
	}
	return w.Code, doc
}

func TestListObjects(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	code, doc := do(t, s, "GET", "/objects", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /objects = %d", code)
	}
	objs := doc["objects"].([]any)
	if len(objs) != 2 {
		t.Fatalf("listed %d objects, want 2", len(objs))
	}
	first := objs[0].(map[string]any)
	if first["name"] != "omega" || first["pivot"] != university.Courses {
		t.Errorf("first object = %v, want omega over %s (sorted)", first, university.Courses)
	}
	if first["updatable"] != true {
		t.Errorf("omega should be updatable")
	}
	second := objs[1].(map[string]any)
	if second["name"] != "omega-prime" || second["updatable"] != false {
		t.Errorf("second object = %v, want read-only omega-prime", second)
	}
}

func TestQueryEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	// Figure 4's query: graduate courses with fewer than 5 students.
	code, doc := do(t, s, "GET", "/objects/omega?q="+
		"Level+%3D+%27graduate%27+and+count%28STUDENT%29+%3C+5", nil)
	if code != http.StatusOK {
		t.Fatalf("query = %d: %v", code, doc)
	}
	n, _ := doc["count"].(json.Number)
	if v, _ := n.Int64(); v < 1 {
		t.Fatalf("Figure 4 query selected %s instances, want >= 1 (CS345)", n)
	}
	found := false
	for _, raw := range doc["instances"].([]any) {
		inst := raw.(map[string]any)
		if inst["CourseID"] == "CS345" {
			found = true
		}
	}
	if !found {
		t.Error("CS345 missing from the Figure 4 query result")
	}

	if code, _ := do(t, s, "GET", "/objects/omega?q=%28%28", nil); code != http.StatusBadRequest {
		t.Errorf("malformed OQL = %d, want 400", code)
	}
	if code, _ := do(t, s, "GET", "/objects/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown object = %d, want 404", code)
	}
}

func TestGetByKey(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	code, doc := do(t, s, "GET", "/objects/omega/CS345", nil)
	if code != http.StatusOK {
		t.Fatalf("get = %d: %v", code, doc)
	}
	if doc["CourseID"] != "CS345" {
		t.Errorf("CourseID = %v", doc["CourseID"])
	}
	// Units is an int attribute: the wire form must be tagged.
	units, ok := doc["Units"].(map[string]any)
	if !ok || units["int"] == nil {
		t.Errorf("Units = %v, want tagged int form", doc["Units"])
	}
	// ω nests STUDENT under GRADES (Figure 2's tree).
	grades, ok := doc["GRADES"].([]any)
	if !ok || len(grades) == 0 {
		t.Fatalf("GRADES children missing: %v", doc["GRADES"])
	}
	if _, ok := grades[0].(map[string]any)["STUDENT"].([]any); !ok {
		t.Errorf("STUDENT missing under GRADES: %v", grades[0])
	}

	if code, _ := do(t, s, "GET", "/objects/omega/NOPE999", nil); code != http.StatusNotFound {
		t.Errorf("missing key = %d, want 404", code)
	}
}

// TestUpdateRoundTrip exercises VO-CD, VO-CI, and VO-R through the
// HTTP surface: fetch a document, delete it, reinsert it verbatim, and
// finally replace an attribute — the fetched document must work as an
// insert body unchanged (the codec round-trip in anger).
func TestUpdateRoundTrip(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	_, orig := do(t, s, "GET", "/objects/omega/CS345", nil)

	code, res := do(t, s, "POST", "/objects/omega:delete", map[string]any{"key": []any{"CS345"}})
	if code != http.StatusOK {
		t.Fatalf("delete = %d: %v", code, res)
	}
	if n, _ := res["count"].(json.Number).Int64(); n < 1 {
		t.Fatalf("delete translated into %v ops", res["count"])
	}
	if res["generation"] == nil {
		t.Fatal("delete response carries no generation")
	}
	if code, _ := do(t, s, "GET", "/objects/omega/CS345", nil); code != http.StatusNotFound {
		t.Fatalf("CS345 still instantiable after VO-CD (%d)", code)
	}

	code, res = do(t, s, "POST", "/objects/omega:insert", map[string]any{"instance": orig})
	if code != http.StatusOK {
		t.Fatalf("insert = %d: %v", code, res)
	}
	code, back := do(t, s, "GET", "/objects/omega/CS345", nil)
	if code != http.StatusOK {
		t.Fatalf("get after insert = %d", code)
	}
	normalize(orig)
	normalize(back)
	if !reflect.DeepEqual(orig, back) {
		t.Errorf("document changed across delete+insert:\nbefore %v\nafter  %v", orig, back)
	}

	// VO-R: change the title, keep everything else.
	repl := map[string]any{}
	data, _ := json.Marshal(back)
	json.Unmarshal(data, &repl)
	repl["Title"] = "Rewritten Databases"
	code, res = do(t, s, "POST", "/objects/omega:replace",
		map[string]any{"key": []any{"CS345"}, "instance": repl})
	if code != http.StatusOK {
		t.Fatalf("replace = %d: %v", code, res)
	}
	_, after := do(t, s, "GET", "/objects/omega/CS345", nil)
	if after["Title"] != "Rewritten Databases" {
		t.Errorf("Title after replace = %v", after["Title"])
	}
}

// normalize sorts child arrays so document comparison ignores sibling
// order (instantiation order is key order, but insertion resequences).
func normalize(doc map[string]any) {
	for k, v := range doc {
		list, ok := v.([]any)
		if !ok {
			continue
		}
		keys := make([]string, len(list))
		for i, item := range list {
			if m, ok := item.(map[string]any); ok {
				normalize(m)
				b, _ := json.Marshal(m)
				keys[i] = string(b)
			}
		}
		for i := 1; i < len(list); i++ {
			for j := i; j > 0 && keys[j-1] > keys[j]; j-- {
				keys[j-1], keys[j] = keys[j], keys[j-1]
				list[j-1], list[j] = list[j], list[j-1]
			}
		}
		doc[k] = list
	}
}

func TestUpdateErrors(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if code, _ := do(t, s, "POST", "/objects/omega", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("POST without verb = %d, want 405", code)
	}
	if code, _ := do(t, s, "POST", "/objects/omega:upsert", nil); code != http.StatusNotFound {
		t.Errorf("unknown verb = %d, want 404", code)
	}
	if code, _ := do(t, s, "POST", "/objects/omega-prime:delete", map[string]any{"key": []any{"CS345"}}); code != http.StatusMethodNotAllowed {
		t.Errorf("update on read-only object = %d, want 405", code)
	}
	if code, _ := do(t, s, "POST", "/objects/omega:delete", map[string]any{"key": []any{"CS345", "extra"}}); code != http.StatusBadRequest {
		t.Errorf("wrong key arity = %d, want 400", code)
	}
	code, doc := do(t, s, "POST", "/objects/omega:delete", map[string]any{"key": []any{"NOPE999"}})
	if code != http.StatusConflict {
		t.Errorf("delete of a missing instance = %d (%v), want 409", code, doc)
	}
}

// TestAdmissionControlSheds pins the overload contract: with the write
// path throttled (a StepProbe stalling the §5 pipeline, standing in for
// a slow disk or a huge translation) and the write bound at 1, a second
// concurrent update is answered 429 immediately — shed, not queued —
// and the metrics partition arrivals into requests vs shed.
func TestAdmissionControlSheds(t *testing.T) {
	s, reg := newTestServer(t, Config{MaxWriteInFlight: 1})

	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	prev := vupdate.SetStepProbe(func(_ obs.Step, object string) {
		if object == "omega" {
			once.Do(func() { close(entered) })
			<-gate
		}
	})
	defer vupdate.SetStepProbe(prev)

	var wg sync.WaitGroup
	wg.Add(1)
	var slowCode int
	go func() {
		defer wg.Done()
		slowCode, _ = do(t, s, "POST", "/objects/omega:delete", map[string]any{"key": []any{"CS345"}})
	}()
	<-entered // the first update holds the only write slot

	code, doc := do(t, s, "POST", "/objects/omega:delete", map[string]any{"key": []any{"CS101"}})
	if code != http.StatusTooManyRequests {
		t.Fatalf("second concurrent write = %d (%v), want 429", code, doc)
	}
	if doc["error"] != "overloaded" {
		t.Errorf("shed body = %v", doc)
	}

	close(gate)
	wg.Wait()
	if slowCode != http.StatusOK {
		t.Fatalf("admitted write = %d, want 200", slowCode)
	}

	if got := reg.HTTPShed.Load(); got != 1 {
		t.Errorf("penguin.http.shed = %d, want 1", got)
	}
	if got := reg.HTTPShedByEndpoint.With(epDelete).Load(); got != 1 {
		t.Errorf("per-endpoint shed = %d, want 1", got)
	}
	// The shed request is not an admitted request: requests counts 1
	// (the slow delete), not 2.
	if got := reg.HTTPRequests.Load(); got != 1 {
		t.Errorf("penguin.http.requests = %d, want 1 (admitted only)", got)
	}
	if got := reg.HTTPNs.Count(); got != 1 {
		t.Errorf("latency histogram holds %d observations, want 1 (admitted only)", got)
	}
	if got := reg.HTTPStatus[obs.Status4xx].Load(); got != 1 {
		t.Errorf("4xx = %d, want 1 (the shed)", got)
	}
	if got := reg.HTTPStatus[obs.Status2xx].Load(); got != 1 {
		t.Errorf("2xx = %d, want 1 (the admitted delete)", got)
	}
}

// TestReadAdmissionIndependent checks the read and write semaphores are
// separate: saturating writes must not shed reads.
func TestReadAdmissionIndependent(t *testing.T) {
	s, reg := newTestServer(t, Config{MaxWriteInFlight: 1, MaxReadInFlight: 8})

	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	prev := vupdate.SetStepProbe(func(_ obs.Step, object string) {
		if object == "omega" {
			once.Do(func() { close(entered) })
			<-gate
		}
	})
	defer vupdate.SetStepProbe(prev)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		do(t, s, "POST", "/objects/omega:delete", map[string]any{"key": []any{"CS345"}})
	}()
	<-entered

	if code, _ := do(t, s, "GET", "/objects/omega/CS101", nil); code != http.StatusOK {
		t.Errorf("read during write saturation = %d, want 200", code)
	}
	close(gate)
	wg.Wait()
	if got := reg.HTTPShed.Load(); got != 0 {
		t.Errorf("shed = %d, want 0", got)
	}
}

// TestMetricsMounted checks the serving tier exposes the same debug
// surface as the standalone metrics listener.
func TestMetricsMounted(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	do(t, s, "GET", "/objects/omega/CS345", nil)

	req := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", w.Code)
	}
	body := w.Body.String()
	if err := obs.CheckExposition(body); err != nil {
		t.Errorf("exposition: %v", err)
	}
	// The serving tier records into obs.Default here (the test config's
	// private registry isolates counters, but the exposition serves the
	// default); the family names must still be present.
	for _, want := range []string{"penguin_http_requests", "penguin_http_ns"} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition lacks %s", want)
		}
	}
}

// TestEndpointMetricsPartition checks the labeled families sum to the
// aggregate across a mixed request sequence.
func TestEndpointMetricsPartition(t *testing.T) {
	s, reg := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		do(t, s, "GET", "/objects", nil)
	}
	do(t, s, "GET", "/objects/omega", nil)
	do(t, s, "GET", "/objects/omega/CS345", nil)
	do(t, s, "POST", "/objects/omega:replace", map[string]any{"key": []any{"CS345"}}) // 400: no instance

	byEp := reg.HTTPRequestsByEndpoint.StatByLabel()
	var sum int64
	for _, n := range byEp {
		sum += n
	}
	if total := reg.HTTPRequests.Load(); sum != total {
		t.Errorf("per-endpoint requests sum to %d, aggregate says %d (%v)", sum, total, byEp)
	}
	if byEp[epList] != 3 || byEp[epQuery] != 1 || byEp[epGet] != 1 || byEp[epReplace] != 1 {
		t.Errorf("per-endpoint counts = %v", byEp)
	}
	if got := reg.HTTPStatus[obs.Status4xx].Load(); got != 1 {
		t.Errorf("4xx = %d, want 1 (the bodyless replace)", got)
	}
}

// TestDefaultRegistryExposition drives requests and validates the wired
// snapshot keys appear in text form under their expected names.
func TestDefaultRegistryExposition(t *testing.T) {
	s, reg := newTestServer(t, Config{})
	do(t, s, "GET", "/objects", nil)
	snap := reg.Snapshot()
	var buf bytes.Buffer
	if err := obs.WriteText(&buf, snap); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"penguin.http.requests 1",
		`penguin.http.requests{endpoint=list} 1`,
		"penguin.http.shed 0",
		"penguin.http.status.2xx 1",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("snapshot text lacks %q", want)
		}
	}
	if !strings.Contains(buf.String(), "penguin.http.ns") {
		t.Error("snapshot text lacks the latency histogram")
	}
}
