package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"penguin/internal/reldb"
)

// roundTrip pushes v through the full wire path — encode, marshal,
// unmarshal (UseNumber, as the server decodes), decode — and returns
// the result.
func roundTrip(t *testing.T, v reldb.Value) reldb.Value {
	t.Helper()
	data, err := json.Marshal(EncodeValue(v))
	if err != nil {
		t.Fatalf("marshal %s: %v", v, err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var raw any
	if err := dec.Decode(&raw); err != nil {
		t.Fatalf("unmarshal %s (%s): %v", v, data, err)
	}
	got, err := DecodeValue(raw)
	if err != nil {
		t.Fatalf("decode %s (%s): %v", v, data, err)
	}
	return got
}

// binaryEq compares two values under the engine's canonical binary
// encoding — the snapshot codec — so kind tags, every int64, every
// float bit pattern, and every string byte must match exactly.
func binaryEq(t *testing.T, a, b reldb.Value) bool {
	t.Helper()
	ab, err := reldb.AppendBinaryValue(nil, a)
	if err != nil {
		t.Fatalf("encode %s: %v", a, err)
	}
	bb, err := reldb.AppendBinaryValue(nil, b)
	if err != nil {
		t.Fatalf("encode %s: %v", b, err)
	}
	return bytes.Equal(ab, bb)
}

// TestValueCodecEdgeCases pins the cases plain encoding/json gets
// wrong: int64 past 2^53, the Int/Float kind split for equal numerics
// (cross-kind values stored in float attributes), negative zero, ±Inf,
// NaN payload bits, and strings that are not valid UTF-8.
func TestValueCodecEdgeCases(t *testing.T) {
	cases := []reldb.Value{
		reldb.Null(),
		reldb.Bool(true),
		reldb.Bool(false),
		reldb.Int(0),
		reldb.Int(-1),
		reldb.Int(math.MaxInt64),
		reldb.Int(math.MinInt64),
		reldb.Int(1<<53 + 1), // first integer JSON numbers cannot hold
		reldb.Float(0),
		reldb.Float(math.Copysign(0, -1)), // -0.0
		reldb.Float(3),                    // same numeric as Int(3), different kind
		reldb.Float(0.1),
		reldb.Float(math.MaxFloat64),
		reldb.Float(math.SmallestNonzeroFloat64),
		reldb.Float(math.Inf(1)),
		reldb.Float(math.Inf(-1)),
		reldb.Float(math.NaN()),
		reldb.Float(math.Float64frombits(0x7ff8_0000_0000_0001)), // NaN, nonstandard payload
		reldb.String(""),
		reldb.String("plain"),
		reldb.String("non-ASCII: héllo, 世界"),
		reldb.String("embedded \x00 NUL"),
		reldb.String("\xff\xfe not UTF-8"),
		reldb.String(string([]byte{0x80, 0x81, 'a', 0xc3})), // truncated sequences
		reldb.String(strings.Repeat("x", 1<<16)),
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if !binaryEq(t, v, got) {
			t.Errorf("round trip changed %s (kind %s) into %s (kind %s)", v, v.Kind(), got, got.Kind())
		}
	}
	// Int(3) and Float(3) must stay distinguishable through the wire.
	if binaryEq(t, roundTrip(t, reldb.Int(3)), roundTrip(t, reldb.Float(3))) {
		t.Error("Int(3) and Float(3) collapsed to the same wire value")
	}
}

// TestValueCodecProperty round-trips a large randomized corpus.
func TestValueCodecProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randValue := func() reldb.Value {
		switch rng.Intn(5) {
		case 0:
			return reldb.Null()
		case 1:
			return reldb.Bool(rng.Intn(2) == 0)
		case 2:
			return reldb.Int(int64(rng.Uint64()))
		case 3:
			// Arbitrary bit patterns: subnormals, NaNs, infinities.
			return reldb.Float(math.Float64frombits(rng.Uint64()))
		default:
			b := make([]byte, rng.Intn(64))
			rng.Read(b)
			return reldb.String(string(b))
		}
	}
	for i := 0; i < 2000; i++ {
		v := randValue()
		got := roundTrip(t, v)
		if !binaryEq(t, v, got) {
			t.Fatalf("iteration %d: round trip changed %s (kind %s) into %s (kind %s)",
				i, v, v.Kind(), got, got.Kind())
		}
	}
}

// TestDecodeConvenienceForms accepts handwritten JSON: bare numbers map
// integral → Int, fractional/exponent → Float.
func TestDecodeConvenienceForms(t *testing.T) {
	cases := []struct {
		in   string
		want reldb.Value
	}{
		{`17`, reldb.Int(17)},
		{`-3`, reldb.Int(-3)},
		{`9223372036854775807`, reldb.Int(math.MaxInt64)},
		{`2.5`, reldb.Float(2.5)},
		{`1e3`, reldb.Float(1000)},
		{`"hi"`, reldb.String("hi")},
		{`true`, reldb.Bool(true)},
		{`null`, reldb.Null()},
	}
	for _, c := range cases {
		dec := json.NewDecoder(strings.NewReader(c.in))
		dec.UseNumber()
		var raw any
		if err := dec.Decode(&raw); err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		got, err := DecodeValue(raw)
		if err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		if !binaryEq(t, got, c.want) {
			t.Errorf("%s decoded to %s (kind %s), want %s (kind %s)", c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

// TestDecodeRejectsMalformed checks the tagged forms fail loudly.
func TestDecodeRejectsMalformed(t *testing.T) {
	bad := []any{
		map[string]any{"int": "not a number"},
		map[string]any{"int": 3.0},
		map[string]any{"int": "1", "float": "2"},
		map[string]any{"float": "wat"},
		map[string]any{"float": "1.5", "bits": "3ff8000000000000"}, // bits on a non-NaN
		map[string]any{"bytes": "!!not base64!!"},
		map[string]any{"unknown": "tag"},
		[]any{1, 2},
	}
	for _, raw := range bad {
		if v, err := DecodeValue(raw); err == nil {
			t.Errorf("DecodeValue(%v) = %s, want error", raw, v)
		}
	}
}
