package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"penguin/internal/obs"
	"penguin/internal/reldb"
	"penguin/internal/reldb/shard"
	"penguin/internal/university"
)

// newShardedTestServer builds a serving tier over an n-shard university
// cluster: same HTTP surface, sharded backend.
func newShardedTestServer(t *testing.T, n int) (*Server, *shard.Cluster) {
	t.Helper()
	c, err := university.NewSharded(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return New(Config{Cluster: c, Reg: obs.NewRegistry()}), c
}

// TestShardedListObjects pins the cluster listing: both objects, ω
// updatable, ω′ read-only (its paths cross partitioned relations
// outside its island, so the cluster registers it restrictively).
func TestShardedListObjects(t *testing.T) {
	s, _ := newShardedTestServer(t, 2)
	code, doc := do(t, s, "GET", "/objects", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /objects = %d", code)
	}
	objs := doc["objects"].([]any)
	if len(objs) != 2 {
		t.Fatalf("listed %d objects, want 2", len(objs))
	}
	first := objs[0].(map[string]any)
	if first["name"] != "omega" || first["pivot"] != university.Courses || first["updatable"] != true {
		t.Errorf("first object = %v, want updatable omega over %s", first, university.Courses)
	}
	second := objs[1].(map[string]any)
	if second["name"] != "omega-prime" || second["updatable"] != false {
		t.Errorf("second object = %v, want read-only omega-prime", second)
	}
}

// TestShardedQueryFansOut runs the Figure 4 query against the cluster:
// the fan-out must find CS345 wherever its island landed, and the full
// listing must merge every shard's courses in pivot-key order.
func TestShardedQueryFansOut(t *testing.T) {
	s, c := newShardedTestServer(t, 2)

	// Placement sanity: the 6 seeded courses are partitioned (counted
	// once across shards), the 3 departments replicated (once each per
	// shard).
	courses, depts := 0, 0
	for i := 0; i < c.N(); i++ {
		rtx := c.DB(i).BeginRead()
		if rel, err := rtx.Relation(university.Courses); err == nil {
			courses += rel.Count()
		}
		if rel, err := rtx.Relation(university.Department); err == nil {
			depts += rel.Count()
		}
		rtx.Close()
	}
	if courses != 6 {
		t.Fatalf("COURSES rows across shards = %d, want 6 (partitioned)", courses)
	}
	if depts != 3*c.N() {
		t.Fatalf("DEPARTMENT rows across shards = %d, want %d (replicated)", depts, 3*c.N())
	}

	code, doc := do(t, s, "GET", "/objects/omega?q="+
		"Level+%3D+%27graduate%27+and+count%28STUDENT%29+%3C+5", nil)
	if code != http.StatusOK {
		t.Fatalf("query = %d: %v", code, doc)
	}
	found := false
	for _, raw := range doc["instances"].([]any) {
		if raw.(map[string]any)["CourseID"] == "CS345" {
			found = true
		}
	}
	if !found {
		t.Error("CS345 missing from the sharded Figure 4 result")
	}

	// Unfiltered listing: all 6 instances, merged in pivot-key order.
	code, doc = do(t, s, "GET", "/objects/omega", nil)
	if code != http.StatusOK {
		t.Fatalf("list query = %d", code)
	}
	insts := doc["instances"].([]any)
	if len(insts) != 6 {
		t.Fatalf("sharded listing returned %d instances, want 6", len(insts))
	}
	prev := ""
	for _, raw := range insts {
		id := raw.(map[string]any)["CourseID"].(string)
		if id < prev {
			t.Fatalf("merged listing out of order: %q after %q", id, prev)
		}
		prev = id
	}
}

// TestShardedUpdateRoundTrip drives VO-CD, VO-CI, and VO-R through the
// HTTP surface against the cluster: the coordinator must route each
// verb to CS345's home shard and the follow-up reads must agree.
func TestShardedUpdateRoundTrip(t *testing.T) {
	s, c := newShardedTestServer(t, 2)
	_, orig := do(t, s, "GET", "/objects/omega/CS345", nil)
	gen0 := c.Generation()

	code, res := do(t, s, "POST", "/objects/omega:delete", map[string]any{"key": []any{"CS345"}})
	if code != http.StatusOK {
		t.Fatalf("delete = %d: %v", code, res)
	}
	if c.Generation() <= gen0 {
		t.Fatal("cluster generation did not advance across the delete")
	}
	if code, _ := do(t, s, "GET", "/objects/omega/CS345", nil); code != http.StatusNotFound {
		t.Fatalf("CS345 still instantiable after sharded VO-CD (%d)", code)
	}

	code, res = do(t, s, "POST", "/objects/omega:insert", map[string]any{"instance": orig})
	if code != http.StatusOK {
		t.Fatalf("insert = %d: %v", code, res)
	}
	code, back := do(t, s, "GET", "/objects/omega/CS345", nil)
	if code != http.StatusOK {
		t.Fatalf("get after insert = %d", code)
	}
	if back["Title"] != orig["Title"] {
		t.Errorf("Title after delete+insert = %v, want %v", back["Title"], orig["Title"])
	}

	repl := map[string]any{}
	data, _ := json.Marshal(back)
	json.Unmarshal(data, &repl)
	repl["Title"] = "Sharded Databases"
	code, res = do(t, s, "POST", "/objects/omega:replace",
		map[string]any{"key": []any{"CS345"}, "instance": repl})
	if code != http.StatusOK {
		t.Fatalf("replace = %d: %v", code, res)
	}
	_, after := do(t, s, "GET", "/objects/omega/CS345", nil)
	if after["Title"] != "Sharded Databases" {
		t.Errorf("Title after replace = %v", after["Title"])
	}
}

// TestShardedUpdateErrors pins the cluster-specific refusals: updates
// through read-only ω′ answer 405, and a replacement that would re-home
// the pivot key answers 409 (ErrCrossShardMove) instead of migrating
// the island.
func TestShardedUpdateErrors(t *testing.T) {
	s, c := newShardedTestServer(t, 2)
	if code, _ := do(t, s, "POST", "/objects/omega-prime:delete",
		map[string]any{"key": []any{"CS345"}}); code != http.StatusMethodNotAllowed {
		t.Errorf("update on read-only sharded object = %d, want 405", code)
	}

	// Find a course id homed on the other shard, then ask VO-R to move
	// CS345 there.
	home, err := c.HomeOf("omega", reldb.Tuple{reldb.String("CS345")})
	if err != nil {
		t.Fatal(err)
	}
	moved := ""
	for i := 0; i < 64; i++ {
		cand := fmt.Sprintf("MOVE%03d", i)
		h, err := c.HomeOf("omega", reldb.Tuple{reldb.String(cand)})
		if err != nil {
			t.Fatal(err)
		}
		if h != home {
			moved = cand
			break
		}
	}
	if moved == "" {
		t.Fatal("no candidate key hashes to the other shard")
	}
	_, orig := do(t, s, "GET", "/objects/omega/CS345", nil)
	repl := map[string]any{}
	data, _ := json.Marshal(orig)
	json.Unmarshal(data, &repl)
	repl["CourseID"] = moved
	code, doc := do(t, s, "POST", "/objects/omega:replace",
		map[string]any{"key": []any{"CS345"}, "instance": repl})
	if code != http.StatusConflict {
		t.Errorf("cross-shard move = %d (%v), want 409", code, doc)
	}
}
