package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"penguin/internal/obs"
	"penguin/internal/oql"
	"penguin/internal/reldb"
	"penguin/internal/reldb/shard"
	"penguin/internal/viewobject"
	"penguin/internal/vupdate"
)

// Endpoint labels for the penguin.http.* metric families. They fit
// comfortably inside obs.EndpointLabelCap.
const (
	epList    = "list"
	epQuery   = "query"
	epGet     = "get"
	epDelete  = "delete"
	epInsert  = "insert"
	epReplace = "replace"
)

// maxBodyBytes bounds update request bodies; a stuck or malicious
// client cannot make the server buffer an unbounded document.
const maxBodyBytes = 8 << 20

// Config describes one serving tier.
type Config struct {
	// DB is the database the objects are defined over.
	DB *reldb.Database
	// Objects maps the externally visible object names to definitions.
	Objects map[string]*viewobject.Definition
	// Updaters maps object names to their §5 update translators. An
	// object without an updater serves reads only (its update endpoints
	// answer 405).
	Updaters map[string]*vupdate.Updater
	// Cluster serves the same API over a sharded database instead of a
	// single one: queries fan out across every shard and merge in pivot-
	// key order, point reads go to the key's home shard, and updates
	// route through the coordinator (island-local fast path or the
	// cross-shard commit). When set, DB/Objects/Updaters are ignored —
	// the tier publishes exactly the cluster's registered objects, all
	// of them updatable.
	Cluster *shard.Cluster
	// MaxReadInFlight and MaxWriteInFlight bound concurrently admitted
	// requests per class; arrivals beyond the bound are shed with 429
	// instead of queueing (DESIGN.md §14). Zero means the defaults
	// (64 reads, 16 writes); negative disables admission control.
	MaxReadInFlight  int
	MaxWriteInFlight int
	// Reg receives the penguin.http.* metrics (obs.Default when nil).
	Reg *obs.Registry
}

// Server is the HTTP serving tier: a handler tree over Config plus the
// admission-control state. Create with New, mount Handler, or start a
// listener in one call with Start.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	reads  chan struct{} // admission semaphores; nil = unbounded
	writes chan struct{}
	mux    *http.ServeMux
}

// New builds a server for the configuration.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg, reg: cfg.Reg}
	if s.reg == nil {
		s.reg = obs.Default
	}
	s.reads = semaphore(cfg.MaxReadInFlight, 64)
	s.writes = semaphore(cfg.MaxWriteInFlight, 16)
	// Intern the endpoint labels now: With resolves by lookup only, so
	// a label never interned would fold into the "other" slot.
	for _, ep := range []string{epList, epQuery, epGet, epDelete, epInsert, epReplace} {
		s.reg.Endpoints.Intern(ep)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /objects", s.admit(epList, s.reads, s.handleList))
	mux.HandleFunc("GET /objects/{name}", s.admit(epQuery, s.reads, s.handleQuery))
	mux.HandleFunc("GET /objects/{name}/{key...}", s.admit(epGet, s.reads, s.handleGet))
	// ServeMux wildcards cannot express the "{name}:verb" suffix, so
	// update routes match the whole segment and split on ':' manually.
	mux.HandleFunc("POST /objects/{target}", s.dispatchUpdate)
	// The serving tier carries the debug surface of a standalone
	// metrics listener, so one port serves both traffic and scrapes.
	mux.Handle("GET /metrics", obs.Handler())
	mux.Handle("/debug/", obs.DebugMux())
	s.mux = mux
	return s
}

// semaphore builds an admission semaphore of capacity n (def when n is
// zero); nil — unbounded — when n is negative.
func semaphore(n, def int) chan struct{} {
	if n < 0 {
		return nil
	}
	if n == 0 {
		n = def
	}
	return make(chan struct{}, n)
}

// Handler returns the server's handler tree. Wrap it in
// obs.HardenedServer (Start does) rather than a bare http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Start launches the serving tier on addr with the hardened listener
// (header/read/idle timeouts, graceful Shutdown).
func Start(addr string, cfg Config) (*Server, *obs.HTTPServer, error) {
	s := New(cfg)
	hs, err := obs.ServeHandler(addr, s.Handler())
	if err != nil {
		return nil, nil, err
	}
	return s, hs, nil
}

// admit wraps an endpoint handler with admission control and the
// penguin.http.* instrumentation. The semaphore is tried, never waited
// on: under overload the cheap answer is an immediate 429 the client
// can back off from, not a queue that converts overload into latency
// for everyone behind it. Shed requests count in penguin.http.shed and
// the 4xx status family but not in penguin.http.requests — "requests"
// means admitted work, so its latency histogram and the shed counter
// partition arrivals cleanly.
func (s *Server) admit(endpoint string, sem chan struct{}, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if sem != nil {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			default:
				s.shed(endpoint, w)
				return
			}
		}
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		ns := time.Since(start).Nanoseconds()
		s.reg.HTTPRequests.Inc()
		s.reg.HTTPRequestsByEndpoint.With(endpoint).Inc()
		s.reg.HTTPNs.Observe(ns)
		s.reg.HTTPNsByEndpoint.With(endpoint).Observe(ns)
		cls := obs.StatusClass(sw.status)
		s.reg.HTTPStatus[cls].Inc()
		s.reg.HTTPStatusByEndpoint[cls].With(endpoint).Inc()
	}
}

// shed answers an over-capacity arrival: fast 429, Retry-After hint,
// shed + 4xx counters.
func (s *Server) shed(endpoint string, w http.ResponseWriter) {
	s.reg.HTTPShed.Inc()
	s.reg.HTTPShedByEndpoint.With(endpoint).Inc()
	s.reg.HTTPStatus[obs.Status4xx].Inc()
	s.reg.HTTPStatusByEndpoint[obs.Status4xx].With(endpoint).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusTooManyRequests)
	fmt.Fprintf(w, `{"error":"overloaded","endpoint":%q}`+"\n", endpoint)
}

// statusWriter records the status code an endpoint handler writes.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// writeJSON sends v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError sends {"error": msg}.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]any{"error": fmt.Sprintf(format, args...)})
}

// updateStatus maps an update-translation failure to a status code: a
// rejection by the §5 pipeline (carrying a reason) and a replacement the
// shard router refuses to re-home are the client's conflict, anything
// else the server's fault.
func updateStatus(err error) int {
	if vupdate.ReasonOf(err) != vupdate.ReasonUnknown {
		return http.StatusConflict
	}
	if errors.Is(err, shard.ErrCrossShardMove) {
		return http.StatusConflict
	}
	if errors.Is(err, reldb.ErrNoSuchRelation) {
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

// object resolves {name}; a miss answers 404 and returns nil. Clustered,
// the resolved definition is shard 0's copy — every shard's definition
// has the identical shape, so it serves for parsing queries, keys, and
// documents (reads against a specific shard use that shard's own copy
// inside the cluster).
func (s *Server) object(w http.ResponseWriter, name string) *viewobject.Definition {
	if c := s.cfg.Cluster; c != nil {
		def, err := c.Object(name, 0)
		if err != nil {
			writeError(w, http.StatusNotFound, "no object named %q", name)
			return nil
		}
		return def
	}
	def, ok := s.cfg.Objects[name]
	if !ok {
		writeError(w, http.StatusNotFound, "no object named %q", name)
		return nil
	}
	return def
}

// generation samples the commit generation clients see in responses:
// the database's, or the cluster-wide sum when sharded.
func (s *Server) generation() uint64 {
	if c := s.cfg.Cluster; c != nil {
		return c.Generation()
	}
	return s.cfg.DB.Generation()
}

// pivotSchema returns the pivot relation's schema for key parsing.
// Shard schemas are identical, so shard 0's copy answers for a cluster.
func (s *Server) pivotSchema(def *viewobject.Definition) (*reldb.Schema, error) {
	db := s.cfg.DB
	if c := s.cfg.Cluster; c != nil {
		db = c.DB(0)
	}
	rel, err := db.Relation(def.Pivot())
	if err != nil {
		return nil, err
	}
	return rel.Schema(), nil
}

// handleList answers GET /objects: every object's shape in name order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	type objInfo struct {
		Name       string   `json:"name"`
		Pivot      string   `json:"pivot"`
		Key        []string `json:"key"`
		Complexity int      `json:"complexity"`
		Updatable  bool     `json:"updatable"`
	}
	var infos []objInfo
	if c := s.cfg.Cluster; c != nil {
		names := c.Objects()
		infos = make([]objInfo, 0, len(names))
		for _, name := range names {
			def, err := c.Object(name, 0)
			if err != nil {
				continue
			}
			infos = append(infos, objInfo{
				Name:       name,
				Pivot:      def.Pivot(),
				Key:        def.Key(),
				Complexity: def.Complexity(),
				Updatable:  c.Updatable(name),
			})
		}
	} else {
		rtx := s.cfg.DB.BeginRead()
		defer rtx.Close()
		infos = make([]objInfo, 0, len(s.cfg.Objects))
		for name, def := range s.cfg.Objects {
			infos = append(infos, objInfo{
				Name:       name,
				Pivot:      def.Pivot(),
				Key:        def.Key(),
				Complexity: def.Complexity(),
				Updatable:  s.cfg.Updaters[name] != nil,
			})
		}
	}
	// Map order is random; the API is not.
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j-1].Name > infos[j].Name; j-- {
			infos[j-1], infos[j] = infos[j], infos[j-1]
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"objects": infos})
}

// handleQuery answers GET /objects/{name}[?q=OQL]: the instances the
// (optionally filtered) object query selects, in pivot-key order.
// Clustered, the query fans out to every shard's snapshot and the
// merged result carries the cluster generation.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	def := s.object(w, name)
	if def == nil {
		return
	}
	q, err := oql.Parse(def, r.URL.Query().Get("q"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad query: %v", err)
		return
	}
	var (
		insts []*viewobject.Instance
		gen   uint64
	)
	if c := s.cfg.Cluster; c != nil {
		insts, err = c.Instantiate(name, q)
		gen = c.Generation()
	} else {
		rtx := s.cfg.DB.BeginRead()
		defer rtx.Close()
		insts, err = viewobject.Instantiate(rtx, def, q)
		gen = rtx.Generation()
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "instantiate: %v", err)
		return
	}
	docs := make([]any, len(insts))
	for i, inst := range insts {
		docs[i] = InstanceDoc(inst)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":      len(docs),
		"generation": gen,
		"instances":  docs,
	})
}

// handleGet answers GET /objects/{name}/{key...}: one instance by pivot
// key, key attributes as slash-separated path segments. Clustered, the
// read goes to the key's home shard alone.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	def := s.object(w, name)
	if def == nil {
		return
	}
	key, err := s.pathKey(def, r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad key: %v", err)
		return
	}
	var (
		inst *viewobject.Instance
		ok   bool
	)
	if c := s.cfg.Cluster; c != nil {
		inst, ok, err = c.InstantiateByKey(name, key)
	} else {
		rtx := s.cfg.DB.BeginRead()
		defer rtx.Close()
		inst, ok, err = viewobject.InstantiateByKey(rtx, def, key)
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "instantiate: %v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no %s instance with that key", name)
		return
	}
	writeJSON(w, http.StatusOK, InstanceDoc(inst))
}

// pathKey parses slash-separated path segments into a typed pivot key.
func (s *Server) pathKey(def *viewobject.Definition, raw string) (reldb.Tuple, error) {
	schema, err := s.pivotSchema(def)
	if err != nil {
		return nil, err
	}
	keyIdx := schema.Key()
	segs := strings.Split(raw, "/")
	if raw == "" || len(segs) != len(keyIdx) {
		return nil, fmt.Errorf("key of %s has %d attribute(s), got %d", def.Pivot(), len(keyIdx), len(segs))
	}
	key := make(reldb.Tuple, len(keyIdx))
	for i, seg := range segs {
		v, err := reldb.ParseValue(schema.Attr(keyIdx[i]).Type, seg)
		if err != nil {
			return nil, err
		}
		key[i] = v
	}
	return key, nil
}

// bodyKey decodes a JSON key array into a typed pivot key, checking
// arity against the pivot relation's key.
func (s *Server) bodyKey(def *viewobject.Definition, raw []any) (reldb.Tuple, error) {
	schema, err := s.pivotSchema(def)
	if err != nil {
		return nil, err
	}
	keyIdx := schema.Key()
	if len(raw) != len(keyIdx) {
		return nil, fmt.Errorf("key of %s has %d attribute(s), got %d", def.Pivot(), len(keyIdx), len(raw))
	}
	return DecodeTuple(raw)
}

// updateRequest is the body of every POST /objects/{name}:verb.
type updateRequest struct {
	// Key names the existing instance (delete, replace).
	Key []any `json:"key"`
	// Instance is the desired document (insert: the new instance;
	// replace: the replacement).
	Instance map[string]any `json:"instance"`
}

// dispatchUpdate routes POST /objects/{name}:{verb}. The verb picks the
// §5 translation: delete → VO-CD, insert → VO-CI, replace → VO-R.
func (s *Server) dispatchUpdate(w http.ResponseWriter, r *http.Request) {
	target := r.PathValue("target")
	name, verb, ok := strings.Cut(target, ":")
	if !ok {
		writeError(w, http.StatusMethodNotAllowed, "POST needs a verb: /objects/%s:delete|insert|replace", target)
		return
	}
	var h func(http.ResponseWriter, string, *viewobject.Definition, updateRequest)
	switch verb {
	case "delete":
		h = s.handleDelete
	case "insert":
		h = s.handleInsert
	case "replace":
		h = s.handleReplace
	default:
		writeError(w, http.StatusNotFound, "unknown update verb %q (want delete, insert, or replace)", verb)
		return
	}
	endpoint := verb
	s.admit(endpoint, s.writes, func(w http.ResponseWriter, r *http.Request) {
		def := s.object(w, name)
		if def == nil {
			return
		}
		readOnly := s.cfg.Updaters[name] == nil
		if c := s.cfg.Cluster; c != nil {
			readOnly = !c.Updatable(name)
		}
		if readOnly {
			writeError(w, http.StatusMethodNotAllowed, "object %q is read-only (no translator configured)", name)
			return
		}
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		dec.UseNumber()
		var req updateRequest
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		h(w, name, def, req)
	})(w, r)
}

// updateResponse acknowledges a committed update. Generation is the
// commit generation the update published (cluster-wide sum when
// sharded); a client that received this response can expect the state
// to survive a crash (SyncCommit makes the WAL append — and, cross-
// shard, the commit decision on every participant — durable before the
// updater returns).
func (s *Server) updateResponse(w http.ResponseWriter, res *vupdate.Result) {
	ops := make([]string, len(res.Ops))
	for i, op := range res.Ops {
		ops[i] = op.String()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ops":        ops,
		"count":      len(ops),
		"generation": s.generation(),
	})
}

// handleDelete performs complete deletion (VO-CD) by pivot key.
func (s *Server) handleDelete(w http.ResponseWriter, name string, def *viewobject.Definition, req updateRequest) {
	key, err := s.bodyKey(def, req.Key)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad key: %v", err)
		return
	}
	var res *vupdate.Result
	if c := s.cfg.Cluster; c != nil {
		res, err = c.DeleteByKey(name, key)
	} else {
		res, err = s.cfg.Updaters[name].DeleteByKey(key)
	}
	if err != nil {
		writeError(w, updateStatus(err), "delete rejected: %v", err)
		return
	}
	s.updateResponse(w, res)
}

// handleInsert performs complete insertion (VO-CI) of the document.
func (s *Server) handleInsert(w http.ResponseWriter, name string, def *viewobject.Definition, req updateRequest) {
	if req.Instance == nil {
		writeError(w, http.StatusBadRequest, "insert needs an \"instance\" document")
		return
	}
	inst, err := InstanceFromDoc(def, req.Instance)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad instance: %v", err)
		return
	}
	var res *vupdate.Result
	if c := s.cfg.Cluster; c != nil {
		// The instance was parsed against shard 0's definition; the
		// coordinator re-homes it onto the pivot key's shard.
		res, err = c.InsertInstance(name, inst)
	} else {
		res, err = s.cfg.Updaters[name].InsertInstance(inst)
	}
	if err != nil {
		writeError(w, updateStatus(err), "insert rejected: %v", err)
		return
	}
	s.updateResponse(w, res)
}

// handleReplace performs replacement (VO-R): the server instantiates
// the current instance under the key, builds the desired instance from
// the document, and hands both to the translator.
func (s *Server) handleReplace(w http.ResponseWriter, name string, def *viewobject.Definition, req updateRequest) {
	if req.Instance == nil {
		writeError(w, http.StatusBadRequest, "replace needs an \"instance\" document")
		return
	}
	key, err := s.bodyKey(def, req.Key)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad key: %v", err)
		return
	}
	var (
		oldInst *viewobject.Instance
		ok      bool
	)
	if c := s.cfg.Cluster; c != nil {
		oldInst, ok, err = c.InstantiateByKey(name, key)
	} else {
		rtx := s.cfg.DB.BeginRead()
		oldInst, ok, err = viewobject.InstantiateByKey(rtx, def, key)
		rtx.Close()
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "instantiate: %v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no %s instance with that key", name)
		return
	}
	newInst, err := InstanceFromDoc(def, req.Instance)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad instance: %v", err)
		return
	}
	var res *vupdate.Result
	if c := s.cfg.Cluster; c != nil {
		res, err = c.ReplaceInstance(name, oldInst, newInst)
	} else {
		res, err = s.cfg.Updaters[name].ReplaceInstance(oldInst, newInst)
	}
	if err != nil {
		writeError(w, updateStatus(err), "replace rejected: %v", err)
		return
	}
	s.updateResponse(w, res)
}
