// Package serve is the HTTP/JSON serving tier over the view-object
// layer: instantiation and the §5 update translations (VO-CD, VO-CI,
// VO-R) exposed as REST-ish endpoints, with admission control that sheds
// load instead of queueing it (DESIGN.md §14).
//
// The package splits into a value/instance codec (this file and doc.go)
// and the HTTP server proper (server.go). The codec exists because
// encoding/json alone cannot round-trip reldb values: JSON numbers lose
// int64 precision past 2^53 and erase the Int/Float kind tag (reldb
// stores Int values in Float attributes — "cross-kind" values — and the
// two compare differently), and JSON strings silently replace invalid
// UTF-8 with U+FFFD. The codec's tagged forms carry exactly enough to
// reproduce the value byte-for-byte under the snapshot codec's canonical
// encoding (reldb.AppendBinaryValue), which the property tests assert.
package serve

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode/utf8"

	"penguin/internal/reldb"
)

// Wire forms (the JSON side of the codec):
//
//	Null          null
//	Bool          true / false
//	String        "..." when valid UTF-8, else {"bytes":"<base64>"}
//	Int           {"int":"<decimal>"}      (string: int64 > 2^53 survives)
//	Float         {"float":"<shortest>"}   (strconv 'g'/-1 round-trips
//	                                        every finite float and ±Inf)
//	Float (NaN)   {"float":"NaN","bits":"<hex of Float64bits>"}
//
// Every form is self-describing, so decoding needs no schema and
// cross-kind values keep their kind. The decoder additionally accepts
// bare JSON numbers as a convenience for handwritten requests (integral
// → Int, fractional → Float); canonical tagged forms are what the
// server emits.

// EncodeValue converts v to its JSON-ready wire form — a value
// json.Marshal serializes to the canonical encoding above.
func EncodeValue(v reldb.Value) any {
	switch v.Kind() {
	case reldb.KindNull:
		return nil
	case reldb.KindBool:
		b, _ := v.AsBool()
		return b
	case reldb.KindInt:
		n, _ := v.AsInt()
		return map[string]any{"int": strconv.FormatInt(n, 10)}
	case reldb.KindFloat:
		f, _ := v.AsFloat()
		if math.IsNaN(f) {
			// "NaN" names the class, not the value: payload bits differ
			// between NaNs and the decimal form cannot carry them.
			return map[string]any{
				"float": "NaN",
				"bits":  strconv.FormatUint(math.Float64bits(f), 16),
			}
		}
		return map[string]any{"float": strconv.FormatFloat(f, 'g', -1, 64)}
	case reldb.KindString:
		s, _ := v.AsString()
		if utf8.ValidString(s) {
			return s
		}
		return map[string]any{"bytes": base64.StdEncoding.EncodeToString([]byte(s))}
	default:
		return nil
	}
}

// DecodeValue parses one decoded-JSON value (an element of the tree
// json.Unmarshal produces — prefer a json.Decoder with UseNumber so
// large integers reach us undamaged) back into a reldb.Value.
func DecodeValue(raw any) (reldb.Value, error) {
	switch x := raw.(type) {
	case nil:
		return reldb.Null(), nil
	case bool:
		return reldb.Bool(x), nil
	case string:
		return reldb.String(x), nil
	case json.Number:
		return decodeNumber(string(x))
	case float64:
		// json.Unmarshal without UseNumber: precision past 2^53 is
		// already gone; preserve the integral/fractional split.
		if x == math.Trunc(x) && !math.IsInf(x, 0) {
			return reldb.Int(int64(x)), nil
		}
		return reldb.Float(x), nil
	case map[string]any:
		return decodeTagged(x)
	default:
		return reldb.Null(), fmt.Errorf("serve: cannot decode %T as a value", raw)
	}
}

// decodeNumber maps a bare JSON number to Int when it is written as an
// integer, Float otherwise.
func decodeNumber(s string) (reldb.Value, error) {
	if !strings.ContainsAny(s, ".eE") {
		n, err := strconv.ParseInt(s, 10, 64)
		if err == nil {
			return reldb.Int(n), nil
		}
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return reldb.Null(), fmt.Errorf("serve: bad number %q", s)
	}
	return reldb.Float(f), nil
}

// decodeTagged handles the {"int":...}, {"float":...}, {"bytes":...}
// wire forms.
func decodeTagged(m map[string]any) (reldb.Value, error) {
	if raw, ok := m["int"]; ok {
		if len(m) != 1 {
			return reldb.Null(), fmt.Errorf("serve: int form carries extra fields")
		}
		s, ok := raw.(string)
		if !ok {
			return reldb.Null(), fmt.Errorf("serve: int form must hold a string, got %T", raw)
		}
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return reldb.Null(), fmt.Errorf("serve: bad int %q", s)
		}
		return reldb.Int(n), nil
	}
	if raw, ok := m["float"]; ok {
		s, ok := raw.(string)
		if !ok {
			return reldb.Null(), fmt.Errorf("serve: float form must hold a string, got %T", raw)
		}
		if bitsRaw, ok := m["bits"]; ok {
			if len(m) != 2 {
				return reldb.Null(), fmt.Errorf("serve: float form carries extra fields")
			}
			bs, ok := bitsRaw.(string)
			if !ok {
				return reldb.Null(), fmt.Errorf("serve: bits must hold a string, got %T", bitsRaw)
			}
			bits, err := strconv.ParseUint(bs, 16, 64)
			if err != nil {
				return reldb.Null(), fmt.Errorf("serve: bad float bits %q", bs)
			}
			f := math.Float64frombits(bits)
			if !math.IsNaN(f) {
				// bits are the NaN escape hatch only; finite floats
				// must use the decimal form, keeping one canonical
				// encoding per value.
				return reldb.Null(), fmt.Errorf("serve: bits %q is not a NaN", bs)
			}
			return reldb.Float(f), nil
		}
		if len(m) != 1 {
			return reldb.Null(), fmt.Errorf("serve: float form carries extra fields")
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return reldb.Null(), fmt.Errorf("serve: bad float %q", s)
		}
		return reldb.Float(f), nil
	}
	if raw, ok := m["bytes"]; ok {
		if len(m) != 1 {
			return reldb.Null(), fmt.Errorf("serve: bytes form carries extra fields")
		}
		s, ok := raw.(string)
		if !ok {
			return reldb.Null(), fmt.Errorf("serve: bytes form must hold a string, got %T", raw)
		}
		b, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return reldb.Null(), fmt.Errorf("serve: bad base64: %v", err)
		}
		return reldb.String(string(b)), nil
	}
	return reldb.Null(), fmt.Errorf("serve: object value carries no int/float/bytes tag")
}

// EncodeTuple converts a tuple to a JSON-ready array of wire forms.
func EncodeTuple(t reldb.Tuple) []any {
	out := make([]any, len(t))
	for i, v := range t {
		out[i] = EncodeValue(v)
	}
	return out
}

// DecodeTuple parses an array of decoded-JSON values into a tuple.
func DecodeTuple(raw []any) (reldb.Tuple, error) {
	t := make(reldb.Tuple, len(raw))
	for i, rv := range raw {
		v, err := DecodeValue(rv)
		if err != nil {
			return nil, fmt.Errorf("element %d: %w", i, err)
		}
		t[i] = v
	}
	return t, nil
}
