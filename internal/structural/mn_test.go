package structural

import (
	"testing"

	"penguin/internal/reldb"
)

// The paper (§2): "m:n relationships are not modeled directly in the
// structural model but can be represented using combinations of
// connections." The canonical combination is a link relation owned by
// both sides — exactly the shape of GRADES in the university schema.
// This test builds a standalone m:n (AUTHORS ↔ PAPERS via WROTE) and
// verifies the integrity semantics the combination yields.
func TestManyToManyViaLinkRelation(t *testing.T) {
	db := reldb.NewDatabase()
	db.MustCreateRelation(reldb.MustSchema("AUTHORS", []reldb.Attribute{
		{Name: "AID", Type: reldb.KindInt},
		{Name: "Name", Type: reldb.KindString, Nullable: true},
	}, []string{"AID"}))
	db.MustCreateRelation(reldb.MustSchema("PAPERS", []reldb.Attribute{
		{Name: "PID", Type: reldb.KindInt},
		{Name: "Title", Type: reldb.KindString, Nullable: true},
	}, []string{"PID"}))
	db.MustCreateRelation(reldb.MustSchema("WROTE", []reldb.Attribute{
		{Name: "AID", Type: reldb.KindInt},
		{Name: "PID", Type: reldb.KindInt},
		{Name: "Position", Type: reldb.KindInt, Nullable: true},
	}, []string{"AID", "PID"}))

	g := NewGraph(db)
	g.MustAddConnection(&Connection{
		Name: "author-wrote", Type: Ownership,
		From: "AUTHORS", To: "WROTE",
		FromAttrs: []string{"AID"}, ToAttrs: []string{"AID"},
	})
	g.MustAddConnection(&Connection{
		Name: "paper-wrote", Type: Ownership,
		From: "PAPERS", To: "WROTE",
		FromAttrs: []string{"PID"}, ToAttrs: []string{"PID"},
	})

	err := db.RunInTx(func(tx *reldb.Tx) error {
		i := reldb.Int
		for _, row := range []reldb.Tuple{
			{i(1), reldb.String("Codd")}, {i(2), reldb.String("Date")},
		} {
			if err := tx.Insert("AUTHORS", row); err != nil {
				return err
			}
		}
		for _, row := range []reldb.Tuple{
			{i(10), reldb.String("Relational Model")}, {i(11), reldb.String("Normal Forms")},
		} {
			if err := tx.Insert("PAPERS", row); err != nil {
				return err
			}
		}
		for _, row := range []reldb.Tuple{
			{i(1), i(10), i(1)}, {i(1), i(11), i(1)}, {i(2), i(11), i(2)},
		} {
			if err := tx.Insert("WROTE", row); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	in := &Integrity{G: g}
	if vs, _ := in.Audit(db); len(vs) != 0 {
		t.Fatalf("violations: %s", FormatViolations(vs))
	}

	// Traversing the combination gives the m:n semantics: papers of an
	// author via author-wrote forward then paper-wrote inverse.
	aw, _ := g.Connection("author-wrote")
	pw, _ := g.Connection("paper-wrote")
	codd, _ := db.MustRelation("AUTHORS").Get(reldb.Tuple{reldb.Int(1)})
	links, err := g.ConnectedTuples(Edge{Conn: aw, Forward: true}, codd)
	if err != nil || len(links) != 2 {
		t.Fatalf("Codd's links = %d, %v", len(links), err)
	}
	papers := map[int64]bool{}
	for _, l := range links {
		ps, err := g.ConnectedTuples(Edge{Conn: pw, Forward: false}, l)
		if err != nil || len(ps) != 1 {
			t.Fatalf("link->paper: %v, %v", ps, err)
		}
		papers[ps[0][0].MustInt()] = true
	}
	if !papers[10] || !papers[11] {
		t.Fatalf("Codd's papers = %v", papers)
	}

	// Deleting an author cascades only the link rows; papers survive
	// (Definition 2.2 criterion 2 on the author side).
	tx := db.Begin()
	if _, err := in.Delete(tx, "AUTHORS", reldb.Tuple{reldb.Int(1)}); err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	if db.MustRelation("WROTE").Count() != 1 {
		t.Fatalf("WROTE count = %d, want 1", db.MustRelation("WROTE").Count())
	}
	if db.MustRelation("PAPERS").Count() != 2 {
		t.Fatal("papers must survive author deletion")
	}
	if vs, _ := in.Audit(db); len(vs) != 0 {
		t.Fatalf("violations after cascade: %s", FormatViolations(vs))
	}

	// Key modification on one side propagates through the link rows.
	tx = db.Begin()
	if _, err := in.ReplaceKey(tx, "PAPERS", reldb.Tuple{reldb.Int(11)},
		reldb.Tuple{reldb.Int(99), reldb.String("Normal Forms v2")}); err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	if !db.MustRelation("WROTE").Has(reldb.Tuple{reldb.Int(2), reldb.Int(99)}) {
		t.Fatal("link row did not follow the paper's key change")
	}
}
