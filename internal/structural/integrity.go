package structural

import (
	"fmt"
	"strings"

	"penguin/internal/reldb"
)

// Resolver resolves relation names to relations. Both *reldb.Database and
// *reldb.Tx satisfy it; integrity routines that run inside a transaction
// must be handed the transaction, because Database.Relation takes the
// database lock the transaction already holds.
type Resolver interface {
	Relation(name string) (*reldb.Relation, error)
}

// ConnectedVia returns the tuples of e.Target() connected to tuple across
// the edge, resolving relations through res. A null connecting value on
// the source side connects to nothing.
func ConnectedVia(res Resolver, e Edge, tuple reldb.Tuple) ([]reldb.Tuple, error) {
	return ConnectedViaStats(res, e, tuple, nil)
}

// ConnectedViaStats is ConnectedVia that additionally accumulates lookup
// cost into st (which may be nil).
func ConnectedViaStats(res Resolver, e Edge, tuple reldb.Tuple, st *reldb.MatchStats) ([]reldb.Tuple, error) {
	srcRel, err := res.Relation(e.Source())
	if err != nil {
		return nil, err
	}
	srcIdx, err := srcRel.Schema().Indices(e.SourceAttrs())
	if err != nil {
		return nil, err
	}
	vals := make(reldb.Tuple, len(srcIdx))
	for i, j := range srcIdx {
		if tuple[j].IsNull() {
			return nil, nil
		}
		vals[i] = tuple[j]
	}
	tgtRel, err := res.Relation(e.Target())
	if err != nil {
		return nil, err
	}
	matches, err := tgtRel.MatchEqualStats(e.TargetAttrs(), vals, st)
	if err != nil {
		return nil, err
	}
	if matches == nil {
		// Non-nil even when empty: a nil result is reserved for the
		// null-connecting-value case above.
		matches = []reldb.Tuple{}
	}
	return matches, nil
}

// DeleteAction selects how a deletion of a referenced tuple treats its
// referencing tuples (Definition 2.3, criterion 2).
type DeleteAction uint8

// Delete actions for reference connections.
const (
	// DeleteRestrict rejects the deletion while referencing tuples exist.
	DeleteRestrict DeleteAction = iota
	// DeleteCascade deletes the referencing tuples (recursively applying
	// their own integrity rules).
	DeleteCascade
	// DeleteSetNull assigns null to the referencing attributes.
	DeleteSetNull
)

// String implements fmt.Stringer.
func (a DeleteAction) String() string {
	switch a {
	case DeleteRestrict:
		return "restrict"
	case DeleteCascade:
		return "cascade"
	case DeleteSetNull:
		return "set-null"
	default:
		return fmt.Sprintf("deleteaction(%d)", uint8(a))
	}
}

// KeyModAction selects how a key modification propagates across a
// connection (criterion 3 of Definitions 2.2-2.4).
type KeyModAction uint8

// Key-modification actions.
const (
	// KeyModPropagate rewrites the connecting attributes of the dependent
	// tuples to the new key values.
	KeyModPropagate KeyModAction = iota
	// KeyModDelete deletes the dependent tuples.
	KeyModDelete
	// KeyModSetNull nulls the referencing attributes (reference
	// connections only).
	KeyModSetNull
)

// String implements fmt.Stringer.
func (a KeyModAction) String() string {
	switch a {
	case KeyModPropagate:
		return "propagate"
	case KeyModDelete:
		return "delete"
	case KeyModSetNull:
		return "set-null"
	default:
		return fmt.Sprintf("keymodaction(%d)", uint8(a))
	}
}

// Policy configures, per connection name, the chosen alternative wherever
// the structural model's integrity rules admit more than one. Connections
// absent from the maps use the defaults: DeleteRestrict and
// KeyModPropagate.
type Policy struct {
	// OnRefDelete applies when a referenced tuple is deleted, keyed by
	// the reference connection's name.
	OnRefDelete map[string]DeleteAction
	// OnKeyMod applies when a tuple's key is modified, keyed by the
	// ownership, subset, or reference connection's name.
	OnKeyMod map[string]KeyModAction
}

// refDelete returns the configured delete action for connection name.
func (p *Policy) refDelete(name string) DeleteAction {
	if p == nil || p.OnRefDelete == nil {
		return DeleteRestrict
	}
	return p.OnRefDelete[name]
}

// keyMod returns the configured key-modification action for connection name.
func (p *Policy) keyMod(name string) KeyModAction {
	if p == nil || p.OnKeyMod == nil {
		return KeyModPropagate
	}
	return p.OnKeyMod[name]
}

// Integrity enforces the structural model's rules over a graph.
type Integrity struct {
	G      *Graph
	Policy *Policy
}

// CheckInsert verifies that inserting tuple into rel would satisfy every
// connection's existence criterion:
//
//   - rel references R2 (Definition 2.3 criterion 1): the referenced tuple
//     must exist unless the referencing attributes are null;
//   - rel is owned by R1 (Definition 2.2 criterion 1): an owning tuple
//     must exist;
//   - rel is a subset of R1 (Definition 2.4 criterion 1): the parent
//     tuple must exist.
//
// The tuple itself is not inserted.
func (in *Integrity) CheckInsert(res Resolver, rel string, tuple reldb.Tuple) error {
	for _, c := range in.G.Outgoing(rel) {
		if c.Type != Reference {
			continue
		}
		matches, err := ConnectedVia(res, Edge{Conn: c, Forward: true}, tuple)
		if err != nil {
			return err
		}
		if matches == nil {
			// Null referencing attributes: permitted by criterion 1.
			continue
		}
		if len(matches) == 0 {
			return fmt.Errorf("structural: insert into %s violates %s: referenced tuple missing",
				rel, c)
		}
	}
	for _, c := range in.G.Incoming(rel) {
		switch c.Type {
		case Ownership, Subset:
			owners, err := ConnectedVia(res, Edge{Conn: c, Forward: false}, tuple)
			if err != nil {
				return err
			}
			if len(owners) == 0 {
				return fmt.Errorf("structural: insert into %s violates %s: %s tuple missing in %s",
					rel, c, c.Type, c.From)
			}
		}
	}
	return nil
}

// Delete removes the tuple with the given key from rel inside tx,
// propagating per the structural model:
//
//   - owned and subset tuples are deleted recursively (criterion 2 of
//     Definitions 2.2 and 2.4);
//   - referencing tuples are handled per the policy's delete action
//     (criterion 2 of Definition 2.3): restrict, cascade, or set-null.
//
// It returns the total number of database operations performed.
func (in *Integrity) Delete(tx *reldb.Tx, rel string, key reldb.Tuple) (int, error) {
	r, err := tx.Relation(rel)
	if err != nil {
		return 0, err
	}
	tuple, ok := r.Get(key)
	if !ok {
		return 0, fmt.Errorf("structural: delete from %s: %w", rel, reldb.ErrNoSuchTuple)
	}
	before := tx.OpCount()
	if err := in.deleteTuple(tx, rel, tuple); err != nil {
		return tx.OpCount() - before, err
	}
	return tx.OpCount() - before, nil
}

func (in *Integrity) deleteTuple(tx *reldb.Tx, rel string, tuple reldb.Tuple) error {
	r, err := tx.Relation(rel)
	if err != nil {
		return err
	}
	key := r.Schema().KeyOf(tuple)
	// A diamond-shaped cascade may reach the same tuple twice; the second
	// visit finds it already gone and has nothing left to do.
	if !r.Has(key) {
		return nil
	}
	// Handle incoming references first (they may restrict).
	for _, c := range in.G.Incoming(rel) {
		if c.Type != Reference {
			continue
		}
		referencing, err := ConnectedVia(tx, Edge{Conn: c, Forward: false}, tuple)
		if err != nil {
			return err
		}
		if len(referencing) == 0 {
			continue
		}
		switch in.Policy.refDelete(c.Name) {
		case DeleteRestrict:
			return fmt.Errorf("structural: delete from %s restricted by %s: %d referencing tuple(s) in %s",
				rel, c, len(referencing), c.From)
		case DeleteCascade:
			for _, rt := range referencing {
				if err := in.deleteTuple(tx, c.From, rt); err != nil {
					return err
				}
			}
		case DeleteSetNull:
			fromRel, err := tx.Relation(c.From)
			if err != nil {
				return err
			}
			idx, err := fromRel.Schema().Indices(c.FromAttrs)
			if err != nil {
				return err
			}
			for _, rt := range referencing {
				nt := rt.Clone()
				for _, j := range idx {
					nt[j] = reldb.Null()
				}
				if _, err := tx.Replace(c.From, fromRel.Schema().KeyOf(rt), nt); err != nil {
					return fmt.Errorf("structural: set-null on %s: %w", c, err)
				}
			}
		}
	}
	// Cascade to owned and subset tuples.
	for _, c := range in.G.Outgoing(rel) {
		switch c.Type {
		case Ownership, Subset:
			dependents, err := ConnectedVia(tx, Edge{Conn: c, Forward: true}, tuple)
			if err != nil {
				return err
			}
			for _, dt := range dependents {
				if err := in.deleteTuple(tx, c.To, dt); err != nil {
					return err
				}
			}
		}
	}
	if _, err := tx.Delete(rel, key); err != nil {
		return err
	}
	return nil
}

// ReplaceKey replaces the tuple at oldKey in rel with newTuple inside tx,
// propagating key modifications across connections per criterion 3 of
// Definitions 2.2-2.4 and the policy's key-modification actions. Non-key
// modifications propagate across no connection (connecting attributes of
// outgoing ownership/subset edges and incoming reference edges are keys).
// It returns the total number of database operations performed.
func (in *Integrity) ReplaceKey(tx *reldb.Tx, rel string, oldKey reldb.Tuple, newTuple reldb.Tuple) (int, error) {
	before := tx.OpCount()
	if err := in.replaceTuple(tx, rel, oldKey, newTuple); err != nil {
		return tx.OpCount() - before, err
	}
	return tx.OpCount() - before, nil
}

func (in *Integrity) replaceTuple(tx *reldb.Tx, rel string, oldKey reldb.Tuple, newTuple reldb.Tuple) error {
	r, err := tx.Relation(rel)
	if err != nil {
		return err
	}
	schema := r.Schema()
	oldTuple, ok := r.Get(oldKey)
	if !ok {
		return fmt.Errorf("structural: replace in %s: %w", rel, reldb.ErrNoSuchTuple)
	}
	newKey := schema.KeyOf(newTuple)
	keyChanged := !oldKey.Equal(newKey)

	// Collect dependents before the replacement changes match values.
	type depWork struct {
		conn    *Connection
		tuples  []reldb.Tuple
		forward bool
	}
	var work []depWork
	if keyChanged {
		for _, c := range in.G.Outgoing(rel) {
			if c.Type == Ownership || c.Type == Subset {
				deps, err := ConnectedVia(tx, Edge{Conn: c, Forward: true}, oldTuple)
				if err != nil {
					return err
				}
				if len(deps) > 0 {
					work = append(work, depWork{conn: c, tuples: deps, forward: true})
				}
			}
		}
		for _, c := range in.G.Incoming(rel) {
			if c.Type == Reference {
				refs, err := ConnectedVia(tx, Edge{Conn: c, Forward: false}, oldTuple)
				if err != nil {
					return err
				}
				if len(refs) > 0 {
					work = append(work, depWork{conn: c, tuples: refs, forward: false})
				}
			}
		}
	}

	if _, err := tx.Replace(rel, oldKey, newTuple); err != nil {
		return err
	}

	for _, w := range work {
		c := w.conn
		action := in.Policy.keyMod(c.Name)
		switch {
		case w.forward:
			// Owned/subset tuples: propagate new connecting values or
			// delete (Definitions 2.2/2.4 criterion 3).
			switch action {
			case KeyModPropagate:
				if err := in.rewriteConnected(tx, c.To, c.ToAttrs, w.tuples, newTuple, schema, c.FromAttrs); err != nil {
					return err
				}
			case KeyModDelete:
				for _, dt := range w.tuples {
					if err := in.deleteTuple(tx, c.To, dt); err != nil {
						return err
					}
				}
			default:
				return fmt.Errorf("structural: %s: set-null is not a valid key-mod action for %s connections",
					c, c.Type)
			}
		default:
			// Referencing tuples (Definition 2.3 criterion 3):
			// propagate, set null, or delete.
			switch action {
			case KeyModPropagate:
				if err := in.rewriteConnected(tx, c.From, c.FromAttrs, w.tuples, newTuple, schema, c.ToAttrs); err != nil {
					return err
				}
			case KeyModSetNull:
				fromRel, err := tx.Relation(c.From)
				if err != nil {
					return err
				}
				idx, err := fromRel.Schema().Indices(c.FromAttrs)
				if err != nil {
					return err
				}
				for _, rt := range w.tuples {
					nt := rt.Clone()
					for _, j := range idx {
						nt[j] = reldb.Null()
					}
					if _, err := tx.Replace(c.From, fromRel.Schema().KeyOf(rt), nt); err != nil {
						return err
					}
				}
			case KeyModDelete:
				for _, rt := range w.tuples {
					if err := in.deleteTuple(tx, c.From, rt); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// rewriteConnected rewrites the connecting attributes destAttrs of each
// tuple in deps (tuples of relation destRel) to the values the new source
// tuple carries in srcAttrs. Key rewrites recurse so that grandchildren
// inherit the change.
func (in *Integrity) rewriteConnected(tx *reldb.Tx, destRel string, destAttrs []string,
	deps []reldb.Tuple, newSrc reldb.Tuple, srcSchema *reldb.Schema, srcAttrs []string) error {

	dRel, err := tx.Relation(destRel)
	if err != nil {
		return err
	}
	dIdx, err := dRel.Schema().Indices(destAttrs)
	if err != nil {
		return err
	}
	sIdx, err := srcSchema.Indices(srcAttrs)
	if err != nil {
		return err
	}
	for _, dep := range deps {
		nt := dep.Clone()
		for i, j := range dIdx {
			nt[j] = newSrc[sIdx[i]]
		}
		oldKey := dRel.Schema().KeyOf(dep)
		newKey := dRel.Schema().KeyOf(nt)
		if oldKey.Equal(newKey) {
			if _, err := tx.Replace(destRel, oldKey, nt); err != nil {
				return err
			}
			continue
		}
		// The dependent's own key changed: recurse so its dependents
		// follow (repeatedly, as §5.1 notes, "if necessary").
		if err := in.replaceTuple(tx, destRel, oldKey, nt); err != nil {
			return err
		}
	}
	return nil
}

// Violation reports one integrity failure found by Audit.
type Violation struct {
	Conn *Connection
	// Rel is the relation holding the offending tuple.
	Rel   string
	Tuple reldb.Tuple
	// Reason describes the failed criterion.
	Reason string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s: tuple %s of %s: %s", v.Conn, v.Tuple, v.Rel, v.Reason)
}

// Audit scans the whole database for violations of every connection's
// existence criteria. It is the ground-truth checker used by tests and by
// the baseline-comparison experiment (a flat-view deletion leaves orphans
// that Audit reports; the view-object translation leaves none).
func (in *Integrity) Audit(res Resolver) ([]Violation, error) {
	var out []Violation
	for _, c := range in.G.Connections() {
		switch c.Type {
		case Ownership, Subset:
			// Every To tuple must be connected to a From tuple.
			toRel, err := res.Relation(c.To)
			if err != nil {
				return nil, err
			}
			var scanErr error
			toRel.Scan(func(t reldb.Tuple) bool {
				owners, err := ConnectedVia(res, Edge{Conn: c, Forward: false}, t)
				if err != nil {
					scanErr = err
					return false
				}
				if len(owners) == 0 {
					out = append(out, Violation{
						Conn: c, Rel: c.To, Tuple: t.Clone(),
						Reason: fmt.Sprintf("orphan: no %s tuple in %s", c.Type, c.From),
					})
				}
				return true
			})
			if scanErr != nil {
				return nil, scanErr
			}
		case Reference:
			// Every From tuple must reference an existing To tuple or be null.
			fromRel, err := res.Relation(c.From)
			if err != nil {
				return nil, err
			}
			var scanErr error
			fromRel.Scan(func(t reldb.Tuple) bool {
				matches, err := ConnectedVia(res, Edge{Conn: c, Forward: true}, t)
				if err != nil {
					scanErr = err
					return false
				}
				if matches != nil && len(matches) == 0 {
					out = append(out, Violation{
						Conn: c, Rel: c.From, Tuple: t.Clone(),
						Reason: fmt.Sprintf("dangling reference into %s", c.To),
					})
				}
				return true
			})
			if scanErr != nil {
				return nil, scanErr
			}
		}
	}
	return out, nil
}

// FormatViolations renders violations one per line for reports.
func FormatViolations(vs []Violation) string {
	if len(vs) == 0 {
		return "no violations"
	}
	lines := make([]string, len(vs))
	for i, v := range vs {
		lines[i] = v.String()
	}
	return strings.Join(lines, "\n")
}
