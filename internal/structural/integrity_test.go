package structural

import (
	"errors"
	"strings"
	"testing"

	"penguin/internal/reldb"
)

// seededMini builds the mini graph with data:
//
//	OWNER(1), OWNER(2)
//	OWNED(1,1) OWNED(1,2) OWNED(2,1)
//	TARGET(t1), TARGET(t2)
//	REFER(5→t1), REFER(6→null), REFER(7→t1)
//	GENERAL(g1), SPECIAL(g1)
func seededMini(t *testing.T) (*reldb.Database, *Graph) {
	t.Helper()
	db, g := miniGraph(t)
	err := db.RunInTx(func(tx *reldb.Tx) error {
		ins := func(rel string, rows ...reldb.Tuple) {
			for _, r := range rows {
				if err := tx.Insert(rel, r); err != nil {
					t.Fatalf("seed %s: %v", rel, err)
				}
			}
		}
		i, s := reldb.Int, reldb.String
		ins("OWNER", reldb.Tuple{i(1), s("o1")}, reldb.Tuple{i(2), s("o2")})
		ins("OWNED",
			reldb.Tuple{i(1), i(1), s("a")},
			reldb.Tuple{i(1), i(2), s("b")},
			reldb.Tuple{i(2), i(1), s("c")})
		ins("TARGET", reldb.Tuple{s("t1"), s("info1")}, reldb.Tuple{s("t2"), s("info2")})
		ins("REFER",
			reldb.Tuple{i(5), s("t1")},
			reldb.Tuple{i(6), reldb.Null()},
			reldb.Tuple{i(7), s("t1")})
		ins("GENERAL", reldb.Tuple{s("g1"), s("c")})
		ins("SPECIAL", reldb.Tuple{s("g1"), s("x")})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, g
}

func TestCheckInsertReference(t *testing.T) {
	db, g := seededMini(t)
	in := &Integrity{G: g}
	// Valid: references existing target.
	if err := in.CheckInsert(db, "REFER", reldb.Tuple{reldb.Int(10), reldb.String("t2")}); err != nil {
		t.Fatalf("valid reference rejected: %v", err)
	}
	// Valid: null FK.
	if err := in.CheckInsert(db, "REFER", reldb.Tuple{reldb.Int(11), reldb.Null()}); err != nil {
		t.Fatalf("null FK rejected: %v", err)
	}
	// Invalid: dangling.
	err := in.CheckInsert(db, "REFER", reldb.Tuple{reldb.Int(12), reldb.String("ghost")})
	if err == nil || !strings.Contains(err.Error(), "referenced tuple missing") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckInsertOwnershipAndSubset(t *testing.T) {
	db, g := seededMini(t)
	in := &Integrity{G: g}
	// Valid owned tuple under existing owner.
	if err := in.CheckInsert(db, "OWNED", reldb.Tuple{reldb.Int(2), reldb.Int(9), reldb.Null()}); err != nil {
		t.Fatalf("valid owned rejected: %v", err)
	}
	// Orphan owned tuple.
	err := in.CheckInsert(db, "OWNED", reldb.Tuple{reldb.Int(99), reldb.Int(1), reldb.Null()})
	if err == nil || !strings.Contains(err.Error(), "ownership tuple missing") {
		t.Fatalf("err = %v", err)
	}
	// Valid subset tuple.
	if err := in.CheckInsert(db, "SPECIAL", reldb.Tuple{reldb.String("g1"), reldb.Null()}); err != nil {
		t.Fatalf("valid subset rejected: %v", err)
	}
	// Subset without parent.
	err = in.CheckInsert(db, "SPECIAL", reldb.Tuple{reldb.String("ghost"), reldb.Null()})
	if err == nil || !strings.Contains(err.Error(), "subset tuple missing") {
		t.Fatalf("err = %v", err)
	}
}

func TestDeleteCascadesOwnershipAndSubset(t *testing.T) {
	db, g := seededMini(t)
	in := &Integrity{G: g}
	tx := db.Begin()
	n, err := in.Delete(tx, "OWNER", reldb.Tuple{reldb.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// OWNER(1) plus its two OWNED tuples.
	if n != 3 {
		t.Fatalf("ops = %d, want 3", n)
	}
	if db.MustRelation("OWNED").Count() != 1 {
		t.Fatalf("OWNED count = %d", db.MustRelation("OWNED").Count())
	}
	// Subset cascade.
	tx = db.Begin()
	if _, err := in.Delete(tx, "GENERAL", reldb.Tuple{reldb.String("g1")}); err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	if db.MustRelation("SPECIAL").Count() != 0 {
		t.Fatal("subset tuple survived parent deletion")
	}
}

func TestDeleteRestrictedByReference(t *testing.T) {
	db, g := seededMini(t)
	in := &Integrity{G: g} // default policy: restrict
	tx := db.Begin()
	_, err := in.Delete(tx, "TARGET", reldb.Tuple{reldb.String("t1")})
	if err == nil || !strings.Contains(err.Error(), "restricted") {
		t.Fatalf("err = %v", err)
	}
	_ = tx.Rollback()
	if db.MustRelation("TARGET").Count() != 2 {
		t.Fatal("restricted delete mutated the database")
	}
	// Unreferenced target deletes fine.
	tx = db.Begin()
	if _, err := in.Delete(tx, "TARGET", reldb.Tuple{reldb.String("t2")}); err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
}

func TestDeleteCascadeReferencePolicy(t *testing.T) {
	db, g := seededMini(t)
	in := &Integrity{G: g, Policy: &Policy{
		OnRefDelete: map[string]DeleteAction{"ref": DeleteCascade},
	}}
	tx := db.Begin()
	n, err := in.Delete(tx, "TARGET", reldb.Tuple{reldb.String("t1")})
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	if n != 3 { // two referencing tuples + the target
		t.Fatalf("ops = %d, want 3", n)
	}
	if db.MustRelation("REFER").Count() != 1 {
		t.Fatalf("REFER count = %d, want 1 (only the null ref)", db.MustRelation("REFER").Count())
	}
}

func TestDeleteSetNullReferencePolicy(t *testing.T) {
	db, g := seededMini(t)
	in := &Integrity{G: g, Policy: &Policy{
		OnRefDelete: map[string]DeleteAction{"ref": DeleteSetNull},
	}}
	tx := db.Begin()
	_, err := in.Delete(tx, "TARGET", reldb.Tuple{reldb.String("t1")})
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	if db.MustRelation("REFER").Count() != 3 {
		t.Fatal("set-null should keep referencing tuples")
	}
	got, _ := db.MustRelation("REFER").Get(reldb.Tuple{reldb.Int(5)})
	if !got[1].IsNull() {
		t.Fatalf("FK not nulled: %v", got)
	}
}

func TestDeleteMissingTuple(t *testing.T) {
	db, g := seededMini(t)
	in := &Integrity{G: g}
	tx := db.Begin()
	defer func() { _ = tx.Rollback() }()
	_, err := in.Delete(tx, "OWNER", reldb.Tuple{reldb.Int(99)})
	if !errors.Is(err, reldb.ErrNoSuchTuple) {
		t.Fatalf("err = %v", err)
	}
}

func TestReplaceNonKeyNoPropagation(t *testing.T) {
	db, g := seededMini(t)
	in := &Integrity{G: g}
	tx := db.Begin()
	n, err := in.ReplaceKey(tx, "OWNER", reldb.Tuple{reldb.Int(1)},
		reldb.Tuple{reldb.Int(1), reldb.String("renamed")})
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	if n != 1 {
		t.Fatalf("non-key replace ops = %d, want 1", n)
	}
}

func TestReplaceKeyPropagatesToOwned(t *testing.T) {
	db, g := seededMini(t)
	in := &Integrity{G: g} // default key-mod: propagate
	tx := db.Begin()
	_, err := in.ReplaceKey(tx, "OWNER", reldb.Tuple{reldb.Int(1)},
		reldb.Tuple{reldb.Int(10), reldb.String("moved")})
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	owned := db.MustRelation("OWNED")
	got, err := owned.MatchEqual([]string{"ID"}, reldb.Tuple{reldb.Int(10)})
	if err != nil || len(got) != 2 {
		t.Fatalf("owned under new key = %d, %v", len(got), err)
	}
	got, _ = owned.MatchEqual([]string{"ID"}, reldb.Tuple{reldb.Int(1)})
	if len(got) != 0 {
		t.Fatal("owned tuples left under old key")
	}
}

func TestReplaceKeyDeleteOwnedPolicy(t *testing.T) {
	db, g := seededMini(t)
	in := &Integrity{G: g, Policy: &Policy{
		OnKeyMod: map[string]KeyModAction{"own": KeyModDelete},
	}}
	tx := db.Begin()
	_, err := in.ReplaceKey(tx, "OWNER", reldb.Tuple{reldb.Int(1)},
		reldb.Tuple{reldb.Int(10), reldb.Null()})
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	if db.MustRelation("OWNED").Count() != 1 {
		t.Fatalf("OWNED count = %d, want 1", db.MustRelation("OWNED").Count())
	}
}

func TestReplaceKeySetNullInvalidForOwnership(t *testing.T) {
	db, g := seededMini(t)
	in := &Integrity{G: g, Policy: &Policy{
		OnKeyMod: map[string]KeyModAction{"own": KeyModSetNull},
	}}
	tx := db.Begin()
	defer func() { _ = tx.Rollback() }()
	_, err := in.ReplaceKey(tx, "OWNER", reldb.Tuple{reldb.Int(1)},
		reldb.Tuple{reldb.Int(10), reldb.Null()})
	if err == nil || !strings.Contains(err.Error(), "not a valid key-mod action") {
		t.Fatalf("err = %v", err)
	}
}

func TestReplaceKeyPropagatesToReferencing(t *testing.T) {
	db, g := seededMini(t)
	in := &Integrity{G: g}
	tx := db.Begin()
	_, err := in.ReplaceKey(tx, "TARGET", reldb.Tuple{reldb.String("t1")},
		reldb.Tuple{reldb.String("t1-new"), reldb.String("info1")})
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	for _, id := range []int64{5, 7} {
		got, _ := db.MustRelation("REFER").Get(reldb.Tuple{reldb.Int(id)})
		if got[1].MustString() != "t1-new" {
			t.Fatalf("REFER(%d) FK = %v", id, got[1])
		}
	}
}

func TestReplaceKeySetNullReferencing(t *testing.T) {
	db, g := seededMini(t)
	in := &Integrity{G: g, Policy: &Policy{
		OnKeyMod: map[string]KeyModAction{"ref": KeyModSetNull},
	}}
	tx := db.Begin()
	_, err := in.ReplaceKey(tx, "TARGET", reldb.Tuple{reldb.String("t1")},
		reldb.Tuple{reldb.String("t1-new"), reldb.Null()})
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	got, _ := db.MustRelation("REFER").Get(reldb.Tuple{reldb.Int(5)})
	if !got[1].IsNull() {
		t.Fatalf("FK = %v, want null", got[1])
	}
}

func TestReplaceKeyDeleteReferencing(t *testing.T) {
	db, g := seededMini(t)
	in := &Integrity{G: g, Policy: &Policy{
		OnKeyMod: map[string]KeyModAction{"ref": KeyModDelete},
	}}
	tx := db.Begin()
	_, err := in.ReplaceKey(tx, "TARGET", reldb.Tuple{reldb.String("t1")},
		reldb.Tuple{reldb.String("t1-new"), reldb.Null()})
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	if db.MustRelation("REFER").Count() != 1 {
		t.Fatalf("REFER count = %d, want 1", db.MustRelation("REFER").Count())
	}
}

func TestReplaceKeySubsetPropagates(t *testing.T) {
	db, g := seededMini(t)
	in := &Integrity{G: g}
	tx := db.Begin()
	_, err := in.ReplaceKey(tx, "GENERAL", reldb.Tuple{reldb.String("g1")},
		reldb.Tuple{reldb.String("g2"), reldb.String("c")})
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	if !db.MustRelation("SPECIAL").Has(reldb.Tuple{reldb.String("g2")}) {
		t.Fatal("subset key not propagated")
	}
}

func TestReplaceKeyMissingTuple(t *testing.T) {
	db, g := seededMini(t)
	in := &Integrity{G: g}
	tx := db.Begin()
	defer func() { _ = tx.Rollback() }()
	_, err := in.ReplaceKey(tx, "OWNER", reldb.Tuple{reldb.Int(99)},
		reldb.Tuple{reldb.Int(100), reldb.Null()})
	if !errors.Is(err, reldb.ErrNoSuchTuple) {
		t.Fatalf("err = %v", err)
	}
}

// Chained ownership: OWNER —* OWNED, and OWNED —* SUBOWNED. A key change at
// the root must reach grandchildren through the recursive propagation.
func TestReplaceKeyPropagatesTransitively(t *testing.T) {
	db := miniDB(t)
	db.MustCreateRelation(reldb.MustSchema("SUBOWNED", []reldb.Attribute{
		{Name: "ID", Type: reldb.KindInt},
		{Name: "Seq", Type: reldb.KindInt},
		{Name: "Part", Type: reldb.KindInt},
	}, []string{"ID", "Seq", "Part"}))
	g := NewGraph(db)
	g.MustAddConnection(ownershipConn())
	g.MustAddConnection(&Connection{
		Name: "own2", Type: Ownership,
		From: "OWNED", To: "SUBOWNED",
		FromAttrs: []string{"ID", "Seq"}, ToAttrs: []string{"ID", "Seq"},
	})
	err := db.RunInTx(func(tx *reldb.Tx) error {
		i := reldb.Int
		_ = tx.Insert("OWNER", reldb.Tuple{i(1), reldb.Null()})
		_ = tx.Insert("OWNED", reldb.Tuple{i(1), i(1), reldb.Null()})
		return tx.Insert("SUBOWNED", reldb.Tuple{i(1), i(1), i(1)})
	})
	if err != nil {
		t.Fatal(err)
	}
	in := &Integrity{G: g}
	tx := db.Begin()
	if _, err := in.ReplaceKey(tx, "OWNER", reldb.Tuple{reldb.Int(1)},
		reldb.Tuple{reldb.Int(7), reldb.Null()}); err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	if !db.MustRelation("SUBOWNED").Has(reldb.Tuple{reldb.Int(7), reldb.Int(1), reldb.Int(1)}) {
		t.Fatal("grandchild key not propagated")
	}
}

func TestAuditCleanDatabase(t *testing.T) {
	db, g := seededMini(t)
	in := &Integrity{G: g}
	vs, err := in.Audit(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("clean database has violations:\n%s", FormatViolations(vs))
	}
	if FormatViolations(vs) != "no violations" {
		t.Fatal("FormatViolations empty case")
	}
}

func TestAuditFindsViolations(t *testing.T) {
	db, g := seededMini(t)
	// Create an orphan OWNED, a dangling REFER, and an orphan SPECIAL by
	// raw deletion (bypassing the integrity engine).
	err := db.RunInTx(func(tx *reldb.Tx) error {
		if _, err := tx.Delete("OWNER", reldb.Tuple{reldb.Int(1)}); err != nil {
			return err
		}
		if _, err := tx.Delete("TARGET", reldb.Tuple{reldb.String("t1")}); err != nil {
			return err
		}
		_, err := tx.Delete("GENERAL", reldb.Tuple{reldb.String("g1")})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	in := &Integrity{G: g}
	vs, err := in.Audit(db)
	if err != nil {
		t.Fatal(err)
	}
	// 2 orphan OWNED + 2 dangling REFER + 1 orphan SPECIAL.
	if len(vs) != 5 {
		t.Fatalf("violations = %d, want 5:\n%s", len(vs), FormatViolations(vs))
	}
	text := FormatViolations(vs)
	for _, want := range []string{"orphan", "dangling reference"} {
		if !strings.Contains(text, want) {
			t.Errorf("violations missing %q:\n%s", want, text)
		}
	}
}

func TestActionStrings(t *testing.T) {
	if DeleteRestrict.String() != "restrict" || DeleteCascade.String() != "cascade" || DeleteSetNull.String() != "set-null" {
		t.Fatal("DeleteAction strings")
	}
	if KeyModPropagate.String() != "propagate" || KeyModDelete.String() != "delete" || KeyModSetNull.String() != "set-null" {
		t.Fatal("KeyModAction strings")
	}
	if !strings.Contains(DeleteAction(9).String(), "deleteaction") ||
		!strings.Contains(KeyModAction(9).String(), "keymodaction") {
		t.Fatal("unknown action strings")
	}
}

func TestPolicyDefaults(t *testing.T) {
	var p *Policy
	if p.refDelete("x") != DeleteRestrict {
		t.Fatal("nil policy should restrict")
	}
	if p.keyMod("x") != KeyModPropagate {
		t.Fatal("nil policy should propagate")
	}
	p = &Policy{}
	if p.refDelete("x") != DeleteRestrict || p.keyMod("x") != KeyModPropagate {
		t.Fatal("empty policy defaults wrong")
	}
}
