package structural

import (
	"penguin/internal/reldb"
)

// ConnectedViaBatch crosses one edge for many source tuples at once. The
// result is aligned with tuples: out[i] holds the target tuples connected
// to tuples[i], in primary-key order, with the same per-tuple semantics
// as ConnectedVia (nil for a null connecting value, non-nil empty for no
// matches). The whole batch costs one MatchEqualBatch call on the target
// relation — one index probe per distinct connecting-value set, or one
// shared scan — instead of one lookup per source tuple. Source tuples
// sharing a connecting-value set share the same result slice (and its
// tuples); callers must not mutate the returned tuples.
func ConnectedViaBatch(res Resolver, e Edge, tuples []reldb.Tuple) ([][]reldb.Tuple, error) {
	return ConnectedViaBatchStats(res, e, tuples, nil)
}

// ConnectedViaBatchStats is ConnectedViaBatch that additionally
// accumulates lookup cost into st (which may be nil).
func ConnectedViaBatchStats(res Resolver, e Edge, tuples []reldb.Tuple, st *reldb.MatchStats) ([][]reldb.Tuple, error) {
	out := make([][]reldb.Tuple, len(tuples))
	if len(tuples) == 0 {
		return out, nil
	}
	srcRel, err := res.Relation(e.Source())
	if err != nil {
		return nil, err
	}
	srcIdx, err := srcRel.Schema().Indices(e.SourceAttrs())
	if err != nil {
		return nil, err
	}
	// keys[i] is the encoded connecting-value set of tuples[i], or "" for
	// a null connecting value ("" is unambiguous: EncodeValues of one or
	// more values is never empty, and Validate rejects empty attr lists).
	keys := make([]string, len(tuples))
	var valSets []reldb.Tuple
	seen := make(map[string]bool, len(tuples))
	for i, t := range tuples {
		vals := make(reldb.Tuple, len(srcIdx))
		null := false
		for vi, j := range srcIdx {
			if t[j].IsNull() {
				null = true
				break
			}
			vals[vi] = t[j]
		}
		if null {
			continue
		}
		k := reldb.EncodeValues(vals...)
		keys[i] = k
		if !seen[k] {
			seen[k] = true
			valSets = append(valSets, vals)
		}
	}
	tgtRel, err := res.Relation(e.Target())
	if err != nil {
		return nil, err
	}
	matches, err := tgtRel.MatchEqualBatchStats(e.TargetAttrs(), valSets, st)
	if err != nil {
		return nil, err
	}
	for i, k := range keys {
		if k == "" {
			// Null connecting value: out[i] stays nil, as in ConnectedVia.
			continue
		}
		if m, ok := matches[k]; ok {
			out[i] = m
		} else {
			out[i] = []reldb.Tuple{}
		}
	}
	return out, nil
}
