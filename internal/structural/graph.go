package structural

import (
	"fmt"
	"sort"
	"strings"

	"penguin/internal/reldb"
)

// Graph is the structural schema of a database: the directed graph whose
// vertices are the database's relations and whose edges are validated
// connections. A Graph also answers traversal queries in both directions,
// exposing the inverse connection C⁻¹ the paper defines for every
// connection C.
type Graph struct {
	db     *reldb.Database
	conns  []*Connection
	byName map[string]*Connection
	out    map[string][]*Connection // keyed by From
	in     map[string][]*Connection // keyed by To
}

// NewGraph creates an empty structural schema over db.
func NewGraph(db *reldb.Database) *Graph {
	return &Graph{
		db:     db,
		byName: make(map[string]*Connection),
		out:    make(map[string][]*Connection),
		in:     make(map[string][]*Connection),
	}
}

// Database returns the underlying database.
func (g *Graph) Database() *reldb.Database { return g.db }

// AddConnection validates c and adds it to the graph. An empty Name is
// replaced by a canonical "From->To#k" label.
func (g *Graph) AddConnection(c *Connection) error {
	if err := c.Validate(g.db); err != nil {
		return err
	}
	if c.Name == "" {
		c.Name = fmt.Sprintf("%s-%s-%s", c.From, c.Type, c.To)
		for i := 2; ; i++ {
			if _, dup := g.byName[c.Name]; !dup {
				break
			}
			c.Name = fmt.Sprintf("%s-%s-%s#%d", c.From, c.Type, c.To, i)
		}
	}
	if _, dup := g.byName[c.Name]; dup {
		return fmt.Errorf("structural: duplicate connection name %q", c.Name)
	}
	if err := g.ensureEdgeIndexes(c); err != nil {
		return err
	}
	g.byName[c.Name] = c
	g.conns = append(g.conns, c)
	g.out[c.From] = append(g.out[c.From], c)
	g.in[c.To] = append(g.in[c.To], c)
	return nil
}

// ensureEdgeIndexes registers a secondary index on each side's connecting
// attributes so that edge traversal — ConnectedVia and the batched level
// fetch — probes instead of scanning. Both directions get one, because
// instantiation crosses connections forward (ownership children) and
// inverse (reference parents) alike. Sides whose attribute set is the
// whole primary key are skipped: MatchEqual serves those with a point
// lookup already. Index creation here relies on the same setup-phase
// discipline as the rest of schema wiring: connections are added before
// any concurrent access to the database starts.
func (g *Graph) ensureEdgeIndexes(c *Connection) error {
	if err := g.ensureEdgeIndex(c.To, c.ToAttrs, "conn_"+c.Name+"_to"); err != nil {
		return err
	}
	return g.ensureEdgeIndex(c.From, c.FromAttrs, "conn_"+c.Name+"_from")
}

func (g *Graph) ensureEdgeIndex(relName string, attrs []string, idxName string) error {
	rel, err := g.db.Relation(relName)
	if err != nil {
		return err
	}
	if attrSetKind(rel.Schema(), attrs) == wholeKey {
		return nil
	}
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if seen[a] {
			// Duplicate attributes cannot be indexed; the lookup paths
			// reject them too, so traversal falls back to a scan.
			return nil
		}
		seen[a] = true
	}
	if rel.HasIndexOn(attrs) {
		return nil
	}
	return rel.CreateIndex(idxName, attrs)
}

// MustAddConnection is AddConnection that panics on error (fixtures).
func (g *Graph) MustAddConnection(c *Connection) {
	if err := g.AddConnection(c); err != nil {
		panic(err)
	}
}

// Connection returns the named connection.
func (g *Graph) Connection(name string) (*Connection, bool) {
	c, ok := g.byName[name]
	return c, ok
}

// Connections returns all connections in insertion order.
func (g *Graph) Connections() []*Connection {
	return append([]*Connection(nil), g.conns...)
}

// Outgoing returns the connections whose From is rel, in insertion order.
func (g *Graph) Outgoing(rel string) []*Connection {
	return append([]*Connection(nil), g.out[rel]...)
}

// Incoming returns the connections whose To is rel, in insertion order.
func (g *Graph) Incoming(rel string) []*Connection {
	return append([]*Connection(nil), g.in[rel]...)
}

// Edge is a directed traversal step: a connection crossed either forward
// (From→To) or inverse (To→From, the connection C⁻¹).
type Edge struct {
	Conn *Connection
	// Forward is true when the traversal follows the connection's own
	// direction (From→To) and false for the inverse connection.
	Forward bool
}

// Source returns the relation this edge leaves.
func (e Edge) Source() string {
	if e.Forward {
		return e.Conn.From
	}
	return e.Conn.To
}

// Target returns the relation this edge enters.
func (e Edge) Target() string {
	if e.Forward {
		return e.Conn.To
	}
	return e.Conn.From
}

// SourceAttrs returns the connecting attributes on the source side.
func (e Edge) SourceAttrs() []string {
	if e.Forward {
		return e.Conn.FromAttrs
	}
	return e.Conn.ToAttrs
}

// TargetAttrs returns the connecting attributes on the target side.
func (e Edge) TargetAttrs() []string {
	if e.Forward {
		return e.Conn.ToAttrs
	}
	return e.Conn.FromAttrs
}

// String renders the edge with its direction.
func (e Edge) String() string {
	arrow := e.Conn.Type.Symbol()
	if !e.Forward {
		arrow = "inv(" + arrow + ")"
	}
	return fmt.Sprintf("%s %s %s", e.Source(), arrow, e.Target())
}

// Edges returns every traversal step available from rel: each outgoing
// connection forward and each incoming connection inverse. Order is
// deterministic: forward edges first (insertion order), then inverse.
func (g *Graph) Edges(rel string) []Edge {
	var edges []Edge
	for _, c := range g.out[rel] {
		edges = append(edges, Edge{Conn: c, Forward: true})
	}
	for _, c := range g.in[rel] {
		edges = append(edges, Edge{Conn: c, Forward: false})
	}
	return edges
}

// Relations returns the names of relations that participate in at least
// one connection, sorted.
func (g *Graph) Relations() []string {
	seen := make(map[string]bool)
	for _, c := range g.conns {
		seen[c.From] = true
		seen[c.To] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ConnectedTuples returns the tuples of e.Target() connected to tuple
// (a tuple of e.Source()) across the edge: target tuples whose
// TargetAttrs values equal the tuple's SourceAttrs values. If any source
// attribute is null the result is empty (null never connects, per
// Definition 2.3 criterion 1).
func (g *Graph) ConnectedTuples(e Edge, tuple reldb.Tuple) ([]reldb.Tuple, error) {
	srcRel, err := g.db.Relation(e.Source())
	if err != nil {
		return nil, err
	}
	srcIdx, err := srcRel.Schema().Indices(e.SourceAttrs())
	if err != nil {
		return nil, err
	}
	vals := make(reldb.Tuple, len(srcIdx))
	for i, j := range srcIdx {
		if tuple[j].IsNull() {
			return nil, nil
		}
		vals[i] = tuple[j]
	}
	tgtRel, err := g.db.Relation(e.Target())
	if err != nil {
		return nil, err
	}
	matches, err := tgtRel.MatchEqual(e.TargetAttrs(), vals)
	if err != nil {
		return nil, err
	}
	if matches == nil {
		// Non-nil even when empty: nil is reserved for the null
		// connecting-value case above.
		matches = []reldb.Tuple{}
	}
	return matches, nil
}

// Validate re-validates every connection (used after schema evolution).
func (g *Graph) Validate() error {
	for _, c := range g.conns {
		if err := c.Validate(g.db); err != nil {
			return err
		}
	}
	return nil
}

// Render produces a deterministic text rendering of the structural schema,
// used to regenerate Figure 1.
func (g *Graph) Render() string {
	var b strings.Builder
	b.WriteString("Structural schema\n")
	b.WriteString("=================\n")
	b.WriteString("Relations:\n")
	for _, name := range g.db.Names() {
		rel, err := g.db.Relation(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "  %s\n", rel.Schema())
	}
	b.WriteString("Connections:\n")
	for _, c := range g.conns {
		fmt.Fprintf(&b, "  %-40s [%s, %s]\n", c.String(), c.Type, c.Type.Cardinality())
	}
	return b.String()
}
