package structural

import (
	"strings"
	"testing"

	"penguin/internal/reldb"
)

// miniDB builds a compact schema exercising all three connection types:
//
//	OWNER(ID*) —* OWNED(ID*, Seq*, V)
//	REFER(ID*, FK→TARGET) , TARGET(K*)
//	GENERAL(K*) —⊃ SPECIAL(K*, Extra)
func miniDB(t *testing.T) *reldb.Database {
	t.Helper()
	db := reldb.NewDatabase()
	db.MustCreateRelation(reldb.MustSchema("OWNER", []reldb.Attribute{
		{Name: "ID", Type: reldb.KindInt},
		{Name: "Note", Type: reldb.KindString, Nullable: true},
	}, []string{"ID"}))
	db.MustCreateRelation(reldb.MustSchema("OWNED", []reldb.Attribute{
		{Name: "ID", Type: reldb.KindInt},
		{Name: "Seq", Type: reldb.KindInt},
		{Name: "V", Type: reldb.KindString, Nullable: true},
	}, []string{"ID", "Seq"}))
	db.MustCreateRelation(reldb.MustSchema("TARGET", []reldb.Attribute{
		{Name: "K", Type: reldb.KindString},
		{Name: "Info", Type: reldb.KindString, Nullable: true},
	}, []string{"K"}))
	db.MustCreateRelation(reldb.MustSchema("REFER", []reldb.Attribute{
		{Name: "ID", Type: reldb.KindInt},
		{Name: "FK", Type: reldb.KindString, Nullable: true},
	}, []string{"ID"}))
	db.MustCreateRelation(reldb.MustSchema("GENERAL", []reldb.Attribute{
		{Name: "K", Type: reldb.KindString},
		{Name: "Common", Type: reldb.KindString, Nullable: true},
	}, []string{"K"}))
	db.MustCreateRelation(reldb.MustSchema("SPECIAL", []reldb.Attribute{
		{Name: "K", Type: reldb.KindString},
		{Name: "Extra", Type: reldb.KindString, Nullable: true},
	}, []string{"K"}))
	return db
}

func ownershipConn() *Connection {
	return &Connection{
		Name: "own", Type: Ownership,
		From: "OWNER", To: "OWNED",
		FromAttrs: []string{"ID"}, ToAttrs: []string{"ID"},
	}
}

func referenceConn() *Connection {
	return &Connection{
		Name: "ref", Type: Reference,
		From: "REFER", To: "TARGET",
		FromAttrs: []string{"FK"}, ToAttrs: []string{"K"},
	}
}

func subsetConn() *Connection {
	return &Connection{
		Name: "sub", Type: Subset,
		From: "GENERAL", To: "SPECIAL",
		FromAttrs: []string{"K"}, ToAttrs: []string{"K"},
	}
}

func TestValidConnections(t *testing.T) {
	db := miniDB(t)
	for _, c := range []*Connection{ownershipConn(), referenceConn(), subsetConn()} {
		if err := c.Validate(db); err != nil {
			t.Errorf("valid connection %s rejected: %v", c, err)
		}
	}
}

func TestConnectionValidationErrors(t *testing.T) {
	db := miniDB(t)
	cases := []struct {
		name string
		c    *Connection
		want string
	}{
		{"missing from", &Connection{Type: Reference, From: "NOPE", To: "TARGET",
			FromAttrs: []string{"X"}, ToAttrs: []string{"K"}}, "no such relation"},
		{"missing to", &Connection{Type: Reference, From: "REFER", To: "NOPE",
			FromAttrs: []string{"FK"}, ToAttrs: []string{"K"}}, "no such relation"},
		{"empty attrs", &Connection{Type: Reference, From: "REFER", To: "TARGET"}, "empty attribute"},
		{"arity mismatch", &Connection{Type: Reference, From: "REFER", To: "TARGET",
			FromAttrs: []string{"FK"}, ToAttrs: []string{"K", "Info"}}, "attributes"},
		{"unknown from attr", &Connection{Type: Reference, From: "REFER", To: "TARGET",
			FromAttrs: []string{"ZZ"}, ToAttrs: []string{"K"}}, "no attribute"},
		{"unknown to attr", &Connection{Type: Reference, From: "REFER", To: "TARGET",
			FromAttrs: []string{"FK"}, ToAttrs: []string{"ZZ"}}, "no attribute"},
		{"domain mismatch", &Connection{Type: Reference, From: "REFER", To: "TARGET",
			FromAttrs: []string{"ID"}, ToAttrs: []string{"K"}}, "domains"},
		// Ownership: X1 must be the whole key of From.
		{"ownership X1 not key", &Connection{Type: Ownership, From: "OWNER", To: "OWNED",
			FromAttrs: []string{"Note"}, ToAttrs: []string{"V"}}, "X1 must equal"},
		// Ownership: X2 must be a proper subset of K(To).
		{"ownership X2 whole key", &Connection{Type: Ownership, From: "TARGET", To: "SPECIAL",
			FromAttrs: []string{"K"}, ToAttrs: []string{"K"}}, "proper subset"},
		{"ownership X2 nonkey", &Connection{Type: Ownership, From: "TARGET", To: "SPECIAL",
			FromAttrs: []string{"K"}, ToAttrs: []string{"Extra"}}, "proper subset"},
		// Reference: X2 must be the whole key of To.
		{"reference X2 not key", &Connection{Type: Reference, From: "REFER", To: "OWNED",
			FromAttrs: []string{"ID"}, ToAttrs: []string{"ID"}}, "X2 must equal"},
		// Subset: both sides must be whole keys.
		{"subset X2 partial", &Connection{Type: Subset, From: "OWNER", To: "OWNED",
			FromAttrs: []string{"ID"}, ToAttrs: []string{"ID"}}, "X2 must equal"},
		{"subset X1 nonkey", &Connection{Type: Subset, From: "GENERAL", To: "SPECIAL",
			FromAttrs: []string{"Common"}, ToAttrs: []string{"K"}}, "X1 must equal"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.c.Validate(db)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

// A reference whose X1 spans key and non-key attributes is invalid
// (Definition 2.3: X1 ⊆ K(R1) or X1 ⊆ NK(R1), not both).
func TestReferenceMixedX1Rejected(t *testing.T) {
	db := reldb.NewDatabase()
	db.MustCreateRelation(reldb.MustSchema("T2", []reldb.Attribute{
		{Name: "A", Type: reldb.KindInt},
		{Name: "B", Type: reldb.KindInt},
	}, []string{"A", "B"}))
	db.MustCreateRelation(reldb.MustSchema("F2", []reldb.Attribute{
		{Name: "A", Type: reldb.KindInt},
		{Name: "B", Type: reldb.KindInt, Nullable: true},
	}, []string{"A"}))
	c := &Connection{Type: Reference, From: "F2", To: "T2",
		FromAttrs: []string{"A", "B"}, ToAttrs: []string{"A", "B"}}
	err := c.Validate(db)
	if err == nil || !strings.Contains(err.Error(), "entirely within") {
		t.Fatalf("err = %v", err)
	}
}

// A reference from within the key (X1 ⊆ K(R1)) is valid — CURRICULUM→COURSES
// is exactly this shape.
func TestReferenceFromKeyAttrsValid(t *testing.T) {
	db := reldb.NewDatabase()
	db.MustCreateRelation(reldb.MustSchema("C", []reldb.Attribute{
		{Name: "ID", Type: reldb.KindString},
	}, []string{"ID"}))
	db.MustCreateRelation(reldb.MustSchema("CU", []reldb.Attribute{
		{Name: "Deg", Type: reldb.KindString},
		{Name: "ID", Type: reldb.KindString},
	}, []string{"Deg", "ID"}))
	c := &Connection{Type: Reference, From: "CU", To: "C",
		FromAttrs: []string{"ID"}, ToAttrs: []string{"ID"}}
	if err := c.Validate(db); err != nil {
		t.Fatalf("key-subset reference rejected: %v", err)
	}
}

func TestConnTypeStrings(t *testing.T) {
	if Ownership.String() != "ownership" || Reference.String() != "reference" || Subset.String() != "subset" {
		t.Fatal("ConnType.String wrong")
	}
	if Ownership.Symbol() != "--*" || Reference.Symbol() != "-->" || Subset.Symbol() != "--)" {
		t.Fatal("ConnType.Symbol wrong")
	}
	if Ownership.Cardinality() != "1:n" || Reference.Cardinality() != "n:1" || Subset.Cardinality() != "1:[0,1]" {
		t.Fatal("ConnType.Cardinality wrong")
	}
	if !strings.Contains(ConnType(9).String(), "conntype") {
		t.Fatal("unknown ConnType.String")
	}
}

func TestConnectionString(t *testing.T) {
	got := ownershipConn().String()
	if got != "OWNER(ID) --* OWNED(ID)" {
		t.Fatalf("String = %q", got)
	}
}
