package structural

import (
	"strings"
	"testing"

	"penguin/internal/reldb"
)

func miniGraph(t *testing.T) (*reldb.Database, *Graph) {
	t.Helper()
	db := miniDB(t)
	g := NewGraph(db)
	g.MustAddConnection(ownershipConn())
	g.MustAddConnection(referenceConn())
	g.MustAddConnection(subsetConn())
	return db, g
}

func TestGraphAddAndLookup(t *testing.T) {
	_, g := miniGraph(t)
	if len(g.Connections()) != 3 {
		t.Fatalf("connections = %d", len(g.Connections()))
	}
	c, ok := g.Connection("own")
	if !ok || c.From != "OWNER" {
		t.Fatalf("Connection(own) = %v, %v", c, ok)
	}
	if _, ok := g.Connection("nope"); ok {
		t.Fatal("unknown connection found")
	}
	if g.Database() == nil {
		t.Fatal("Database() nil")
	}
}

func TestGraphRejectsInvalidAndDuplicate(t *testing.T) {
	db := miniDB(t)
	g := NewGraph(db)
	bad := &Connection{Name: "bad", Type: Reference, From: "REFER", To: "NOPE",
		FromAttrs: []string{"FK"}, ToAttrs: []string{"K"}}
	if err := g.AddConnection(bad); err == nil {
		t.Fatal("invalid connection accepted")
	}
	g.MustAddConnection(referenceConn())
	dup := referenceConn()
	if err := g.AddConnection(dup); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate name: %v", err)
	}
}

func TestGraphAutoNames(t *testing.T) {
	db := miniDB(t)
	g := NewGraph(db)
	c1 := referenceConn()
	c1.Name = ""
	g.MustAddConnection(c1)
	if c1.Name == "" {
		t.Fatal("auto-name not assigned")
	}
	c2 := referenceConn()
	c2.Name = ""
	g.MustAddConnection(c2)
	if c2.Name == c1.Name {
		t.Fatal("auto-names collided")
	}
}

func TestGraphMustAddPanics(t *testing.T) {
	db := miniDB(t)
	g := NewGraph(db)
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddConnection should panic")
		}
	}()
	g.MustAddConnection(&Connection{Type: Reference, From: "X", To: "Y",
		FromAttrs: []string{"A"}, ToAttrs: []string{"B"}})
}

func TestOutgoingIncoming(t *testing.T) {
	_, g := miniGraph(t)
	out := g.Outgoing("OWNER")
	if len(out) != 1 || out[0].Name != "own" {
		t.Fatalf("Outgoing(OWNER) = %v", out)
	}
	in := g.Incoming("TARGET")
	if len(in) != 1 || in[0].Name != "ref" {
		t.Fatalf("Incoming(TARGET) = %v", in)
	}
	if len(g.Outgoing("OWNED")) != 0 || len(g.Incoming("OWNER")) != 0 {
		t.Fatal("unexpected edges")
	}
}

func TestEdges(t *testing.T) {
	_, g := miniGraph(t)
	edges := g.Edges("OWNED")
	if len(edges) != 1 {
		t.Fatalf("Edges(OWNED) = %v", edges)
	}
	e := edges[0]
	if e.Forward {
		t.Fatal("OWNED edge should be inverse")
	}
	if e.Source() != "OWNED" || e.Target() != "OWNER" {
		t.Fatalf("edge endpoints %s -> %s", e.Source(), e.Target())
	}
	if strings.Join(e.SourceAttrs(), ",") != "ID" || strings.Join(e.TargetAttrs(), ",") != "ID" {
		t.Fatal("edge attrs wrong")
	}
	if !strings.Contains(e.String(), "inv(") {
		t.Fatalf("inverse edge String = %q", e.String())
	}

	fwd := g.Edges("OWNER")[0]
	if !fwd.Forward || fwd.Source() != "OWNER" || fwd.Target() != "OWNED" {
		t.Fatalf("forward edge wrong: %v", fwd)
	}
	if strings.Contains(fwd.String(), "inv(") {
		t.Fatalf("forward edge String = %q", fwd.String())
	}
}

func TestGraphRelations(t *testing.T) {
	_, g := miniGraph(t)
	rels := g.Relations()
	want := "GENERAL,OWNED,OWNER,REFER,SPECIAL,TARGET"
	if strings.Join(rels, ",") != want {
		t.Fatalf("Relations = %v", rels)
	}
}

func TestConnectedTuples(t *testing.T) {
	db, g := miniGraph(t)
	err := db.RunInTx(func(tx *reldb.Tx) error {
		_ = tx.Insert("OWNER", reldb.Tuple{reldb.Int(1), reldb.String("o1")})
		_ = tx.Insert("OWNED", reldb.Tuple{reldb.Int(1), reldb.Int(1), reldb.String("a")})
		_ = tx.Insert("OWNED", reldb.Tuple{reldb.Int(1), reldb.Int(2), reldb.String("b")})
		_ = tx.Insert("TARGET", reldb.Tuple{reldb.String("t1"), reldb.Null()})
		_ = tx.Insert("REFER", reldb.Tuple{reldb.Int(5), reldb.String("t1")})
		return tx.Insert("REFER", reldb.Tuple{reldb.Int(6), reldb.Null()})
	})
	if err != nil {
		t.Fatal(err)
	}
	own, _ := g.Connection("own")
	owner, _ := db.MustRelation("OWNER").Get(reldb.Tuple{reldb.Int(1)})
	owned, err := g.ConnectedTuples(Edge{Conn: own, Forward: true}, owner)
	if err != nil || len(owned) != 2 {
		t.Fatalf("owned = %d, %v", len(owned), err)
	}
	// Inverse: owned tuple -> owner.
	owners, err := g.ConnectedTuples(Edge{Conn: own, Forward: false}, owned[0])
	if err != nil || len(owners) != 1 {
		t.Fatalf("owners = %d, %v", len(owners), err)
	}
	// Null FK connects to nothing.
	ref, _ := g.Connection("ref")
	nullRef, _ := db.MustRelation("REFER").Get(reldb.Tuple{reldb.Int(6)})
	targets, err := g.ConnectedTuples(Edge{Conn: ref, Forward: true}, nullRef)
	if err != nil || targets != nil {
		t.Fatalf("null FK should connect to nothing, got %v, %v", targets, err)
	}
}

func TestGraphValidateAfterSchemaChange(t *testing.T) {
	db, g := miniGraph(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Drop a relation the graph references and re-validate.
	if err := db.DropRelation("TARGET"); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate should fail after dropping TARGET")
	}
}

func TestGraphRender(t *testing.T) {
	_, g := miniGraph(t)
	out := g.Render()
	for _, want := range []string{
		"Structural schema",
		"OWNER(ID) --* OWNED(ID)",
		"REFER(FK) --> TARGET(K)",
		"GENERAL(K) --) SPECIAL(K)",
		"[ownership, 1:n]",
		"[reference, n:1]",
		"[subset, 1:[0,1]]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}
