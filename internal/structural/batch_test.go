package structural

import (
	"testing"

	"penguin/internal/reldb"
)

// seedOwned fills OWNER and OWNED so each owner k has fanout owned rows.
func seedOwned(t *testing.T, db *reldb.Database, owners, fanout int) {
	t.Helper()
	owner := db.MustRelation("OWNER")
	owned := db.MustRelation("OWNED")
	for k := 0; k < owners; k++ {
		if err := owner.Insert(reldb.Tuple{reldb.Int(int64(k)), reldb.String("o")}); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < fanout; s++ {
			if err := owned.Insert(reldb.Tuple{reldb.Int(int64(k)), reldb.Int(int64(s)), reldb.String("v")}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// ConnectedViaBatch must agree with per-tuple ConnectedVia on every input
// — same alignment, same ordering, same nil-for-null semantics.
func TestConnectedViaBatchMatchesSingle(t *testing.T) {
	db := miniDB(t)
	g := NewGraph(db)
	g.MustAddConnection(ownershipConn())
	g.MustAddConnection(referenceConn())
	seedOwned(t, db, 4, 3)
	refer := db.MustRelation("REFER")
	target := db.MustRelation("TARGET")
	if err := target.Insert(reldb.Tuple{reldb.String("t1"), reldb.String("i")}); err != nil {
		t.Fatal(err)
	}
	// One row referencing t1, one dangling, one null.
	for _, row := range []reldb.Tuple{
		{reldb.Int(1), reldb.String("t1")},
		{reldb.Int(2), reldb.String("missing")},
		{reldb.Int(3), reldb.Null()},
	} {
		if err := refer.Insert(row); err != nil {
			t.Fatal(err)
		}
	}

	own, _ := g.Connection("own")
	ref, _ := g.Connection("ref")
	cases := []struct {
		name   string
		edge   Edge
		tuples []reldb.Tuple
	}{
		{"ownership forward", Edge{Conn: own, Forward: true}, db.MustRelation("OWNER").All()},
		{"ownership inverse", Edge{Conn: own, Forward: false}, db.MustRelation("OWNED").All()},
		{"reference with null and dangling", Edge{Conn: ref, Forward: true}, refer.All()},
	}
	for _, tc := range cases {
		batch, err := ConnectedViaBatch(db, tc.edge, tc.tuples)
		if err != nil {
			t.Fatalf("%s: batch: %v", tc.name, err)
		}
		if len(batch) != len(tc.tuples) {
			t.Fatalf("%s: batch returned %d results for %d inputs", tc.name, len(batch), len(tc.tuples))
		}
		for i, tuple := range tc.tuples {
			single, err := ConnectedVia(db, tc.edge, tuple)
			if err != nil {
				t.Fatalf("%s: single: %v", tc.name, err)
			}
			if (single == nil) != (batch[i] == nil) {
				t.Fatalf("%s[%d]: nil-ness differs: single %v, batch %v", tc.name, i, single, batch[i])
			}
			if len(single) != len(batch[i]) {
				t.Fatalf("%s[%d]: single %d rows, batch %d rows", tc.name, i, len(single), len(batch[i]))
			}
			for j := range single {
				if !single[j].Equal(batch[i][j]) {
					t.Fatalf("%s[%d] row %d: single %v, batch %v", tc.name, i, j, single[j], batch[i][j])
				}
			}
		}
	}

	// The whole ownership-forward batch costs one probe per distinct owner
	// key, with no scans (the auto edge index serves it).
	var st reldb.MatchStats
	owners := db.MustRelation("OWNER").All()
	if _, err := ConnectedViaBatchStats(db, Edge{Conn: own, Forward: true}, owners, &st); err != nil {
		t.Fatal(err)
	}
	if st.Scans != 0 || st.Probes != len(owners) {
		t.Fatalf("batch stats = %+v, want %d probes and no scans", st, len(owners))
	}
}

func TestConnectedViaBatchEmpty(t *testing.T) {
	db := miniDB(t)
	g := NewGraph(db)
	g.MustAddConnection(ownershipConn())
	own, _ := g.Connection("own")
	out, err := ConnectedViaBatch(db, Edge{Conn: own, Forward: true}, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch = %v, %v", out, err)
	}
}

// AddConnection must register edge indexes on connecting-attribute sets
// that are not already served by the primary key, and skip the rest.
func TestAddConnectionRegistersEdgeIndexes(t *testing.T) {
	db := miniDB(t)
	g := NewGraph(db)
	g.MustAddConnection(ownershipConn())
	g.MustAddConnection(referenceConn())
	g.MustAddConnection(subsetConn())

	// Ownership own: OWNER(ID)=whole key → skip; OWNED(ID)⊂key → index.
	if !db.MustRelation("OWNED").HasIndexOn([]string{"ID"}) {
		t.Fatal("ownership target side not indexed")
	}
	if len(db.MustRelation("OWNER").IndexNames()) != 0 {
		t.Fatalf("whole-key side indexed: %v", db.MustRelation("OWNER").IndexNames())
	}
	// Reference ref: TARGET(K)=whole key → skip; REFER(FK) non-key → index.
	if !db.MustRelation("REFER").HasIndexOn([]string{"FK"}) {
		t.Fatal("reference source side not indexed")
	}
	if len(db.MustRelation("TARGET").IndexNames()) != 0 {
		t.Fatalf("whole-key side indexed: %v", db.MustRelation("TARGET").IndexNames())
	}
	// Subset sub: both sides are whole keys → no indexes.
	if len(db.MustRelation("GENERAL").IndexNames())+len(db.MustRelation("SPECIAL").IndexNames()) != 0 {
		t.Fatal("subset connection created indexes over whole keys")
	}
}

// An existing index over the connecting attributes — in any order — is
// reused rather than duplicated.
func TestAddConnectionReusesExistingIndex(t *testing.T) {
	db := miniDB(t)
	if err := db.MustRelation("OWNED").CreateIndex("mine", []string{"ID"}); err != nil {
		t.Fatal(err)
	}
	g := NewGraph(db)
	g.MustAddConnection(ownershipConn())
	names := db.MustRelation("OWNED").IndexNames()
	if len(names) != 1 || names[0] != "mine" {
		t.Fatalf("indexes after AddConnection = %v, want just the pre-existing one", names)
	}
}
