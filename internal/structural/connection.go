// Package structural implements the structural model of Wiederhold and
// ElMasri as used by the view-object paper (§2): a semantic data model over
// a relational database built from typed connections — ownership, reference,
// and subset — each carrying precise integrity rules (Definitions 2.2-2.4).
//
// The package provides three layers:
//
//   - Connection: a typed, validated edge between two relations.
//   - Graph: the directed-graph representation of a database schema
//     (vertices are relations, edges are connections), with traversal
//     helpers that expose both forward connections and their inverses.
//   - Integrity: an enforcement engine that checks insertions against the
//     connection rules and propagates deletions and key modifications
//     according to per-connection policies.
package structural

import (
	"fmt"
	"strings"

	"penguin/internal/reldb"
)

// ConnType identifies the semantic type of a connection.
type ConnType uint8

// The three connection types of the structural model.
const (
	// Ownership (Definition 2.2), cardinality 1:n, symbol R1 —* R2.
	// Owned tuples in R2 are existence-dependent on their owner in R1:
	// X1 = K(R1) and X2 ⊂ K(R2).
	Ownership ConnType = iota
	// Reference (Definition 2.3), cardinality n:1, symbol R1 —> R2.
	// Referencing tuples in R1 point at an abstract entity in R2:
	// X1 ⊆ K(R1) or X1 ⊆ NK(R1), and X2 = K(R2).
	Reference
	// Subset (Definition 2.4), cardinality 1:[0,1], symbol R1 —⊃ R2.
	// R2 specializes R1: X1 = K(R1) and X2 = K(R2).
	Subset
)

// String implements fmt.Stringer.
func (t ConnType) String() string {
	switch t {
	case Ownership:
		return "ownership"
	case Reference:
		return "reference"
	case Subset:
		return "subset"
	default:
		return fmt.Sprintf("conntype(%d)", uint8(t))
	}
}

// Symbol returns the paper's graphical symbol for the connection type.
func (t ConnType) Symbol() string {
	switch t {
	case Ownership:
		return "--*"
	case Reference:
		return "-->"
	case Subset:
		return "--)"
	default:
		return "--?"
	}
}

// Connection is a typed edge from relation From to relation To, connected
// through the ordered attribute pair <FromAttrs, ToAttrs> (X1 and X2 in
// Definition 2.1). Two tuples are connected iff the values of the
// connecting attributes match.
type Connection struct {
	// Name labels the connection; unique within a Graph. If empty, a name
	// is derived from the endpoints when the connection is added.
	Name string
	// Type is the semantic connection type.
	Type ConnType
	// From and To are the connected relation names (R1 and R2).
	From, To string
	// FromAttrs and ToAttrs are the connecting attribute lists X1 and X2.
	// They must have equal length and pairwise identical domains.
	FromAttrs, ToAttrs []string
}

// String renders the connection using the paper's notation.
func (c *Connection) String() string {
	return fmt.Sprintf("%s(%s) %s %s(%s)",
		c.From, strings.Join(c.FromAttrs, ","),
		c.Type.Symbol(),
		c.To, strings.Join(c.ToAttrs, ","))
}

// Validate checks the connection against Definitions 2.1-2.4 given the
// schemas of its endpoint relations.
func (c *Connection) Validate(db *reldb.Database) error {
	fromRel, err := db.Relation(c.From)
	if err != nil {
		return fmt.Errorf("structural: connection %s: %w", c, err)
	}
	toRel, err := db.Relation(c.To)
	if err != nil {
		return fmt.Errorf("structural: connection %s: %w", c, err)
	}
	fs, ts := fromRel.Schema(), toRel.Schema()

	// Definition 2.1: identical number of attributes and domains.
	if len(c.FromAttrs) == 0 {
		return fmt.Errorf("structural: connection %s: empty attribute lists", c)
	}
	if len(c.FromAttrs) != len(c.ToAttrs) {
		return fmt.Errorf("structural: connection %s: X1 has %d attributes, X2 has %d",
			c, len(c.FromAttrs), len(c.ToAttrs))
	}
	fIdx, err := fs.Indices(c.FromAttrs)
	if err != nil {
		return fmt.Errorf("structural: connection %s: %w", c, err)
	}
	tIdx, err := ts.Indices(c.ToAttrs)
	if err != nil {
		return fmt.Errorf("structural: connection %s: %w", c, err)
	}
	for i := range fIdx {
		ft := fs.Attr(fIdx[i]).Type
		tt := ts.Attr(tIdx[i]).Type
		if ft != tt {
			return fmt.Errorf("structural: connection %s: attribute pair %s/%s has domains %s/%s",
				c, c.FromAttrs[i], c.ToAttrs[i], ft, tt)
		}
	}

	x1Kind := attrSetKind(fs, c.FromAttrs)
	x2Kind := attrSetKind(ts, c.ToAttrs)

	switch c.Type {
	case Ownership:
		// X1 = K(R1), X2 ⊂ K(R2) (proper subset: owned tuples need key
		// attributes of their own beyond the inherited owner key).
		if x1Kind != wholeKey {
			return fmt.Errorf("structural: ownership %s: X1 must equal K(%s)", c, c.From)
		}
		if x2Kind != properKeySubset {
			return fmt.Errorf("structural: ownership %s: X2 must be a proper subset of K(%s)", c, c.To)
		}
	case Reference:
		// X1 ⊆ K(R1) or X1 ⊆ NK(R1); X2 = K(R2).
		if x1Kind == mixed {
			return fmt.Errorf("structural: reference %s: X1 must lie entirely within K(%s) or within NK(%s)",
				c, c.From, c.From)
		}
		if x2Kind != wholeKey {
			return fmt.Errorf("structural: reference %s: X2 must equal K(%s)", c, c.To)
		}
	case Subset:
		// X1 = K(R1), X2 = K(R2).
		if x1Kind != wholeKey {
			return fmt.Errorf("structural: subset %s: X1 must equal K(%s)", c, c.From)
		}
		if x2Kind != wholeKey {
			return fmt.Errorf("structural: subset %s: X2 must equal K(%s)", c, c.To)
		}
	default:
		return fmt.Errorf("structural: connection %s: unknown type", c)
	}
	return nil
}

// attrSetKind classifies an attribute list against a schema's key.
type setKind uint8

const (
	wholeKey        setKind = iota // exactly the key attributes
	properKeySubset                // nonempty proper subset of the key
	nonKeyOnly                     // entirely non-key attributes
	mixed                          // spans key and non-key attributes
)

func attrSetKind(s *reldb.Schema, names []string) setKind {
	keyCount := 0
	nonKeyCount := 0
	inSet := make(map[string]bool, len(names))
	for _, n := range names {
		inSet[n] = true
		if s.IsKeyName(n) {
			keyCount++
		} else {
			nonKeyCount++
		}
	}
	switch {
	case keyCount > 0 && nonKeyCount > 0:
		return mixed
	case nonKeyCount > 0:
		return nonKeyOnly
	}
	// All in key: whole key or proper subset?
	for _, kn := range s.KeyNames() {
		if !inSet[kn] {
			return properKeySubset
		}
	}
	return wholeKey
}

// Cardinality returns the paper's cardinality notation for the connection
// type: "1:n" (ownership), "n:1" (reference), "1:[0,1]" (subset).
func (t ConnType) Cardinality() string {
	switch t {
	case Ownership:
		return "1:n"
	case Reference:
		return "n:1"
	case Subset:
		return "1:[0,1]"
	default:
		return "?"
	}
}
