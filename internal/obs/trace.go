package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Op is a lightweight handle on one in-flight operation's span tree. The
// zero value is inactive: every method is a no-op costing a nil check, so
// instrumented paths thread Op values unconditionally and stay
// allocation-free when neither a trace sink nor the flight recorder is
// installed. An active Op (from Registry.StartOp) carries the trace
// identity; Child spans inherit it, so an operation that fans out across
// the parallel pool still yields one connected tree.
//
// Op is a value type and safe to copy across goroutines: span-ID
// allocation is atomic and the flight-recorder collector behind col is
// mutex-protected.
type Op struct {
	reg    *Registry
	col    *opCollector // non-nil while the flight recorder buffers this op
	name   string
	start  time.Time
	trace  uint64
	span   uint64
	parent uint64
}

// Active reports whether the op records anything. Call sites gate
// Detail formatting (fmt.Sprintf) behind it to keep hot paths
// allocation-free when observability is off.
func (o Op) Active() bool { return o.reg != nil }

// TraceID returns the op's trace identity (0 when inactive).
func (o Op) TraceID() uint64 { return o.trace }

// SpanID returns the op's own span identity (0 when inactive).
func (o Op) SpanID() uint64 { return o.span }

// Start returns when the span began (zero when inactive).
func (o Op) Start() time.Time { return o.start }

// Child starts a sub-span of this op beginning now. Finish it like any
// op. Inactive parents return an inactive child.
func (o Op) Child(name string) Op {
	return o.ChildAt(name, time.Now())
}

// ChildAt starts a sub-span with an explicit start time, for call sites
// that timestamped the interval before deciding to trace it (e.g. a
// commit span covering Begin→Commit).
func (o Op) ChildAt(name string, start time.Time) Op {
	if o.reg == nil {
		return Op{}
	}
	return Op{
		reg:    o.reg,
		col:    o.col,
		name:   name,
		start:  start,
		trace:  o.trace,
		span:   o.reg.opSeq.Add(1),
		parent: o.span,
	}
}

// Finish completes the span with the interval [start, now) and emits it
// to the trace sink and the flight-recorder buffer. Finishing the root
// span seals the op: the buffered tree is retained as a SlowTrace when
// the root duration reaches the recorder threshold and discarded
// otherwise. Detail should be preformatted under an Active() gate.
func (o Op) Finish(detail string) {
	if o.reg == nil {
		return
	}
	o.emit(Event{
		Name:     o.name,
		Detail:   detail,
		Start:    o.start,
		Dur:      time.Since(o.start),
		TraceID:  o.trace,
		SpanID:   o.span,
		ParentID: o.parent,
	})
}

// Span records an already-completed child span of this op — for call
// sites that measured an interval themselves and only afterwards know
// it is worth a span (e.g. the delta-publish window inside the commit
// critical section, emitted after the lock is released).
func (o Op) Span(name, detail string, start time.Time, dur time.Duration) {
	if o.reg == nil {
		return
	}
	o.emit(Event{
		Name:     name,
		Detail:   detail,
		Start:    start,
		Dur:      dur,
		TraceID:  o.trace,
		SpanID:   o.reg.opSeq.Add(1),
		ParentID: o.span,
	})
}

// Point records an instantaneous child event of this op.
func (o Op) Point(name, detail string) {
	o.Span(name, detail, time.Now(), 0)
}

// emit fans one completed span out to the sink and the collector; the
// root span additionally seals the collector.
func (o Op) emit(ev Event) {
	o.reg.Emit(ev)
	if o.col != nil {
		o.col.add(ev)
		if ev.ParentID == 0 && ev.SpanID == ev.TraceID {
			o.col.seal(o.reg, ev)
		}
	}
}

// StartOp begins a root span for a new operation. It returns the
// inactive zero Op — without touching the ID allocator — unless a trace
// sink or the flight recorder is installed, so the disabled path costs
// two atomic loads and zero allocations.
func (r *Registry) StartOp(name string) Op {
	return r.StartOpAt(name, time.Time{})
}

// StartOpAt is StartOp with an explicit start time (zero means now),
// for retroactive roots wrapped around an interval that was timed
// before the op was created.
func (r *Registry) StartOpAt(name string, start time.Time) Op {
	rec := r.recorder.Load()
	if rec == nil && !r.Tracing() {
		return Op{}
	}
	if start.IsZero() {
		start = time.Now()
	}
	id := r.opSeq.Add(1)
	op := Op{reg: r, name: name, start: start, trace: id, span: id}
	if rec != nil {
		op.col = &opCollector{rec: rec}
	}
	return op
}

// OpUnder returns a child of parent when parent is active, and
// otherwise starts a new root op — the idiom for entry points that are
// sometimes called inside a larger traced operation (materializer
// rebuilds calling Instantiate) and sometimes stand alone.
func (r *Registry) OpUnder(parent Op, name string) Op {
	if parent.Active() {
		return parent.Child(name)
	}
	return r.StartOp(name)
}

// DefaultRecorderSpanCap bounds the spans buffered per operation;
// beyond it spans are dropped and counted in SlowTrace.TruncatedSpans.
const DefaultRecorderSpanCap = 512

// opCollector buffers the spans of one in-flight op for the flight
// recorder. It is shared (by pointer) between every Op handle of the
// trace, including handles copied into worker goroutines, so it is
// mutex-protected. Sealing happens exactly once, when the root span
// finishes; spans finishing after the seal (a leaked handle) are
// ignored.
type opCollector struct {
	rec    *Recorder
	mu     sync.Mutex
	spans  []Event
	extra  int
	sealed bool
}

func (c *opCollector) add(ev Event) {
	c.mu.Lock()
	if !c.sealed {
		if len(c.spans) < DefaultRecorderSpanCap {
			c.spans = append(c.spans, ev)
		} else {
			c.extra++
		}
	}
	c.mu.Unlock()
}

func (c *opCollector) seal(r *Registry, root Event) {
	c.mu.Lock()
	spans, extra := c.spans, c.extra
	c.spans, c.sealed = nil, true
	c.mu.Unlock()
	if root.Dur < time.Duration(c.rec.threshold.Load()) {
		return // fast op: discard the buffer
	}
	r.SlowTraceCaptured.Inc()
	if c.rec.keep(SlowTrace{
		TraceID:        root.TraceID,
		Name:           root.Name,
		Detail:         root.Detail,
		Start:          root.Start,
		Dur:            root.Dur,
		Spans:          spans,
		TruncatedSpans: extra,
	}) {
		r.SlowTraceDropped.Inc()
	}
}

// SlowTrace is one operation's span tree retained by the flight
// recorder. Spans appear in completion order (children before their
// parent, the root last) and every span carries the same TraceID.
type SlowTrace struct {
	TraceID uint64
	Name    string        // root span name
	Detail  string        // root span detail
	Start   time.Time     // root span start
	Dur     time.Duration // root span duration
	Spans   []Event       // the whole tree, root included, completion order
	// TruncatedSpans counts spans dropped past DefaultRecorderSpanCap.
	TruncatedSpans int
}

// Validate checks span-tree well-formedness: exactly one root, every
// span carrying the trace's ID, every ParentID resolving to a span of
// the trace, and every child's interval contained in its parent's.
func (t SlowTrace) Validate() error {
	if len(t.Spans) == 0 {
		return fmt.Errorf("trace %d: no spans", t.TraceID)
	}
	byID := make(map[uint64]Event, len(t.Spans))
	roots := 0
	for _, s := range t.Spans {
		if s.TraceID != t.TraceID {
			return fmt.Errorf("trace %d: span %d carries trace %d", t.TraceID, s.SpanID, s.TraceID)
		}
		if s.SpanID == 0 {
			return fmt.Errorf("trace %d: span %q has no id", t.TraceID, s.Name)
		}
		if _, dup := byID[s.SpanID]; dup {
			return fmt.Errorf("trace %d: duplicate span id %d", t.TraceID, s.SpanID)
		}
		byID[s.SpanID] = s
		if s.ParentID == 0 {
			roots++
		}
	}
	if roots != 1 {
		return fmt.Errorf("trace %d: %d root spans, want 1", t.TraceID, roots)
	}
	for _, s := range t.Spans {
		if s.ParentID == 0 {
			continue
		}
		p, ok := byID[s.ParentID]
		if !ok {
			return fmt.Errorf("trace %d: span %d (%s) has unresolvable parent %d",
				t.TraceID, s.SpanID, s.Name, s.ParentID)
		}
		if s.Start.Before(p.Start) || s.End().After(p.End()) {
			return fmt.Errorf("trace %d: span %d (%s) interval outside parent %d (%s)",
				t.TraceID, s.SpanID, s.Name, p.SpanID, p.Name)
		}
	}
	return nil
}

// Render formats the span tree as an indented outline, children ordered
// by start time under their parent — the shell's `.trace slow N` view.
func (t SlowTrace) Render() string {
	children := make(map[uint64][]Event, len(t.Spans))
	var root *Event
	for i, s := range t.Spans {
		if s.ParentID == 0 && s.SpanID == t.TraceID {
			root = &t.Spans[i]
			continue
		}
		children[s.ParentID] = append(children[s.ParentID], s)
	}
	for _, cs := range children {
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].Start.Equal(cs[j].Start) {
				return cs[i].SpanID < cs[j].SpanID
			}
			return cs[i].Start.Before(cs[j].Start)
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d  %s  %s", t.TraceID, t.Name, t.Dur)
	if t.Detail != "" {
		fmt.Fprintf(&b, "  %s", t.Detail)
	}
	b.WriteByte('\n')
	var walk func(parent uint64, depth int)
	walk = func(parent uint64, depth int) {
		for _, s := range children[parent] {
			fmt.Fprintf(&b, "%s+%-10s %-32s %10s",
				strings.Repeat("  ", depth), s.Start.Sub(t.Start), s.Name, s.Dur)
			if s.Detail != "" {
				fmt.Fprintf(&b, "  %s", s.Detail)
			}
			b.WriteByte('\n')
			walk(s.SpanID, depth+1)
		}
	}
	if root != nil {
		walk(root.SpanID, 1)
	} else {
		walk(0, 1)
	}
	if t.TruncatedSpans > 0 {
		fmt.Fprintf(&b, "  … %d spans truncated\n", t.TruncatedSpans)
	}
	return b.String()
}

// Recorder is the flight recorder: per-op span buffers are discarded
// when the op completes under the latency threshold and retained into a
// bounded ring of slow traces when it does not — tail-latency outliers
// are always captured without tracing everything. Install one with
// Registry.SetRecorder.
type Recorder struct {
	threshold atomic.Int64 // ns; <= 0 retains every completed op
	capacity  int
	mu        sync.Mutex
	traces    []SlowTrace // oldest first
}

// NewRecorder creates a flight recorder retaining ops whose root span
// lasts at least threshold (0 retains everything) into a ring of at
// most capacity traces.
func NewRecorder(threshold time.Duration, capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	r := &Recorder{capacity: capacity}
	r.threshold.Store(int64(threshold))
	return r
}

// SetThreshold changes the retention threshold and returns the previous
// one. Safe while ops are in flight; each op is judged at completion.
func (r *Recorder) SetThreshold(d time.Duration) time.Duration {
	return time.Duration(r.threshold.Swap(int64(d)))
}

// Threshold returns the current retention threshold.
func (r *Recorder) Threshold() time.Duration {
	return time.Duration(r.threshold.Load())
}

// keep retains one trace, reporting whether an older trace was evicted.
func (r *Recorder) keep(t SlowTrace) (evicted bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.traces) >= r.capacity {
		copy(r.traces, r.traces[1:])
		r.traces[len(r.traces)-1] = t
		return true
	}
	r.traces = append(r.traces, t)
	return false
}

// Traces returns the retained slow traces, oldest first. The slice is a
// copy; the Span slices are shared but never mutated after capture.
func (r *Recorder) Traces() []SlowTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SlowTrace, len(r.traces))
	copy(out, r.traces)
	return out
}

// Trace returns the retained trace with the given TraceID.
func (r *Recorder) Trace(id uint64) (SlowTrace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.traces {
		if t.TraceID == id {
			return t, true
		}
	}
	return SlowTrace{}, false
}

// Clear discards every retained trace.
func (r *Recorder) Clear() {
	r.mu.Lock()
	r.traces = nil
	r.mu.Unlock()
}

// SetRecorder installs (or, with nil, removes) the flight recorder.
// Ops started before the swap finish against the recorder they started
// with.
func (r *Registry) SetRecorder(rec *Recorder) {
	r.recorder.Store(rec)
}

// Recorder returns the installed flight recorder (nil when off).
func (r *Registry) Recorder() *Recorder { return r.recorder.Load() }

// Recording reports whether a flight recorder is installed.
func (r *Registry) Recording() bool { return r.recorder.Load() != nil }
