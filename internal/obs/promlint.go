package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// CheckExposition validates Prometheus text-exposition output: every
// line must match the text-format grammar, every sample must belong to
// a family declared by a preceding `# TYPE` line, no series may repeat,
// and every histogram series must have monotone non-decreasing
// cumulative buckets ending in a `+Inf` bucket equal to its `_count`.
// It is the check behind `make metrics-lint` and the exposition-format
// tests; WriteProm output must always pass.
func CheckExposition(text string) error {
	var (
		types     = map[string]string{} // family → counter|histogram
		seen      = map[string]bool{}   // full series key → emitted
		buckets   = map[string][]promBucket{}
		counts    = map[string]float64{}
		sums      = map[string]bool{}
		histogram = map[string]bool{} // histogram family keys seen via samples
	)
	for i, line := range strings.Split(text, "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			m := typeLineRe.FindStringSubmatch(line)
			if m == nil {
				if strings.HasPrefix(line, "# HELP ") {
					continue
				}
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name, kind := m[1], m[2]
			if _, dup := types[name]; dup {
				return fmt.Errorf("line %d: duplicate # TYPE for %s", lineNo, name)
			}
			types[name] = kind
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		family, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, sfx)
			if base != name && types[base] == "histogram" {
				family, suffix = base, sfx
				break
			}
		}
		kind, declared := types[family]
		if !declared {
			return fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, name)
		}
		if kind == "histogram" && suffix == "" {
			return fmt.Errorf("line %d: bare sample %s under histogram family", lineNo, name)
		}
		seriesKey := name + "{" + canonicalLabels(labels) + "}"
		if seen[seriesKey] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, seriesKey)
		}
		seen[seriesKey] = true
		if kind == "counter" && value < 0 {
			return fmt.Errorf("line %d: counter %s has negative value %g", lineNo, name, value)
		}
		if kind != "histogram" {
			continue
		}
		// Key the histogram series by its labels minus le.
		le, rest := splitLE(labels)
		hkey := family + "{" + canonicalLabels(rest) + "}"
		histogram[hkey] = true
		switch suffix {
		case "_bucket":
			if le == "" {
				return fmt.Errorf("line %d: %s_bucket sample without le label", lineNo, family)
			}
			buckets[hkey] = append(buckets[hkey], promBucket{le: le, value: value, line: lineNo})
		case "_count":
			counts[hkey] = value
		case "_sum":
			sums[hkey] = true
		}
	}

	// Per-series histogram invariants.
	hkeys := make([]string, 0, len(histogram))
	for k := range histogram {
		hkeys = append(hkeys, k)
	}
	sort.Strings(hkeys)
	for _, hkey := range hkeys {
		bs := buckets[hkey]
		if len(bs) == 0 {
			return fmt.Errorf("histogram series %s has no _bucket samples", hkey)
		}
		sort.SliceStable(bs, func(i, j int) bool { return leBound(bs[i].le) < leBound(bs[j].le) })
		for i := 1; i < len(bs); i++ {
			if bs[i].value < bs[i-1].value {
				return fmt.Errorf("histogram series %s: bucket le=%s count %g < le=%s count %g (not cumulative)",
					hkey, bs[i].le, bs[i].value, bs[i-1].le, bs[i-1].value)
			}
		}
		last := bs[len(bs)-1]
		if last.le != "+Inf" {
			return fmt.Errorf("histogram series %s: last bucket is le=%s, want +Inf", hkey, last.le)
		}
		count, ok := counts[hkey]
		if !ok {
			return fmt.Errorf("histogram series %s has no _count sample", hkey)
		}
		if last.value != count {
			return fmt.Errorf("histogram series %s: +Inf bucket %g != _count %g", hkey, last.value, count)
		}
		if !sums[hkey] {
			return fmt.Errorf("histogram series %s has no _sum sample", hkey)
		}
	}
	return nil
}

type promBucket struct {
	le    string
	value float64
	line  int
}

// leBound orders bucket bounds numerically with +Inf last.
func leBound(le string) float64 {
	if le == "+Inf" {
		return inf
	}
	f, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return inf
	}
	return f
}

var inf = func() float64 { f, _ := strconv.ParseFloat("+Inf", 64); return f }()

var (
	typeLineRe  = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	sampleRe    = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (-?[0-9]+(?:\.[0-9]+)?(?:[eE][-+]?[0-9]+)?|[-+]Inf|NaN)(?: [0-9]+)?$`)
	labelPairRe = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(?:,|$)`)
)

// parseSampleLine splits a sample into name, label pairs, and value.
func parseSampleLine(line string) (name string, labels [][2]string, value float64, err error) {
	m := sampleRe.FindStringSubmatch(line)
	if m == nil {
		return "", nil, 0, fmt.Errorf("malformed sample line %q", line)
	}
	name = m[1]
	rest := m[2]
	for rest != "" {
		lm := labelPairRe.FindStringSubmatch(rest)
		if lm == nil {
			return "", nil, 0, fmt.Errorf("malformed labels in %q", line)
		}
		labels = append(labels, [2]string{lm[1], lm[2]})
		rest = rest[len(lm[0]):]
	}
	value, err = strconv.ParseFloat(m[3], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value in %q: %w", line, err)
	}
	return name, labels, value, nil
}

// canonicalLabels renders label pairs sorted by key, for series identity.
func canonicalLabels(labels [][2]string) string {
	sorted := append([][2]string(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i][0] < sorted[j][0] })
	parts := make([]string, len(sorted))
	for i, kv := range sorted {
		parts[i] = kv[0] + "=" + strconv.Quote(kv[1])
	}
	return strings.Join(parts, ",")
}

// splitLE extracts the le label from a pair list, returning it and the
// remaining pairs.
func splitLE(labels [][2]string) (le string, rest [][2]string) {
	for _, kv := range labels {
		if kv[0] == "le" {
			le = kv[1]
			continue
		}
		rest = append(rest, kv)
	}
	return le, rest
}
