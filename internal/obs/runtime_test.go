package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestSnapshotCarriesRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	s := r.Snapshot()
	for _, name := range RuntimeGaugeNames() {
		if _, ok := s.Gauges[name]; !ok {
			t.Errorf("snapshot missing gauge %s", name)
		}
	}
	if s.Gauge(GaugeGoroutines) < 1 {
		t.Errorf("goroutines = %d, want >= 1", s.Gauge(GaugeGoroutines))
	}
	if s.Gauge(GaugeHeapInuse) <= 0 {
		t.Errorf("heap in use = %d, want > 0", s.Gauge(GaugeHeapInuse))
	}
}

func TestSnapshotSubKeepsGaugeLevels(t *testing.T) {
	r := NewRegistry()
	older := r.Snapshot()
	newer := r.Snapshot()
	d := newer.Sub(older)
	// Gauges are levels, not counts: Sub must carry the newer snapshot's
	// values unchanged rather than subtracting.
	for _, name := range RuntimeGaugeNames() {
		if got, want := d.Gauge(name), newer.Gauge(name); got != want {
			t.Errorf("Sub gauge %s = %d, want the newer level %d", name, got, want)
		}
	}
}

func TestRuntimeGaugesInTextAndProm(t *testing.T) {
	r := NewRegistry()
	s := r.Snapshot()

	var text bytes.Buffer
	if err := WriteText(&text, s); err != nil {
		t.Fatal(err)
	}
	for _, name := range RuntimeGaugeNames() {
		if !strings.Contains(text.String(), name+" ") {
			t.Errorf("WriteText missing %s:\n%s", name, text.String())
		}
	}

	var prom bytes.Buffer
	if err := WriteProm(&prom, s); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE runtime_goroutines gauge",
		"# TYPE runtime_heap_inuse_bytes gauge",
		"# TYPE runtime_gc_pause_total_ns gauge",
		"# TYPE runtime_gc_cycles gauge",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("WriteProm missing %q", want)
		}
	}
	if err := CheckExposition(prom.String()); err != nil {
		t.Errorf("exposition with runtime gauges fails lint: %v", err)
	}
}
