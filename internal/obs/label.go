package obs

import "sync"

// Bounded-cardinality labels. A LabelSet interns the values of one label
// dimension (view-object names, relation names) into a small fixed-
// capacity slot table. Interning happens at registration time — when a
// schema or view-object definition is built — so the metric hot paths
// work with plain integer slots: a labeled increment is an array index
// plus an atomic add, allocation-free and lock-free. Cardinality is
// bounded by construction: once the table is full, every new value
// collapses into the shared overflow slot named OtherLabel, so a labeled
// family can never emit more than Capacity+1 series however many
// distinct names a workload produces.

// OtherLabel names the overflow slot that absorbs every value interned
// after a LabelSet's capacity is exhausted.
const OtherLabel = "other"

// LabelSet is one bounded label dimension. The zero value is not usable;
// construct with NewLabelSet.
type LabelSet struct {
	key string
	cap int

	mu    sync.RWMutex
	slots map[string]int
	names []string // slot → value, insertion order; the overflow slot is implicit
}

// NewLabelSet creates a label dimension with the given label key (the
// Prometheus label name, e.g. "object") and capacity for distinct
// values. Capacity must be at least 1.
func NewLabelSet(key string, capacity int) *LabelSet {
	if capacity < 1 {
		panic("obs: label set capacity must be >= 1")
	}
	return &LabelSet{
		key:   key,
		cap:   capacity,
		slots: make(map[string]int, capacity),
	}
}

// Key returns the label key the set renders under (e.g. "object").
func (ls *LabelSet) Key() string { return ls.key }

// Slots returns the number of metric slots a vec over this set holds:
// Capacity interned values plus the overflow slot.
func (ls *LabelSet) Slots() int { return ls.cap + 1 }

// Other returns the overflow slot's index.
func (ls *LabelSet) Other() int { return ls.cap }

// Len returns the number of values interned so far (overflow excluded).
func (ls *LabelSet) Len() int {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	return len(ls.names)
}

// Intern registers name and returns its slot. Registering an already-
// interned name returns its existing slot; once the table is full, new
// names return the overflow slot. Call at registration time (schema or
// view-definition construction), not on metric hot paths.
func (ls *LabelSet) Intern(name string) int {
	ls.mu.RLock()
	s, ok := ls.slots[name]
	ls.mu.RUnlock()
	if ok {
		return s
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if s, ok := ls.slots[name]; ok {
		return s
	}
	if len(ls.names) == ls.cap {
		return ls.cap // overflow
	}
	s = len(ls.names)
	ls.slots[name] = s
	ls.names = append(ls.names, name)
	return s
}

// Lookup returns the slot of an interned name, or the overflow slot for
// a name never interned. It takes only a read lock and allocates
// nothing, so hot paths that cannot carry a pre-resolved slot may use it.
func (ls *LabelSet) Lookup(name string) int {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	if s, ok := ls.slots[name]; ok {
		return s
	}
	return ls.cap
}

// Name returns the value a slot renders as (OtherLabel for the overflow
// slot and for out-of-range slots).
func (ls *LabelSet) Name(slot int) string {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	if slot >= 0 && slot < len(ls.names) {
		return ls.names[slot]
	}
	return OtherLabel
}

// Names returns the interned values in slot order (overflow excluded).
func (ls *LabelSet) Names() []string {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	return append([]string(nil), ls.names...)
}

// clampSlot maps out-of-range slots into the overflow slot so a stale or
// corrupted slot value can never index outside a vec.
func (ls *LabelSet) clampSlot(slot int) int {
	if slot < 0 || slot > ls.cap {
		return ls.cap
	}
	return slot
}

// CounterVec is a counter family split by one LabelSet: one Counter per
// slot, fully allocated at construction so access never allocates.
type CounterVec struct {
	set  *LabelSet
	ctrs []Counter
}

// NewCounterVec creates a counter family over the label set.
func NewCounterVec(set *LabelSet) *CounterVec {
	return &CounterVec{set: set, ctrs: make([]Counter, set.Slots())}
}

// Set returns the family's label dimension.
func (v *CounterVec) Set() *LabelSet { return v.set }

// At returns the counter at a slot previously obtained from Intern or
// Lookup. Out-of-range slots resolve to the overflow counter.
func (v *CounterVec) At(slot int) *Counter { return &v.ctrs[v.set.clampSlot(slot)] }

// With returns the counter for a label value (the overflow counter for
// values never interned). Allocation-free; pre-resolve the slot with
// Intern where a call site runs hot.
func (v *CounterVec) With(name string) *Counter { return v.At(v.set.Lookup(name)) }

// StatByLabel snapshots the family as label value → count, omitting
// zero-valued slots.
func (v *CounterVec) StatByLabel() map[string]int64 {
	out := make(map[string]int64)
	for i := range v.ctrs {
		if n := v.ctrs[i].Load(); n != 0 {
			out[v.set.Name(i)] = n
		}
	}
	return out
}

// HistogramVec is a histogram family split by one LabelSet, sharing one
// bucket layout across every slot.
type HistogramVec struct {
	set   *LabelSet
	hists []Histogram
}

// NewHistogramVec creates a histogram family over the label set with the
// given bucket bounds.
func NewHistogramVec(set *LabelSet, bounds []int64) *HistogramVec {
	v := &HistogramVec{set: set, hists: make([]Histogram, set.Slots())}
	for i := range v.hists {
		v.hists[i].init(bounds)
	}
	return v
}

// Set returns the family's label dimension.
func (v *HistogramVec) Set() *LabelSet { return v.set }

// At returns the histogram at a slot previously obtained from Intern or
// Lookup. Out-of-range slots resolve to the overflow histogram.
func (v *HistogramVec) At(slot int) *Histogram { return &v.hists[v.set.clampSlot(slot)] }

// With returns the histogram for a label value (the overflow histogram
// for values never interned).
func (v *HistogramVec) With(name string) *Histogram { return v.At(v.set.Lookup(name)) }

// StatByLabel snapshots the family as label value → stat, omitting
// slots that never observed.
func (v *HistogramVec) StatByLabel() map[string]HistogramStat {
	out := make(map[string]HistogramStat)
	for i := range v.hists {
		st := v.hists[i].Stat()
		if st.Count == 0 && st.Sum == 0 {
			continue
		}
		out[v.set.Name(i)] = st
	}
	return out
}
