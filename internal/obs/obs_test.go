package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(DurationBounds)
	h.Observe(500)           // ≤ 1µs
	h.Observe(5_000)         // ≤ 10µs
	h.Observe(2_000_000_000) // +Inf
	st := h.Stat()
	if st.Count != 3 {
		t.Fatalf("count = %d, want 3", st.Count)
	}
	if st.Sum != 500+5_000+2_000_000_000 {
		t.Fatalf("sum = %d", st.Sum)
	}
	if st.Buckets[0] != 1 || st.Buckets[1] != 1 || st.Buckets[len(st.Buckets)-1] != 1 {
		t.Fatalf("bucket layout wrong: %v", st.Buckets)
	}
	var total int64
	for _, b := range st.Buckets {
		total += b
	}
	if total != st.Count {
		t.Fatalf("Σbuckets %d != count %d", total, st.Count)
	}
}

// Concurrent observers never produce a snapshot with count > Σbuckets
// (the documented write/read ordering), and after quiescing the two are
// exactly equal.
func TestHistogramConcurrentCoherence(t *testing.T) {
	h := NewHistogram(CountBounds)
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := h.Stat()
			var total int64
			for _, b := range st.Buckets {
				total += b
			}
			if st.Count > total {
				t.Errorf("torn read: count %d > Σbuckets %d", st.Count, total)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(int64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	st := h.Stat()
	if st.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", st.Count, workers*perWorker)
	}
	var total int64
	for _, b := range st.Buckets {
		total += b
	}
	if total != st.Count {
		t.Fatalf("Σbuckets %d != count %d after quiesce", total, st.Count)
	}
}

// The hot-path primitives allocate nothing, and the trace fast path with
// no sink installed is a single atomic load — the overhead-when-disabled
// guarantee the instrumented engine paths rely on.
func TestPrimitivesAllocationFree(t *testing.T) {
	r := NewRegistry()
	if r.Tracing() {
		t.Fatal("fresh registry has a sink")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Commits.Inc()
		r.CommitNs.Observe(12345)
		if r.Tracing() {
			t.Fatal("tracing flipped on")
		}
		r.Emit(Event{Name: "noop"})
	})
	if allocs != 0 {
		t.Fatalf("hot-path primitives allocated %.1f/op, want 0", allocs)
	}
}

func TestRingEmitAndLast(t *testing.T) {
	rg := NewRing(4)
	for i := 0; i < 6; i++ {
		rg.Emit(Event{Name: "e", Dur: time.Duration(i)})
	}
	evs := rg.Last(10)
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if evs[0].Seq != 3 || evs[3].Seq != 6 {
		t.Fatalf("wrong window: first=%d last=%d", evs[0].Seq, evs[3].Seq)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("events out of order: %v", evs)
		}
	}
	if got := rg.Last(2); len(got) != 2 || got[1].Seq != 6 {
		t.Fatalf("Last(2) = %v", got)
	}
}

func TestRingConcurrent(t *testing.T) {
	rg := NewRing(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := rg.Last(64)
			for i := 1; i < len(evs); i++ {
				if evs[i].Seq <= evs[i-1].Seq {
					t.Error("ring read out of order")
					return
				}
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				rg.Emit(Event{Name: "c"})
			}
		}()
	}
	wg.Wait()
	close(stop)
	if rg.Len() != 8000 {
		t.Fatalf("emitted %d, want 8000", rg.Len())
	}
}

func TestRegistrySinkInstallRemove(t *testing.T) {
	r := NewRegistry()
	rg := NewRing(8)
	r.SetSink(rg)
	if !r.Tracing() {
		t.Fatal("sink installed but Tracing() false")
	}
	r.EmitSpan("test.span", "detail", time.Now())
	if rg.Len() != 1 {
		t.Fatalf("ring holds %d events, want 1", rg.Len())
	}
	r.SetSink(nil)
	if r.Tracing() {
		t.Fatal("sink removed but Tracing() true")
	}
	r.Emit(Event{Name: "dropped"})
	if rg.Len() != 1 {
		t.Fatal("event delivered after sink removal")
	}
}

func TestSnapshotSubAndWriteText(t *testing.T) {
	r := NewRegistry()
	before := r.Snapshot()
	r.Commits.Inc()
	r.CommitNs.Observe(50_000)
	r.Ops[0].Add(3)
	r.Rejects[2].Inc()
	delta := r.Snapshot().Sub(before)
	if got := delta.Counter("reldb.tx.commits"); got != 1 {
		t.Fatalf("commits delta = %d, want 1", got)
	}
	if got := delta.Counter("vupdate.ops.insert"); got != 3 {
		t.Fatalf("insert ops delta = %d, want 3", got)
	}
	if got := delta.Counter("vupdate.reject.translator-policy"); got != 1 {
		t.Fatalf("rejection delta = %d, want 1", got)
	}
	if st := delta.Histogram("reldb.tx.commit_ns"); st.Count != 1 || st.Sum != 50_000 {
		t.Fatalf("commit hist delta = %+v", st)
	}

	var b strings.Builder
	if err := WriteText(&b, delta); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"reldb.tx.commits 1",
		"reldb.tx.commit_ns.count 1",
		"reldb.tx.commit_ns.sum 50000",
		"reldb.tx.commit_ns.le_100000 1",
		"vupdate.ops.insert 3",
		"vupdate.reject.translator-policy 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("WriteText missing %q:\n%s", want, text)
		}
	}
	// Metric blocks come out in sorted name order (bucket lines within a
	// block are bound-ordered, not lexicographic — see
	// TestWriteTextBucketOrdering).
	lines := strings.Split(strings.TrimSpace(text), "\n")
	var metrics []string
	for _, l := range lines {
		name := strings.SplitN(l, " ", 2)[0]
		name = strings.SplitN(name, "{", 2)[0]
		for _, suffix := range []string{".count", ".sum", ".mean"} {
			name = strings.TrimSuffix(name, suffix)
		}
		if i := strings.Index(name, ".le_"); i >= 0 {
			name = name[:i]
		}
		if len(metrics) == 0 || metrics[len(metrics)-1] != name {
			metrics = append(metrics, name)
		}
	}
	for i := 1; i < len(metrics); i++ {
		if metrics[i] < metrics[i-1] {
			t.Fatalf("metric blocks unsorted: %q after %q", metrics[i], metrics[i-1])
		}
	}
	if !strings.Contains(delta.Summary(), "commits=1") {
		t.Errorf("summary line: %s", delta.Summary())
	}
}

// WriteText renders a histogram's bucket lines in ascending numeric bound
// order with cumulative counts. An earlier revision sorted all lines
// lexicographically — putting le_16 before le_2 — and printed raw
// per-bucket counts under the cumulative-sounding le_ names.
func TestWriteTextBucketOrdering(t *testing.T) {
	r := NewRegistry()
	// CountBounds buckets: lands in ≤2, ≤4, ≤16, and +Inf.
	for _, v := range []int64{2, 3, 12, 5000} {
		r.ReadTxLag.Observe(v)
	}
	var b strings.Builder
	if err := WriteText(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var le []string
	for _, l := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if strings.HasPrefix(l, "reldb.readtx.lag_generations.le_") {
			le = append(le, l)
		}
	}
	want := []string{
		"reldb.readtx.lag_generations.le_2 1",
		"reldb.readtx.lag_generations.le_4 2",
		"reldb.readtx.lag_generations.le_8 2",
		"reldb.readtx.lag_generations.le_16 3",
		"reldb.readtx.lag_generations.le_64 3",
		"reldb.readtx.lag_generations.le_256 3",
		"reldb.readtx.lag_generations.le_1024 3",
		"reldb.readtx.lag_generations.le_inf 4",
	}
	if len(le) != len(want) {
		t.Fatalf("le_ lines = %v, want %v", le, want)
	}
	for i := range want {
		if le[i] != want[i] {
			t.Errorf("le line %d = %q, want %q", i, le[i], want[i])
		}
	}
	// le_0 and le_1 (cumulative count still zero) are skipped; le_inf
	// equals the total count.
	if strings.Contains(b.String(), "lag_generations.le_0") || strings.Contains(b.String(), "lag_generations.le_1 ") {
		t.Error("leading zero-cumulative buckets should be skipped")
	}
}

// HistogramStat.Sub handles a zero-value prev (metric absent from the
// older snapshot) and a bucket-shape mismatch explicitly.
func TestHistogramStatSubShapes(t *testing.T) {
	h := NewHistogram(CountBounds)
	h.Observe(1)
	h.Observe(100)
	cur := h.Stat()

	d := cur.Sub(HistogramStat{})
	if d.Count != 2 || d.Sum != 101 {
		t.Fatalf("zero-prev delta = %+v", d)
	}
	for i := range d.Buckets {
		if d.Buckets[i] != cur.Buckets[i] {
			t.Fatalf("zero-prev buckets = %v, want %v", d.Buckets, cur.Buckets)
		}
	}

	h.Observe(2)
	d = h.Stat().Sub(cur)
	if d.Count != 1 || d.Sum != 2 {
		t.Fatalf("same-shape delta = %+v", d)
	}
	var total int64
	for _, n := range d.Buckets {
		total += n
	}
	if total != 1 {
		t.Fatalf("same-shape bucket delta = %v, want one increment", d.Buckets)
	}

	// Mismatched bounds: Count/Sum subtract, st's raw buckets survive.
	mismatched := HistogramStat{Count: 1, Sum: 1, Bounds: []int64{5}, Buckets: []int64{1, 0}}
	d = cur.Sub(mismatched)
	if d.Count != 1 || d.Sum != 100 {
		t.Fatalf("mismatched-shape delta = %+v", d)
	}
	for i := range d.Buckets {
		if d.Buckets[i] != cur.Buckets[i] {
			t.Fatalf("mismatched-shape buckets = %v, want %v (st's raw buckets)", d.Buckets, cur.Buckets)
		}
	}
}

func TestStepAndReasonNames(t *testing.T) {
	if StepLocalValidate.String() != "local_validate" || StepGlobalValidate.String() != "global_validate" {
		t.Fatal("step names wrong")
	}
	if RejectReasonName(1) != "no-instance" || RejectReasonName(-1) != "unknown" || RejectReasonName(99) != "unknown" {
		t.Fatal("reason names wrong")
	}
}
