package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(DurationBounds)
	h.Observe(500)           // ≤ 1µs
	h.Observe(5_000)         // ≤ 10µs
	h.Observe(2_000_000_000) // +Inf
	st := h.Stat()
	if st.Count != 3 {
		t.Fatalf("count = %d, want 3", st.Count)
	}
	if st.Sum != 500+5_000+2_000_000_000 {
		t.Fatalf("sum = %d", st.Sum)
	}
	if st.Buckets[0] != 1 || st.Buckets[1] != 1 || st.Buckets[len(st.Buckets)-1] != 1 {
		t.Fatalf("bucket layout wrong: %v", st.Buckets)
	}
	var total int64
	for _, b := range st.Buckets {
		total += b
	}
	if total != st.Count {
		t.Fatalf("Σbuckets %d != count %d", total, st.Count)
	}
}

// Concurrent observers never produce a snapshot with count > Σbuckets
// (the documented write/read ordering), and after quiescing the two are
// exactly equal.
func TestHistogramConcurrentCoherence(t *testing.T) {
	h := NewHistogram(CountBounds)
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := h.Stat()
			var total int64
			for _, b := range st.Buckets {
				total += b
			}
			if st.Count > total {
				t.Errorf("torn read: count %d > Σbuckets %d", st.Count, total)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(int64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	st := h.Stat()
	if st.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", st.Count, workers*perWorker)
	}
	var total int64
	for _, b := range st.Buckets {
		total += b
	}
	if total != st.Count {
		t.Fatalf("Σbuckets %d != count %d after quiesce", total, st.Count)
	}
}

// The hot-path primitives allocate nothing, and the trace fast path with
// no sink installed is a single atomic load — the overhead-when-disabled
// guarantee the instrumented engine paths rely on.
func TestPrimitivesAllocationFree(t *testing.T) {
	r := NewRegistry()
	if r.Tracing() {
		t.Fatal("fresh registry has a sink")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Commits.Inc()
		r.CommitNs.Observe(12345)
		if r.Tracing() {
			t.Fatal("tracing flipped on")
		}
		r.Emit(Event{Name: "noop"})
	})
	if allocs != 0 {
		t.Fatalf("hot-path primitives allocated %.1f/op, want 0", allocs)
	}
}

func TestRingEmitAndLast(t *testing.T) {
	rg := NewRing(4)
	for i := 0; i < 6; i++ {
		rg.Emit(Event{Name: "e", Dur: time.Duration(i)})
	}
	evs := rg.Last(10)
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if evs[0].Seq != 3 || evs[3].Seq != 6 {
		t.Fatalf("wrong window: first=%d last=%d", evs[0].Seq, evs[3].Seq)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("events out of order: %v", evs)
		}
	}
	if got := rg.Last(2); len(got) != 2 || got[1].Seq != 6 {
		t.Fatalf("Last(2) = %v", got)
	}
}

func TestRingConcurrent(t *testing.T) {
	rg := NewRing(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := rg.Last(64)
			for i := 1; i < len(evs); i++ {
				if evs[i].Seq <= evs[i-1].Seq {
					t.Error("ring read out of order")
					return
				}
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				rg.Emit(Event{Name: "c"})
			}
		}()
	}
	wg.Wait()
	close(stop)
	if rg.Len() != 8000 {
		t.Fatalf("emitted %d, want 8000", rg.Len())
	}
}

func TestRegistrySinkInstallRemove(t *testing.T) {
	r := NewRegistry()
	rg := NewRing(8)
	r.SetSink(rg)
	if !r.Tracing() {
		t.Fatal("sink installed but Tracing() false")
	}
	r.EmitSpan("test.span", "detail", time.Now())
	if rg.Len() != 1 {
		t.Fatalf("ring holds %d events, want 1", rg.Len())
	}
	r.SetSink(nil)
	if r.Tracing() {
		t.Fatal("sink removed but Tracing() true")
	}
	r.Emit(Event{Name: "dropped"})
	if rg.Len() != 1 {
		t.Fatal("event delivered after sink removal")
	}
}

func TestSnapshotSubAndWriteText(t *testing.T) {
	r := NewRegistry()
	before := r.Snapshot()
	r.Commits.Inc()
	r.CommitNs.Observe(50_000)
	r.Ops[0].Add(3)
	r.Rejects[2].Inc()
	delta := r.Snapshot().Sub(before)
	if got := delta.Counter("reldb.tx.commits"); got != 1 {
		t.Fatalf("commits delta = %d, want 1", got)
	}
	if got := delta.Counter("vupdate.ops.insert"); got != 3 {
		t.Fatalf("insert ops delta = %d, want 3", got)
	}
	if got := delta.Counter("vupdate.reject.translator-policy"); got != 1 {
		t.Fatalf("rejection delta = %d, want 1", got)
	}
	if st := delta.Histogram("reldb.tx.commit_ns"); st.Count != 1 || st.Sum != 50_000 {
		t.Fatalf("commit hist delta = %+v", st)
	}

	var b strings.Builder
	if err := WriteText(&b, delta); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"reldb.tx.commits 1",
		"reldb.tx.commit_ns.count 1",
		"reldb.tx.commit_ns.sum 50000",
		"reldb.tx.commit_ns.le_100000 1",
		"vupdate.ops.insert 3",
		"vupdate.reject.translator-policy 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("WriteText missing %q:\n%s", want, text)
		}
	}
	// Lines are sorted (expvar-style stable rendering).
	lines := strings.Split(strings.TrimSpace(text), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Fatalf("output unsorted at line %d: %q < %q", i, lines[i], lines[i-1])
		}
	}
	if !strings.Contains(delta.Summary(), "commits=1") {
		t.Errorf("summary line: %s", delta.Summary())
	}
}

func TestStepAndReasonNames(t *testing.T) {
	if StepLocalValidate.String() != "local_validate" || StepGlobalValidate.String() != "global_validate" {
		t.Fatal("step names wrong")
	}
	if RejectReasonName(1) != "no-instance" || RejectReasonName(-1) != "unknown" || RejectReasonName(99) != "unknown" {
		t.Fatal("reason names wrong")
	}
}
