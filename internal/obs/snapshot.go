package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Snapshot is a point-in-time copy of a Registry: flat maps keyed by
// expvar-style dotted names. It is a plain value — safe to retain,
// subtract, and render after the registry has moved on.
type Snapshot struct {
	// Counters maps metric name → count.
	Counters map[string]int64
	// Histograms maps metric name → stat. Latency histograms use the
	// "_ns" suffix and record nanoseconds.
	Histograms map[string]HistogramStat
	// LabeledCounters maps metric name → one-dimension labeled series.
	// A name present here may also be present in Counters: the labeled
	// family partitions the aggregate (overflow included), so summing
	// its values reproduces the flat counter.
	LabeledCounters map[string]LabeledCounter
	// LabeledHistograms is the histogram equivalent of LabeledCounters.
	LabeledHistograms map[string]LabeledHistogram
	// Gauges maps metric name → point-in-time level, sampled when the
	// snapshot was captured (Go runtime health: goroutines, heap in
	// use, GC pause total, GC cycles). Unlike counters these are not
	// monotone, so Sub carries the newer snapshot's values through
	// unchanged.
	Gauges map[string]int64
}

// LabeledCounter is one counter family split by a single label
// dimension. Zero-valued label slots are omitted at capture.
type LabeledCounter struct {
	// Label is the label key ("object", "relation").
	Label string
	// Values maps label value → count.
	Values map[string]int64
}

// LabeledHistogram is one histogram family split by a single label
// dimension. Slots that never observed are omitted at capture.
type LabeledHistogram struct {
	// Label is the label key ("object", "relation").
	Label string
	// Values maps label value → stat.
	Values map[string]HistogramStat
}

// Snapshot captures the registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:          make(map[string]int64, 32),
		Histograms:        make(map[string]HistogramStat, 16),
		LabeledCounters:   make(map[string]LabeledCounter, 16),
		LabeledHistograms: make(map[string]LabeledHistogram, 8),
	}
	c := func(name string, ctr *Counter) { s.Counters[name] = ctr.Load() }
	h := func(name string, hist *Histogram) { s.Histograms[name] = hist.Stat() }
	lc := func(name string, v *CounterVec) {
		if vals := v.StatByLabel(); len(vals) > 0 {
			s.LabeledCounters[name] = LabeledCounter{Label: v.Set().Key(), Values: vals}
		}
	}
	lh := func(name string, v *HistogramVec) {
		if vals := v.StatByLabel(); len(vals) > 0 {
			s.LabeledHistograms[name] = LabeledHistogram{Label: v.Set().Key(), Values: vals}
		}
	}

	c("reldb.tx.commits", &r.Commits)
	c("reldb.tx.empty_commits", &r.EmptyCommits)
	c("reldb.tx.rollbacks", &r.Rollbacks)
	c("reldb.tx.txdone_hits", &r.TxDoneHits)
	c("reldb.relation.clones", &r.RelationClones)
	c("reldb.readtx.begins", &r.ReadTxBegins)
	c("reldb.readtx.stale_closes", &r.StaleCloses)
	c("reldb.readtx.stale_forks", &r.StaleForks)
	c("reldb.delta.subscribes", &r.DeltaSubscribes)
	c("reldb.delta.publishes", &r.DeltaPublishes)
	c("reldb.delta.overflows", &r.DeltaOverflows)
	c("reldb.wal.appends", &r.WALAppends)
	c("reldb.wal.bytes", &r.WALBytes)
	c("reldb.wal.fsyncs", &r.WALFsyncs)
	c("reldb.wal.replayed", &r.WALReplayed)
	c("reldb.wal.checkpoints", &r.WALCheckpoints)
	h("reldb.wal.fsync_ns", &r.WALFsyncNs)
	// The shard splits live under their own .by_shard names rather than
	// the aggregate's: unsharded databases count only in the aggregate,
	// so the labeled family is NOT a partition of it, and reusing the
	// name would make WriteProm's labeled-only convention swallow the
	// bare reldb_wal_* samples whenever any shard label is live.
	lc("reldb.wal.appends.by_shard", r.WALAppendsByShard)
	lc("reldb.wal.bytes.by_shard", r.WALBytesByShard)
	lc("reldb.wal.fsyncs.by_shard", r.WALFsyncsByShard)
	lc("reldb.wal.checkpoints.by_shard", r.WALCheckpointsByShard)
	c("reldb.cross.prepares", &r.CrossPrepares)
	c("reldb.cross.commits", &r.CrossCommits)
	c("reldb.cross.aborts", &r.CrossAborts)
	h("reldb.tx.commit_ns", &r.CommitNs)
	h("reldb.readtx.lag_generations", &r.ReadTxLag)
	lc("reldb.relation.scanned", r.RelScanned)
	lc("reldb.relation.probes", r.RelProbes)
	lc("reldb.relation.scans", r.RelScans)
	c("reldb.plancache.lookups", &r.PlanCacheLookups)
	c("reldb.plancache.hits", &r.PlanCacheHits)
	c("reldb.plancache.misses", &r.PlanCacheMisses)
	c("reldb.plancache.invalidations", &r.PlanCacheInvalidations)
	c("reldb.plancache.clone_drops", &r.PlanCacheCloneDrops)

	c("viewobject.instantiate.calls", &r.Instantiations)
	c("viewobject.instantiate.tuples_scanned", &r.TuplesScanned)
	c("viewobject.instantiate.nodes", &r.InstNodes)
	c("viewobject.instantiate.batched_lookups", &r.BatchedLookups)
	h("viewobject.instantiate.fanout", &r.NodeFanOut)
	h("viewobject.instantiate.level_fanout", &r.LevelFanOut)
	h("viewobject.instantiate.ns", &r.InstantiateNs)
	c("viewobject.parallel.workers", &r.ParallelWorkers)
	c("viewobject.parallel.chunks", &r.ParallelChunks)
	c("viewobject.parallel.steals", &r.ParallelSteals)
	h("viewobject.instantiate.parallel_ns", &r.InstantiateParallelNs)
	c("viewobject.materialize.hits", &r.MatHits)
	c("viewobject.materialize.misses", &r.MatMisses)
	c("viewobject.materialize.patches", &r.MatPatches)
	c("viewobject.materialize.falls_back", &r.MatFallbacks)
	c("viewobject.materialize.resyncs", &r.MatResyncs)
	h("viewobject.materialize.patch_ns", &r.MatPatchNs)
	lc("viewobject.instantiate.calls", r.InstCallsByObject)
	lc("viewobject.instantiate.tuples_scanned", r.InstTuplesByObject)
	lc("viewobject.instantiate.nodes", r.InstNodesByObject)
	lh("viewobject.instantiate.ns", r.InstantiateNsByObject)
	lh("viewobject.instantiate.parallel_ns", r.InstantiateParallelNsByObject)

	c("vupdate.updates.committed", &r.UpdatesCommitted)
	c("vupdate.updates.rejected", &r.UpdatesRejected)
	lc("vupdate.updates.committed", r.CommittedByObject)
	lc("vupdate.updates.rejected", r.RejectedByObject)
	for i := Step(0); i < NumSteps; i++ {
		h("vupdate.step."+stepNames[i]+"_ns", &r.StepNs[i])
		lh("vupdate.step."+stepNames[i]+"_ns", r.StepNsByObject[i])
	}
	for i := 0; i < NumOpKinds; i++ {
		c("vupdate.ops."+opNames[i], &r.Ops[i])
		lc("vupdate.ops."+opNames[i], r.OpsByObject[i])
	}
	for i := 0; i < NumRejectReasons; i++ {
		c("vupdate.reject."+rejectReasonNames[i], &r.Rejects[i])
		lc("vupdate.reject."+rejectReasonNames[i], r.RejectsByObject[i])
	}

	c("penguin.http.requests", &r.HTTPRequests)
	c("penguin.http.shed", &r.HTTPShed)
	h("penguin.http.ns", &r.HTTPNs)
	lc("penguin.http.requests", r.HTTPRequestsByEndpoint)
	lc("penguin.http.shed", r.HTTPShedByEndpoint)
	lh("penguin.http.ns", r.HTTPNsByEndpoint)
	for i := 0; i < NumStatusClasses; i++ {
		c("penguin.http.status."+statusClassNames[i], &r.HTTPStatus[i])
		lc("penguin.http.status."+statusClassNames[i], r.HTTPStatusByEndpoint[i])
	}
	c("workload.openloop.sent", &r.OpenLoopSent)
	c("workload.openloop.shed", &r.OpenLoopShed)
	c("workload.openloop.errors", &r.OpenLoopErrors)
	h("workload.openloop.latency_ns", &r.OpenLoopNs)
	lh("workload.openloop.latency_ns", r.OpenLoopNsByEndpoint)

	h("keller.materialize_ns", &r.KellerMaterializeNs)
	h("keller.translate_ns", &r.KellerTranslateNs)
	c("keller.ops", &r.KellerOps)

	c("obs.slowtrace.captured", &r.SlowTraceCaptured)
	c("obs.slowtrace.dropped", &r.SlowTraceDropped)
	s.Gauges = sampleRuntimeGauges()
	return s
}

// Capture snapshots the Default registry.
func Capture() Snapshot { return Default.Snapshot() }

// Counter returns a counter by name (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge by name (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Histogram returns a histogram stat by name (zero stat when absent).
func (s Snapshot) Histogram(name string) HistogramStat { return s.Histograms[name] }

// LabeledCounterValue returns one series of a labeled counter family
// (0 when the family or the label value is absent).
func (s Snapshot) LabeledCounterValue(name, labelValue string) int64 {
	return s.LabeledCounters[name].Values[labelValue]
}

// LabeledHistogramValue returns one series of a labeled histogram
// family (zero stat when absent).
func (s Snapshot) LabeledHistogramValue(name, labelValue string) HistogramStat {
	return s.LabeledHistograms[name].Values[labelValue]
}

// Sub returns the metric-wise difference s − prev: the activity between
// two snapshots of the same registry.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:          make(map[string]int64, len(s.Counters)),
		Histograms:        make(map[string]HistogramStat, len(s.Histograms)),
		LabeledCounters:   make(map[string]LabeledCounter, len(s.LabeledCounters)),
		LabeledHistograms: make(map[string]LabeledHistogram, len(s.LabeledHistograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v - prev.Counters[k]
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v.Sub(prev.Histograms[k])
	}
	for k, fam := range s.LabeledCounters {
		pf := prev.LabeledCounters[k]
		d := LabeledCounter{Label: fam.Label, Values: make(map[string]int64, len(fam.Values))}
		for lv, n := range fam.Values {
			if n -= pf.Values[lv]; n != 0 {
				d.Values[lv] = n
			}
		}
		if len(d.Values) > 0 {
			out.LabeledCounters[k] = d
		}
	}
	for k, fam := range s.LabeledHistograms {
		pf := prev.LabeledHistograms[k]
		d := LabeledHistogram{Label: fam.Label, Values: make(map[string]HistogramStat, len(fam.Values))}
		for lv, st := range fam.Values {
			dst := st.Sub(pf.Values[lv])
			if dst.Count != 0 || dst.Sum != 0 {
				d.Values[lv] = dst
			}
		}
		if len(d.Values) > 0 {
			out.LabeledHistograms[k] = d
		}
	}
	// Gauges are levels, not counts: the delta of two heap sizes is not
	// a meaningful heap size, so the newer snapshot's sample carries
	// through as-is.
	if len(s.Gauges) > 0 {
		out.Gauges = make(map[string]int64, len(s.Gauges))
		for k, v := range s.Gauges {
			out.Gauges[k] = v
		}
	}
	return out
}

// WriteText renders the snapshot as "name value" lines — expvar-style
// flat keys — grouped per metric and sorted by metric name. A counter is
// one line; a histogram expands into .count, .sum, .mean, then one
// .le_* line per bucket bound in ascending numeric order carrying the
// cumulative count of observations ≤ that bound (Prometheus `le`
// semantics), ending in .le_inf == .count. Bounds below the smallest
// observation (cumulative count still zero) are skipped. Labeled series
// follow their aggregate as name{label=value} lines, label values
// sorted:
//
//	reldb.tx.commits 42
//	reldb.tx.commit_ns.count 42
//	reldb.tx.commit_ns.sum 774165
//	reldb.tx.commit_ns.mean 18432.5
//	reldb.tx.commit_ns.le_100000 40
//	reldb.tx.commit_ns.le_1000000 42
//	reldb.tx.commit_ns.le_inf 42
//	reldb.relation.scanned{relation=COURSES} 812
//
// Earlier revisions sorted the rendered lines lexicographically (which
// put le_10 before le_2 and le_100000 before le_2500) and emitted raw
// per-bucket counts under the cumulative-sounding le_ names; both are
// fixed here and pinned by TestWriteTextBucketOrdering.
func WriteText(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters)+len(s.Histograms))
	seen := make(map[string]bool)
	for _, m := range []map[string]bool{namesOf(s.Counters), namesOf(s.Histograms),
		namesOf(s.LabeledCounters), namesOf(s.LabeledHistograms), namesOf(s.Gauges)} {
		for n := range m {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)

	var lines []string
	for _, name := range names {
		if v, ok := s.Counters[name]; ok {
			lines = append(lines, fmt.Sprintf("%s %d", name, v))
		}
		if v, ok := s.Gauges[name]; ok {
			lines = append(lines, fmt.Sprintf("%s %d", name, v))
		}
		if st, ok := s.Histograms[name]; ok {
			lines = append(lines, textHistLines(name, st)...)
		}
		if fam, ok := s.LabeledCounters[name]; ok {
			for _, lv := range sortedKeys(fam.Values) {
				lines = append(lines, fmt.Sprintf("%s{%s=%s} %d", name, fam.Label, lv, fam.Values[lv]))
			}
		}
		if fam, ok := s.LabeledHistograms[name]; ok {
			for _, lv := range sortedKeys(fam.Values) {
				series := fmt.Sprintf("%s{%s=%s}", name, fam.Label, lv)
				lines = append(lines, textHistLines(series, fam.Values[lv])...)
			}
		}
	}
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// textHistLines expands one histogram series into its WriteText lines:
// count, sum, mean, then cumulative le_* lines in bound order.
func textHistLines(prefix string, st HistogramStat) []string {
	lines := []string{
		fmt.Sprintf("%s.count %d", prefix, st.Count),
		fmt.Sprintf("%s.sum %d", prefix, st.Sum),
		fmt.Sprintf("%s.mean %.1f", prefix, st.Mean()),
	}
	var cum int64
	for i, n := range st.Buckets {
		cum += n
		if cum == 0 {
			continue // below the smallest observation
		}
		if i < len(st.Bounds) {
			lines = append(lines, fmt.Sprintf("%s.le_%d %d", prefix, st.Bounds[i], cum))
		} else {
			lines = append(lines, fmt.Sprintf("%s.le_inf %d", prefix, cum))
		}
	}
	return lines
}

// namesOf collects a map's keys as a set (generic over the value type).
func namesOf[V any](m map[string]V) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// sortedKeys returns a map's keys sorted.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Summary condenses the snapshot into one line for workload reports:
// commit and instantiation volume, mean latencies, op and rejection
// totals. Durations render in time.Duration notation.
func (s Snapshot) Summary() string {
	var ops, rejects int64
	for i := 0; i < NumOpKinds; i++ {
		ops += s.Counter("vupdate.ops." + opNames[i])
	}
	for i := 0; i < NumRejectReasons; i++ {
		rejects += s.Counter("vupdate.reject." + rejectReasonNames[i])
	}
	commit := s.Histogram("reldb.tx.commit_ns")
	inst := s.Histogram("viewobject.instantiate.ns")
	return fmt.Sprintf(
		"commits=%d (mean %s) rollbacks=%d instantiations=%d (mean %s) tuples_scanned=%d dbops=%d rejections=%d clones=%d",
		s.Counter("reldb.tx.commits"), time.Duration(int64(commit.Mean())),
		s.Counter("reldb.tx.rollbacks"),
		s.Counter("viewobject.instantiate.calls"), time.Duration(int64(inst.Mean())),
		s.Counter("viewobject.instantiate.tuples_scanned"),
		ops, rejects,
		s.Counter("reldb.relation.clones"))
}
