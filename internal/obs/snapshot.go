package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Snapshot is a point-in-time copy of a Registry: flat maps keyed by
// expvar-style dotted names. It is a plain value — safe to retain,
// subtract, and render after the registry has moved on.
type Snapshot struct {
	// Counters maps metric name → count.
	Counters map[string]int64
	// Histograms maps metric name → stat. Latency histograms use the
	// "_ns" suffix and record nanoseconds.
	Histograms map[string]HistogramStat
}

// Snapshot captures the registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64, 32),
		Histograms: make(map[string]HistogramStat, 16),
	}
	c := func(name string, ctr *Counter) { s.Counters[name] = ctr.Load() }
	h := func(name string, hist *Histogram) { s.Histograms[name] = hist.Stat() }

	c("reldb.tx.commits", &r.Commits)
	c("reldb.tx.empty_commits", &r.EmptyCommits)
	c("reldb.tx.rollbacks", &r.Rollbacks)
	c("reldb.tx.txdone_hits", &r.TxDoneHits)
	c("reldb.relation.clones", &r.RelationClones)
	c("reldb.readtx.begins", &r.ReadTxBegins)
	h("reldb.tx.commit_ns", &r.CommitNs)
	h("reldb.readtx.lag_generations", &r.ReadTxLag)

	c("viewobject.instantiate.calls", &r.Instantiations)
	c("viewobject.instantiate.tuples_scanned", &r.TuplesScanned)
	c("viewobject.instantiate.nodes", &r.InstNodes)
	c("viewobject.instantiate.batched_lookups", &r.BatchedLookups)
	h("viewobject.instantiate.fanout", &r.NodeFanOut)
	h("viewobject.instantiate.level_fanout", &r.LevelFanOut)
	h("viewobject.instantiate.ns", &r.InstantiateNs)

	c("vupdate.updates.committed", &r.UpdatesCommitted)
	c("vupdate.updates.rejected", &r.UpdatesRejected)
	for i := Step(0); i < NumSteps; i++ {
		h("vupdate.step."+stepNames[i]+"_ns", &r.StepNs[i])
	}
	for i := 0; i < NumOpKinds; i++ {
		c("vupdate.ops."+opNames[i], &r.Ops[i])
	}
	for i := 0; i < NumRejectReasons; i++ {
		c("vupdate.reject."+rejectReasonNames[i], &r.Rejects[i])
	}

	h("keller.materialize_ns", &r.KellerMaterializeNs)
	h("keller.translate_ns", &r.KellerTranslateNs)
	c("keller.ops", &r.KellerOps)
	return s
}

// Capture snapshots the Default registry.
func Capture() Snapshot { return Default.Snapshot() }

// Counter returns a counter by name (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Histogram returns a histogram stat by name (zero stat when absent).
func (s Snapshot) Histogram(name string) HistogramStat { return s.Histograms[name] }

// Sub returns the metric-wise difference s − prev: the activity between
// two snapshots of the same registry.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Histograms: make(map[string]HistogramStat, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v - prev.Counters[k]
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v.Sub(prev.Histograms[k])
	}
	return out
}

// WriteText renders the snapshot as sorted "name value" lines —
// expvar-compatible flat keys, histograms expanded into .count, .sum,
// .mean, and one .le_* line per non-empty bucket:
//
//	reldb.tx.commits 42
//	reldb.tx.commit_ns.count 42
//	reldb.tx.commit_ns.mean 18432.5
//	reldb.tx.commit_ns.le_100000 40
//	reldb.tx.commit_ns.le_inf 2
func WriteText(w io.Writer, s Snapshot) error {
	lines := make([]string, 0, len(s.Counters)+4*len(s.Histograms))
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, st := range s.Histograms {
		lines = append(lines, fmt.Sprintf("%s.count %d", name, st.Count))
		lines = append(lines, fmt.Sprintf("%s.sum %d", name, st.Sum))
		lines = append(lines, fmt.Sprintf("%s.mean %.1f", name, st.Mean()))
		for i, n := range st.Buckets {
			if n == 0 {
				continue
			}
			if i < len(st.Bounds) {
				lines = append(lines, fmt.Sprintf("%s.le_%d %d", name, st.Bounds[i], n))
			} else {
				lines = append(lines, fmt.Sprintf("%s.le_inf %d", name, n))
			}
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// Summary condenses the snapshot into one line for workload reports:
// commit and instantiation volume, mean latencies, op and rejection
// totals. Durations render in time.Duration notation.
func (s Snapshot) Summary() string {
	var ops, rejects int64
	for i := 0; i < NumOpKinds; i++ {
		ops += s.Counter("vupdate.ops." + opNames[i])
	}
	for i := 0; i < NumRejectReasons; i++ {
		rejects += s.Counter("vupdate.reject." + rejectReasonNames[i])
	}
	commit := s.Histogram("reldb.tx.commit_ns")
	inst := s.Histogram("viewobject.instantiate.ns")
	return fmt.Sprintf(
		"commits=%d (mean %s) rollbacks=%d instantiations=%d (mean %s) tuples_scanned=%d dbops=%d rejections=%d clones=%d",
		s.Counter("reldb.tx.commits"), time.Duration(int64(commit.Mean())),
		s.Counter("reldb.tx.rollbacks"),
		s.Counter("viewobject.instantiate.calls"), time.Duration(int64(inst.Mean())),
		s.Counter("viewobject.instantiate.tuples_scanned"),
		ops, rejects,
		s.Counter("reldb.relation.clones"))
}
