package obs

import (
	"net"
	"net/http"
)

// promContentType is the content type of text exposition format 0.0.4.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler that serves the Default registry as
// Prometheus text exposition — the body of a /metrics endpoint.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", promContentType)
		_ = WriteProm(w, Capture())
	})
}

// Serve starts an HTTP listener on addr exposing the Default registry
// at /metrics for a real scraper. It returns the live listener (its
// Addr carries the resolved port for ":0" addresses); Close it to stop
// serving. The serving goroutine exits when the listener closes.
func Serve(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler())
	go func() {
		srv := &http.Server{Handler: mux}
		_ = srv.Serve(ln)
	}()
	return ln, nil
}
