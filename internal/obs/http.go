package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// promContentType is the content type of text exposition format 0.0.4.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler that serves the Default registry as
// Prometheus text exposition — the body of a /metrics endpoint.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", promContentType)
		_ = WriteProm(w, Capture())
	})
}

// TracesHandler returns an http.Handler serving the Default registry's
// flight-recorder contents at /debug/traces:
//
//   - without parameters, a JSON summary of the retained slow traces
//     (id, name, detail, start, duration, span count);
//   - with ?id=<traceID>, that trace exported as Chrome trace-event
//     JSON, ready to load into chrome://tracing or Perfetto.
func TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rec := Default.Recorder()
		if idStr := req.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 10, 64)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			var tr SlowTrace
			ok := false
			if rec != nil {
				tr, ok = rec.Trace(id)
			}
			if !ok {
				http.Error(w, "no such trace", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = WriteChromeTrace(w, []SlowTrace{tr})
			return
		}
		type summary struct {
			ID        uint64 `json:"id"`
			Name      string `json:"name"`
			Detail    string `json:"detail,omitempty"`
			Start     string `json:"start"`
			DurNs     int64  `json:"dur_ns"`
			Spans     int    `json:"spans"`
			Truncated int    `json:"truncated_spans,omitempty"`
		}
		resp := struct {
			Recording   bool      `json:"recording"`
			ThresholdNs int64     `json:"threshold_ns,omitempty"`
			Traces      []summary `json:"traces"`
		}{Traces: []summary{}}
		if rec != nil {
			resp.Recording = true
			resp.ThresholdNs = int64(rec.Threshold())
			for _, tr := range rec.Traces() {
				resp.Traces = append(resp.Traces, summary{
					ID:        tr.TraceID,
					Name:      tr.Name,
					Detail:    tr.Detail,
					Start:     tr.Start.Format(time.RFC3339Nano),
					DurNs:     tr.Dur.Nanoseconds(),
					Spans:     len(tr.Spans),
					Truncated: tr.TruncatedSpans,
				})
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
}

// Serve starts an HTTP listener on addr exposing the Default registry
// for a real scraper: /metrics (Prometheus text exposition),
// /debug/traces (the flight recorder), and the standard net/http/pprof
// handlers under /debug/pprof/ — CPU and heap profiles are one curl
// away without wiring the profiler into http.DefaultServeMux. It
// returns the live listener (its Addr carries the resolved port for
// ":0" addresses); Close it to stop serving. The serving goroutine
// exits when the listener closes.
func Serve(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler())
	mux.Handle("/debug/traces", TracesHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		srv := &http.Server{Handler: mux}
		_ = srv.Serve(ln)
	}()
	return ln, nil
}
