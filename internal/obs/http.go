package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// promContentType is the content type of text exposition format 0.0.4.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler that serves the Default registry as
// Prometheus text exposition — the body of a /metrics endpoint.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", promContentType)
		_ = WriteProm(w, Capture())
	})
}

// TracesHandler returns an http.Handler serving the Default registry's
// flight-recorder contents at /debug/traces:
//
//   - without parameters, a JSON summary of the retained slow traces
//     (id, name, detail, start, duration, span count);
//   - with ?id=<traceID>, that trace exported as Chrome trace-event
//     JSON, ready to load into chrome://tracing or Perfetto.
func TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rec := Default.Recorder()
		if idStr := req.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 10, 64)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			var tr SlowTrace
			ok := false
			if rec != nil {
				tr, ok = rec.Trace(id)
			}
			if !ok {
				http.Error(w, "no such trace", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = WriteChromeTrace(w, []SlowTrace{tr})
			return
		}
		type summary struct {
			ID        uint64 `json:"id"`
			Name      string `json:"name"`
			Detail    string `json:"detail,omitempty"`
			Start     string `json:"start"`
			DurNs     int64  `json:"dur_ns"`
			Spans     int    `json:"spans"`
			Truncated int    `json:"truncated_spans,omitempty"`
		}
		resp := struct {
			Recording   bool      `json:"recording"`
			ThresholdNs int64     `json:"threshold_ns,omitempty"`
			Traces      []summary `json:"traces"`
		}{Traces: []summary{}}
		if rec != nil {
			resp.Recording = true
			resp.ThresholdNs = int64(rec.Threshold())
			for _, tr := range rec.Traces() {
				resp.Traces = append(resp.Traces, summary{
					ID:        tr.TraceID,
					Name:      tr.Name,
					Detail:    tr.Detail,
					Start:     tr.Start.Format(time.RFC3339Nano),
					DurNs:     tr.Dur.Nanoseconds(),
					Spans:     len(tr.Spans),
					Truncated: tr.TruncatedSpans,
				})
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
}

// DebugMux returns the observability mux: /metrics (Prometheus text
// exposition of the Default registry), /debug/traces (the flight
// recorder), and the standard net/http/pprof handlers under
// /debug/pprof/.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler())
	mux.Handle("/debug/traces", TracesHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// HardenedServer wraps a handler in an http.Server with the timeouts a
// long-lived process needs: a client that stalls mid-headers or
// mid-body, or that holds a keep-alive connection idle forever, is cut
// off instead of pinning a goroutine for the life of the process.
// WriteTimeout stays 0 deliberately — /debug/pprof/profile streams for
// its whole sampling window (30s by default) and a write deadline would
// truncate it.
func HardenedServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// HTTPServer is a running hardened HTTP listener. Unlike a bare
// net.Listener close — which kills in-flight requests mid-response —
// Shutdown drains: the listener stops accepting, idle connections
// close, and active requests finish (or the context expires).
type HTTPServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// ServeHandler starts a hardened HTTP server for h on addr and returns
// its handle. Addr carries the resolved port for ":0" addresses.
func ServeHandler(addr string, h http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &HTTPServer{ln: ln, srv: HardenedServer(h), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Serve starts an HTTP listener on addr exposing the Default registry
// for a real scraper: the DebugMux routes (/metrics, /debug/traces,
// /debug/pprof/). The returned handle's Addr carries the resolved port
// for ":0" addresses; Shutdown it to drain, or Close to stop hard.
func Serve(addr string) (*HTTPServer, error) {
	return ServeHandler(addr, DebugMux())
}

// Addr returns the listener's address.
func (s *HTTPServer) Addr() net.Addr { return s.ln.Addr() }

// Shutdown gracefully stops the server: no new connections are
// accepted and in-flight requests run to completion (an expired ctx
// abandons the stragglers). It waits for the serve goroutine to exit.
func (s *HTTPServer) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

// Close immediately closes the listener and every active connection.
// In-flight scrapes are killed; prefer Shutdown outside of tests.
func (s *HTTPServer) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
