package obs

import (
	"fmt"
	"strings"
	"testing"
)

func TestLabelSetInternLookupOverflow(t *testing.T) {
	ls := NewLabelSet("object", 2)
	if got := ls.Intern("a"); got != 0 {
		t.Fatalf("Intern(a) = %d, want 0", got)
	}
	if got := ls.Intern("b"); got != 1 {
		t.Fatalf("Intern(b) = %d, want 1", got)
	}
	if got := ls.Intern("a"); got != 0 {
		t.Fatalf("re-Intern(a) = %d, want 0", got)
	}
	// Table full: every new value collapses into the overflow slot.
	if got := ls.Intern("c"); got != ls.Other() {
		t.Fatalf("Intern(c) = %d, want overflow %d", got, ls.Other())
	}
	if got := ls.Intern("d"); got != ls.Other() {
		t.Fatalf("Intern(d) = %d, want overflow %d", got, ls.Other())
	}
	if got := ls.Lookup("never-interned"); got != ls.Other() {
		t.Fatalf("Lookup(unknown) = %d, want overflow", got)
	}
	if ls.Len() != 2 || ls.Slots() != 3 {
		t.Fatalf("Len=%d Slots=%d, want 2/3", ls.Len(), ls.Slots())
	}
	if ls.Name(0) != "a" || ls.Name(ls.Other()) != OtherLabel || ls.Name(99) != OtherLabel {
		t.Fatalf("Name mapping wrong: %q %q %q", ls.Name(0), ls.Name(ls.Other()), ls.Name(99))
	}
	if names := ls.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names() = %v", names)
	}
}

// However many distinct label values a workload produces, a labeled
// family emits at most capacity+1 series: the overflow slot absorbs the
// excess without losing any counts.
func TestLabelCardinalityBounded(t *testing.T) {
	const capacity, distinct = 4, 20
	ls := NewLabelSet("relation", capacity)
	vec := NewCounterVec(ls)
	for i := 0; i < distinct; i++ {
		vec.At(ls.Intern(fmt.Sprintf("REL_%d", i))).Inc()
	}
	stats := vec.StatByLabel()
	if len(stats) > capacity+1 {
		t.Fatalf("family emits %d series, want <= %d", len(stats), capacity+1)
	}
	var total int64
	for _, n := range stats {
		total += n
	}
	if total != distinct {
		t.Fatalf("Σ series = %d, want %d (overflow must not drop counts)", total, distinct)
	}
	if stats[OtherLabel] != distinct-capacity {
		t.Fatalf("overflow slot = %d, want %d", stats[OtherLabel], distinct-capacity)
	}
}

func TestCounterVecSlotClamping(t *testing.T) {
	ls := NewLabelSet("object", 2)
	vec := NewCounterVec(ls)
	vec.At(-5).Inc()
	vec.At(999).Inc()
	if got := vec.At(ls.Other()).Load(); got != 2 {
		t.Fatalf("out-of-range slots should land in overflow; got %d", got)
	}
}

func TestHistogramVec(t *testing.T) {
	ls := NewLabelSet("object", 4)
	vec := NewHistogramVec(ls, DurationBounds)
	a := ls.Intern("alpha")
	vec.At(a).Observe(500)
	vec.At(a).Observe(5_000)
	vec.With("never-interned").Observe(42)
	stats := vec.StatByLabel()
	if st := stats["alpha"]; st.Count != 2 || st.Sum != 5_500 {
		t.Fatalf("alpha stat = %+v", st)
	}
	if st := stats[OtherLabel]; st.Count != 1 || st.Sum != 42 {
		t.Fatalf("overflow stat = %+v", st)
	}
	if len(stats) != 2 {
		t.Fatalf("StatByLabel = %v, silent slots must be omitted", stats)
	}
}

// Labeled hot-path access allocates nothing: slot-indexed increments are
// an array index plus an atomic op, and even the name-resolving With
// path is only a read lock plus a map probe.
func TestLabeledAccessAllocationFree(t *testing.T) {
	ls := NewLabelSet("object", 4)
	cv := NewCounterVec(ls)
	hv := NewHistogramVec(ls, DurationBounds)
	slot := ls.Intern("hot")
	allocs := testing.AllocsPerRun(1000, func() {
		cv.At(slot).Inc()
		cv.With("hot").Inc()
		cv.With("never-interned").Inc()
		hv.At(slot).Observe(12345)
		hv.With("hot").Observe(12345)
	})
	if allocs != 0 {
		t.Fatalf("labeled access allocated %.1f/op, want 0", allocs)
	}
}

// The registry's labeled families surface in snapshots under the same
// names as their aggregates, and deltas subtract label-wise.
func TestSnapshotLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	slot := r.Objects.Intern("ω")
	before := r.Snapshot()
	r.CommittedByObject.At(slot).Inc()
	r.CommittedByObject.At(slot).Inc()
	r.StepNsByObject[0].At(slot).Observe(777)
	delta := r.Snapshot().Sub(before)
	if got := delta.LabeledCounterValue("vupdate.updates.committed", "ω"); got != 2 {
		t.Fatalf("labeled committed delta = %d, want 2", got)
	}
	st := delta.LabeledHistogramValue("vupdate.step."+stepNames[0]+"_ns", "ω")
	if st.Count != 1 || st.Sum != 777 {
		t.Fatalf("labeled step delta = %+v", st)
	}

	var b strings.Builder
	if err := WriteText(&b, delta); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "vupdate.updates.committed{object=ω} 2") {
		t.Fatalf("WriteText missing labeled line:\n%s", b.String())
	}
}
