package obs

import "sync/atomic"

// Bucket layout shared by every histogram, so snapshots are comparable
// across metrics and across runs. Bounds are inclusive upper bounds; one
// implicit +Inf bucket follows the last bound.
var (
	// DurationBounds buckets latencies in nanoseconds: 1µs, 10µs, 100µs,
	// 1ms, 10ms, 100ms, 1s, +Inf.
	DurationBounds = []int64{1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000}
	// CountBounds buckets cardinalities (fan-out, generation lag):
	// 0, 1, 2, 4, 8, 16, 64, 256, 1024, +Inf.
	CountBounds = []int64{0, 1, 2, 4, 8, 16, 64, 256, 1024}
	// HTTPDurationBounds buckets request latencies in nanoseconds with
	// finer steps than the decade-wide DurationBounds, so the serving
	// tier's p99 (interpolated by HistogramStat.Quantile) is honest in
	// the sub-100ms range where HTTP SLOs live: 50µs, 100µs, 250µs,
	// 500µs, 1ms, 2.5ms, 5ms, 10ms, 25ms, 50ms, 100ms, 250ms, 1s, 10s,
	// +Inf.
	HTTPDurationBounds = []int64{
		50_000, 100_000, 250_000, 500_000,
		1_000_000, 2_500_000, 5_000_000, 10_000_000, 25_000_000, 50_000_000,
		100_000_000, 250_000_000, 1_000_000_000, 10_000_000_000,
	}
)

const (
	// nStripes spreads concurrent observers across cachelines. Must be a
	// power of two.
	nStripes = 8
	// maxBuckets bounds the per-stripe bucket array (len(bounds)+1 slots
	// used). Both bound sets above fit.
	maxBuckets = 16
)

// Histogram is a fixed-bound, striped histogram. Observations pick a
// stripe by mixing the observed value (latencies and cardinalities have
// effectively random low bits), so concurrent observers rarely contend
// on one cacheline; reads sum the stripes without taking any lock.
//
// Write ordering (bucket, then sum, then count) and read ordering (count
// first) are chosen so a concurrent snapshot can never observe
// count > Σbuckets: a reader that sees an incremented count is
// guaranteed to see the matching bucket increment too. After writers
// quiesce, count == Σbuckets exactly. The stress suite asserts both.
//
// Use NewHistogram (or Registry, which initializes its histograms);
// the zero value drops every observation into the first bucket.
type Histogram struct {
	bounds  []int64
	stripes [nStripes]stripe
}

// stripe is one shard of a histogram, padded to its own cachelines.
type stripe struct {
	count  atomic.Int64
	sum    atomic.Int64
	bucket [maxBuckets]atomic.Int64
	_      [64]byte
}

// NewHistogram creates a histogram over the given inclusive upper
// bounds (ascending; at most maxBuckets-1 entries).
func NewHistogram(bounds []int64) *Histogram {
	h := &Histogram{}
	h.init(bounds)
	return h
}

func (h *Histogram) init(bounds []int64) {
	if len(bounds) >= maxBuckets {
		panic("obs: too many histogram bounds")
	}
	h.bounds = bounds
}

// mix is splitmix64's finalizer: a cheap stateless value scrambler used
// for stripe selection.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	s := &h.stripes[mix(uint64(v))&(nStripes-1)]
	s.bucket[h.bucketIdx(v)].Add(1)
	s.sum.Add(v)
	s.count.Add(1)
}

// bucketIdx returns the index of the bucket v falls into.
func (h *Histogram) bucketIdx(v int64) int {
	for i, b := range h.bounds {
		if v <= b {
			return i
		}
	}
	return len(h.bounds) // +Inf bucket
}

// Count returns the total number of observations (reading each stripe
// atomically; see the ordering note on Histogram).
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.stripes {
		n += h.stripes[i].count.Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	var n int64
	for i := range h.stripes {
		n += h.stripes[i].sum.Load()
	}
	return n
}

// HistogramStat is a point-in-time copy of a histogram.
type HistogramStat struct {
	// Count and Sum aggregate every observation.
	Count, Sum int64
	// Bounds are the inclusive upper bounds; Buckets has len(Bounds)+1
	// entries, the last being the +Inf bucket.
	Bounds  []int64
	Buckets []int64
}

// Stat captures the histogram. Count is read before the buckets in each
// stripe, so under concurrent writers Count <= ΣBuckets; after writers
// quiesce the two are equal.
func (h *Histogram) Stat() HistogramStat {
	st := HistogramStat{
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.bounds)+1),
	}
	for i := range h.stripes {
		s := &h.stripes[i]
		st.Count += s.count.Load()
		st.Sum += s.sum.Load()
		for b := range st.Buckets {
			st.Buckets[b] += s.bucket[b].Load()
		}
	}
	return st
}

// Mean returns the average observed value (0 when empty).
func (st HistogramStat) Mean() float64 {
	if st.Count == 0 {
		return 0
	}
	return float64(st.Sum) / float64(st.Count)
}

// Quantile estimates the q-th quantile (0 < q <= 1) of the observed
// values from the bucket counts, interpolating linearly inside the
// bucket that contains the target rank. The estimate is bounded by the
// bucket edges, so it can never invent a value outside the bucket the
// rank landed in; within a bucket the error is at most the bucket's
// width. Ranks that land in the +Inf bucket report the last finite
// bound — the histogram cannot say more than "past the last edge". An
// empty stat reports 0.
func (st HistogramStat) Quantile(q float64) int64 {
	var total int64
	for _, n := range st.Buckets {
		total += n
	}
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range st.Buckets {
		if cum+n < target {
			cum += n
			continue
		}
		if i >= len(st.Bounds) {
			// +Inf bucket: clamp to the last finite edge.
			if len(st.Bounds) == 0 {
				return 0
			}
			return st.Bounds[len(st.Bounds)-1]
		}
		var lo int64
		if i > 0 {
			lo = st.Bounds[i-1]
		}
		hi := st.Bounds[i]
		// Position of the target rank inside this bucket, in (0, 1].
		frac := float64(target-cum) / float64(n)
		return lo + int64(frac*float64(hi-lo))
	}
	return st.Bounds[len(st.Bounds)-1]
}

// Sub returns the difference of two stats of the same histogram
// (bucket-wise; used for before/after deltas). Two shapes of prev are
// handled explicitly:
//
//   - A zero-value prev (nil Bounds and Buckets — e.g. the stat of a
//     metric absent from an older Snapshot) subtracts nothing: the
//     result equals st, bucket for bucket.
//   - A prev whose bucket shape differs from st's (a Snapshot taken
//     from a registry with different bounds) cannot be subtracted
//     bucket-wise; Sub subtracts Count and Sum only and keeps st's raw
//     buckets, leaving the caller a self-consistent stat of st's shape
//     rather than a silent partial subtraction.
//
// Pinned by TestHistogramStatSubShapes.
func (st HistogramStat) Sub(prev HistogramStat) HistogramStat {
	out := HistogramStat{
		Count:  st.Count - prev.Count,
		Sum:    st.Sum - prev.Sum,
		Bounds: st.Bounds,
	}
	out.Buckets = append([]int64(nil), st.Buckets...)
	if len(prev.Buckets) == 0 {
		return out // zero-value prev: nothing to subtract
	}
	if !sameBounds(st.Bounds, prev.Bounds) || len(st.Buckets) != len(prev.Buckets) {
		return out // shape mismatch: bucket-wise subtraction is meaningless
	}
	for i := range out.Buckets {
		out.Buckets[i] -= prev.Buckets[i]
	}
	return out
}

// sameBounds reports whether two bound sets describe the same bucket
// layout.
func sameBounds(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
