package obs

import (
	"sync/atomic"
	"time"
)

// Step indexes the four steps of the paper's §5 update pipeline. The
// vupdate algorithms time each step into Registry.StepNs.
type Step uint8

// §5 pipeline steps.
const (
	// StepLocalValidate is step 1: validating the request against the
	// view-object definition (instance lookup, connection checks).
	StepLocalValidate Step = iota
	// StepPropagate is step 2: propagation within the view object
	// (island key complements flowing down to island children).
	StepPropagate
	// StepTranslate is step 3: translating the request into primitive
	// database operations under the chosen translator.
	StepTranslate
	// StepGlobalValidate is step 4: validation against the structural
	// model (foreign-key maintenance, recursive dependency repair).
	StepGlobalValidate
	// NumSteps sizes per-step metric arrays.
	NumSteps
)

// stepNames are the snapshot key fragments, indexed by Step.
var stepNames = [NumSteps]string{"local_validate", "propagate", "translate", "global_validate"}

// String implements fmt.Stringer.
func (s Step) String() string {
	if s < NumSteps {
		return stepNames[s]
	}
	return "step?"
}

// NumOpKinds sizes per-operation metric arrays; the indices align with
// vupdate.OpKind (insert, delete, replace) — asserted by a vupdate test.
const NumOpKinds = 3

// opNames are the snapshot key fragments, indexed by vupdate.OpKind.
var opNames = [NumOpKinds]string{"insert", "delete", "replace"}

// Rejection-reason slugs, indexed by vupdate.Reason. obs owns the names
// so snapshots render without importing vupdate (which imports obs); a
// vupdate test asserts Reason.String() stays aligned with this table.
var rejectReasonNames = [...]string{
	"unknown",
	"no-instance",
	"translator-policy",
	"integrity",
	"ambiguous-key",
	"conflict",
}

// NumRejectReasons sizes the rejection counter array.
const NumRejectReasons = len(rejectReasonNames)

// RejectReasonName returns the slug for a rejection-reason index
// ("unknown" for out-of-range values).
func RejectReasonName(i int) string {
	if i < 0 || i >= NumRejectReasons {
		return rejectReasonNames[0]
	}
	return rejectReasonNames[i]
}

// Registry is the engine-wide metric set. All fields are safe for
// concurrent use; the engine packages write into the package-level
// Default registry. Construct extra registries with NewRegistry (tests).
type Registry struct {
	// reldb: transaction and snapshot metrics.
	Commits        Counter   // write transactions committed
	EmptyCommits   Counter   // commits that published no writes
	Rollbacks      Counter   // write transactions rolled back
	TxDoneHits     Counter   // operations attempted on a finished Tx/ReadTx
	RelationClones Counter   // copy-on-write relation clones
	ReadTxBegins   Counter   // read transactions opened
	CommitNs       Histogram // write-transaction latency, Begin→Commit
	ReadTxLag      Histogram // ReadTx generation lag observed at Close

	// viewobject: instantiation metrics.
	Instantiations Counter   // Instantiate / InstantiateByKey calls
	TuplesScanned  Counter   // stored tuples visited while assembling instances
	InstNodes      Counter   // instance nodes assembled
	BatchedLookups Counter   // level-at-a-time batched child fetches issued
	NodeFanOut     Histogram // components per (parent, child-node) pair
	LevelFanOut    Histogram // instance nodes per assembly level
	InstantiateNs  Histogram // instantiation latency

	// vupdate: §5 update-pipeline metrics.
	UpdatesCommitted Counter                   // translations that committed
	UpdatesRejected  Counter                   // translations that rolled back with a rejection
	StepNs           [NumSteps]Histogram       // per-step latency
	Ops              [NumOpKinds]Counter       // emitted DBOps by OpKind
	Rejects          [NumRejectReasons]Counter // rejections by Reason

	// keller: flat-view baseline metrics (for E-benchmark comparisons).
	KellerMaterializeNs Histogram // view materialization latency
	KellerTranslateNs   Histogram // flat-view update translation latency
	KellerOps           Counter   // primitive ops emitted by the baseline

	sink atomic.Pointer[sinkBox]
}

// sinkBox wraps a Sink so a nil interface and "no sink" are the same
// single atomic-pointer load on the hot path.
type sinkBox struct{ s Sink }

// NewRegistry creates a registry with every histogram initialized.
func NewRegistry() *Registry {
	r := &Registry{}
	r.CommitNs.init(DurationBounds)
	r.ReadTxLag.init(CountBounds)
	r.NodeFanOut.init(CountBounds)
	r.LevelFanOut.init(CountBounds)
	r.InstantiateNs.init(DurationBounds)
	for i := range r.StepNs {
		r.StepNs[i].init(DurationBounds)
	}
	r.KellerMaterializeNs.init(DurationBounds)
	r.KellerTranslateNs.init(DurationBounds)
	return r
}

// Default is the registry the engine packages write into.
var Default = NewRegistry()

// SetSink installs (or, with nil, removes) the trace sink.
func (r *Registry) SetSink(s Sink) {
	if s == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&sinkBox{s: s})
}

// Tracing reports whether a sink is installed. Hot paths check this
// before building an Event, so tracing costs one atomic load when off.
func (r *Registry) Tracing() bool { return r.sink.Load() != nil }

// Emit sends an event to the sink, if one is installed. Callers that
// format a Detail string should gate on Tracing() first to stay
// allocation-free when tracing is off.
func (r *Registry) Emit(ev Event) {
	if b := r.sink.Load(); b != nil {
		b.s.Emit(ev)
	}
}

// EmitSpan emits a span event for the interval [start, now). It is a
// convenience for call sites that already checked Tracing().
func (r *Registry) EmitSpan(name, detail string, start time.Time) {
	r.Emit(Event{Name: name, Detail: detail, Start: start, Dur: time.Since(start)})
}
