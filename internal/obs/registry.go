package obs

import (
	"sync/atomic"
	"time"
)

// Step indexes the four steps of the paper's §5 update pipeline. The
// vupdate algorithms time each step into Registry.StepNs.
type Step uint8

// §5 pipeline steps.
const (
	// StepLocalValidate is step 1: validating the request against the
	// view-object definition (instance lookup, connection checks).
	StepLocalValidate Step = iota
	// StepPropagate is step 2: propagation within the view object
	// (island key complements flowing down to island children).
	StepPropagate
	// StepTranslate is step 3: translating the request into primitive
	// database operations under the chosen translator.
	StepTranslate
	// StepGlobalValidate is step 4: validation against the structural
	// model (foreign-key maintenance, recursive dependency repair).
	StepGlobalValidate
	// NumSteps sizes per-step metric arrays.
	NumSteps
)

// stepNames are the snapshot key fragments, indexed by Step.
var stepNames = [NumSteps]string{"local_validate", "propagate", "translate", "global_validate"}

// String implements fmt.Stringer.
func (s Step) String() string {
	if s < NumSteps {
		return stepNames[s]
	}
	return "step?"
}

// NumOpKinds sizes per-operation metric arrays; the indices align with
// vupdate.OpKind (insert, delete, replace) — asserted by a vupdate test.
const NumOpKinds = 3

// opNames are the snapshot key fragments, indexed by vupdate.OpKind.
var opNames = [NumOpKinds]string{"insert", "delete", "replace"}

// Rejection-reason slugs, indexed by vupdate.Reason. obs owns the names
// so snapshots render without importing vupdate (which imports obs); a
// vupdate test asserts Reason.String() stays aligned with this table.
var rejectReasonNames = [...]string{
	"unknown",
	"no-instance",
	"translator-policy",
	"integrity",
	"ambiguous-key",
	"conflict",
}

// NumRejectReasons sizes the rejection counter array.
const NumRejectReasons = len(rejectReasonNames)

// RejectReasonName returns the slug for a rejection-reason index
// ("unknown" for out-of-range values).
func RejectReasonName(i int) string {
	if i < 0 || i >= NumRejectReasons {
		return rejectReasonNames[0]
	}
	return rejectReasonNames[i]
}

// Label-dimension capacities for the Default registry. Small on
// purpose: labels exist to attribute cost in mixed workloads, not to
// enumerate unbounded populations; overflow collapses into OtherLabel.
const (
	// ObjectLabelCap bounds distinct view-object names.
	ObjectLabelCap = 16
	// RelationLabelCap bounds distinct relation names.
	RelationLabelCap = 64
	// EndpointLabelCap bounds distinct serving-tier endpoint names.
	EndpointLabelCap = 16
	// ShardLabelCap bounds distinct shard indices (sharded clusters).
	ShardLabelCap = 16
)

// HTTP response status classes tallied by the serving tier. Shed
// requests (admission-control 429s) land in the 4xx class and in the
// dedicated shed counter.
const (
	Status2xx = iota
	Status3xx
	Status4xx
	Status5xx
	NumStatusClasses
)

// statusClassNames are the snapshot key fragments, indexed by class.
var statusClassNames = [NumStatusClasses]string{"2xx", "3xx", "4xx", "5xx"}

// StatusClass maps an HTTP status code to its class index. Codes below
// 200 (informational; the tier never emits them) and above 599 clamp
// into the nearest class.
func StatusClass(code int) int {
	switch {
	case code < 300:
		return Status2xx
	case code < 400:
		return Status3xx
	case code < 500:
		return Status4xx
	default:
		return Status5xx
	}
}

// DefaultReadTxLagAlert is the generation lag at which a closing ReadTx
// counts as a stale close (reldb.readtx.stale_closes) and emits a trace
// event. Tune with SetReadTxLagAlert; 0 disables.
const DefaultReadTxLagAlert = 64

// Registry is the engine-wide metric set. All fields are safe for
// concurrent use; the engine packages write into the package-level
// Default registry. Construct extra registries with NewRegistry (tests).
type Registry struct {
	// Label dimensions. Values are interned at registration time:
	// relation names when a schema is created (reldb.NewRelation),
	// view-object names when a definition is built
	// (viewobject.NewDefinition).
	Objects   *LabelSet // "object" — view-object names
	Relations *LabelSet // "relation" — base-relation names
	Endpoints *LabelSet // "endpoint" — serving-tier route names
	Shards    *LabelSet // "shard" — shard indices of a sharded cluster

	// reldb: transaction and snapshot metrics.
	Commits        Counter   // write transactions committed
	EmptyCommits   Counter   // commits that published no writes
	Rollbacks      Counter   // write transactions rolled back
	TxDoneHits     Counter   // operations attempted on a finished Tx/ReadTx
	RelationClones Counter   // copy-on-write relation clones
	ReadTxBegins   Counter   // read transactions opened
	StaleCloses    Counter   // ReadTx closes at or past the lag-alert threshold
	StaleForks     Counter   // ReadTx forks at or past the lag-alert threshold
	CommitNs       Histogram // write-transaction latency, Begin→Commit
	ReadTxLag      Histogram // ReadTx generation lag observed at Close and Fork

	// reldb: the per-commit delta stream (Database.Subscribe).
	DeltaSubscribes Counter // subscriptions registered
	DeltaPublishes  Counter // delta batches published to at least one subscriber
	DeltaOverflows  Counter // subscriber queues overflowed (drop-to-resync)

	// reldb: the write-ahead log. Appends count generation advances
	// logged (commits and DDL); the fsync count lags the append count
	// under load — that gap is group commit working. Replayed counts
	// records applied by recovery at OpenDatabase.
	WALAppends     Counter   // records appended to the log
	WALBytes       Counter   // bytes appended, framing included
	WALFsyncs      Counter   // fsyncs issued (one may acknowledge many commits)
	WALReplayed    Counter   // records replayed by recovery
	WALCheckpoints Counter   // checkpoints completed (snapshot + truncation)
	WALFsyncNs     Histogram // fsync latency

	// reldb: the same WAL families split by shard. Only databases opened
	// with a shard label (OpenOptions.ShardLabel — the members of a
	// sharded cluster) record here; an unsharded database reports only
	// into the unlabeled totals above, so these families do NOT partition
	// their aggregates the way the per-object families do.
	WALAppendsByShard     *CounterVec
	WALBytesByShard       *CounterVec
	WALFsyncsByShard      *CounterVec
	WALCheckpointsByShard *CounterVec

	// reldb: the two-shard commit protocol (sharded clusters). Prepares
	// count participants entering the prepared state; commits and aborts
	// count how each participant resolved (commits + aborts == prepares
	// at quiescence, recovery resolutions included).
	CrossPrepares Counter
	CrossCommits  Counter
	CrossAborts   Counter

	// reldb: per-relation lookup cost (MatchStats attribution). Each
	// MatchEqual-family lookup charges the relation that served it, so a
	// missing index shows up against the relation that pays for it.
	RelScanned *CounterVec // tuples visited, by relation
	RelProbes  *CounterVec // point lookups and index-bucket probes, by relation
	RelScans   *CounterVec // full-relation scan fallbacks, by relation

	// reldb: the per-generation lookup-plan cache. Every MatchEqual-family
	// call resolves its index selection through the cache exactly once, so
	// PlanCacheLookups == PlanCacheHits + PlanCacheMisses holds at every
	// quiescent point (asserted by the stress suite). Discarded plans are
	// split by cause so hit-rate dashboards can attribute churn: explicit
	// index DDL purges count as invalidations, warm plans left behind when
	// a write transaction clones a relation for the next generation (the
	// clone starts cold — that *is* the invalidation mechanism) count as
	// clone drops.
	PlanCacheLookups       Counter // MatchEqual-family calls that consulted the cache
	PlanCacheHits          Counter // plans served from the cache
	PlanCacheMisses        Counter // plans resolved and cached
	PlanCacheInvalidations Counter // cached plans purged by index DDL
	PlanCacheCloneDrops    Counter // warm plans left behind by a copy-on-write clone

	// viewobject: instantiation metrics.
	Instantiations Counter   // Instantiate / InstantiateByKey calls
	TuplesScanned  Counter   // stored tuples visited while assembling instances
	InstNodes      Counter   // instance nodes assembled
	BatchedLookups Counter   // level-at-a-time batched child fetches issued
	NodeFanOut     Histogram // components per (parent, child-node) pair
	LevelFanOut    Histogram // instance nodes per assembly level
	InstantiateNs  Histogram // instantiation latency

	// viewobject: parallel instantiation. Workers and chunks count per
	// fan-out (a sequential call adds to neither); ParallelNs times only
	// the calls that actually fanned out, so it partitions a subset of
	// InstantiateNs observations rather than all of them.
	ParallelWorkers       Counter   // worker goroutines launched by parallel fan-outs
	ParallelChunks        Counter   // pivot chunks dispatched to workers
	ParallelSteals        Counter   // level fan-outs split across idle workers (work stealing)
	InstantiateParallelNs Histogram // latency of instantiations that fanned out

	// viewobject: the materialized view-object cache (Materializer).
	// Every MaterializedInstantiate serve increments exactly one of
	// hits/misses/fallbacks/resyncs; patches counts per-instance patch
	// operations (rebuilds and drops) applied while serving hits.
	MatHits      Counter   // serves answered from the patched cache
	MatMisses    Counter   // serves that built the cache cold
	MatPatches   Counter   // instances patched (rebuilt or dropped) from deltas
	MatFallbacks Counter   // serves that re-instantiated (structural/unlocalizable delta)
	MatResyncs   Counter   // serves that re-instantiated after a delta-stream overflow
	MatPatchNs   Histogram // latency of applying pending deltas to the cache

	// viewobject: the same instantiation metrics split by view object.
	// Each labeled family partitions its aggregate exactly: every
	// increment lands in some slot (the overflow slot catches names past
	// ObjectLabelCap), so summing a family over its labels reproduces the
	// aggregate counter above.
	InstCallsByObject             *CounterVec
	InstTuplesByObject            *CounterVec
	InstNodesByObject             *CounterVec
	InstantiateNsByObject         *HistogramVec
	InstantiateParallelNsByObject *HistogramVec

	// vupdate: §5 update-pipeline metrics.
	UpdatesCommitted Counter                   // translations that committed
	UpdatesRejected  Counter                   // translations that rolled back with a rejection
	StepNs           [NumSteps]Histogram       // per-step latency
	Ops              [NumOpKinds]Counter       // emitted DBOps by OpKind
	Rejects          [NumRejectReasons]Counter // rejections by Reason

	// vupdate: the same pipeline metrics split by view object.
	CommittedByObject *CounterVec
	RejectedByObject  *CounterVec
	StepNsByObject    [NumSteps]*HistogramVec
	OpsByObject       [NumOpKinds]*CounterVec
	RejectsByObject   [NumRejectReasons]*CounterVec

	// serve: the HTTP serving tier (penguin -serve). Requests counts
	// requests admitted past admission control; Shed counts requests
	// refused with a fast 429 because the in-flight bound was full — so
	// Requests + Shed is the offered load. The latency histogram times
	// admitted requests only (a shed costs microseconds by design), and
	// the status-class counters tally every response written, sheds
	// included (a shed is a 4xx). Labeled families partition their
	// aggregates by endpoint, overflow slot included.
	HTTPRequests           Counter
	HTTPShed               Counter
	HTTPNs                 Histogram
	HTTPRequestsByEndpoint *CounterVec
	HTTPShedByEndpoint     *CounterVec
	HTTPNsByEndpoint       *HistogramVec
	HTTPStatus             [NumStatusClasses]Counter
	HTTPStatusByEndpoint   [NumStatusClasses]*CounterVec

	// workload: the open-loop load generator (client side of the serving
	// tier). Sent counts requests issued on the arrival schedule; Shed
	// counts 429 responses observed; Errors counts transport failures
	// and 5xx responses. The latency histogram records client-observed
	// request latency (send → last body byte), split by endpoint.
	OpenLoopSent         Counter
	OpenLoopShed         Counter
	OpenLoopErrors       Counter
	OpenLoopNs           Histogram
	OpenLoopNsByEndpoint *HistogramVec

	// keller: flat-view baseline metrics (for E-benchmark comparisons).
	KellerMaterializeNs Histogram // view materialization latency
	KellerTranslateNs   Histogram // flat-view update translation latency
	KellerOps           Counter   // primitive ops emitted by the baseline

	// obs: the flight recorder's own accounting. Captured counts ops
	// retained as slow traces; dropped counts retained traces later
	// evicted by the recorder ring's capacity.
	SlowTraceCaptured Counter
	SlowTraceDropped  Counter

	lagAlert atomic.Int64
	sink     atomic.Pointer[sinkBox]
	recorder atomic.Pointer[Recorder]
	opSeq    atomic.Uint64 // span/trace ID allocator (trace ID = root span ID)
}

// sinkBox wraps a Sink so a nil interface and "no sink" are the same
// single atomic-pointer load on the hot path.
type sinkBox struct{ s Sink }

// NewRegistry creates a registry with every histogram, label dimension,
// and labeled family initialized.
func NewRegistry() *Registry {
	r := &Registry{
		Objects:   NewLabelSet("object", ObjectLabelCap),
		Relations: NewLabelSet("relation", RelationLabelCap),
		Endpoints: NewLabelSet("endpoint", EndpointLabelCap),
		Shards:    NewLabelSet("shard", ShardLabelCap),
	}
	r.CommitNs.init(DurationBounds)
	r.ReadTxLag.init(CountBounds)
	r.WALFsyncNs.init(DurationBounds)
	r.NodeFanOut.init(CountBounds)
	r.LevelFanOut.init(CountBounds)
	r.InstantiateNs.init(DurationBounds)
	r.InstantiateParallelNs.init(DurationBounds)
	r.MatPatchNs.init(DurationBounds)
	for i := range r.StepNs {
		r.StepNs[i].init(DurationBounds)
	}
	r.KellerMaterializeNs.init(DurationBounds)
	r.KellerTranslateNs.init(DurationBounds)
	r.HTTPNs.init(HTTPDurationBounds)
	r.OpenLoopNs.init(HTTPDurationBounds)

	r.HTTPRequestsByEndpoint = NewCounterVec(r.Endpoints)
	r.HTTPShedByEndpoint = NewCounterVec(r.Endpoints)
	r.HTTPNsByEndpoint = NewHistogramVec(r.Endpoints, HTTPDurationBounds)
	for i := range r.HTTPStatusByEndpoint {
		r.HTTPStatusByEndpoint[i] = NewCounterVec(r.Endpoints)
	}
	r.OpenLoopNsByEndpoint = NewHistogramVec(r.Endpoints, HTTPDurationBounds)

	r.RelScanned = NewCounterVec(r.Relations)
	r.RelProbes = NewCounterVec(r.Relations)
	r.RelScans = NewCounterVec(r.Relations)

	r.WALAppendsByShard = NewCounterVec(r.Shards)
	r.WALBytesByShard = NewCounterVec(r.Shards)
	r.WALFsyncsByShard = NewCounterVec(r.Shards)
	r.WALCheckpointsByShard = NewCounterVec(r.Shards)

	r.InstCallsByObject = NewCounterVec(r.Objects)
	r.InstTuplesByObject = NewCounterVec(r.Objects)
	r.InstNodesByObject = NewCounterVec(r.Objects)
	r.InstantiateNsByObject = NewHistogramVec(r.Objects, DurationBounds)
	r.InstantiateParallelNsByObject = NewHistogramVec(r.Objects, DurationBounds)

	r.CommittedByObject = NewCounterVec(r.Objects)
	r.RejectedByObject = NewCounterVec(r.Objects)
	for i := range r.StepNsByObject {
		r.StepNsByObject[i] = NewHistogramVec(r.Objects, DurationBounds)
	}
	for i := range r.OpsByObject {
		r.OpsByObject[i] = NewCounterVec(r.Objects)
	}
	for i := range r.RejectsByObject {
		r.RejectsByObject[i] = NewCounterVec(r.Objects)
	}

	r.lagAlert.Store(DefaultReadTxLagAlert)
	return r
}

// SetReadTxLagAlert sets the generation-lag threshold at which a closing
// ReadTx counts as stale (n <= 0 disables the alert) and returns the
// previous threshold.
func (r *Registry) SetReadTxLagAlert(n int64) int64 { return r.lagAlert.Swap(n) }

// ReadTxLagAlert returns the current stale-close threshold (0 when
// disabled).
func (r *Registry) ReadTxLagAlert() int64 { return r.lagAlert.Load() }

// Default is the registry the engine packages write into.
var Default = NewRegistry()

// SetSink installs (or, with nil, removes) the trace sink.
func (r *Registry) SetSink(s Sink) {
	if s == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&sinkBox{s: s})
}

// Tracing reports whether a sink is installed. Hot paths check this
// before building an Event, so tracing costs one atomic load when off.
func (r *Registry) Tracing() bool { return r.sink.Load() != nil }

// Emit sends an event to the sink, if one is installed. Callers that
// format a Detail string should gate on Tracing() first to stay
// allocation-free when tracing is off.
func (r *Registry) Emit(ev Event) {
	if b := r.sink.Load(); b != nil {
		b.s.Emit(ev)
	}
}

// EmitSpan emits a span event for the interval [start, now). It is a
// convenience for call sites that already checked Tracing().
func (r *Registry) EmitSpan(name, detail string, start time.Time) {
	r.Emit(Event{Name: name, Detail: detail, Start: start, Dur: time.Since(start)})
}
