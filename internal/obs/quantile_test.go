package obs

import (
	"context"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]int64{100, 200, 400})
	// 100 observations spread uniformly through the 100-200 bucket.
	for i := 0; i < 100; i++ {
		h.Observe(101 + int64(i))
	}
	st := h.Stat()
	if got := st.Quantile(0.5); got < 140 || got > 160 {
		t.Errorf("p50 = %d, want ~150 (inside the 100-200 bucket)", got)
	}
	if got := st.Quantile(1.0); got != 200 {
		t.Errorf("p100 = %d, want the bucket's upper edge 200", got)
	}
	if got := st.Quantile(0.01); got <= 100 || got > 200 {
		t.Errorf("p1 = %d, want inside (100, 200]", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistogramStat
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
	h := NewHistogram([]int64{10, 20})
	h.Observe(1_000) // lands in +Inf
	st := h.Stat()
	if got := st.Quantile(0.99); got != 20 {
		t.Errorf("+Inf-bucket quantile = %d, want clamp to last bound 20", got)
	}
	if got := st.Quantile(0); got != 0 {
		t.Errorf("q=0 = %d, want 0", got)
	}
	if got := st.Quantile(2); got != 20 {
		t.Errorf("q>1 clamps to max, got %d want 20", got)
	}
}

// TestHTTPServerShutdownDrains pins the lifecycle fix: closing the old
// bare listener killed in-flight scrapes; Shutdown must let an active
// request finish while refusing new connections.
func TestHTTPServerShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	srv, err := ServeHandler(":0", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		once.Do(func() { close(entered) })
		<-release
		io.WriteString(w, "drained")
	}))
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr().String() + "/")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{body: string(b), err: err}
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Shutdown must wait for the in-flight request, not kill it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-got
	if r.err != nil || r.body != "drained" {
		t.Fatalf("in-flight request = %q, %v; want full response", r.body, r.err)
	}
	// The listener is gone: new connections fail.
	if _, err := http.Get("http://" + srv.Addr().String() + "/"); err == nil {
		t.Error("request after Shutdown succeeded, want connection failure")
	}
}

func TestHardenedServerTimeouts(t *testing.T) {
	srv := HardenedServer(http.NotFoundHandler())
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Errorf("hardened server missing timeouts: %+v", srv)
	}
	if srv.WriteTimeout != 0 {
		t.Errorf("WriteTimeout = %v, want 0 (pprof profile streams 30s)", srv.WriteTimeout)
	}
}
