package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Event is one trace record: a named span of the update pipeline (or a
// point event with zero duration) with a small preformatted detail.
type Event struct {
	// Seq is the global emission order (1-based), assigned by the ring.
	Seq uint64
	// Name is the dotted event name, e.g. "vupdate.step.translate".
	Name string
	// Detail is a short preformatted description.
	Detail string
	// Start is when the span began.
	Start time.Time
	// Dur is the span duration (0 for point events).
	Dur time.Duration
}

// String renders one trace line.
func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("#%-6d %-28s %10s", e.Seq, e.Name, e.Dur)
	}
	return fmt.Sprintf("#%-6d %-28s %10s  %s", e.Seq, e.Name, e.Dur, e.Detail)
}

// Sink receives trace events. Implementations must be safe for
// concurrent use. The nil default (no sink installed on a Registry)
// keeps instrumented hot paths allocation-free: callers gate event
// construction behind Registry.Tracing().
type Sink interface {
	Emit(Event)
}

// Ring is a fixed-size trace ring buffer implementing Sink. Writers
// claim a slot with one atomic increment and publish the event with one
// atomic pointer store; readers load the pointers without any lock, so
// neither side ever blocks the other. A reader racing a wrapping writer
// simply observes the newer event (slots are published whole).
type Ring struct {
	seq   atomic.Uint64
	slots []atomic.Pointer[Event]
}

// NewRing creates a ring holding the last size events.
func NewRing(size int) *Ring {
	if size < 1 {
		size = 1
	}
	return &Ring{slots: make([]atomic.Pointer[Event], size)}
}

// Emit implements Sink.
func (r *Ring) Emit(ev Event) {
	seq := r.seq.Add(1)
	ev.Seq = seq
	r.slots[int((seq-1)%uint64(len(r.slots)))].Store(&ev)
}

// Len returns the number of events emitted so far (not the number
// retained, which is capped at the ring size).
func (r *Ring) Len() uint64 { return r.seq.Load() }

// Last returns up to n retained events, oldest first. It is lock-free:
// events overwritten while reading are skipped.
func (r *Ring) Last(n int) []Event {
	if n < 1 {
		return nil
	}
	if n > len(r.slots) {
		n = len(r.slots)
	}
	head := r.seq.Load()
	lo := uint64(1)
	if head > uint64(n) {
		lo = head - uint64(n) + 1
	}
	out := make([]Event, 0, n)
	for s := lo; s <= head; s++ {
		ev := r.slots[int((s-1)%uint64(len(r.slots)))].Load()
		// A slot may hold an older or newer event than s if a writer is
		// lapping the reader; keep only the event actually numbered s.
		if ev != nil && ev.Seq == s {
			out = append(out, *ev)
		}
	}
	return out
}
