package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Event is one trace record: a named span of the update pipeline (or a
// point event with zero duration) with a small preformatted detail.
// Events emitted through an Op additionally carry causal identity —
// which operation they belong to (TraceID) and where they sit in its
// span tree (SpanID/ParentID); flat events emitted directly leave all
// three zero.
type Event struct {
	// Seq is the global emission order (1-based), assigned by the ring.
	Seq uint64
	// Name is the dotted event name, e.g. "vupdate.step.translate".
	Name string
	// Detail is a short preformatted description.
	Detail string
	// Start is when the span began.
	Start time.Time
	// Dur is the span duration (0 for point events).
	Dur time.Duration
	// TraceID identifies the operation this span belongs to (the root
	// span's SpanID). Zero for flat events emitted outside any Op.
	TraceID uint64
	// SpanID identifies this span within its trace.
	SpanID uint64
	// ParentID is the SpanID of the enclosing span (0 for a root span
	// and for flat events).
	ParentID uint64
}

// End returns when the span finished (Start for point events).
func (e Event) End() time.Time { return e.Start.Add(e.Dur) }

// String renders one trace line. Causal events append a compact
// trace/span/parent suffix so .trace output shows which operation each
// span belongs to.
func (e Event) String() string {
	s := fmt.Sprintf("#%-6d %-28s %10s", e.Seq, e.Name, e.Dur)
	if e.Detail != "" {
		s += "  " + e.Detail
	}
	if e.TraceID != 0 {
		if e.ParentID != 0 {
			s += fmt.Sprintf(" (t=%d s=%d p=%d)", e.TraceID, e.SpanID, e.ParentID)
		} else {
			s += fmt.Sprintf(" (t=%d s=%d)", e.TraceID, e.SpanID)
		}
	}
	return s
}

// Sink receives trace events. Implementations must be safe for
// concurrent use. The nil default (no sink installed on a Registry)
// keeps instrumented hot paths allocation-free: callers gate event
// construction behind Registry.Tracing().
type Sink interface {
	Emit(Event)
}

// Ring is a fixed-size trace ring buffer implementing Sink. Writers
// claim a slot with one atomic increment and publish the event with one
// atomic pointer store; readers load the pointers without any lock, so
// neither side ever blocks the other. A reader racing a wrapping writer
// simply observes the newer event (slots are published whole).
type Ring struct {
	seq   atomic.Uint64
	slots []atomic.Pointer[Event]
}

// NewRing creates a ring holding the last size events.
func NewRing(size int) *Ring {
	if size < 1 {
		size = 1
	}
	return &Ring{slots: make([]atomic.Pointer[Event], size)}
}

// Emit implements Sink.
func (r *Ring) Emit(ev Event) {
	seq := r.seq.Add(1)
	ev.Seq = seq
	r.slots[int((seq-1)%uint64(len(r.slots)))].Store(&ev)
}

// Len returns the number of events emitted so far (not the number
// retained, which is capped at the ring size).
func (r *Ring) Len() uint64 { return r.seq.Load() }

// Last returns up to n retained events, oldest first. It is lock-free:
// events overwritten while reading are skipped.
func (r *Ring) Last(n int) []Event {
	if n < 1 {
		return nil
	}
	if n > len(r.slots) {
		n = len(r.slots)
	}
	head := r.seq.Load()
	lo := uint64(1)
	if head > uint64(n) {
		lo = head - uint64(n) + 1
	}
	out := make([]Event, 0, n)
	for s := lo; s <= head; s++ {
		ev := r.slots[int((s-1)%uint64(len(r.slots)))].Load()
		// A slot may hold an older or newer event than s if a writer is
		// lapping the reader; keep only the event actually numbered s.
		if ev != nil && ev.Seq == s {
			out = append(out, *ev)
		}
	}
	return out
}
