package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// treeRegistry builds a fresh registry with a flight recorder installed
// (threshold 0: retain every completed op).
func treeRegistry(capacity int) (*Registry, *Recorder) {
	r := NewRegistry()
	rec := NewRecorder(0, capacity)
	r.SetRecorder(rec)
	return r, rec
}

func TestOpSpanTreeConnected(t *testing.T) {
	r, rec := treeRegistry(4)

	op := r.StartOp("update")
	if !op.Active() {
		t.Fatal("op should be active with a recorder installed")
	}
	if op.TraceID() == 0 || op.TraceID() != op.SpanID() {
		t.Fatalf("root identity: trace=%d span=%d", op.TraceID(), op.SpanID())
	}

	step := op.Child("step.translate")
	if step.TraceID() != op.TraceID() {
		t.Fatalf("child trace %d, want %d", step.TraceID(), op.TraceID())
	}
	// A grandchild copied to another goroutine still joins the tree.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		step.Child("chunk").Finish("chunk=0")
	}()
	wg.Wait()
	step.Finish("object=omega")
	op.Span("commit.publish", "gen=2", op.Start(), time.Since(op.Start()))
	op.Finish("ops=3")

	traces := rec.Traces()
	if len(traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tr.Name != "update" || tr.Detail != "ops=3" {
		t.Errorf("root = %q/%q", tr.Name, tr.Detail)
	}
	if len(tr.Spans) != 4 {
		t.Fatalf("captured %d spans, want 4", len(tr.Spans))
	}
	if got := r.SlowTraceCaptured.Load(); got != 1 {
		t.Errorf("SlowTraceCaptured = %d, want 1", got)
	}

	rendered := tr.Render()
	for _, want := range []string{"update", "step.translate", "chunk", "commit.publish"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("Render missing %q:\n%s", want, rendered)
		}
	}
	// The chunk line must be indented deeper than its parent step.
	stepLine, chunkLine := "", ""
	for _, line := range strings.Split(rendered, "\n") {
		if strings.Contains(line, "step.translate") {
			stepLine = line
		}
		if strings.Contains(line, "chunk=0") {
			chunkLine = line
		}
	}
	if stepLine == "" || chunkLine == "" {
		t.Fatalf("missing lines in render:\n%s", rendered)
	}
	indent := func(s string) int { return len(s) - len(strings.TrimLeft(s, " ")) }
	if indent(chunkLine) <= indent(stepLine) {
		t.Errorf("chunk not nested under step:\n%s", rendered)
	}
}

func TestOpInactiveWithoutSinkOrRecorder(t *testing.T) {
	r := NewRegistry()
	op := r.StartOp("noop")
	if op.Active() {
		t.Fatal("op should be inactive with neither sink nor recorder")
	}
	// Every method is a safe no-op on the zero value.
	child := op.Child("x")
	child.Finish("")
	op.Span("y", "", time.Now(), time.Second)
	op.Point("z", "")
	op.Finish("")
	if r.opSeq.Load() != 0 {
		t.Errorf("inactive ops consumed %d span ids", r.opSeq.Load())
	}
}

func TestOpZeroAllocationsWhenOff(t *testing.T) {
	r := NewRegistry()
	allocs := testing.AllocsPerRun(100, func() {
		op := r.StartOp("update")
		step := op.Child("step")
		step.Finish("")
		op.Finish("")
	})
	if allocs != 0 {
		t.Errorf("op lifecycle allocated %.1f objects/op when off, want 0", allocs)
	}
}

func TestRecorderThresholdDiscardsFastOps(t *testing.T) {
	r := NewRegistry()
	rec := NewRecorder(10*time.Millisecond, 4)
	r.SetRecorder(rec)

	// Fast op: finishes immediately, far under the threshold.
	r.StartOp("fast").Finish("")
	if got := rec.Traces(); len(got) != 0 {
		t.Fatalf("fast op retained: %v", got)
	}
	if got := r.SlowTraceCaptured.Load(); got != 0 {
		t.Errorf("SlowTraceCaptured = %d after fast op", got)
	}

	// Slow op: a backdated start makes the root span exceed the threshold.
	r.StartOpAt("slow", time.Now().Add(-20*time.Millisecond)).Finish("d")
	traces := rec.Traces()
	if len(traces) != 1 || traces[0].Name != "slow" {
		t.Fatalf("slow op not retained: %v", traces)
	}
	if traces[0].Dur < 10*time.Millisecond {
		t.Errorf("retained Dur = %s", traces[0].Dur)
	}
	if got := r.SlowTraceCaptured.Load(); got != 1 {
		t.Errorf("SlowTraceCaptured = %d, want 1", got)
	}

	// Raising the threshold applies to ops judged afterwards.
	if prev := rec.SetThreshold(time.Hour); prev != 10*time.Millisecond {
		t.Errorf("SetThreshold returned %s", prev)
	}
	r.StartOpAt("now-fast", time.Now().Add(-20*time.Millisecond)).Finish("")
	if got := rec.Traces(); len(got) != 1 {
		t.Errorf("op retained despite raised threshold: %v", got)
	}
}

func TestRecorderRingEvictionCountsDropped(t *testing.T) {
	r, rec := treeRegistry(2)
	for _, name := range []string{"a", "b", "c"} {
		r.StartOp(name).Finish("")
	}
	traces := rec.Traces()
	if len(traces) != 2 {
		t.Fatalf("retained %d traces, want 2", len(traces))
	}
	if traces[0].Name != "b" || traces[1].Name != "c" {
		t.Errorf("retained %q/%q, want b/c (oldest evicted)", traces[0].Name, traces[1].Name)
	}
	if got := r.SlowTraceCaptured.Load(); got != 3 {
		t.Errorf("SlowTraceCaptured = %d, want 3", got)
	}
	if got := r.SlowTraceDropped.Load(); got != 1 {
		t.Errorf("SlowTraceDropped = %d, want 1", got)
	}

	if _, ok := rec.Trace(traces[1].TraceID); !ok {
		t.Error("Trace(id) did not find a retained trace")
	}
	rec.Clear()
	if got := rec.Traces(); len(got) != 0 {
		t.Errorf("Clear left %d traces", len(got))
	}
}

func TestRecorderSpanCapTruncates(t *testing.T) {
	r, rec := treeRegistry(1)
	op := r.StartOp("big")
	for i := 0; i < DefaultRecorderSpanCap+5; i++ {
		op.Span("leaf", "", op.Start(), 0)
	}
	op.Finish("")
	traces := rec.Traces()
	if len(traces) != 1 {
		t.Fatalf("retained %d traces", len(traces))
	}
	// The root seals the buffer after the cap is hit, so the cap counts
	// the leaves plus the root overflowing.
	if got := traces[0].TruncatedSpans; got != 6 {
		t.Errorf("TruncatedSpans = %d, want 6", got)
	}
	if len(traces[0].Spans) != DefaultRecorderSpanCap {
		t.Errorf("captured %d spans, want %d", len(traces[0].Spans), DefaultRecorderSpanCap)
	}
}

func TestOpEmitsToSinkWithCausalIdentity(t *testing.T) {
	r := NewRegistry()
	ring := NewRing(16)
	r.SetSink(ring)

	op := r.StartOp("update")
	op.Child("step").Finish("detail")
	op.Finish("done")

	events := ring.Last(16)
	if len(events) != 2 {
		t.Fatalf("sink saw %d events, want 2", len(events))
	}
	child, root := events[0], events[1]
	if child.TraceID != root.SpanID || child.ParentID != root.SpanID {
		t.Errorf("child identity: %+v vs root %+v", child, root)
	}
	if !strings.Contains(child.String(), "t=") || !strings.Contains(child.String(), "p=") {
		t.Errorf("child String lacks causal suffix: %s", child.String())
	}
	if strings.Contains(root.String(), "p=") {
		t.Errorf("root String shows a parent: %s", root.String())
	}
}

func TestSlowTraceValidateRejectsMalformedTrees(t *testing.T) {
	now := time.Now()
	root := Event{Name: "r", Start: now, Dur: 10 * time.Millisecond, TraceID: 1, SpanID: 1}
	child := Event{Name: "c", Start: now.Add(time.Millisecond), Dur: time.Millisecond,
		TraceID: 1, SpanID: 2, ParentID: 1}

	cases := []struct {
		name  string
		trace SlowTrace
		want  string
	}{
		{"empty", SlowTrace{TraceID: 1}, "no spans"},
		{"foreign trace id", SlowTrace{TraceID: 1, Spans: []Event{
			root, {Name: "x", TraceID: 9, SpanID: 3, ParentID: 1, Start: now}}}, "carries trace"},
		{"zero span id", SlowTrace{TraceID: 1, Spans: []Event{
			root, {Name: "x", TraceID: 1, ParentID: 1, Start: now}}}, "no id"},
		{"duplicate span id", SlowTrace{TraceID: 1, Spans: []Event{root, root}}, "duplicate"},
		{"two roots", SlowTrace{TraceID: 1, Spans: []Event{
			root, {Name: "x", TraceID: 1, SpanID: 2, Start: now}}}, "root spans"},
		{"unresolvable parent", SlowTrace{TraceID: 1, Spans: []Event{
			root, {Name: "x", TraceID: 1, SpanID: 2, ParentID: 7, Start: now}}}, "unresolvable"},
		{"child outside parent", SlowTrace{TraceID: 1, Spans: []Event{
			root, {Name: "x", TraceID: 1, SpanID: 2, ParentID: 1,
				Start: now.Add(-time.Millisecond)}}}, "outside parent"},
		{"ok", SlowTrace{TraceID: 1, Spans: []Event{root, child}}, ""},
	}
	for _, tc := range cases {
		err := tc.trace.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestRingLapNeverYieldsMisnumberedEvents stresses the documented lap
// invariant of Ring.Last: a reader racing a wrapping writer only ever
// observes events whose slot still holds the sequence number it claims —
// no duplicates, no torn or mis-numbered slots. The writer encodes each
// event's expected sequence in Dur so the reader can cross-check.
func TestRingLapNeverYieldsMisnumberedEvents(t *testing.T) {
	const (
		slots  = 8
		events = 100000
	)
	ring := NewRing(slots)
	done := make(chan struct{})

	go func() {
		defer close(done)
		for i := 1; i <= events; i++ {
			// Emit assigns Seq = i; mirror it in Dur for verification.
			ring.Emit(Event{Name: "lap", Dur: time.Duration(i)})
		}
	}()

	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		got := ring.Last(slots)
		var prev uint64
		for _, ev := range got {
			if ev.Seq <= prev {
				t.Fatalf("non-increasing Seq %d after %d: %v", ev.Seq, prev, got)
			}
			prev = ev.Seq
			if int64(ev.Dur) != int64(ev.Seq) {
				t.Fatalf("slot for seq %d holds payload %d (mis-numbered event)",
					ev.Seq, int64(ev.Dur))
			}
		}
	}

	// After the writer stops the last full window must be intact.
	got := ring.Last(slots)
	if len(got) != slots {
		t.Fatalf("final window has %d events, want %d", len(got), slots)
	}
	if got[len(got)-1].Seq != events {
		t.Errorf("final Seq = %d, want %d", got[len(got)-1].Seq, events)
	}
}
