package obs

import "runtime"

// Go runtime health gauges, sampled at snapshot time (Registry.Snapshot
// / Capture) — there is no background sampling goroutine, so an idle
// process costs nothing and every scrape reflects the instant it was
// taken. The values are point-in-time levels, not monotone counts;
// Snapshot.Sub keeps the newer snapshot's values untouched.
const (
	// GaugeGoroutines is the live goroutine count.
	GaugeGoroutines = "runtime.goroutines"
	// GaugeHeapInuse is the heap memory in use, in bytes (spans with at
	// least one live object).
	GaugeHeapInuse = "runtime.heap_inuse_bytes"
	// GaugeGCPauseTotal is the cumulative stop-the-world GC pause, in
	// nanoseconds, since process start.
	GaugeGCPauseTotal = "runtime.gc.pause_total_ns"
	// GaugeGCCycles is the number of completed GC cycles since process
	// start.
	GaugeGCCycles = "runtime.gc.cycles"
)

// runtimeGaugeNames lists every runtime gauge a snapshot carries, for
// validators that assert the families are present.
var runtimeGaugeNames = []string{
	GaugeGoroutines, GaugeHeapInuse, GaugeGCPauseTotal, GaugeGCCycles,
}

// RuntimeGaugeNames returns the gauge names every snapshot carries.
func RuntimeGaugeNames() []string {
	out := make([]string, len(runtimeGaugeNames))
	copy(out, runtimeGaugeNames)
	return out
}

// sampleRuntimeGauges reads the runtime once. ReadMemStats briefly
// stops the world, which is acceptable at scrape/snapshot frequency.
func sampleRuntimeGauges() map[string]int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return map[string]int64{
		GaugeGoroutines:   int64(runtime.NumGoroutine()),
		GaugeHeapInuse:    int64(ms.HeapInuse),
		GaugeGCPauseTotal: int64(ms.PauseTotalNs),
		GaugeGCCycles:     int64(ms.NumGC),
	}
}
