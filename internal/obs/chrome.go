package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace-event JSON export: any SlowTrace captured by the flight
// recorder opens in chrome://tracing or Perfetto (ui.perfetto.dev).
//
// Each span becomes one complete ("ph":"X") event. Timestamps are
// microseconds relative to the earliest root start across the exported
// traces, so the viewer's time axis starts at zero. Every trace gets
// its own pid; within a trace, spans are laid out onto tids by greedy
// interval coloring — each span takes the lowest lane whose previous
// occupant has already ended — so overlapping spans (a parent and its
// children, or parallel chunk workers) always render on separate rows.

// chromeEvent is one trace-event object, per the Trace Event Format
// ("X" = complete event with an explicit duration).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // µs since export epoch
	Dur  float64        `json:"dur"` // µs
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON Object Format wrapper.
type chromeFile struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteChromeTrace writes the traces as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, traces []SlowTrace) error {
	f := chromeFile{
		TraceEvents:     []chromeEvent{}, // never null, even with no traces
		DisplayTimeUnit: "ms",
	}
	// Export epoch: the earliest span start across all traces.
	var epochSet bool
	var epoch int64
	for _, tr := range traces {
		for _, s := range tr.Spans {
			if ns := s.Start.UnixNano(); !epochSet || ns < epoch {
				epoch, epochSet = ns, true
			}
		}
	}
	for i, tr := range traces {
		f.TraceEvents = append(f.TraceEvents, chromeSpans(tr, i+1, epoch)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// chromeSpans lays one trace's spans out into events on lanes.
func chromeSpans(tr SlowTrace, pid int, epoch int64) []chromeEvent {
	spans := make([]Event, len(tr.Spans))
	copy(spans, tr.Spans)
	// Lay out in start order; ties broken depth-first by span id so a
	// parent claims its lane before its same-instant children.
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start.Equal(spans[j].Start) {
			return spans[i].SpanID < spans[j].SpanID
		}
		return spans[i].Start.Before(spans[j].Start)
	})
	var laneEnds []int64 // per-lane end time, ns
	out := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		startNs, endNs := s.Start.UnixNano(), s.End().UnixNano()
		lane := -1
		for l, end := range laneEnds {
			if end <= startNs {
				lane = l
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnds)
			laneEnds = append(laneEnds, 0)
		}
		laneEnds[lane] = endNs
		args := map[string]any{
			"trace":  s.TraceID,
			"span":   s.SpanID,
			"parent": s.ParentID,
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		out = append(out, chromeEvent{
			Name: s.Name,
			Cat:  "penguin",
			Ph:   "X",
			Ts:   float64(startNs-epoch) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			Pid:  pid,
			Tid:  lane,
			Args: args,
		})
	}
	return out
}
