package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestWriteChromeTraceExportsWellFormedJSON(t *testing.T) {
	r, rec := treeRegistry(4)

	op := r.StartOp("vupdate.update")
	step := op.Child("vupdate.step.translate")
	time.Sleep(time.Millisecond)
	step.Finish("object=omega")
	op.Finish("ops=2")
	r.StartOp("keller.insert").Finish("ops=1")

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rec.Traces()); err != nil {
		t.Fatal(err)
	}

	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	if len(f.TraceEvents) != 3 {
		t.Fatalf("exported %d events, want 3", len(f.TraceEvents))
	}

	byName := map[string]int{}
	for i, ev := range f.TraceEvents {
		byName[ev.Name] = i
		if ev.Ph != "X" || ev.Cat != "penguin" {
			t.Errorf("event %s: ph=%q cat=%q", ev.Name, ev.Ph, ev.Cat)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("event %s: negative time ts=%f dur=%f", ev.Name, ev.Ts, ev.Dur)
		}
	}
	rootEv := f.TraceEvents[byName["vupdate.update"]]
	stepEv := f.TraceEvents[byName["vupdate.step.translate"]]
	kellerEv := f.TraceEvents[byName["keller.insert"]]

	// Traces map to distinct pids; a parent and its overlapping child
	// share a pid but take different lanes.
	if rootEv.Pid != stepEv.Pid {
		t.Errorf("parent pid %d != child pid %d", rootEv.Pid, stepEv.Pid)
	}
	if kellerEv.Pid == rootEv.Pid {
		t.Error("separate traces share a pid")
	}
	if rootEv.Tid == stepEv.Tid {
		t.Error("overlapping parent and child share a lane")
	}

	// Args carry the causal identity for the viewer's detail panel.
	if parent, ok := stepEv.Args["parent"].(float64); !ok || uint64(parent) == 0 {
		t.Errorf("step args lack parent: %v", stepEv.Args)
	}
	if stepEv.Args["detail"] != "object=omega" {
		t.Errorf("step detail = %v", stepEv.Args["detail"])
	}

	// The epoch is the earliest start: some event sits at ts == 0.
	minTs := f.TraceEvents[0].Ts
	for _, ev := range f.TraceEvents {
		if ev.Ts < minTs {
			minTs = ev.Ts
		}
	}
	if minTs != 0 {
		t.Errorf("earliest ts = %f, want 0", minTs)
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var f map[string]any
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	events, ok := f["traceEvents"].([]any)
	if !ok {
		t.Fatalf("traceEvents is %T, want array (never null)", f["traceEvents"])
	}
	if len(events) != 0 {
		t.Errorf("empty export has %d events", len(events))
	}
}
