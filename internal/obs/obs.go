// Package obs is the engine-wide observability layer: zero-dependency,
// race-clean metrics (atomic counters, striped histograms with fixed
// bucket bounds) and a lock-free-read trace ring buffer for the §5
// update pipeline.
//
// Design constraints, in order:
//
//   - Race-clean. Every mutable word is accessed atomically; the whole
//     package is exercised under `go test -race` by the stress suite.
//   - Allocation-free when disabled. Counters and histograms are plain
//     atomic adds. Trace events are the only part that allocates, and
//     they are gated behind a nil Sink check (Registry.Tracing), so an
//     instrumented hot path with no sink installed performs zero
//     allocations and no formatting work.
//   - Zero dependencies. Standard library only, and nothing outside
//     sync/atomic + time on the hot paths.
//
// The package-level Default registry is what the engine packages (reldb,
// viewobject, vupdate, keller, workload) write into; penguin.Stats()
// captures it as a Snapshot, obs.WriteText renders a snapshot with
// expvar-style dotted key names, and the cmd/penguin shell exposes both
// through the .stats and .trace commands.
package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; counters are monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }
