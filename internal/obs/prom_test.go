package obs

import (
	"fmt"
	"strings"
	"testing"
)

// drive exercises a registry across the metric kinds WriteProm renders:
// flat counters, flat histograms, labeled counters (with an overflowing
// label set), and labeled histograms.
func drive(r *Registry) {
	r.Commits.Add(3)
	r.CommitNs.Observe(50_000)
	r.CommitNs.Observe(2_000_000_000)

	rel := r.Relations.Intern("COURSES")
	r.RelScanned.At(rel).Add(812)
	r.RelProbes.At(rel).Inc()

	for i := 0; i < ObjectLabelCap+5; i++ {
		slot := r.Objects.Intern(fmt.Sprintf("ω%d", i))
		r.InstCallsByObject.At(slot).Inc()
		r.StepNsByObject[0].At(slot).Observe(int64(1000 * (i + 1)))
	}
	r.Instantiations.Add(int64(ObjectLabelCap + 5))
}

func TestWritePromPassesLint(t *testing.T) {
	r := NewRegistry()
	drive(r)
	var b strings.Builder
	if err := WriteProm(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if err := CheckExposition(text); err != nil {
		t.Fatalf("WriteProm output fails lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# TYPE reldb_tx_commits counter",
		"reldb_tx_commits 3",
		"# TYPE reldb_tx_commit_ns histogram",
		`reldb_tx_commit_ns_bucket{le="100000"} 1`,
		`reldb_tx_commit_ns_bucket{le="+Inf"} 2`,
		"reldb_tx_commit_ns_count 2",
		`reldb_relation_scanned{relation="COURSES"} 812`,
		`viewobject_instantiate_calls{object="ω0"} 1`,
		`viewobject_instantiate_calls{object="other"} 5`,
		`_bucket{object="ω0",le="1000"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// A family present both flat and labeled is emitted labeled only, so
// summing over labels never double-counts against a bare sample.
func TestWritePromLabeledFamiliesPartition(t *testing.T) {
	r := NewRegistry()
	drive(r)
	var b strings.Builder
	if err := WriteProm(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var series, total int
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "viewobject_instantiate_calls ") {
			t.Fatalf("bare aggregate emitted alongside labeled family: %q", line)
		}
		if strings.HasPrefix(line, "viewobject_instantiate_calls{") {
			series++
			var v int
			fmt.Sscanf(line[strings.Index(line, "} ")+2:], "%d", &v)
			total += v
		}
	}
	if series > ObjectLabelCap+1 {
		t.Fatalf("labeled family emits %d series, want <= %d", series, ObjectLabelCap+1)
	}
	if total != ObjectLabelCap+5 {
		t.Fatalf("Σ labeled series = %d, want %d (partition of the aggregate)", total, ObjectLabelCap+5)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"reldb.tx.commit_ns":               "reldb_tx_commit_ns",
		"vupdate.reject.translator-policy": "vupdate_reject_translator_policy",
		"9lives":                           "_9lives",
		"ok_name:sub":                      "ok_name:sub",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	in := "a\\b\"c\nd"
	want := `a\\b\"c\nd`
	if got := escapeLabelValue(in); got != want {
		t.Fatalf("escape = %q, want %q", got, want)
	}
	// The escaped value survives the lint parser inside a real sample.
	text := "# TYPE m counter\nm{object=\"" + want + "\"} 1\n"
	if err := CheckExposition(text); err != nil {
		t.Fatalf("escaped label value fails lint: %v", err)
	}
}

func TestCheckExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "orphan 1\n",
		"malformed line":      "# TYPE m counter\nm{...} one\n",
		"duplicate TYPE":      "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"duplicate series":    "# TYPE m counter\nm 1\nm 2\n",
		"negative counter":    "# TYPE m counter\nm -1\n",
		"bare histogram sample": "# TYPE h histogram\n" +
			"h 3\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 9\nh_count 3\n",
		"missing +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 3\nh_sum 9\nh_count 3\n",
		"+Inf != count": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 3\nh_sum 9\nh_count 4\n",
		"missing _sum": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 3\nh_count 3\n",
		"missing _count": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 3\nh_sum 9\n",
	}
	for name, text := range cases {
		if err := CheckExposition(text); err == nil {
			t.Errorf("%s: lint accepted invalid exposition:\n%s", name, text)
		}
	}
	valid := "# TYPE h histogram\n" +
		"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 9\nh_count 3\n" +
		"# TYPE c counter\nc 7\n"
	if err := CheckExposition(valid); err != nil {
		t.Errorf("lint rejected valid exposition: %v", err)
	}
}
