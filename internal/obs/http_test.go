package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// get fetches one path from the test server and returns status and body.
func get(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeMetricsTracesAndPprof(t *testing.T) {
	rec := NewRecorder(0, 8)
	Default.SetRecorder(rec)
	t.Cleanup(func() { Default.SetRecorder(nil) })

	ln, err := Serve(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	// /metrics serves the Prometheus exposition with the runtime gauges.
	status, body := get(t, base, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	for _, want := range []string{
		"# TYPE runtime_goroutines gauge",
		"# TYPE runtime_heap_inuse_bytes gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /debug/traces with an empty recorder.
	status, body = get(t, base, "/debug/traces")
	if status != http.StatusOK {
		t.Fatalf("/debug/traces status %d", status)
	}
	var summary struct {
		Recording bool `json:"recording"`
		Traces    []struct {
			ID    uint64 `json:"id"`
			Name  string `json:"name"`
			Spans int    `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &summary); err != nil {
		t.Fatalf("summary JSON: %v\n%s", err, body)
	}
	if !summary.Recording || len(summary.Traces) != 0 {
		t.Errorf("empty summary = %+v", summary)
	}

	// Retain one trace and fetch it back as Chrome JSON.
	op := Default.StartOp("http.test.op")
	op.Child("http.test.child").Finish("")
	op.Finish("done")

	_, body = get(t, base, "/debug/traces")
	if err := json.Unmarshal([]byte(body), &summary); err != nil {
		t.Fatal(err)
	}
	if len(summary.Traces) != 1 || summary.Traces[0].Name != "http.test.op" {
		t.Fatalf("summary after op = %+v", summary)
	}
	if summary.Traces[0].Spans != 2 {
		t.Errorf("summary spans = %d, want 2", summary.Traces[0].Spans)
	}

	status, body = get(t, base, fmt.Sprintf("/debug/traces?id=%d", summary.Traces[0].ID))
	if status != http.StatusOK {
		t.Fatalf("?id status %d", status)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &chrome); err != nil {
		t.Fatalf("chrome JSON: %v\n%s", err, body)
	}
	if len(chrome.TraceEvents) != 2 {
		t.Errorf("chrome export has %d events, want 2", len(chrome.TraceEvents))
	}

	if status, _ = get(t, base, "/debug/traces?id=999999"); status != http.StatusNotFound {
		t.Errorf("missing trace status %d, want 404", status)
	}
	if status, _ = get(t, base, "/debug/traces?id=bogus"); status != http.StatusBadRequest {
		t.Errorf("bad trace id status %d, want 400", status)
	}

	// The pprof index and a short wall-clock trace are wired in.
	status, body = get(t, base, "/debug/pprof/")
	if status != http.StatusOK || !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ status %d", status)
	}
	status, _ = get(t, base, "/debug/pprof/cmdline")
	if status != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", status)
	}
}

func TestTracesHandlerWithoutRecorder(t *testing.T) {
	Default.SetRecorder(nil)
	ln, err := Serve(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	deadline := time.Now().Add(time.Second)
	var body string
	var status int
	for {
		status, body = get(t, "http://"+ln.Addr().String(), "/debug/traces")
		if status == http.StatusOK || time.Now().After(deadline) {
			break
		}
	}
	var summary struct {
		Recording bool  `json:"recording"`
		Traces    []any `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &summary); err != nil {
		t.Fatal(err)
	}
	if summary.Recording {
		t.Error("recording = true without a recorder")
	}
	if summary.Traces == nil {
		t.Error("traces is null, want []")
	}
}
