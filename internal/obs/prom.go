package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4). WriteProm renders a
// Snapshot as scrapeable text: one `# TYPE` header per family, dotted
// metric names sanitized to underscores, counters as plain samples, and
// histograms expanded into cumulative `_bucket{le="..."}` samples ending
// in `+Inf`, plus `_sum` and `_count`.
//
// Two engine-specific conventions:
//
//   - A family that exists both as a flat aggregate and as a labeled
//     family under the same name (the per-object and per-relation splits
//     partition their aggregates exactly, overflow slot included) is
//     emitted labeled only, so consumers that sum over labels never
//     double-count.
//   - `_count` is rendered as the `+Inf` cumulative bucket value rather
//     than the stat's Count field: under a concurrent capture Count may
//     trail ΣBuckets by in-flight observations (the histogram's
//     documented write ordering), and the exposition must be internally
//     consistent.

// WriteProm renders the snapshot in the Prometheus text exposition
// format. Output is deterministic: families sorted by name, series
// sorted by label value. CheckExposition validates the emitted grammar
// and histogram invariants (used by `make metrics-lint`).
func WriteProm(w io.Writer, s Snapshot) error {
	var b strings.Builder

	names := make([]string, 0, len(s.Counters)+len(s.Histograms))
	seen := make(map[string]bool)
	for _, m := range []map[string]bool{namesOf(s.Counters), namesOf(s.Histograms),
		namesOf(s.LabeledCounters), namesOf(s.LabeledHistograms), namesOf(s.Gauges)} {
		for n := range m {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)

	for _, name := range names {
		prom := sanitizeMetricName(name)
		lcFam, hasLC := s.LabeledCounters[name]
		lhFam, hasLH := s.LabeledHistograms[name]
		switch {
		case hasLC:
			fmt.Fprintf(&b, "# TYPE %s counter\n", prom)
			for _, lv := range sortedKeys(lcFam.Values) {
				fmt.Fprintf(&b, "%s{%s} %d\n", prom, labelPair(lcFam.Label, lv), lcFam.Values[lv])
			}
		case hasLH:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", prom)
			for _, lv := range sortedKeys(lhFam.Values) {
				promHistSeries(&b, prom, labelPair(lhFam.Label, lv), lhFam.Values[lv])
			}
		default:
			if v, ok := s.Counters[name]; ok {
				fmt.Fprintf(&b, "# TYPE %s counter\n", prom)
				fmt.Fprintf(&b, "%s %d\n", prom, v)
			}
			if v, ok := s.Gauges[name]; ok {
				fmt.Fprintf(&b, "# TYPE %s gauge\n", prom)
				fmt.Fprintf(&b, "%s %d\n", prom, v)
			}
			if st, ok := s.Histograms[name]; ok {
				fmt.Fprintf(&b, "# TYPE %s histogram\n", prom)
				promHistSeries(&b, prom, "", st)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promHistSeries writes one histogram series: cumulative buckets in
// bound order ending in +Inf, then _sum and _count. labels carries the
// series' own rendered label pairs ("" for none); le is appended.
func promHistSeries(b *strings.Builder, prom, labels string, st HistogramStat) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i, n := range st.Buckets {
		cum += n
		le := "+Inf"
		if i < len(st.Bounds) {
			le = strconv.FormatInt(st.Bounds[i], 10)
		}
		fmt.Fprintf(b, "%s_bucket{%s%sle=\"%s\"} %d\n", prom, labels, sep, le, cum)
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %d\n", prom, suffix, st.Sum)
	fmt.Fprintf(b, "%s_count%s %d\n", prom, suffix, cum)
}

// labelPair renders one key="value" label pair.
func labelPair(key, value string) string {
	return key + "=\"" + escapeLabelValue(value) + "\""
}

// sanitizeMetricName maps an engine metric name onto the Prometheus
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]*: dots, dashes, and any other
// invalid rune become underscores; a leading digit gains an underscore
// prefix.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
