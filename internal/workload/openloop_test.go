package workload

import (
	"io"
	"math"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"penguin/internal/obs"
	"penguin/internal/serve"
	"penguin/internal/university"
	"penguin/internal/viewobject"
	"penguin/internal/vupdate"
)

// startTier launches a real serving tier over a seeded university
// database on an ephemeral port.
func startTier(t *testing.T, cfg serve.Config) (string, *obs.Registry) {
	t.Helper()
	db, g := university.MustNewSeeded()
	om := university.MustOmega(g)
	reg := obs.NewRegistry()
	cfg.DB = db
	cfg.Objects = map[string]*viewobject.Definition{"omega": om}
	cfg.Updaters = map[string]*vupdate.Updater{
		"omega": vupdate.NewUpdater(vupdate.PermissiveTranslator(om)),
	}
	cfg.Reg = reg
	_, hs, err := serve.Start("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hs.Close() })
	return "http://" + hs.Addr().String(), reg
}

// TestPacingAccuracy pins the arrival schedule: with a no-op fire
// function (an idle "server"), the dispatched tick count must land
// within 5% of target RPS x duration. The absolute schedule (start +
// i*interval) is what makes this hold — a relative sleep-per-tick loop
// accumulates sleep overshoot and comes in low.
func TestPacingAccuracy(t *testing.T) {
	const rps, dur = 500.0, time.Second
	var fired atomic.Int64
	n := runPaced(rps, dur, func(int) { fired.Add(1) })
	want := rps * dur.Seconds()
	if math.Abs(float64(n)-want) > 0.05*want {
		t.Errorf("dispatched %d ticks, want %.0f +/- 5%%", n, want)
	}
	if int64(n) != fired.Load() {
		t.Errorf("dispatched %d but fired %d", n, fired.Load())
	}
}

// TestPacingSlowHandler pins the open-loop property: a handler far
// slower than the arrival interval must not slow the arrival schedule.
func TestPacingSlowHandler(t *testing.T) {
	const rps, dur = 200.0, 500 * time.Millisecond
	n := runPaced(rps, dur, func(int) { time.Sleep(200 * time.Millisecond) })
	want := rps * dur.Seconds()
	if float64(n) < 0.95*want {
		t.Errorf("slow handler throttled arrivals: %d ticks, want >= %.0f", n, 0.95*want)
	}
}

// TestOpenLoopMix checks the deterministic read/update split and the
// result accounting against a live tier.
func TestOpenLoopMix(t *testing.T) {
	base, reg := startTier(t, serve.Config{})
	res, err := RunOpenLoop(OpenLoopSpec{
		BaseURL:      base,
		Object:       "omega",
		TargetRPS:    100,
		Duration:     500 * time.Millisecond,
		ReadFraction: 0.8,
		Reg:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("no operations dispatched")
	}
	if res.Sent != res.OK+res.Shed+res.Rejected+res.Errors {
		t.Errorf("accounting leak: sent %d != ok %d + shed %d + rejected %d + errors %d",
			res.Sent, res.OK, res.Shed, res.Rejected, res.Errors)
	}
	if res.Errors != 0 {
		t.Errorf("idle tier produced %d errors", res.Errors)
	}
	byOp := reg.OpenLoopNsByEndpoint.StatByLabel()
	reads, updates := byOp[opRead].Count, byOp[opUpdate].Count
	if reads+updates != res.Sent {
		t.Errorf("per-op latency counts %d+%d != sent %d", reads, updates, res.Sent)
	}
	gotFrac := float64(reads) / float64(res.Sent)
	if math.Abs(gotFrac-0.8) > 0.05 {
		t.Errorf("read fraction %.3f, want 0.8 +/- 0.05", gotFrac)
	}
	if reg.OpenLoopSent.Load() != res.Sent {
		t.Errorf("workload.openloop.sent %d != result sent %d", reg.OpenLoopSent.Load(), res.Sent)
	}
}

// TestServeSmoke is the CI smoke gate (make serve-smoke): a short
// open-loop burst against a live tier must achieve its arrival rate
// within 5%, finish with zero 5xx, meet a generous latency objective,
// and leave a valid Prometheus exposition carrying the penguin.http.*
// families.
func TestServeSmoke(t *testing.T) {
	base, reg := startTier(t, serve.Config{})
	res, err := RunOpenLoop(OpenLoopSpec{
		BaseURL:      base,
		Object:       "omega",
		TargetRPS:    300,
		Duration:     time.Second,
		ReadFraction: 0.9,
		SLOp50:       100 * time.Millisecond,
		SLOp99:       500 * time.Millisecond,
		Reg:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if res.Errors != 0 {
		t.Errorf("smoke run produced %d errors (want zero 5xx/transport failures)", res.Errors)
	}
	want := 300.0
	if math.Abs(res.AchievedRPS-want) > 0.05*want {
		t.Errorf("achieved %.1f rps, want %.0f +/- 5%%", res.AchievedRPS, want)
	}
	if len(res.SLOViolations) != 0 {
		t.Errorf("SLO violations: %v", res.SLOViolations)
	}
	if res.P99 <= 0 {
		t.Errorf("p99 = %v, want > 0", res.P99)
	}

	// The tier's own accounting: every admitted request 2xx or shed —
	// no 5xx anywhere.
	if got := reg.HTTPStatus[obs.Status5xx].Load(); got != 0 {
		t.Errorf("server counted %d 5xx responses", got)
	}

	// Scrape /metrics and lint the exposition.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if err := obs.CheckExposition(text); err != nil {
		t.Errorf("exposition: %v", err)
	}
	for _, fam := range []string{
		"penguin_http_requests", "penguin_http_shed", "penguin_http_ns",
		"penguin_http_status_2xx", "workload_openloop_sent", "workload_openloop_latency_ns",
	} {
		if !strings.Contains(text, fam) {
			t.Errorf("exposition lacks family %s", fam)
		}
	}
}
