// Concurrent-workload stress generator: N reader goroutines instantiate
// the generated view object through snapshot-isolated read transactions
// while M writer goroutines execute VO-R / VO-CD / VO-CI update
// translations in write transactions. Every assembled instance is checked
// against invariants that only hold for a consistent committed state, so
// a torn read (an instance assembled across a commit boundary) is caught
// even when it would not trip the race detector.
package workload

import (
	"fmt"
	"sync"
	"sync/atomic"

	"penguin/internal/obs"
	"penguin/internal/reldb"
	"penguin/internal/viewobject"
	"penguin/internal/vupdate"
)

// StressSpec sizes a concurrent stress run over a BuildTree workload.
type StressSpec struct {
	// Tree shapes the schema and data. Roots must be >= Writers so every
	// writer owns a disjoint, non-empty set of instances.
	Tree TreeSpec
	// Readers is the number of concurrent instantiation goroutines.
	Readers int
	// ParallelReaders is the number of concurrent goroutines running
	// full-object Instantiate calls (all roots at once), which engage the
	// parallel fan-out when viewobject.Parallelism allows — so writer
	// commits race against multi-worker snapshot reads. May be 0.
	ParallelReaders int
	// MaterializedReaders is the number of concurrent goroutines reading
	// through one shared viewobject.Materializer — patched instances
	// served from the delta-stream cache racing the same VO writers. May
	// be 0.
	MaterializedReaders int
	// Writers is the number of concurrent update-translation goroutines.
	// Writer w owns the root keys k with k mod Writers == w; readers read
	// every key.
	Writers int
	// Cycles is the number of VO-R → VO-CD → VO-CI rounds each writer runs
	// per owned key.
	Cycles int
	// ReadTxLagAlert, when > 0, overrides the registry's stale-ReadTx
	// alert threshold for the duration of the run (restored on return).
	// The run holds one ReadTx open across every writer cycle and forks
	// it before closing, so any threshold the writers outrun trips both
	// the stale-fork and stale-close alerts deterministically.
	ReadTxLagAlert int64
}

// StressResult reports what a stress run did and what it found.
type StressResult struct {
	// Instantiations counts reader instantiations that found an instance.
	Instantiations int64
	// ParallelInstantiations counts instances assembled by the parallel
	// full-object readers.
	ParallelInstantiations int64
	// Absent counts reader lookups that found no instance (the key was
	// between its VO-CD and VO-CI).
	Absent int64
	// MaterializedInstantiations counts instances served through the
	// shared materializer.
	MaterializedInstantiations int64
	// Replaces, Deletes, Inserts count committed writer translations.
	Replaces, Deletes, Inserts int64
	// Violations lists invariant violations (torn instances). Empty means
	// every observed instance was consistent with a committed state.
	Violations []string
	// SlowTraces counts operations the flight recorder captured during
	// the run (0 when no recorder is installed on obs.Default).
	SlowTraces int64
	// Metrics is the engine-metric delta across the run (everything the
	// obs.Default registry accumulated between RunStress entry and exit).
	Metrics obs.Snapshot
}

// Summary renders the run as one log line: what the workload did and
// what the engine metrics observed while it ran.
func (r *StressResult) Summary() string {
	return fmt.Sprintf(
		"stress: %d instantiations (%d parallel, %d materialized), %d absent, %d replaces, %d deletes, %d inserts, %d violations | %s",
		r.Instantiations, r.ParallelInstantiations, r.MaterializedInstantiations, r.Absent, r.Replaces, r.Deletes, r.Inserts, len(r.Violations),
		r.Metrics.Summary())
}

// stamp is the uniform payload a VO-R writes into every island node of an
// instance; readers use it to detect instances assembled across commits.
func stamp(writer, cycle int) string { return fmt.Sprintf("w%d-c%d", writer, cycle) }

// RunStress builds the workload and drives readers against writers until
// every writer finishes its cycles. It returns the tallies and any
// invariant violations; data races surface through `go test -race`.
func RunStress(spec StressSpec) (*StressResult, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if spec.ReadTxLagAlert > 0 {
		prev := obs.Default.SetReadTxLagAlert(spec.ReadTxLagAlert)
		defer obs.Default.SetReadTxLagAlert(prev)
	}
	before := obs.Capture()
	w, err := BuildTree(spec.Tree)
	if err != nil {
		return nil, err
	}
	return runStress(w, spec, before)
}

// RunStressOn drives the same reader/writer traffic over an
// already-built workload (BuildTree or BuildTreeIn) — the crash-matrix
// harness uses it to stress a durable database whose build it needed to
// observe through its own delta subscription. spec.Tree must be the spec
// the workload was built with (the instance-shape invariants derive from
// it). The metric delta in the result covers only the traffic, not the
// build.
func RunStressOn(w *Workload, spec StressSpec) (*StressResult, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if spec.ReadTxLagAlert > 0 {
		prev := obs.Default.SetReadTxLagAlert(spec.ReadTxLagAlert)
		defer obs.Default.SetReadTxLagAlert(prev)
	}
	return runStress(w, spec, obs.Capture())
}

func (spec StressSpec) validate() error {
	if spec.Readers < 1 || spec.Writers < 1 || spec.Cycles < 1 || spec.ParallelReaders < 0 || spec.MaterializedReaders < 0 {
		return fmt.Errorf("workload: stress needs readers, writers, cycles >= 1 (got %+v)", spec)
	}
	if spec.Tree.Roots < spec.Writers {
		return fmt.Errorf("workload: %d roots cannot feed %d writers", spec.Tree.Roots, spec.Writers)
	}
	return nil
}

func runStress(w *Workload, spec StressSpec, before obs.Snapshot) (*StressResult, error) {
	u := vupdate.NewUpdater(vupdate.PermissiveTranslator(w.Def))

	// Stamp every instance once, serially, so the uniform-stamp invariant
	// holds from the first concurrent read.
	for k := 0; k < spec.Tree.Roots; k++ {
		if _, err := replaceStamped(w, u, int64(k), "seed"); err != nil {
			return nil, fmt.Errorf("workload: initial stamping of key %d: %w", k, err)
		}
	}

	// The ager pins a snapshot across every writer cycle; it forks and
	// closes after the writers finish, so with a lag-alert threshold the
	// writers outrun, both stale-ReadTx alerts fire deterministically.
	ager := w.DB.BeginRead()
	defer ager.Close()

	res := &StressResult{}
	var mu sync.Mutex
	violate := func(format string, args ...any) {
		mu.Lock()
		if len(res.Violations) < 20 {
			res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}

	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < spec.Readers; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := r; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				key := reldb.Tuple{reldb.Int(int64(i % spec.Tree.Roots))}
				rtx := w.DB.BeginRead()
				inst, ok, err := viewobject.InstantiateByKey(rtx, w.Def, key)
				gen := rtx.Generation()
				rtx.Close()
				if err != nil {
					violate("reader %d: instantiate %s: %v", r, key, err)
					return
				}
				if !ok {
					atomic.AddInt64(&res.Absent, 1)
					continue
				}
				atomic.AddInt64(&res.Instantiations, 1)
				if msg := checkInstance(w, spec.Tree, inst); msg != "" {
					violate("reader %d: key %s at gen %d: %s", r, key, gen, msg)
					return
				}
			}
		}(r)
	}

	// Parallel readers: full-object Instantiate over a pinned snapshot.
	// Each call fans its pivot frontier across the worker pool (when the
	// parallelism budget allows), so every assembled instance exercises
	// the parallel assembly path against concurrent commits. The same
	// torn-instance invariants apply to every instance in the result.
	for r := 0; r < spec.ParallelReaders; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				rtx := w.DB.BeginRead()
				insts, err := viewobject.Instantiate(rtx, w.Def, viewobject.Query{})
				gen := rtx.Generation()
				rtx.Close()
				if err != nil {
					violate("parallel reader %d: instantiate: %v", r, err)
					return
				}
				atomic.AddInt64(&res.ParallelInstantiations, int64(len(insts)))
				for _, inst := range insts {
					if msg := checkInstance(w, spec.Tree, inst); msg != "" {
						violate("parallel reader %d at gen %d: %s", r, gen, msg)
						return
					}
				}
			}
		}(r)
	}

	// Materialized readers share one delta-stream cache: every serve
	// syncs it to the committed head and patches exactly the instances
	// the writers touched. The same torn-instance invariants apply — a
	// patched instance must be consistent with a committed state.
	var mat *viewobject.Materializer
	if spec.MaterializedReaders > 0 {
		mat = viewobject.NewMaterializer(w.DB, w.Def)
		// The run is bounded — at most four commits per (root, cycle)
		// pair plus slack — so a buffer covering the whole run means the
		// subscription never reports lost history. Without this, a
		// scheduling burst that lands every writer commit between two
		// reader serves overflows the default ring and the sole sync
		// after it resyncs instead of patching, leaving the run with
		// zero patches to assert on.
		mat.SetDeltaBuffer(4*spec.Tree.Roots*spec.Cycles + 64)
		defer mat.Close()
		// Prime the cache before any writer starts: the first serve is
		// what subscribes to the delta stream, and on a small-GOMAXPROCS
		// box the scheduler can run every writer to completion before the
		// materialized readers' first slice — a subscription born after
		// the last commit sees no deltas and can never patch.
		if _, _, err := mat.InstantiateByKey(reldb.Tuple{reldb.Int(0)}); err != nil {
			return nil, fmt.Errorf("workload: priming materializer: %w", err)
		}
	}
	for r := 0; r < spec.MaterializedReaders; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := r; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				key := reldb.Tuple{reldb.Int(int64(i % spec.Tree.Roots))}
				inst, ok, err := mat.InstantiateByKey(key)
				if err != nil {
					violate("materialized reader %d: instantiate %s: %v", r, key, err)
					return
				}
				if !ok {
					atomic.AddInt64(&res.Absent, 1)
					continue
				}
				atomic.AddInt64(&res.MaterializedInstantiations, 1)
				if msg := checkInstance(w, spec.Tree, inst); msg != "" {
					violate("materialized reader %d: key %s at gen %d: %s", r, key, mat.Generation(), msg)
					return
				}
			}
		}(r)
	}

	var writers sync.WaitGroup
	writerErrs := make(chan error, spec.Writers)
	for wr := 0; wr < spec.Writers; wr++ {
		writers.Add(1)
		go func(wr int) {
			defer writers.Done()
			for c := 0; c < spec.Cycles; c++ {
				for k := wr; k < spec.Tree.Roots; k += spec.Writers {
					// VO-R: restamp every island node.
					stamped, err := replaceStamped(w, u, int64(k), stamp(wr, c))
					if err != nil {
						writerErrs <- fmt.Errorf("writer %d: VO-R key %d: %w", wr, k, err)
						return
					}
					atomic.AddInt64(&res.Replaces, 1)
					// VO-CD: delete the whole instance.
					if _, err := u.DeleteByKey(reldb.Tuple{reldb.Int(int64(k))}); err != nil {
						writerErrs <- fmt.Errorf("writer %d: VO-CD key %d: %w", wr, k, err)
						return
					}
					atomic.AddInt64(&res.Deletes, 1)
					// VO-CI: re-insert the stamped instance.
					if _, err := u.InsertInstance(stamped); err != nil {
						writerErrs <- fmt.Errorf("writer %d: VO-CI key %d: %w", wr, k, err)
						return
					}
					atomic.AddInt64(&res.Inserts, 1)
				}
			}
		}(wr)
	}
	writers.Wait()
	// One serve after the last commit drains the primed subscription —
	// the buffer above lost nothing, so whatever window the concurrent
	// readers did not consume patches here. Without this, a scheduling
	// order that parks every materialized reader across the whole writer
	// phase ends the run with the deltas still queued and no patch to
	// assert on.
	if mat != nil {
		if _, _, err := mat.InstantiateByKey(reldb.Tuple{reldb.Int(0)}); err != nil {
			violate("materialized drain: %v", err)
		}
	}
	// Fork-then-close the aged snapshot while it lags the head by every
	// writer commit: both stale-ReadTx observation points fire.
	ager.Fork()
	ager.Close()
	close(done)
	readers.Wait()
	close(writerErrs)
	res.Metrics = obs.Capture().Sub(before)
	res.SlowTraces = res.Metrics.Counter("obs.slowtrace.captured")
	// With a flight recorder installed, every retained span tree must be
	// well-formed even though spans were emitted from the §5 pipeline,
	// the parallel instantiation pool, and the materializer concurrently:
	// exactly one root, every ParentID resolvable, every child's interval
	// inside its parent's. A violation here means the causal threading
	// tore under load.
	if rec := obs.Default.Recorder(); rec != nil {
		for _, tr := range rec.Traces() {
			if err := tr.Validate(); err != nil {
				violate("slow trace %d (%s): %v", tr.TraceID, tr.Name, err)
			}
		}
	}
	for err := range writerErrs {
		return res, err
	}
	return res, nil
}

// replaceStamped instantiates the current state of the instance at root
// key k from a snapshot, clones it with every island node's V set to s,
// and executes the VO-R translation. It returns the stamped instance.
func replaceStamped(w *Workload, u *vupdate.Updater, k int64, s string) (*viewobject.Instance, error) {
	rtx := w.DB.BeginRead()
	cur, ok, err := viewobject.InstantiateByKey(rtx, w.Def, reldb.Tuple{reldb.Int(k)})
	rtx.Close()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("no instance with key %d", k)
	}
	stamped := cur.Clone()
	for _, relName := range w.IslandRels {
		for _, n := range stamped.NodesAt(relName) {
			if err := n.SetAttr(w.Def, "V", reldb.String(s)); err != nil {
				return nil, err
			}
		}
	}
	if _, err := u.ReplaceInstance(cur, stamped); err != nil {
		return nil, err
	}
	return stamped, nil
}

// checkInstance verifies that an assembled instance is consistent with
// some committed state:
//
//   - shape: every component has exactly Fanout children per child node
//     (VO-CD and VO-CI move whole instances, so partial shapes can only
//     come from a torn read);
//   - uniform stamp: every island node carries the same V (every VO-R
//     writes one stamp across the island in one transaction).
//
// It returns "" when consistent, a description otherwise.
func checkInstance(w *Workload, spec TreeSpec, inst *viewobject.Instance) string {
	stamps := make(map[string]int)
	var shapeErr string
	var walk func(n *viewobject.InstNode, island bool)
	walk = func(n *viewobject.InstNode, island bool) {
		if island {
			v, ok := n.Get(w.Def, "V")
			if !ok || v.IsNull() {
				shapeErr = fmt.Sprintf("island node %s has no V value", n.Node().ID)
				return
			}
			s, _ := v.AsString()
			stamps[s]++
		}
		for _, child := range n.Node().Children {
			kids := n.Children(child.ID)
			if len(kids) != spec.Fanout {
				shapeErr = fmt.Sprintf("node %s has %d components under %s, want %d",
					n.Node().ID, len(kids), child.ID, spec.Fanout)
				return
			}
			childIsland := islandRel(w, child.Relation)
			for _, kid := range kids {
				walk(kid, childIsland)
				if shapeErr != "" {
					return
				}
			}
		}
	}
	walk(inst.Root(), true)
	if shapeErr != "" {
		return shapeErr
	}
	if len(stamps) != 1 {
		return fmt.Sprintf("island stamped inconsistently: %v (torn across commits)", stamps)
	}
	return ""
}

func islandRel(w *Workload, name string) bool {
	for _, n := range w.IslandRels {
		if n == name {
			return true
		}
	}
	return false
}
