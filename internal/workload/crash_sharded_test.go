package workload

// Cross-shard crash matrix: proves the two-shard commit protocol leaves
// no half-committed island behind. Two layers:
//
//   - a deterministic truncation matrix that cuts each shard's log at
//     the cross-decide / cross-prepare boundaries of a known cross-shard
//     update and asserts the reopened cluster lands on exactly the
//     before-state (presumed abort) or the after-state (commit decision
//     found on a sibling) — never in between, on either shard;
//   - a kill -9 harness (child process re-execution, like
//     TestCrashMatrixKill9) that murders a cluster mid-2PC under real
//     concurrent traffic and checks acknowledged generations, replica
//     agreement, and instance invariants after recovery.

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"penguin/internal/reldb"
	"penguin/internal/viewobject"
)

const (
	recCrossPrepare byte = 4
	recCrossDecide  byte = 5
)

var shardCrashSpec = StressSpec{
	Tree:    TreeSpec{Depth: 1, Width: 1, Fanout: 1, Roots: 2, Peninsulas: 1},
	Readers: 1,
	Writers: 2,
	Cycles:  2,
}

// digestReplicas digests each replicated (non-island) relation per
// shard; divergence between shards is a broken replication invariant.
func digestReplicas(sw *ShardedWorkload, rels []string) ([]uint64, error) {
	out := make([]uint64, sw.C.N())
	for i := 0; i < sw.C.N(); i++ {
		h := fnv.New64a()
		rtx := sw.C.DB(i).BeginRead()
		for _, name := range rels {
			rel, err := rtx.Relation(name)
			if err != nil {
				rtx.Close()
				return nil, err
			}
			var eks []string
			rel.Scan(func(t reldb.Tuple) bool {
				eks = append(eks, t.Encode())
				return true
			})
			sort.Strings(eks)
			io.WriteString(h, name)
			for _, ek := range eks {
				io.WriteString(h, ek)
				h.Write([]byte{0})
			}
		}
		rtx.Close()
		out[i] = h.Sum64()
	}
	return out, nil
}

// clusterDigests digests every shard's full state.
func clusterDigests(sw *ShardedWorkload) []uint64 {
	out := make([]uint64, sw.C.N())
	for i := range out {
		out[i] = DigestDatabase(sw.C.DB(i))
	}
	return out
}

// TestCrashMatrixCrossShard2PC is the deterministic matrix: one known
// cross-shard deletion is the last update in both logs; the matrix cuts
// each shard's tail at the decide and prepare records and asserts
// both-or-neither on reopen.
func TestCrashMatrixCrossShard2PC(t *testing.T) {
	const nShards = 2
	spec := shardCrashSpec.Tree
	dir := t.TempDir()
	sw, err := OpenShardedTree(dir, nShards, spec, reldb.OpenOptions{CheckpointInterval: -1}, true)
	if err != nil {
		t.Fatal(err)
	}
	// Quiesce, then record the before-state, run exactly one cross-shard
	// update (VO-CD touches the replicated peninsula), record the
	// after-state, and close cleanly.
	before := clusterDigests(sw)
	gensBefore := sw.C.Generations()
	if _, err := sw.C.DeleteByKey(ShardedObject, reldb.Tuple{reldb.Int(0)}); err != nil {
		t.Fatal(err)
	}
	after := clusterDigests(sw)
	gensAfter := sw.C.Generations()
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nShards; i++ {
		if gensAfter[i] != gensBefore[i]+1 {
			t.Fatalf("shard %d: deletion advanced gen %d -> %d, want one cross-shard commit on every shard",
				i, gensBefore[i], gensAfter[i])
		}
	}

	// Locate each shard's final prepare/decide pair.
	type tail struct {
		seg             string
		prepOff, decOff int64
	}
	tails := make([]tail, nShards)
	for i := 0; i < nShards; i++ {
		segs, err := dataFiles(filepath.Join(dir, fmt.Sprintf("shard-%d", i)), "wal-", ".log")
		if err != nil || len(segs) != 1 {
			t.Fatalf("shard %d segments: %v %v", i, segs, err)
		}
		recs, err := scanWALRecords(segs[0])
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) < 2 {
			t.Fatalf("shard %d: %d records", i, len(recs))
		}
		dec, prep := recs[len(recs)-1], recs[len(recs)-2]
		if dec.Type != recCrossDecide || prep.Type != recCrossPrepare {
			t.Fatalf("shard %d tail types %d,%d, want prepare,decide", i, prep.Type, dec.Type)
		}
		tails[i] = tail{seg: segs[0], prepOff: prep.Off, decOff: dec.Off}
	}

	// reopenCut copies the cluster, truncates shard i's log at cuts[i]
	// (0 = no cut), reopens, and returns the recovered workload.
	reopenCut := func(name string, cuts [nShards]int64) *ShardedWorkload {
		t.Helper()
		scratch := filepath.Join(t.TempDir(), name)
		for i := 0; i < nShards; i++ {
			sub := fmt.Sprintf("shard-%d", i)
			if err := copyDir(filepath.Join(scratch, sub), filepath.Join(dir, sub)); err != nil {
				t.Fatal(err)
			}
			if cuts[i] > 0 {
				if err := os.Truncate(filepath.Join(scratch, sub, filepath.Base(tails[i].seg)), cuts[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		re, err := OpenShardedTree(scratch, nShards, spec, reldb.OpenOptions{Sync: reldb.SyncNone, CheckpointInterval: -1}, false)
		if err != nil {
			t.Fatalf("%s: reopen: %v", name, err)
		}
		for i := 0; i < nShards; i++ {
			if xids := re.C.DB(i).InDoubt(); len(xids) != 0 {
				t.Fatalf("%s: shard %d still in doubt: %v", name, i, xids)
			}
		}
		return re
	}
	check := func(name string, re *ShardedWorkload, want []uint64) {
		t.Helper()
		defer re.Close()
		got := clusterDigests(re)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: shard %d digest %x, want %x (half-committed island)", name, i, got[i], want[i])
			}
		}
	}

	// Decide lost on shard 1: shard 0's decision is the cluster commit
	// point — recovery must commit the in-doubt prepare on shard 1.
	check("decide-lost-1", reopenCut("decide-lost-1", [nShards]int64{0, tails[1].decOff}), after)
	// Symmetric: decide lost on shard 0.
	check("decide-lost-0", reopenCut("decide-lost-0", [nShards]int64{tails[0].decOff, 0}), after)
	// Both decides lost: no decision anywhere — presumed abort, both
	// shards back to the before-state.
	check("both-decides-lost", reopenCut("both-decides-lost", [nShards]int64{tails[0].decOff, tails[1].decOff}), before)
	// Both pairs lost entirely (crash before any prepare was durable):
	// the update never happened anywhere.
	check("both-prepares-lost", reopenCut("both-prepares-lost", [nShards]int64{tails[0].prepOff, tails[1].prepOff}), before)
}

// crashShardChildEnv carries the data dir to the re-executed child.
const crashShardChildEnv = "PENGUIN_CRASH_SHARD_DIR"

// TestCrashMatrixShardKill9 SIGKILLs a child driving sharded stress
// (constant cross-shard 2PC traffic) and recovers the cluster: every
// acknowledged per-shard generation survives, replicas agree, and every
// recoverable instance is whole and uniformly stamped.
func TestCrashMatrixShardKill9(t *testing.T) {
	if dir := os.Getenv(crashShardChildEnv); dir != "" {
		crashShardChild(dir)
		return // unreachable: the child loops until killed
	}

	const nShards = 2
	dir := t.TempDir()
	ack := filepath.Join(dir, "acked")
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashMatrixShardKill9$", "-test.v")
	cmd.Env = append(os.Environ(), crashShardChildEnv+"="+dir)
	var childOut strings.Builder
	cmd.Stdout, cmd.Stderr = &childOut, &childOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if data, err := os.ReadFile(ack); err == nil && strings.Count(string(data), "\n") >= 2 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("child never acknowledged traffic; output:\n%s", childOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(31 * time.Millisecond) // land the kill inside a traffic round
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	if strings.Contains(childOut.String(), "CHILD-ERROR") {
		t.Fatalf("child failed before the kill:\n%s", childOut.String())
	}

	// Last complete ack line: "gen0 digest0 gen1 digest1".
	ackGen := make([]uint64, nShards)
	ackDigest := make([]uint64, nShards)
	acked := false
	f, err := os.Open(ack)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2*nShards {
			continue
		}
		g := make([]uint64, nShards)
		d := make([]uint64, nShards)
		ok := true
		for i := 0; i < nShards; i++ {
			var e1, e2 error
			g[i], e1 = strconv.ParseUint(fields[2*i], 10, 64)
			d[i], e2 = strconv.ParseUint(fields[2*i+1], 16, 64)
			if e1 != nil || e2 != nil {
				ok = false
			}
		}
		if ok {
			copy(ackGen, g)
			copy(ackDigest, d)
			acked = true
		}
	}
	f.Close()
	if !acked {
		t.Fatalf("no complete ack line; output:\n%s", childOut.String())
	}

	// Reopen: shard.Open replays both logs and resolves in-doubt
	// prepares cluster-wide before returning.
	sw, err := OpenShardedTree(dir, nShards, shardCrashSpec.Tree, reldb.OpenOptions{CheckpointInterval: -1}, false)
	if err != nil {
		t.Fatalf("reopen after kill -9: %v", err)
	}
	defer sw.Close()

	// Durability: no acknowledged per-shard generation may be lost.
	for i := 0; i < nShards; i++ {
		g := sw.C.DB(i).Generation()
		if g < ackGen[i] {
			t.Fatalf("shard %d recovered generation %d lost acknowledged %d", i, g, ackGen[i])
		}
		if g == ackGen[i] {
			if got := DigestDatabase(sw.C.DB(i)); got != ackDigest[i] {
				t.Fatalf("shard %d digest %x != acknowledged %x at gen %d", i, got, ackDigest[i], g)
			}
		}
	}

	// Replication: the peninsula replicas must agree byte-for-byte — a
	// half-committed cross-shard update would leave them divergent.
	reps, err := digestReplicas(sw, sw.Shards[0].PeninsulaRels)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < nShards; i++ {
		if reps[i] != reps[0] {
			t.Fatalf("replica divergence after recovery: shard 0 %x, shard %d %x", reps[0], i, reps[i])
		}
	}

	// Translation atomicity per instance, across shards.
	for k := 0; k < shardCrashSpec.Tree.Roots; k++ {
		inst, ok, err := sw.C.InstantiateByKey(ShardedObject, reldb.Tuple{reldb.Int(int64(k))})
		if err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
		if !ok {
			continue // killed between this key's VO-CD and VO-CI
		}
		if msg := checkInstance(sw.Shards[0], shardCrashSpec.Tree, inst); msg != "" {
			t.Fatalf("key %d recovered torn: %s", k, msg)
		}
	}

	// And the cluster still accepts updates: a fresh pivot-only insert
	// routes, translates, and commits.
	def, err := sw.C.Object(ShardedObject, 0)
	if err != nil {
		t.Fatal(err)
	}
	fresh := viewobject.MustNewInstance(def, reldb.Tuple{reldb.Int(999999), reldb.String("post-crash")})
	if _, err := sw.C.InsertInstance(ShardedObject, fresh); err != nil {
		t.Fatalf("post-crash insert: %v", err)
	}
}

// crashShardChild is the killed process: durable sharded stress rounds
// forever with fast background checkpointers racing the traffic,
// acknowledging per-shard "gen digest" pairs into a synced side file
// after each round.
func crashShardChild(dir string) {
	fail := func(err error) {
		fmt.Printf("CHILD-ERROR: %v\n", err)
		os.Exit(1)
	}
	sw, err := OpenShardedTree(dir, 2, shardCrashSpec.Tree, reldb.OpenOptions{CheckpointInterval: 50 * time.Millisecond}, true)
	if err != nil {
		fail(err)
	}
	ack, err := os.OpenFile(filepath.Join(dir, "acked"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fail(err)
	}
	for {
		if _, err := RunShardedStressOn(sw, shardCrashSpec); err != nil {
			fail(err)
		}
		line := ""
		for i := 0; i < sw.C.N(); i++ {
			line += fmt.Sprintf("%d %x ", sw.C.DB(i).Generation(), DigestDatabase(sw.C.DB(i)))
		}
		if _, err := fmt.Fprintln(ack, strings.TrimSpace(line)); err != nil {
			fail(err)
		}
		if err := ack.Sync(); err != nil {
			fail(err)
		}
	}
}
