// Sharded stress: the RunStress reader/writer mix driven through the
// shard coordinator. Writers route VO-R / VO-CD / VO-CI by pivot key;
// with peninsulas in the tree every cycle exercises the cross-shard
// two-phase commit (peninsula rows are replicated), and without them
// every commit takes the single-shard fast path. Readers check the same
// torn-instance invariants as the unsharded run — an instance assembled
// across a half-committed cross-shard update would fail the uniform-
// stamp check, and a replica divergence shows up as a reader error.
// Materialized readers are not part of the sharded mix (the
// materializer caches one database's delta stream, not a cluster's).
package workload

import (
	"fmt"
	"sync"
	"sync/atomic"

	"penguin/internal/obs"
	"penguin/internal/reldb"
	"penguin/internal/viewobject"
)

// RunShardedStress builds an in-memory sharded workload and drives the
// stress mix over its coordinator until every writer finishes.
func RunShardedStress(spec StressSpec, shards int) (*StressResult, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if spec.MaterializedReaders > 0 {
		return nil, fmt.Errorf("workload: sharded stress does not support materialized readers")
	}
	before := obs.Capture()
	sw, err := NewShardedTree(spec.Tree, shards)
	if err != nil {
		return nil, err
	}
	return runShardedStress(sw, spec, before)
}

// RunShardedStressOn drives the stress mix over an existing sharded
// workload — the sharded crash harness uses it against a durable
// cluster it needs to observe and kill.
func RunShardedStressOn(sw *ShardedWorkload, spec StressSpec) (*StressResult, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return runShardedStress(sw, spec, obs.Capture())
}

func runShardedStress(sw *ShardedWorkload, spec StressSpec, before obs.Snapshot) (*StressResult, error) {
	w0 := sw.Shards[0]

	// Stamp every instance once, serially, so the uniform-stamp
	// invariant holds from the first concurrent read.
	for k := 0; k < spec.Tree.Roots; k++ {
		if _, err := shardedReplaceStamped(sw, int64(k), "seed"); err != nil {
			return nil, fmt.Errorf("workload: initial stamping of key %d: %w", k, err)
		}
	}

	res := &StressResult{}
	var mu sync.Mutex
	violate := func(format string, args ...any) {
		mu.Lock()
		if len(res.Violations) < 20 {
			res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}

	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < spec.Readers; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := r; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				key := reldb.Tuple{reldb.Int(int64(i % spec.Tree.Roots))}
				inst, ok, err := sw.C.InstantiateByKey(ShardedObject, key)
				if err != nil {
					violate("reader %d: instantiate %s: %v", r, key, err)
					return
				}
				if !ok {
					atomic.AddInt64(&res.Absent, 1)
					continue
				}
				atomic.AddInt64(&res.Instantiations, 1)
				if msg := checkInstance(w0, spec.Tree, inst); msg != "" {
					violate("reader %d: key %s: %s", r, key, msg)
					return
				}
			}
		}(r)
	}

	// Fan-out readers: the full-object query runs on every shard's
	// snapshot and merges; each instance passes the same invariants.
	for r := 0; r < spec.ParallelReaders; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				insts, err := sw.C.Instantiate(ShardedObject, viewobject.Query{})
				if err != nil {
					violate("fan-out reader %d: instantiate: %v", r, err)
					return
				}
				atomic.AddInt64(&res.ParallelInstantiations, int64(len(insts)))
				for _, inst := range insts {
					if msg := checkInstance(w0, spec.Tree, inst); msg != "" {
						violate("fan-out reader %d: %s", r, msg)
						return
					}
				}
			}
		}(r)
	}

	var writers sync.WaitGroup
	writerErrs := make(chan error, spec.Writers)
	for wr := 0; wr < spec.Writers; wr++ {
		writers.Add(1)
		go func(wr int) {
			defer writers.Done()
			for c := 0; c < spec.Cycles; c++ {
				for k := wr; k < spec.Tree.Roots; k += spec.Writers {
					stamped, err := shardedReplaceStamped(sw, int64(k), stamp(wr, c))
					if err != nil {
						writerErrs <- fmt.Errorf("writer %d: VO-R key %d: %w", wr, k, err)
						return
					}
					atomic.AddInt64(&res.Replaces, 1)
					if _, err := sw.C.DeleteByKey(ShardedObject, reldb.Tuple{reldb.Int(int64(k))}); err != nil {
						writerErrs <- fmt.Errorf("writer %d: VO-CD key %d: %w", wr, k, err)
						return
					}
					atomic.AddInt64(&res.Deletes, 1)
					if _, err := sw.C.InsertInstance(ShardedObject, stamped); err != nil {
						writerErrs <- fmt.Errorf("writer %d: VO-CI key %d: %w", wr, k, err)
						return
					}
					atomic.AddInt64(&res.Inserts, 1)
				}
			}
		}(wr)
	}
	writers.Wait()
	close(done)
	readers.Wait()
	close(writerErrs)
	res.Metrics = obs.Capture().Sub(before)
	for err := range writerErrs {
		return res, err
	}
	return res, nil
}

// shardedReplaceStamped instantiates the current instance at root key k
// through the coordinator, stamps every island node with s, and
// executes the VO-R translation on the key's home shard.
func shardedReplaceStamped(sw *ShardedWorkload, k int64, s string) (*viewobject.Instance, error) {
	cur, ok, err := sw.C.InstantiateByKey(ShardedObject, reldb.Tuple{reldb.Int(k)})
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("no instance with key %d", k)
	}
	stamped := cur.Clone()
	for _, relName := range sw.Shards[0].IslandRels {
		for _, n := range stamped.NodesAt(relName) {
			if err := n.SetAttr(sw.Shards[0].Def, "V", reldb.String(s)); err != nil {
				return nil, err
			}
		}
	}
	if _, err := sw.C.ReplaceInstance(ShardedObject, cur, stamped); err != nil {
		return nil, err
	}
	return stamped, nil
}
