package workload

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"penguin/internal/obs"
	"penguin/internal/viewobject"
	"penguin/internal/vupdate"
)

// spanNames collects the set of span names in a trace.
func spanNames(tr obs.SlowTrace) map[string]int {
	out := make(map[string]int)
	for _, s := range tr.Spans {
		out[s.Name]++
	}
	return out
}

// TestStressCapturesSlowUpdateTrace is the tracing acceptance check: a
// deliberately slowed VO-CD translation under the concurrent stress
// workload must be captured by the flight recorder as one connected span
// tree — the update root, its §5 step children, the commit child with
// the delta publish under it — and export as valid Chrome trace JSON.
// RunStress itself validates every retained tree (well-formed parents,
// child intervals inside the parent) and reports failures as violations.
func TestStressCapturesSlowUpdateTrace(t *testing.T) {
	rec := obs.NewRecorder(2*time.Millisecond, 32)
	obs.Default.SetRecorder(rec)
	t.Cleanup(func() { obs.Default.SetRecorder(nil) })

	// Slow only the translate step, so the update root (which contains
	// it) crosses the 2ms retention threshold while unrelated serves do
	// not have to.
	prev := vupdate.SetStepProbe(func(st obs.Step, object string) {
		if st == obs.StepTranslate {
			time.Sleep(4 * time.Millisecond)
		}
	})
	t.Cleanup(func() { vupdate.SetStepProbe(prev) })

	res, err := RunStress(StressSpec{
		Tree:                TreeSpec{Depth: 2, Width: 2, Fanout: 2, Roots: 4, Peninsulas: 1},
		Readers:             2,
		MaterializedReaders: 1,
		Writers:             2,
		Cycles:              2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.SlowTraces == 0 {
		t.Fatal("the slowed updates produced no slow traces")
	}
	if got := res.Metrics.Counter("obs.slowtrace.captured"); got != res.SlowTraces {
		t.Errorf("SlowTraces = %d but metric delta = %d", res.SlowTraces, got)
	}

	retained := rec.Traces()
	var update *obs.SlowTrace
	for i := range retained {
		if retained[i].Name == "vupdate.update" {
			update = &retained[i]
			break
		}
	}
	if update == nil {
		t.Fatalf("no vupdate.update trace retained; got %d traces", len(retained))
	}
	if err := update.Validate(); err != nil {
		t.Fatalf("update trace malformed: %v", err)
	}
	names := spanNames(*update)
	for _, want := range []string{
		"vupdate.update",
		"vupdate.step.translate",
		"reldb.commit",
	} {
		if names[want] == 0 {
			t.Errorf("update trace missing span %q; has %v", want, names)
		}
	}
	// The commit child must hang off the update root, and the delta
	// publish (the workload's trees always produce deltas) off the commit.
	byID := make(map[uint64]obs.Event)
	for _, s := range update.Spans {
		byID[s.SpanID] = s
	}
	for _, s := range update.Spans {
		switch s.Name {
		case "reldb.commit":
			if s.ParentID != update.TraceID {
				t.Errorf("commit parent is %d (%s), want the update root",
					s.ParentID, byID[s.ParentID].Name)
			}
		case "reldb.delta.publish":
			if byID[s.ParentID].Name != "reldb.commit" {
				t.Errorf("delta publish parent is %q, want reldb.commit", byID[s.ParentID].Name)
			}
		case "vupdate.step.translate":
			if s.ParentID != update.TraceID {
				t.Errorf("translate step parent is %d, want the update root", s.ParentID)
			}
			if s.Dur < 4*time.Millisecond {
				t.Errorf("translate step Dur = %s, probe slept 4ms inside it", s.Dur)
			}
		}
	}

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, []obs.SlowTrace{*update}); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(chrome.TraceEvents) != len(update.Spans) {
		t.Errorf("chrome export has %d events for %d spans", len(chrome.TraceEvents), len(update.Spans))
	}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "X" || ev.Ts < 0 {
			t.Errorf("malformed chrome event %+v", ev)
		}
	}
}

// TestMaterializerServeTraceNesting deterministically drives one
// materializer through its serve outcomes with a capture-everything
// recorder and checks the cause-named children: the first serve rebuilds
// under a "miss" span (the instantiate nested inside it), and a serve
// after a commit patches under a "patch" span.
func TestMaterializerServeTraceNesting(t *testing.T) {
	w, err := BuildTree(TreeSpec{Depth: 1, Width: 2, Fanout: 2, Roots: 3, Peninsulas: 1})
	if err != nil {
		t.Fatal(err)
	}
	mat := viewobject.NewMaterializer(w.DB, w.Def)
	defer mat.Close()

	rec := obs.NewRecorder(0, 8)
	obs.Default.SetRecorder(rec)
	t.Cleanup(func() { obs.Default.SetRecorder(nil) })

	// Cold cache: the serve must rebuild (miss) with instantiate inside.
	if _, err := mat.Instantiate(viewobject.Query{}); err != nil {
		t.Fatal(err)
	}
	traces := rec.Traces()
	if len(traces) == 0 {
		t.Fatal("cold serve retained no trace")
	}
	cold := traces[len(traces)-1]
	if cold.Name != "viewobject.materialize.serve" {
		t.Fatalf("cold trace root = %q", cold.Name)
	}
	if err := cold.Validate(); err != nil {
		t.Fatalf("cold serve trace: %v", err)
	}
	names := spanNames(cold)
	if names["viewobject.materialize.miss"] == 0 || names["viewobject.instantiate"] == 0 {
		t.Errorf("cold serve spans = %v, want a miss child wrapping an instantiate", names)
	}

	// Commit one delta, then serve again: the trace carries a patch span.
	u := vupdate.NewUpdater(vupdate.PermissiveTranslator(w.Def))
	if _, err := replaceStamped(w, u, 0, "patched"); err != nil {
		t.Fatal(err)
	}
	rec.Clear()
	if _, err := mat.Instantiate(viewobject.Query{}); err != nil {
		t.Fatal(err)
	}
	traces = rec.Traces()
	var patched *obs.SlowTrace
	for i := range traces {
		if spanNames(traces[i])["viewobject.materialize.patch"] > 0 {
			patched = &traces[i]
		}
	}
	if patched == nil {
		t.Fatalf("no serve trace with a patch span; retained %d traces", len(traces))
	}
	if err := patched.Validate(); err != nil {
		t.Fatalf("patched serve trace: %v", err)
	}
}
