// Package workload generates synthetic schemas, data, and view objects
// for the scaling experiments (E12): ownership trees of configurable
// depth and width (the dependency island's shape), optional referencing
// peninsulas, and deterministic data with configurable fan-out. All
// identifiers are sequential so runs are reproducible.
package workload

import (
	"fmt"

	"penguin/internal/reldb"
	"penguin/internal/structural"
	"penguin/internal/viewobject"
)

// TreeSpec sizes a synthetic ownership-tree workload.
type TreeSpec struct {
	// Depth is the number of ownership levels below the pivot (0 = pivot
	// only).
	Depth int
	// Width is the number of owned child relations per relation.
	Width int
	// Fanout is the number of owned tuples per parent tuple.
	Fanout int
	// Roots is the number of pivot tuples.
	Roots int
	// Peninsulas adds that many relations referencing the pivot, each
	// with Fanout referencing tuples per pivot tuple.
	Peninsulas int
}

// Relations returns the number of island relations the spec generates.
func (s TreeSpec) Relations() int {
	n, level := 1, 1
	for d := 0; d < s.Depth; d++ {
		level *= s.Width
		n += level
	}
	return n
}

// Workload is a generated database, structural schema, and view object.
type Workload struct {
	DB  *reldb.Database
	G   *structural.Graph
	Def *viewobject.Definition
	// IslandRels and PeninsulaRels list the generated relation names.
	IslandRels    []string
	PeninsulaRels []string
}

// BuildTree generates the workload: relations N0 (pivot), N0_c for its
// children, N0_c_c for grandchildren, and so on; ownership connections
// between each parent and child; peninsula relations P0..Pn referencing
// the pivot; seeded data; and a view object spanning every generated
// relation with the pivot at the root.
func BuildTree(spec TreeSpec) (*Workload, error) {
	return BuildTreeIn(reldb.NewDatabase(), spec)
}

// BuildTreeIn generates the same workload into an existing (empty)
// database — typically one opened with reldb.OpenDatabase, so the
// generated schema, seed data, and all subsequent stress traffic flow
// through the write-ahead log (the crash-matrix harness drives this).
func BuildTreeIn(db *reldb.Database, spec TreeSpec) (*Workload, error) {
	return buildTree(db, spec, true, true)
}

// BuildTreeSchemaIn creates the relations, connections, and definition
// but seeds no data — the sharded build uses it to broadcast identical
// DDL to every shard and then seeds each shard with its own partition.
func BuildTreeSchemaIn(db *reldb.Database, spec TreeSpec) (*Workload, error) {
	return buildTree(db, spec, true, false)
}

// AttachTree rebuilds the structural graph and view-object definition
// for a spec over a database that already holds the generated relations
// — a database recovered from disk. No relations are created and no
// data is seeded; only the connection graph (and its edge indexes,
// derived state the WAL does not carry) is re-registered.
func AttachTree(db *reldb.Database, spec TreeSpec) (*Workload, error) {
	return buildTree(db, spec, false, false)
}

func buildTree(db *reldb.Database, spec TreeSpec, create, seed bool) (*Workload, error) {
	if spec.Width < 0 || spec.Depth < 0 || spec.Roots < 1 {
		return nil, fmt.Errorf("workload: invalid spec %+v", spec)
	}
	g := structural.NewGraph(db)
	w := &Workload{DB: db, G: g}

	// Pivot relation: key K0, payload V.
	pivotName := "N0"
	pivotAttrs := []reldb.Attribute{
		{Name: "K0", Type: reldb.KindInt},
		{Name: "V", Type: reldb.KindString, Nullable: true},
	}
	if create {
		db.MustCreateRelation(reldb.MustSchema(pivotName, pivotAttrs, []string{"K0"}))
	}
	w.IslandRels = append(w.IslandRels, pivotName)

	// Node definition tree for the view object.
	rootNode := &viewobject.Node{Relation: pivotName}

	type frame struct {
		name    string
		keyAttr []string // key attribute names, root-to-here
		node    *viewobject.Node
		depth   int
	}
	stack := []frame{{name: pivotName, keyAttr: []string{"K0"}, node: rootNode, depth: 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.depth >= spec.Depth {
			continue
		}
		for c := 0; c < spec.Width; c++ {
			childName := fmt.Sprintf("%s_%d", f.name, c)
			childKey := append(append([]string(nil), f.keyAttr...), fmt.Sprintf("K%d", f.depth+1))
			attrs := make([]reldb.Attribute, 0, len(childKey)+1)
			for _, k := range childKey {
				attrs = append(attrs, reldb.Attribute{Name: k, Type: reldb.KindInt})
			}
			attrs = append(attrs, reldb.Attribute{Name: "V", Type: reldb.KindString, Nullable: true})
			if create {
				db.MustCreateRelation(reldb.MustSchema(childName, attrs, childKey))
			}
			conn := &structural.Connection{
				Name: f.name + ">" + childName, Type: structural.Ownership,
				From: f.name, To: childName,
				FromAttrs: f.keyAttr, ToAttrs: f.keyAttr,
			}
			// AddConnection registers the edge index over f.keyAttr on the
			// child, so traversal probes instead of scanning.
			if err := g.AddConnection(conn); err != nil {
				return nil, err
			}
			childNode := &viewobject.Node{
				Relation: childName,
				Path:     []structural.Edge{{Conn: conn, Forward: true}},
			}
			f.node.Children = append(f.node.Children, childNode)
			w.IslandRels = append(w.IslandRels, childName)
			stack = append(stack, frame{name: childName, keyAttr: childKey, node: childNode, depth: f.depth + 1})
		}
	}

	// Peninsulas referencing the pivot.
	for pIdx := 0; pIdx < spec.Peninsulas; pIdx++ {
		name := fmt.Sprintf("P%d", pIdx)
		if create {
			db.MustCreateRelation(reldb.MustSchema(name, []reldb.Attribute{
				{Name: "PK", Type: reldb.KindInt},
				{Name: "K0", Type: reldb.KindInt},
				{Name: "V", Type: reldb.KindString, Nullable: true},
			}, []string{"PK", "K0"}))
		}
		conn := &structural.Connection{
			Name: name + ">" + pivotName, Type: structural.Reference,
			From: name, To: pivotName,
			FromAttrs: []string{"K0"}, ToAttrs: []string{"K0"},
		}
		if err := g.AddConnection(conn); err != nil {
			return nil, err
		}
		rootNode.Children = append(rootNode.Children, &viewobject.Node{
			Relation: name,
			Path:     []structural.Edge{{Conn: conn, Forward: false}},
		})
		w.PeninsulaRels = append(w.PeninsulaRels, name)
	}

	def, err := viewobject.NewDefinition(fmt.Sprintf("tree-d%d-w%d", spec.Depth, spec.Width), g, rootNode)
	if err != nil {
		return nil, err
	}
	w.Def = def
	if seed {
		if err := seedTree(w, spec); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// seedTree fills the generated relations: Roots pivot tuples, Fanout
// owned tuples per parent tuple per child relation, and Fanout peninsula
// tuples per pivot tuple per peninsula.
func seedTree(w *Workload, spec TreeSpec) error {
	return w.DB.RunInTx(func(tx *reldb.Tx) error {
		return forEachSeedRow(w.Def, spec, func(_ int64, rel string, _ bool, t reldb.Tuple) error {
			return tx.Insert(rel, t)
		})
	})
}

// forEachSeedRow enumerates every row the seed generates, tagging each
// with the pivot root key it descends from and whether its relation
// belongs to the dependency island. The single-database seed inserts
// them all into one transaction; the sharded seed routes island rows to
// the root's home shard and replicates the rest.
func forEachSeedRow(def *viewobject.Definition, spec TreeSpec, emit func(root int64, rel string, island bool, t reldb.Tuple) error) error {
	// Pivot rows.
	for r := 0; r < spec.Roots; r++ {
		if err := emit(int64(r), "N0", true, reldb.Tuple{reldb.Int(int64(r)), reldb.String(fmt.Sprintf("root%d", r))}); err != nil {
			return err
		}
	}
	// Owned rows, level by level, following the definition tree. Every
	// key is root-to-here, so pk[0] is the owning pivot root.
	var fill func(n *viewobject.Node, parentKeys []reldb.Tuple) error
	fill = func(n *viewobject.Node, parentKeys []reldb.Tuple) error {
		for _, child := range n.Children {
			if len(child.Path) == 1 && child.Path[0].Conn.Type == structural.Ownership {
				var childKeys []reldb.Tuple
				for _, pk := range parentKeys {
					root, _ := pk[0].AsInt()
					for f := 0; f < spec.Fanout; f++ {
						key := append(pk.Clone(), reldb.Int(int64(f)))
						tuple := append(key.Clone(), reldb.String("v"))
						if err := emit(root, child.Relation, true, tuple); err != nil {
							return err
						}
						childKeys = append(childKeys, key)
					}
				}
				if err := fill(child, childKeys); err != nil {
					return err
				}
				continue
			}
			// Peninsula: Fanout referencing rows per pivot tuple.
			pk := 0
			for _, rootKey := range parentKeys {
				root, _ := rootKey[0].AsInt()
				for f := 0; f < spec.Fanout; f++ {
					tuple := reldb.Tuple{reldb.Int(int64(pk)), rootKey[0], reldb.String("p")}
					if err := emit(root, child.Relation, false, tuple); err != nil {
						return err
					}
					pk++
				}
			}
		}
		return nil
	}
	roots := make([]reldb.Tuple, spec.Roots)
	for r := range roots {
		roots[r] = reldb.Tuple{reldb.Int(int64(r))}
	}
	return fill(def.Root(), roots)
}
