package workload

import (
	"regexp"
	"strings"
	"testing"

	"penguin/internal/obs"
)

// TestMetricsLint is the exposition-format gate behind `make
// metrics-lint`: after a real concurrent workload, the live registry
// must render as valid Prometheus text exposition carrying the
// per-view-object update-pipeline series and the per-relation access
// attribution the ISSUE requires of a scrape.
func TestMetricsLint(t *testing.T) {
	if _, err := RunStress(StressSpec{
		Tree:    TreeSpec{Depth: 1, Width: 2, Fanout: 2, Roots: 4, Peninsulas: 1},
		Readers: 2,
		Writers: 2,
		Cycles:  3,
	}); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := obs.WriteProm(&b, obs.Capture()); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if err := obs.CheckExposition(text); err != nil {
		t.Fatalf("live snapshot fails exposition lint: %v", err)
	}

	stepSeries := regexp.MustCompile(`(?m)^vupdate_step_[a-z_]+_ns_bucket\{object="[^"]+",le="[^"]+"\} \d+$`)
	if !stepSeries.MatchString(text) {
		t.Error("no per-object vupdate_step_*_ns series in exposition")
	}
	if !strings.Contains(text, `reldb_relation_scanned{relation="N0"}`) {
		t.Error(`no reldb_relation_scanned{relation="N0"} series in exposition`)
	}
	if !strings.Contains(text, "# TYPE reldb_relation_scanned counter") {
		t.Error("reldb_relation_scanned missing its # TYPE header")
	}
}
