package workload

import (
	"regexp"
	"strings"
	"testing"

	"penguin/internal/obs"
	"penguin/internal/reldb"
)

// TestMetricsLint is the exposition-format gate behind `make
// metrics-lint`: after a real concurrent workload, the live registry
// must render as valid Prometheus text exposition carrying the
// per-view-object update-pipeline series and the per-relation access
// attribution the ISSUE requires of a scrape.
func TestMetricsLint(t *testing.T) {
	if _, err := RunStress(StressSpec{
		Tree:    TreeSpec{Depth: 1, Width: 2, Fanout: 2, Roots: 4, Peninsulas: 1},
		Readers: 2,
		Writers: 2,
		Cycles:  3,
	}); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := obs.WriteProm(&b, obs.Capture()); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if err := obs.CheckExposition(text); err != nil {
		t.Fatalf("live snapshot fails exposition lint: %v", err)
	}

	stepSeries := regexp.MustCompile(`(?m)^vupdate_step_[a-z_]+_ns_bucket\{object="[^"]+",le="[^"]+"\} \d+$`)
	if !stepSeries.MatchString(text) {
		t.Error("no per-object vupdate_step_*_ns series in exposition")
	}
	if !strings.Contains(text, `reldb_relation_scanned{relation="N0"}`) {
		t.Error(`no reldb_relation_scanned{relation="N0"} series in exposition`)
	}
	if !strings.Contains(text, "# TYPE reldb_relation_scanned counter") {
		t.Error("reldb_relation_scanned missing its # TYPE header")
	}

	// Runtime introspection: the gauge families sampled at snapshot time
	// must be present, typed, and plausibly live.
	for _, family := range []string{
		"runtime_goroutines",
		"runtime_heap_inuse_bytes",
		"runtime_gc_pause_total_ns",
		"runtime_gc_cycles",
	} {
		if !strings.Contains(text, "# TYPE "+family+" gauge") {
			t.Errorf("%s missing its # TYPE gauge header", family)
		}
	}
	if !regexp.MustCompile(`(?m)^runtime_goroutines [1-9]\d*$`).MatchString(text) {
		t.Error("runtime_goroutines is zero or absent in exposition")
	}

	// The flight-recorder counters expose whether slow-trace capture ran
	// (zero-valued without a recorder, but the families must exist).
	for _, family := range []string{"obs_slowtrace_captured", "obs_slowtrace_dropped"} {
		if !strings.Contains(text, "# TYPE "+family+" counter") {
			t.Errorf("%s missing its # TYPE counter header", family)
		}
	}
}

// TestMetricsLintMaterialize is the exposition gate for the materialized
// view-object cache: after the stress mode that runs materialized readers
// against VO writers, the registry must still render as valid Prometheus
// exposition, and every viewobject_materialize_* family must be present
// with its # TYPE header and nonzero activity where the run guarantees it.
func TestMetricsLintMaterialize(t *testing.T) {
	if _, err := RunStress(StressSpec{
		Tree:                TreeSpec{Depth: 1, Width: 2, Fanout: 2, Roots: 4, Peninsulas: 1},
		Readers:             1,
		MaterializedReaders: 2,
		Writers:             2,
		Cycles:              3,
		ReadTxLagAlert:      4,
	}); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := obs.WriteProm(&b, obs.Capture()); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if err := obs.CheckExposition(text); err != nil {
		t.Fatalf("live snapshot fails exposition lint: %v", err)
	}

	for _, family := range []string{
		"viewobject_materialize_hits",
		"viewobject_materialize_misses",
		"viewobject_materialize_patches",
		"viewobject_materialize_falls_back",
		"viewobject_materialize_resyncs",
	} {
		if !strings.Contains(text, "# TYPE "+family+" counter") {
			t.Errorf("%s missing its # TYPE counter header", family)
		}
	}
	if !strings.Contains(text, "# TYPE viewobject_materialize_patch_ns histogram") {
		t.Error("viewobject_materialize_patch_ns missing its # TYPE histogram header")
	}
	served := regexp.MustCompile(`(?m)^viewobject_materialize_(hits|misses) [1-9]\d*$`)
	if !served.MatchString(text) {
		t.Error("materialize serve counters all zero after a materialized stress run")
	}
	if !regexp.MustCompile(`(?m)^viewobject_materialize_patch_ns_count \d+$`).MatchString(text) {
		t.Error("no viewobject_materialize_patch_ns histogram series in exposition")
	}
	if !regexp.MustCompile(`(?m)^reldb_delta_publishes [1-9]\d*$`).MatchString(text) {
		t.Error("delta stream published nothing during a materialized stress run")
	}
}

// TestMetricsLintWAL is the exposition gate for the durability layer:
// after durable stress traffic, a checkpoint, and a reopen-with-replay,
// every reldb_wal_* family must be present with its # TYPE header and
// nonzero where the run guarantees activity.
func TestMetricsLintWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := reldb.OpenDatabaseWith(dir, reldb.OpenOptions{CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := BuildTreeIn(db, TreeSpec{Depth: 1, Width: 1, Fanout: 1, Roots: 2, Peninsulas: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunStressOn(w, StressSpec{
		Tree:    TreeSpec{Depth: 1, Width: 1, Fanout: 1, Roots: 2, Peninsulas: 1},
		Readers: 1,
		Writers: 2,
		Cycles:  2,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// More traffic past the checkpoint so the reopen below replays it.
	if err := db.RunInTx(func(tx *reldb.Tx) error {
		return tx.Insert("N0", reldb.Tuple{reldb.Int(999), reldb.String("tail")})
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := reldb.OpenDatabaseWith(dir, reldb.OpenOptions{CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()

	var b strings.Builder
	if err := obs.WriteProm(&b, obs.Capture()); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if err := obs.CheckExposition(text); err != nil {
		t.Fatalf("live snapshot fails exposition lint: %v", err)
	}

	for _, family := range []string{
		"reldb_wal_appends",
		"reldb_wal_bytes",
		"reldb_wal_fsyncs",
		"reldb_wal_replayed",
		"reldb_wal_checkpoints",
	} {
		if !strings.Contains(text, "# TYPE "+family+" counter") {
			t.Errorf("%s missing its # TYPE counter header", family)
		}
	}
	if !strings.Contains(text, "# TYPE reldb_wal_fsync_ns histogram") {
		t.Error("reldb_wal_fsync_ns missing its # TYPE histogram header")
	}
	for _, family := range []string{
		"reldb_wal_appends", "reldb_wal_fsyncs", "reldb_wal_replayed", "reldb_wal_checkpoints",
	} {
		if !regexp.MustCompile(`(?m)^` + family + ` [1-9]\d*$`).MatchString(text) {
			t.Errorf("%s is zero after durable traffic, checkpoint, and replay", family)
		}
	}
	if !regexp.MustCompile(`(?m)^reldb_wal_fsync_ns_count [1-9]\d*$`).MatchString(text) {
		t.Error("no reldb_wal_fsync_ns histogram samples after durable commits")
	}
}
