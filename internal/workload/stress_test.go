package workload

import (
	"testing"

	"penguin/internal/viewobject"
)

func TestRunStressValidation(t *testing.T) {
	if _, err := RunStress(StressSpec{}); err == nil {
		t.Fatal("zero spec accepted")
	}
	if _, err := RunStress(StressSpec{
		Tree:    TreeSpec{Depth: 1, Width: 1, Fanout: 1, Roots: 2},
		Readers: 1, Writers: 3, Cycles: 1,
	}); err == nil {
		t.Fatal("more writers than roots accepted")
	}
}

// TestRunStress drives the full concurrent workload: readers instantiate
// through snapshots while writers cycle VO-R / VO-CD / VO-CI. Run with
// `go test -race` this is the tentpole proof that the read path is race-
// clean; the invariant checks prove no torn instances either way.
func TestRunStress(t *testing.T) {
	spec := StressSpec{
		Tree:    TreeSpec{Depth: 2, Width: 2, Fanout: 2, Roots: 6, Peninsulas: 1},
		Readers: 4,
		Writers: 2,
		Cycles:  8,
	}
	res, err := RunStress(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	wantOps := int64(spec.Cycles * spec.Tree.Roots)
	if res.Replaces != wantOps || res.Deletes != wantOps || res.Inserts != wantOps {
		t.Fatalf("writer ops: R=%d D=%d I=%d, want %d each",
			res.Replaces, res.Deletes, res.Inserts, wantOps)
	}
	if res.Instantiations == 0 {
		t.Fatal("readers never observed an instance")
	}
	// The run's summary line: workload tallies plus the engine-metric
	// delta RunStress captured (commits, step timings, tuples scanned).
	t.Log(res.Summary())
}

// TestRunStressParallelReaders adds full-object parallel-instantiation
// readers to the mix: multi-worker snapshot reads racing VO writers.
// Under `go test -race` this is the proof that the parallel fan-out and
// the lookup-plan cache are race-clean; the invariant checks prove no
// torn instances; and the plan-cache counters must reconcile exactly —
// every lookup that consulted the cache was either a hit or a miss.
func TestRunStressParallelReaders(t *testing.T) {
	// Force a 4-worker budget regardless of GOMAXPROCS so the parallel
	// path engages even in a GOMAXPROCS=1 CI job.
	prev := viewobject.SetParallelism(4)
	defer viewobject.SetParallelism(prev)

	spec := StressSpec{
		Tree:            TreeSpec{Depth: 2, Width: 2, Fanout: 2, Roots: 8, Peninsulas: 1},
		Readers:         2,
		ParallelReaders: 3,
		Writers:         2,
		Cycles:          6,
	}
	res, err := RunStress(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	if res.ParallelInstantiations == 0 {
		t.Fatal("parallel readers never observed an instance")
	}
	if n := res.Metrics.Counter("viewobject.parallel.workers"); n == 0 {
		t.Fatal("parallel fan-out never engaged")
	}

	// Plan-cache coherence over the whole run: lookups == hits + misses,
	// with actual reuse (hits) and actual generational churn
	// (invalidations — every writer commit clones warm relations).
	lookups := res.Metrics.Counter("reldb.plancache.lookups")
	hits := res.Metrics.Counter("reldb.plancache.hits")
	misses := res.Metrics.Counter("reldb.plancache.misses")
	if lookups == 0 {
		t.Fatal("plan cache never consulted")
	}
	if lookups != hits+misses {
		t.Fatalf("plancache.lookups %d != hits %d + misses %d", lookups, hits, misses)
	}
	if hits == 0 {
		t.Fatal("plan cache never hit: plans are not being reused")
	}
	if res.Metrics.Counter("reldb.plancache.clone_drops") == 0 {
		t.Fatal("no plan-cache clone drops despite writer commits")
	}
	// Clone drops are copy-on-write churn, not index DDL: the run performs
	// no DDL, so the invalidation counter must stay untouched.
	if n := res.Metrics.Counter("reldb.plancache.invalidations"); n != 0 {
		t.Fatalf("%d plan-cache invalidations counted without any index DDL", n)
	}
	t.Log(res.Summary())
}

// TestRunStressMaterializedReaders adds readers served through the shared
// materialized cache: delta-stream patching racing VO writers. Under
// `go test -race` this proves the materializer's sync/patch path is
// race-clean against commits; the invariant checks prove a patched
// instance is never torn. The run also holds one ReadTx across all writer
// activity with a low lag-alert threshold, so both stale-ReadTx
// observation points (Fork and Close) must fire.
func TestRunStressMaterializedReaders(t *testing.T) {
	spec := StressSpec{
		Tree:                TreeSpec{Depth: 2, Width: 2, Fanout: 2, Roots: 6, Peninsulas: 1},
		Readers:             2,
		MaterializedReaders: 3,
		Writers:             2,
		Cycles:              6,
		ReadTxLagAlert:      8,
	}
	res, err := RunStress(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	if res.MaterializedInstantiations == 0 {
		t.Fatal("materialized readers never observed an instance")
	}
	// The cache must have been exercised end to end: built cold once,
	// then serving (sum of all serve outcomes covers every read), with
	// actual delta patching under writer churn.
	misses := res.Metrics.Counter("viewobject.materialize.misses")
	hits := res.Metrics.Counter("viewobject.materialize.hits")
	if misses == 0 {
		t.Fatal("materializer never built cold")
	}
	if hits == 0 {
		t.Fatal("materializer never served from the patched cache")
	}
	if res.Metrics.Counter("viewobject.materialize.patches") == 0 {
		t.Fatalf("materializer never patched despite writer commits (hits=%d misses=%d fallbacks=%d resyncs=%d mat_insts=%d)",
			hits, misses,
			res.Metrics.Counter("viewobject.materialize.falls_back"),
			res.Metrics.Counter("viewobject.materialize.resyncs"),
			res.MaterializedInstantiations)
	}
	// 18 writer commits against an 8-generation threshold: the aged
	// ReadTx must have tripped both alerts.
	if res.Metrics.Counter("reldb.readtx.stale_forks") == 0 {
		t.Fatal("aged ReadTx fork did not trip the stale-fork alert")
	}
	if res.Metrics.Counter("reldb.readtx.stale_closes") == 0 {
		t.Fatal("aged ReadTx close did not trip the stale-close alert")
	}
	t.Log(res.Summary())
}
