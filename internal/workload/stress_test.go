package workload

import "testing"

func TestRunStressValidation(t *testing.T) {
	if _, err := RunStress(StressSpec{}); err == nil {
		t.Fatal("zero spec accepted")
	}
	if _, err := RunStress(StressSpec{
		Tree:    TreeSpec{Depth: 1, Width: 1, Fanout: 1, Roots: 2},
		Readers: 1, Writers: 3, Cycles: 1,
	}); err == nil {
		t.Fatal("more writers than roots accepted")
	}
}

// TestRunStress drives the full concurrent workload: readers instantiate
// through snapshots while writers cycle VO-R / VO-CD / VO-CI. Run with
// `go test -race` this is the tentpole proof that the read path is race-
// clean; the invariant checks prove no torn instances either way.
func TestRunStress(t *testing.T) {
	spec := StressSpec{
		Tree:    TreeSpec{Depth: 2, Width: 2, Fanout: 2, Roots: 6, Peninsulas: 1},
		Readers: 4,
		Writers: 2,
		Cycles:  8,
	}
	res, err := RunStress(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	wantOps := int64(spec.Cycles * spec.Tree.Roots)
	if res.Replaces != wantOps || res.Deletes != wantOps || res.Inserts != wantOps {
		t.Fatalf("writer ops: R=%d D=%d I=%d, want %d each",
			res.Replaces, res.Deletes, res.Inserts, wantOps)
	}
	if res.Instantiations == 0 {
		t.Fatal("readers never observed an instance")
	}
	// The run's summary line: workload tallies plus the engine-metric
	// delta RunStress captured (commits, step timings, tuples scanned).
	t.Log(res.Summary())
}
