package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"penguin/internal/obs"
)

// Open-loop load generation for the HTTP serving tier (DESIGN.md §14).
//
// An open-loop generator fires requests on a fixed arrival schedule,
// independent of how fast responses come back — the way real traffic
// arrives. A closed-loop driver (like RunStress) waits for each reply
// before sending the next request, so a slow server automatically slows
// the offered load and hides its own latency problems ("coordinated
// omission"). Against an admission-controlled tier the open-loop shape
// is the honest one: when the server saturates, the generator keeps
// offering load and the 429s show up in the shed counts instead of
// silently stretching the inter-arrival gaps.

// Loadgen op labels in the workload.openloop.latency_ns{endpoint=...}
// family: one logical read (GET by key) and one logical update (GET the
// document, mutate one attribute, POST :replace).
const (
	opRead   = "read"
	opUpdate = "update"
)

// OpenLoopSpec configures one open-loop run against a serving tier.
type OpenLoopSpec struct {
	// BaseURL locates the serving tier, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Object is the view-object name the run targets.
	Object string
	// TargetRPS is the arrival rate of logical operations per second.
	TargetRPS float64
	// Duration bounds the arrival schedule.
	Duration time.Duration
	// ReadFraction in [0,1] is the share of operations that are reads
	// (GET by key); the rest are read-mutate-replace updates. The mix is
	// deterministic in the tick index, so two runs with the same spec
	// offer the same sequence.
	ReadFraction float64
	// MutateAttr is the pivot attribute update operations rewrite
	// ("Title" when empty). It must be a non-key string attribute.
	MutateAttr string
	// Keys are the pivot keys to cycle through, each already in URL path
	// form (slash-separated for compound keys). Empty discovers them
	// from GET /objects/{object}.
	Keys []string
	// SLOp50 and SLOp99 are latency objectives checked against the
	// run's client-side histogram; zero disables the check.
	SLOp50, SLOp99 time.Duration
	// Reg receives the workload.openloop.* metrics (obs.Default if nil).
	Reg *obs.Registry
	// Client overrides the HTTP client (a 10s-timeout client if nil).
	Client *http.Client
}

// OpenLoopResult reports one run.
type OpenLoopResult struct {
	// Sent counts logical operations dispatched; Sent = OK + Shed +
	// Rejected + Errors.
	Sent int64
	// OK counts operations that completed 2xx.
	OK int64
	// Shed counts operations the server answered 429 (admission
	// control); shed is the expected overload outcome, not an error.
	Shed int64
	// Rejected counts other 4xx/409 outcomes — e.g. two concurrent
	// replaces of the same instance, one losing the translation race.
	Rejected int64
	// Errors counts 5xx responses and transport failures.
	Errors int64
	// Elapsed is the wall time from first to last dispatch completion.
	Elapsed time.Duration
	// AchievedRPS is Sent / Elapsed — how close the arrival schedule
	// came to TargetRPS.
	AchievedRPS float64
	// P50 and P99 are client-side latency quantiles over completed
	// operations, interpolated from the run's histogram delta.
	P50, P99 time.Duration
	// SLOViolations lists human-readable objective misses (empty on a
	// passing run).
	SLOViolations []string
}

// String renders the result as a one-run report.
func (r OpenLoopResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "open-loop: %d ops in %v (%.1f rps", r.Sent, r.Elapsed.Round(time.Millisecond), r.AchievedRPS)
	fmt.Fprintf(&b, "), ok %d, shed %d, rejected %d, errors %d\n", r.OK, r.Shed, r.Rejected, r.Errors)
	fmt.Fprintf(&b, "latency: p50 %v, p99 %v\n", r.P50, r.P99)
	if len(r.SLOViolations) == 0 {
		fmt.Fprintf(&b, "SLO: pass\n")
	} else {
		for _, v := range r.SLOViolations {
			fmt.Fprintf(&b, "SLO VIOLATION: %s\n", v)
		}
	}
	return b.String()
}

// runPaced dispatches fire(i) on an absolute arrival schedule: tick i
// fires at start + i/rps, computed from the run's start rather than the
// previous tick, so per-tick sleep jitter does not accumulate into
// drift. fire runs on its own goroutine — a slow handler never delays
// the schedule (the open-loop property). Returns ticks dispatched.
func runPaced(rps float64, d time.Duration, fire func(i int)) int {
	interval := time.Duration(float64(time.Second) / rps)
	start := time.Now()
	end := start.Add(d)
	var wg sync.WaitGroup
	i := 0
	for {
		due := start.Add(time.Duration(i) * interval)
		if due.After(end) || due.Equal(end) {
			break
		}
		if wait := time.Until(due); wait > 0 {
			time.Sleep(wait)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fire(i)
		}(i)
		i++
	}
	wg.Wait()
	return i
}

// RunOpenLoop drives one open-loop run and reports it.
func RunOpenLoop(spec OpenLoopSpec) (OpenLoopResult, error) {
	var res OpenLoopResult
	if spec.TargetRPS <= 0 {
		return res, fmt.Errorf("workload: open loop needs TargetRPS > 0")
	}
	if spec.Duration <= 0 {
		return res, fmt.Errorf("workload: open loop needs Duration > 0")
	}
	if spec.ReadFraction < 0 || spec.ReadFraction > 1 {
		return res, fmt.Errorf("workload: ReadFraction %v outside [0,1]", spec.ReadFraction)
	}
	reg := spec.Reg
	if reg == nil {
		reg = obs.Default
	}
	client := spec.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	mutate := spec.MutateAttr
	if mutate == "" {
		mutate = "Title"
	}
	base := strings.TrimSuffix(spec.BaseURL, "/")
	keys := spec.Keys
	if len(keys) == 0 {
		var err error
		keys, err = discoverKeys(client, base, spec.Object)
		if err != nil {
			return res, err
		}
	}
	if len(keys) == 0 {
		return res, fmt.Errorf("workload: object %s has no instances to target", spec.Object)
	}

	reg.Endpoints.Intern(opRead)
	reg.Endpoints.Intern(opUpdate)
	before := reg.OpenLoopNs.Stat()

	var sent, ok, shed, rejected, errs atomic.Int64
	// The deterministic read/update mix: tick i is a read iff adding
	// ReadFraction advanced the integer part of i*ReadFraction — the
	// Bresenham split, so mixes like 0.9 interleave evenly instead of
	// bursting.
	isRead := func(i int) bool {
		return int(float64(i+1)*spec.ReadFraction) > int(float64(i)*spec.ReadFraction)
	}

	runStart := time.Now()
	n := runPaced(spec.TargetRPS, spec.Duration, func(i int) {
		key := keys[i%len(keys)]
		op := opUpdate
		if isRead(i) {
			op = opRead
		}
		sent.Add(1)
		reg.OpenLoopSent.Inc()
		opStart := time.Now()
		var status int
		var err error
		if op == opRead {
			status, err = doRead(client, base, spec.Object, key)
		} else {
			status, err = doUpdate(client, base, spec.Object, key, mutate, i)
		}
		ns := time.Since(opStart).Nanoseconds()
		reg.OpenLoopNs.Observe(ns)
		reg.OpenLoopNsByEndpoint.With(op).Observe(ns)
		switch {
		case err != nil:
			reg.OpenLoopErrors.Inc()
			errs.Add(1)
		case status == http.StatusTooManyRequests:
			reg.OpenLoopShed.Inc()
			shed.Add(1)
		case status >= 500:
			reg.OpenLoopErrors.Inc()
			errs.Add(1)
		case status >= 400:
			rejected.Add(1)
		default:
			ok.Add(1)
		}
	})
	res.Elapsed = time.Since(runStart)
	res.Sent = int64(n)
	res.OK = ok.Load()
	res.Shed = shed.Load()
	res.Rejected = rejected.Load()
	res.Errors = errs.Load()
	if res.Elapsed > 0 {
		res.AchievedRPS = float64(res.Sent) / res.Elapsed.Seconds()
	}
	stat := reg.OpenLoopNs.Stat().Sub(before)
	res.P50 = time.Duration(stat.Quantile(0.50))
	res.P99 = time.Duration(stat.Quantile(0.99))
	if spec.SLOp50 > 0 && res.P50 > spec.SLOp50 {
		res.SLOViolations = append(res.SLOViolations,
			fmt.Sprintf("p50 %v exceeds objective %v", res.P50, spec.SLOp50))
	}
	if spec.SLOp99 > 0 && res.P99 > spec.SLOp99 {
		res.SLOViolations = append(res.SLOViolations,
			fmt.Sprintf("p99 %v exceeds objective %v", res.P99, spec.SLOp99))
	}
	return res, nil
}

// doRead performs one logical read: GET /objects/{object}/{key}.
func doRead(client *http.Client, base, object, key string) (int, error) {
	resp, err := client.Get(base + "/objects/" + object + "/" + key)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// doUpdate performs one logical update: fetch the instance document,
// rewrite one attribute, and POST the result through VO-R. The first
// non-2xx leg short-circuits and reports that leg's status.
func doUpdate(client *http.Client, base, object, key, attr string, tick int) (int, error) {
	resp, err := client.Get(base + "/objects/" + object + "/" + key)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	var doc map[string]any
	err = dec.Decode(&doc)
	resp.Body.Close()
	if err != nil {
		return 0, fmt.Errorf("workload: bad instance document: %w", err)
	}
	doc[attr] = fmt.Sprintf("load-%d", tick)
	body, err := json.Marshal(map[string]any{
		"key":      strings.Split(key, "/"),
		"instance": doc,
	})
	if err != nil {
		return 0, err
	}
	resp, err = client.Post(base+"/objects/"+object+":replace", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// discoverKeys learns the object's pivot-key attribute names from
// GET /objects, then collects each instance's key values from
// GET /objects/{object}. Key values become URL path segments.
func discoverKeys(client *http.Client, base, object string) ([]string, error) {
	var listing struct {
		Objects []struct {
			Name string   `json:"name"`
			Key  []string `json:"key"`
		} `json:"objects"`
	}
	if err := getJSON(client, base+"/objects", &listing); err != nil {
		return nil, err
	}
	var keyAttrs []string
	for _, o := range listing.Objects {
		if o.Name == object {
			keyAttrs = o.Key
		}
	}
	if keyAttrs == nil {
		return nil, fmt.Errorf("workload: serving tier has no object %q", object)
	}
	var result struct {
		Instances []map[string]any `json:"instances"`
	}
	if err := getJSON(client, base+"/objects/"+object, &result); err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(result.Instances))
	for _, inst := range result.Instances {
		segs := make([]string, len(keyAttrs))
		for i, attr := range keyAttrs {
			seg, err := keySegment(inst[attr])
			if err != nil {
				return nil, fmt.Errorf("workload: instance key attribute %s: %w", attr, err)
			}
			segs[i] = seg
		}
		keys = append(keys, strings.Join(segs, "/"))
	}
	return keys, nil
}

// keySegment renders one wire-form key value as a URL path segment.
func keySegment(raw any) (string, error) {
	switch x := raw.(type) {
	case string:
		return x, nil
	case json.Number:
		return x.String(), nil
	case map[string]any:
		for _, tag := range []string{"int", "float"} {
			if s, ok := x[tag].(string); ok {
				return s, nil
			}
		}
	}
	return "", fmt.Errorf("value %v (%T) is not usable as a key segment", raw, raw)
}

// getJSON fetches url and decodes the 2xx JSON body into out.
func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("workload: GET %s: %d (%s)", url, resp.StatusCode, bytes.TrimSpace(body))
	}
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	return dec.Decode(out)
}
