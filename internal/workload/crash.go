// Crash-injection harness: machinery for proving that recovery restores
// exactly the last committed state at any kill point.
//
// The harness drives real stress traffic (BuildTreeIn + RunStressOn)
// over a durable database while a delta subscription shadows every
// committed generation into an in-memory model. Each generation's model
// state is digested, giving an oracle: after truncating the WAL at any
// byte offset and reopening, the recovered database must digest equal to
// the oracle at the generation the surviving log prefix reaches — full
// replay or reported corruption, never a state between generations.
package workload

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"

	"penguin/internal/reldb"
)

// shadowState models the database as relation name → set of encoded
// tuples, fed by the delta stream. Existence of a relation matters (a
// created-but-empty relation changes the digest), so structural deltas
// toggle map entries.
type shadowState map[string]map[string]struct{}

// apply folds one delta batch into the model. Structural deltas carry no
// create/drop marker; since a name exists at most once, the toggle rule
// (absent → created, present → dropped) reconstructs the DDL.
func (s shadowState) apply(b reldb.DeltaBatch) error {
	for _, d := range b.Deltas {
		if d.Structural {
			if _, ok := s[d.Relation]; ok {
				delete(s, d.Relation)
			} else {
				s[d.Relation] = make(map[string]struct{})
			}
			continue
		}
		rel, ok := s[d.Relation]
		if !ok {
			return fmt.Errorf("delta for unknown relation %s at gen %d", d.Relation, b.Gen)
		}
		for _, t := range d.Deletes {
			ek := t.Encode()
			if _, ok := rel[ek]; !ok {
				return fmt.Errorf("%s gen %d: delete of absent tuple %s", d.Relation, b.Gen, t)
			}
			delete(rel, ek)
		}
		for _, rc := range d.Replaces {
			ek := rc.Old.Encode()
			if _, ok := rel[ek]; !ok {
				return fmt.Errorf("%s gen %d: replace of absent tuple %s", d.Relation, b.Gen, rc.Old)
			}
			delete(rel, ek)
			rel[rc.New.Encode()] = struct{}{}
		}
		for _, t := range d.Inserts {
			ek := t.Encode()
			if _, ok := rel[ek]; ok {
				return fmt.Errorf("%s gen %d: insert of present tuple %s", d.Relation, b.Gen, t)
			}
			rel[ek] = struct{}{}
		}
	}
	return nil
}

// digest hashes the model deterministically: sorted relation names, each
// followed by its sorted tuple encodings.
func (s shadowState) digest() uint64 {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	h := fnv.New64a()
	for _, n := range names {
		io.WriteString(h, n)
		h.Write([]byte{0})
		eks := make([]string, 0, len(s[n]))
		for ek := range s[n] {
			eks = append(eks, ek)
		}
		sort.Strings(eks)
		for _, ek := range eks {
			io.WriteString(h, ek)
			h.Write([]byte{1})
		}
		h.Write([]byte{2})
	}
	return h.Sum64()
}

// DigestDatabase hashes a database's committed state with the same
// function as shadowState.digest, so a recovered database can be
// compared against the oracle's per-generation digests.
func DigestDatabase(db *reldb.Database) uint64 {
	rtx := db.BeginRead()
	defer rtx.Close()
	s := make(shadowState)
	for _, name := range rtx.Names() {
		rel := rtx.MustRelation(name)
		set := make(map[string]struct{}, rel.Count())
		rel.Scan(func(t reldb.Tuple) bool {
			set[t.Encode()] = struct{}{}
			return true
		})
		s[name] = set
	}
	return s.digest()
}

// genOracle is the per-generation digest table a shadow subscription
// accumulates: Digests[g] is the state digest after generation g.
type genOracle struct {
	Digests map[uint64]uint64
	Head    uint64
}

// buildOracle drains a subscription registered at generation 0 and
// digests every generation up to head. It fails on a gap or overflow —
// the oracle must witness every commit.
func buildOracle(sub *reldb.Subscription, head uint64) (*genOracle, error) {
	o := &genOracle{Digests: make(map[uint64]uint64), Head: head}
	s := make(shadowState)
	o.Digests[0] = s.digest()
	batches, lost := sub.Poll()
	if lost {
		return nil, fmt.Errorf("oracle subscription overflowed; raise its buffer")
	}
	next := uint64(1)
	for _, b := range batches {
		if b.Gen != next {
			return nil, fmt.Errorf("oracle stream gap: got gen %d, want %d", b.Gen, next)
		}
		if err := s.apply(b); err != nil {
			return nil, err
		}
		o.Digests[b.Gen] = s.digest()
		next++
	}
	if next != head+1 {
		return nil, fmt.Errorf("oracle saw generations through %d, head is %d", next-1, head)
	}
	return o, nil
}

// walRecordInfo locates one record inside a segment file: the frame
// starts at Off, ends at End, and carries generation Gen. Type is the
// record type byte (commit=1, create=2, drop=3, cross-prepare=4,
// cross-decide=5 — the format of DESIGN.md §13).
type walRecordInfo struct {
	Off, End int64
	Gen      uint64
	Type     byte
}

// walSegmentMagicLen is the size of the segment header ("PNGWAL01" —
// the format documented in DESIGN.md §13, parsed here independently so
// the harness double-checks the writer against the spec).
const walSegmentMagicLen = 8

// scanWALRecords parses a segment file's record frames (u32 len,
// u32 crc32c(payload), payload = u8 type | u64 gen | body) without
// applying them, returning each record's extent and generation.
func scanWALRecords(path string) ([]walRecordInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < walSegmentMagicLen || string(data[:walSegmentMagicLen]) != "PNGWAL01" {
		return nil, fmt.Errorf("%s: bad segment header", path)
	}
	var recs []walRecordInfo
	off := int64(walSegmentMagicLen)
	for off < int64(len(data)) {
		if off+8 > int64(len(data)) {
			return nil, fmt.Errorf("%s: torn frame at %d", path, off)
		}
		length := int64(binary.BigEndian.Uint32(data[off : off+4]))
		crc := binary.BigEndian.Uint32(data[off+4 : off+8])
		end := off + 8 + length
		if end > int64(len(data)) {
			return nil, fmt.Errorf("%s: record at %d extends past end", path, off)
		}
		payload := data[off+8 : end]
		if crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)) != crc {
			return nil, fmt.Errorf("%s: checksum mismatch at %d", path, off)
		}
		if len(payload) < 9 {
			return nil, fmt.Errorf("%s: record at %d too short for type+gen", path, off)
		}
		recs = append(recs, walRecordInfo{Off: off, End: end, Gen: binary.BigEndian.Uint64(payload[1:9]), Type: payload[0]})
		off = end
	}
	return recs, nil
}

// copyDir copies a flat data directory (no subdirectories) so a crash
// copy can be mutilated and reopened without disturbing the original.
func copyDir(dst, src string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// dataFiles lists the WAL segments and snapshots in a data directory,
// sorted by name (segments sort by start generation).
func dataFiles(dir, prefix, suffix string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if len(name) > len(prefix)+len(suffix) && name[:len(prefix)] == prefix && name[len(name)-len(suffix):] == suffix {
			out = append(out, filepath.Join(dir, name))
		}
	}
	sort.Strings(out)
	return out, nil
}
