package workload

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"penguin/internal/reldb"
	"penguin/internal/viewobject"
)

// crashSpec is the stress traffic every crash-matrix test runs: small
// enough that the full truncation matrix stays fast, concurrent enough
// (readers racing writers) that the suite is meaningful under -race.
var crashSpec = StressSpec{
	Tree:    TreeSpec{Depth: 1, Width: 1, Fanout: 1, Roots: 2, Peninsulas: 1},
	Readers: 1,
	Writers: 2,
	Cycles:  2,
}

// crashRun builds a durable workload in dir, runs stress traffic over
// it, closes it, and returns the per-generation digest oracle its
// shadow subscription accumulated.
func crashRun(t *testing.T, dir string) *genOracle {
	t.Helper()
	db, err := reldb.OpenDatabaseWith(dir, reldb.OpenOptions{CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Subscribe before the build so the oracle witnesses every
	// generation from 1 (DDL included).
	sub := db.Subscribe(1 << 16)
	w, err := BuildTreeIn(db, crashSpec.Tree)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunStressOn(w, crashSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("stress violations before crash: %v", res.Violations)
	}
	head := db.Generation()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	oracle, err := buildOracle(sub, head)
	if err != nil {
		t.Fatal(err)
	}
	return oracle
}

// reopenAt copies the data dir, truncates the tail segment to cut
// bytes, reopens, and asserts the recovered database is byte-for-byte
// the oracle state at the generation the surviving prefix reaches —
// then that the next generation advance continues the sequence.
func reopenAt(t *testing.T, src, tailSeg string, cut int64, wantGen uint64, oracle *genOracle, scratch string) {
	t.Helper()
	if err := copyDir(scratch, src); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(scratch, filepath.Base(tailSeg)), cut); err != nil {
		t.Fatal(err)
	}
	db, err := reldb.OpenDatabaseWith(scratch, reldb.OpenOptions{Sync: reldb.SyncNone, CheckpointInterval: -1})
	if err != nil {
		t.Fatalf("cut at %d: reopen: %v", cut, err)
	}
	defer db.Close()
	if g := db.Generation(); g != wantGen {
		t.Fatalf("cut at %d: recovered generation %d, want %d", cut, g, wantGen)
	}
	want, ok := oracle.Digests[wantGen]
	if !ok {
		t.Fatalf("cut at %d: oracle has no digest for gen %d", cut, wantGen)
	}
	if got := DigestDatabase(db); got != want {
		t.Fatalf("cut at %d: recovered state digest %x != oracle digest %x at gen %d", cut, got, want, wantGen)
	}
	// Generation continuity: the next advance (a DDL, valid on any
	// recovered state) publishes wantGen+1 to a fresh subscriber —
	// the delta stream continues gap-free after recovery.
	sub := db.Subscribe(4)
	if _, err := db.CreateRelation(reldb.MustSchema("ZZZ_CONT", []reldb.Attribute{
		{Name: "K", Type: reldb.KindInt},
	}, []string{"K"})); err != nil {
		t.Fatalf("cut at %d: post-recovery DDL: %v", cut, err)
	}
	batches, lost := sub.Poll()
	if lost || len(batches) != 1 || batches[0].Gen != wantGen+1 {
		t.Fatalf("cut at %d: post-recovery advance published %v (lost=%v), want gen %d", cut, batches, lost, wantGen+1)
	}
}

// TestCrashMatrixTruncation cuts the WAL at every record boundary and
// at byte-group sub-offsets inside every record (mid-length, mid-CRC,
// payload start, mid-payload, last byte), plus inside the segment
// header. Every cut must recover to exactly the oracle state of the
// last whole record — full replay of the surviving prefix, never a
// partial or torn state.
func TestCrashMatrixTruncation(t *testing.T) {
	dir := t.TempDir()
	oracle := crashRun(t, dir)

	segs, err := dataFiles(dir, "wal-", ".log")
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v, %v", segs, err)
	}
	recs, err := scanWALRecords(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(recs)) != oracle.Head {
		t.Fatalf("%d WAL records for %d generations", len(recs), oracle.Head)
	}

	// genAt: the generation the log prefix [0, cut) reaches.
	genAt := func(cut int64) uint64 {
		var g uint64
		for _, r := range recs {
			if r.End <= cut {
				g = r.Gen
			}
		}
		return g
	}

	cuts := map[int64]bool{0: true, 3: true, walSegmentMagicLen: true}
	for _, r := range recs {
		payload := r.End - (r.Off + 8)
		for _, c := range []int64{r.Off, r.Off + 1, r.Off + 4, r.Off + 6, r.Off + 8, r.Off + 8 + payload/2, r.End - 1, r.End} {
			cuts[c] = true
		}
	}
	n := 0
	for cut := range cuts {
		reopenAt(t, dir, segs[0], cut, genAt(cut), oracle, filepath.Join(t.TempDir(), fmt.Sprintf("cut%d", cut)))
		n++
	}
	t.Logf("verified %d truncation points over %d records", n, len(recs))
}

// TestCrashMatrixCorruption flips a byte inside records away from the
// tail: that cannot be a torn append, so recovery must refuse with
// ErrWALCorrupt rather than silently truncate committed generations.
func TestCrashMatrixCorruption(t *testing.T) {
	dir := t.TempDir()
	crashRun(t, dir)
	segs, _ := dataFiles(dir, "wal-", ".log")
	recs, err := scanWALRecords(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 3 {
		t.Fatalf("need >= 3 records, have %d", len(recs))
	}
	for _, idx := range []int{0, len(recs) / 2, len(recs) - 2} {
		r := recs[idx]
		scratch := filepath.Join(t.TempDir(), fmt.Sprintf("flip%d", idx))
		if err := copyDir(scratch, dir); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(scratch, filepath.Base(segs[0]))
		data, _ := os.ReadFile(path)
		data[r.Off+8+(r.End-r.Off-8)/2] ^= 0x10
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := reldb.OpenDatabase(scratch)
		if !errors.Is(err, reldb.ErrWALCorrupt) {
			t.Fatalf("record %d byte flip: open = %v, want ErrWALCorrupt", idx, err)
		}
	}
}

// TestCrashMatrixCheckpoint runs traffic across a checkpoint, then
// injects every crash the checkpoint protocol can leave behind:
// truncations of the post-checkpoint tail (recovery = snapshot + tail
// prefix), a torn named snapshot (distinct corruption error), and a
// deleted snapshot whose segments were already pruned (generation gap).
func TestCrashMatrixCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := reldb.OpenDatabaseWith(dir, reldb.OpenOptions{CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	sub := db.Subscribe(1 << 16)
	w, err := BuildTreeIn(db, crashSpec.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunStressOn(w, crashSpec); err != nil {
		t.Fatal(err)
	}
	ckGen, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint traffic lands in the rolled tail segment.
	if _, err := RunStressOn(w, crashSpec); err != nil {
		t.Fatal(err)
	}
	head := db.Generation()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	oracle, err := buildOracle(sub, head)
	if err != nil {
		t.Fatal(err)
	}

	snaps, _ := dataFiles(dir, "snap-", ".pngw")
	segs, _ := dataFiles(dir, "wal-", ".log")
	if len(snaps) != 1 || len(segs) != 1 {
		t.Fatalf("after checkpoint: snaps=%v segs=%v, want one of each (pruned)", snaps, segs)
	}
	recs, err := scanWALRecords(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Gen <= ckGen {
			t.Fatalf("tail segment holds gen %d at or below checkpoint %d", r.Gen, ckGen)
		}
	}

	// Truncation matrix over the tail: below any surviving record the
	// state is the snapshot itself (ckGen).
	genAt := func(cut int64) uint64 {
		g := ckGen
		for _, r := range recs {
			if r.End <= cut {
				g = r.Gen
			}
		}
		return g
	}
	cuts := map[int64]bool{walSegmentMagicLen: true}
	for _, idx := range []int{0, len(recs) / 2, len(recs) - 1} {
		r := recs[idx]
		for _, c := range []int64{r.Off, r.Off + 5, r.Off + 8 + (r.End-r.Off-8)/2, r.End} {
			cuts[c] = true
		}
	}
	for cut := range cuts {
		reopenAt(t, dir, segs[0], cut, genAt(cut), oracle, filepath.Join(t.TempDir(), fmt.Sprintf("ck%d", cut)))
	}

	// A torn snapshot is distinct, reported corruption.
	scratch := filepath.Join(t.TempDir(), "tornsnap")
	if err := copyDir(scratch, dir); err != nil {
		t.Fatal(err)
	}
	snapCopy := filepath.Join(scratch, filepath.Base(snaps[0]))
	data, _ := os.ReadFile(snapCopy)
	if err := os.WriteFile(snapCopy, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reldb.OpenDatabase(scratch); !errors.Is(err, reldb.ErrSnapshotCorrupt) {
		t.Fatalf("torn snapshot: open = %v, want ErrSnapshotCorrupt", err)
	}

	// Deleting the snapshot leaves a generation gap (its segments were
	// pruned): refused, not bridged.
	scratch = filepath.Join(t.TempDir(), "nosnap")
	if err := copyDir(scratch, dir); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(scratch, filepath.Base(snaps[0])))
	if _, err := reldb.OpenDatabase(scratch); !errors.Is(err, reldb.ErrWALCorrupt) {
		t.Fatalf("missing snapshot: open = %v, want ErrWALCorrupt", err)
	}

	// A crashed checkpoint's .tmp stray is ignored and cleaned up.
	scratch = filepath.Join(t.TempDir(), "tmpstray")
	if err := copyDir(scratch, dir); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(scratch, "snap-ffffffffffffffff.pngw.tmp")
	os.WriteFile(stray, []byte("half"), 0o644)
	re, err := reldb.OpenDatabaseWith(scratch, reldb.OpenOptions{Sync: reldb.SyncNone, CheckpointInterval: -1})
	if err != nil {
		t.Fatalf("tmp stray: %v", err)
	}
	if g := re.Generation(); g != head {
		t.Fatalf("tmp stray: recovered gen %d, want %d", g, head)
	}
	re.Close()
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("tmp stray not cleaned up")
	}
}

// crashChildEnv carries the data dir to the re-executed child process.
const crashChildEnv = "PENGUIN_CRASH_CHILD_DIR"

// TestCrashMatrixKill9 is the end-to-end crash test: a child process
// (this test binary re-executed) runs durable stress traffic with a
// checkpointer racing it, acknowledging each completed round in a
// synced side file; the parent SIGKILLs it mid-traffic and reopens the
// directory. Every acknowledged generation must survive, the recovered
// state must be translation-atomic (instance shape and stamp
// invariants), and the generation sequence must continue.
func TestCrashMatrixKill9(t *testing.T) {
	if dir := os.Getenv(crashChildEnv); dir != "" {
		crashChild(dir)
		return // unreachable: the child loops until killed
	}

	dir := t.TempDir()
	ack := filepath.Join(dir, "acked") // inside dir is fine: no reserved suffix
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashMatrixKill9$", "-test.v")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	var childOut strings.Builder
	cmd.Stdout, cmd.Stderr = &childOut, &childOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait for at least two acknowledged rounds, then kill mid-flight.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if data, err := os.ReadFile(ack); err == nil && strings.Count(string(data), "\n") >= 2 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("child never acknowledged traffic; output:\n%s", childOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(37 * time.Millisecond) // land the kill inside a traffic round
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	if strings.Contains(childOut.String(), "CHILD-ERROR") {
		t.Fatalf("child failed before the kill:\n%s", childOut.String())
	}

	// Last complete acknowledged line: "gen digest".
	var ackGen, ackDigest uint64
	f, err := os.Open(ack)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			continue
		}
		g, err1 := strconv.ParseUint(fields[0], 10, 64)
		d, err2 := strconv.ParseUint(fields[1], 16, 64)
		if err1 == nil && err2 == nil {
			ackGen, ackDigest = g, d
		}
	}
	f.Close()
	if ackGen == 0 {
		t.Fatalf("no complete ack line; output:\n%s", childOut.String())
	}

	db, err := reldb.OpenDatabaseWith(dir, reldb.OpenOptions{CheckpointInterval: -1})
	if err != nil {
		t.Fatalf("reopen after kill -9: %v", err)
	}
	defer db.Close()
	gen := db.Generation()
	if gen < ackGen {
		t.Fatalf("recovered generation %d lost acknowledged generation %d", gen, ackGen)
	}
	if gen == ackGen {
		if got := DigestDatabase(db); got != ackDigest {
			t.Fatalf("recovered digest %x != acknowledged digest %x at gen %d", got, ackDigest, gen)
		}
	}
	// Translation atomicity: every recoverable instance is whole and
	// uniformly stamped — commits are atomic, so any committed prefix
	// passes the same invariants the live readers check.
	w, err := AttachTree(db, crashSpec.Tree)
	if err != nil {
		t.Fatal(err)
	}
	rtx := db.BeginRead()
	for k := 0; k < crashSpec.Tree.Roots; k++ {
		inst, ok, err := viewobject.InstantiateByKey(rtx, w.Def, reldb.Tuple{reldb.Int(int64(k))})
		if err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
		if !ok {
			continue // killed between this key's VO-CD and VO-CI
		}
		if msg := checkInstance(w, crashSpec.Tree, inst); msg != "" {
			t.Fatalf("key %d recovered torn: %s", k, msg)
		}
	}
	rtx.Close()
	// And the clock still runs forward.
	before := db.Generation()
	if err := db.RunInTx(func(tx *reldb.Tx) error {
		return tx.Insert("N0", reldb.Tuple{reldb.Int(999999), reldb.String("post-crash")})
	}); err != nil {
		t.Fatal(err)
	}
	if g := db.Generation(); g != before+1 {
		t.Fatalf("post-crash commit advanced %d -> %d", before, g)
	}
}

// crashChild is the killed process: durable stress rounds forever, with
// a fast background checkpointer racing the writers, acknowledging
// "generation digest" into a synced side file after each round.
func crashChild(dir string) {
	fail := func(err error) {
		fmt.Printf("CHILD-ERROR: %v\n", err)
		os.Exit(1)
	}
	db, err := reldb.OpenDatabaseWith(dir, reldb.OpenOptions{CheckpointInterval: 50 * time.Millisecond})
	if err != nil {
		fail(err)
	}
	w, err := BuildTreeIn(db, crashSpec.Tree)
	if err != nil {
		fail(err)
	}
	ack, err := os.OpenFile(filepath.Join(dir, "acked"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fail(err)
	}
	for {
		if _, err := RunStressOn(w, crashSpec); err != nil {
			fail(err)
		}
		// RunStressOn returned: every one of its commits was
		// acknowledged, hence fsynced (SyncCommit). The ack itself is
		// synced so the parent only trusts complete lines.
		if _, err := fmt.Fprintf(ack, "%d %x\n", db.Generation(), DigestDatabase(db)); err != nil {
			fail(err)
		}
		if err := ack.Sync(); err != nil {
			fail(err)
		}
	}
}
