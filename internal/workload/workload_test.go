package workload

import (
	"testing"

	"penguin/internal/reldb"
	"penguin/internal/structural"
	"penguin/internal/viewobject"
	"penguin/internal/vupdate"
)

func TestBuildTreeShape(t *testing.T) {
	spec := TreeSpec{Depth: 2, Width: 2, Fanout: 3, Roots: 2, Peninsulas: 1}
	w, err := BuildTree(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 2 + 4 island relations.
	if got := len(w.IslandRels); got != spec.Relations() || got != 7 {
		t.Fatalf("island relations = %d, want 7", got)
	}
	if len(w.PeninsulaRels) != 1 {
		t.Fatalf("peninsulas = %d", len(w.PeninsulaRels))
	}
	// Complexity = island relations + peninsulas.
	if w.Def.Complexity() != 8 {
		t.Fatalf("complexity = %d", w.Def.Complexity())
	}
	// Row counts: roots=2; level 1: 2 rels × 2 roots × 3 = 12;
	// level 2: 4 rels × 6 parents-per-rel... each level-1 relation has
	// 6 rows; each has 2 children with 3 rows per parent row: 4 rels × 18.
	if got := w.DB.MustRelation("N0").Count(); got != 2 {
		t.Fatalf("N0 rows = %d", got)
	}
	if got := w.DB.MustRelation("N0_0").Count(); got != 6 {
		t.Fatalf("N0_0 rows = %d", got)
	}
	if got := w.DB.MustRelation("N0_0_1").Count(); got != 18 {
		t.Fatalf("N0_0_1 rows = %d", got)
	}
	if got := w.DB.MustRelation("P0").Count(); got != 6 {
		t.Fatalf("P0 rows = %d", got)
	}
}

func TestBuildTreeIntegrity(t *testing.T) {
	w, err := BuildTree(TreeSpec{Depth: 2, Width: 2, Fanout: 2, Roots: 3, Peninsulas: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := &structural.Integrity{G: w.G}
	vs, err := in.Audit(w.DB)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("violations:\n%s", structural.FormatViolations(vs))
	}
}

func TestWorkloadTopology(t *testing.T) {
	w, err := BuildTree(TreeSpec{Depth: 1, Width: 2, Fanout: 1, Roots: 1, Peninsulas: 1})
	if err != nil {
		t.Fatal(err)
	}
	topo := vupdate.Analyze(w.Def)
	if len(topo.Island()) != 3 {
		t.Fatalf("island = %v", topo.Island())
	}
	if len(topo.Peninsulas()) != 1 {
		t.Fatalf("peninsulas = %v", topo.Peninsulas())
	}
}

func TestWorkloadUpdatesEndToEnd(t *testing.T) {
	w, err := BuildTree(TreeSpec{Depth: 2, Width: 2, Fanout: 2, Roots: 3, Peninsulas: 1})
	if err != nil {
		t.Fatal(err)
	}
	u := vupdate.NewUpdater(vupdate.PermissiveTranslator(w.Def))
	// Delete root 0: pivot + 2×2 level-1 + 4×4 level-2 + 2 peninsula rows.
	res, err := u.DeleteByKey(reldb.Tuple{reldb.Int(0)})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 4 + 16 + 2
	if res.Count(vupdate.OpDelete) != want {
		t.Fatalf("deletes = %d, want %d\n%s", res.Count(vupdate.OpDelete), want, res)
	}
	in := &structural.Integrity{G: w.G}
	if vs, _ := in.Audit(w.DB); len(vs) != 0 {
		t.Fatalf("violations:\n%s", structural.FormatViolations(vs))
	}
	// Instantiate a surviving root.
	inst, ok, err := viewobject.InstantiateByKey(w.DB, w.Def, reldb.Tuple{reldb.Int(1)})
	if err != nil || !ok {
		t.Fatal(err)
	}
	// 4 level-1 + 16 level-2 + 2 peninsula components.
	total := 0
	for _, n := range w.Def.Nodes() {
		if n != w.Def.Root() {
			total += inst.Count(n.ID)
		}
	}
	if total != 22 {
		t.Fatalf("components = %d, want 22", total)
	}
}

func TestBuildTreeInvalidSpec(t *testing.T) {
	if _, err := BuildTree(TreeSpec{Roots: 0}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestSpecRelations(t *testing.T) {
	cases := []struct {
		spec TreeSpec
		want int
	}{
		{TreeSpec{Depth: 0, Width: 5}, 1},
		{TreeSpec{Depth: 1, Width: 3}, 4},
		{TreeSpec{Depth: 3, Width: 2}, 15},
	}
	for _, c := range cases {
		if got := c.spec.Relations(); got != c.want {
			t.Errorf("%+v: Relations = %d, want %d", c.spec, got, c.want)
		}
	}
}
