// Sharded workload build: the synthetic ownership tree distributed over
// a shard.Cluster. The schema (relations, connections, definition) is
// broadcast to every shard; island rows are seeded on their pivot's
// home shard only, peninsula rows are replicated everywhere — the
// placement invariant the coordinator's fast path depends on.
package workload

import (
	"fmt"

	"penguin/internal/reldb"
	"penguin/internal/reldb/shard"
	"penguin/internal/vupdate"
)

// ShardedObject is the name the tree view object registers under.
const ShardedObject = "tree"

// ShardedWorkload is a generated sharded database: the cluster, the
// spec, and each shard's local graph/definition (identical shapes).
type ShardedWorkload struct {
	C      *shard.Cluster
	Spec   TreeSpec
	Shards []*Workload
}

// NewShardedTree builds the workload over n fresh in-memory shards.
func NewShardedTree(spec TreeSpec, n int) (*ShardedWorkload, error) {
	dbs := make([]*reldb.Database, n)
	for i := range dbs {
		dbs[i] = reldb.NewDatabase()
	}
	c, err := shard.New(dbs)
	if err != nil {
		return nil, err
	}
	return buildSharded(c, spec, true)
}

// OpenShardedTree opens (or creates) a durable sharded workload under
// dir. create builds schema and seed data; with create false the tree
// is re-attached to whatever the shards recovered — the sharded crash
// harness drives both modes.
func OpenShardedTree(dir string, n int, spec TreeSpec, opts reldb.OpenOptions, create bool) (*ShardedWorkload, error) {
	c, err := shard.Open(dir, n, opts)
	if err != nil {
		return nil, err
	}
	sw, err := buildSharded(c, spec, create)
	if err != nil {
		_ = c.Close()
		return nil, err
	}
	return sw, nil
}

func buildSharded(c *shard.Cluster, spec TreeSpec, create bool) (*ShardedWorkload, error) {
	sw := &ShardedWorkload{C: c, Spec: spec, Shards: make([]*Workload, c.N())}
	err := c.AddObject(ShardedObject, func(i int, db *reldb.Database) (*vupdate.Translator, error) {
		var w *Workload
		var err error
		if create {
			w, err = BuildTreeSchemaIn(db, spec)
		} else {
			w, err = AttachTree(db, spec)
		}
		if err != nil {
			return nil, err
		}
		sw.Shards[i] = w
		return vupdate.PermissiveTranslator(w.Def), nil
	})
	if err != nil {
		return nil, err
	}
	if create {
		if err := sw.seed(); err != nil {
			return nil, err
		}
	}
	return sw, nil
}

// seed partitions the generated rows: island rows go to the pivot
// root's home shard, peninsula rows to every shard. One transaction per
// shard (setup phase; concurrent traffic starts after).
func (sw *ShardedWorkload) seed() error {
	txs := make([]*reldb.Tx, sw.C.N())
	for i := range txs {
		txs[i] = sw.C.DB(i).Begin()
	}
	err := forEachSeedRow(sw.Shards[0].Def, sw.Spec, func(root int64, rel string, island bool, t reldb.Tuple) error {
		if island {
			home, err := sw.C.HomeOf(ShardedObject, reldb.Tuple{reldb.Int(root)})
			if err != nil {
				return err
			}
			return txs[home].Insert(rel, t)
		}
		for _, tx := range txs {
			if err := tx.Insert(rel, t); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		for _, tx := range txs {
			_ = tx.Rollback()
		}
		return err
	}
	for i, tx := range txs {
		if err := tx.Commit(); err != nil {
			for _, rest := range txs[i+1:] {
				_ = rest.Rollback()
			}
			return fmt.Errorf("workload: seed shard %d: %w", i, err)
		}
	}
	return nil
}

// Close closes the cluster.
func (sw *ShardedWorkload) Close() error { return sw.C.Close() }
