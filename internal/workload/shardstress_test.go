package workload

import (
	"testing"

	"penguin/internal/reldb"
	"penguin/internal/viewobject"
)

// TestShardedStress drives the full reader/writer mix through the
// coordinator over in-memory shards: concurrent VO cycles routed by
// pivot key, cross-shard two-phase commits on every peninsula touch,
// fan-out reads merging per-shard snapshots. Run under -race by the
// shard-stress make target.
func TestShardedStress(t *testing.T) {
	spec := StressSpec{
		Tree:            TreeSpec{Depth: 1, Width: 2, Fanout: 2, Roots: 8, Peninsulas: 1},
		Readers:         2,
		ParallelReaders: 1,
		Writers:         4,
		Cycles:          3,
	}
	res, err := RunShardedStress(spec, 4)
	if err != nil {
		t.Fatalf("%v\n%s", err, res.Summary())
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	wantWrites := int64(spec.Tree.Roots * spec.Cycles)
	if res.Replaces != wantWrites || res.Deletes != wantWrites || res.Inserts != wantWrites {
		t.Fatalf("writer tallies %d/%d/%d, want %d each", res.Replaces, res.Deletes, res.Inserts, wantWrites)
	}
	// Peninsula traffic forces the cross-shard path: every VO-CD and
	// VO-CI touches replicated rows, so cross-commits must have happened.
	if res.Metrics.Counter("reldb.cross.commits") == 0 {
		t.Fatal("no cross-shard commits recorded; coordinator never left the fast path")
	}
	t.Log(res.Summary())
}

// TestShardedStressFastPathOnly: without peninsulas every translation
// stays inside the island, so no cross-shard commit may occur.
func TestShardedStressFastPathOnly(t *testing.T) {
	spec := StressSpec{
		Tree:    TreeSpec{Depth: 1, Width: 1, Fanout: 2, Roots: 6, Peninsulas: 0},
		Readers: 1,
		Writers: 2,
		Cycles:  2,
	}
	res, err := RunShardedStress(spec, 2)
	if err != nil {
		t.Fatalf("%v\n%s", err, res.Summary())
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if n := res.Metrics.Counter("reldb.cross.commits"); n != 0 {
		t.Fatalf("%d cross-shard commits on an island-only workload", n)
	}
}

// TestShardedMatchesUnsharded: the same deterministic update sequence
// applied to a 1-shard cluster and a 4-shard cluster must leave every
// instance identical — partitioning is invisible to the object model.
func TestShardedMatchesUnsharded(t *testing.T) {
	spec := TreeSpec{Depth: 1, Width: 2, Fanout: 2, Roots: 6, Peninsulas: 1}
	build := func(n int) *ShardedWorkload {
		sw, err := NewShardedTree(spec, n)
		if err != nil {
			t.Fatal(err)
		}
		return sw
	}
	drive := func(sw *ShardedWorkload) {
		for k := 0; k < spec.Roots; k++ {
			if _, err := shardedReplaceStamped(sw, int64(k), "det"); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sw.C.DeleteByKey(ShardedObject, reldb.Tuple{reldb.Int(2)}); err != nil {
			t.Fatal(err)
		}
	}
	a, b := build(1), build(4)
	drive(a)
	drive(b)
	ia, err := a.C.Instantiate(ShardedObject, viewobject.Query{})
	if err != nil {
		t.Fatal(err)
	}
	ib, err := b.C.Instantiate(ShardedObject, viewobject.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ia) != len(ib) || len(ia) != spec.Roots-1 {
		t.Fatalf("instance counts %d vs %d, want %d", len(ia), len(ib), spec.Roots-1)
	}
	for i := range ia {
		if ia[i].Render() != ib[i].Render() {
			t.Fatalf("instance %d diverges:\n1 shard:\n%s\n4 shards:\n%s", i, ia[i].Render(), ib[i].Render())
		}
	}
}
