package figures

import (
	"os"
	"strings"
	"testing"

	"penguin/internal/university"
)

func TestFigure1(t *testing.T) {
	_, g := university.New()
	out := Figure1(g)
	for _, want := range []string{
		"Figure 1", "DEPARTMENT", "PEOPLE", "STUDENT", "FACULTY", "STAFF",
		"CURRICULUM", "COURSES", "GRADES",
		"COURSES(CourseID) --* GRADES(CourseID)",
		"PEOPLE(PID) --) STUDENT(PID)",
		"CURRICULUM(CourseID) --> COURSES(CourseID)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure1 missing %q", want)
		}
	}
}

func TestFigure2(t *testing.T) {
	_, g := university.New()
	out, err := Figure2(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"(a) relevant subgraph for pivot COURSES",
		"(b) expanded tree for pivot COURSES",
		"PEOPLE appears 2 times",
		"(c) view object omega (pivot COURSES, key CourseID, complexity 5)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure2 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure3(t *testing.T) {
	_, g := university.New()
	out, err := Figure3(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"omega-prime", "FACULTY", "STUDENT",
		"a path of 2 connections",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure3 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure4(t *testing.T) {
	db, g := university.MustNewSeeded()
	out, err := Figure4(db, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"matching instances: 2",
		"COURSES: (CS345, Database Systems, Computer Science, 4, graduate)",
		"COURSES: (CS445",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure4 missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "EE380") {
		t.Error("Figure4 must not select EE380 (5 students)")
	}
}

func TestSection6Dialog(t *testing.T) {
	_, g := university.New()
	out, err := Section6Dialog(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Is replacement of tuples in an object instance allowed? <YES>",
		"The key of a tuple of relation COURSES could be modified during replacements. Do you allow this? <YES>",
		"The system might need to delete the old database tuple, and replace it with an existing tuple with matching key. Do you allow this? <NO>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dialog missing %q", want)
		}
	}
}

func TestSection6Example(t *testing.T) {
	out, err := Section6Example()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ACCEPTED",
		"DEPARTMENT now contains <Engineering Economic Systems>: true",
		"REJECTED",
		"not allowed to insert tuples in DEPARTMENT",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("example missing %q:\n%s", want, out)
		}
	}
}

func TestAllIsDeterministic(t *testing.T) {
	a, err := All()
	if err != nil {
		t.Fatal(err)
	}
	b, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("All() is not deterministic")
	}
	if len(a) < 2000 {
		t.Fatalf("report suspiciously short: %d bytes", len(a))
	}
}

func TestSection4Enumeration(t *testing.T) {
	db, _ := university.MustNewSeeded()
	out, err := Section4Enumeration(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"space of alternative translations",
		"3 candidate(s), 2 valid",
		"C3: not minimal",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Section4 missing %q:\n%s", want, out)
		}
	}
}

// The committed artifact file must match what the code generates — run
// `go run ./cmd/penguin-figures -out figures_output.txt` after changing
// any renderer.
func TestFiguresArtifactUpToDate(t *testing.T) {
	want, err := All()
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("../../figures_output.txt")
	if err != nil {
		t.Fatalf("figures_output.txt missing: %v", err)
	}
	if string(got) != want {
		t.Fatal("figures_output.txt is stale; regenerate with: go run ./cmd/penguin-figures -out figures_output.txt")
	}
}
