// Package figures regenerates every evaluation artifact of the paper as a
// deterministic text rendering: Figure 1 (the structural schema), Figure 2
// (subgraph extraction, tree expansion, pruning), Figure 3 (the alternate
// object ω′), Figure 4 (instantiation), the §6 translator-selection
// dialog, and the §6 replacement example under the permissive and
// restrictive translators. The penguin-figures command prints them;
// EXPERIMENTS.md records them against the paper's claims.
package figures

import (
	"fmt"
	"strings"

	"penguin/internal/keller"
	"penguin/internal/oql"
	"penguin/internal/reldb"
	"penguin/internal/structural"
	"penguin/internal/university"
	"penguin/internal/viewobject"
	"penguin/internal/vupdate"
)

// Figure1 renders the structural schema of the university database.
func Figure1(g *structural.Graph) string {
	return "Figure 1: Structural schema of a university database\n\n" + g.Render()
}

// Figure2 renders the three stages of view-object definition for ω:
// (a) the relevant subgraph, (b) the expanded tree with its two PEOPLE
// copies, and (c) the pruned configuration of complexity 5.
func Figure2(g *structural.Graph) (string, error) {
	sub, err := viewobject.ExtractSubgraph(g, university.Courses, viewobject.DefaultMetric())
	if err != nil {
		return "", err
	}
	tree := viewobject.BuildTree(sub)
	om, err := university.Omega(g)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 2: Definition of a view object\n\n")
	b.WriteString("(a) " + sub.Render() + "\n")
	b.WriteString("(b) " + tree.Render())
	fmt.Fprintf(&b, "    (%d occurrences; PEOPLE appears %d times — one per path from COURSES)\n\n",
		tree.Size(), len(tree.Occurrences(university.People)))
	b.WriteString("(c) " + om.Render())
	return b.String(), nil
}

// Figure3 renders the alternate view object ω′ of Figure 3.
func Figure3(g *structural.Graph) (string, error) {
	op, err := university.OmegaPrime(g)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 3: A different view of the database\n\n")
	b.WriteString(op.Render())
	st, _ := op.Node(university.Student)
	fmt.Fprintf(&b, "\nNote: the edge from COURSES to STUDENT is a path of %d connections\n", len(st.Path))
	b.WriteString("(COURSES --* GRADES inv(--*) STUDENT) since GRADES is not part of omega-prime.\n")
	return b.String(), nil
}

// Figure4 renders the instantiation of ω for the paper's request:
// graduate courses with less than 5 students having enrolled.
func Figure4(db *reldb.Database, g *structural.Graph) (string, error) {
	om, err := university.Omega(g)
	if err != nil {
		return "", err
	}
	const query = `Level = 'graduate' and count(STUDENT) < 5`
	insts, err := oql.Query(db, om, query)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 4: Instantiation of a view object\n\n")
	fmt.Fprintf(&b, "query: %s\n", query)
	fmt.Fprintf(&b, "matching instances: %d\n\n", len(insts))
	for _, inst := range insts {
		b.WriteString(inst.Render())
		b.WriteString("\n")
	}
	return b.String(), nil
}

// Section4Enumeration renders Keller's translation space (§4) for one
// flat-view deletion: every candidate translation with its validity
// verdict, showing the ambiguity that the definition-time dialog
// resolves. The example deletes EE201's only view row, which admits two
// minimal valid translations.
func Section4Enumeration(db *reldb.Database) (string, error) {
	view, err := keller.NewView(db, "course-grades",
		[]keller.Join{
			{Relation: university.Courses},
			{Relation: university.Grades,
				LeftAttrs: []string{"COURSES.CourseID"}, RightAttrs: []string{"CourseID"}},
		}, nil,
		[]string{"COURSES.CourseID", "COURSES.Title", "COURSES.Level", "GRADES.PID", "GRADES.Grade"})
	if err != nil {
		return "", err
	}
	tr := keller.PermissiveTranslator(view)
	viewTuple := reldb.Tuple{
		reldb.String("EE201"), reldb.String("Circuits I"), reldb.String("undergraduate"),
		reldb.Int(3), reldb.String("A"),
	}
	cands, err := tr.EnumerateDeletionTranslations(viewTuple)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Section 4: the space of alternative translations (Keller)\n\n")
	fmt.Fprintf(&b, "view: %s\n", view)
	fmt.Fprintf(&b, "request: delete view tuple %s\n\n", viewTuple)
	valid := 0
	for _, c := range cands {
		if c.Valid {
			valid++
		}
		fmt.Fprintf(&b, "  %s\n", c)
	}
	fmt.Fprintf(&b, "\n%d candidate(s), %d valid — the ambiguity the definition-time dialog resolves.\n",
		len(cands), valid)
	return b.String(), nil
}

// Section6Dialog renders the §6 translator-selection dialog for ω with
// the paper's answers (the replacement portion the paper prints).
func Section6Dialog(g *structural.Graph) (string, error) {
	om, err := university.Omega(g)
	if err != nil {
		return "", err
	}
	_, tape, err := vupdate.ChooseReplacementTranslator(om, vupdate.PaperDialogAnswers())
	if err != nil {
		return "", err
	}
	return "Section 6: Choosing a translator for view-object updates\n\n" + tape.Render(), nil
}

// Section6Example runs the paper's replacement example twice — once under
// the permissive dialog-built translator (the request succeeds and a
// ⟨Engineering Economic Systems⟩ tuple is inserted into DEPARTMENT) and
// once under the restrictive one (the request is rejected) — and reports
// both outcomes. Each run uses its own fresh database.
func Section6Example() (string, error) {
	var b strings.Builder
	b.WriteString("Section 6: the EES345 replacement example\n\n")

	run := func(restrictive bool) error {
		db, g, err := university.NewSeeded()
		if err != nil {
			return err
		}
		om, err := university.Omega(g)
		if err != nil {
			return err
		}
		answers := vupdate.PaperDialogAnswers()
		label := "permissive translator (the paper's dialog)"
		if restrictive {
			answers.Answers["outside.DEPARTMENT.modifiable"] = false
			label = "restrictive translator (DEPARTMENT not modifiable)"
		}
		tr, _, err := vupdate.ChooseTranslator(om, answers)
		if err != nil {
			return err
		}
		tr.RepairInserts = true
		old, ok, err := viewobject.InstantiateByKey(db, om, reldb.Tuple{reldb.String("CS345")})
		if err != nil || !ok {
			return fmt.Errorf("figures: CS345 instance: %v %v", ok, err)
		}
		repl := old.Clone()
		if err := repl.Root().SetAttr(om, "CourseID", reldb.String("EES345")); err != nil {
			return err
		}
		if err := repl.Root().SetAttr(om, "DeptName", reldb.String("Engineering Economic Systems")); err != nil {
			return err
		}
		dep := repl.Root().Children(university.Department)[0]
		if err := dep.SetTuple(om, reldb.Tuple{
			reldb.String("Engineering Economic Systems"), reldb.Null(), reldb.Null(),
		}); err != nil {
			return err
		}
		fmt.Fprintf(&b, "replace (COURSE: CS345 ... (DEPARTMENT: Computer Science) ...)\n")
		fmt.Fprintf(&b, "   with (COURSE: EES345 ... (DEPARTMENT: Engineering Economic Systems) ...)\n")
		fmt.Fprintf(&b, "under the %s:\n", label)
		res, err := vupdate.NewUpdater(tr).ReplaceInstance(old, repl)
		if err != nil {
			fmt.Fprintf(&b, "  REJECTED: %v\n\n", err)
			return nil
		}
		fmt.Fprintf(&b, "  ACCEPTED; %d database operations:\n", len(res.Ops))
		for _, op := range res.Ops {
			fmt.Fprintf(&b, "    %s\n", op)
		}
		ees := db.MustRelation(university.Department).Has(reldb.Tuple{reldb.String("Engineering Economic Systems")})
		fmt.Fprintf(&b, "  DEPARTMENT now contains <Engineering Economic Systems>: %v\n\n", ees)
		return nil
	}
	if err := run(false); err != nil {
		return "", err
	}
	if err := run(true); err != nil {
		return "", err
	}
	return b.String(), nil
}

// All regenerates every artifact into one report.
func All() (string, error) {
	db, g, err := university.NewSeeded()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	sep := strings.Repeat("=", 72) + "\n"
	b.WriteString(sep)
	b.WriteString(Figure1(g))
	b.WriteString(sep)
	f2, err := Figure2(g)
	if err != nil {
		return "", err
	}
	b.WriteString(f2)
	b.WriteString(sep)
	f3, err := Figure3(g)
	if err != nil {
		return "", err
	}
	b.WriteString(f3)
	b.WriteString(sep)
	f4, err := Figure4(db, g)
	if err != nil {
		return "", err
	}
	b.WriteString(f4)
	b.WriteString(sep)
	s4, err := Section4Enumeration(db.Clone())
	if err != nil {
		return "", err
	}
	b.WriteString(s4)
	b.WriteString(sep)
	d, err := Section6Dialog(g)
	if err != nil {
		return "", err
	}
	b.WriteString(d)
	b.WriteString(sep)
	ex, err := Section6Example()
	if err != nil {
		return "", err
	}
	b.WriteString(ex)
	return b.String(), nil
}
