package oql

import (
	"strings"
	"testing"

	"penguin/internal/reldb"
	"penguin/internal/university"
	"penguin/internal/viewobject"
)

func omega(t *testing.T) (*reldb.Database, *viewobject.Definition) {
	t.Helper()
	db, g := university.MustNewSeeded()
	return db, university.MustOmega(g)
}

// Figure 4's query, from text.
func TestFigure4Query(t *testing.T) {
	db, om := omega(t)
	insts, err := Query(db, om, `Level = 'graduate' and count(STUDENT) < 5`)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, i := range insts {
		ids = append(ids, i.Key()[0].MustString())
	}
	if strings.Join(ids, ",") != "CS345,CS445" {
		t.Fatalf("result = %v, want CS345,CS445", ids)
	}
}

func TestExistsClause(t *testing.T) {
	db, om := omega(t)
	insts, err := Query(db, om, `exists(STUDENT: Degree = 'PhD')`)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, i := range insts {
		ids[i.Key()[0].MustString()] = true
	}
	if !ids["CS345"] || ids["ME301"] {
		t.Fatalf("result = %v", ids)
	}
}

func TestCombinedClauses(t *testing.T) {
	db, om := omega(t)
	insts, err := Query(db, om,
		`Level = 'graduate' and exists(GRADES: Grade = 'A') and count(GRADES) >= 2 and Units > 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 3 { // CS345, CS445, EE380 all have an A and >= 2 grades
		t.Fatalf("instances = %d", len(insts))
	}
}

func TestEmptyQuerySelectsAll(t *testing.T) {
	db, om := omega(t)
	insts, err := Query(db, om, ``)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 6 {
		t.Fatalf("instances = %d", len(insts))
	}
}

func TestCountOperators(t *testing.T) {
	db, om := omega(t)
	cases := []struct {
		q    string
		want int
	}{
		{`count(GRADES) = 5`, 2}, // CS101 and EE380
		{`count(GRADES) != 5`, 4},
		{`count(GRADES) <= 1`, 2}, // EE201, ME301
		{`count(GRADES) > 2`, 3},
		{`count(GRADES) >= 5`, 2},
		{`count(GRADES) <> 5`, 4},
	}
	for _, c := range cases {
		insts, err := Query(db, om, c.q)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if len(insts) != c.want {
			t.Errorf("%s: %d instances, want %d", c.q, len(insts), c.want)
		}
	}
}

// AND inside strings and parentheses must not split clauses.
func TestAndInsideStringsAndParens(t *testing.T) {
	db, om := omega(t)
	insts, err := Query(db, om, `Title = 'Dynamics' and (Units = 4 and Level = 'undergraduate')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 || insts[0].Key()[0].MustString() != "ME301" {
		t.Fatalf("result = %d", len(insts))
	}
	// A string containing " and " is not a separator.
	if err := seedTitled(db, "X1", "salt and pepper"); err != nil {
		t.Fatal(err)
	}
	insts, err = Query(db, om, `Title = 'salt and pepper'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 {
		t.Fatalf("string AND split: %d", len(insts))
	}
	// Identifier containing "and" as substring is untouched.
	q, err := Parse(om, `Title = 'x' and Units = 1`)
	if err != nil || q.PivotPred == nil {
		t.Fatalf("parse: %v", err)
	}
}

func seedTitled(db *reldb.Database, id, title string) error {
	return db.RunInTx(func(tx *reldb.Tx) error {
		return tx.Insert(university.Courses, reldb.Tuple{
			reldb.String(id), reldb.String(title), reldb.String("Computer Science"),
			reldb.Int(1), reldb.String("undergraduate"),
		})
	})
}

func TestParseErrors(t *testing.T) {
	_, om := omega(t)
	bad := []string{
		`count(NOPE) < 5`,
		`count(STUDENT < 5`,
		`count(STUDENT) < many`,
		`count(STUDENT) 5`,
		`exists(NOPE: Degree = 'PhD')`,
		`exists(STUDENT)`,
		`exists STUDENT: x`,
		`exists(STUDENT: = 3)`,
		`Level = `,
		`(Level = 'x'`,
		`Level = 'x')`,
		`Title = 'unterminated`,
	}
	for _, src := range bad {
		if _, err := Parse(om, src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	db, om := omega(t)
	insts, err := Query(db, om, `Level = 'graduate' AND COUNT(STUDENT) < 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 2 {
		t.Fatalf("instances = %d", len(insts))
	}
	insts, err = Query(db, om, `EXISTS(STUDENT: Degree = 'PhD') and Level = 'graduate'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 3 {
		t.Fatalf("instances = %d", len(insts))
	}
}
