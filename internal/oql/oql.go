// Package oql implements the object query language of the view-object
// model's query interface (§3): declarative, ad-hoc queries over view
// objects. A query is a conjunction of three clause kinds:
//
//	<expr>                 — predicate on the pivot relation's attributes
//	count(NODE) <op> <n>   — cardinality condition on a component node
//	exists(NODE: <expr>)   — existential predicate on a component node
//
// Figure 4's request — graduate courses with less than 5 students having
// enrolled — reads:
//
//	Level = 'graduate' and count(STUDENT) < 5
//
// Scalar sub-expressions use the RQL expression grammar.
package oql

import (
	"fmt"
	"strconv"
	"strings"

	"penguin/internal/reldb"
	"penguin/internal/rql"
	"penguin/internal/viewobject"
)

// Parse parses an object query against the given definition. Node names
// in count() and exists() clauses are validated against the definition's
// node IDs.
func Parse(def *viewobject.Definition, src string) (viewobject.Query, error) {
	var q viewobject.Query
	conjuncts, err := splitTopLevelAnd(src)
	if err != nil {
		return q, err
	}
	var pivotTerms []reldb.Expr
	for _, c := range conjuncts {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		switch {
		case hasPrefixFold(c, "count"):
			cc, err := parseCount(def, c)
			if err != nil {
				return q, err
			}
			q.CountConds = append(q.CountConds, cc)
		case hasPrefixFold(c, "exists"):
			np, err := parseExists(def, c)
			if err != nil {
				return q, err
			}
			q.NodePreds = append(q.NodePreds, np)
		default:
			e, err := rql.ParseExpr(c)
			if err != nil {
				return q, fmt.Errorf("oql: in clause %q: %w", c, err)
			}
			pivotTerms = append(pivotTerms, e)
		}
	}
	if len(pivotTerms) > 0 {
		q.PivotPred = reldb.AndAll(pivotTerms...)
	}
	return q, nil
}

// hasPrefixFold reports whether s starts with the keyword followed by an
// opening parenthesis (ignoring case and space).
func hasPrefixFold(s, kw string) bool {
	if len(s) < len(kw) {
		return false
	}
	if !strings.EqualFold(s[:len(kw)], kw) {
		return false
	}
	rest := strings.TrimSpace(s[len(kw):])
	return strings.HasPrefix(rest, "(")
}

// splitTopLevelAnd splits a query on AND tokens that sit outside
// parentheses and string literals.
func splitTopLevelAnd(src string) ([]string, error) {
	var parts []string
	depth := 0
	var quote byte
	start := 0
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case quote != 0:
			if c == '\\' {
				i++
			} else if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '(':
			depth++
		case c == ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("oql: unbalanced parentheses at offset %d", i)
			}
		case depth == 0 && (c == 'a' || c == 'A'):
			if isWordBoundary(src, i) && i+3 <= len(src) && strings.EqualFold(src[i:i+3], "and") &&
				(i+3 == len(src) || !isWordChar(src[i+3])) {
				parts = append(parts, src[start:i])
				i += 3
				start = i
				continue
			}
		}
		i++
	}
	if quote != 0 {
		return nil, fmt.Errorf("oql: unterminated string literal")
	}
	if depth != 0 {
		return nil, fmt.Errorf("oql: unbalanced parentheses")
	}
	parts = append(parts, src[start:])
	return parts, nil
}

func isWordChar(c byte) bool {
	return c == '_' || c == '.' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func isWordBoundary(src string, i int) bool {
	return i == 0 || !isWordChar(src[i-1])
}

var cmpOps = []struct {
	text string
	op   reldb.CmpOp
}{
	{"<=", reldb.OpLe}, {">=", reldb.OpGe}, {"!=", reldb.OpNe},
	{"<>", reldb.OpNe}, {"<", reldb.OpLt}, {">", reldb.OpGt}, {"=", reldb.OpEq},
}

// parseCount parses "count(NODE) <op> <n>".
func parseCount(def *viewobject.Definition, src string) (viewobject.CountCond, error) {
	var cc viewobject.CountCond
	open := strings.IndexByte(src, '(')
	close := strings.IndexByte(src, ')')
	if open < 0 || close < open {
		return cc, fmt.Errorf("oql: malformed count clause %q", src)
	}
	node := strings.TrimSpace(src[open+1 : close])
	if _, ok := def.Node(node); !ok {
		return cc, fmt.Errorf("oql: count over unknown node %q (object %s)", node, def.Name)
	}
	rest := strings.TrimSpace(src[close+1:])
	for _, c := range cmpOps {
		if strings.HasPrefix(rest, c.text) {
			numText := strings.TrimSpace(rest[len(c.text):])
			n, err := strconv.Atoi(numText)
			if err != nil {
				return cc, fmt.Errorf("oql: count clause needs an integer, got %q", numText)
			}
			return viewobject.CountCond{NodeID: node, Op: c.op, N: n}, nil
		}
	}
	return cc, fmt.Errorf("oql: count clause %q needs a comparison", src)
}

// parseExists parses "exists(NODE: <expr>)".
func parseExists(def *viewobject.Definition, src string) (viewobject.NodePred, error) {
	var np viewobject.NodePred
	open := strings.IndexByte(src, '(')
	if open < 0 || !strings.HasSuffix(strings.TrimSpace(src), ")") {
		return np, fmt.Errorf("oql: malformed exists clause %q", src)
	}
	inner := strings.TrimSpace(src)
	inner = inner[open+1 : len(inner)-1]
	colon := strings.IndexByte(inner, ':')
	if colon < 0 {
		return np, fmt.Errorf("oql: exists clause %q needs NODE: predicate", src)
	}
	node := strings.TrimSpace(inner[:colon])
	if _, ok := def.Node(node); !ok {
		return np, fmt.Errorf("oql: exists over unknown node %q (object %s)", node, def.Name)
	}
	pred, err := rql.ParseExpr(inner[colon+1:])
	if err != nil {
		return np, fmt.Errorf("oql: in exists clause %q: %w", src, err)
	}
	return viewobject.NodePred{NodeID: node, Pred: pred}, nil
}

// Query parses and immediately runs an object query, returning the
// matching instances.
func Query(res structuralResolver, def *viewobject.Definition, src string) ([]*viewobject.Instance, error) {
	q, err := Parse(def, src)
	if err != nil {
		return nil, err
	}
	return viewobject.Instantiate(res, def, q)
}

// structuralResolver matches structural.Resolver without importing it
// (avoids a needless dependency edge).
type structuralResolver interface {
	Relation(name string) (*reldb.Relation, error)
}
