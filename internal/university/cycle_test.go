package university

import (
	"testing"

	"penguin/internal/reldb"
	"penguin/internal/vupdate"
)

func TestUpdateCycleLeavesDatabaseUnchanged(t *testing.T) {
	db, g := New()
	if err := SeedScaled(db, ScaleSpec{
		Departments: 1, StudentsPerDept: 4, CoursesPerDept: 1, GradesPerCourse: 1,
	}); err != nil {
		t.Fatal(err)
	}
	om := MustOmega(g)
	u := vupdate.NewUpdater(vupdate.PermissiveTranslator(om))
	cycle := NewUpdateCycle(om)

	before := db.TotalRows()
	for i := 0; i < 5; i++ {
		if err := cycle.Run(u, i); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	if db.TotalRows() != before {
		t.Fatalf("rows %d -> %d; the cycle must be neutral", before, db.TotalRows())
	}
}

func TestUpdateCyclePropagatesRejections(t *testing.T) {
	db, g := New()
	if err := SeedScaled(db, ScaleSpec{
		Departments: 1, StudentsPerDept: 4, CoursesPerDept: 1, GradesPerCourse: 1,
	}); err != nil {
		t.Fatal(err)
	}
	om := MustOmega(g)
	tr := vupdate.PermissiveTranslator(om)
	tr.AllowInsertion = false
	u := vupdate.NewUpdater(tr)
	if err := NewUpdateCycle(om).Run(u, 0); err == nil {
		t.Fatal("cycle should surface the rejection")
	}
	if db.MustRelation(Courses).Has(reldb.Tuple{reldb.String("CYCLE0000000")}) {
		t.Fatal("rejected insert leaked")
	}
}
