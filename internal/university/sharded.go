// Sharded university build: the Figure 1 schema distributed over a
// shard.Cluster. Registration broadcasts the schema and connection
// graph to every shard; seeding partitions ω's dependency island
// ({COURSES, GRADES}) by course and replicates every other relation —
// the placement invariant the coordinator's fast path depends on.
package university

import (
	"penguin/internal/reldb"
	"penguin/internal/reldb/shard"
	"penguin/internal/structural"
	"penguin/internal/vupdate"
)

// Object names the sharded university registers.
const (
	ObjOmega      = "omega"
	ObjOmegaPrime = "omega-prime"
)

// NewSharded builds an n-shard in-memory university cluster with ω and
// ω′ registered and the paper's sample instance partitioned across it.
func NewSharded(n int) (*shard.Cluster, error) {
	dbs := make([]*reldb.Database, n)
	for i := range dbs {
		dbs[i] = reldb.NewDatabase()
	}
	c, err := shard.New(dbs)
	if err != nil {
		return nil, err
	}
	if err := registerSharded(c); err != nil {
		_ = c.Close()
		return nil, err
	}
	if err := SeedSharded(c); err != nil {
		_ = c.Close()
		return nil, err
	}
	return c, nil
}

// OpenSharded opens (or creates) a durable n-shard university cluster
// under dir. Shards recovered from their WALs keep the rows they have;
// an empty cluster is seeded with the paper's instance. Returns whether
// it seeded.
func OpenSharded(dir string, n int, opts reldb.OpenOptions) (*shard.Cluster, bool, error) {
	c, err := shard.Open(dir, n, opts)
	if err != nil {
		return nil, false, err
	}
	if err := registerSharded(c); err != nil {
		_ = c.Close()
		return nil, false, err
	}
	seeded := false
	if c.TotalRows() == 0 {
		if err := SeedSharded(c); err != nil {
			_ = c.Close()
			return nil, false, err
		}
		seeded = true
	}
	return c, seeded, nil
}

// registerSharded installs the university schema on every shard and
// registers both objects — registration is the DDL broadcast: each
// build callback runs once per shard over that shard's database.
//
// ω gets the §6 dialog's permissive translator and is fully updatable.
// ω′ registers read-only (the default restrictive translator): its
// STUDENT component reaches through GRADES, a relation that is
// partitioned (it is ω's island) but outside ω′'s own island, so a ω′
// translation could emit GRADES operations the coordinator would replay
// on every replica — placement would break. Updates go through ω.
func registerSharded(c *shard.Cluster) error {
	graphs := make([]*structural.Graph, c.N())
	for i := 0; i < c.N(); i++ {
		g, err := Install(c.DB(i))
		if err != nil {
			return err
		}
		graphs[i] = g
	}
	if err := c.AddObject(ObjOmega, func(i int, _ *reldb.Database) (*vupdate.Translator, error) {
		om, err := Omega(graphs[i])
		if err != nil {
			return nil, err
		}
		return vupdate.PermissiveTranslator(om), nil
	}); err != nil {
		return err
	}
	return c.AddObject(ObjOmegaPrime, func(i int, _ *reldb.Database) (*vupdate.Translator, error) {
		op, err := OmegaPrime(graphs[i])
		if err != nil {
			return nil, err
		}
		return vupdate.NewTranslator(op), nil
	})
}

// SeedSharded loads the paper's illustrative instance with partitioned
// placement: COURSES and GRADES rows go to their course's home shard
// (both relations lead with the CourseID routing attribute), every
// other relation is replicated on all shards. One transaction per shard.
func SeedSharded(c *shard.Cluster) error {
	txs := make([]*reldb.Tx, c.N())
	for i := range txs {
		txs[i] = c.DB(i).Begin()
	}
	err := seedRows(func(rel string, rows ...reldb.Tuple) error {
		for _, row := range rows {
			if rel == Courses || rel == Grades {
				home, err := c.HomeOf(ObjOmega, reldb.Tuple{row[0]})
				if err != nil {
					return err
				}
				if err := txs[home].Insert(rel, row); err != nil {
					return err
				}
				continue
			}
			for _, tx := range txs {
				if err := tx.Insert(rel, row); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		for _, tx := range txs {
			_ = tx.Rollback()
		}
		return err
	}
	for i, tx := range txs {
		if err := tx.Commit(); err != nil {
			for _, rest := range txs[i+1:] {
				_ = rest.Rollback()
			}
			return err
		}
	}
	return nil
}
