// Package university builds the paper's running example: the university
// database of Figure 1, with eight relations and nine typed connections,
// plus seed data sized either to the paper's illustrative instance or to
// benchmark scale.
//
// Schema (reconstructed from the paper's prose):
//
//	DEPARTMENT(DeptName*, Building, Budget)
//	PEOPLE(PID*, Name, DeptName→DEPARTMENT, Email)
//	STUDENT(PID*, Degree, Year)           PEOPLE —⊃ STUDENT
//	FACULTY(PID*, Rank, Tenured)          PEOPLE —⊃ FACULTY
//	STAFF(PID*, Title)                    PEOPLE —⊃ STAFF
//	COURSES(CourseID*, Title, DeptName→DEPARTMENT, Units, Level)
//	CURRICULUM(DeptName*, Degree*, CourseID*)
//	    DEPARTMENT —* CURRICULUM, CURRICULUM → COURSES
//	GRADES(CourseID*, PID*, Quarter, Grade)
//	    COURSES —* GRADES, STUDENT —* GRADES
//
// (* marks key attributes.) This reproduces every structural fact the
// paper states: two paths from COURSES to PEOPLE (via DEPARTMENT and via
// GRADES-STUDENT), CURRICULUM as ω's referencing peninsula, and
// {COURSES, GRADES} as ω's dependency island.
package university

import (
	"errors"
	"fmt"

	"penguin/internal/reldb"
	"penguin/internal/structural"
)

// Relation names of the university schema.
const (
	Department = "DEPARTMENT"
	People     = "PEOPLE"
	Student    = "STUDENT"
	Faculty    = "FACULTY"
	Staff      = "STAFF"
	Courses    = "COURSES"
	Curriculum = "CURRICULUM"
	Grades     = "GRADES"
)

// Connection names of the university schema.
const (
	ConnPersonDept       = "person-dept"
	ConnCourseDept       = "course-dept"
	ConnPersonStudent    = "person-student"
	ConnPersonFaculty    = "person-faculty"
	ConnPersonStaff      = "person-staff"
	ConnDeptCurriculum   = "dept-curriculum"
	ConnCurriculumCourse = "curriculum-course"
	ConnCourseGrades     = "course-grades"
	ConnStudentGrades    = "student-grades"
)

// New builds the empty university database and its structural schema
// (Figure 1), with secondary indexes on every connecting attribute set.
func New() (*reldb.Database, *structural.Graph) {
	db := reldb.NewDatabase()
	g, err := Install(db)
	if err != nil {
		// A fresh in-memory database cannot collide with anything.
		panic(err)
	}
	return db, g
}

// Install ensures the university relations exist in db — creating any
// that are absent, leaving existing relations and their rows alone —
// and attaches the Figure 1 structural schema to a new graph. It is the
// durable-session counterpart of New: a database recovered from a WAL
// (-data-dir) already holds the relations and their data, but the
// connection graph lives in memory and must be rebuilt every process
// start. An existing relation whose schema differs from the university
// schema is an error (the data directory belongs to something else).
func Install(db *reldb.Database) (*structural.Graph, error) {
	ensure := func(schema *reldb.Schema) error {
		_, err := db.CreateRelation(schema)
		if errors.Is(err, reldb.ErrRelationExists) {
			rel, relErr := db.Relation(schema.Name())
			if relErr != nil {
				return relErr
			}
			if rel.Schema().String() != schema.String() {
				return fmt.Errorf("university: relation %s exists with schema %s, want %s",
					schema.Name(), rel.Schema(), schema)
			}
			return nil
		}
		return err
	}
	if err := installRelations(ensure); err != nil {
		return nil, err
	}
	return attachGraph(db), nil
}

// installRelations declares every university schema through ensure.
func installRelations(ensure func(*reldb.Schema) error) error {
	if err := ensure(reldb.MustSchema(Department, []reldb.Attribute{
		{Name: "DeptName", Type: reldb.KindString},
		{Name: "Building", Type: reldb.KindString, Nullable: true},
		{Name: "Budget", Type: reldb.KindFloat, Nullable: true},
	}, []string{"DeptName"})); err != nil {
		return err
	}

	if err := ensure(reldb.MustSchema(People, []reldb.Attribute{
		{Name: "PID", Type: reldb.KindInt},
		{Name: "Name", Type: reldb.KindString, Nullable: true},
		{Name: "DeptName", Type: reldb.KindString, Nullable: true},
		{Name: "Email", Type: reldb.KindString, Nullable: true},
	}, []string{"PID"})); err != nil {
		return err
	}

	if err := ensure(reldb.MustSchema(Student, []reldb.Attribute{
		{Name: "PID", Type: reldb.KindInt},
		{Name: "Degree", Type: reldb.KindString, Nullable: true},
		{Name: "Year", Type: reldb.KindInt, Nullable: true},
	}, []string{"PID"})); err != nil {
		return err
	}

	if err := ensure(reldb.MustSchema(Faculty, []reldb.Attribute{
		{Name: "PID", Type: reldb.KindInt},
		{Name: "Rank", Type: reldb.KindString, Nullable: true},
		{Name: "Tenured", Type: reldb.KindBool, Nullable: true},
	}, []string{"PID"})); err != nil {
		return err
	}

	if err := ensure(reldb.MustSchema(Staff, []reldb.Attribute{
		{Name: "PID", Type: reldb.KindInt},
		{Name: "Title", Type: reldb.KindString, Nullable: true},
	}, []string{"PID"})); err != nil {
		return err
	}

	if err := ensure(reldb.MustSchema(Courses, []reldb.Attribute{
		{Name: "CourseID", Type: reldb.KindString},
		{Name: "Title", Type: reldb.KindString, Nullable: true},
		{Name: "DeptName", Type: reldb.KindString, Nullable: true},
		{Name: "Units", Type: reldb.KindInt, Nullable: true},
		{Name: "Level", Type: reldb.KindString, Nullable: true},
	}, []string{"CourseID"})); err != nil {
		return err
	}

	if err := ensure(reldb.MustSchema(Curriculum, []reldb.Attribute{
		{Name: "DeptName", Type: reldb.KindString},
		{Name: "Degree", Type: reldb.KindString},
		{Name: "CourseID", Type: reldb.KindString},
	}, []string{"DeptName", "Degree", "CourseID"})); err != nil {
		return err
	}

	if err := ensure(reldb.MustSchema(Grades, []reldb.Attribute{
		{Name: "CourseID", Type: reldb.KindString},
		{Name: "PID", Type: reldb.KindInt},
		{Name: "Quarter", Type: reldb.KindString, Nullable: true},
		{Name: "Grade", Type: reldb.KindString, Nullable: true},
	}, []string{"CourseID", "PID"})); err != nil {
		return err
	}

	return nil
}

// attachGraph builds the Figure 1 connection graph over db. The graph
// (and the secondary indexes each connection registers) is in-memory
// state rebuilt on every process start.
func attachGraph(db *reldb.Database) *structural.Graph {
	g := structural.NewGraph(db)
	g.MustAddConnection(&structural.Connection{
		Name: ConnPersonDept, Type: structural.Reference,
		From: People, To: Department,
		FromAttrs: []string{"DeptName"}, ToAttrs: []string{"DeptName"},
	})
	g.MustAddConnection(&structural.Connection{
		Name: ConnCourseDept, Type: structural.Reference,
		From: Courses, To: Department,
		FromAttrs: []string{"DeptName"}, ToAttrs: []string{"DeptName"},
	})
	g.MustAddConnection(&structural.Connection{
		Name: ConnPersonStudent, Type: structural.Subset,
		From: People, To: Student,
		FromAttrs: []string{"PID"}, ToAttrs: []string{"PID"},
	})
	g.MustAddConnection(&structural.Connection{
		Name: ConnPersonFaculty, Type: structural.Subset,
		From: People, To: Faculty,
		FromAttrs: []string{"PID"}, ToAttrs: []string{"PID"},
	})
	g.MustAddConnection(&structural.Connection{
		Name: ConnPersonStaff, Type: structural.Subset,
		From: People, To: Staff,
		FromAttrs: []string{"PID"}, ToAttrs: []string{"PID"},
	})
	g.MustAddConnection(&structural.Connection{
		Name: ConnDeptCurriculum, Type: structural.Ownership,
		From: Department, To: Curriculum,
		FromAttrs: []string{"DeptName"}, ToAttrs: []string{"DeptName"},
	})
	g.MustAddConnection(&structural.Connection{
		Name: ConnCurriculumCourse, Type: structural.Reference,
		From: Curriculum, To: Courses,
		FromAttrs: []string{"CourseID"}, ToAttrs: []string{"CourseID"},
	})
	g.MustAddConnection(&structural.Connection{
		Name: ConnCourseGrades, Type: structural.Ownership,
		From: Courses, To: Grades,
		FromAttrs: []string{"CourseID"}, ToAttrs: []string{"CourseID"},
	})
	g.MustAddConnection(&structural.Connection{
		Name: ConnStudentGrades, Type: structural.Ownership,
		From: Student, To: Grades,
		FromAttrs: []string{"PID"}, ToAttrs: []string{"PID"},
	})

	// Connection traversal is a hash lookup instead of a scan: adding each
	// connection above registered a secondary index over its connecting
	// attributes wherever they are not already the target's whole key.

	return g
}

// Seed loads the paper's illustrative instance: three departments, a mix
// of students, faculty, and staff, graduate and undergraduate courses
// (including CS345 of §6's replacement example), curricula, and grades.
// CS345 is a graduate course with fewer than 5 enrolled students, so the
// Figure 4 query selects it.
func Seed(db *reldb.Database) error {
	return db.RunInTx(func(tx *reldb.Tx) error {
		return seedRows(func(rel string, rows ...reldb.Tuple) error {
			for _, row := range rows {
				if err := tx.Insert(rel, row); err != nil {
					return fmt.Errorf("university: seeding %s: %w", rel, err)
				}
			}
			return nil
		})
	})
}

// seedRows feeds the paper's illustrative rows through ins, relation by
// relation — the one row source behind both the single-database Seed
// and the partitioned SeedSharded.
func seedRows(ins func(rel string, rows ...reldb.Tuple) error) error {
	s := reldb.String
	i := reldb.Int
	f := reldb.Float
	b := reldb.Bool

	if err := ins(Department,
		reldb.Tuple{s("Computer Science"), s("Gates"), f(1_200_000)},
		reldb.Tuple{s("Electrical Engineering"), s("Packard"), f(900_000)},
		reldb.Tuple{s("Mechanical Engineering"), s("Building 530"), f(750_000)},
	); err != nil {
		return err
	}
	if err := ins(People,
		reldb.Tuple{i(1), s("Alice Hacker"), s("Computer Science"), s("alice@cs")},
		reldb.Tuple{i(2), s("Bob Builder"), s("Mechanical Engineering"), s("bob@me")},
		reldb.Tuple{i(3), s("Carol Circuits"), s("Electrical Engineering"), s("carol@ee")},
		reldb.Tuple{i(4), s("Dan Data"), s("Computer Science"), s("dan@cs")},
		reldb.Tuple{i(5), s("Eve Embedded"), s("Electrical Engineering"), s("eve@ee")},
		reldb.Tuple{i(6), s("Frank Faculty"), s("Computer Science"), s("frank@cs")},
		reldb.Tuple{i(7), s("Grace Prof"), s("Electrical Engineering"), s("grace@ee")},
		reldb.Tuple{i(8), s("Heidi Admin"), s("Computer Science"), s("heidi@cs")},
	); err != nil {
		return err
	}
	if err := ins(Student,
		reldb.Tuple{i(1), s("PhD"), i(3)},
		reldb.Tuple{i(2), s("MS"), i(1)},
		reldb.Tuple{i(3), s("MS"), i(2)},
		reldb.Tuple{i(4), s("BS"), i(4)},
		reldb.Tuple{i(5), s("PhD"), i(5)},
	); err != nil {
		return err
	}
	if err := ins(Faculty,
		reldb.Tuple{i(6), s("Associate Professor"), b(true)},
		reldb.Tuple{i(7), s("Professor"), b(true)},
	); err != nil {
		return err
	}
	if err := ins(Staff,
		reldb.Tuple{i(8), s("Department Administrator")},
	); err != nil {
		return err
	}
	if err := ins(Courses,
		reldb.Tuple{s("CS101"), s("Introduction to Computing"), s("Computer Science"), i(3), s("undergraduate")},
		reldb.Tuple{s("CS345"), s("Database Systems"), s("Computer Science"), i(4), s("graduate")},
		reldb.Tuple{s("CS445"), s("Distributed Systems"), s("Computer Science"), i(4), s("graduate")},
		reldb.Tuple{s("EE201"), s("Circuits I"), s("Electrical Engineering"), i(3), s("undergraduate")},
		reldb.Tuple{s("EE380"), s("VLSI Design"), s("Electrical Engineering"), i(4), s("graduate")},
		reldb.Tuple{s("ME301"), s("Dynamics"), s("Mechanical Engineering"), i(4), s("undergraduate")},
	); err != nil {
		return err
	}
	if err := ins(Curriculum,
		reldb.Tuple{s("Computer Science"), s("BS"), s("CS101")},
		reldb.Tuple{s("Computer Science"), s("MS"), s("CS345")},
		reldb.Tuple{s("Computer Science"), s("PhD"), s("CS345")},
		reldb.Tuple{s("Computer Science"), s("PhD"), s("CS445")},
		reldb.Tuple{s("Electrical Engineering"), s("BS"), s("EE201")},
		reldb.Tuple{s("Electrical Engineering"), s("MS"), s("EE380")},
		reldb.Tuple{s("Mechanical Engineering"), s("BS"), s("ME301")},
	); err != nil {
		return err
	}
	if err := ins(Grades,
		// CS101: a large undergraduate course (5 students).
		reldb.Tuple{s("CS101"), i(1), s("Aut90"), s("A")},
		reldb.Tuple{s("CS101"), i(2), s("Aut90"), s("B+")},
		reldb.Tuple{s("CS101"), i(3), s("Aut90"), s("A-")},
		reldb.Tuple{s("CS101"), i(4), s("Aut90"), s("B")},
		reldb.Tuple{s("CS101"), i(5), s("Aut90"), s("A")},
		// CS345: graduate, 3 students (< 5, selected by Figure 4).
		reldb.Tuple{s("CS345"), i(1), s("Win91"), s("A")},
		reldb.Tuple{s("CS345"), i(4), s("Win91"), s("B+")},
		reldb.Tuple{s("CS345"), i(5), s("Win91"), s("A-")},
		// CS445: graduate, 2 students (< 5, selected by Figure 4).
		reldb.Tuple{s("CS445"), i(1), s("Spr91"), s("A")},
		reldb.Tuple{s("CS445"), i(5), s("Spr91"), s("B")},
		// EE380: graduate, 5 students (not selected by Figure 4).
		reldb.Tuple{s("EE380"), i(1), s("Win91"), s("B")},
		reldb.Tuple{s("EE380"), i(2), s("Win91"), s("A")},
		reldb.Tuple{s("EE380"), i(3), s("Win91"), s("A-")},
		reldb.Tuple{s("EE380"), i(4), s("Win91"), s("B+")},
		reldb.Tuple{s("EE380"), i(5), s("Win91"), s("A")},
		// EE201, ME301: undergraduate.
		reldb.Tuple{s("EE201"), i(3), s("Aut90"), s("A")},
		reldb.Tuple{s("ME301"), i(2), s("Aut90"), s("B")},
	); err != nil {
		return err
	}
	return nil
}

// NewSeeded builds the university database, structural schema, and the
// paper's sample instance in one call.
func NewSeeded() (*reldb.Database, *structural.Graph, error) {
	db, g := New()
	if err := Seed(db); err != nil {
		return nil, nil, err
	}
	return db, g, nil
}

// EnsureSeeded seeds the paper's instance only into an empty database.
// A durable session recovered from its WAL keeps the rows it already
// has — Seed is not idempotent, and re-seeding over live data would
// duplicate keys. Returns whether it seeded.
func EnsureSeeded(db *reldb.Database) (bool, error) {
	if db.TotalRows() > 0 {
		return false, nil
	}
	return true, Seed(db)
}

// MustNewSeeded is NewSeeded that panics on error (fixtures and benches).
func MustNewSeeded() (*reldb.Database, *structural.Graph) {
	db, g, err := NewSeeded()
	if err != nil {
		panic(err)
	}
	return db, g
}

// ScaleSpec sizes SeedScaled's synthetic instance.
type ScaleSpec struct {
	Departments      int
	StudentsPerDept  int
	FacultyPerDept   int
	CoursesPerDept   int
	GradesPerCourse  int // capped at the number of students in the department
	DegreesPerDept   int
	CoursesPerDegree int
}

// SeedScaled fills db with a deterministic synthetic instance of the
// given size. Identifiers are sequential, so runs are reproducible
// without random sources. Students receiving grades for a course are
// drawn from the same department, round-robin.
func SeedScaled(db *reldb.Database, spec ScaleSpec) error {
	return db.RunInTx(func(tx *reldb.Tx) error {
		s := reldb.String
		i := reldb.Int
		pid := int64(0)
		degrees := []string{"BS", "MS", "PhD", "MBA", "JD", "MD"}
		for d := 0; d < spec.Departments; d++ {
			dept := fmt.Sprintf("Dept%03d", d)
			if err := tx.Insert(Department, reldb.Tuple{s(dept), s("Bldg" + dept), reldb.Float(float64(100000 * (d + 1)))}); err != nil {
				return err
			}
			var deptStudents []int64
			for st := 0; st < spec.StudentsPerDept; st++ {
				pid++
				if err := tx.Insert(People, reldb.Tuple{i(pid), s(fmt.Sprintf("Student%d", pid)), s(dept), s(fmt.Sprintf("s%d@u", pid))}); err != nil {
					return err
				}
				if err := tx.Insert(Student, reldb.Tuple{i(pid), s(degrees[st%3]), i(int64(st%5 + 1))}); err != nil {
					return err
				}
				deptStudents = append(deptStudents, pid)
			}
			for fa := 0; fa < spec.FacultyPerDept; fa++ {
				pid++
				if err := tx.Insert(People, reldb.Tuple{i(pid), s(fmt.Sprintf("Faculty%d", pid)), s(dept), s(fmt.Sprintf("f%d@u", pid))}); err != nil {
					return err
				}
				if err := tx.Insert(Faculty, reldb.Tuple{i(pid), s("Professor"), reldb.Bool(fa%2 == 0)}); err != nil {
					return err
				}
			}
			for cs := 0; cs < spec.CoursesPerDept; cs++ {
				course := fmt.Sprintf("C%03d-%03d", d, cs)
				level := "undergraduate"
				if cs%2 == 1 {
					level = "graduate"
				}
				if err := tx.Insert(Courses, reldb.Tuple{s(course), s("Course " + course), s(dept), i(int64(cs%4 + 1)), s(level)}); err != nil {
					return err
				}
				n := spec.GradesPerCourse
				if n > len(deptStudents) {
					n = len(deptStudents)
				}
				for gIdx := 0; gIdx < n; gIdx++ {
					stu := deptStudents[(cs+gIdx)%len(deptStudents)]
					if err := tx.Insert(Grades, reldb.Tuple{s(course), i(stu), s("Aut90"), s("A")}); err != nil {
						return err
					}
				}
				for dg := 0; dg < spec.DegreesPerDept && dg < len(degrees); dg++ {
					if cs < spec.CoursesPerDegree {
						if err := tx.Insert(Curriculum, reldb.Tuple{s(dept), s(degrees[dg]), s(course)}); err != nil {
							return err
						}
					}
				}
			}
		}
		return nil
	})
}
