package university

import (
	"fmt"

	"penguin/internal/reldb"
	"penguin/internal/viewobject"
	"penguin/internal/vupdate"
)

// UpdateCycle generates a repeatable view-object update workload for the
// amortization experiment: each Run inserts a fresh course instance with
// one grade and immediately deletes it, leaving the database unchanged.
type UpdateCycle struct {
	def *viewobject.Definition
}

// NewUpdateCycle creates a cycle over ω (or any COURSES-pivot object).
func NewUpdateCycle(def *viewobject.Definition) *UpdateCycle {
	return &UpdateCycle{def: def}
}

// Run executes one insert+delete round with identifiers derived from i.
func (c *UpdateCycle) Run(u *vupdate.Updater, i int) error {
	id := fmt.Sprintf("CYCLE%07d", i)
	inst, err := viewobject.NewInstance(c.def, reldb.Tuple{
		reldb.String(id), reldb.String("Cycle"), reldb.String("Dept000"),
		reldb.Int(3), reldb.String("graduate"),
	})
	if err != nil {
		return err
	}
	gr, err := inst.Root().AddChild(c.def, Grades, reldb.Tuple{
		reldb.String(id), reldb.Int(1), reldb.String("Aut90"), reldb.String("A"),
	})
	if err != nil {
		return err
	}
	if _, err := gr.AddChild(c.def, Student, reldb.Tuple{
		reldb.Int(1), reldb.String("BS"), reldb.Int(1),
	}); err != nil {
		return err
	}
	if _, err := u.InsertInstance(inst); err != nil {
		return err
	}
	_, err = u.DeleteByKey(reldb.Tuple{reldb.String(id)})
	return err
}
